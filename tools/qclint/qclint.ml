(* qclint — the repo's AST-level static analyzer.

   tools/lint.sh used to defend the repo's three machine-checkable
   disciplines with regexes: Domain-parallelism (mutable state in Atomics
   or drained DLS buffers only), durability (raw file writes only inside
   Qc_util.Durable, time only inside Qc_util.Clock) and comparison (no
   polymorphic compare on cells/nodes whose drill-down links can cycle —
   the QC-tree link structure of Lakshmanan et al., SIGMOD 2003).  Greps
   miss qualified calls ([Stdlib.compare]), module aliases
   ([module U = Unix ... U.gettimeofday]) and multi-line forms; this tool
   parses every source file into a Parsetree with compiler-libs and checks
   the real structure instead of its textual shadow.

   Contract (mirrors qct):
     exit 0    clean (or informational modes)
     exit 2    violations found (or dangling allowlist entries)
     exit 1    runtime failure (unreadable root, malformed allow.sexp)
     exit 124  usage error (unknown flag)

   [--json] emits the shared violation envelope
   [{label, file_or_path, detail}] also produced by [qct check --json] and
   [qct recover --json] (see DESIGN.md "Static analysis").

   Rules are named by stable kebab-case labels (the contract tested by
   test/lint); human wording may change, labels may not. *)

let prog = "qclint"

let usage () =
  prerr_endline
    ("usage: " ^ prog
   ^ " [--root DIR] [--allow FILE] [--json] [--fix-dry-run] [--check-allowlist]\n\
     \       [--rules] [FILE...]\n\
      Run the repo's AST-level static rules over lib/ bin/ bench/ examples/ test/ tools/\n\
      (or over the given files).  See DESIGN.md \"Static analysis\".")

(* ------------------------------------------------------------------ *)
(* Rule registry                                                      *)
(* ------------------------------------------------------------------ *)

(* Every rule the engine can fire, with its one-line doc.  test/lint keeps a
   bad/ok fixture pair per entry, so deleting a rule's implementation fails
   the suite. *)
let all_rules =
  [
    ("parse-error", "the file does not parse; nothing else can be checked");
    ("obj-magic", "Obj.magic defeats the type system");
    ("raising-find", "Hashtbl.find / List.assoc raise far from the bug; use the _opt forms");
    ("poly-compare", "polymorphic compare orders by memory layout and loops on cyclic links");
    ("option-poly-eq", "(= None) structurally compares the payload; use Option.is_none/is_some");
    ("durable-raw-write", "raw file writes outside Qc_util.Durable bypass fsync + failpoints");
    ("clock-raw-time", "raw clocks outside Qc_util.Clock mix wall and monotonic time");
    ("stdout-in-lib", "library code must not print to stdout; return strings or take a formatter");
    ("catch-all-handler", "try ... with _ -> swallows Out_of_memory and program bugs alike");
    ("typed-error-bypass", "failwith/assert false on a path with a typed error channel");
    ("domain-outside-allowlist", "Domain.spawn/join only in the audited parallel executors");
    ("deprecated-query-api", "option-returning Query wrappers; use the *_result forms or Engine.run_one");
    ("toplevel-mutable-state", "top-level ref/Hashtbl in lib/ without an Atomic/DLS/Mutex story");
    ("dls-without-drain", "a DLS buffer with no drain/absorb pair can never merge deterministically");
    ("dangling-allow-entry", "an allow.sexp entry whose site no longer exists");
  ]

type violation = {
  v_rule : string;
  v_file : string;
  v_line : int;
  v_col : int;
  v_detail : string;
  v_fix : string option;  (* mechanical fix, for --fix-dry-run *)
}

(* ------------------------------------------------------------------ *)
(* Path scoping                                                       *)
(* ------------------------------------------------------------------ *)

let in_lib p = String.starts_with ~prefix:"lib/" p

let in_bin p = String.starts_with ~prefix:"bin/" p

let lib_or_bin p = in_lib p || in_bin p

(* Modules allowed to spawn/join Domains: the batch executor, the shard
   builder, the streaming-ingest loop (one producer domain plus a
   transient background-refreeze domain, both joined before [Ingest.run]
   returns; its drain/absorb and done-flag discipline is audited by the
   ingest test suite and the crash matrix), and the query server (worker,
   accept and generation-watcher domains, all joined by [Server.stop]
   which absorbs their metric deltas in worker order). *)
let domain_allowlist =
  [ "lib/qc/engine.ml"; "lib/qc/shard.ml"; "lib/warehouse/ingest.ml"; "lib/server/server.ml" ]

(* Modules with a typed error channel (Engine.error / Warehouse.error): a
   failwith there turns a recoverable condition into a crash. *)
let typed_error_files =
  [ "lib/qc/engine.ml"; "lib/qc/shard.ml"; "lib/warehouse/warehouse.ml";
    "lib/warehouse/sharded.ml" ]

let mem_s x l = List.exists (String.equal x) l

let contains_sub hay sub =
  let nh = String.length hay and ns = String.length sub in
  let rec go i = i + ns <= nh && (String.equal (String.sub hay i ns) sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Banned identifiers                                                 *)
(* ------------------------------------------------------------------ *)

type banned = {
  b_path : string;  (* canonical dotted path, leading Stdlib./Pervasives. stripped *)
  b_rule : string;
  b_msg : string;
  b_fix : string option;
  b_applies : string -> bool;
}

let banned_idents =
  let all _ = true in
  let durable p = lib_or_bin p && not (String.equal p "lib/util/durable.ml") in
  let clock p = not (String.equal p "lib/util/clock.ml") in
  let typed p = mem_s p typed_error_files in
  let domain p = lib_or_bin p && not (mem_s p domain_allowlist) in
  let raw_write name =
    { b_path = name; b_rule = "durable-raw-write";
      b_msg = name ^ " bypasses the atomic-write/fsync/failpoint protocol; route it through Qc_util.Durable";
      b_fix = None; b_applies = durable }
  in
  let raw_time name =
    { b_path = name; b_rule = "clock-raw-time";
      b_msg = name ^ " outside lib/util/clock.ml; use Qc_util.Clock (now_s/now_ns/wall_s)";
      b_fix = None; b_applies = clock }
  in
  let stdout_print name =
    { b_path = name; b_rule = "stdout-in-lib";
      b_msg = name ^ " prints to stdout from library code; return a string or take a formatter";
      b_fix = None; b_applies = in_lib }
  in
  [
    { b_path = "Obj.magic"; b_rule = "obj-magic";
      b_msg = "Obj.magic defeats the type system; find a typed encoding";
      b_fix = None; b_applies = all };
    { b_path = "Hashtbl.find"; b_rule = "raising-find";
      b_msg = "raising Hashtbl.find turns a data bug into an uncaught Not_found; use find_opt with an explicit None branch";
      b_fix = Some "replace with Hashtbl.find_opt + explicit None branch"; b_applies = all };
    { b_path = "List.assoc"; b_rule = "raising-find";
      b_msg = "raising List.assoc turns a data bug into an uncaught Not_found; use List.assoc_opt with an explicit None branch";
      b_fix = Some "replace with List.assoc_opt + explicit None branch"; b_applies = all };
    { b_path = "compare"; b_rule = "poly-compare";
      b_msg = "polymorphic compare orders by memory representation and loops on cyclic drill-down links; use a typed comparison (Int.compare, Cell.compare_dict, ...)";
      b_fix = None; b_applies = all };
    raw_write "Unix.openfile"; raw_write "Unix.write"; raw_write "Unix.single_write";
    raw_write "Unix.write_substring"; raw_write "Unix.rename"; raw_write "Unix.fsync";
    raw_write "Unix.truncate"; raw_write "Unix.ftruncate"; raw_write "Unix.unlink";
    raw_write "Unix.link"; raw_write "Sys.rename"; raw_write "Sys.remove";
    raw_write "open_out"; raw_write "open_out_bin"; raw_write "open_out_gen";
    raw_time "Unix.gettimeofday"; raw_time "Unix.time"; raw_time "Unix.times";
    raw_time "Sys.time";
    stdout_print "print_string"; stdout_print "print_endline"; stdout_print "print_newline";
    stdout_print "print_char"; stdout_print "print_int"; stdout_print "print_float";
    stdout_print "print_bytes"; stdout_print "Printf.printf"; stdout_print "Format.printf";
    stdout_print "Format.print_string"; stdout_print "Format.print_newline";
    stdout_print "Format.print_flush";
    { b_path = "failwith"; b_rule = "typed-error-bypass";
      b_msg = "failwith on a path with a typed error channel (Engine.error / Warehouse.error); return the typed error instead";
      b_fix = None; b_applies = typed };
    { b_path = "Domain.spawn"; b_rule = "domain-outside-allowlist";
      b_msg = "Domain.spawn outside the audited parallel executors (lib/qc/engine.ml, lib/qc/shard.ml, lib/warehouse/ingest.ml, lib/server/server.ml); route parallelism through Engine.run_batch / Shard.build_packed / Ingest.run / Server.start";
      b_fix = None; b_applies = domain };
    { b_path = "Domain.join"; b_rule = "domain-outside-allowlist";
      b_msg = "Domain.join outside the audited parallel executors (lib/qc/engine.ml, lib/qc/shard.ml, lib/warehouse/ingest.ml, lib/server/server.ml)";
      b_fix = None; b_applies = domain };
  ]
  @
  (* The option-returning Query wrappers survive for bc but are
     [@@deprecated]; outside their own defining module every use — any
     alias or open spelling the resolver normalizes — is flagged. *)
  let dep_query p = not (String.equal p "lib/qc/query.ml") in
  List.concat_map
    (fun (name, instead) ->
      let msg =
        Printf.sprintf
          "Query.%s is deprecated (None conflates empty cover with failure); use Query.%s or Engine.run_one and match the typed error"
          name instead
      in
      List.map
        (fun path ->
          { b_path = path; b_rule = "deprecated-query-api"; b_msg = msg;
            b_fix = Some ("replace with Query." ^ instead); b_applies = dep_query })
        [ "Query." ^ name; "Qc_core.Query." ^ name ])
    [
      ("point", "point_result");
      ("point_value", "point_value_result");
      ("range", "range_result");
      ("point_packed", "point_result_packed");
      ("point_value_packed", "point_value_result_packed");
      ("range_packed", "range_result_packed");
    ]

let strip_prefix ~prefix s =
  if String.starts_with ~prefix s then
    String.sub s (String.length prefix) (String.length s - String.length prefix)
  else s

let canonical path = strip_prefix ~prefix:"Stdlib." (strip_prefix ~prefix:"Pervasives." path)

(* ------------------------------------------------------------------ *)
(* Per-file analysis                                                  *)
(* ------------------------------------------------------------------ *)

open Parsetree

type fenv = {
  relpath : string;
  aliases : (string, string) Hashtbl.t;  (* module alias -> canonical head path *)
  mutable opens : string list;  (* dotted module paths opened anywhere in the file *)
  bound : (string, unit) Hashtbl.t;  (* every value name bound anywhere in the file *)
  mutable mentions_sync : bool;  (* file references Mutex or Atomic *)
  mutable dls_sites : (int * int) list;  (* Domain.DLS.new_key locations *)
  mutable out : violation list;
}

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let report env ?fix ~loc rule detail =
  let line, col = pos_of loc in
  env.out <-
    { v_rule = rule; v_file = env.relpath; v_line = line; v_col = col;
      v_detail = detail; v_fix = fix }
    :: env.out

(* Expand a leading module alias (module U = Unix; module Tbl =
   Hashtbl.Make (...)) so aliased calls resolve to their canonical path. *)
let expand_alias env segs =
  let rec go fuel segs =
    match segs with
    | head :: rest when fuel > 0 -> (
      match Hashtbl.find_opt env.aliases head with
      | Some target -> go (fuel - 1) (String.split_on_char '.' target @ rest)
      | None -> segs)
    | _ -> segs
  in
  go 8 segs

(* All dotted spellings an identifier use can canonically refer to: the
   alias-expanded qualified path, plus every opened module's qualification
   when the use is a bare name.  The [unqual] flag marks spellings that a
   local [let] binding of the same name would shadow. *)
let candidates env lid =
  let segs = Longident.flatten lid in
  let expanded = expand_alias env segs in
  let full = canonical (String.concat "." expanded) in
  let base = [ (full, List.length expanded = 1) ] in
  match segs with
  | [ name ] ->
    base @ List.map (fun m -> (canonical (m ^ "." ^ name), true)) env.opens
  | _ -> base

let check_ident env (lid : Longident.t Location.loc) =
  let cands = candidates env lid.Location.txt in
  List.iter
    (fun b ->
      if b.b_applies env.relpath then
        List.iter
          (fun (cand, unqual) ->
            (* a file-local binding shadows bare (or open-resolved) names *)
            let shadowed =
              unqual
              && Hashtbl.mem env.bound
                   (match List.rev (String.split_on_char '.' cand) with
                   | last :: _ -> last
                   | [] -> cand)
            in
            if String.equal cand b.b_path && not shadowed then
              report env ?fix:b.b_fix ~loc:lid.Location.loc b.b_rule b.b_msg)
          cands)
    banned_idents

(* ---------- structural checks ---------- *)

let is_none_construct e =
  match e.pexp_desc with
  | Pexp_construct ({ Location.txt = Longident.Lident "None"; _ }, None) -> true
  | _ -> false

let option_eq_check env e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { Location.txt = Longident.Lident op; _ }; _ }, args)
    when (String.equal op "=" || String.equal op "<>")
         && List.exists (fun (_, a) -> is_none_construct a) args ->
    let suggestion = if String.equal op "=" then "Option.is_none" else "Option.is_some" in
    report env
      ~fix:("replace (" ^ op ^ " None) with " ^ suggestion)
      ~loc:e.pexp_loc "option-poly-eq"
      ("(" ^ op
     ^ " None) structurally compares the Some payload (wrong or nonterminating on nodes); use "
     ^ suggestion)
  | _ -> ()

(* Does [body] re-raise the exception variable [v]?  A handler that
   captures and faithfully re-raises is not a swallow. *)
let reraises v body =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident f; _ }, args) ->
            let fname = canonical (String.concat "." (Longident.flatten f.Location.txt)) in
            if
              mem_s fname [ "raise"; "raise_notrace"; "Printexc.raise_with_backtrace" ]
              && List.exists
                   (fun (_, a) ->
                     match a.pexp_desc with
                     | Pexp_ident { Location.txt = Longident.Lident x; _ } -> String.equal x v
                     | _ -> false)
                   args
            then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it body;
  !found

(* top-level catch-all shapes: _, e, (p as e), p | q where either arm is *)
let rec pat_catch_all p =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var v -> Some (Some v.Location.txt)
  | Ppat_alias (inner, v) -> (
    match pat_catch_all inner with Some _ -> Some (Some v.Location.txt) | None -> None)
  | Ppat_or (a, b) -> ( match pat_catch_all a with Some r -> Some r | None -> pat_catch_all b)
  | Ppat_constraint (inner, _) -> pat_catch_all inner
  | _ -> None

let handler_check env ~loc cases =
  if lib_or_bin env.relpath then
    List.iter
      (fun c ->
        match (pat_catch_all c.pc_lhs, c.pc_guard) with
        | Some binding, None ->
          let swallows =
            match binding with None -> true | Some v -> not (reraises v c.pc_rhs)
          in
          if swallows then
            report env
              ~loc:(if c.pc_lhs.ppat_loc.Location.loc_ghost then loc else c.pc_lhs.ppat_loc)
              "catch-all-handler"
              "catch-all exception handler swallows Out_of_memory and program bugs alike; \
               match the specific exceptions (or re-raise)"
        | _ -> ())
      cases

(* [match ... with exception _ -> ...] is the same swallow in disguise *)
let match_exception_check env cases =
  if lib_or_bin env.relpath then
    List.iter
      (fun c ->
        match c.pc_lhs.ppat_desc with
        | Ppat_exception inner -> (
          match (pat_catch_all inner, c.pc_guard) with
          | Some binding, None ->
            let swallows =
              match binding with None -> true | Some v -> not (reraises v c.pc_rhs)
            in
            if swallows then
              report env ~loc:inner.ppat_loc "catch-all-handler"
                "catch-all exception case swallows Out_of_memory and program bugs alike; \
                 match the specific exceptions (or re-raise)"
          | _ -> ())
        | _ -> ())
      cases

let assert_false_check env e =
  match e.pexp_desc with
  | Pexp_assert { pexp_desc = Pexp_construct ({ Location.txt = Longident.Lident "false"; _ }, None); _ }
    when mem_s env.relpath typed_error_files ->
    report env ~loc:e.pexp_loc "typed-error-bypass"
      "assert false on a path with a typed error channel (Engine.error / Warehouse.error); \
       return the typed error (or justify the invariant in tools/qclint/allow.sexp)"
  | _ -> ()

(* ---------- pass 1: environment ---------- *)

let head_of_functor_path segs =
  (* Hashtbl.Make -> Hashtbl, Map.Make -> Map: a functor instance inherits
     its generator's raising-find discipline *)
  match List.rev segs with
  | "Make" :: rev_rest -> List.rev rev_rest
  | _ -> segs

let rec module_alias_target me =
  match me.pmod_desc with
  | Pmod_ident lid -> Some (String.concat "." (Longident.flatten lid.Location.txt))
  | Pmod_apply ({ pmod_desc = Pmod_ident lid; _ }, _) ->
    Some (String.concat "." (head_of_functor_path (Longident.flatten lid.Location.txt)))
  | Pmod_constraint (inner, _) -> module_alias_target inner
  | _ -> None

let prepass env str =
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var v -> Hashtbl.replace env.bound v.Location.txt ()
          | Ppat_alias (_, v) -> Hashtbl.replace env.bound v.Location.txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident lid ->
            let segs = Longident.flatten lid.Location.txt in
            (match segs with
            | head :: _ when String.equal head "Mutex" || String.equal head "Atomic" ->
              env.mentions_sync <- true
            | _ -> ());
            let dotted = String.concat "." (expand_alias env segs) in
            if
              String.equal dotted "Domain.DLS.new_key"
              || String.ends_with ~suffix:".DLS.new_key" dotted
            then env.dls_sites <- pos_of lid.Location.loc :: env.dls_sites
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      module_binding =
        (fun it mb ->
          (match (mb.pmb_name.Location.txt, module_alias_target mb.pmb_expr) with
          | Some name, Some target -> Hashtbl.replace env.aliases name target
          | _ -> ());
          Ast_iterator.default_iterator.module_binding it mb);
      open_declaration =
        (fun it od ->
          (match od.popen_expr.pmod_desc with
          | Pmod_ident lid ->
            env.opens <-
              String.concat "." (expand_alias env (Longident.flatten lid.Location.txt))
              :: env.opens
          | _ -> ());
          Ast_iterator.default_iterator.open_declaration it od);
    }
  in
  it.Ast_iterator.structure it str

(* ---------- pass 2: rules ---------- *)

let mainpass env str =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident lid -> check_ident env lid
          | Pexp_try (_, cases) -> handler_check env ~loc:e.pexp_loc cases
          | Pexp_match (_, cases) -> match_exception_check env cases
          | _ -> ());
          option_eq_check env e;
          assert_false_check env e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.Ast_iterator.structure it str

(* Top-level mutable state in lib/: a structure-level [let x = ref ...] or
   [let t = Hashtbl.create ...] is shared by every Domain that touches the
   module.  Atomic.make / Domain.DLS.new_key bindings are the sanctioned
   encodings; a module that at least takes a Mutex somewhere has a
   concurrency story; anything else is flagged. *)
let rec peel_expr e =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) -> peel_expr inner
  | _ -> e

let toplevel_state_check env str =
  if in_lib env.relpath && not env.mentions_sync then begin
    let check_binding vb =
      match (peel_expr vb.pvb_expr).pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident f; _ }, _) -> (
        let name =
          canonical (String.concat "." (expand_alias env (Longident.flatten f.Location.txt)))
        in
        match name with
        | "ref" ->
          report env ~loc:vb.pvb_loc "toplevel-mutable-state"
            "top-level ref in lib/ with no Atomic/DLS/Mutex discipline; Domains will race on \
             it (wrap in Atomic.make, move into Domain.DLS, or guard with a Mutex)"
        | "Hashtbl.create" ->
          report env ~loc:vb.pvb_loc "toplevel-mutable-state"
            "top-level Hashtbl in lib/ with no Atomic/DLS/Mutex discipline; Domains will race \
             on it (guard every access with a Mutex or move it into Domain.DLS)"
        | _ -> ())
      | _ -> ()
    in
    let rec walk items =
      List.iter
        (fun si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter check_binding vbs
          | Pstr_module mb -> walk_mod mb.pmb_expr
          | Pstr_recmodule mbs -> List.iter (fun mb -> walk_mod mb.pmb_expr) mbs
          | _ -> ())
        items
    and walk_mod me =
      match me.pmod_desc with
      | Pmod_structure s -> walk s
      | Pmod_constraint (inner, _) | Pmod_functor (_, inner) -> walk_mod inner
      | _ -> ()
    in
    walk str
  end

let dls_check env =
  if in_lib env.relpath then
    match env.dls_sites with
    | [] -> ()
    | (line, col) :: _ ->
      let has sub = Hashtbl.fold (fun name () acc -> acc || contains_sub name sub) env.bound false in
      if not (has "drain" && has "absorb") then
        env.out <-
          {
            v_rule = "dls-without-drain";
            v_file = env.relpath;
            v_line = line;
            v_col = col;
            v_detail =
              "Domain.DLS buffer with no drain/absorb pair: per-domain state that is never \
               drained in chunk order cannot merge deterministically (see Metrics/Trace)";
            v_fix = None;
          }
          :: env.out

(* ---------- driver for one file ---------- *)

let parse_structure path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

let parse_signature path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.interface lexbuf)

let syntax_violation relpath (loc : Location.t) msg =
  let line, col = pos_of loc in
  { v_rule = "parse-error"; v_file = relpath; v_line = line; v_col = col;
    v_detail = msg; v_fix = None }

let analyze_file ~root relpath =
  let path = Filename.concat root relpath in
  if String.ends_with ~suffix:".mli" relpath then
    (* interfaces carry no expressions; parsing them still catches rot *)
    match parse_signature path with
    | _sg -> []
    | exception Syntaxerr.Error e ->
      [ syntax_violation relpath (Syntaxerr.location_of_error e) "interface does not parse" ]
    | exception Lexer.Error (_, loc) ->
      [ syntax_violation relpath loc "interface does not lex" ]
  else
    match parse_structure path with
    | str ->
      let env =
        { relpath; aliases = Hashtbl.create 8; opens = []; bound = Hashtbl.create 64;
          mentions_sync = false; dls_sites = []; out = [] }
      in
      prepass env str;
      mainpass env str;
      toplevel_state_check env str;
      dls_check env;
      env.out
    | exception Syntaxerr.Error e ->
      [ syntax_violation relpath (Syntaxerr.location_of_error e) "file does not parse" ]
    | exception Lexer.Error (_, loc) -> [ syntax_violation relpath loc "file does not lex" ]

(* ------------------------------------------------------------------ *)
(* File discovery                                                     *)
(* ------------------------------------------------------------------ *)

let default_dirs = [ "lib"; "bin"; "bench"; "examples"; "test"; "tools" ]

(* deliberate-violation corpus for the fixture suite *)
let skip_prefixes = [ "test/lint/fixtures" ]

let skip_dir name = String.equal name "_build" || String.length name > 0 && name.[0] = '.'

let discover ~root dirs =
  let acc = ref [] in
  let rec walk rel =
    if not (List.exists (fun p -> String.starts_with ~prefix:p rel) skip_prefixes) then begin
      let abs = Filename.concat root rel in
      if Sys.is_directory abs then
        Array.iter
          (fun entry -> if not (skip_dir entry) then walk (Filename.concat rel entry))
          (Sys.readdir abs)
      else if String.ends_with ~suffix:".ml" rel || String.ends_with ~suffix:".mli" rel then
        acc := rel :: !acc
    end
  in
  List.iter (fun d -> if Sys.file_exists (Filename.concat root d) then walk d) dirs;
  List.sort String.compare !acc

(* ------------------------------------------------------------------ *)
(* allow.sexp                                                         *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | Sx_list of sexp list

exception Allow_error of string

let parse_sexps src =
  let n = String.length src in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let advance () = incr i in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let atom_char c =
    match c with
    | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"' -> false
    | _ -> true
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Allow_error "unexpected end of file")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | Some ')' ->
          advance ();
          Sx_list (List.rev !items)
        | None -> raise (Allow_error "unclosed parenthesis")
        | Some _ ->
          items := parse_one () :: !items;
          loop ()
      in
      loop ()
    | Some ')' -> raise (Allow_error "unexpected closing parenthesis")
    | Some '"' ->
      advance ();
      let buf = Buffer.create 32 in
      let rec str () =
        match peek () with
        | None -> raise (Allow_error "unterminated string")
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
            Buffer.add_char buf (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
            advance ()
          | None -> raise (Allow_error "unterminated escape"));
          str ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          str ()
      in
      str ();
      Atom (Buffer.contents buf)
    | Some _ ->
      let start = !i in
      while (match peek () with Some c -> atom_char c | None -> false) do
        advance ()
      done;
      Atom (String.sub src start (!i - start))
  in
  let out = ref [] in
  let rec all () =
    skip_ws ();
    if !i < n then begin
      out := parse_one () :: !out;
      all ()
    end
  in
  all ();
  List.rev !out

type allow_entry = {
  a_rule : string;
  a_file : string;
  a_count : int;
  a_just : string;
  mutable a_matched : int;
}

let field name entry =
  List.find_map
    (function
      | Sx_list [ Atom k; Atom v ] when String.equal k name -> Some v
      | _ -> None)
    entry

let load_allow path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  List.map
    (function
      | Sx_list entry -> (
        let get name =
          match field name entry with
          | Some v -> v
          | None -> raise (Allow_error ("entry is missing a (" ^ name ^ " ...) field"))
        in
        let rule = get "rule" and file = get "file" in
        if not (List.exists (fun (r, _) -> String.equal r rule) all_rules) then
          raise (Allow_error ("entry names unknown rule " ^ rule));
        let just = get "justification" in
        if String.length (String.trim just) = 0 then
          raise (Allow_error ("entry for " ^ rule ^ " in " ^ file ^ " has an empty justification"));
        let count =
          match field "count" entry with
          | None -> 1
          | Some v -> (
            match int_of_string_opt v with
            | Some n when n > 0 -> n
            | _ -> raise (Allow_error ("bad count " ^ v ^ " for " ^ rule ^ " in " ^ file)))
        in
        { a_rule = rule; a_file = file; a_count = count; a_just = just; a_matched = 0 })
      | Atom a -> raise (Allow_error ("top-level atom " ^ a ^ " is not an entry")))
    (parse_sexps src)

(* Consume allowlisted violations: each entry absolves up to [count]
   violations of its rule in its file; an entry that absolves nothing is
   itself a violation (the site it justified no longer exists). *)
let apply_allowlist ~allow_path entries violations =
  let remaining =
    List.filter
      (fun v ->
        match
          List.find_opt
            (fun e ->
              String.equal e.a_rule v.v_rule && String.equal e.a_file v.v_file
              && e.a_matched < e.a_count)
            entries
        with
        | Some e ->
          e.a_matched <- e.a_matched + 1;
          false
        | None -> true)
      violations
  in
  let dangling =
    List.filter_map
      (fun e ->
        if e.a_matched = 0 then
          Some
            { v_rule = "dangling-allow-entry"; v_file = allow_path; v_line = 0; v_col = 0;
              v_detail =
                Printf.sprintf
                  "allow entry (%s in %s) matches no remaining site; delete the entry"
                  e.a_rule e.a_file;
              v_fix = None }
        else None)
      entries
  in
  (remaining @ dangling, List.fold_left (fun n e -> n + e.a_matched) 0 entries)

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let sort_violations vs =
  List.sort
    (fun a b ->
      let c = String.compare a.v_file b.v_file in
      if c <> 0 then c
      else
        let c = Int.compare a.v_line b.v_line in
        if c <> 0 then c
        else
          let c = Int.compare a.v_col b.v_col in
          if c <> 0 then c else String.compare a.v_rule b.v_rule)
    vs

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The shared violation envelope: {label, file_or_path, detail} — the same
   three fields qct check --json and qct recover --json emit.  Kept
   dependency-free so qclint builds before the libraries it audits. *)
let print_json ~files ~allowed violations =
  let vjson v =
    Printf.sprintf "{\"label\":\"%s\",\"file_or_path\":\"%s\",\"detail\":\"%s\"}"
      (json_escape v.v_rule) (json_escape v.v_file)
      (json_escape (Printf.sprintf "%s:%d:%d: %s" v.v_file v.v_line v.v_col v.v_detail))
  in
  Printf.printf
    "{\"tool\":\"qclint\",\"ok\":%b,\"checked\":{\"files\":%d,\"rules\":%d,\"allowlisted\":%d},\"violations\":[%s]}\n"
    (match violations with [] -> true | _ -> false)
    files (List.length all_rules) allowed
    (String.concat "," (List.map vjson violations))

let print_text ~files ~allowed violations =
  List.iter
    (fun v ->
      Printf.printf "%s: %s:%d:%d: [%s] %s\n" prog v.v_file v.v_line v.v_col v.v_rule v.v_detail)
    violations;
  match violations with
  | [] ->
    Printf.printf "%s: OK — %d files, %d rules, 0 violations (%d allowlisted)\n" prog files
      (List.length all_rules) allowed
  | vs ->
    Printf.printf "%s: %d violation(s) across %d file(s) (%d allowlisted)\n" prog (List.length vs)
      files allowed

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let () =
  let root = ref "." in
  let allow_file = ref None in
  let json = ref false in
  let fix_dry_run = ref false in
  let check_allowlist = ref false in
  let positional = ref [] in
  let rec parse_args args =
    match args with
    | [] -> ()
    | "--root" :: dir :: rest ->
      root := dir;
      parse_args rest
    | "--allow" :: file :: rest ->
      allow_file := Some file;
      parse_args rest
    | "--json" :: rest ->
      json := true;
      parse_args rest
    | "--fix-dry-run" :: rest ->
      fix_dry_run := true;
      parse_args rest
    | "--check-allowlist" :: rest ->
      check_allowlist := true;
      parse_args rest
    | "--rules" :: _ ->
      List.iter (fun (name, doc) -> Printf.printf "%-26s %s\n" name doc) all_rules;
      exit 0
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ when String.starts_with ~prefix:"-" arg ->
      Printf.eprintf "%s: unknown option %s\n" prog arg;
      usage ();
      exit 124
    | file :: rest ->
      positional := file :: !positional;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !root && Sys.is_directory !root) then begin
    Printf.eprintf "%s: root %s is not a directory\n" prog !root;
    exit 1
  end;
  let files =
    match List.rev !positional with
    | [] -> discover ~root:!root default_dirs
    | fs ->
      (* explicit files are taken relative to --root so path scoping applies *)
      List.concat_map
        (fun f ->
          if Sys.file_exists (Filename.concat !root f) then
            if Sys.is_directory (Filename.concat !root f) then discover ~root:!root [ f ]
            else [ f ]
          else begin
            Printf.eprintf "%s: no such file under %s: %s\n" prog !root f;
            exit 1
          end)
        fs
  in
  let raw = List.concat_map (fun f -> analyze_file ~root:!root f) files in
  let allow_path =
    match !allow_file with
    | Some p -> if Sys.file_exists p then Some p else begin
        Printf.eprintf "%s: allowlist %s does not exist\n" prog p;
        exit 1
      end
    | None ->
      let default = Filename.concat !root "tools/qclint/allow.sexp" in
      if Sys.file_exists default then Some default else None
  in
  let entries =
    match allow_path with
    | None -> []
    | Some p -> (
      try load_allow p with
      | Allow_error msg ->
        Printf.eprintf "%s: malformed allowlist %s: %s\n" prog p msg;
        exit 1)
  in
  let violations, allowed =
    apply_allowlist ~allow_path:(Option.value ~default:"allow.sexp" allow_path) entries raw
  in
  let violations = sort_violations violations in
  if !fix_dry_run then begin
    (* informational: list mechanically fixable sites (allowlisted or not)
       so follow-up PRs can burn the baseline down; always exits 0 *)
    let fixable = List.filter (fun v -> Option.is_some v.v_fix) (sort_violations raw) in
    List.iter
      (fun v ->
        Printf.printf "%s-fix: %s:%d:%d: [%s] %s\n" prog v.v_file v.v_line v.v_col v.v_rule
          (Option.value ~default:"" v.v_fix))
      fixable;
    Printf.printf "%s: %d mechanically fixable site(s)\n" prog (List.length fixable);
    exit 0
  end;
  if !check_allowlist then begin
    let dangling = List.filter (fun v -> String.equal v.v_rule "dangling-allow-entry") violations in
    List.iter
      (fun e ->
        Printf.printf "%s: allow [%s] %s x%d (%d matched) — %s\n" prog e.a_rule e.a_file e.a_count
          e.a_matched e.a_just)
      entries;
    List.iter (fun v -> Printf.printf "%s: [%s] %s\n" prog v.v_rule v.v_detail) dangling;
    Printf.printf "%s: allowlist %s: %d entr(ies), %d site(s) matched, %d dangling\n" prog
      (Option.value ~default:"(none)" allow_path)
      (List.length entries) allowed (List.length dangling);
    exit (match dangling with [] -> 0 | _ -> 2)
  end;
  if !json then print_json ~files:(List.length files) ~allowed violations
  else print_text ~files:(List.length files) ~allowed violations;
  exit (match violations with [] -> 0 | _ -> 2)
