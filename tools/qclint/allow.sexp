; qclint allowlist — per-site justifications for rule violations that the
; discipline genuinely cannot absorb.  Each entry absolves up to (count N)
; sites of (rule R) in (file F); an entry that matches nothing is itself a
; violation (dangling-allow-entry), so this file can only shrink as the
; baseline burns down.  See DESIGN.md "Static analysis".

((rule typed-error-bypass)
 (file lib/qc/shard.ml)
 (count 2)
 (justification
  "Both sites read a result slot that the Domain workers fill by construction before the join (build_packed) or that a non-empty shard list guarantees (gather with shards=[]). An empty slot is a program bug in the executor itself, not a recoverable query condition; panicking beats fabricating an Engine.error the caller would retry."))

((rule typed-error-bypass)
 (file lib/warehouse/warehouse.ml)
 (count 1)
 (justification
  "Warehouse.tree materializes the invariant that an open warehouse always holds a mutable tree or a packed snapshot; both being absent means the constructor itself is broken. No Warehouse.error variant can describe a half-constructed value, and recovery already rebuilds damaged images before this point."))
