#!/usr/bin/env bash
# Repo-wide static checks beyond what the compiler's strict warning profile
# (see the root `dune` env stanza) can express.  Run from the repo root:
#
#     bash tools/lint.sh
#
# Exits nonzero with one line per offence.  CI runs this in the `lint` job.
set -u
cd "$(dirname "$0")/.."

fails=0
offend() {
  echo "lint: $1" >&2
  shift
  printf '  %s\n' "$@" >&2
  fails=$((fails + 1))
}

# Every rule below scans tracked sources only, so generated files and the
# build directory never trip it.
ml_sources=$(git ls-files 'lib/**.ml' 'bin/**.ml' 'bench/**.ml' 'examples/**.ml' 'test/**.ml')

# --- 1. no build artifacts under version control -------------------------
tracked_build=$(git ls-files '_build/**' | head -5)
if [ -n "$tracked_build" ]; then
  offend "_build artifacts are tracked (add them to .gitignore and git rm --cached)" $tracked_build
fi

# --- 2. no Obj.magic anywhere -------------------------------------------
hits=$(grep -n 'Obj\.magic' $ml_sources /dev/null | grep -v 'tools/lint' || true)
if [ -n "$hits" ]; then
  offend "Obj.magic defeats the type system; find a typed encoding" "$hits"
fi

# --- 3. Hashtbl.find / Tbl.find without a handler ------------------------
# The raising find turns a data bug into an uncaught Not_found far from its
# cause.  Use find_opt and fail with a named invariant instead.
hits=$(grep -nE '(Hashtbl|Tbl)\.find[^_a-zA-Z]' $ml_sources /dev/null || true)
if [ -n "$hits" ]; then
  offend "use (Hashtbl|Tbl).find_opt with an explicit None branch, not the raising find" "$hits"
fi

# --- 4. no polymorphic option comparison --------------------------------
# `x = None` structurally compares the payload when x is Some _; on cells,
# nodes or functions that is wrong or raises.  Option.is_none/is_some are
# total and intention-revealing.  (`field = None;` in record construction
# is fine, so the `=` form is only flagged in comparison position.)
hits=$(grep -nE '<> *None|= *None *(then|&&|\|\||\))' $ml_sources /dev/null || true)
if [ -n "$hits" ]; then
  offend "compare options with Option.is_none / Option.is_some, not (= None)" "$hits"
fi

# --- 5. no bare polymorphic compare -------------------------------------
# Polymorphic compare on Cell.t, tree nodes or anything containing them
# orders by memory representation, not meaning (and loops on cyclic link
# structures).  Use a dedicated comparison: Int.compare, String.compare,
# Cell.compare_dict, List.compare, ...  The pattern permits qualified
# M.compare and definitions of compare functions.
hits=$(grep -nE '(^|[^._A-Za-z0-9])compare[[:space:](]' $ml_sources /dev/null \
  | grep -vE 'let compare|val compare|~compare|\bcompare_|"[^"]*compare[^"]*"' || true)
if [ -n "$hits" ]; then
  offend "bare polymorphic compare; use a typed comparison (Int.compare, Cell.compare_dict, ...)" "$hits"
fi

# --- 6. every library module declares its interface ----------------------
# An .mli is what keeps internals private and the strict warning profile
# honest (unused exports show up as errors).  Executables and tests are
# exempt.
missing=""
for f in $(git ls-files 'lib/**.ml'); do
  [ -f "${f%.ml}.mli" ] || missing="$missing $f"
done
if [ -n "$missing" ]; then
  offend "library module without an .mli interface" $missing
fi

# --- 7. all durable writes go through the durability module ---------------
# A raw open_out or Sys.rename in lib/ or bin/ bypasses the atomic-write
# protocol (temp + fsync + rename), the fsync discipline and the failpoint
# instrumentation the crash suite relies on — a write the crash matrix
# cannot kill is a write whose recovery story is untested.  Read-side
# (open_in*) remains free; bench/, examples/ and test/ are out of scope.
durable_sources=$(git ls-files 'lib/**.ml' 'bin/**.ml' | grep -v '^lib/util/durable\.ml$')
hits=$(grep -nE '\bopen_out(_gen|_bin)?\b|\bSys\.rename\b' $durable_sources /dev/null || true)
if [ -n "$hits" ]; then
  offend "raw file write outside lib/util/durable.ml; route it through Qc_util.Durable" "$hits"
fi

# --- 8. one clock: no raw Unix.gettimeofday -------------------------------
# Mixing wall-clock and monotonic timestamps is how span durations go
# negative across NTP steps.  Qc_util.Clock is the single time source:
# Clock.now_ns / now_s for durations (monotonic), Clock.wall_s for the rare
# calendar need.  Only clock.ml itself may touch the raw primitive.
clock_sources=$(git ls-files 'lib/**.ml' 'bin/**.ml' 'bench/**.ml' 'examples/**.ml' 'test/**.ml' \
  | grep -v '^lib/util/clock\.ml$')
hits=$(grep -n 'Unix\.gettimeofday' $clock_sources /dev/null || true)
if [ -n "$hits" ]; then
  offend "raw Unix.gettimeofday outside lib/util/clock.ml; use Qc_util.Clock (now_s/now_ns/wall_s)" "$hits"
fi

if [ "$fails" -ne 0 ]; then
  echo "lint: $fails rule(s) violated" >&2
  exit 1
fi
echo "lint: all static checks passed"
