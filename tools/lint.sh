#!/usr/bin/env bash
# Shell-level repo checks: the few rules that live outside any .ml file's
# AST.  Everything source-level (banned identifiers, module-boundary and
# concurrency discipline, catch-all handlers, ...) moved to tools/qclint,
# which parses every file with compiler-libs instead of grepping it — run
# it directly with `dune build @lint`.  From the repo root:
#
#     bash tools/lint.sh
#
# Exits nonzero with one line per offence.  CI runs this in the `lint` job.
set -u
cd "$(dirname "$0")/.."

fails=0
offend() {
  echo "lint: $1" >&2
  shift
  if [ "$#" -gt 0 ]; then printf '  %s\n' "$@" >&2; fi
  fails=$((fails + 1))
}

# --- 1. no build artifacts under version control -------------------------
tracked_build=$(git ls-files '_build/**' | head -5)
if [ -n "$tracked_build" ]; then
  offend "_build artifacts are tracked (add them to .gitignore and git rm --cached)" $tracked_build
fi

# --- 2. every library module declares its interface ----------------------
# An .mli is what keeps internals private and the strict warning profile
# honest (unused exports show up as errors).  Executables and tests are
# exempt.  This stays shell-side: it is about which files exist, not what
# any file contains.
missing=""
for f in $(git ls-files 'lib/**.ml'); do
  [ -f "${f%.ml}.mli" ] || missing="$missing $f"
done
if [ -n "$missing" ]; then
  offend "library module without an .mli interface" $missing
fi

# --- 3. the AST-level rules ----------------------------------------------
# qclint (tools/qclint) checks the parsed structure of every source file:
# banned identifiers through aliases and opens, Domain/durability/clock
# module boundaries, catch-all handlers, top-level mutable state, DLS
# drain/absorb pairing.  See `qclint --rules` and DESIGN.md "Static
# analysis".
if command -v dune >/dev/null 2>&1; then
  if ! dune build @lint; then
    offend "qclint found violations (see above; run: dune build @lint)"
  fi
else
  echo "lint: dune not found; skipping the AST-level rules (run: dune build @lint)" >&2
fi

if [ "$fails" -ne 0 ]; then
  echo "lint: $fails rule(s) violated" >&2
  exit 1
fi
echo "lint: all static checks passed"
