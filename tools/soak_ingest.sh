#!/usr/bin/env bash
# Soak the streaming ingester under a random kill schedule.
#
#   tools/soak_ingest.sh /path/to/qct.exe [seconds]
#
# Each round streams a few hundred tuples (some rounds laced with poison
# lines) into a warehouse through `qct ingest` with QC_FAILPOINTS armed at
# a randomly chosen refreeze/journal site in a random power-loss mode, so
# the process dies mid-batch, mid-refreeze, or mid-publish.  Some rounds
# also stretch the background-refreeze window with a sleep failpoint so
# kills land inside it.  After every round — killed or not — the directory
# must recover (`qct recover`) and pass the deep invariant audit
# (`qct check --deep`), and the committed generation must never move
# backwards.  Reproduce a failing schedule with QC_SOAK_SEED.
set -u

QCT="${1:?usage: soak_ingest.sh /path/to/qct.exe [seconds]}"
QCT=$(cd "$(dirname "$QCT")" && pwd)/$(basename "$QCT")
DURATION="${2:-30}"
SEED="${QC_SOAK_SEED:-$RANDOM}"
RANDOM=$SEED

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cd "$work" || exit 1

printf 'Store,Product,Season,Sale\nS1,P1,s,6\nS1,P2,s,12\nS2,P1,f,9\n' > sales.csv
mkdir wh
cp sales.csv wh/base.csv
"$QCT" build sales.csv wh/tree.qct >/dev/null 2>&1 || exit 1
"$QCT" recover wh >/dev/null 2>&1 || exit 1

# the sites a kill schedule may arm: every refreeze step plus the journal
# and checkpoint sites the ingest loop crosses
sites=(refreeze.rotate refreeze.freeze refreeze.segment-delete refreeze.publish
       wal.append wal.fsync save.base.rename save.manifest.rename save.wal-truncate)
modes=(crash torn crash)   # biased toward crash; torn degrades to crash at non-write sites

committed_gen() {
  "$QCT" wal wh --json 2>/dev/null | grep -o '"generation":[0-9]*' | head -1 | cut -d: -f2
}

rounds=0 kills=0 prev_gen=$(committed_gen)
end=$((SECONDS + DURATION))
while [ "$SECONDS" -lt "$end" ]; do
  rounds=$((rounds + 1))
  site=${sites[$((RANDOM % ${#sites[@]}))]}
  mode=${modes[$((RANDOM % ${#modes[@]}))]}
  hit=$((RANDOM % 4 + 1))
  spec="${site}@${hit}:${mode}"
  # every third round, stretch the refreeze window so the kill can land
  # while the background domain is mid-freeze
  if [ $((rounds % 3)) -eq 0 ] && [ "$site" != refreeze.freeze ]; then
    spec="refreeze.freeze:sleep-150,$spec"
  fi
  n=$((RANDOM % 400 + 100))
  for i in $(seq 1 "$n"); do
    echo "S$((RANDOM % 5)),P$((RANDOM % 7)),$([ $((i % 2)) -eq 0 ] && echo s || echo f),$i.5"
  done > stream.csv
  if [ $((rounds % 4)) -eq 0 ]; then
    printf 'poison-line\nS1,P1,s,not-a-number\n' >> stream.csv
  fi

  QC_FAILPOINTS="$spec" "$QCT" ingest wh --from stream.csv \
    --batch-rows 16 --refreeze-rows 64 --refreeze-secs 0.2 >/dev/null 2>&1
  status=$?
  case $status in
    0) ;;                         # armed site never fired this round
    42) kills=$((kills + 1)) ;;   # injected power loss
    *) echo "soak: round $rounds ($spec) exited $status" >&2; exit 1 ;;
  esac

  if ! "$QCT" recover wh >/dev/null 2>&1; then
    echo "soak: recover failed after round $rounds ($spec), seed $SEED" >&2
    exit 1
  fi
  if ! "$QCT" check wh --deep >/dev/null 2>&1; then
    echo "soak: deep check failed after round $rounds ($spec), seed $SEED" >&2
    exit 1
  fi
  gen=$(committed_gen)
  if [ -n "$prev_gen" ] && [ -n "$gen" ] && [ "$gen" -lt "$prev_gen" ]; then
    echo "soak: committed generation regressed $prev_gen -> $gen after round $rounds ($spec), seed $SEED" >&2
    exit 1
  fi
  prev_gen=$gen
done

echo "soak: $rounds round(s), $kills injected kill(s), committed generation $prev_gen, seed $SEED - all recoveries clean"
if [ "$kills" -eq 0 ]; then
  echo "soak: the schedule never fired a kill - not a real soak" >&2
  exit 1
fi
