open Qc_cube
module T = Qc_core.Qc_tree

(* ---------- The paper's running example, Figures 4 and 6 ---------- *)

let test_paper_temp_classes () =
  let table = Helpers.sales_table () in
  let classes = Qc_core.Dfs.run table in
  Alcotest.(check int) "11 temporary classes (Figure 6)" 11 (List.length classes);
  let schema = Table.schema table in
  let find id = List.find (fun (tc : Qc_core.Temp_class.t) -> tc.id = id) classes in
  let show cell = Cell.to_string schema cell in
  (* spot-check the rows of Figure 6 *)
  let i0 = find 0 in
  Alcotest.(check string) "i0 ub" "(*, *, *)" (show i0.ub);
  Alcotest.(check int) "i0 child" (-1) i0.child;
  let i5 = find 5 in
  Alcotest.(check string) "i5 ub" "(*, P1, *)" (show i5.ub);
  Alcotest.(check (float 1e-9)) "i5 avg 7.5" 7.5 (Agg.value Agg.Avg i5.agg);
  let i9 = find 9 in
  Alcotest.(check string) "i9 ub" "(S1, *, s)" (show i9.ub);
  Alcotest.(check string) "i9 lb" "(*, *, s)" (show i9.lb);
  Alcotest.(check int) "i9 child" 0 i9.child;
  let i10 = find 10 in
  Alcotest.(check string) "i10 ub" "(S2, P1, f)" (show i10.ub);
  Alcotest.(check string) "i10 lb" "(*, *, f)" (show i10.lb)

let test_paper_tree_shape () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  (* Figure 4: 10 labeled nodes + root, 6 classes, 5 drill-down links. *)
  Alcotest.(check int) "nodes" 11 (T.n_nodes tree);
  Alcotest.(check int) "classes" 6 (T.n_classes tree);
  Alcotest.(check int) "links" 5 (T.n_links tree);
  Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate tree)

let test_paper_class_aggregates () =
  let table = Helpers.sales_table () in
  let schema = Table.schema table in
  let tree = T.of_table table in
  (* The six classes of Figure 2(b)/Figure 4 with their AVG values. *)
  let expect =
    [
      ([ "*"; "*"; "*" ], 9.0);
      ([ "S1"; "P2"; "s" ], 12.0);
      ([ "S2"; "P1"; "f" ], 9.0);
      ([ "S1"; "*"; "s" ], 9.0);
      ([ "S1"; "P1"; "s" ], 6.0);
      ([ "*"; "P1"; "*" ], 7.5);
    ]
  in
  List.iter
    (fun (ub, avg) ->
      match T.find_path tree (Cell.parse schema ub) with
      | Some node -> (
        match node.T.agg with
        | Some a -> Alcotest.(check (float 1e-9)) (String.concat "," ub) avg (Agg.value Agg.Avg a)
        | None -> Alcotest.failf "no aggregate at %s" (String.concat "," ub))
      | None -> Alcotest.failf "missing path %s" (String.concat "," ub))
    expect

(* ---------- Structural properties on random tables ---------- *)

let build_of_config (dims, card, rows, seed) =
  let rng = Qc_util.Rng.create seed in
  let table = Helpers.random_table rng ~dims ~card ~rows () in
  (table, T.of_table table)

let prop_validate =
  Helpers.qcheck_case ~name:"construction yields a valid tree" Helpers.table_config
    (fun cfg ->
      let _, tree = build_of_config cfg in
      T.validate tree = Ok ())

let prop_unique_ub_paths =
  Helpers.qcheck_case ~name:"one class node per distinct upper bound (Theorem 1)"
    Helpers.table_config (fun cfg ->
      let table, tree = build_of_config cfg in
      let classes = Qc_core.Dfs.run table in
      let distinct = Cell.Tbl.create 64 in
      List.iter
        (fun (tc : Qc_core.Temp_class.t) -> Cell.Tbl.replace distinct tc.ub ())
        classes;
      T.n_classes tree = Cell.Tbl.length distinct)

let prop_class_agg_matches_cover =
  Helpers.qcheck_case ~name:"class node aggregate equals its cover aggregate"
    Helpers.table_config (fun cfg ->
      let table, tree = build_of_config cfg in
      let ok = ref true in
      T.iter_classes
        (fun _ ub agg ->
          if not (Agg.approx_equal agg (Table.cover_agg table ub)) then ok := false)
        tree;
      !ok)

let prop_ub_is_maximal =
  Helpers.qcheck_case ~name:"upper bounds are maximal in their class"
    Helpers.table_config (fun cfg ->
      let table, tree = build_of_config cfg in
      let dims = Table.n_dims table in
      let card = Schema.cardinality (Table.schema table) 0 in
      let ok = ref true in
      T.iter_classes
        (fun _ ub agg ->
          (* specializing any * dimension changes the cover set *)
          for j = 0 to dims - 1 do
            if ub.(j) = Cell.all then
              for v = 1 to card do
                let x = Cell.copy ub in
                x.(j) <- v;
                let a = Table.cover_agg table x in
                if a.Agg.count = agg.Agg.count && a.Agg.count > 0 then ok := false
              done
          done)
        tree;
      !ok)

let prop_tree_deterministic =
  Helpers.qcheck_case ~name:"construction is deterministic" Helpers.table_config (fun cfg ->
      let _, t1 = build_of_config cfg in
      let _, t2 = build_of_config cfg in
      T.canonical_string t1 = T.canonical_string t2)

let prop_insert_order_irrelevant =
  Helpers.qcheck_case ~name:"tree is unique given the class set (Theorem 1)"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      (* Build from temp classes fed in a shuffled order: the sort inside
         construction must normalize it (ties keep generation ids, which we
         preserve). *)
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let classes = Qc_core.Dfs.run table in
      let arr = Array.of_list classes in
      Qc_util.Rng.shuffle rng arr;
      let t1 = T.of_temp_classes (Table.schema table) classes in
      let t2 = T.of_temp_classes (Table.schema table) (Array.to_list arr) in
      T.canonical_string t1 = T.canonical_string t2)

let prop_class_count_order_invariant =
  Helpers.qcheck_case ~count:60
    ~name:"the quotient partition is independent of dimension order" Helpers.table_config
    (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      (* permute dimensions and rebuild *)
      let perm = Array.init dims Fun.id in
      Qc_util.Rng.shuffle rng perm;
      let schema = Table.schema table in
      let names = List.init dims (fun i -> Schema.dim_name schema perm.(i)) in
      let schema' = Schema.create names in
      for i = 0 to dims - 1 do
        Array.iter
          (fun v -> ignore (Schema.encode_value schema' i v))
          (Qc_util.Dict.values (Schema.dict schema perm.(i)))
      done;
      let permuted = Table.create schema' in
      Table.iter
        (fun cell m -> Table.add_encoded permuted (Array.map (fun j -> cell.(j)) perm) m)
        table;
      let t1 = T.of_table table in
      let t2 = T.of_table permuted in
      (* classes are a property of the data, not of the dimension order
         (paper footnote 2: only node/link sharing depends on the order) *)
      T.n_classes t1 = T.n_classes t2)

let test_empty_table () =
  let schema = Schema.create [ "A"; "B" ] in
  let tree = T.of_table (Table.create schema) in
  Alcotest.(check int) "just the root" 1 (T.n_nodes tree);
  Alcotest.(check int) "no classes" 0 (T.n_classes tree)

let test_single_tuple () =
  let schema = Schema.create [ "A"; "B"; "C" ] in
  let table = Table.create schema in
  Table.add_row table [ "a"; "b"; "c" ] 5.0;
  let tree = T.of_table table in
  (* Everything collapses into one class with the tuple as upper bound. *)
  Alcotest.(check int) "one class" 1 (T.n_classes tree);
  Alcotest.(check int) "path nodes" 4 (T.n_nodes tree)

let test_node_cell_roundtrip () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  T.iter_classes
    (fun node ub _ ->
      match T.find_path tree ub with
      | Some n -> Alcotest.(check bool) "find_path inverts node_cell" true (n == node)
      | None -> Alcotest.fail "path lost")
    tree

let test_bytes_accounting () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  (* 10 non-root nodes, 5 links, 6 classes under the 4/4/8 model. *)
  Alcotest.(check int) "bytes" ((10 * 8) + (5 * 8) + (6 * 8)) (T.bytes tree)

let () =
  Alcotest.run "qc_tree"
    [
      ( "paper example",
        [
          Alcotest.test_case "temp classes (Fig 6)" `Quick test_paper_temp_classes;
          Alcotest.test_case "tree shape (Fig 4)" `Quick test_paper_tree_shape;
          Alcotest.test_case "class aggregates" `Quick test_paper_class_aggregates;
        ] );
      ( "properties",
        [
          prop_validate;
          prop_unique_ub_paths;
          prop_class_agg_matches_cover;
          prop_ub_is_maximal;
          prop_tree_deterministic;
          prop_insert_order_irrelevant;
          prop_class_count_order_invariant;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty table" `Quick test_empty_table;
          Alcotest.test_case "single tuple" `Quick test_single_tuple;
          Alcotest.test_case "node_cell/find_path" `Quick test_node_cell_roundtrip;
          Alcotest.test_case "byte accounting" `Quick test_bytes_accounting;
        ] );
    ]
