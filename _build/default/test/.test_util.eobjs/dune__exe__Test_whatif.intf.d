test/test_whatif.mli:
