test/test_quotient.mli:
