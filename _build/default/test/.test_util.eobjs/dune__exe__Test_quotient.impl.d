test/test_quotient.ml: Agg Alcotest Array Cell Float Helpers List Option Qc_core Qc_cube Qc_util Schema Table
