test/test_cube.mli:
