test/test_qctree.mli:
