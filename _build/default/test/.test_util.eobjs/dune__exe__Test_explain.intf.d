test/test_explain.mli:
