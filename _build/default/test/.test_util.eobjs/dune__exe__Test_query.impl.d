test/test_query.ml: Agg Alcotest Array Cell Full_cube Helpers List Option Qc_core Qc_cube Qc_data Qc_util Schema Table
