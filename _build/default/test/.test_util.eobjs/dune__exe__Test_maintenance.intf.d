test/test_maintenance.mli:
