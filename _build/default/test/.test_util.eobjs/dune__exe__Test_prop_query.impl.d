test/test_prop_query.ml: Agg Alcotest Array Cell Full_cube List Prop Qc_core Qc_cube
