test/test_serial.ml: Agg Alcotest Buffer Cell Filename Fun Helpers List Printexc Qc_core Qc_cube Qc_util Schema String Sys Table
