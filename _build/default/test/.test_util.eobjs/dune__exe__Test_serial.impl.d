test/test_serial.ml: Agg Alcotest Cell Filename Fun Helpers List Qc_core Qc_cube Qc_util Schema String Sys Table
