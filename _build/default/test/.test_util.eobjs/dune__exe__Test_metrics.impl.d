test/test_metrics.ml: Alcotest Array Fun Jsonx List Metrics Option Qc_util String
