test/test_metrics.mli:
