test/test_hierarchy.ml: Agg Alcotest Array Hierarchy List Option Printf Qc_core Qc_cube Qc_util Schema Table
