test/prop.ml: Array Cell List Printf QCheck QCheck_alcotest Qc_cube Qc_util Random Schema String Sys Table
