test/test_data.ml: Alcotest Array Buc Float Hashtbl Helpers List Qc_core Qc_cube Qc_data Qc_util Schema Table
