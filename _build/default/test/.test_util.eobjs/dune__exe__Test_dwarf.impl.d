test/test_dwarf.ml: Agg Alcotest Array Buc Cell Helpers List Option Qc_core Qc_cube Qc_data Qc_dwarf Qc_util Schema Table
