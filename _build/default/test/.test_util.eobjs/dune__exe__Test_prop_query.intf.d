test/test_prop_query.mli:
