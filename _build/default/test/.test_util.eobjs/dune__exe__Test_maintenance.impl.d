test/test_maintenance.ml: Agg Alcotest Array Cell Fun Helpers Printf QCheck Qc_core Qc_cube Qc_util Schema Table
