test/test_warehouse.ml: Agg Alcotest Array Cell Filename Fun Helpers List Qc_cube Qc_util Qc_warehouse String Sys Table
