test/helpers.ml: Agg Alcotest Array List Printf QCheck QCheck_alcotest Qc_cube Qc_util Schema Table
