test/test_warehouse.mli:
