test/test_qctree.ml: Agg Alcotest Array Cell Fun Helpers List Qc_core Qc_cube Qc_util Schema String Table
