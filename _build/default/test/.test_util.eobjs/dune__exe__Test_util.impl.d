test/test_util.ml: Alcotest Array Dict Float Fun List Qc_util Rng Size Tablefmt
