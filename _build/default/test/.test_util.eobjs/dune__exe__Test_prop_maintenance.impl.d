test/test_prop_maintenance.ml: Agg Alcotest Array Fun Helpers List Prop Qc_core Qc_cube Qc_util Qc_warehouse Table
