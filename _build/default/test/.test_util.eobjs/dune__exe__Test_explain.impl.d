test/test_explain.ml: Agg Alcotest Array Cell Format Fun Helpers List Qc_core Qc_cube Qc_util String Table
