test/test_prop_maintenance.mli:
