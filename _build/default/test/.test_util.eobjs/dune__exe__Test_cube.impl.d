test/test_cube.ml: Agg Alcotest Array Buc Cell Float Full_cube Gen Helpers List Printf QCheck Qc_cube Qc_util Schema String Table
