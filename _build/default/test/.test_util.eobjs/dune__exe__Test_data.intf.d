test/test_data.mli:
