test/test_whatif.ml: Agg Alcotest Array Cell Fun Helpers List Printf Qc_core Qc_cube Qc_util Schema Table
