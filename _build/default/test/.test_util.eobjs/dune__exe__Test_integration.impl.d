test/test_integration.ml: Agg Alcotest Array Cell Full_cube Fun Helpers List Printf Qc_core Qc_cube Qc_data Qc_dwarf Qc_util Schema Table
