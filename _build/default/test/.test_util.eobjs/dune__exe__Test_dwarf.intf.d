test/test_dwarf.mli:
