open Qc_cube
module T = Qc_core.Qc_tree
module S = Qc_core.Serial

let prop_roundtrip_canonical =
  Helpers.qcheck_case ~count:150 ~name:"save/load preserves the canonical tree"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let tree' = S.of_string (S.to_string tree) in
      T.canonical_string tree = T.canonical_string tree')

let prop_roundtrip_queries =
  Helpers.qcheck_case ~count:80 ~name:"a reloaded tree answers identically"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let tree' = S.of_string (S.to_string tree) in
      let ok = ref true in
      Helpers.iter_all_cells ~dims ~card (fun cell ->
          match (Qc_core.Query.point tree cell, Qc_core.Query.point tree' cell) with
          | None, None -> ()
          | Some a, Some b when Agg.equal a b -> ()
          | _ -> ok := false);
      !ok)

let test_roundtrip_schema () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  let tree' = S.of_string (S.to_string tree) in
  let s = T.schema tree and s' = T.schema tree' in
  Alcotest.(check int) "dims" (Schema.n_dims s) (Schema.n_dims s');
  Alcotest.(check string) "measure" (Schema.measure_name s) (Schema.measure_name s');
  for i = 0 to Schema.n_dims s - 1 do
    Alcotest.(check string) "dim name" (Schema.dim_name s i) (Schema.dim_name s' i);
    Alcotest.(check int) "cardinality" (Schema.cardinality s i) (Schema.cardinality s' i)
  done;
  (* dictionary codes are preserved, so external-value queries agree *)
  let q t vals = Qc_core.Query.point_value t Agg.Avg (Cell.parse (T.schema t) vals) in
  Alcotest.(check (option (float 1e-9))) "query by name" (q tree [ "S2"; "*"; "f" ])
    (q tree' [ "S2"; "*"; "f" ])

let test_float_exactness () =
  let schema = Schema.create [ "A" ] in
  let table = Table.create schema in
  Table.add_row table [ "x" ] 0.1;
  Table.add_row table [ "x" ] 0.2;
  let tree = T.of_table table in
  let tree' = S.of_string (S.to_string tree) in
  match
    ( Qc_core.Query.point tree (Cell.parse schema [ "x" ]),
      Qc_core.Query.point tree' (Cell.parse (T.schema tree') [ "x" ]) )
  with
  | Some a, Some b ->
    Alcotest.(check bool) "bit-exact sums" true (a.Agg.sum = b.Agg.sum)
  | _ -> Alcotest.fail "query failed"

let test_file_io () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  let path = Filename.temp_file "qctree" ".qct" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save tree path;
      let tree' = S.load path in
      Alcotest.(check string) "identical" (T.canonical_string tree) (T.canonical_string tree'))

let test_escaped_values () =
  let schema = Schema.create ~measure_name:"the measure" [ "dim with space" ] in
  let table = Table.create schema in
  Table.add_row table [ "value with space" ] 1.0;
  Table.add_row table [ "a%b" ] 2.0;
  let tree = T.of_table table in
  let tree' = S.of_string (S.to_string tree) in
  let s' = T.schema tree' in
  Alcotest.(check string) "dim name" "dim with space" (Schema.dim_name s' 0);
  Alcotest.(check string) "measure name" "the measure" (Schema.measure_name s');
  Alcotest.(check string) "value" "value with space" (Schema.decode_value s' 0 1);
  Alcotest.(check string) "percent" "a%b" (Schema.decode_value s' 0 2)

let test_malformed_rejected () =
  Alcotest.check_raises "garbage record" (Failure "Serial: unexpected record \"bogus\"")
    (fun () -> ignore (S.of_string "qctree 1\nbogus line\n"));
  (* a link whose endpoints never appear must be rejected, not dropped *)
  Alcotest.check_raises "dangling link" (Failure "Serial: link endpoint not found") (fun () ->
      ignore
        (S.of_string
           "qctree 1\nschema 2 m\ndim A 1 a\ndim B 1 b\nlink 1 1 1,0 1,1\nend\n"))

let test_truncated_input () =
  (* truncation mid-file loses classes but still parses what is there;
     loading an empty payload yields an empty tree over an empty schema
     failure *)
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  let full = S.to_string tree in
  (* cut after the schema lines: the tree parses with zero classes *)
  let upto =
    let lines = String.split_on_char '\n' full in
    String.concat "\n" (List.filteri (fun i _ -> i < 5) lines) ^ "\nend\n"
  in
  let t = S.of_string upto in
  Alcotest.(check int) "no classes parsed" 0 (T.n_classes t)

let () =
  Alcotest.run "qc_serial"
    [
      ( "roundtrip",
        [
          prop_roundtrip_canonical;
          prop_roundtrip_queries;
          Alcotest.test_case "schema preserved" `Quick test_roundtrip_schema;
          Alcotest.test_case "float exactness" `Quick test_float_exactness;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "escaped values" `Quick test_escaped_values;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "truncated input" `Quick test_truncated_input;
        ] );
    ]
