(* Shared fixtures and oracles for the test suites. *)

open Qc_cube

(* The paper's running example (Figure 1): sales(Store, Product, Season). *)
let sales_table () =
  let schema = Schema.create ~measure_name:"Sale" [ "Store"; "Product"; "Season" ] in
  let table = Table.create schema in
  Table.add_row table [ "S1"; "P1"; "s" ] 6.0;
  Table.add_row table [ "S1"; "P2"; "s" ] 12.0;
  Table.add_row table [ "S2"; "P1"; "f" ] 9.0;
  table

(* A deterministic random table where every dimension value code in
   [1..card] is pre-registered, so the full cell space can be enumerated. *)
let random_table rng ?schema ~dims ~card ~rows () =
  let schema =
    match schema with
    | Some s -> s
    | None ->
      let s = Schema.create (List.init dims (fun i -> Printf.sprintf "D%d" i)) in
      for i = 0 to dims - 1 do
        for v = 1 to card do
          ignore (Schema.encode_value s i (Printf.sprintf "v%d" v))
        done
      done;
      s
  in
  let table = Table.create schema in
  for _ = 1 to rows do
    let cell = Array.init dims (fun _ -> 1 + Qc_util.Rng.int rng card) in
    Table.add_encoded table cell (float_of_int (Qc_util.Rng.int rng 50))
  done;
  table

(* Enumerate every cell of the cube space (codes 0..card per dimension). *)
let iter_all_cells ~dims ~card f =
  let cell = Array.make dims 0 in
  let rec go i =
    if i >= dims then f cell
    else
      for v = 0 to card do
        cell.(i) <- v;
        go (i + 1);
        cell.(i) <- 0
      done
  in
  go 0

let agg_testable =
  Alcotest.testable Agg.pp (fun a b -> Agg.approx_equal a b)

let agg_option = Alcotest.option agg_testable

(* QCheck arbitrary for a (dims, card, rows, seed) table configuration. *)
let table_config =
  QCheck.make
    ~print:(fun (d, c, r, s) -> Printf.sprintf "dims=%d card=%d rows=%d seed=%d" d c r s)
    QCheck.Gen.(
      let* d = int_range 2 4 in
      let* c = int_range 2 4 in
      let* r = int_range 1 25 in
      let* s = int_range 0 1_000_000 in
      return (d, c, r, s))

let qcheck_case ?(count = 100) ~name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Exhaustive point-query oracle comparison: [query cell] must equal the
   cover aggregate computed by scanning the table. *)
let check_point_queries_against_table table query =
  let schema = Table.schema table in
  let dims = Table.n_dims table in
  let card = Schema.cardinality schema 0 in
  let ok = ref true in
  iter_all_cells ~dims ~card (fun cell ->
      let truth = Table.cover_agg table cell in
      match (query cell, truth.Agg.count) with
      | None, 0 -> ()
      | Some a, n when n > 0 && Agg.approx_equal a truth -> ()
      | _ -> ok := false);
  !ok
