open Qc_cube
module W = Qc_warehouse.Warehouse

let fresh_dir () =
  let dir = Filename.temp_file "qcwh" "" in
  Sys.remove dir;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_create_and_query () =
  let base = Helpers.sales_table () in
  let w = W.create base in
  let schema = W.schema w in
  Alcotest.(check (option (float 1e-9))) "avg" (Some 9.0)
    (W.query_value w Agg.Avg (Cell.parse schema [ "S2"; "*"; "f" ]));
  Alcotest.(check (result unit string)) "self check" (Ok ()) (W.self_check w);
  Alcotest.(check bool) "stats mention rows" true
    (String.length (W.stats w) > 0)

let test_mutations_keep_invariant () =
  let base = Helpers.sales_table () in
  let w = W.create base in
  let schema = W.schema w in
  let delta = Table.create schema in
  Table.add_row delta [ "S2"; "P2"; "f" ] 3.0;
  Table.add_row delta [ "S3"; "P1"; "s" ] 7.0;
  ignore (W.insert w delta);
  Alcotest.(check (result unit string)) "after insert" (Ok ()) (W.self_check w);
  let removal = Table.create schema in
  Table.add_row removal [ "S2"; "P2"; "f" ] 3.0;
  ignore (W.delete w removal);
  Alcotest.(check (result unit string)) "after delete" (Ok ()) (W.self_check w);
  Alcotest.(check int) "rows" 4 (Table.n_rows (W.table w));
  (* modification *)
  let old_rows = Table.create schema in
  Table.add_row old_rows [ "S3"; "P1"; "s" ] 7.0;
  let new_rows = Table.create schema in
  Table.add_row new_rows [ "S3"; "P1"; "f" ] 8.0;
  ignore (W.update w ~old_rows ~new_rows);
  Alcotest.(check (result unit string)) "after update" (Ok ()) (W.self_check w);
  match W.query w (Cell.parse schema [ "S3"; "*"; "*" ]) with
  | Some a -> Alcotest.(check (float 1e-9)) "moved sale" 8.0 a.Agg.sum
  | None -> Alcotest.fail "S3 lost"

let test_save_open_roundtrip () =
  let base = Helpers.sales_table () in
  let w = W.create base in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      W.save w dir;
      let w' = W.open_dir dir in
      Alcotest.(check int) "rows" (Table.n_rows (W.table w)) (Table.n_rows (W.table w'));
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w');
      let schema' = W.schema w' in
      Alcotest.(check (option (float 1e-9))) "query after reopen" (Some 7.5)
        (W.query_value w' Agg.Avg (Cell.parse schema' [ "*"; "P1"; "*" ]));
      (* maintenance continues after reopening *)
      let delta = Table.create schema' in
      Table.add_row delta [ "S1"; "P1"; "f" ] 2.0;
      ignore (W.insert w' delta);
      Alcotest.(check (result unit string)) "invariant after reopen+insert" (Ok ())
        (W.self_check w'))

let test_iceberg_cache_invalidation () =
  let base = Helpers.sales_table () in
  let w = W.create base in
  let schema = W.schema w in
  let before = W.iceberg w Agg.Count ~threshold:2.0 in
  let delta = Table.create schema in
  Table.add_row delta [ "S2"; "P1"; "f" ] 1.0;
  ignore (W.insert w delta);
  let after = W.iceberg w Agg.Count ~threshold:2.0 in
  (* the S2 branch now has count 2, so more classes pass the threshold *)
  Alcotest.(check bool) "cache refreshed" true (List.length after > List.length before)

let test_random_workload () =
  let rng = Qc_util.Rng.create 808 in
  let base = Helpers.random_table rng ~dims:3 ~card:4 ~rows:20 () in
  let w = W.create base in
  for _ = 1 to 6 do
    if Qc_util.Rng.bool rng || Table.n_rows (W.table w) < 4 then begin
      let delta =
        Helpers.random_table rng ~schema:(W.schema w) ~dims:3 ~card:4
          ~rows:(1 + Qc_util.Rng.int rng 4) ()
      in
      ignore (W.insert w delta)
    end
    else begin
      let n = Table.n_rows (W.table w) in
      let idxs = Array.init n Fun.id in
      Qc_util.Rng.shuffle rng idxs;
      let k = 1 + Qc_util.Rng.int rng 3 in
      let delta = Table.sub (W.table w) (Array.to_list (Array.sub idxs 0 k)) in
      ignore (W.delete w delta)
    end
  done;
  Alcotest.(check (result unit string)) "invariant after workload" (Ok ()) (W.self_check w)

let () =
  Alcotest.run "qc_warehouse"
    [
      ( "warehouse",
        [
          Alcotest.test_case "create and query" `Quick test_create_and_query;
          Alcotest.test_case "mutations keep invariant" `Quick test_mutations_keep_invariant;
          Alcotest.test_case "save/open roundtrip" `Quick test_save_open_roundtrip;
          Alcotest.test_case "iceberg cache invalidation" `Quick test_iceberg_cache_invalidation;
          Alcotest.test_case "random workload" `Quick test_random_workload;
        ] );
    ]
