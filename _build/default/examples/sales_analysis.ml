(* Semantic OLAP on a synthetic retail cube.

   This is the scenario the paper's introduction motivates: a manager
   explores a large cube without knowing which dimensions to drill into.
   Navigation happens over quotient-cube classes — intelligent roll-up finds
   the most general circumstances under which an observation holds, and
   equivalent drill-downs expose specializations that do not change the
   data.  Run with:  dune exec examples/sales_analysis.exe *)

open Qc_cube

let () =
  (* A skewed sales cube: 5 dimensions, 20k transactions. *)
  let spec =
    { Qc_data.Synthetic.default with dims = 5; cardinality = 8; rows = 4_000; seed = 2026 }
  in
  let table = Qc_data.Synthetic.generate spec in
  let schema = Table.schema table in
  Printf.printf "Synthetic sales cube: %d tuples over %d dimensions (Zipf %.1f)\n"
    (Table.n_rows table) (Table.n_dims table) spec.zipf;

  let (quotient, dt) = Qc_util.Timer.time (fun () -> Qc_core.Quotient.of_table table) in
  let cube_cells = Buc.count_cells table in
  Printf.printf "Full cube: %d cells; quotient cube: %d classes (%.1f%%), built in %.2fs\n\n"
    cube_cells
    (Qc_core.Quotient.n_classes quotient)
    (100.0 *. float_of_int (Qc_core.Quotient.n_classes quotient) /. float_of_int cube_cells)
    dt;

  (* The manager notices an aggregate cell and asks: how general is this
     observation?  Start from a roll-up of a rare transaction, where the
     aggregate is carried by few tuples and generalizes far. *)
  let start =
    let anchor =
      let i = ref 0 in
      (* pick a transaction with uncommon values: maximize the value codes *)
      for j = 0 to Table.n_rows table - 1 do
        let s t = Array.fold_left ( + ) 0 (Table.tuple table t) in
        if s j > s !i then i := j
      done;
      Table.tuple table !i
    in
    let c = Cell.copy anchor in
    c.(1) <- Cell.all;
    c.(3) <- Cell.all;
    c
  in
  Printf.printf "Observed cell %s\n" (Cell.to_string schema start);
  (match Qc_core.Explore.intelligent_rollup quotient Agg.Sum start with
  | Some r ->
    Printf.printf
      "Intelligent roll-up: SUM holds across a region of %d class(es); most general:\n"
      (List.length r.region);
    List.iter
      (fun (c : Qc_core.Quotient.cls) ->
        Printf.printf "  up to %s (and everything between, %d tuples covered)\n"
          (Cell.to_string schema c.ub) c.agg.Agg.count)
      r.most_general
  | None -> print_endline "cell not in cube?!");

  (* Drill into the class: what does it actually contain? *)
  (match Qc_core.Quotient.class_of_cell quotient start with
  | Some cls ->
    let members = Qc_core.Quotient.members ~limit:8 quotient cls in
    Printf.printf "\nDrilling into its class (upper bound %s): %d member cells shown\n"
      (Cell.to_string schema cls.ub) (List.length members);
    List.iter (fun m -> Printf.printf "  %s\n" (Cell.to_string schema m)) members
  | None -> ());

  (* Equivalent drill-downs from a coarse cell: specializations that lead to
     the same class reveal that the underlying data does not distinguish
     them. *)
  (* use the rare observed cell: its cover is small, so different
     specializations often coincide *)
  let coarse = start in
  let dds = Qc_core.Explore.equivalent_drilldowns quotient coarse in
  let by_class = Hashtbl.create 32 in
  List.iter
    (fun (dim, v, (cls : Qc_core.Quotient.cls)) ->
      Hashtbl.replace by_class cls.cid
        ((dim, v) :: (Option.value ~default:[] (Hashtbl.find_opt by_class cls.cid))))
    dds;
  let interesting =
    Hashtbl.fold (fun cid dd acc -> if List.length dd > 1 then (cid, dd) :: acc else acc)
      by_class []
  in
  Printf.printf "\nFrom %s, %d drill-downs reach only %d distinct classes;\n"
    (Cell.to_string schema coarse) (List.length dds) (Hashtbl.length by_class);
  Printf.printf "%d class(es) are reached by several equivalent specializations, e.g.:\n"
    (List.length interesting);
  (match interesting with
  | (cid, dd) :: _ ->
    let cls = Qc_core.Quotient.find quotient cid in
    Printf.printf "  class %s <- {%s}\n"
      (Cell.to_string schema cls.ub)
      (String.concat "; "
         (List.map
            (fun (dim, v) ->
              Printf.sprintf "%s=%s" (Schema.dim_name schema dim) (Schema.decode_value schema dim v))
            dd))
  | [] -> ());

  (* An iceberg report over the tree: heavy classes by COUNT. *)
  let tree = Qc_core.Qc_tree.of_table table in
  let index = Qc_core.Query.make_index tree Agg.Count in
  let heavy = Qc_core.Query.iceberg index ~threshold:(0.05 *. float_of_int (Table.n_rows table)) in
  Printf.printf "\nIceberg (classes covering >= 5%% of all transactions): %d classes\n"
    (List.length heavy);
  List.iteri
    (fun i (cell, agg) ->
      if i < 5 then
        Printf.printf "  %s -> count %d, avg %.1f\n" (Cell.to_string schema cell)
          agg.Agg.count (Agg.value Agg.Avg agg))
    heavy
