examples/sales_analysis.mli:
