examples/warehouse_lifecycle.mli:
