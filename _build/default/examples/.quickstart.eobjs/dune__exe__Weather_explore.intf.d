examples/weather_explore.mli:
