examples/quickstart.mli:
