examples/quickstart.ml: Agg Array Buc Cell Format List Printf Qc_core Qc_cube Schema Table
