examples/sales_analysis.ml: Agg Array Buc Cell Hashtbl List Option Printf Qc_core Qc_cube Qc_data Qc_util Schema String Table
