examples/warehouse_lifecycle.ml: Agg Cell Filename List Printf Qc_core Qc_cube Qc_data Schema String Sys Table
