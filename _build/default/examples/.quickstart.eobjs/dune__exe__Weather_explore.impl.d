examples/weather_explore.ml: Agg Array Buc Cell Float List Printf Qc_core Qc_cube Qc_data Qc_dwarf Qc_util Schema String Table
