examples/hierarchy_olap.ml: Agg Hierarchy List Printf Qc_core Qc_cube Qc_util Schema Table
