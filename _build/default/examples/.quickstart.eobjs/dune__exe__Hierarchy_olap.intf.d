examples/hierarchy_olap.mli:
