lib/warehouse/warehouse.ml: Agg Array Filename Fun List Logs Printf Qc_core Qc_cube Qc_data Qc_util Schema Sys Table
