lib/warehouse/warehouse.mli: Agg Cell Maintenance Packed Qc_core Qc_cube Qc_tree Qc_util Query Schema Table
