open Qc_cube

type t = {
  mutable base : Table.t;
  tree : Qc_core.Qc_tree.t;
  mutable index : (Agg.func * Qc_core.Query.measure_index) option;  (** iceberg cache *)
  mutable generation : int;  (** bumped on every mutation *)
  mutable index_generation : int;
}

let log = Logs.Src.create "qc.warehouse" ~doc:"QC-tree warehouse operations"

module Log = (val Logs.src_log log)

let create base =
  let tree = Qc_core.Qc_tree.of_table base in
  Log.info (fun m ->
      m "built warehouse: %d rows, %d classes" (Table.n_rows base)
        (Qc_core.Qc_tree.n_classes tree));
  { base; tree; index = None; generation = 0; index_generation = -1 }

let table t = t.base

let tree t = t.tree

let schema t = Table.schema t.base

let touch t = t.generation <- t.generation + 1

let insert t delta =
  let stats = Qc_core.Maintenance.insert_batch t.tree ~base:t.base ~delta in
  touch t;
  Log.info (fun m ->
      m "inserted %d rows (%d updated, %d carved, %d fresh classes)" (Table.n_rows delta)
        stats.updated stats.carved stats.fresh);
  stats

let delete t delta =
  let new_base, stats = Qc_core.Maintenance.delete_batch t.tree ~base:t.base ~delta in
  t.base <- new_base;
  touch t;
  Log.info (fun m ->
      m "deleted %d rows (%d classes removed, %d merged)" (Table.n_rows delta) stats.removed
        stats.merged);
  stats

let update t ~old_rows ~new_rows =
  let dstats = delete t old_rows in
  let istats = insert t new_rows in
  (dstats, istats)

let query t cell = Qc_core.Query.point t.tree cell

let query_value t func cell = Qc_core.Query.point_value t.tree func cell

let range t q = Qc_core.Query.range t.tree q

let iceberg t func ~threshold =
  let index =
    match t.index with
    | Some (f, idx) when f = func && t.index_generation = t.generation -> idx
    | Some _ | None ->
      let idx = Qc_core.Query.make_index t.tree func in
      t.index <- Some (func, idx);
      t.index_generation <- t.generation;
      idx
  in
  Qc_core.Query.iceberg index ~threshold

type stat = {
  rows : int;
  dims : int;
  classes : int;
  nodes : int;
  links : int;
  bytes : int;
}

let stats_record t =
  {
    rows = Table.n_rows t.base;
    dims = Table.n_dims t.base;
    classes = Qc_core.Qc_tree.n_classes t.tree;
    nodes = Qc_core.Qc_tree.n_nodes t.tree;
    links = Qc_core.Qc_tree.n_links t.tree;
    bytes = Qc_core.Qc_tree.bytes t.tree;
  }

let stats t =
  let s = stats_record t in
  Printf.sprintf "%d rows | %d classes | %d nodes | %d links | %d bytes" s.rows s.classes
    s.nodes s.links s.bytes

let stat_to_json s =
  Qc_util.Jsonx.Obj
    [
      ("rows", Qc_util.Jsonx.Int s.rows);
      ("dims", Qc_util.Jsonx.Int s.dims);
      ("classes", Qc_util.Jsonx.Int s.classes);
      ("nodes", Qc_util.Jsonx.Int s.nodes);
      ("links", Qc_util.Jsonx.Int s.links);
      ("bytes", Qc_util.Jsonx.Int s.bytes);
    ]

let stats_json t = Qc_util.Jsonx.to_string (stat_to_json (stats_record t))

let base_file dir = Filename.concat dir "base.csv"

let tree_file dir = Filename.concat dir "tree.qct"

let atomic_write path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
  Sys.rename tmp path

let save t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  atomic_write (base_file dir) (Qc_data.Csv.to_string t.base);
  atomic_write (tree_file dir) (Qc_core.Serial.to_string t.tree);
  Log.info (fun m -> m "saved warehouse to %s" dir)

let open_dir dir =
  (* Load the tree first and re-encode the CSV rows against the tree's
     schema, so warehouse, table and tree share one schema instance (the
     serial format preserves dictionary codes, so the re-encode assigns
     identical codes). *)
  let tree = Qc_core.Serial.load (tree_file dir) in
  let schema = Qc_core.Qc_tree.schema tree in
  let raw = Qc_data.Csv.load (base_file dir) in
  let raw_schema = Table.schema raw in
  if Schema.n_dims raw_schema <> Schema.n_dims schema then
    failwith "Warehouse.open_dir: base table and tree disagree on dimensions";
  let base = Table.create schema in
  Table.iter
    (fun cell m ->
      let values =
        List.init (Schema.n_dims raw_schema) (fun i -> Schema.decode_value raw_schema i cell.(i))
      in
      Table.add_row base values m)
    raw;
  Log.info (fun m -> m "opened warehouse %s: %d rows" dir (Table.n_rows base));
  { base; tree; index = None; generation = 0; index_generation = -1 }

let self_check t =
  match Qc_core.Qc_tree.validate t.tree with
  | Error e -> Error e
  | Ok () ->
    (* The class set (upper bounds and aggregates) must coincide with a
       fresh rebuild; links are checked structurally by [validate] and
       behaviourally by the test suite (after deletions a few redundant but
       harmless links may remain, so canonical equality is not required
       here). *)
    let rebuilt = Qc_core.Qc_tree.of_table t.base in
    let errors = ref [] in
    Qc_core.Qc_tree.iter_classes
      (fun _ ub agg ->
        match Qc_core.Qc_tree.find_path t.tree ub with
        | Some node -> (
          match node.Qc_core.Qc_tree.agg with
          | Some a when Agg.approx_equal a agg -> ()
          | Some _ -> errors := "aggregate mismatch" :: !errors
          | None -> errors := "missing class" :: !errors)
        | None -> errors := "missing class path" :: !errors)
      rebuilt;
    if Qc_core.Qc_tree.n_classes t.tree <> Qc_core.Qc_tree.n_classes rebuilt then
      errors := "class count differs from rebuild" :: !errors;
    (match !errors with [] -> Ok () | e :: _ -> Error e)
