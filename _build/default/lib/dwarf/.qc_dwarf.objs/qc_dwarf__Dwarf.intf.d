lib/dwarf/dwarf.mli: Agg Cell Qc_cube Schema Table
