lib/dwarf/dwarf.ml: Agg Array Cell Hashtbl List Option Qc_cube Qc_util Schema Table
