(** Cube schema: named dimensions with dictionary encodings and one measure.

    A schema fixes the dimension order used everywhere downstream — the
    QC-tree and Dwarf structures, dictionary sort order of class upper
    bounds, and query representations all refer to dimensions by their
    position in this schema. *)

type t

val create : ?measure_name:string -> string list -> t
(** [create dims] builds a schema with the given dimension names, in order.
    Each dimension starts with an empty dictionary that grows as tuples are
    encoded. *)

val n_dims : t -> int

val dim_name : t -> int -> string

val measure_name : t -> string

val dict : t -> int -> Qc_util.Dict.t
(** [dict t i] is the dictionary of dimension [i]. *)

val cardinality : t -> int -> int
(** [cardinality t i] is the number of distinct values seen so far in
    dimension [i]. *)

val cardinalities : t -> int array

val encode_value : t -> int -> string -> int
(** [encode_value t i v] encodes [v] in dimension [i], allocating a code if
    needed. *)

val decode_value : t -> int -> int -> string
(** [decode_value t i code] renders a code of dimension [i]; code [0] is
    rendered as ["*"]. *)
