type t = {
  dims : Qc_util.Dict.t array;
  measure_name : string;
}

let create ?(measure_name = "measure") names =
  if names = [] then invalid_arg "Schema.create: at least one dimension required";
  let dims =
    Array.of_list (List.map (fun name -> Qc_util.Dict.create ~name ()) names)
  in
  { dims; measure_name }

let n_dims t = Array.length t.dims

let dim_name t i = Qc_util.Dict.name t.dims.(i)

let measure_name t = t.measure_name

let dict t i = t.dims.(i)

let cardinality t i = Qc_util.Dict.size t.dims.(i)

let cardinalities t = Array.map Qc_util.Dict.size t.dims

let encode_value t i v = Qc_util.Dict.encode t.dims.(i) v

let decode_value t i code =
  if code = 0 then "*" else Qc_util.Dict.decode t.dims.(i) code
