(** Dimension hierarchies.

    OLAP dimensions usually carry concept hierarchies (day → month →
    quarter, city → state → country).  The paper handles them through its
    set-valued ranges: "we have chosen to enumerate each range as a set —
    this way, we can handle both numerical and hierarchical ranges"
    (Section 4.2).  This module supplies the machinery that turns a
    hierarchy node into exactly such a set: per-dimension trees over the
    dictionary codes, with ancestor/descendant navigation and expansion of
    an internal concept into the leaf values a range query enumerates.

    A hierarchy is layered: every leaf (a dictionary value of the
    dimension) sits at level 0 and each value has at most one parent
    concept.  Concepts are named; they live outside the dimension's
    dictionary. *)

type t

type concept = string

val create : Schema.t -> dim:int -> t
(** An empty hierarchy over dimension [dim]: every value is its own root. *)

val dim : t -> int

val add_concept : t -> ?parent:concept -> concept -> unit
(** Declare a concept, optionally under a parent concept.
    @raise Invalid_argument on duplicate concepts, unknown parents, or
    cycles. *)

val assign : t -> value:string -> concept -> unit
(** Place a dictionary value under a concept (re-assignment allowed; the
    value must already be in the dimension's dictionary).
    @raise Invalid_argument on unknown values or concepts. *)

val parent : t -> concept -> concept option

val children : t -> concept -> concept list
(** Direct sub-concepts, in declaration order. *)

val values_of : t -> concept -> string list
(** Dictionary values directly assigned to the concept (not descendants'). *)

val leaves : t -> concept -> int array
(** All dictionary codes under the concept, transitively — the set a range
    query enumerates for this concept.  Sorted ascending. *)

val concepts : t -> concept list
(** All declared concepts, in declaration order. *)

val concept_of_value : t -> string -> concept option

val level : t -> concept -> int
(** Distance to the concept's root (roots are level 1; raw values are
    level 0 conceptually). *)

val range_for : t -> concept -> int array
(** Alias of {!leaves}, named for building {!Qc_core.Query.range} entries:
    [range.(dim) <- Hierarchy.range_for h concept]. *)
