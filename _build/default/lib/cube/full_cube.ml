module Tbl = Cell.Tbl

type t = Agg.t Tbl.t

let compute ?min_support table =
  let t = Tbl.create 4096 in
  Buc.compute ?min_support table (fun cell agg -> Tbl.replace t cell agg);
  t

let find t c = Tbl.find_opt t c

let n_cells t = Tbl.length t

let iter f t = Tbl.iter f t

let fold f t init = Tbl.fold f t init

let bytes t ~dims = Qc_util.Size.bytes_of_cells ~dims ~cells:(n_cells t)
