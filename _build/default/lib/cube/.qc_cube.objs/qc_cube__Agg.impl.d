lib/cube/agg.ml: Float Format Printf
