lib/cube/hierarchy.mli: Schema
