lib/cube/full_cube.ml: Agg Buc Cell Qc_util
