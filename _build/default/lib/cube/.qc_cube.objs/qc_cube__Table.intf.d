lib/cube/table.mli: Agg Cell Schema
