lib/cube/cell.ml: Array Hashtbl List Printf Qc_util Schema String
