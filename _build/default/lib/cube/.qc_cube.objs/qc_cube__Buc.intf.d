lib/cube/buc.mli: Agg Cell Table
