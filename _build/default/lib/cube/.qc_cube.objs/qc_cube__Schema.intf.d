lib/cube/schema.mli: Qc_util
