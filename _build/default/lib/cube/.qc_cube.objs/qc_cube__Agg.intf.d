lib/cube/agg.mli: Format
