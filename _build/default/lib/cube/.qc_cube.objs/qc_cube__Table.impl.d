lib/cube/table.ml: Agg Array Cell List Schema
