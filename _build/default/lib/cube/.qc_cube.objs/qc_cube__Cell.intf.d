lib/cube/cell.mli: Hashtbl Schema
