lib/cube/schema.ml: Array List Qc_util
