lib/cube/hierarchy.ml: Array Hashtbl List Printf Qc_util Schema
