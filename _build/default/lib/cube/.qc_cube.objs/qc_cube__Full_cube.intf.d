lib/cube/full_cube.mli: Agg Cell Table
