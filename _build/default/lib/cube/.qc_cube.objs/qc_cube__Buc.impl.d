lib/cube/buc.ml: Array Cell List Qc_util Table
