(** Materialized full cube: the ground-truth oracle.

    A hash table from cells to aggregate summaries, filled by {!Buc}.  Used
    by the test suite to validate QC-tree and Dwarf query answering, and by
    the benchmark harness when the cube is small enough to store. *)

type t

val compute : ?min_support:int -> Table.t -> t

val find : t -> Cell.t -> Agg.t option
(** [find t c] is the aggregate of cell [c], or [None] when [c]'s cover set
    is empty (below the iceberg threshold). *)

val n_cells : t -> int

val iter : (Cell.t -> Agg.t -> unit) -> t -> unit

val fold : (Cell.t -> Agg.t -> 'a -> 'a) -> t -> 'a -> 'a

val bytes : t -> dims:int -> int
(** Size under the shared byte-cost model. *)
