(** BUC: BottomUpCube computation (Beyer & Ramakrishnan, SIGMOD 1999).

    BUC materializes every non-empty cube cell (optionally with iceberg
    pruning on COUNT) by recursive partitioning of an index array.  The paper
    uses BUC's output as the reference "original data cube" against which the
    compression ratios of Figure 12 and Figure 15 are measured; we use it the
    same way and additionally as the ground-truth oracle for query tests.

    The interface is streaming — cells are handed to a callback — so that
    Figure 15-scale cubes can be {e counted} without being stored. *)

val compute : ?min_support:int -> Table.t -> (Cell.t -> Agg.t -> unit) -> unit
(** [compute ?min_support table emit] calls [emit cell agg] exactly once for
    every cube cell whose cover set contains at least [min_support] tuples
    (default 1, i.e. the full cube).  The cell passed to [emit] is fresh and
    owned by the callback. *)

val count_cells : ?min_support:int -> Table.t -> int
(** Number of cells the full (or iceberg) cube materializes. *)

val cube_bytes : ?min_support:int -> Table.t -> int
(** Size of the materialized cube under the shared byte-cost model. *)
