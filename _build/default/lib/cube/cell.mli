(** Cube cells and the roll-up / drill-down lattice.

    A cell is an [int array] of dimension value codes; code [0] denotes [*]
    (the ALL value).  A base-table tuple is a cell without [*].  Cell [c]
    {e rolls up to} [d] when [d] generalizes [c]: on every dimension where
    they differ, [d] holds [*].  Equivalently [d] {e covers} every tuple that
    [c] covers. *)

type t = int array

val all : int
(** The code of the [*] value (0). *)

val make_all : int -> t
(** [make_all n] is the n-dimensional cell [(*, ..., *)]. *)

val copy : t -> t

val equal : t -> t -> bool

val is_base : t -> bool
(** A cell with no [*] value, i.e. a potential base tuple. *)

val n_stars : t -> int

val rolls_up_to : t -> t -> bool
(** [rolls_up_to c d]: [d] generalizes [c] ([c ⊑ d] would be written [d ≼ c]
    in cover-set terms; here we follow the paper: wherever [c] and [d]
    differ, [d] is [*]). *)

val covers : t -> t -> bool
(** [covers c t] holds when base tuple [t] rolls up to cell [c]: on every
    non-[*] dimension of [c], [t] agrees with [c]. *)

val meet : t -> t -> t
(** [meet a b] is the greatest lower bound in the generalization order used
    by the maintenance algorithms: it keeps a value where [a] and [b] agree
    and puts [*] elsewhere (written [a ⋀ b] in the paper). *)

val dominates : t -> t -> bool
(** [dominates d c]: on every non-[*] dimension of [c], [d] agrees with [c].
    This is [meet d c = c], i.e. [c] rolls up to... note the direction:
    [dominates d c = rolls_up_to c d] would require [d]'s extra dimensions to
    be [*]; here instead [d] may specialize further.  Used to check that a
    class upper bound is consistent with a query cell. *)

val compare_dict : t -> t -> int
(** Dictionary order on upper-bound strings: dimension by dimension with [*]
    preceding every proper value.  This is the insertion order of
    Algorithm 1. *)

val compare_rev_dict : t -> t -> int
(** Reverse dictionary order with [*] last — the processing order of the
    deletion algorithm. *)

val to_string : Schema.t -> t -> string
(** Render as [(v1, v2, ..., vn)] with [*] for ALL values. *)

val parse : Schema.t -> string list -> t
(** [parse schema values] encodes a list of external values ("*" for ALL),
    one per dimension, into a cell.
    @raise Invalid_argument on arity mismatch or unknown value. *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by cells (FNV-1a over the value codes). *)
