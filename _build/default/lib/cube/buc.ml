let compute ?(min_support = 1) table emit =
  let n = Table.n_rows table in
  let d = Table.n_dims table in
  if n > 0 then begin
    let idx = Table.all_indices table in
    let cell = Cell.make_all d in
    (* Invariant: [cell] describes the current group-by; rows
       [idx.(lo) .. idx.(hi-1)] are exactly its cover set. *)
    let rec aux lo hi dim =
      emit (Cell.copy cell) (Table.agg_of_range table idx ~lo ~hi);
      for j = dim to d - 1 do
        let groups = Table.partition_by_dim table idx ~lo ~hi ~dim:j in
        List.iter
          (fun (v, glo, ghi) ->
            if ghi - glo >= min_support then begin
              cell.(j) <- v;
              aux glo ghi (j + 1);
              cell.(j) <- Cell.all
            end)
          groups
      done
    in
    if n >= min_support then aux 0 n 0
  end

let count_cells ?min_support table =
  let k = ref 0 in
  compute ?min_support table (fun _ _ -> incr k);
  !k

let cube_bytes ?min_support table =
  let cells = count_cells ?min_support table in
  Qc_util.Size.bytes_of_cells ~dims:(Table.n_dims table) ~cells
