(** Base tables: dictionary-encoded multidimensional relations.

    A base table holds the fact tuples a cube summarizes: one row = one cell
    without [*] values plus one measure.  Duplicate dimension combinations
    are allowed (their measures aggregate, as in Case 1 of the insertion
    algorithm).  The table also provides the index-array partitioning
    primitive shared by BUC and the quotient-cube DFS. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val n_rows : t -> int

val n_dims : t -> int

val add_row : t -> string list -> float -> unit
(** [add_row t values m] encodes and appends one tuple.  Arity must match the
    schema. *)

val add_encoded : t -> Cell.t -> float -> unit
(** Append an already-encoded tuple (no [*] values allowed).  The cell is
    copied. *)

val tuple : t -> int -> Cell.t
(** [tuple t i] is row [i]'s dimension vector.  The returned array is the
    internal one — do not mutate. *)

val measure : t -> int -> float

val append : t -> t -> unit
(** [append t delta] adds all rows of [delta] (same schema required) to
    [t]. *)

val remove_rows : t -> (int -> bool) -> t
(** [remove_rows t keep_out] is a fresh table with every row [i] such that
    [keep_out i] is [false]. *)

val sub : t -> int list -> t
(** [sub t rows] is a fresh table containing the given rows of [t]. *)

val copy : t -> t

val iter : (Cell.t -> float -> unit) -> t -> unit

val find_row : t -> Cell.t -> int option
(** First row whose dimension vector equals the given base cell. *)

val cover_agg : t -> Cell.t -> Agg.t
(** [cover_agg t c] aggregates the cover set of cell [c] by scanning the
    table — the ground-truth oracle used in tests and for MIN/MAX repair
    after deletions. *)

val all_indices : t -> int array
(** A fresh identity index array [0 .. n_rows - 1]. *)

val partition_by_dim :
  t -> int array -> lo:int -> hi:int -> dim:int -> (int * int * int) list
(** [partition_by_dim t idx ~lo ~hi ~dim] permutes the slice
    [idx.(lo) .. idx.(hi-1)] so rows are grouped by their value in dimension
    [dim], and returns the groups as [(value, lo', hi')] triples in
    increasing value order. *)

val agg_of_range : t -> int array -> lo:int -> hi:int -> Agg.t
(** Aggregate of the rows designated by an index-array slice. *)
