type t = {
  dim_name : string;
  codes : (string, int) Hashtbl.t;
  mutable rev : string array;
  mutable next : int;
}

let create ?(name = "") () =
  { dim_name = name; codes = Hashtbl.create 64; rev = Array.make 16 ""; next = 1 }

let name t = t.dim_name

let grow t =
  let cap = Array.length t.rev in
  if t.next - 1 >= cap then begin
    let rev = Array.make (2 * cap) "" in
    Array.blit t.rev 0 rev 0 cap;
    t.rev <- rev
  end

let encode t v =
  match Hashtbl.find_opt t.codes v with
  | Some code -> code
  | None ->
    let code = t.next in
    grow t;
    t.rev.(code - 1) <- v;
    Hashtbl.add t.codes v code;
    t.next <- code + 1;
    code

let find t v = Hashtbl.find_opt t.codes v

let decode t code =
  if code <= 0 || code >= t.next then
    invalid_arg (Printf.sprintf "Dict.decode: code %d out of range" code);
  t.rev.(code - 1)

let size t = t.next - 1

let values t = Array.sub t.rev 0 (size t)
