lib/util/tablefmt.ml: Array Buffer Float List Printf String
