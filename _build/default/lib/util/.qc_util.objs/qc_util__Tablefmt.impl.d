lib/util/tablefmt.ml: Array Buffer Float Jsonx List Printf String
