lib/util/metrics.ml: Array Buffer Hashtbl Jsonx List Printf String
