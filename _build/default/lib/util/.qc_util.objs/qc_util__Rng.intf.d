lib/util/rng.mli:
