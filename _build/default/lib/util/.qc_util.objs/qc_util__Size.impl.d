lib/util/size.ml: Format
