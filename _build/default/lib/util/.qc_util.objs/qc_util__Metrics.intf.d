lib/util/metrics.mli: Jsonx
