lib/util/dict.mli:
