lib/util/size.mli: Format
