lib/util/jsonx.mli:
