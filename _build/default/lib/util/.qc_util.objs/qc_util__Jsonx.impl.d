lib/util/jsonx.ml: Buffer Char Float List Printf String
