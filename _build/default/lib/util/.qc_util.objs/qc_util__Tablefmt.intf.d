lib/util/tablefmt.mli: Jsonx
