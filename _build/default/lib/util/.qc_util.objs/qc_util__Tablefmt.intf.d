lib/util/tablefmt.mli:
