lib/util/timer.mli:
