lib/util/timer.ml: Array Float Unix
