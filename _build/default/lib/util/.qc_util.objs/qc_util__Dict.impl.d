lib/util/dict.ml: Array Hashtbl Printf
