let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

let time_s f = snd (time f)

let repeat_median k f =
  if k < 1 then invalid_arg "Timer.repeat_median: k must be >= 1";
  let samples = Array.init k (fun _ -> time_s f) in
  Array.sort compare samples;
  samples.(k / 2)
