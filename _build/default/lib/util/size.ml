let value_bytes = 4
let pointer_bytes = 4
let measure_bytes = 8

let bytes_of_cells ~dims ~cells = cells * ((dims * value_bytes) + measure_bytes)

let mb n = float_of_int n /. (1024.0 *. 1024.0)

let pp_bytes ppf n =
  let f = float_of_int n in
  if f >= 1024.0 *. 1024.0 *. 1024.0 then
    Format.fprintf ppf "%.2f GB" (f /. (1024.0 ** 3.0))
  else if f >= 1024.0 *. 1024.0 then Format.fprintf ppf "%.2f MB" (f /. (1024.0 ** 2.0))
  else if f >= 1024.0 then Format.fprintf ppf "%.2f KB" (f /. 1024.0)
  else Format.fprintf ppf "%d B" n
