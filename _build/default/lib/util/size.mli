(** Byte-cost model shared by every storage structure.

    The paper compares storage sizes of the full cube, QC-table, QC-tree and
    Dwarf.  Absolute in-memory sizes depend on runtime representation, so all
    structures in this repository report sizes through the explicit logical
    cost model below, making the Figure 12 / Figure 15 ratios reproducible
    and machine independent. *)

val value_bytes : int
(** Cost of one dimension value or label: 4 bytes. *)

val pointer_bytes : int
(** Cost of one pointer / node id / class id: 4 bytes. *)

val measure_bytes : int
(** Cost of one stored aggregate measure: 8 bytes. *)

val bytes_of_cells : dims:int -> cells:int -> int
(** [bytes_of_cells ~dims ~cells] is the size of a plain relation holding
    [cells] rows of [dims] dimension values plus one measure each — the cost
    of the fully materialized data cube. *)

val mb : int -> float
(** [mb n] converts a byte count to megabytes. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human readable rendering ("12.3 MB", "4.1 KB", ...). *)
