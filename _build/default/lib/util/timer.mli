(** Wall-clock timing helpers for the benchmark harness. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val time_s : (unit -> unit) -> float
(** [time_s f] is the elapsed wall-clock seconds of [f ()]. *)

val repeat_median : int -> (unit -> unit) -> float
(** [repeat_median k f] runs [f] [k] times and returns the median elapsed
    seconds; [k] must be at least 1. *)
