(** Deterministic pseudo-random number generation.

    All data generators and benchmark workloads in this repository draw
    exclusively from this module so that every experiment is reproducible
    bit-for-bit from a seed.  The generator is SplitMix64 (Steele et al.,
    OOPSLA 2014): tiny state, excellent statistical quality for simulation
    workloads, and cheap splitting for independent streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element of the non-empty [arr]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
