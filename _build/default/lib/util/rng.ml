type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_raw t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = next_raw t

let split t = { state = next_raw t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* [Int64.to_int] wraps to OCaml's 63-bit native int, so mask down to the
     non-negative range before reducing. *)
  let r = Int64.to_int (next_raw t) land max_int in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_raw t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
