(** Dictionary encoding of dimension values.

    OLAP structures in this library operate on dense integer codes.  A
    [Dict.t] maps external string values of one dimension to codes
    [1 .. size] and back.  Code [0] is reserved for the [*] (ALL) value and
    is never handed out. *)

type t

val create : ?name:string -> unit -> t
(** [create ~name ()] makes an empty dictionary for the dimension called
    [name]. *)

val name : t -> string

val encode : t -> string -> int
(** [encode t v] returns the code of [v], allocating the next free code if
    [v] is new.  Codes start at 1. *)

val find : t -> string -> int option
(** [find t v] is the code of [v] if already known, without allocating. *)

val decode : t -> int -> string
(** [decode t code] is the external value for [code].
    @raise Invalid_argument on code 0, which denotes [*]. *)

val size : t -> int
(** Number of distinct encoded values (the dimension cardinality). *)

val values : t -> string array
(** All known values, indexed by [code - 1]. *)
