(** What-if analysis over QC-trees.

    The paper motivates quotient cubes for advanced analysis "such as
    intelligent roll-up and what-if queries" (Section 1).  A what-if query
    asks how aggregates {e would} change under a hypothetical update,
    without committing it.  Because the QC-tree supports exact incremental
    maintenance, a hypothesis is evaluated by applying the maintenance
    algorithms to a private copy of the tree — far cheaper than recomputing
    a cube per scenario — and then diffing answers.

    A scenario owns copies of the tree and the base table; the originals
    are never touched. *)

open Qc_cube

type t

val create : Qc_tree.t -> Table.t -> t
(** [create tree base] snapshots the warehouse.  [tree] must be the QC-tree
    of [base]. *)

val assume_inserted : t -> Table.t -> unit
(** Fold a hypothetical batch of new tuples into the scenario. *)

val assume_deleted : t -> Table.t -> unit
(** Fold a hypothetical deletion into the scenario.
    @raise Invalid_argument if some tuple is absent from the scenario's
    current table. *)

val tree : t -> Qc_tree.t
(** The scenario's tree (query it with {!Query}). *)

val table : t -> Table.t

type delta = {
  cell : Cell.t;
  before : Agg.t option;
  after : Agg.t option;
}

val compare_cells : t -> against:Qc_tree.t -> Cell.t list -> delta list
(** [compare_cells scenario ~against cells] evaluates each cell in both the
    scenario and the reference tree and returns only the cells whose
    summaries differ. *)

val affected_classes : t -> against:Qc_tree.t -> (Cell.t * Agg.t option * Agg.t option) list
(** Every class upper bound whose aggregate differs between the reference
    tree and the scenario (including classes that appear or disappear),
    as [(upper bound, before, after)]. *)
