open Qc_cube

(* Function [searchroute] of Algorithm 3: reach a step labeled [(dim, v)]
   from [node], hopping through last-dimension children (Lemma 2) while they
   stay in earlier dimensions. *)
let rec searchroute t node dim v =
  match Qc_tree.find_edge_or_link t node dim v with
  | Some n -> Some n
  | None -> (
    match Qc_tree.last_dim_child node with
    | Some child when child.Qc_tree.dim < dim -> searchroute t child dim v
    | Some _ | None -> None)

(* Descend through last-dimension children until a class node. *)
let rec descend_to_class node =
  match node.Qc_tree.agg with
  | Some agg -> Some (node, agg)
  | None -> (
    match Qc_tree.last_dim_child node with
    | Some child -> descend_to_class child
    | None -> None)

(* Soundness check without materializing the path cell: the reached upper
   bound must agree with the query cell on all its instantiated dimensions;
   then its class covers the query cell's cover set, so the cell is in the
   cube and — by Lemma 2 — this is exactly its class. *)
let path_dominates (node : Qc_tree.node) (cell : Cell.t) =
  let needed = ref 0 in
  for i = 0 to Array.length cell - 1 do
    if cell.(i) <> Cell.all then incr needed
  done;
  let rec up (n : Qc_tree.node) matched =
    match n.parent with
    | None -> matched = !needed
    | Some p ->
      if cell.(n.dim) = Cell.all then up p matched
      else if cell.(n.dim) = n.label then up p (matched + 1)
      else false
  in
  up node 0

let locate_with_agg t cell =
  let d = Array.length cell in
  let rec consume node i =
    if i >= d then descend_to_class node
    else if cell.(i) = Cell.all then consume node (i + 1)
    else
      match searchroute t node i cell.(i) with
      | Some next -> consume next (i + 1)
      | None -> None
  in
  match consume (Qc_tree.root t) 0 with
  | None -> None
  | Some (node, agg) -> if path_dominates node cell then Some (node, agg) else None

let point t cell = Option.map snd (locate_with_agg t cell)

let point_value t func cell = Option.map (Agg.value func) (point t cell)

let locate t cell = Option.map fst (locate_with_agg t cell)

type range = int array array

let check_range t (q : range) =
  if Array.length q <> Schema.n_dims (Qc_tree.schema t) then
    invalid_arg "Query.range: arity mismatch with schema"

let range t (q : range) =
  check_range t q;
  let d = Array.length q in
  let inst = Cell.make_all d in
  let results = ref [] in
  let verify node agg =
    if path_dominates node inst then results := (Cell.copy inst, agg) :: !results
  in
  let rec go node i =
    if i >= d then Option.iter (fun (n, a) -> verify n a) (descend_to_class node)
    else if Array.length q.(i) = 0 then go node (i + 1)
    else
      Array.iter
        (fun v ->
          inst.(i) <- v;
          (match searchroute t node i v with Some next -> go next (i + 1) | None -> ());
          inst.(i) <- Cell.all)
        q.(i)
  in
  go (Qc_tree.root t) 0;
  List.rev !results

let range_of_cells t (q : range) =
  check_range t q;
  let d = Array.length q in
  let acc = ref [] in
  let inst = Cell.make_all d in
  let rec go i =
    if i >= d then acc := Cell.copy inst :: !acc
    else if Array.length q.(i) = 0 then go (i + 1)
    else
      Array.iter
        (fun v ->
          inst.(i) <- v;
          go (i + 1);
          inst.(i) <- Cell.all)
        q.(i)
  in
  go 0;
  List.rev !acc

type measure_index = {
  tree : Qc_tree.t;
  func : Agg.func;
  entries : (float * Qc_tree.node) array;  (** sorted by aggregate value *)
}

let make_index tree func =
  let acc = ref [] in
  Qc_tree.iter_nodes
    (fun n ->
      match n.Qc_tree.agg with
      | Some a -> acc := (Agg.value func a, n) :: !acc
      | None -> ())
    tree;
  let entries = Array.of_list !acc in
  Array.sort (fun (a, _) (b, _) -> compare a b) entries;
  { tree; func; entries }

(* First index position with value >= threshold. *)
let lower_bound entries threshold =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst entries.(mid) < threshold then lo := mid + 1 else hi := mid
  done;
  !lo

let iceberg idx ~threshold =
  let start = lower_bound idx.entries threshold in
  let out = ref [] in
  for i = Array.length idx.entries - 1 downto start do
    let _, node = idx.entries.(i) in
    match node.Qc_tree.agg with
    | Some a -> out := (Qc_tree.node_cell idx.tree node, a) :: !out
    | None -> ()
  done;
  !out

let iceberg_range ?(strategy = `Filter) t idx (q : range) ~threshold =
  check_range t q;
  if idx.tree != t then invalid_arg "Query.iceberg_range: index built for another tree";
  let above a = Agg.value idx.func a >= threshold in
  match strategy with
  | `Filter -> List.filter (fun (_, a) -> above a) (range t q)
  | `Mark ->
    (* Mark qualifying class nodes and their ancestors; answer the range
       query restricted to marked nodes. *)
    let marked = Hashtbl.create 256 in
    let rec mark_up (n : Qc_tree.node) =
      if not (Hashtbl.mem marked n.nid) then begin
        Hashtbl.replace marked n.nid ();
        Option.iter mark_up n.parent
      end
    in
    let start = lower_bound idx.entries threshold in
    for i = start to Array.length idx.entries - 1 do
      mark_up (snd idx.entries.(i))
    done;
    let in_subtree (n : Qc_tree.node) = Hashtbl.mem marked n.nid in
    let d = Array.length q in
    let inst = Cell.make_all d in
    let results = ref [] in
    let rec descend node =
      match node.Qc_tree.agg with
      | Some agg -> if above agg then Some (node, agg) else None
      | None -> (
        match Qc_tree.last_dim_child node with
        | Some child when in_subtree child -> descend child
        | Some _ | None -> None)
    in
    let verify node agg =
      if path_dominates node inst then results := (Cell.copy inst, agg) :: !results
    in
    let rec go node i =
      if not (in_subtree node) then ()
      else if i >= d then Option.iter (fun (n, a) -> verify n a) (descend node)
      else if Array.length q.(i) = 0 then go node (i + 1)
      else
        Array.iter
          (fun v ->
            inst.(i) <- v;
            (match searchroute t node i v with Some next -> go next (i + 1) | None -> ());
            inst.(i) <- Cell.all)
          q.(i)
    in
    go (Qc_tree.root t) 0;
    List.rev !results


let node_accesses t cell =
  (* Re-run the point search counting visited nodes — the paper's Figure 13
     discussion compares this against Dwarf's fixed n accesses. *)
  let d = Array.length cell in
  let count = ref 1 (* the root *) in
  let rec searchroute_c node dim v =
    match Qc_tree.find_edge_or_link t node dim v with
    | Some n ->
      incr count;
      Some n
    | None -> (
      match Qc_tree.last_dim_child node with
      | Some child when child.Qc_tree.dim < dim ->
        incr count;
        searchroute_c child dim v
      | Some _ | None -> None)
  in
  let rec descend_c (node : Qc_tree.node) =
    match node.agg with
    | Some _ -> ()
    | None -> (
      match Qc_tree.last_dim_child node with
      | Some child ->
        incr count;
        descend_c child
      | None -> ())
  in
  let rec consume node i =
    if i >= d then descend_c node
    else if cell.(i) = Cell.all then consume node (i + 1)
    else
      match searchroute_c node i cell.(i) with
      | Some next -> consume next (i + 1)
      | None -> ()
  in
  consume (Qc_tree.root t) 0;
  !count
