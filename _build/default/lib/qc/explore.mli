(** Semantic OLAP exploration over the quotient lattice (paper Sections 1-2).

    The quotient cube is not only a compression device: navigation moves
    between {e classes} rather than cells, which both shrinks the search
    space and surfaces regularities — e.g. two different drill-down paths
    reaching the same class reveal that the specializations are semantically
    equivalent.  This module implements the operations the paper motivates:
    class-level roll-up/drill-down, drilling {e into} a class, and
    intelligent roll-up ("the most general circumstances under which the
    observed aggregate still holds"). *)

open Qc_cube

val drill_down : Quotient.t -> Cell.t -> dim:int -> value:int -> Quotient.cls option
(** Class reached by specializing one dimension of a cell; [None] when the
    resulting cell has empty cover. *)

val roll_up : Quotient.t -> Cell.t -> dim:int -> Quotient.cls option
(** Class reached by generalizing one dimension to [*]. *)

type rollup_result = {
  start_class : Quotient.cls;
  region : Quotient.cls list;
      (** every class reachable from the start by drill-downs to more general
          classes while the aggregate stays equal *)
  most_general : Quotient.cls list;
      (** the frontier of [region]: classes none of whose lattice children
          keep the aggregate *)
}

val intelligent_rollup :
  ?eps:float -> Quotient.t -> Agg.func -> Cell.t -> rollup_result option
(** [intelligent_rollup q func cell] answers "starting from [cell], what are
    the most general circumstances where [func] keeps its value?" by
    searching the class lattice instead of the exponential cell
    neighbourhood (the paper's Section 1 example).  [None] when [cell] is
    not in the cube. *)

val equivalent_drilldowns :
  Quotient.t -> Cell.t -> (int * int * Quotient.cls) list
(** All one-dimension specializations of a cell, grouped by target class:
    entries [(dim, value, cls)].  Specializations sharing a class are
    semantically equivalent refinements — the "interesting pattern"
    discussed at the end of the paper's Section 1. *)

val pp_rollup : Schema.t -> Format.formatter -> rollup_result -> unit
