open Qc_cube

let drill_down q cell ~dim ~value =
  let c = Cell.copy cell in
  c.(dim) <- value;
  Quotient.class_of_cell q c

let roll_up q cell ~dim =
  let c = Cell.copy cell in
  c.(dim) <- Cell.all;
  Quotient.class_of_cell q c

type rollup_result = {
  start_class : Quotient.cls;
  region : Quotient.cls list;
  most_general : Quotient.cls list;
}

let intelligent_rollup ?(eps = 1e-9) q func cell =
  match Quotient.class_of_cell q cell with
  | None -> None
  | Some start ->
    let target = Agg.value func start.agg in
    let same (c : Quotient.cls) =
      let v = Agg.value func c.agg in
      v = target || Float.abs (v -. target) <= eps *. Float.max 1.0 (Float.abs target)
    in
    let visited = Hashtbl.create 64 in
    let region = ref [] in
    (* Walk toward more general classes (lattice children) while the
       aggregate value is preserved. *)
    let rec walk cid =
      if not (Hashtbl.mem visited cid) then begin
        Hashtbl.replace visited cid ();
        let c = Quotient.find q cid in
        if same c then begin
          region := c :: !region;
          List.iter walk c.children
        end
      end
    in
    walk start.cid;
    let region = List.rev !region in
    let in_region cid = List.exists (fun (c : Quotient.cls) -> c.cid = cid) region in
    let most_general =
      List.filter
        (fun (c : Quotient.cls) -> not (List.exists in_region c.children))
        region
    in
    Some { start_class = start; region; most_general }

let equivalent_drilldowns q cell =
  let schema = Quotient.schema q in
  let dims = Schema.n_dims schema in
  let acc = ref [] in
  for dim = 0 to dims - 1 do
    if cell.(dim) = Cell.all then
      for value = 1 to Schema.cardinality schema dim do
        match drill_down q cell ~dim ~value with
        | Some cls -> acc := (dim, value, cls) :: !acc
        | None -> ()
      done
  done;
  List.rev !acc

let pp_rollup schema ppf r =
  Format.fprintf ppf "start: %a@." (Quotient.pp_class schema) r.start_class;
  Format.fprintf ppf "region of %d class(es) with the same aggregate@."
    (List.length r.region);
  List.iter
    (fun (c : Quotient.cls) ->
      Format.fprintf ppf "  most general: ub=%s lbs={%s}@."
        (Cell.to_string schema c.ub)
        (String.concat "; " (List.map (Cell.to_string schema) c.lbs)))
    r.most_general
