(** Temporary classes produced by the cover-partition depth-first search.

    Each temp class records one DFS visit: the visited cell (a lower bound of
    the class), the class upper bound obtained by the bound jump, the id of
    the lattice child class the visit expanded from, and the aggregate over
    the visit's base-table partition.  Several temp classes may share an
    upper bound; the first (in dictionary order of upper bounds, ties broken
    by generation id) materializes the tree path, the rest become drill-down
    links. *)

open Qc_cube

type t = {
  id : int;  (** generation order; also the id referenced by [child] *)
  lb : Cell.t;  (** the DFS-visited cell, a lower bound of the class *)
  ub : Cell.t;  (** class upper bound *)
  child : int;  (** lattice child temp-class id, [-1] for the root class *)
  agg : Agg.t;  (** aggregate over the class's cover set *)
}

val compare_for_insertion : t -> t -> int
(** Dictionary order on upper bounds, [*] first, ties by generation id —
    the processing order of Algorithm 1 step 3 and Algorithm 2 step 2. *)

val compare_for_deletion : t -> t -> int
(** Reverse dictionary order, [*] last — the processing order of the
    deletion algorithm. *)

val pp : Schema.t -> Format.formatter -> t -> unit
