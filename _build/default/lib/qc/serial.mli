(** QC-tree persistence.

    A warehouse summary structure must survive process restarts; this module
    writes a QC-tree (schema, dictionaries, class upper bounds with
    aggregates, drill-down links) to a line-oriented text format and reads it
    back.  Aggregate floats round-trip exactly (hexadecimal float notation);
    dictionary codes are preserved, so a reloaded tree is canonically equal
    to the saved one. *)

val to_string : Qc_tree.t -> string

val of_string : string -> Qc_tree.t
(** @raise Failure on malformed input. *)

val save : Qc_tree.t -> string -> unit
(** [save tree path] writes the tree to a file. *)

val load : string -> Qc_tree.t
(** @raise Failure on malformed input; [Sys_error] on IO failure. *)
