open Qc_cube

type visit = {
  id : int;
  lb : Cell.t;
  ub : Cell.t;
  child : int;
  agg : Agg.t;
}

let visit table f =
  let n = Table.n_rows table in
  let d = Table.n_dims table in
  if n > 0 then begin
    let idx = Table.all_indices table in
    let counter = ref 0 in
    (* [c] is owned by this call; [idx.(lo) .. idx.(hi-1)] is its partition;
       [k] is the dimension expanded to reach [c] (-1 at the root). *)
    let rec dfs c lo hi k chdid =
      let agg = Table.agg_of_range table idx ~lo ~hi in
      let ub = Cell.copy c in
      for j = 0 to d - 1 do
        if ub.(j) = Cell.all then begin
          let v0 = (Table.tuple table idx.(lo)).(j) in
          let rec shared i = i >= hi || ((Table.tuple table idx.(i)).(j) = v0 && shared (i + 1)) in
          if shared (lo + 1) then ub.(j) <- v0
        end
      done;
      let id = !counter in
      incr counter;
      f { id; lb = Cell.copy c; ub = Cell.copy ub; child = chdid; agg };
      (* Prune: if the jump filled a dimension before the expansion
         dimension, this bound was already examined from that dimension. *)
      let rec filled_before j = j < k && ((c.(j) = Cell.all && ub.(j) <> Cell.all) || filled_before (j + 1)) in
      if not (filled_before 0) then
        for j = k + 1 to d - 1 do
          if ub.(j) = Cell.all then
            let groups = Table.partition_by_dim table idx ~lo ~hi ~dim:j in
            List.iter
              (fun (v, glo, ghi) ->
                let c' = Cell.copy ub in
                c'.(j) <- v;
                dfs c' glo ghi j id)
              groups
        done
    in
    dfs (Cell.make_all d) 0 n (-1) (-1)
  end

let run table =
  let acc = ref [] in
  visit table (fun v ->
      acc := { Temp_class.id = v.id; lb = v.lb; ub = v.ub; child = v.child; agg = v.agg } :: !acc);
  List.rev !acc
