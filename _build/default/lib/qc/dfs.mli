(** Depth-first discovery of cover-partition classes (paper Section 3.2,
    Function [DFS] of Algorithm 1).

    Starting from [(*, ..., *)], the search visits cells obtained by
    specializing one dimension at a time.  At each visited cell it "jumps" to
    the class upper bound — for every [*] dimension on which all tuples of
    the current partition agree, the shared value is filled in — and records
    a temporary class.  Redundant visits are pruned by the bound-jump rule:
    if the jump filled a dimension before the current expansion dimension,
    the same class was already generated from that earlier dimension.

    The traversal is also the engine of batch maintenance (Algorithm 2),
    which runs it over the delta table with a different per-visit action, so
    the visit loop is exposed as a higher-order function. *)

open Qc_cube

type visit = {
  id : int;  (** sequential visit id (pre-order) *)
  lb : Cell.t;  (** the visited cell — a lower bound of its class *)
  ub : Cell.t;  (** the class upper bound within the searched table *)
  child : int;  (** visit id of the lattice child class, [-1] for the root *)
  agg : Agg.t;  (** aggregate of the partition (the class cover set) *)
}

val visit : Table.t -> (visit -> unit) -> unit
(** [visit table f] runs the depth-first search over [table] and calls [f]
    once per recorded temporary class, in generation order.  The [lb] and
    [ub] cells are fresh copies owned by [f]. *)

val run : Table.t -> Temp_class.t list
(** All temporary classes of [table], in generation order — the output of
    the first phase of Algorithm 1 (cf. paper Figure 6). *)
