(** Incremental maintenance of QC-trees (paper Section 3.3).

    Insertions may update class measures, split classes, or create new
    classes (never merge); deletions may update measures, delete classes, or
    merge a class into a more specific one (never split, never create).  Both
    directions run a depth-first search over the {e delta} table only, locate
    affected classes through point-query searches on the existing tree, and
    patch the tree in place — the full base table is never re-searched, which
    is where the speedup over recomputation comes from (Figure 14).

    After any maintenance operation the tree answers every query exactly as a
    tree rebuilt from scratch would (the operational content of the paper's
    Theorem 2); the test suite checks this property exhaustively on
    randomized instances.  Batch insertion additionally produces a tree that
    is {e structurally identical} to a rebuild.  After deletions the tree may
    retain a few redundant drill-down links (they never change any answer and
    are counted honestly in the size benchmarks). *)

open Qc_cube

type insert_stats = {
  updated : int;  (** classes whose measure was updated in place *)
  carved : int;  (** classes split off an existing class (cases 2 and 3) *)
  fresh : int;  (** classes created for newly covered cells *)
  located : int;  (** point-query searches issued on the old tree *)
}

val insert_batch : Qc_tree.t -> base:Table.t -> delta:Table.t -> insert_stats
(** Algorithm 2: batch insertion of [delta].  The tree is patched in place
    and [delta]'s rows are appended to [base] (both must share the tree's
    schema instance). *)

val insert_tuples : Qc_tree.t -> base:Table.t -> delta:Table.t -> insert_stats
(** Tuple-by-tuple insertion: one Algorithm 2 run per row of [delta].  The
    baseline the paper compares batch insertion against. *)

type delete_stats = {
  removed : int;  (** classes whose cover set became empty *)
  merged : int;  (** classes merged into a more specific class *)
  updated_classes : int;  (** classes whose measure was updated *)
}

val delete_batch : Qc_tree.t -> base:Table.t -> delta:Table.t -> Table.t * delete_stats
(** Batch deletion.  Every row of [delta] must occur in [base] (same
    dimension values and measure); rows are matched as a multiset.  Returns
    the new base table.
    @raise Invalid_argument if some delta row is missing from the base. *)

val update_batch :
  Qc_tree.t ->
  base:Table.t ->
  old_rows:Table.t ->
  new_rows:Table.t ->
  Table.t * delete_stats * insert_stats
(** Modification, simulated as the paper prescribes by a deletion of
    [old_rows] followed by an insertion of [new_rows].  Returns the new base
    table (with [new_rows] appended) and the statistics of both phases. *)
