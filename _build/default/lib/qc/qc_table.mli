(** QC-table: the flat-relation representation of a cover quotient cube.

    The paper uses "QC-table" — all class upper bounds stored plainly in a
    relational table with their aggregates — as the storage baseline between
    the full cube and the QC-tree in the Figure 12/15 comparisons.  It
    answers exact-upper-bound lookups by binary search but, unlike the
    QC-tree, cannot locate the class of an arbitrary cell without scanning,
    which is the point the paper makes. *)

open Qc_cube

type t

val of_temp_classes : Schema.t -> Temp_class.t list -> t
(** Deduplicate temporary classes by upper bound and store one row per
    class, sorted in dictionary order. *)

val of_table : Table.t -> t

val schema : t -> Schema.t

val n_classes : t -> int

val find_ub : t -> Cell.t -> Agg.t option
(** Exact-match lookup of a class upper bound (binary search). *)

val find_cell : t -> Cell.t -> Agg.t option
(** Aggregate of an arbitrary cell, by scanning for its class: the class of
    cell [c] is the row with the smallest cover set among rows whose upper
    bound dominates [c].  Linear in the number of classes — the QC-tree
    replaces exactly this scan. *)

val iter : (Cell.t -> Agg.t -> unit) -> t -> unit

val bytes : t -> int
(** Storage size under the shared byte-cost model: one row = n dimension
    values + 1 class id + 1 measure. *)
