lib/qc/temp_class.mli: Agg Cell Format Qc_cube Schema
