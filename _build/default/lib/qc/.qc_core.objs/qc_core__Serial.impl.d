lib/qc/serial.ml: Agg Array Buffer Cell Char Format Fun Int64 List Packed Printexc Printf Qc_cube Qc_tree Qc_util Schema String
