lib/qc/serial.ml: Agg Array Buffer Cell Char Fun List Printf Qc_cube Qc_tree Qc_util Schema String
