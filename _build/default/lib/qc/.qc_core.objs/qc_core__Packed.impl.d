lib/qc/packed.ml: Agg Array Cell Hashtbl List Printf Qc_cube Qc_tree Qc_util Schema
