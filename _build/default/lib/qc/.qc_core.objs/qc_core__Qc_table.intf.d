lib/qc/qc_table.mli: Agg Cell Qc_cube Schema Table Temp_class
