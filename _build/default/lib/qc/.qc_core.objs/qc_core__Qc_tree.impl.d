lib/qc/qc_tree.ml: Agg Array Buffer Cell Dfs Format Hashtbl Int List Logs Printf Qc_cube Qc_util Schema String Table Temp_class
