lib/qc/query.mli: Agg Cell Format Qc_cube Qc_tree
