lib/qc/query.mli: Agg Cell Qc_cube Qc_tree
