lib/qc/query.mli: Agg Cell Format Packed Qc_cube Qc_tree
