lib/qc/query.ml: Agg Array Cell Hashtbl List Option Qc_cube Qc_tree Schema
