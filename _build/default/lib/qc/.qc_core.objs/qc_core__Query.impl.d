lib/qc/query.ml: Agg Array Cell Format Hashtbl List Option Packed Printf Qc_cube Qc_tree Qc_util Schema
