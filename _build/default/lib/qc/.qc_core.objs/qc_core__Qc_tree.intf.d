lib/qc/qc_tree.mli: Agg Cell Format Qc_cube Schema Table Temp_class
