lib/qc/serial.mli: Qc_tree
