lib/qc/serial.mli: Format Packed Qc_tree
