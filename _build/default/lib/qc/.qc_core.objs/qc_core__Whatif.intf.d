lib/qc/whatif.mli: Agg Cell Qc_cube Qc_tree Table
