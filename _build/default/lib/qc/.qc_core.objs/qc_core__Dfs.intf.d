lib/qc/dfs.mli: Agg Cell Qc_cube Table Temp_class
