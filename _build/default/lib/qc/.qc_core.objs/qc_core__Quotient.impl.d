lib/qc/quotient.ml: Agg Array Cell Dfs Format Hashtbl List Option Qc_cube Qc_tree Query Schema String Table Temp_class
