lib/qc/packed.mli: Agg Cell Qc_cube Qc_tree Schema
