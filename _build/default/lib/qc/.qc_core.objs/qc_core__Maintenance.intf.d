lib/qc/maintenance.mli: Qc_cube Qc_tree Table
