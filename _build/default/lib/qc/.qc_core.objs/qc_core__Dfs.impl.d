lib/qc/dfs.ml: Agg Array Cell List Logs Qc_cube Qc_util Table Temp_class
