lib/qc/dfs.ml: Agg Array Cell List Qc_cube Table Temp_class
