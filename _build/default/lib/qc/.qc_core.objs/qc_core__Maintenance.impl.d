lib/qc/maintenance.ml: Agg Array Cell Fun Hashtbl List Option Qc_cube Qc_tree Query Table
