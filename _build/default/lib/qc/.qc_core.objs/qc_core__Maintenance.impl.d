lib/qc/maintenance.ml: Agg Array Cell Fun Hashtbl List Logs Option Qc_cube Qc_tree Qc_util Query Table
