lib/qc/explore.ml: Agg Array Cell Float Format Hashtbl List Qc_cube Quotient Schema String
