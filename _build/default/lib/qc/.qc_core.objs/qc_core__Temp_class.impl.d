lib/qc/temp_class.ml: Agg Cell Format Qc_cube
