lib/qc/qc_table.ml: Agg Array Cell Dfs List Qc_cube Qc_util Schema Table Temp_class
