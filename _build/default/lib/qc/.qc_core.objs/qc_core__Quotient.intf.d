lib/qc/quotient.mli: Agg Cell Format Qc_cube Schema Table Temp_class
