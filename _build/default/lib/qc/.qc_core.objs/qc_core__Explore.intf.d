lib/qc/explore.mli: Agg Cell Format Qc_cube Quotient Schema
