lib/qc/whatif.ml: Agg Cell List Maintenance Option Qc_cube Qc_tree Query Table
