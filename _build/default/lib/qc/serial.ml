open Qc_cube

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '\t' | '\r' ->
        Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let cell_codes (c : Cell.t) =
  String.concat "," (Array.to_list (Array.map string_of_int c))

let codes_cell s = Array.of_list (List.map int_of_string (String.split_on_char ',' s))

let to_string tree =
  let schema = Qc_tree.schema tree in
  let buf = Buffer.create 65536 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  out "qctree 1";
  out "schema %d %s" (Schema.n_dims schema) (escape (Schema.measure_name schema));
  for i = 0 to Schema.n_dims schema - 1 do
    let values = Qc_util.Dict.values (Schema.dict schema i) in
    out "dim %s %d %s" (escape (Schema.dim_name schema i)) (Array.length values)
      (String.concat " " (Array.to_list (Array.map escape values)))
  done;
  Qc_tree.iter_classes
    (fun _ ub (agg : Agg.t) ->
      out "class %d %h %h %h %s" agg.count agg.sum agg.min agg.max (cell_codes ub))
    tree;
  Qc_tree.iter_nodes
    (fun n ->
      let src = Qc_tree.node_cell tree n in
      List.iter
        (fun (dim, label, dst) ->
          out "link %d %d %s %s" dim label (cell_codes src)
            (cell_codes (Qc_tree.node_cell tree dst)))
        n.Qc_tree.links)
    tree;
  out "end";
  Buffer.contents buf

let of_string data =
  let lines = String.split_on_char '\n' data in
  let fail fmt = Printf.ksprintf failwith fmt in
  let schema = ref None in
  let tree = ref None in
  let pending_links = ref [] in
  let dim_names = ref [] in
  let dim_values = ref [] in
  let measure = ref "measure" in
  let ndims = ref 0 in
  let finalize_schema () =
    match !schema with
    | Some s -> s
    | None ->
      let names = List.rev !dim_names in
      if List.length names <> !ndims then fail "Serial: dimension count mismatch";
      let s = Schema.create ~measure_name:!measure names in
      List.iteri
        (fun i values -> List.iter (fun v -> ignore (Schema.encode_value s i v)) values)
        (List.rev !dim_values);
      schema := Some s;
      s
  in
  let get_tree () =
    match !tree with
    | Some t -> t
    | None ->
      let t = Qc_tree.create (finalize_schema ()) in
      tree := Some t;
      t
  in
  List.iter
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ "" ] | [] -> ()
      | "qctree" :: _ | [ "end" ] -> ()
      | [ "schema"; n; m ] ->
        ndims := int_of_string n;
        measure := unescape m
      | "dim" :: name :: _count :: values ->
        dim_names := unescape name :: !dim_names;
        dim_values := List.map unescape values :: !dim_values
      | [ "class"; count; sum; mn; mx; codes ] ->
        let t = get_tree () in
        let node = Qc_tree.insert_path t (codes_cell codes) in
        Qc_tree.set_agg node
          (Some
             {
               Agg.count = int_of_string count;
               sum = float_of_string sum;
               min = float_of_string mn;
               max = float_of_string mx;
             })
      | [ "link"; dim; label; src; dst ] ->
        pending_links := (int_of_string dim, int_of_string label, src, dst) :: !pending_links
      | tok :: _ -> fail "Serial: unexpected record %S" tok)
    lines;
  let t = get_tree () in
  List.iter
    (fun (dim, label, src, dst) ->
      match Qc_tree.find_path t (codes_cell src), Qc_tree.find_path t (codes_cell dst) with
      | Some src, Some dst -> Qc_tree.add_link t ~src ~dim ~label ~dst
      | _ -> fail "Serial: link endpoint not found")
    (List.rev !pending_links);
  t

let save tree path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string tree))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
