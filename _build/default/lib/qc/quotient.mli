(** The explicit cover quotient-cube lattice (paper Section 2).

    While the QC-tree is the storage structure, semantic OLAP operations —
    navigating between classes, drilling into a class, intelligent roll-up —
    are phrased over the quotient lattice itself: classes with their upper
    bound, minimal lower bounds, aggregate, and parent/child ordering
    ([C ⊑ D] whenever some cell of [C] drills down from some cell of [D];
    children are the more general neighbours, as in the paper's Figure 3).

    This module materializes that lattice from the temporary classes of the
    DFS.  It is the substrate of {!Explore}. *)

open Qc_cube

type cls = {
  cid : int;
  ub : Cell.t;  (** the unique upper bound (Lemma 1) *)
  lbs : Cell.t list;  (** minimal lower bounds *)
  agg : Agg.t;
  children : int list;  (** lattice children: immediate more-general classes *)
  parents : int list;  (** lattice parents: immediate more-specific classes *)
}

type t

val of_temp_classes : Schema.t -> Temp_class.t list -> t

val of_table : Table.t -> t

val schema : t -> Schema.t

val n_classes : t -> int

val classes : t -> cls array

val find : t -> int -> cls

val find_by_ub : t -> Cell.t -> cls option

val class_of_cell : t -> Cell.t -> cls option
(** The class containing an arbitrary cell, or [None] when its cover set is
    empty.  Resolved through a QC-tree point search over the same classes. *)

val members : ?limit:int -> t -> cls -> Cell.t list
(** Enumerate the member cells of a class: every cell lying between some
    lower bound and the upper bound.  At most [limit] cells are produced
    (default 10_000) since a class over [k] instantiated dimensions can have
    up to [2^k] members. *)

val contains : cls -> Cell.t -> bool
(** Membership test: the cell is dominated by the upper bound and dominates
    some lower bound. *)

val pp_class : Schema.t -> Format.formatter -> cls -> unit
