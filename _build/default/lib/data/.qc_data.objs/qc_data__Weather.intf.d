lib/data/weather.mli: Qc_cube Table
