lib/data/csv.mli: Qc_cube Table
