lib/data/zipf.ml: Array Qc_util
