lib/data/weather.ml: Array Float List Printf Qc_cube Qc_util Schema Table Zipf
