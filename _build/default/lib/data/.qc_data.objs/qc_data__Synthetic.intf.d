lib/data/synthetic.mli: Cell Qc_cube Table
