lib/data/synthetic.ml: Array Cell Fun Hashtbl List Printf Qc_cube Qc_util Schema Table Zipf
