lib/data/csv.ml: Array Buffer Fun List Printf Qc_cube Schema String Table
