lib/data/zipf.mli: Qc_util
