(** CSV import and export for base tables.

    The format is one header line of dimension names followed by the measure
    name, then one line per tuple.  Fields are comma-separated; values
    containing commas, quotes or newlines are double-quoted with embedded
    quotes doubled (RFC 4180). *)

open Qc_cube

val save : Table.t -> string -> unit

val to_string : Table.t -> string

val load : string -> Table.t
(** Reads the file, building a fresh schema from the header.
    @raise Failure on malformed input. *)

val of_string : string -> Table.t
