(** Synthetic workloads for the Section 5 experiments.

    Tuples are drawn with independent Zipf(2)-distributed dimensions, the
    configuration the paper states for all its synthetic datasets.  All
    generation is deterministic in the seed. *)

open Qc_cube

type spec = {
  dims : int;
  cardinality : int;  (** per dimension *)
  rows : int;
  zipf : float;  (** Zipf factor; the paper uses 2.0 *)
  seed : int;
}

val default : spec
(** 6 dimensions, cardinality 100, 50_000 rows, Zipf 2.0, seed 42. *)

val generate : spec -> Table.t
(** A fresh table under a fresh schema with dimensions [D0 .. D(dims-1)] and
    all [cardinality] values pre-registered in each dictionary. *)

val generate_delta : spec -> Table.t -> int -> Table.t
(** [generate_delta spec base k] draws [k] additional rows under [base]'s
    schema and distribution — the ΔDB of the maintenance experiments. *)

val pick_delete_delta : seed:int -> Table.t -> int -> Table.t
(** [pick_delete_delta ~seed base k] selects [k] distinct existing rows of
    [base] to delete. *)

val random_point_queries : seed:int -> ?star_prob:float -> Table.t -> int -> Cell.t list
(** Random point queries: each dimension is [*] with probability [star_prob]
    (default 0.5), otherwise a value drawn from the base table's rows so a
    substantial share of queries hit non-empty cells. *)

val random_range_queries :
  seed:int ->
  ?range_dims:int * int ->
  ?values_per_range:int ->
  Table.t ->
  int ->
  int array array list
(** Random range queries in the paper's setup: between [fst range_dims] and
    [snd range_dims] dimensions (default 1–3) carry a range of
    [values_per_range] values (default 3, or the full cardinality when 0);
    the other dimensions are split between [*] and point constraints. *)
