(** Synthetic proxy for the paper's real dataset: September 1985 surface
    weather reports from land stations (Hahn et al.), 1,015,367 tuples over 9
    dimensions with cardinalities stationid 7037, longitude 352,
    solar-altitude 179, latitude 152, present-weather 101, day 30,
    weather-change-code 10, hour 8, brightness 2.

    The original file is not redistributable here, so this generator produces
    data with the same schema and the structural properties that drive
    cover-equivalence compression in the real data: {e functional
    dependencies} (longitude and latitude are functions of the station) and
    {e near-functional correlations} (solar altitude follows hour and
    latitude band; brightness follows hour; weather codes are skewed).
    DESIGN.md records this substitution.

    [scale] shrinks the cardinalities (and the station population)
    proportionally so the full data cube stays computable inside the
    benchmark time budget; [scale = 1.0] reproduces the paper's
    cardinalities. *)

open Qc_cube

type spec = {
  rows : int;
  scale : float;  (** cardinality scale factor in (0, 1] *)
  seed : int;
}

val default : spec
(** 100_000 rows at scale 0.1, seed 1985. *)

val dimension_names : string list
(** The 9 dimension names, in the paper's order. *)

val cardinalities : scale:float -> int array
(** Scaled cardinalities, each at least 2. *)

val generate : spec -> Table.t

val generate_delta : spec -> Table.t -> int -> Table.t
(** Additional reports from the same station population (for the Figure 14
    maintenance experiments on the weather data). *)
