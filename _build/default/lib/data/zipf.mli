(** Zipf-distributed sampling.

    The paper's synthetic datasets draw dimension values from a Zipf
    distribution with factor 2; skew concentrates mass on few values, which
    is what makes cover classes coalesce and the QC-tree compress.  The
    sampler precomputes the cumulative distribution and draws by binary
    search, so sampling is O(log cardinality). *)

type t

val create : ?s:float -> int -> t
(** [create ~s n] prepares a sampler over ranks [1 .. n] with exponent [s]
    (default [2.0], the paper's Zipf factor): [P(k) ∝ 1 / k^s]. *)

val sample : t -> Qc_util.Rng.t -> int
(** Draw a rank in [1 .. n]. *)

val pmf : t -> int -> float
(** Probability of rank [k]. *)

val cardinality : t -> int
