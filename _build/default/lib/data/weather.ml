open Qc_cube

type spec = {
  rows : int;
  scale : float;
  seed : int;
}

let default = { rows = 100_000; scale = 0.1; seed = 1985 }

let dimension_names =
  [
    "stationid";
    "longitude";
    "solar-altitude";
    "latitude";
    "present-weather";
    "day";
    "weather-change-code";
    "hour";
    "brightness";
  ]

let paper_cards = [| 7037; 352; 179; 152; 101; 30; 10; 8; 2 |]

let cardinalities ~scale =
  Array.map (fun c -> max 2 (int_of_float (Float.round (float_of_int c *. scale)))) paper_cards

(* Per-station fixed attributes, making longitude and latitude functions of
   the station id as in the real data. *)
type station = {
  longitude : int;
  latitude : int;
}

let generate_into spec table rng k =
  let cards = cardinalities ~scale:spec.scale in
  let n_station = cards.(0) in
  let station_rng = Qc_util.Rng.create (spec.seed lxor 0x5747) in
  let stations =
    Array.init n_station (fun _ ->
        {
          longitude = 1 + Qc_util.Rng.int station_rng cards.(1);
          latitude = 1 + Qc_util.Rng.int station_rng cards.(3);
        })
  in
  (* Stations report with skewed frequency; weather codes are skewed. *)
  let station_sampler = Zipf.create ~s:1.1 n_station in
  let weather_sampler = Zipf.create ~s:1.5 cards.(4) in
  let change_sampler = Zipf.create ~s:1.5 cards.(6) in
  let cell = Array.make 9 0 in
  for _ = 1 to k do
    let sid = Zipf.sample station_sampler rng in
    let st = stations.(sid - 1) in
    let day = 1 + Qc_util.Rng.int rng cards.(5) in
    let hour = 1 + Qc_util.Rng.int rng cards.(7) in
    (* Solar altitude is (nearly) determined by hour and latitude band. *)
    let solar =
      let base = (hour * cards.(2) / cards.(7)) + (st.latitude mod 7) in
      let noise = Qc_util.Rng.int rng 3 - 1 in
      1 + (abs (base + noise) mod cards.(2))
    in
    let weather = Zipf.sample weather_sampler rng in
    (* Brightness follows hour (day vs night) with occasional overcast. *)
    let brightness =
      if cards.(8) <= 1 then 1
      else if hour * 2 > cards.(7) then if Qc_util.Rng.float rng 1.0 < 0.85 then 2 else 1
      else if Qc_util.Rng.float rng 1.0 < 0.9 then 1
      else 2
    in
    cell.(0) <- sid;
    cell.(1) <- st.longitude;
    cell.(2) <- solar;
    cell.(3) <- st.latitude;
    cell.(4) <- weather;
    cell.(5) <- day;
    cell.(6) <- Zipf.sample change_sampler rng;
    cell.(7) <- hour;
    cell.(8) <- brightness;
    (* Measure: a temperature-like reading correlated with latitude/hour. *)
    let temp =
      15.0
      +. (10.0 *. Float.sin (float_of_int hour /. float_of_int cards.(7) *. 3.14159))
      -. (float_of_int st.latitude *. 20.0 /. float_of_int cards.(3))
      +. Qc_util.Rng.float rng 4.0
    in
    Table.add_encoded table cell temp
  done

let make_schema spec =
  let schema = Schema.create ~measure_name:"temperature" dimension_names in
  let cards = cardinalities ~scale:spec.scale in
  List.iteri
    (fun i _ ->
      for v = 1 to cards.(i) do
        ignore (Schema.encode_value schema i (Printf.sprintf "%s%d" (List.nth dimension_names i) v))
      done)
    dimension_names;
  schema

let generate spec =
  let schema = make_schema spec in
  let table = Table.create schema in
  generate_into spec table (Qc_util.Rng.create spec.seed) spec.rows;
  table

let generate_delta spec base k =
  let delta = Table.create (Table.schema base) in
  generate_into spec delta (Qc_util.Rng.create (spec.seed + 104729)) k;
  delta
