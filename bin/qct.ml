(* qct — the QC-tree warehouse command line.

   Subcommands:
     generate   write a synthetic or weather-proxy dataset as CSV
     build      construct a QC-tree from a CSV base table and save it
     stats      report sizes of the cube / QC-table / QC-tree / Dwarf
     query      answer a point query against a saved tree
     explain    show the exact root-to-answer path of a point query
     iceberg    list classes whose aggregate passes a threshold
     batch      answer a whole query file in parallel across CPU domains
     trace      run a query file traced and export Chrome trace-event JSON
     insert     batch-insert a CSV delta into a saved tree
     classes    dump quotient-cube classes of a CSV base table
     check      deep invariant audit of a saved tree (exit 2 on violations)
     recover    open a warehouse directory, replay its journal and checkpoint
                the repaired state (--dry-run: report only, exit 2 if the
                directory needed repair)
     wal        inspect a warehouse directory's write-ahead journal
     serve      answer the newline-delimited query protocol over TCP from the
                packed snapshot of a warehouse directory's current generation
     loadgen    closed-loop load generator against a running serve endpoint

   Every subcommand takes --log-level (the per-library Logs sources qc.dfs,
   qc.tree, qc.maint, qc.warehouse, qc.slow report through a Fmt-based
   reporter) and --metrics (print the work-counter registry to stderr on
   exit); build/query/batch/check additionally take --trace FILE (Chrome
   trace-event span export) and query/batch/trace take --slow-ms (the
   slow-query log threshold). *)

open Cmdliner
open Qc_cube

(* ---------- shared arguments ---------- *)

let csv_arg p doc = Arg.(required & pos p (some file) None & info [] ~docv:"CSV" ~doc)

let tree_arg p doc = Arg.(required & pos p (some string) None & info [] ~docv:"TREE" ~doc)

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

(* ---------- backend selection (the Engine seam) ----------

   Every query-shaped subcommand takes one [--backend tree|packed|dwarf]
   flag and dispatches through [Qc_core.Engine.BACKEND], so the physical
   representation is chosen in exactly one place.  The historical
   [--packed] flag survives as a deprecated alias. *)

type backend_choice = B_tree | B_packed | B_dwarf

let backend_name = function B_tree -> "tree" | B_packed -> "packed" | B_dwarf -> "dwarf"

let backend_enum = [ ("tree", B_tree); ("packed", B_packed); ("dwarf", B_dwarf) ]

let backend_arg =
  Arg.(
    value
    & opt (some (enum backend_enum)) None
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:"Physical representation answering the queries: $(b,tree) (mutable QC-tree), \
              $(b,packed) (frozen array-of-int fast path) or $(b,dwarf) (the full-cube \
              baseline; needs a CSV base table as input).")

let packed_flag =
  Arg.(
    value & flag
    & info [ "packed" ]
        ~doc:"Deprecated alias for $(b,--backend packed) (for $(b,check): $(b,--backend \
              packed) audits the packed columns too).")

let resolve_backend ?(default = B_tree) backend packed =
  match backend with
  | Some b ->
    if packed then
      Printf.eprintf "qct: --packed is ignored when --backend is given (using --backend %s)\n"
        (backend_name b);
    b
  | None ->
    if packed then begin
      Printf.eprintf "qct: --packed is deprecated; use --backend packed\n";
      B_packed
    end
    else default

(* A loaded backend instance, existentially packaged so subcommands hold
   "some backend" without caring which. *)
type loaded = L : (module Qc_core.Engine.BACKEND with type t = 'a) * 'a -> loaded

(* Directories are served from frozen packed images: a plain warehouse
   from its packed snapshot, a sharded warehouse from the scatter-gather
   composite over its shards' snapshots. *)
let load_dir_backend choice path =
  (match choice with
  | B_packed -> ()
  | B_tree | B_dwarf ->
    failwith
      "a warehouse directory is served from its frozen packed snapshot; use --backend packed");
  if Qc_warehouse.Sharded.is_sharded_dir path then
    let s = Qc_warehouse.Sharded.open_dir path in
    L ((module Qc_core.Shard.Backend), Qc_warehouse.Sharded.backend s)
  else
    let w = Qc_warehouse.Warehouse.open_dir path in
    L ((module Qc_core.Engine.Packed_backend), Qc_warehouse.Warehouse.packed w)

let load_backend choice path =
  if Sys.file_exists path && Sys.is_directory path then load_dir_backend choice path
  else
    match choice with
    | B_tree -> L ((module Qc_core.Engine.Tree_backend), Qc_core.Serial.load path)
    | B_packed -> L ((module Qc_core.Engine.Packed_backend), Qc_core.Serial.load_packed path)
    | B_dwarf ->
      (* Dwarf has no serialized form; it is built per run from a CSV base
         table, matching how the paper benchmarks the baseline. *)
      L ((module Qc_dwarf.Dwarf.Backend), Qc_dwarf.Dwarf.build (Qc_data.Csv.load path))

(* Query-shaped subcommands default to the tree backend on files but to
   the packed snapshot on directories (the only representation a
   warehouse serves). *)
let default_for path = if Sys.file_exists path && Sys.is_directory path then B_packed else B_tree

(* Every runtime failure — unreadable file, malformed tree, unknown value in
   a query cell, a delta row that is not in the base — must exit nonzero
   with a one-line diagnostic, not a backtrace (and never status 0).
   Cmdliner keeps 124 for command-line parse errors; we use 1 for clean
   runtime failures. *)
let guard f =
  try f () with
  | Qc_core.Serial.Error e ->
    Printf.eprintf "qct: %s\n" (Qc_core.Serial.error_to_string e);
    exit 1
  | Qc_warehouse.Warehouse.Error e ->
    Printf.eprintf "qct: %s\n" (Qc_warehouse.Warehouse.error_to_string e);
    exit 1
  | Sys_error msg | Failure msg | Invalid_argument msg ->
    Printf.eprintf "qct: %s\n" msg;
    exit 1

(* ---------- observability setup (shared by every subcommand) ---------- *)

(* --trace FILE: enable the span tracer around the traced section and
   write the buffered spans as Chrome trace-event JSON on the way out —
   even when the body raises, so a failed run still leaves a loadable
   trace.  The write goes through Durable.write_file, so an unwritable
   path surfaces as a clean Sys_error (exit 1 under [guard]), never a
   half-written file. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let module T = Qc_util.Trace in
    T.reset ();
    T.set_enabled true;
    let write () =
      T.set_enabled false;
      let n = T.span_count () in
      Qc_util.Durable.write_file path
        (Qc_util.Jsonx.to_string (T.to_chrome_json ()) ^ "\n");
      Printf.eprintf "trace: %d span(s) -> %s\n" n path
    in
    (match f () with
    | v ->
      write ();
      v
    | exception e ->
      (* best-effort: a failed trace write must not mask the original
         error, but only expected I/O failures are swallowed *)
      (try write () with Sys_error _ | Unix.Unix_error _ -> ());
      raise e)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record hierarchical execution spans and write them to $(docv) as Chrome \
              trace-event JSON (loadable in Perfetto or chrome://tracing), one track per \
              CPU domain.")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:"Slow-query log threshold in milliseconds: every query at least this slow is \
              reported on the $(b,qc.slow) Logs source (level warning) with its latency and \
              node accesses; $(b,0) logs every query.")

let setup log_level metrics =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level log_level;
  if metrics then begin
    Qc_util.Metrics.set_enabled true;
    at_exit (fun () -> Printf.eprintf "work counters:\n%s%!" (Qc_util.Metrics.render ()))
  end

let common =
  let log_level =
    let levels =
      [
        ("quiet", None);
        ("error", Some Logs.Error);
        ("warning", Some Logs.Warning);
        ("info", Some Logs.Info);
        ("debug", Some Logs.Debug);
      ]
    in
    Arg.(
      value
      & opt (enum levels) (Some Logs.Warning)
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Log verbosity: $(b,quiet), $(b,error), $(b,warning), $(b,info) or $(b,debug).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Record work counters (nodes touched, links followed, classes split, ...) and \
                print them to stderr on exit.")
  in
  Term.(const setup $ log_level $ metrics)

(* ---------- generate ---------- *)

let generate () kind rows dims cardinality zipf scale seed out =
  guard @@ fun () ->
  let table =
    match kind with
    | `Synthetic ->
      Qc_data.Synthetic.generate { dims; cardinality; rows; zipf; seed }
    | `Weather -> Qc_data.Weather.generate { rows; scale; seed }
  in
  Qc_data.Csv.save table out;
  Printf.printf "wrote %d rows (%d dimensions) to %s\n" (Table.n_rows table)
    (Table.n_dims table) out

let generate_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("synthetic", `Synthetic); ("weather", `Weather) ]) `Synthetic
      & info [ "kind" ] ~doc:"Dataset kind: $(b,synthetic) (Zipf) or $(b,weather) (proxy).")
  in
  let rows = Arg.(value & opt int 10_000 & info [ "rows"; "n" ] ~doc:"Number of tuples.") in
  let dims = Arg.(value & opt int 6 & info [ "dims"; "d" ] ~doc:"Dimensions (synthetic).") in
  let card =
    Arg.(value & opt int 100 & info [ "cardinality"; "c" ] ~doc:"Cardinality per dimension (synthetic).")
  in
  let zipf = Arg.(value & opt float 2.0 & info [ "zipf" ] ~doc:"Zipf factor (synthetic).") in
  let scale = Arg.(value & opt float 0.1 & info [ "scale" ] ~doc:"Cardinality scale (weather).") in
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.csv" ~doc:"Output file.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a benchmark dataset as CSV.")
    Term.(const generate $ common $ kind $ rows $ dims $ card $ zipf $ scale $ seed_arg $ out)

(* ---------- build ---------- *)

(* --shards / --partition: validated syntactically by cmdliner (so a bad
   spelling is a usage error, exit 124); the range dimension is resolved
   against the loaded schema at runtime (unknown dimension: exit 1). *)
let shards_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None -> Error (`Msg "SHARDS must be a positive integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let shards_arg =
  Arg.(
    value
    & opt shards_conv 1
    & info [ "shards" ] ~docv:"N"
        ~doc:"Partition the base table into $(docv) shards and build a sharded warehouse \
              directory (one QC-tree, journal and manifest per shard) instead of a single \
              tree file.")

let partition_conv =
  let parse s =
    let ok () = Ok s in
    if String.equal s "hash" then ok ()
    else
      match String.index_opt s ':' with
      | Some i when String.equal (String.sub s 0 i) "range" && i + 1 < String.length s ->
        ok ()
      | Some _ | None -> Error (`Msg "PARTITION must be hash or range:DIM")
  in
  Arg.conv (parse, Format.pp_print_string)

let partition_arg =
  Arg.(
    value
    & opt (some partition_conv) None
    & info [ "partition" ] ~docv:"PARTITION"
        ~doc:"How tuples map to shards: $(b,hash) (default; FNV-1a over all dimension \
              codes) or $(b,range:DIM) (contiguous value-code ranges of one dimension, \
              named or 0-based index).  Implies a sharded build even with $(b,--shards 1).")

let build () backend packed trace shards partition jobs csv out =
  guard @@ fun () ->
  with_trace trace @@ fun () ->
  if shards > 1 || Option.is_some partition then begin
    let module S = Qc_warehouse.Sharded in
    let table = Qc_data.Csv.load csv in
    let partitioner =
      match
        Qc_core.Shard.partitioner_of_string (Table.schema table)
          (Option.value partition ~default:"hash")
      with
      | Ok p -> p
      | Error reason -> failwith ("build: " ^ reason)
    in
    let s, dt = Qc_util.Timer.time (fun () -> S.create ?jobs ~partitioner ~shards table) in
    S.save s out;
    Printf.printf "built sharded warehouse of %d tuples in %.2fs: %s\nsaved to %s\n"
      (Table.n_rows table) dt (S.describe s) out
  end
  else begin
    let choice = resolve_backend backend packed in
    let table = Qc_data.Csv.load csv in
    let tree, dt = Qc_util.Timer.time (fun () -> Qc_core.Qc_tree.of_table table) in
    (match choice with
    | B_tree -> Qc_core.Serial.save tree out
    | B_packed -> Qc_core.Serial.save_packed (Qc_core.Packed.of_tree tree) out
    | B_dwarf ->
      failwith "build: dwarf has no serialized form; query it with --backend dwarf on the CSV");
    Printf.printf "built QC-tree of %d tuples in %.2fs: %d nodes, %d links, %d classes, %s\n"
      (Table.n_rows table) dt
      (Qc_core.Qc_tree.n_nodes tree) (Qc_core.Qc_tree.n_links tree)
      (Qc_core.Qc_tree.n_classes tree)
      (Format.asprintf "%a" Qc_util.Size.pp_bytes (Qc_core.Qc_tree.bytes tree));
    Printf.printf "saved to %s%s\n" out
      (match choice with B_packed -> " (packed format)" | B_tree | B_dwarf -> "")
  end

let build_cmd =
  Cmd.v
    (Cmd.info "build"
       ~doc:"Build a QC-tree from a CSV base table and save it.  With $(b,--shards) or \
             $(b,--partition), build a sharded warehouse directory instead: the table is \
             partitioned, one QC-tree is built per shard (in parallel domains) and each \
             shard is checkpointed as a full crash-safe warehouse.")
    Term.(
      const build $ common $ backend_arg $ packed_flag $ trace_arg $ shards_arg
      $ partition_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for a sharded build.")
      $ csv_arg 0 "Base table CSV." $ tree_arg 1 "Output tree file (or sharded directory).")

(* ---------- stats ---------- *)

let stats () csv json prom =
  guard @@ fun () ->
  (* --prom records the work counters the builds themselves generate, so
     the exposition carries live values, not an empty registry *)
  if prom then Qc_util.Metrics.set_enabled true;
  let table = Qc_data.Csv.load csv in
  let cube_bytes = Buc.cube_bytes table in
  let cube_cells = Buc.count_cells table in
  let wh = Qc_warehouse.Warehouse.create table in
  let tree = Qc_warehouse.Warehouse.tree wh in
  let qtab = Qc_core.Qc_table.of_table table in
  let dwarf = Qc_dwarf.Dwarf.build table in
  if prom then print_string (Qc_util.Metrics.to_prometheus ())
  else if json then
    let open Qc_util.Jsonx in
    print_endline
      (to_string
         (Obj
            [
              ("warehouse", Qc_warehouse.Warehouse.stat_to_json (Qc_warehouse.Warehouse.stats_record wh));
              ("cube_cells", Int cube_cells);
              ("cube_bytes", Int cube_bytes);
              ("qc_table_bytes", Int (Qc_core.Qc_table.bytes qtab));
              ("qc_tree_bytes", Int (Qc_core.Qc_tree.bytes tree));
              ("dwarf_bytes", Int (Qc_dwarf.Dwarf.bytes dwarf));
            ]))
  else begin
    let row name bytes =
      Printf.printf "  %-9s %12d bytes   %6.2f%% of the cube\n" name bytes
        (100.0 *. float_of_int bytes /. float_of_int cube_bytes)
    in
    Printf.printf "base table: %d tuples, %d dimensions\n" (Table.n_rows table) (Table.n_dims table);
    Printf.printf "full cube:  %d cells, %d bytes\n" cube_cells cube_bytes;
    Printf.printf "quotient:   %d classes\n" (Qc_core.Qc_table.n_classes qtab);
    row "QC-tree" (Qc_core.Qc_tree.bytes tree);
    row "QC-table" (Qc_core.Qc_table.bytes qtab);
    row "Dwarf" (Qc_dwarf.Dwarf.bytes dwarf)
  end

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead of the text table.")
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:"Emit the metrics registry (work counters and latency histograms with exact \
                p50/p90/p99 gauges) in Prometheus text exposition format instead of the \
                storage table.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Compare storage structures over a CSV base table.")
    Term.(const stats $ common $ csv_arg 0 "Base table CSV." $ json $ prom)

(* ---------- query ---------- *)

let print_answer schema cell func = function
  | Some agg ->
    Printf.printf "%s: %s = %g   (count=%d sum=%g min=%g max=%g)\n"
      (Cell.to_string schema cell) (Agg.func_to_string func) (Agg.value func agg)
      agg.Agg.count agg.Agg.sum agg.Agg.min agg.Agg.max
  | None -> Printf.printf "%s: NULL (empty cover)\n" (Cell.to_string schema cell)

let query () backend packed trace slow_ms tree_path cell_spec func =
  guard @@ fun () ->
  let module E = Qc_core.Engine in
  E.set_slow_threshold_ms slow_ms;
  with_trace trace @@ fun () ->
  let (L ((module B), b)) =
    load_backend (resolve_backend ~default:(default_for tree_path) backend packed) tree_path
  in
  let schema = B.schema b in
  (* The argv cell goes through the same grammar as batch files and the
     wire (Request.of_line), so a bad cell fails with the shared
     "line 1: ..." text every other frontend uses. *)
  let cell =
    match Qc_core.Request.of_line ~lineno:1 schema ("point " ^ cell_spec) with
    | Ok (Qc_core.Request.Query (Qc_core.Request.Point c)) -> c
    | Ok _ -> failwith "query: expected a point query"
    | Error e -> failwith (E.error_to_string ~schema e)
  in
  let outcome = E.run_one (module B) b (E.Point cell) in
  E.flush_slow_log ();
  match outcome with
  | Ok (E.Agg_answer agg) -> print_answer schema cell func (Some agg)
  | Ok (E.Cells_answer _) -> failwith "query: point query returned a cell list"
  | Error (E.Empty_cover _) -> print_answer schema cell func None
  | Error e -> failwith (E.error_to_string ~schema e)

let func_arg =
  Arg.(
    value
    & opt
        (enum [ ("count", Agg.Count); ("sum", Agg.Sum); ("avg", Agg.Avg); ("min", Agg.Min); ("max", Agg.Max) ])
        Agg.Avg
    & info [ "f"; "function" ] ~doc:"Aggregate function.")

let query_cmd =
  let cell = Arg.(required & pos 1 (some string) None & info [] ~docv:"CELL" ~doc:"Comma-separated values, * for ALL.") in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer a point query against a saved QC-tree.")
    Term.(
      const query $ common $ backend_arg $ packed_flag $ trace_arg $ slow_ms_arg
      $ tree_arg 0 "Saved tree file." $ cell $ func_arg)

(* ---------- explain ---------- *)

let explain () backend packed tree_path cell_spec =
  guard @@ fun () ->
  let (L ((module B), b)) =
    load_backend (resolve_backend ~default:(default_for tree_path) backend packed) tree_path
  in
  let schema = B.schema b in
  let cell = Cell.parse schema (String.split_on_char ',' cell_spec) in
  match B.explain b cell with
  | Ok e -> Format.printf "%a@." (Qc_core.Engine.pp_explanation schema) e
  | Error e -> failwith (Qc_core.Engine.error_to_string ~schema e)

let explain_cmd =
  let cell = Arg.(required & pos 1 (some string) None & info [] ~docv:"CELL" ~doc:"Comma-separated values, * for ALL.") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the exact root-to-answer path a point query takes through the tree \
             (tree edges, drill-down links and last-dimension hops of Algorithm 3).")
    Term.(
      const explain $ common $ backend_arg $ packed_flag $ tree_arg 0 "Saved tree file."
      $ cell)

(* ---------- iceberg ---------- *)

let iceberg () backend packed tree_path func threshold limit =
  guard @@ fun () ->
  let (L ((module B), b)) =
    load_backend (resolve_backend ~default:(default_for tree_path) backend packed) tree_path
  in
  let schema = B.schema b in
  match B.iceberg b func ~threshold with
  | Error e -> failwith (Qc_core.Engine.error_to_string ~schema e)
  | Ok results ->
    Printf.printf "%d classes with %s >= %g\n" (List.length results)
      (Agg.func_to_string func) threshold;
    List.iteri
      (fun i (cell, agg) ->
        if i < limit then
          Printf.printf "  %s -> %g\n" (Cell.to_string schema cell) (Agg.value func agg))
      results

let iceberg_cmd =
  let threshold =
    Arg.(required & pos 1 (some float) None & info [] ~docv:"THRESHOLD" ~doc:"Aggregate threshold.")
  in
  let limit = Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Rows to print.") in
  Cmd.v
    (Cmd.info "iceberg" ~doc:"List classes whose aggregate passes a threshold.")
    Term.(
      const iceberg $ common $ backend_arg $ packed_flag $ tree_arg 0 "Saved tree file."
      $ func_arg $ threshold $ limit)

(* ---------- batch ---------- *)

(* Result labels must be diffable across --jobs values, so every line is
   deterministic; the renderer lives in Engine (the slow-query log uses
   the same one). *)
let render_query = Qc_core.Engine.render_query

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Load DATA (saved tree, warehouse directory, or — for dwarf — a CSV)
   into a schema plus a batch-running closure; shared by [batch] and
   [trace]. *)
let load_runner choice data_path =
  let module E = Qc_core.Engine in
  if Sys.is_directory data_path then begin
    (match choice with
    | B_packed -> ()
    | B_tree | B_dwarf ->
      failwith
        "batch: a warehouse directory is served from its frozen packed snapshot; use \
         --backend packed");
    if Qc_warehouse.Sharded.is_sharded_dir data_path then
      let s = Qc_warehouse.Sharded.open_dir data_path in
      ( Qc_warehouse.Sharded.schema s,
        fun ?jobs ~node_accesses qs ->
          Qc_warehouse.Sharded.run_batch ?jobs ~node_accesses s qs )
    else
      let w = Qc_warehouse.Warehouse.open_dir data_path in
      ( Qc_warehouse.Warehouse.schema w,
        fun ?jobs ~node_accesses qs ->
          Qc_warehouse.Warehouse.run_batch ?jobs ~node_accesses w qs )
  end
  else
    let (L ((module B), b)) = load_backend choice data_path in
    (B.schema b, fun ?jobs ~node_accesses qs -> E.run_batch ?jobs ~node_accesses (module B) b qs)

let parse_query_file schema path =
  let module E = Qc_core.Engine in
  match E.parse_queries schema (read_whole_file path) with
  | Ok qs -> qs
  | Error e -> failwith (E.error_to_string ~schema e)

(* The per-chunk and per-domain timing breakdowns of batch --json: chunks
   verbatim from the executor, domains as the aggregation over the chunks
   each Domain ran. *)
let chunk_breakdown (chunks : Qc_core.Engine.chunk_stat array) =
  let module E = Qc_core.Engine in
  let open Qc_util.Jsonx in
  let chunk_json (c : E.chunk_stat) =
    Obj
      [
        ("chunk", Int c.E.chunk);
        ("lo", Int c.E.c_lo);
        ("hi", Int c.E.c_hi);
        ("queries", Int (c.E.c_hi - c.E.c_lo));
        ("domain", Int c.E.c_domain);
        ("elapsed_s", Float c.E.c_elapsed_s);
      ]
  in
  let domains =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun (c : E.chunk_stat) ->
        let n, q, t =
          match Hashtbl.find_opt tbl c.E.c_domain with Some v -> v | None -> (0, 0, 0.0)
        in
        Hashtbl.replace tbl c.E.c_domain (n + 1, q + (c.E.c_hi - c.E.c_lo), t +. c.E.c_elapsed_s))
      chunks;
    List.sort
      (fun (d1, _) (d2, _) -> Int.compare d1 d2)
      (Hashtbl.fold (fun d v acc -> (d, v) :: acc) tbl [])
  in
  let domain_json (d, (n, q, t)) =
    Obj [ ("domain", Int d); ("chunks", Int n); ("queries", Int q); ("busy_s", Float t) ]
  in
  [
    ("chunks", List (Array.to_list (Array.map chunk_json chunks)));
    ("domains", List (List.map domain_json domains));
  ]

let batch () backend packed trace slow_ms data_path queries_path jobs json node_accesses =
  guard @@ fun () ->
  let module E = Qc_core.Engine in
  E.set_slow_threshold_ms slow_ms;
  with_trace trace @@ fun () ->
  (* Batches run over a frozen snapshot, so the packed representation is
     the natural default; --backend tree/dwarf remain available for
     differential runs. *)
  let choice = resolve_backend ~default:B_packed backend packed in
  let schema, run = load_runner choice data_path in
  let queries = parse_query_file schema queries_path in
  let b = run ?jobs ~node_accesses queries in
  let pr_agg (agg : Agg.t) =
    Printf.sprintf "count=%d sum=%g min=%g max=%g" agg.Agg.count agg.Agg.sum agg.Agg.min
      agg.Agg.max
  in
  if json then begin
    let open Qc_util.Jsonx in
    let agg_json (agg : Agg.t) =
      Obj
        [
          ("count", Int agg.Agg.count);
          ("sum", Float agg.Agg.sum);
          ("min", Float agg.Agg.min);
          ("max", Float agg.Agg.max);
        ]
    in
    let result i q =
      let body =
        match b.E.outcomes.(i) with
        | Ok (E.Agg_answer agg) -> [ ("status", String "ok"); ("agg", agg_json agg) ]
        | Ok (E.Cells_answer cells) ->
          [
            ("status", String "ok");
            ( "cells",
              List
                (List.map
                   (fun (cell, agg) ->
                     Obj
                       [
                         ("cell", String (Cell.to_string schema cell));
                         ("agg", agg_json agg);
                       ])
                   cells) );
          ]
        | Error (E.Empty_cover _) -> [ ("status", String "empty") ]
        | Error e ->
          [ ("status", String "error"); ("error", String (E.error_to_string ~schema e)) ]
      in
      let acc =
        match (b.E.accesses, q) with
        | Some a, E.Point _ -> [ ("node_accesses", Int a.(i)) ]
        | _ -> []
      in
      Obj ((("query", String (render_query schema q)) :: body) @ acc)
    in
    print_endline
      (to_string
         (Obj
            ([
               ("backend", String (backend_name choice));
               ("jobs", Int b.E.jobs);
               ("queries", Int (Array.length queries));
               ("elapsed_s", Float b.E.elapsed_s);
             ]
            @ chunk_breakdown b.E.chunks
            @ [ ("results", List (List.mapi result (Array.to_list queries))) ])))
  end
  else begin
    Array.iteri
      (fun i q ->
        let label = render_query schema q in
        (match b.E.outcomes.(i) with
        | Ok (E.Agg_answer agg) -> Printf.printf "%s: %s" label (pr_agg agg)
        | Ok (E.Cells_answer cells) ->
          Printf.printf "%s: %d cell(s)" label (List.length cells);
          List.iter
            (fun (cell, agg) ->
              Printf.printf "\n  %s -> %s" (Cell.to_string schema cell) (pr_agg agg))
            cells
        | Error (E.Empty_cover _) -> Printf.printf "%s: NULL (empty cover)" label
        | Error e -> Printf.printf "%s: error: %s" label (E.error_to_string ~schema e));
        (match (b.E.accesses, q) with
        | Some a, E.Point _ -> Printf.printf "   [%d nodes]" a.(i)
        | _ -> ());
        print_newline ())
      queries;
    (* The summary carries timing, so it goes to stderr: stdout must be
       byte-identical across --jobs values. *)
    Printf.eprintf "batch: %d queries, %d job(s), %.3fs\n" (Array.length queries) b.E.jobs
      b.E.elapsed_s
  end

let data_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"DATA"
        ~doc:"Saved tree file (either format), a warehouse directory, or — with \
              $(b,--backend dwarf) — a CSV base table.")

let queries_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"QUERIES"
        ~doc:"Query file: one $(b,point CELL), $(b,range SPEC) or $(b,iceberg FUNC \
              THRESHOLD) per line; blank lines and $(b,#) comments are skipped.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains (default: $(b,QC_JOBS) when set, else the recommended \
              domain count).  Answers are bit-identical for every value.")

let batch_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead of text lines.")
  in
  let node_acc =
    Arg.(
      value & flag
      & info [ "node-accesses" ]
          ~doc:"Also report the nodes each point query touches (Figure 13's cost metric).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Answer a whole query file in parallel across CPU domains.  Results are \
             printed in input order and are bit-identical to a sequential run ($(b,--jobs \
             1)); the default backend is the frozen packed snapshot.")
    Term.(
      const batch $ common $ backend_arg $ packed_flag $ trace_arg $ slow_ms_arg $ data_arg
      $ queries_arg $ jobs_arg $ json $ node_acc)

(* ---------- trace ---------- *)

let trace_run () backend packed slow_ms node_accesses data_path queries_path out jobs =
  guard @@ fun () ->
  let module E = Qc_core.Engine in
  E.set_slow_threshold_ms slow_ms;
  with_trace (Some out) @@ fun () ->
  let choice = resolve_backend ~default:B_packed backend packed in
  let schema, run = load_runner choice data_path in
  let queries = parse_query_file schema queries_path in
  let b = run ?jobs ~node_accesses queries in
  Printf.printf "traced %d queries over %d job(s) in %.3fs\n" (Array.length queries) b.E.jobs
    b.E.elapsed_s

let trace_cmd =
  let out =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"OUT.json" ~doc:"Chrome trace-event JSON output file.")
  in
  let node_acc =
    Arg.(
      value & flag
      & info [ "node-accesses" ]
          ~doc:"Also record per-point-query node-access counts as span attributes.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a query file with full span tracing and write the result as Chrome \
             trace-event JSON (loadable in Perfetto or chrome://tracing): one track per \
             CPU domain, one span per query/chunk/batch with node-access attributes.  \
             Equivalent to $(b,qct batch --trace OUT.json) minus the per-query answer \
             printing.")
    Term.(
      const trace_run $ common $ backend_arg $ packed_flag $ slow_ms_arg $ node_acc
      $ data_arg $ queries_arg $ out $ jobs_arg)

(* ---------- insert ---------- *)

let reencode_against schema table_raw =
  (* re-encode a loaded CSV under an existing schema so codes coincide *)
  let out = Table.create schema in
  let schema_raw = Table.schema table_raw in
  Table.iter
    (fun cell m ->
      let values =
        List.init (Schema.n_dims schema_raw) (fun i -> Schema.decode_value schema_raw i cell.(i))
      in
      Table.add_row out values m)
    table_raw;
  out

(* The post-maintenance audit behind --self-check: a full deep Check.run
   against the freshly maintained base.  Violations exit 2, matching the
   [qct check] contract. *)
let self_check_or_exit ~what tree base =
  let report = Qc_core.Check.run ~deep:true ~base tree in
  match report.Qc_core.Check.violations with
  | [] -> Printf.printf "self-check after %s: OK\n" what
  | violations ->
    let schema = Some (Qc_core.Qc_tree.schema tree) in
    List.iter
      (fun v ->
        Format.printf "violation [%s]: %a@." (Qc_core.Check.violation_label v)
          (Qc_core.Check.pp_violation schema) v)
      violations;
    Printf.printf "self-check after %s: FAILED with %d violation(s)\n" what
      (List.length violations);
    exit 2

let self_check_flag =
  Arg.(
    value & flag
    & info [ "self-check" ]
        ~doc:"Run the full invariant audit ($(b,qct check --packed --deep)) on the maintained               tree before saving; exit 2 if the maintenance broke an invariant.")

let insert () tree_path base_csv delta_csv out self_chk =
  guard @@ fun () ->
  let tree = Qc_core.Serial.load tree_path in
  let base = Qc_data.Csv.load base_csv in
  let delta = reencode_against (Table.schema base) (Qc_data.Csv.load delta_csv) in
  let stats, dt =
    Qc_util.Timer.time (fun () -> Qc_core.Maintenance.insert_batch tree ~base ~delta)
  in
  if self_chk then self_check_or_exit ~what:"insert" tree base;
  Qc_core.Serial.save tree out;
  Printf.printf
    "inserted %d tuples in %.2fs: %d classes updated, %d split, %d created; tree saved to %s\n"
    (Table.n_rows delta) dt stats.updated stats.carved stats.fresh out

let insert_cmd =
  Cmd.v
    (Cmd.info "insert"
       ~doc:"Batch-insert a CSV delta into a saved tree (Algorithm 2); base CSV required to keep the warehouse consistent.")
    Term.(
      const insert $ common $ tree_arg 0 "Saved tree file." $ csv_arg 1 "Base table CSV."
      $ csv_arg 2 "Delta CSV." $ tree_arg 3 "Output tree file." $ self_check_flag)

(* ---------- delete ---------- *)

let reencode base table_raw = reencode_against (Table.schema base) table_raw

let delete () tree_path base_csv delta_csv out_tree out_csv self_chk =
  guard @@ fun () ->
  let tree = Qc_core.Serial.load tree_path in
  let base = Qc_data.Csv.load base_csv in
  let delta = reencode base (Qc_data.Csv.load delta_csv) in
  let (new_base, stats), dt =
    Qc_util.Timer.time (fun () -> Qc_core.Maintenance.delete_batch tree ~base ~delta)
  in
  if self_chk then self_check_or_exit ~what:"delete" tree new_base;
  Qc_core.Serial.save tree out_tree;
  Qc_data.Csv.save new_base out_csv;
  Printf.printf
    "deleted %d tuples in %.2fs: %d classes removed, %d merged, %d updated; tree -> %s, base -> %s\n"
    (Table.n_rows delta) dt stats.removed stats.merged stats.updated_classes out_tree out_csv

let delete_cmd =
  Cmd.v
    (Cmd.info "delete" ~doc:"Batch-delete a CSV delta from a saved tree and base table.")
    Term.(
      const delete $ common $ tree_arg 0 "Saved tree file." $ csv_arg 1 "Base table CSV."
      $ csv_arg 2 "Delta CSV." $ tree_arg 3 "Output tree file."
      $ Arg.(required & pos 4 (some string) None & info [] ~docv:"OUT.csv" ~doc:"Output base CSV.")
      $ self_check_flag)

(* ---------- rollup ---------- *)

let rollup () csv cell_spec func =
  guard @@ fun () ->
  let table = Qc_data.Csv.load csv in
  let schema = Table.schema table in
  let quotient = Qc_core.Quotient.of_table table in
  let cell = Cell.parse schema (String.split_on_char ',' cell_spec) in
  match Qc_core.Explore.intelligent_rollup quotient func cell with
  | None -> Printf.printf "%s is not in the cube\n" (Cell.to_string schema cell)
  | Some r -> Format.printf "%a" (Qc_core.Explore.pp_rollup schema) r

let rollup_cmd =
  let cell = Arg.(required & pos 1 (some string) None & info [] ~docv:"CELL" ~doc:"Start cell; comma-separated, * for ALL.") in
  Cmd.v
    (Cmd.info "rollup"
       ~doc:"Intelligent roll-up: the most general contexts where the aggregate keeps its value.")
    Term.(const rollup $ common $ csv_arg 0 "Base table CSV." $ cell $ func_arg)

(* ---------- whatif ---------- *)

let whatif () base_csv delta_csv kind cells =
  guard @@ fun () ->
  let base = Qc_data.Csv.load base_csv in
  let schema = Table.schema base in
  let tree = Qc_core.Qc_tree.of_table base in
  let delta = reencode base (Qc_data.Csv.load delta_csv) in
  let scenario = Qc_core.Whatif.create tree base in
  (match kind with
  | `Insert -> Qc_core.Whatif.assume_inserted scenario delta
  | `Delete -> Qc_core.Whatif.assume_deleted scenario delta);
  match cells with
  | [] ->
    let affected = Qc_core.Whatif.affected_classes scenario ~against:tree in
    Printf.printf "%d classes would change:\n" (List.length affected);
    List.iteri
      (fun i (ub, before, after) ->
        if i < 25 then
          Printf.printf "  %s : %s -> %s\n" (Cell.to_string schema ub)
            (match before with None -> "-" | Some a -> Format.asprintf "%a" Agg.pp a)
            (match after with None -> "gone" | Some a -> Format.asprintf "%a" Agg.pp a))
      affected
  | cells ->
    let cells = List.map (fun c -> Cell.parse schema (String.split_on_char ',' c)) cells in
    let deltas = Qc_core.Whatif.compare_cells scenario ~against:tree cells in
    if deltas = [] then print_endline "no change in the given cells"
    else
      List.iter
        (fun (d : Qc_core.Whatif.delta) ->
          Printf.printf "  %s : %s -> %s\n" (Cell.to_string schema d.cell)
            (match d.before with None -> "-" | Some a -> Format.asprintf "%a" Agg.pp a)
            (match d.after with None -> "gone" | Some a -> Format.asprintf "%a" Agg.pp a))
        deltas

let whatif_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("insert", `Insert); ("delete", `Delete) ]) `Insert
      & info [ "kind" ] ~doc:"Hypothesis kind: $(b,insert) or $(b,delete).")
  in
  let cells =
    Arg.(value & opt_all string [] & info [ "cell" ] ~doc:"Cell to compare (repeatable); default: list all affected classes.")
  in
  Cmd.v
    (Cmd.info "whatif" ~doc:"Evaluate a hypothetical update without committing it.")
    Term.(const whatif $ common $ csv_arg 0 "Base table CSV." $ csv_arg 1 "Hypothetical delta CSV." $ kind $ cells)

(* ---------- check ---------- *)

(* Exit-code contract (asserted by test/cli): 0 = every invariant holds,
   2 = violations found, 1 = runtime failure (unreadable file, bad cell),
   124 = usage error.  2 is distinct from 1 so scripts can tell "the tree is
   broken" from "the command could not run". *)

(* check on a sharded directory: per-shard byte audit of each tree image
   (so single-shard corruption is a reported violation, never a silent
   rebuild), per-shard structural/deep audit, and a placement audit of
   every base tuple against the manifest's partitioner. *)
let check_sharded trace dir deep samples json =
  let module S = Qc_warehouse.Sharded in
  let module W = Qc_warehouse.Warehouse in
  let module C = Qc_core.Check in
  let report, misplaced, repaired, schema =
    with_trace trace @@ fun () ->
    let s = S.open_dir dir in
    let reports = ref [] in
    let repaired = ref [] in
    Array.iteri
      (fun k w ->
        let tree_path = Filename.concat (S.shard_dir dir k) "tree.qct" in
        (if Sys.file_exists tree_path then begin
           let data = read_whole_file tree_path in
           if
             String.length data >= 4
             && String.equal (String.sub data 0 4) Qc_core.Serial.packed_magic
           then reports := C.check_bytes data :: !reports
         end);
        (* [open_dir] recovers damage silently; for an audit that is a
           finding, not a fix *)
        if (W.last_recovery w).W.rebuilt_tree then repaired := k :: !repaired;
        reports :=
          (if deep then C.run ~deep:true ~base:(W.table w) ~samples (W.tree w)
           else C.check_packed (W.packed w))
          :: !reports)
      (S.shards s);
    (C.merge_reports (List.rev !reports), S.misplaced s, List.rev !repaired, S.schema s)
  in
  let violations = report.C.violations in
  let n_checks = List.fold_left (fun acc (_, n) -> acc + n) 0 report.C.checked in
  let extra = List.length misplaced + List.length repaired in
  if json then
    let open Qc_util.Jsonx in
    print_endline
      (to_string
         (Obj
            [
              ("dir", String dir);
              ("report", C.report_to_json ~path:dir report);
              ("misplaced", Int (List.length misplaced));
              ("rebuilt_shards", List (List.map (fun k -> Int k) repaired));
            ]))
  else begin
    List.iter
      (fun v ->
        Format.printf "violation [%s]: %a@." (C.violation_label v)
          (C.pp_violation (Some schema))
          v)
      violations;
    List.iter
      (fun k ->
        Printf.printf "violation [shard-image]: shard %d's tree image was missing or \
                       damaged (rebuilt from base.csv to audit it)\n" k)
      repaired;
    List.iteri
      (fun i (k, cell) ->
        if i < 20 then
          Printf.printf "violation [placement]: %s lives in shard %d, not the shard its \
                         partitioner assigns\n"
            (Cell.to_string schema cell) k)
      misplaced;
    if List.is_empty violations && extra = 0 then
      Printf.printf "OK: %d checks across %d shard report(s), placement verified, no \
                     violations\n"
        n_checks
        (List.length report.C.checked)
    else
      Printf.printf "FAILED: %d violation(s) in %d checks\n"
        (List.length violations + extra)
        n_checks
  end;
  if not (List.is_empty violations && extra = 0) then exit 2

let check () backend packed trace tree_path base_csv deep samples json =
  guard @@ fun () ->
  if
    Sys.file_exists tree_path && Sys.is_directory tree_path
    && Qc_warehouse.Sharded.is_sharded_dir tree_path
  then check_sharded trace tree_path deep samples json
  else if Sys.file_exists tree_path && Sys.is_directory tree_path then begin
    (* plain warehouse directory: open it (replaying the journal, exactly
       what a reader would see) and audit the live state against its own
       base table — the post-crash verdict the soak harness relies on *)
    let module W = Qc_warehouse.Warehouse in
    let w = W.open_dir tree_path in
    let report =
      with_trace trace @@ fun () ->
      Qc_core.Check.run ~deep ~base:(W.table w) ~samples (W.tree w)
    in
    let violations = report.Qc_core.Check.violations in
    if json then
      print_endline
        (Qc_util.Jsonx.to_string (Qc_core.Check.report_to_json ~path:tree_path report))
    else begin
      let schema = Some (W.schema w) in
      List.iter
        (fun v ->
          Format.printf "violation [%s]: %a@." (Qc_core.Check.violation_label v)
            (Qc_core.Check.pp_violation schema) v)
        violations;
      let n_checks =
        List.fold_left (fun acc (_, n) -> acc + n) 0 report.Qc_core.Check.checked
      in
      if List.is_empty violations then
        Printf.printf "OK: %d checks across %d invariant families, no violations\n" n_checks
          (List.length report.Qc_core.Check.checked)
      else Printf.printf "FAILED: %d violation(s) in %d checks\n" (List.length violations) n_checks
    end;
    if not (List.is_empty violations) then exit 2
  end
  else begin
  (* the audit runs (and its trace is written) before the exit-2 verdict,
     so a failing tree still yields a complete trace file *)
  let violations =
    with_trace trace @@ fun () ->
    let packed_too =
    match resolve_backend backend packed with
    | B_packed -> true
    | B_tree -> false
    | B_dwarf -> failwith "check: only the tree and packed representations can be audited"
  in
  let data =
    let ic = open_in_bin tree_path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let reports = ref [] in
  let push r = reports := r :: !reports in
  (* Byte-level audit first: it needs no successful parse, so a corrupted
     buffer still yields a structured report rather than a load error. *)
  let is_qctp =
    String.length data >= 4 && String.equal (String.sub data 0 4) Qc_core.Serial.packed_magic
  in
  if is_qctp then push (Qc_core.Check.check_bytes data);
  let bytes_ok = List.for_all Qc_core.Check.ok !reports in
  let tree =
    if bytes_ok then (
      match Qc_core.Serial.of_string_any data with
      | `Tree tree -> Some tree
      | `Packed p ->
        push (Qc_core.Check.check_packed p);
        Some (Qc_core.Packed.to_tree p))
    else None (* the buffer is already known broken; do not parse it *)
  in
  (match tree with
  | None -> ()
  | Some tree ->
    let base =
      match base_csv with
      | None ->
        if deep then begin
          Printf.eprintf "qct: check --deep needs --base CSV as the oracle\n";
          exit 1
        end;
        None
      | Some csv ->
        Some (reencode_against (Qc_core.Qc_tree.schema tree) (Qc_data.Csv.load csv))
    in
    if packed_too then push (Qc_core.Check.run ~deep ?base ~samples tree)
    else push (Qc_core.Check.check_tree ~deep ?base ~samples tree));
  let report = Qc_core.Check.merge_reports (List.rev !reports) in
  let n_checks = List.fold_left (fun acc (_, n) -> acc + n) 0 report.Qc_core.Check.checked in
  let violations = report.Qc_core.Check.violations in
  if json then
    print_endline
      (Qc_util.Jsonx.to_string (Qc_core.Check.report_to_json ~path:tree_path report))
  else begin
    let schema =
      match tree with Some t -> Some (Qc_core.Qc_tree.schema t) | None -> None
    in
    List.iter
      (fun v ->
        Format.printf "violation [%s]: %a@." (Qc_core.Check.violation_label v)
          (Qc_core.Check.pp_violation schema) v)
      violations;
    if List.is_empty violations then
      Printf.printf "OK: %d checks across %d invariant families, no violations\n" n_checks
        (List.length report.Qc_core.Check.checked)
    else Printf.printf "FAILED: %d violation(s) in %d checks\n" (List.length violations) n_checks
  end;
    violations
  in
  if not (List.is_empty violations) then exit 2
  end

let check_cmd =
  let base =
    Arg.(
      value
      & opt (some file) None
      & info [ "base" ] ~docv:"CSV"
          ~doc:"Base table used as the ground-truth oracle for $(b,--deep).")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:"Also re-run the class DFS over $(b,--base) and replay sampled point queries \
                against a full table scan (Lemma 1/Theorem 1 cross-check).")
  in
  let samples =
    Arg.(value & opt int 64 & info [ "samples" ] ~doc:"Point queries replayed by $(b,--deep).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Deep invariant audit of a saved tree (exit 2 when violations are found).  With \
             $(b,--backend packed), additionally freeze the tree and audit the packed \
             columns, the serialized bytes and the freeze/thaw/serialize round trips.")
    Term.(
      const check $ common $ backend_arg $ packed_flag $ trace_arg
      $ tree_arg 0 "Saved tree file (either format)." $ base $ deep $ samples $ json)

(* ---------- recover ---------- *)

(* Exit-code contract (asserted by test/cli): 0 = opened (and, without
   --dry-run, checkpointed) cleanly — journal replay alone is the normal
   crash residue, not corruption; 2 = --dry-run found repairs that a real
   run would persist (torn journal tail, rebuilt tree, rolled-forward
   checkpoint); 1 = the directory cannot be opened at all. *)
(* Crash residue rendered in the {label, file_or_path, detail} envelope
   shared with [qct check --json] and [qclint --json] (DESIGN.md "Static
   analysis"): one parser reads findings from all three tools. *)
let recovery_violations ~path (r : Qc_warehouse.Warehouse.recovery) =
  let module W = Qc_warehouse.Warehouse in
  let open Qc_util.Jsonx in
  let v label detail =
    Obj [ ("label", String label); ("file_or_path", String path); ("detail", String detail) ]
  in
  (if r.W.torn_bytes > 0 then
     [ v "torn-tail" (Printf.sprintf "%d-byte torn journal tail" r.W.torn_bytes) ]
   else [])
  @ (if r.W.rebuilt_tree then
       [ v "rebuilt-tree" "tree image missing or damaged; rebuilt from base.csv" ]
     else [])
  @ (if r.W.rolled_forward then
       [ v "rolled-forward" "interrupted checkpoint rolled forward to its manifest generation" ]
     else [])
  @ (if r.W.stale_skipped > 0 then
       [
         v "stale-records"
           (Printf.sprintf "%d superseded journal record(s) skipped (checkpoint committed, \
                            truncation interrupted)"
              r.W.stale_skipped);
       ]
     else [])
  @
  if r.W.segments > 0 then
    [
      v "wal-segments"
        (Printf.sprintf "%d rotated journal segment(s) left by an interrupted refreeze"
           r.W.segments);
    ]
  else []

(* Sharded recovery repairs shard by shard: only damaged shards are
   re-checkpointed, so a healthy shard's files (manifest included) are
   byte-identical before and after — asserted by the CLI contract tests. *)
let recover_sharded dir dry_run json =
  let module S = Qc_warehouse.Sharded in
  let module W = Qc_warehouse.Warehouse in
  let s = S.open_dir dir in
  let recs = S.recoveries s in
  let damaged = W.recovered_something in
  let any_damaged = Array.exists damaged recs in
  if not dry_run then
    Array.iteri
      (fun k w -> if damaged recs.(k) then W.save w (S.shard_dir dir k))
      (S.shards s);
  if json then
    let open Qc_util.Jsonx in
    print_endline
      (to_string
         (Obj
            [
              ("dir", String dir);
              ("shards", Int (S.n_shards s));
              ("rows", Int (S.total_rows s));
              ("corrupt", Bool any_damaged);
              ("checkpointed", Bool (not dry_run));
              ( "violations",
                List
                  (List.concat
                     (Array.to_list
                        (Array.mapi
                           (fun k r -> recovery_violations ~path:(S.shard_dir dir k) r)
                           recs))) );
              ( "shard_recoveries",
                List
                  (Array.to_list
                     (Array.mapi
                        (fun k (r : W.recovery) ->
                          Obj
                            [
                              ("shard", Int k);
                              ("replayed", Int r.W.replayed);
                              ("stale_skipped", Int r.W.stale_skipped);
                              ("torn_bytes", Int r.W.torn_bytes);
                              ("rebuilt_tree", Bool r.W.rebuilt_tree);
                              ("rolled_forward", Bool r.W.rolled_forward);
                              ("segments", Int r.W.segments);
                              ("repaired", Bool (damaged r && not dry_run));
                            ])
                        recs)) );
            ]))
  else begin
    Printf.printf "%s: %d rows across %d shard(s)\n" dir (S.total_rows s) (S.n_shards s);
    Array.iteri
      (fun k (r : W.recovery) ->
        if damaged r then
          Printf.printf "shard %d: %s%s%s%s%s-> %s\n" k
            (if r.W.torn_bytes > 0 then
               Printf.sprintf "discarded a %d-byte torn journal tail " r.W.torn_bytes
             else "")
            (if r.W.rebuilt_tree then "rebuilt the QC-tree from base.csv " else "")
            (if r.W.rolled_forward then "rolled an interrupted checkpoint forward " else "")
            (if r.W.stale_skipped > 0 then
               Printf.sprintf "skipped %d stale journal record(s) " r.W.stale_skipped
             else "")
            (if r.W.segments > 0 then
               Printf.sprintf "absorbed %d rotated journal segment(s) " r.W.segments
             else "")
            (if dry_run then "needs repair" else "repaired"))
      recs;
    if dry_run then
      print_endline
        (if any_damaged then "dry run: repairs needed (rerun without --dry-run to persist them)"
         else "dry run: all shards are clean")
    else if any_damaged then print_endline "checkpointed the damaged shard(s); others untouched"
    else print_endline "all shards are clean; nothing rewritten"
  end;
  if dry_run && any_damaged then exit 2

let recover () dir dry_run json =
  guard @@ fun () ->
  if Qc_warehouse.Sharded.is_sharded_dir dir then recover_sharded dir dry_run json
  else
  let module W = Qc_warehouse.Warehouse in
  let w = W.open_dir dir in
  let r = W.last_recovery w in
  let corrupt = W.recovered_something r in
  if not dry_run then W.save w dir;
  let s = W.stats_record w in
  if json then
    let open Qc_util.Jsonx in
    print_endline
      (to_string
         (Obj
            [
              ("dir", String dir);
              ("rows", Int s.W.rows);
              ("generation", Int s.W.generation);
              ("replayed", Int r.W.replayed);
              ("stale_skipped", Int r.W.stale_skipped);
              ("torn_bytes", Int r.W.torn_bytes);
              ("rebuilt_tree", Bool r.W.rebuilt_tree);
              ("rolled_forward", Bool r.W.rolled_forward);
              ("segments", Int r.W.segments);
              ("corrupt", Bool corrupt);
              ("checkpointed", Bool (not dry_run));
              ("violations", List (recovery_violations ~path:dir r));
            ]))
  else begin
    Printf.printf "%s: %d rows at generation %d\n" dir s.W.rows s.W.generation;
    if r.W.replayed > 0 || r.W.stale_skipped > 0 then
      Printf.printf "journal: %d record(s) replayed, %d stale skipped\n" r.W.replayed
        r.W.stale_skipped;
    if r.W.torn_bytes > 0 then
      Printf.printf "discarded a %d-byte torn journal tail\n" r.W.torn_bytes;
    if r.W.rebuilt_tree then print_endline "rebuilt the QC-tree from base.csv";
    if r.W.rolled_forward then print_endline "rolled an interrupted checkpoint forward";
    if r.W.segments > 0 then
      Printf.printf "absorbed %d rotated journal segment(s) from an interrupted refreeze\n"
        r.W.segments;
    if dry_run then
      print_endline
        (if corrupt then "dry run: repairs needed (rerun without --dry-run to persist them)"
         else "dry run: directory is clean")
    else Printf.printf "checkpointed: %s is clean at generation %d\n" dir s.W.generation
  end;
  if dry_run && corrupt then exit 2

let dir_arg p = Arg.(required & pos p (some string) None & info [] ~docv:"DIR" ~doc:"Warehouse directory.")

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead of text.")

let recover_cmd =
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Only report what recovery would do; exit 2 when the directory holds \
                recoverable corruption (torn journal tail, damaged tree image, interrupted \
                checkpoint), without writing anything.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a warehouse directory: replay the journal over the last checkpoint, \
             repair what a crash left behind, and checkpoint the result.")
    Term.(const recover $ common $ dir_arg 0 $ dry_run $ json_flag)

(* ---------- wal ---------- *)

(* Replay order (rotated segments by sequence, then the active file) and
   the replay rule (a record is live iff its generation stamp is >= the
   committed checkpoint generation) mirror Warehouse.open_dir exactly —
   what this lists is what recovery would apply. *)
let wal () dir json =
  guard @@ fun () ->
  let module W = Qc_warehouse.Warehouse in
  let gen = W.committed_generation dir in
  let read path =
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic)))
    else Qc_core.Wal.header
  in
  let files =
    List.map
      (fun (seq, name) -> (Some seq, Filename.concat dir name))
      (W.list_segments dir)
    @ [ (None, Filename.concat dir "wal.log") ]
  in
  let scanned =
    List.map
      (fun (seq, path) ->
        let data = read path in
        match Qc_core.Wal.scan data with
        | Error c ->
          Printf.eprintf "qct: %s: %s\n" path (Qc_core.Wal.corruption_to_string c);
          exit 1
        | Ok scan ->
          let torn_bytes =
            match scan.Qc_core.Wal.torn with
            | Some (off, _) -> String.length data - off
            | None -> 0
          in
          (seq, path, String.length data, scan, torn_bytes))
      files
  in
  let op_name = function Qc_core.Wal.Insert -> "insert" | Qc_core.Wal.Delete -> "delete" in
  let is_live (r : Qc_core.Wal.record) = r.generation >= gen in
  let count p l = List.length (List.filter p l) in
  let total f = List.fold_left (fun acc x -> acc + f x) 0 scanned in
  let n_records = total (fun (_, _, _, s, _) -> List.length s.Qc_core.Wal.records) in
  let n_live = total (fun (_, _, _, s, _) -> count is_live s.Qc_core.Wal.records) in
  let n_torn = total (fun (_, _, _, _, tb) -> tb) in
  if json then
    let open Qc_util.Jsonx in
    print_endline
      (to_string
         (Obj
            [
              ("dir", String dir);
              ("generation", Int gen);
              ( "files",
                List
                  (List.map
                     (fun (seq, path, bytes, scan, torn_bytes) ->
                       let records = scan.Qc_core.Wal.records in
                       Obj
                         [
                           ("path", String path);
                           ( "role",
                             String (match seq with Some _ -> "segment" | None -> "active") );
                           ("seq", match seq with Some s -> Int s | None -> Null);
                           ("bytes", Int bytes);
                           ( "generation_span",
                             match Qc_core.Wal.generation_span records with
                             | Some (lo, hi) -> List [ Int lo; Int hi ]
                             | None -> Null );
                           ( "records",
                             List
                               (List.map
                                  (fun (r : Qc_core.Wal.record) ->
                                    Obj
                                      [
                                        ("generation", Int r.generation);
                                        ("op", String (op_name r.op));
                                        ("rows", Int (List.length r.rows));
                                        ("stale", Bool (not (is_live r)));
                                      ])
                                  records) );
                           ("live", Int (count is_live records));
                           ("stale", Int (count (fun r -> not (is_live r)) records));
                           ("torn_bytes", Int torn_bytes);
                         ])
                     scanned) );
              ("records", Int n_records);
              ("live", Int n_live);
              ("stale", Int (n_records - n_live));
              ("torn_bytes", Int n_torn);
            ]))
  else begin
    List.iter
      (fun (seq, path, bytes, scan, torn_bytes) ->
        let records = scan.Qc_core.Wal.records in
        let role =
          match seq with Some s -> Printf.sprintf "segment %d" s | None -> "active"
        in
        let span =
          match Qc_core.Wal.generation_span records with
          | Some (lo, hi) when lo = hi -> Printf.sprintf ", generation %d" lo
          | Some (lo, hi) -> Printf.sprintf ", generations %d..%d" lo hi
          | None -> ""
        in
        Printf.printf "%s [%s]: %d record(s), %d byte(s)%s\n" path role (List.length records)
          bytes span;
        List.iteri
          (fun i (r : Qc_core.Wal.record) ->
            Printf.printf "  #%d %s %d row(s) @gen %d%s\n" i (op_name r.op) (List.length r.rows)
              r.generation
              (if is_live r then "" else "  (stale: superseded by a checkpoint)"))
          records;
        match scan.Qc_core.Wal.torn with
        | Some (_, c) ->
          Printf.printf "  torn tail: %d byte(s) (%s) — discarded on recovery\n" torn_bytes
            (Qc_core.Wal.corruption_to_string c)
        | None -> ())
      scanned;
    Printf.printf "total: %d record(s) (%d live, %d stale) in %d file(s), committed generation %d\n"
      n_records n_live (n_records - n_live) (List.length scanned) gen;
    if n_torn = 0 then print_endline "journal ends cleanly"
  end

let wal_cmd =
  Cmd.v
    (Cmd.info "wal"
       ~doc:"Inspect a warehouse directory's write-ahead journal — rotated segments in replay \
             order, then the active file: every record with its generation, liveness and row \
             count, plus any torn tail.")
    Term.(const wal $ common $ dir_arg 0 $ json_flag)

(* ---------- ingest ---------- *)

let ingest () dir from follow batch_rows batch_secs refreeze_rows refreeze_secs policy queue
    max_rows quarantine no_final_ckpt json trace =
  guard @@ fun () ->
  with_trace trace @@ fun () ->
  let module W = Qc_warehouse.Warehouse in
  let module I = Qc_warehouse.Ingest in
  let source =
    match (from, follow) with
    | Some _, Some _ -> invalid_arg "--from and --follow are mutually exclusive"
    | None, Some path -> I.Tail path
    | Some path, None -> I.Channel (open_in_bin path)
    | None, None -> I.Channel stdin
  in
  let w = W.open_dir dir in
  let config =
    {
      I.default with
      I.batch_rows;
      batch_interval_s = batch_secs;
      refreeze_rows;
      refreeze_interval_s = refreeze_secs;
      policy;
      queue_capacity = queue;
      max_rows;
      quarantine_path = quarantine;
      checkpoint_on_exit = not no_final_ckpt;
    }
  in
  let on_publish (s : I.Snapshot.t) =
    Printf.eprintf "ingest: generation %d now serving\n%!" s.I.Snapshot.generation
  in
  let o = I.run ~config ~on_publish w ~source in
  if json then
    let open Qc_util.Jsonx in
    print_endline
      (to_string
         (Obj
            [
              ("dir", String dir);
              ("lines_read", Int o.I.lines_read);
              ("rows_ingested", Int o.I.rows_ingested);
              ("quarantined", Int o.I.quarantined);
              ("dropped", Int o.I.dropped);
              ("spilled", Int o.I.spilled);
              ("batches", Int o.I.batches);
              ("refreezes", Int o.I.refreezes);
              ("refreeze_failures", Int o.I.refreeze_failures);
              ("final_generation", Int o.I.final_generation);
            ]))
  else begin
    Printf.printf "ingested %d row(s) in %d batch(es) from %d line(s)\n" o.I.rows_ingested
      o.I.batches o.I.lines_read;
    if o.I.quarantined > 0 || o.I.dropped > 0 || o.I.spilled > 0 then
      Printf.printf "quarantined %d, dropped %d, spilled %d\n" o.I.quarantined o.I.dropped
        o.I.spilled;
    Printf.printf "refreezes: %d committed, %d failed; final generation %d\n" o.I.refreezes
      o.I.refreeze_failures o.I.final_generation
  end

let ingest_cmd =
  let from =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"FILE" ~doc:"Read tuples from $(docv) (default: stdin).")
  in
  let follow =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"FILE"
          ~doc:"Tail $(docv) forever, ingesting lines as they are appended (end-of-file means \
                \"no more bytes yet\"); stop with $(b,--max-rows) or a signal.")
  in
  let batch_rows =
    Arg.(value & opt int 256 & info [ "batch-rows" ] ~doc:"Rows per insert batch.")
  in
  let batch_secs =
    Arg.(
      value & opt float 0.25
      & info [ "batch-secs" ] ~docv:"S" ~doc:"Flush a partial batch after $(docv) seconds.")
  in
  let refreeze_rows =
    Arg.(
      value & opt int 5000
      & info [ "refreeze-rows" ]
          ~doc:"Background-refreeze the packed snapshot after this many un-checkpointed rows.")
  in
  let refreeze_secs =
    Arg.(
      value & opt float 10.0
      & info [ "refreeze-secs" ] ~docv:"S"
          ~doc:"Also refreeze after $(docv) seconds with un-checkpointed rows.")
  in
  let policy =
    Arg.(
      value
      & opt
          (enum
             [
               ("block", Qc_warehouse.Ingest.Block);
               ("drop", Qc_warehouse.Ingest.Drop);
               ("spill", Qc_warehouse.Ingest.Spill);
             ])
          Qc_warehouse.Ingest.Block
      & info [ "backpressure" ] ~docv:"POLICY"
          ~doc:"Full-queue policy: $(b,block) the producer (lossless), $(b,drop) new rows \
                (counted), or $(b,spill) them to disk and replay after the stream ends.")
  in
  let queue =
    Arg.(value & opt int 4096 & info [ "queue" ] ~docv:"ROWS" ~doc:"Ingest queue capacity.")
  in
  let max_rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rows" ] ~docv:"N" ~doc:"Stop after ingesting at least $(docv) rows.")
  in
  let quarantine =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"FILE"
          ~doc:"Where malformed lines go, with line numbers and reasons (default \
                $(i,DIR)/.quarantine).")
  in
  let no_final_ckpt =
    Arg.(
      value & flag
      & info [ "no-final-checkpoint" ]
          ~doc:"Skip the foreground checkpoint at the end of the stream (the journal still \
                holds every ingested row).")
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Stream tuples (one $(b,v1,...,vd,measure) line each) into a warehouse \
             directory: journaled batch insertion, poison-line quarantine, bounded-queue \
             backpressure, and rolling background refreezes that readers observe as an \
             atomic generation bump.")
    Term.(
      const ingest $ common $ dir_arg 0 $ from $ follow $ batch_rows $ batch_secs
      $ refreeze_rows $ refreeze_secs $ policy $ queue $ max_rows $ quarantine $ no_final_ckpt
      $ json_flag $ trace_arg)

(* ---------- serve ---------- *)

let serve () dir port host workers max_clients max_pending cache poll_secs =
  guard @@ fun () ->
  let module S = Qc_server.Server in
  let module R = Qc_core.Request in
  let config =
    {
      S.host;
      port;
      workers;
      max_clients;
      max_pending;
      cache_capacity = cache;
      poll_interval_s = poll_secs;
    }
  in
  let srv = S.start ~config dir in
  (* Parsed by the CI smoke test and by humans alike; %! so a piped
     stdout sees the line before the server blocks. *)
  Printf.printf "listening on %s:%d (generation %d)\n%!" host (S.port srv) (S.generation srv);
  let on_signal = Sys.Signal_handle (fun _ -> S.request_stop srv) in
  (try Sys.set_signal Sys.sigint on_signal with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm on_signal with Invalid_argument _ -> ());
  while not (S.stopped srv) do
    try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  let st = S.stop srv in
  Printf.printf "served %d request(s) at generation %d; cache %d hit(s), %d miss(es), %d eviction(s)\n"
    st.R.sv_served st.R.sv_generation st.R.sv_cache_hits st.R.sv_cache_misses
    st.R.sv_cache_evictions

let serve_cmd =
  let port =
    Arg.(
      value & opt int 7050
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on; $(b,0) picks an ephemeral port (reported on the \
                startup line).")
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Bind address.") in
  let workers =
    Arg.(value & opt int 1 & info [ "workers" ] ~doc:"Event-loop worker domains.")
  in
  let max_clients =
    Arg.(
      value & opt int 256
      & info [ "max-clients" ] ~doc:"Connections served concurrently.")
  in
  let max_pending =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ]
          ~doc:"Accepted connections allowed to wait for a serving slot; beyond this a \
                client gets one typed $(b,overloaded) response and is closed.")
  in
  let cache =
    Arg.(
      value & opt int 1024
      & info [ "cache" ] ~docv:"ENTRIES"
          ~doc:"Result-cache capacity (LRU entries keyed by generation; $(b,0) disables \
                caching).")
  in
  let poll =
    Arg.(
      value & opt float 0.25
      & info [ "poll-secs" ] ~docv:"S"
          ~doc:"How often the generation watcher polls the warehouse directory for a \
                committed refreeze.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a warehouse directory over TCP: newline-delimited requests (JSON or the \
             query grammar), one JSON response per line, answered from the frozen packed \
             snapshot of the current generation.  A concurrent $(b,qct ingest) refreeze is \
             picked up atomically with zero downtime.  Stop with SIGINT/SIGTERM.")
    Term.(
      const serve $ common $ dir_arg 0 $ port $ host $ workers $ max_clients $ max_pending
      $ cache $ poll)

(* ---------- loadgen ---------- *)

let loadgen () target queries clients duration requests zipf seed json =
  guard @@ fun () ->
  let module L = Qc_server.Loadgen in
  let host, port =
    match String.rindex_opt target ':' with
    | None -> invalid_arg (Printf.sprintf "bad target %S (expected HOST:PORT)" target)
    | Some i -> (
      let h = String.sub target 0 i in
      let p = String.sub target (i + 1) (String.length target - i - 1) in
      match int_of_string_opt p with
      | Some p when p > 0 && String.length h > 0 -> (h, p)
      | Some _ | None ->
        invalid_arg (Printf.sprintf "bad target %S (expected HOST:PORT)" target))
  in
  let lines =
    read_whole_file queries |> String.split_on_char '\n'
    |> List.filter_map (fun l ->
           let t = String.trim l in
           if String.length t = 0 || t.[0] = '#' then None else Some t)
    |> Array.of_list
  in
  (* A closed loop needs a stopping rule; default to five seconds when
     neither bound is given. *)
  let duration_s =
    match (duration, requests) with None, None -> Some 5.0 | _ -> duration
  in
  match
    L.run ~host ~port ~clients ?duration_s ?total_requests:requests ?zipf_s:zipf ~seed
      ~lines ()
  with
  | Error msg -> failwith msg
  | Ok r ->
    if json then
      let open Qc_util.Jsonx in
      print_endline
        (to_string
           (Obj
              [
                ("target", String target);
                ("clients", Int clients);
                ("sent", Int r.L.lg_sent);
                ("ok", Int r.L.lg_ok);
                ("errors", Int r.L.lg_errors);
                ("overloaded", Int r.L.lg_overloaded);
                ("protocol_errors", Int r.L.lg_protocol_errors);
                ("closed_early", Int r.L.lg_closed_early);
                ("elapsed_s", Float r.L.lg_elapsed_s);
                ("rps", Float r.L.lg_rps);
                ("p50_ms", Float r.L.lg_p50_ms);
                ("p90_ms", Float r.L.lg_p90_ms);
                ("p99_ms", Float r.L.lg_p99_ms);
                ("max_ms", Float r.L.lg_max_ms);
              ]))
    else begin
      Printf.printf "%d client(s) against %s: %d ok, %d error(s), %d overloaded, %d protocol error(s)\n"
        clients target r.L.lg_ok r.L.lg_errors r.L.lg_overloaded r.L.lg_protocol_errors;
      Printf.printf "%.0f req/s over %.2fs; latency ms p50=%.3f p90=%.3f p99=%.3f max=%.3f\n"
        r.L.lg_rps r.L.lg_elapsed_s r.L.lg_p50_ms r.L.lg_p90_ms r.L.lg_p99_ms r.L.lg_max_ms;
      if r.L.lg_closed_early > 0 then
        Printf.printf "warning: server closed %d connection(s) mid-run\n" r.L.lg_closed_early
    end

let loadgen_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HOST:PORT" ~doc:"A running $(b,qct serve) endpoint.")
  in
  let queries =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"QUERIES"
          ~doc:"Request lines to draw from (query grammar or JSON, one per line; blank \
                lines and $(b,#) comments skipped).")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let duration =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"S"
          ~doc:"Stop after $(docv) seconds (default 5 when $(b,--requests) is not given).")
  in
  let requests =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N" ~doc:"Stop after $(docv) completed responses.")
  in
  let zipf =
    Arg.(
      value
      & opt (some float) None
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Draw request lines Zipf-skewed with exponent $(docv) (line 1 hottest) \
                instead of round-robin — the shape that exercises the result cache.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Closed-loop load generator for $(b,qct serve): N concurrent connections from \
             one process, exact latency percentiles, typed error/overload accounting.")
    Term.(
      const loadgen $ common $ target $ queries $ clients $ duration $ requests $ zipf
      $ seed_arg $ json_flag)

(* ---------- selfcheck ---------- *)

let selfcheck () tree_path base_csv =
  guard @@ fun () ->
  let tree = Qc_core.Serial.load tree_path in
  let base_raw = Qc_data.Csv.load base_csv in
  (* re-encode against the tree's schema so codes coincide *)
  let schema = Qc_core.Qc_tree.schema tree in
  let raw_schema = Table.schema base_raw in
  let base = Table.create schema in
  Table.iter
    (fun cell m ->
      let values =
        List.init (Table.n_dims base_raw) (fun i -> Schema.decode_value raw_schema i cell.(i))
      in
      Table.add_row base values m)
    base_raw;
  match Qc_core.Qc_tree.validate tree with
  | Error e ->
    Printf.printf "INVALID tree structure: %s\n" e;
    exit 1
  | Ok () ->
    let rebuilt = Qc_core.Qc_tree.of_table base in
    let ok = ref true in
    Qc_core.Qc_tree.iter_classes
      (fun _ ub agg ->
        match Qc_core.Query.point_result tree ub with
        | Ok a when Agg.approx_equal a agg -> ()
        | Ok _ | Error _ ->
          ok := false;
          Printf.printf "MISMATCH at %s\n" (Cell.to_string schema ub))
      rebuilt;
    if Qc_core.Qc_tree.n_classes tree <> Qc_core.Qc_tree.n_classes rebuilt then begin
      ok := false;
      Printf.printf "class count differs: tree %d vs rebuild %d\n"
        (Qc_core.Qc_tree.n_classes tree) (Qc_core.Qc_tree.n_classes rebuilt)
    end;
    if !ok then print_endline "OK: tree is consistent with the base table"
    else exit 1

let selfcheck_cmd =
  Cmd.v
    (Cmd.info "selfcheck" ~doc:"Verify that a saved tree is consistent with its base table.")
    Term.(const selfcheck $ common $ tree_arg 0 "Saved tree file." $ csv_arg 1 "Base table CSV.")

(* ---------- classes ---------- *)

let classes () csv limit =
  guard @@ fun () ->
  let table = Qc_data.Csv.load csv in
  let schema = Table.schema table in
  let quotient = Qc_core.Quotient.of_table table in
  Printf.printf "%d classes\n" (Qc_core.Quotient.n_classes quotient);
  Array.iteri
    (fun i cls ->
      if i < limit then Format.printf "  %a@." (Qc_core.Quotient.pp_class schema) cls)
    (Qc_core.Quotient.classes quotient)

let classes_cmd =
  let limit = Arg.(value & opt int 50 & info [ "limit" ] ~doc:"Classes to print.") in
  Cmd.v
    (Cmd.info "classes" ~doc:"Dump quotient-cube classes of a CSV base table.")
    Term.(const classes $ common $ csv_arg 0 "Base table CSV." $ limit)

let () =
  let info = Cmd.info "qct" ~version:"1.0.0" ~doc:"QC-tree semantic OLAP warehouse tool." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            build_cmd;
            stats_cmd;
            query_cmd;
            explain_cmd;
            iceberg_cmd;
            batch_cmd;
            trace_cmd;
            insert_cmd;
            delete_cmd;
            rollup_cmd;
            whatif_cmd;
            check_cmd;
            recover_cmd;
            wal_cmd;
            ingest_cmd;
            serve_cmd;
            loadgen_cmd;
            selfcheck_cmd;
            classes_cmd;
          ]))
