(** A durable, crash-safe QC-tree warehouse.

    Couples the base table, its QC-tree and their on-disk representation
    into one handle, so applications (and the [qct] CLI) do not have to keep
    the pieces consistent by hand.  A warehouse lives in a directory:

    {v
    <dir>/base.csv   the fact table (checkpoint image)
    <dir>/tree.qct   the QC-tree summary (checkpoint image)
    <dir>/manifest   generation number + CRC-32 of both images
    <dir>/wal.log    write-ahead journal of post-checkpoint mutations
    v}

    All mutating operations maintain the tree incrementally (never by
    recomputation) and keep the invariant that [tree w] is exactly the
    QC-tree of [table w].

    {2 Durability contract}

    Once a warehouse is attached to a directory (by {!open_dir} or a
    successful {!save}), every {!insert}/{!delete}/{!update} appends one
    {!Qc_core.Wal} frame per batch to [wal.log] and fsyncs it {e before}
    the in-memory structures are touched — the fsync is the commit point,
    so a crash at any instant loses at most the single batch whose frame
    never became durable, and never resurfaces a batch that was not
    acknowledged.

    {!save} is a checkpoint: both images and the manifest are written to
    temporaries, fsynced and renamed into place ([manifest] last — its
    rename is the atomic commit of the whole checkpoint), then the journal
    is truncated.  Journal records carry the generation number of the
    checkpoint they extend, so a crash between the manifest commit and the
    journal truncation cannot double-apply old records.

    {!open_dir} recovers automatically: it verifies both images against
    the manifest, rolls an interrupted checkpoint forward when its
    temporaries committed, rebuilds the tree from [base.csv] when
    [tree.qct] is missing or damaged, replays the journal's committed
    records and silently discards a torn tail.  What recovery did is
    reported in {!last_recovery} and on the [qc.warehouse] log source.
    Structural damage no crash can explain (a base table that matches no
    manifest, a journal with a bad header) raises the typed {!Error}.

    Every durability site is a named {!Qc_util.Failpoint}, so the crash
    suite can kill the process at each one and assert recovery.

    After a build the summary is {e frozen} into a {!Qc_core.Packed}
    structure that serves every point and range query; maintenance
    operations transparently thaw back to the mutable tree, apply the
    incremental algorithms, and refreeze.  [tree.qct] is written in the
    packed binary format; {!open_dir} also accepts the legacy text
    format and directories without a manifest (generation 0, no CRC
    validation). *)

open Qc_cube
open Qc_core

type t

(** Why a directory cannot be opened (or a durable write failed), as a
    typed value rather than a stringly [Sys_error]/[Failure].  Carried by
    {!Error}. *)
type error =
  | Missing_file of string  (** the directory or a required file is absent *)
  | Corrupt_base of { path : string; reason : string }
      (** [base.csv] is unreadable, or matches neither the manifest nor an
          in-flight checkpoint *)
  | Corrupt_tree of { path : string; reason : string }
      (** [tree.qct] is damaged {e and} the base it would be rebuilt from is
          unavailable (damage alone triggers a silent rebuild instead) *)
  | Corrupt_wal of { path : string; reason : string }
      (** the journal has damage no crash can produce (bad header, unknown
          tag, malformed CRC-valid payload) or replay failed *)
  | Corrupt_manifest of { path : string; reason : string }
  | Version_mismatch of { path : string; got : int }
      (** the manifest declares an unsupported format version *)
  | Io of string  (** an operating-system write/fsync failure *)

exception Error of error

val error_to_string : error -> string

val pp_error : Format.formatter -> error -> unit

(** What {!open_dir} had to do beyond a clean load.  Every field is
    reported independently, so a multi-action recovery (e.g. a torn tail
    {e and} an interrupted checkpoint in one open) surfaces all of its
    actions, not just the first. *)
type recovery = {
  replayed : int;  (** journal records applied over the checkpoint *)
  stale_skipped : int;
      (** records from a superseded generation, skipped — the residue of a
          crash between a checkpoint's manifest commit and its journal
          truncation; the next {!save} cleans them up *)
  torn_bytes : int;  (** bytes of torn journal tail discarded (all files) *)
  rebuilt_tree : bool;  (** [tree.qct] unusable; rebuilt from [base.csv] *)
  rolled_forward : bool;
      (** an interrupted checkpoint's temporaries were adopted *)
  segments : int;
      (** rotated journal segments found (an interrupted rolling refreeze
          left them; replayed or skipped by stamp, deleted at the next
          checkpoint) *)
}

val recovered_something : recovery -> bool
(** Whether the open found {e any} crash residue a checkpoint would clean
    up: a rebuilt tree, a roll-forward, torn bytes, stale records, or
    leftover segments.  The single source of truth for "does this
    directory need repair" — [qct recover] and {!stat.recovered} both
    report it. *)

val create : Table.t -> t
(** Build a fresh in-memory warehouse over a base table (constructs the
    tree).  Not attached to any directory — mutations are not journaled
    until the first {!save}. *)

val create_frozen : Table.t -> Packed.t -> t
(** {!create} with an externally built frozen summary, trusted to be the
    QC-tree of the table — the sharded builder ({!Sharded}) constructs
    per-shard images in parallel Domains and wraps each in a warehouse
    handle without rebuilding.  The mutable tree is thawed on demand, as
    after an {!open_dir} of a packed image. *)

val align_schema : t -> Schema.t -> bool
(** [align_schema w target] makes [w]'s dictionary code assignment agree
    with [target]'s: when they already agree (same values in the same
    order per dimension — the invariant both serial formats preserve)
    this is a cheap no-op returning [false]; otherwise the base table is
    re-encoded against [target] and the summary rebuilt, returning [true]
    and marking the recovery as a rebuild.  The divergent case arises
    when a shard's tree image was lost and rebuilt from [base.csv], whose
    value-appearance order need not match the saved dictionaries; the
    sharded composite requires one code space across all shards.
    @raise Error ([Corrupt_base]) when the dimension counts disagree —
    damage re-encoding cannot explain. *)

val open_dir : string -> t
(** Load (and, if needed, recover) a warehouse saved by {!save}.
    @raise Error when the directory does not hold a recoverable
    warehouse. *)

val save : t -> string -> unit
(** Checkpoint to a directory (created if missing): atomically replace both
    images and the manifest, then truncate the journal, delete any rotated
    journal segments, and bump the generation.  The warehouse is attached
    to [dir] afterwards.  On failure raises {!Error} ([Io]) and leaves
    both the directory and the in-memory state consistent: the directory
    holds either the old or the new checkpoint, and subsequent mutations
    journal against whichever generation the directory actually committed.
    @raise Invalid_argument while {!sealed}. *)

(** {2 Rolling refreeze}

    The streaming-ingestion checkpoint protocol: instead of a stop-the-world
    {!save}, the writer {!seal}s the warehouse (rotating the active journal
    into a [wal-<seq>.log] segment and fixing the target generation), hands
    the returned task to a background domain that runs {!run_refreeze}
    (freeze, serialize, stage, atomically commit — the same staged-rename
    protocol and failpoint sites as {!save}), and finally calls
    {!complete_refreeze} on the writer to adopt the outcome.  While sealed,
    {!insert} keeps journaling durably (stamped with the target generation)
    but buffers the in-memory application; queries keep answering from the
    pre-seal state.  A failed attempt degrades cleanly: the warehouse keeps
    extending the last good generation, the burned target stamp is never
    reused (committed generations may skip numbers), and recovery replays
    exactly the committed prefix whether or not the attempt landed. *)

type refreeze_task
(** A sealed snapshot: everything {!run_refreeze} needs, detached from the
    warehouse handle so it can cross domains. *)

val seal : t -> refreeze_task
(** Rotate the journal and seal the warehouse for a background refreeze.
    @raise Invalid_argument if already sealed or not attached.
    @raise Error ([Io]) if the rotation fails (the warehouse stays
    unsealed). *)

val sealed : t -> bool

val refreeze_target : refreeze_task -> int
(** The generation the task will commit. *)

val run_refreeze : refreeze_task -> (Packed.t, error) result
(** The background half: freeze the sealed tree, serialize both images,
    stage and commit them under the target generation, then delete the
    rotated segments.  Reads only the task (safe on another domain while
    the sealed writer keeps journaling); never raises on I/O failure —
    the error is returned for {!complete_refreeze} to degrade on. *)

type refreeze_outcome = {
  rf_committed : bool;
  rf_generation : int;  (** the committed generation the warehouse now extends *)
  rf_packed : Packed.t option;
      (** on a committed refreeze, the frozen image of the sealed state —
          what an MVCC server publishes for the new generation *)
}

val complete_refreeze : t -> refreeze_task -> (Packed.t, error) result -> refreeze_outcome
(** Unseal on the writer: determine whether the attempt actually committed
    (an [Error] may still have crossed the commit point — the directory is
    re-resolved), adopt the new generation if so, then apply the records
    buffered while sealed through the same materialization path crash
    replay uses.
    @raise Invalid_argument if [t] is not sealed with this task. *)

val list_segments : string -> (int * string) list
(** Rotated journal segments in [dir] as [(sequence, filename)], ordered
    by sequence — present only between a seal and the next committed
    checkpoint.  [qct wal] and the tests use this to inspect rotation
    state. *)

val attached_dir : t -> string option
(** The directory mutations are journaled to, once {!open_dir}/{!save} has
    attached one. *)

val checkpoint_generation : t -> int
(** The generation of the last committed checkpoint this warehouse
    extends (0 when detached or never saved).  What an MVCC server
    reports as the reader-visible generation. *)

val committed_generation : string -> int
(** The checkpoint generation {!open_dir} would resolve [dir] to (0 for a
    manifest-less legacy directory), without loading images or replaying
    the journal — the cheap half of recovery, used by [qct wal] to tell
    live journal records from stale ones.
    @raise Error as {!open_dir} does for an unresolvable directory. *)

val last_recovery : t -> recovery
(** What {!open_dir} did to produce this handle (all-zero for {!create}
    and for a clean open). *)

val table : t -> Table.t

val tree : t -> Qc_tree.t
(** The mutable working form, thawed from the frozen structure on first
    use.  Callers must not mutate it directly — use {!insert}/{!delete}. *)

val packed : t -> Packed.t
(** The frozen query structure; refrozen automatically after maintenance. *)

val schema : t -> Schema.t

val insert : t -> Table.t -> Maintenance.insert_stats
(** Batch-insert new facts (Algorithm 2).  Journaled before application
    when attached.  While {!sealed}, the batch is journaled durably but
    its in-memory application is deferred to {!complete_refreeze}; the
    returned stats are then all zero and queries keep answering from the
    pre-seal state.
    @raise Error ([Io]) if the journal append fails — the batch is then
    neither applied nor durable. *)

val insert_rows : t -> (string list * float) list -> Maintenance.insert_stats
(** {!insert} from decoded rows (dimension values + measure).  This is the
    ingest entry point: while {!sealed} it journals and buffers the rows
    {e without touching the live schema's dictionaries} (which the
    background refreeze domain is concurrently reading), so it is the only
    mutation that is safe to issue from the serving thread during a
    refreeze.  Unsealed, it encodes the rows against the live schema and
    behaves exactly like {!insert}.
    @raise Invalid_argument if a row's arity does not match the schema. *)

val delete : t -> Table.t -> Maintenance.delete_stats
(** Batch-delete existing facts.  Journaled before application when
    attached.
    @raise Invalid_argument if a row is not present (checked {e before}
    journaling, so an invalid batch is never logged), or while {!sealed}
    (a deferred delete could become invalid against the moving base by
    apply time; streaming ingestion is insert-only).
    @raise Error ([Io]) if the journal append fails. *)

val update : t -> old_rows:Table.t -> new_rows:Table.t ->
  Maintenance.delete_stats * Maintenance.insert_stats
(** Modification = deletion + insertion (two journal records). *)

val query : t -> Cell.t -> Agg.t option

val query_value : t -> Agg.func -> Cell.t -> float option

val range : t -> Query.range -> (Cell.t * Agg.t) list

val iceberg : t -> Agg.func -> threshold:float -> (Cell.t * Agg.t) list
(** Rebuilds the measure index when the tree changed since the last iceberg
    query with the same function. *)

val run_batch :
  ?jobs:int -> ?node_accesses:bool -> t -> Engine.query array -> Engine.batch
(** Serve a whole query batch from the frozen packed snapshot via
    {!Engine.run_batch} (packed backend, parallel across domains).  The
    snapshot is immutable, so mutations keep journaling to the WAL and
    refreezing concurrently; a batch answers against the snapshot current
    when it started. *)

type stat = {
  rows : int;  (** base-table tuples *)
  dims : int;
  classes : int;  (** quotient-cube classes stored in the tree *)
  nodes : int;  (** QC-tree nodes (root included) *)
  links : int;  (** drill-down links *)
  bytes : int;  (** size under the shared byte-cost model *)
  packed_bytes : int;  (** resident size of the frozen column arrays *)
  generation : int;  (** checkpoint generation of the attached directory *)
  wal_records : int;  (** live journal records since the last checkpoint *)
  replayed : int;  (** journal records replayed by {!open_dir} *)
  recovered : bool;
      (** {!open_dir} repaired something: rebuilt tree, rolled a checkpoint
          forward, or discarded a torn journal tail *)
}

val stats_record : t -> stat
(** The warehouse's size and durability figures as a structured record. *)

val stats : t -> string
(** One-line summary: rows, classes, nodes, links, bytes, generation and
    journal state (string form of {!stats_record}). *)

val stat_to_json : stat -> Qc_util.Jsonx.t

val stats_json : t -> string
(** {!stats_record} rendered as a compact JSON object. *)

exception Check_failed of Check.report
(** Raised by a mutating operation when the post-maintenance self-check
    (enabled with {!set_self_check}) finds violations. *)

val set_self_check : t -> bool -> unit
(** Enable or disable the post-maintenance audit hook (off by default).
    When enabled, every {!insert}, {!delete} and {!update} is followed by a
    full deep {!Check.run} against the new base table; violations raise
    {!Check_failed} so a maintenance bug is caught at the operation that
    introduced it, not at some later query.  Costs a DFS over the base table
    per mutation — meant for tests, debugging and low-write deployments. *)

val check : t -> Check.report
(** One deep audit of the current state ({!Check.run} with the warehouse's
    base table as oracle), without mutating anything. *)

val self_check : t -> (unit, string) result
(** Verify the invariant: the tree validates and its class set (upper
    bounds with aggregates) coincides with a tree rebuilt from the table.
    Intended for tests and for troubleshooting deployments; costs one
    rebuild. *)
