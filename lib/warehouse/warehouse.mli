(** A durable QC-tree warehouse.

    Couples the base table, its QC-tree and their on-disk representation
    into one handle, so applications (and the [qct] CLI) do not have to keep
    the pieces consistent by hand.  A warehouse lives in a directory:

    {v
    <dir>/base.csv   the fact table
    <dir>/tree.qct   the QC-tree summary
    v}

    All mutating operations maintain the tree incrementally (never by
    recomputation) and keep the invariant that [tree w] is exactly the
    QC-tree of [table w].  {!save} writes both files atomically
    (write-to-temporary, then rename), so a crash mid-save leaves the
    previous state intact.

    After a build the summary is {e frozen} into a {!Qc_core.Packed}
    structure that serves every point and range query; maintenance
    operations transparently thaw back to the mutable tree, apply the
    incremental algorithms, and refreeze.  [tree.qct] is written in the
    packed binary format; {!open_dir} also accepts the legacy text
    format. *)

open Qc_cube
open Qc_core

type t

val create : Table.t -> t
(** Build a fresh in-memory warehouse over a base table (constructs the
    tree). *)

val open_dir : string -> t
(** Load a warehouse saved by {!save}.
    @raise Sys_error or [Failure] when the directory does not hold a
    warehouse. *)

val save : t -> string -> unit
(** Persist to a directory (created if missing), atomically per file. *)

val table : t -> Table.t

val tree : t -> Qc_tree.t
(** The mutable working form, thawed from the frozen structure on first
    use.  Callers must not mutate it directly — use {!insert}/{!delete}. *)

val packed : t -> Packed.t
(** The frozen query structure; refrozen automatically after maintenance. *)

val schema : t -> Schema.t

val insert : t -> Table.t -> Maintenance.insert_stats
(** Batch-insert new facts (Algorithm 2). *)

val delete : t -> Table.t -> Maintenance.delete_stats
(** Batch-delete existing facts.
    @raise Invalid_argument if a row is not present. *)

val update : t -> old_rows:Table.t -> new_rows:Table.t ->
  Maintenance.delete_stats * Maintenance.insert_stats
(** Modification = deletion + insertion. *)

val query : t -> Cell.t -> Agg.t option

val query_value : t -> Agg.func -> Cell.t -> float option

val range : t -> Query.range -> (Cell.t * Agg.t) list

val iceberg : t -> Agg.func -> threshold:float -> (Cell.t * Agg.t) list
(** Rebuilds the measure index when the tree changed since the last iceberg
    query with the same function. *)

type stat = {
  rows : int;  (** base-table tuples *)
  dims : int;
  classes : int;  (** quotient-cube classes stored in the tree *)
  nodes : int;  (** QC-tree nodes (root included) *)
  links : int;  (** drill-down links *)
  bytes : int;  (** size under the shared byte-cost model *)
  packed_bytes : int;  (** resident size of the frozen column arrays *)
}

val stats_record : t -> stat
(** The warehouse's size figures as a structured record. *)

val stats : t -> string
(** One-line summary: rows, classes, nodes, links, bytes (string form of
    {!stats_record}). *)

val stat_to_json : stat -> Qc_util.Jsonx.t

val stats_json : t -> string
(** {!stats_record} rendered as a compact JSON object
    ([{"rows":…,"dims":…,"classes":…,"nodes":…,"links":…,"bytes":…,
    "packed_bytes":…}]). *)

exception Check_failed of Check.report
(** Raised by a mutating operation when the post-maintenance self-check
    (enabled with {!set_self_check}) finds violations. *)

val set_self_check : t -> bool -> unit
(** Enable or disable the post-maintenance audit hook (off by default).
    When enabled, every {!insert}, {!delete} and {!update} is followed by a
    full deep {!Check.run} against the new base table; violations raise
    {!Check_failed} so a maintenance bug is caught at the operation that
    introduced it, not at some later query.  Costs a DFS over the base table
    per mutation — meant for tests, debugging and low-write deployments. *)

val check : t -> Check.report
(** One deep audit of the current state ({!Check.run} with the warehouse's
    base table as oracle), without mutating anything. *)

val self_check : t -> (unit, string) result
(** Verify the invariant: the tree validates and its class set (upper
    bounds with aggregates) coincides with a tree rebuilt from the table.
    Intended for tests and for troubleshooting deployments; costs one
    rebuild. *)
