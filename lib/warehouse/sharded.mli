(** A sharded, durable warehouse: N {!Warehouse} directories under one
    roof, queried through the {!Qc_core.Shard} scatter-gather backend.

    On disk a sharded warehouse is a directory of directories:

    {v
    <dir>/shards.manifest   shard count + partitioner (self-checksummed)
    <dir>/shard-0/          a complete Warehouse directory
    ...
    <dir>/shard-<N-1>/
    v}

    Each [shard-K/] is an ordinary PR4 warehouse — base image, tree
    image, manifest, journal — with the full per-shard durability
    contract: every save.* / wal.* failpoint fires once per shard, and
    {!open_dir} runs each shard through {!Warehouse.open_dir}'s
    recovery.  The top-level [shards.manifest] is written {e last}
    (through {!Qc_util.Durable.write_file} with failpoint prefix
    [shards.manifest]), so a directory is recognised as sharded only
    once every shard directory has committed — a crash anywhere in a
    first save leaves either no sharded warehouse or a complete one.
    Re-saves may leave shards at mixed checkpoint generations after a
    crash; that is benign because the composite is read-only (shard
    content is identical across its checkpoints) and every shard is
    individually consistent.

    {2 One code space}

    All shards must agree on dictionary code assignment, or merged
    cells would be meaningless.  Both serial formats persist full
    dictionaries, so a clean open reproduces the build-time codes in
    every shard; the exception is a shard whose tree image was lost and
    rebuilt from [base.csv] (value-appearance order).  {!open_dir}
    therefore picks a reference schema from the first cleanly-loaded
    shard and runs {!Warehouse.align_schema} over the rest, re-encoding
    any divergent shard. *)

open Qc_cube
open Qc_core

type t

val manifest_file : string -> string
(** [<dir>/shards.manifest]. *)

val shard_dir : string -> int -> string
(** [shard_dir dir k] is [<dir>/shard-<k>]. *)

val is_sharded_dir : string -> bool
(** A committed [shards.manifest] exists — how the CLI routes a
    directory to this module instead of {!Warehouse}. *)

val create :
  ?jobs:int -> partitioner:Shard.partitioner -> shards:int -> Table.t -> t
(** Partition the table ({!Shard.split}) and build one frozen QC-tree
    per shard in parallel Domains ({!Shard.build_packed}), wrapping
    each in an unattached {!Warehouse} handle.
    @raise Invalid_argument as {!Shard.split} does. *)

val save : t -> string -> unit
(** Checkpoint every shard (each internally atomic, in shard order)
    into [<dir>/shard-K/], then commit the whole composite by writing
    [shards.manifest] last.
    @raise Warehouse.Error ([Io]) as {!Warehouse.save} does. *)

val open_dir : string -> t
(** Open (and, per shard, recover) a sharded warehouse.  Shards are
    opened in order through {!Warehouse.open_dir}; divergent
    dictionaries are re-aligned to the reference schema.
    @raise Warehouse.Error — [Missing_file] when [shards.manifest] or a
    shard directory is absent, [Corrupt_manifest] when the manifest
    does not parse, names an unknown partitioner, or disagrees with the
    shards' dimension count; per-shard errors as {!Warehouse.open_dir}. *)

val attached_dir : t -> string option

val n_shards : t -> int

val partitioner : t -> Shard.partitioner

val schema : t -> Schema.t
(** The composite's (reference) schema — parse queries against this. *)

val shards : t -> Warehouse.t array
(** The per-shard handles, for stats and per-shard audits.  Callers
    must not mutate through them: the composite is read-only. *)

val recoveries : t -> Warehouse.recovery array
(** What {!open_dir} had to do, shard by shard ([qct recover]'s
    per-shard report). *)

val total_rows : t -> int

val backend : t -> Shard.t
(** The frozen scatter-gather composite over the shards' packed images
    (built once and cached) — pass to {!Shard.Backend} /
    {!Engine.run_batch}. *)

val query : t -> Cell.t -> Agg.t option
(** Scatter-gather point query ([None] on a cross-shard empty cover). *)

val range : t -> Query.range -> (Cell.t * Agg.t) list

val iceberg : t -> Agg.func -> threshold:float -> (Cell.t * Agg.t) list
(** Exact sharded iceberg (meet-closure candidate set, post-merge
    threshold).
    @raise Invalid_argument on a backend error other than empty results
    — cannot happen for the packed composite. *)

val run_batch :
  ?jobs:int -> ?node_accesses:bool -> t -> Engine.query array -> Engine.batch
(** {!Engine.run_batch} over {!Shard.Backend}. *)

val misplaced : t -> (int * Cell.t) list
(** Placement audit: base tuples living in a shard other than the one
    {!Shard.shard_of_tuple} assigns them — [(shard index, tuple)] in
    shard order.  Empty iff every row is routed correctly; [qct check]
    reports any entry as a violation. *)

val describe : t -> string
(** One line: shard count, partitioner, rows, classes, nodes. *)
