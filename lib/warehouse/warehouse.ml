open Qc_cube

(* The warehouse keeps the summary in two forms: the frozen [Packed.t],
   which answers all point/range queries, and the mutable [Qc_tree.t] the
   incremental maintenance algorithms require.  After a build (or an open
   from the packed on-disk format) only the frozen form is guaranteed
   present; the mutable form is thawed transparently on the first
   maintenance operation (or iceberg/self-check, which walk tree nodes) and
   kept warm afterwards.  Every mutation refreezes, so [packed] is never
   stale when present. *)
type t = {
  mutable base : Table.t;
  mutable tree_ : Qc_core.Qc_tree.t option;  (** thawed working form *)
  mutable packed_ : Qc_core.Packed.t option;  (** frozen query form *)
  mutable index : (Agg.func * Qc_core.Query.measure_index) option;  (** iceberg cache *)
  mutable generation : int;  (** bumped on every mutation *)
  mutable index_generation : int;
  mutable self_check_enabled : bool;
}

exception Check_failed of Qc_core.Check.report

let log = Logs.Src.create "qc.warehouse" ~doc:"QC-tree warehouse operations"

module Log = (val Logs.src_log log)

let tree t =
  match t.tree_ with
  | Some tr -> tr
  | None ->
    let tr =
      match t.packed_ with
      | Some p ->
        Log.debug (fun m -> m "thawing packed tree for node-level access");
        Qc_core.Packed.to_tree p
      | None -> assert false
    in
    t.tree_ <- Some tr;
    tr

let packed t =
  match t.packed_ with
  | Some p -> p
  | None ->
    let p = Qc_core.Packed.of_tree (tree t) in
    t.packed_ <- Some p;
    p

let create base =
  let tree = Qc_core.Qc_tree.of_table base in
  Log.info (fun m ->
      m "built warehouse: %d rows, %d classes" (Table.n_rows base)
        (Qc_core.Qc_tree.n_classes tree));
  {
    base;
    tree_ = Some tree;
    packed_ = Some (Qc_core.Packed.of_tree tree);
    index = None;
    generation = 0;
    index_generation = -1;
    self_check_enabled = false;
  }

let table t = t.base

let schema t = Table.schema t.base

let touch t = t.generation <- t.generation + 1

let set_self_check t on = t.self_check_enabled <- on

let check t = Qc_core.Check.run ~deep:true ~base:t.base (tree t)

(* Post-maintenance hook: a full deep audit after every mutation.  Costs a
   DFS over the (new) base table plus a freeze and round-trip, so it is off
   by default and opted into per warehouse ([qct --self-check], tests). *)
let post_maintenance_check t op =
  if t.self_check_enabled then begin
    let report = check t in
    if not (Qc_core.Check.ok report) then begin
      Log.err (fun m ->
          m "self-check after %s found %d violation(s)" op
            (List.length report.Qc_core.Check.violations));
      raise (Check_failed report)
    end;
    Log.debug (fun m -> m "self-check after %s passed" op)
  end

let refreeze t = t.packed_ <- Some (Qc_core.Packed.of_tree (tree t))

let insert t delta =
  let tr = tree t in
  t.packed_ <- None;
  let stats = Qc_core.Maintenance.insert_batch tr ~base:t.base ~delta in
  refreeze t;
  touch t;
  Log.info (fun m ->
      m "inserted %d rows (%d updated, %d carved, %d fresh classes)" (Table.n_rows delta)
        stats.updated stats.carved stats.fresh);
  post_maintenance_check t "insert";
  stats

let delete t delta =
  let tr = tree t in
  t.packed_ <- None;
  let new_base, stats = Qc_core.Maintenance.delete_batch tr ~base:t.base ~delta in
  t.base <- new_base;
  refreeze t;
  touch t;
  Log.info (fun m ->
      m "deleted %d rows (%d classes removed, %d merged)" (Table.n_rows delta) stats.removed
        stats.merged);
  post_maintenance_check t "delete";
  stats

let update t ~old_rows ~new_rows =
  let dstats = delete t old_rows in
  let istats = insert t new_rows in
  (dstats, istats)

let query t cell = Qc_core.Query.point_packed (packed t) cell

let query_value t func cell = Qc_core.Query.point_value_packed (packed t) func cell

let range t q = Qc_core.Query.range_packed (packed t) q

let iceberg t func ~threshold =
  let index =
    match t.index with
    | Some (f, idx) when f = func && t.index_generation = t.generation -> idx
    | Some _ | None ->
      let idx = Qc_core.Query.make_index (tree t) func in
      t.index <- Some (func, idx);
      t.index_generation <- t.generation;
      idx
  in
  Qc_core.Query.iceberg index ~threshold

type stat = {
  rows : int;
  dims : int;
  classes : int;
  nodes : int;
  links : int;
  bytes : int;
  packed_bytes : int;
}

let stats_record t =
  let p = packed t in
  {
    rows = Table.n_rows t.base;
    dims = Table.n_dims t.base;
    classes = Qc_core.Packed.n_classes p;
    nodes = Qc_core.Packed.n_nodes p;
    links = Qc_core.Packed.n_links p;
    bytes = Qc_core.Packed.bytes p;
    packed_bytes = Qc_core.Packed.resident_bytes p;
  }

let stats t =
  let s = stats_record t in
  Printf.sprintf "%d rows | %d classes | %d nodes | %d links | %d bytes (%d packed)" s.rows
    s.classes s.nodes s.links s.bytes s.packed_bytes

let stat_to_json s =
  Qc_util.Jsonx.Obj
    [
      ("rows", Qc_util.Jsonx.Int s.rows);
      ("dims", Qc_util.Jsonx.Int s.dims);
      ("classes", Qc_util.Jsonx.Int s.classes);
      ("nodes", Qc_util.Jsonx.Int s.nodes);
      ("links", Qc_util.Jsonx.Int s.links);
      ("bytes", Qc_util.Jsonx.Int s.bytes);
      ("packed_bytes", Qc_util.Jsonx.Int s.packed_bytes);
    ]

let stats_json t = Qc_util.Jsonx.to_string (stat_to_json (stats_record t))

let base_file dir = Filename.concat dir "base.csv"

let tree_file dir = Filename.concat dir "tree.qct"

let atomic_write path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
  Sys.rename tmp path

let save t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  atomic_write (base_file dir) (Qc_data.Csv.to_string t.base);
  atomic_write (tree_file dir) (Qc_core.Serial.to_packed_string (packed t));
  Log.info (fun m -> m "saved warehouse to %s" dir)

let open_dir dir =
  (* Load the summary first and re-encode the CSV rows against its schema,
     so warehouse, table and tree share one schema instance (both serial
     formats preserve dictionary codes, so the re-encode assigns identical
     codes).  Accepts both on-disk formats: the packed binary stays frozen,
     a text tree is kept mutable (and frozen lazily on the first query). *)
  let tree_, packed_, schema =
    match Qc_core.Serial.load_any (tree_file dir) with
    | `Packed p -> (None, Some p, Qc_core.Packed.schema p)
    | `Tree tr -> (Some tr, None, Qc_core.Qc_tree.schema tr)
  in
  let raw = Qc_data.Csv.load (base_file dir) in
  let raw_schema = Table.schema raw in
  if Schema.n_dims raw_schema <> Schema.n_dims schema then
    failwith "Warehouse.open_dir: base table and tree disagree on dimensions";
  let base = Table.create schema in
  Table.iter
    (fun cell m ->
      let values =
        List.init (Schema.n_dims raw_schema) (fun i -> Schema.decode_value raw_schema i cell.(i))
      in
      Table.add_row base values m)
    raw;
  Log.info (fun m -> m "opened warehouse %s: %d rows" dir (Table.n_rows base));
  {
    base;
    tree_;
    packed_;
    index = None;
    generation = 0;
    index_generation = -1;
    self_check_enabled = false;
  }

let self_check t =
  let tr = tree t in
  match Qc_core.Qc_tree.validate tr with
  | Error e -> Error e
  | Ok () ->
    (* The class set (upper bounds and aggregates) must coincide with a
       fresh rebuild; links are checked structurally by [validate] and
       behaviourally by the test suite (after deletions a few redundant but
       harmless links may remain, so canonical equality is not required
       here). *)
    let rebuilt = Qc_core.Qc_tree.of_table t.base in
    let errors = ref [] in
    Qc_core.Qc_tree.iter_classes
      (fun _ ub agg ->
        match Qc_core.Qc_tree.find_path tr ub with
        | Some node -> (
          match node.Qc_core.Qc_tree.agg with
          | Some a when Agg.approx_equal a agg -> ()
          | Some _ -> errors := "aggregate mismatch" :: !errors
          | None -> errors := "missing class" :: !errors)
        | None -> errors := "missing class path" :: !errors)
      rebuilt;
    if Qc_core.Qc_tree.n_classes tr <> Qc_core.Qc_tree.n_classes rebuilt then
      errors := "class count differs from rebuild" :: !errors;
    (* the frozen and mutable forms must agree whenever both exist *)
    (match (!errors, t.packed_) with
    | [], Some p
      when Qc_core.Qc_tree.canonical_string (Qc_core.Packed.to_tree p)
           <> Qc_core.Qc_tree.canonical_string tr ->
      errors := [ "packed form disagrees with the mutable tree" ]
    | _ -> ());
    (match !errors with [] -> Ok () | e :: _ -> Error e)
