open Qc_cube
module Trace = Qc_util.Trace

(* ------------------------------------------------------------------ *)
(* Typed errors                                                       *)
(* ------------------------------------------------------------------ *)

type error =
  | Missing_file of string
  | Corrupt_base of { path : string; reason : string }
  | Corrupt_tree of { path : string; reason : string }
  | Corrupt_wal of { path : string; reason : string }
  | Corrupt_manifest of { path : string; reason : string }
  | Version_mismatch of { path : string; got : int }
  | Io of string

exception Error of error

let error_to_string = function
  | Missing_file path -> Printf.sprintf "%s: no such warehouse file or directory" path
  | Corrupt_base { path; reason } -> Printf.sprintf "%s: corrupt base table (%s)" path reason
  | Corrupt_tree { path; reason } -> Printf.sprintf "%s: corrupt tree image (%s)" path reason
  | Corrupt_wal { path; reason } -> Printf.sprintf "%s: corrupt journal (%s)" path reason
  | Corrupt_manifest { path; reason } -> Printf.sprintf "%s: corrupt manifest (%s)" path reason
  | Version_mismatch { path; got } ->
    Printf.sprintf "%s: unsupported manifest version %d" path got
  | Io msg -> Printf.sprintf "I/O failure: %s" msg

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Warehouse.Error (%s)" (error_to_string e))
    | _ -> None)

let io_error_of_exn = function
  | Qc_util.Failpoint.Injected label ->
    Some (Io (Printf.sprintf "injected failure at failpoint %s" label))
  | Sys_error msg -> Some (Io msg)
  | Unix.Unix_error (err, fn, arg) ->
    Some (Io (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err)))
  | _ -> None

let wrap_io f =
  try f ()
  with e -> (match io_error_of_exn e with Some err -> raise (Error err) | None -> raise e)

(* ------------------------------------------------------------------ *)
(* Failpoint sites                                                    *)
(* ------------------------------------------------------------------ *)

(* Every durability-relevant instruction in the warehouse has a stable
   label here, so the crash suite can enumerate and kill each one.  The
   save.* prefixes expand through Qc_util.Durable into .tmp-write /
   .fsync / .rename sites; wal expands into .append / .fsync. *)
let () =
  List.iter Qc_util.Failpoint.register
    [
      "wal.append";
      "wal.fsync";
      "save.base.tmp-write";
      "save.base.fsync";
      "save.base.rename";
      "save.tree.tmp-write";
      "save.tree.fsync";
      "save.tree.rename";
      "save.manifest.tmp-write";
      "save.manifest.fsync";
      "save.manifest.rename";
      "save.dir-fsync.pre-manifest";
      "save.dir-fsync.post-manifest";
      "save.wal-truncate";
      (* rolling-refreeze protocol steps (the staged writes inside a
         refreeze reuse the save.* sites above) *)
      "refreeze.rotate";
      "refreeze.freeze";
      "refreeze.segment-delete";
      (* hit by Ingest between a refreeze commit landing and the new
         generation becoming reader-visible; registered here so it is
         enumerable wherever the warehouse links *)
      "refreeze.publish";
    ]

(* ------------------------------------------------------------------ *)
(* State                                                              *)
(* ------------------------------------------------------------------ *)

type recovery = {
  replayed : int;
  stale_skipped : int;
  torn_bytes : int;
  rebuilt_tree : bool;
  rolled_forward : bool;
  segments : int;
}

let no_recovery =
  {
    replayed = 0;
    stale_skipped = 0;
    torn_bytes = 0;
    rebuilt_tree = false;
    rolled_forward = false;
    segments = 0;
  }

(* The warehouse keeps the summary in two forms: the frozen [Packed.t],
   which answers all point/range queries, and the mutable [Qc_tree.t] the
   incremental maintenance algorithms require.  After a build (or an open
   from the packed on-disk format) only the frozen form is guaranteed
   present; the mutable form is thawed transparently on the first
   maintenance operation (or iceberg/self-check, which walk tree nodes) and
   kept warm afterwards.  Every mutation refreezes, so [packed] is never
   stale when present. *)
(* A detached snapshot of everything the background half of a rolling
   refreeze needs.  [rf_tree]/[rf_base] are the warehouse's live
   structures, safe to read from another domain only because the sealed
   writer stops mutating them until [complete_refreeze]. *)
type refreeze_task = {
  rf_dir : string;
  rf_target : int;  (* the generation the refreeze commits *)
  rf_tree : Qc_core.Qc_tree.t;
  rf_base : Table.t;
}

type t = {
  mutable base : Table.t;
  mutable tree_ : Qc_core.Qc_tree.t option;  (** thawed working form *)
  mutable packed_ : Qc_core.Packed.t option;  (** frozen query form *)
  mutable index : (Agg.func * Qc_core.Query.measure_index) option;  (** iceberg cache *)
  mutable generation : int;  (** bumped on every mutation (iceberg cache key) *)
  mutable index_generation : int;
  mutable self_check_enabled : bool;
  mutable dir : string option;  (** attached directory, once saved/opened *)
  mutable ckpt_generation : int;  (** generation of the last committed checkpoint *)
  mutable gen_hwm : int;
      (** highest generation any checkpoint attempt ever targeted or any
          journal record ever carried — the next checkpoint targets
          [gen_hwm + 1], so a failed refreeze's stamps are never reused
          (committed generations may skip numbers) *)
  mutable wal_stamp : int;
      (** generation stamped on new journal records: [ckpt_generation]
          normally, the refreeze target while sealed *)
  mutable sealed_ : refreeze_task option;  (** in-flight background refreeze *)
  mutable pending : Qc_core.Wal.record list;
      (** journaled-but-unapplied inserts accumulated while sealed, in
          reverse append order; applied at [complete_refreeze] through the
          same record-materialization path crash replay uses *)
  mutable wal_out : out_channel option;
  mutable wal_pos : int;  (** length of the journal's valid prefix on disk *)
  mutable wal_records : int;  (** live records appended since the checkpoint *)
  mutable recovery : recovery;
}

exception Check_failed of Qc_core.Check.report

let log = Logs.Src.create "qc.warehouse" ~doc:"QC-tree warehouse operations"

module Log = (val Logs.src_log log)

let tree t =
  match t.tree_ with
  | Some tr -> tr
  | None ->
    let tr =
      match t.packed_ with
      | Some p ->
        Log.debug (fun m -> m "thawing packed tree for node-level access");
        Trace.with_span ~cat:"warehouse" "warehouse.thaw" (fun () -> Qc_core.Packed.to_tree p)
      | None -> assert false
    in
    t.tree_ <- Some tr;
    tr

let packed t =
  match t.packed_ with
  | Some p -> p
  | None ->
    let p =
      Trace.with_span ~cat:"warehouse" "warehouse.freeze" (fun () ->
          Qc_core.Packed.of_tree (tree t))
    in
    t.packed_ <- Some p;
    p

let create base =
  let tree = Qc_core.Qc_tree.of_table base in
  Log.info (fun m ->
      m "built warehouse: %d rows, %d classes" (Table.n_rows base)
        (Qc_core.Qc_tree.n_classes tree));
  {
    base;
    tree_ = Some tree;
    packed_ = Some (Qc_core.Packed.of_tree tree);
    index = None;
    generation = 0;
    index_generation = -1;
    self_check_enabled = false;
    dir = None;
    ckpt_generation = 0;
    gen_hwm = 0;
    wal_stamp = 0;
    sealed_ = None;
    pending = [];
    wal_out = None;
    wal_pos = 0;
    wal_records = 0;
    recovery = no_recovery;
  }

let create_frozen base packed =
  {
    base;
    tree_ = None;
    packed_ = Some packed;
    index = None;
    generation = 0;
    index_generation = -1;
    self_check_enabled = false;
    dir = None;
    ckpt_generation = 0;
    gen_hwm = 0;
    wal_stamp = 0;
    sealed_ = None;
    pending = [];
    wal_out = None;
    wal_pos = 0;
    wal_records = 0;
    recovery = no_recovery;
  }

let table t = t.base

let schema t = Table.schema t.base

(* Two schemas assign the same codes iff each dimension's dictionary holds
   the same values in the same order (codes are allocation order). *)
let dicts_agree s1 s2 =
  Schema.n_dims s1 = Schema.n_dims s2
  &&
  let rec dims i =
    i >= Schema.n_dims s1
    ||
    let v1 = Qc_util.Dict.values (Schema.dict s1 i)
    and v2 = Qc_util.Dict.values (Schema.dict s2 i) in
    Array.length v1 = Array.length v2
    && Array.for_all2 String.equal v1 v2
    && dims (i + 1)
  in
  dims 0

let align_schema t target =
  let own = Table.schema t.base in
  if Schema.n_dims own <> Schema.n_dims target then
    raise
      (Error
         (Corrupt_base
            {
              path = (match t.dir with Some d -> d | None -> "<memory>");
              reason =
                Printf.sprintf "dimension count %d disagrees with the composite's %d"
                  (Schema.n_dims own) (Schema.n_dims target);
            }));
  if dicts_agree own target then false
  else begin
    let base = Table.create target in
    Table.iter
      (fun cell m ->
        let values =
          List.init (Schema.n_dims own) (fun i -> Schema.decode_value own i cell.(i))
        in
        Table.add_row base values m)
      t.base;
    let tree = Qc_core.Qc_tree.of_table base in
    t.base <- base;
    t.tree_ <- Some tree;
    t.packed_ <- Some (Qc_core.Packed.of_tree tree);
    t.index <- None;
    t.generation <- t.generation + 1;
    t.recovery <- { t.recovery with rebuilt_tree = true };
    Log.warn (fun m ->
        m "re-encoded %d rows against the composite dictionary and rebuilt the summary"
          (Table.n_rows base));
    true
  end

let attached_dir t = t.dir

let checkpoint_generation t = t.ckpt_generation

let last_recovery t = t.recovery

let touch t = t.generation <- t.generation + 1

let set_self_check t on = t.self_check_enabled <- on

let check t = Qc_core.Check.run ~deep:true ~base:t.base (tree t)

(* Post-maintenance hook: a full deep audit after every mutation.  Costs a
   DFS over the (new) base table plus a freeze and round-trip, so it is off
   by default and opted into per warehouse ([qct --self-check], tests). *)
let post_maintenance_check t op =
  if t.self_check_enabled then begin
    let report = check t in
    if not (Qc_core.Check.ok report) then begin
      Log.err (fun m ->
          m "self-check after %s found %d violation(s)" op
            (List.length report.Qc_core.Check.violations));
      raise (Check_failed report)
    end;
    Log.debug (fun m -> m "self-check after %s passed" op)
  end

let refreeze t =
  t.packed_ <-
    Some
      (Trace.with_span ~cat:"warehouse" "warehouse.freeze" (fun () ->
           Qc_core.Packed.of_tree (tree t)))

(* ------------------------------------------------------------------ *)
(* Directory layout and manifest                                      *)
(* ------------------------------------------------------------------ *)

let base_file dir = Filename.concat dir "base.csv"

let tree_file dir = Filename.concat dir "tree.qct"

let manifest_file dir = Filename.concat dir "manifest"

let wal_file dir = Filename.concat dir "wal.log"

let manifest_version = 1

(* The manifest is the checkpoint's atomic commit record: generation
   number plus CRC-32/size of both images, self-checksummed.  Text, one
   field per line, so a hexdump of a damaged directory stays legible. *)
type manifest = {
  m_generation : int;
  base_crc : int;
  base_size : int;
  tree_crc : int;
  tree_size : int;
}

let manifest_to_string m =
  let body =
    Printf.sprintf "qcmanifest %d\ngeneration %d\nbase %08x %d\ntree %08x %d\n"
      manifest_version m.m_generation m.base_crc m.base_size m.tree_crc m.tree_size
  in
  body ^ Printf.sprintf "crc %08x\n" (Qc_util.Crc32.string body)

let manifest_of_string data =
  let fail reason = Result.Error (`Malformed reason) in
  match List.filter (fun l -> l <> "") (String.split_on_char '\n' data) with
  | [ l0; l1; l2; l3; l4 ] -> (
    let field2 line key =
      match String.split_on_char ' ' line with
      | [ k; v ] when String.equal k key -> Some v
      | _ -> None
    and field3 line key =
      match String.split_on_char ' ' line with
      | [ k; a; b ] when String.equal k key -> Some (a, b)
      | _ -> None
    in
    let hex h = int_of_string_opt ("0x" ^ h) in
    match field2 l0 "qcmanifest" with
    | None -> fail "missing qcmanifest header line"
    | Some v -> (
      match int_of_string_opt v with
      | None -> fail "unreadable format version"
      | Some v when v <> manifest_version -> Result.Error (`Version v)
      | Some _ -> (
        let body = String.concat "\n" [ l0; l1; l2; l3 ] ^ "\n" in
        match (field2 l1 "generation", field3 l2 "base", field3 l3 "tree", field2 l4 "crc") with
        | Some g, Some (bc, bs), Some (tc, ts), Some self -> (
          match (int_of_string_opt g, hex bc, int_of_string_opt bs, hex tc,
                 int_of_string_opt ts, hex self) with
          | Some m_generation, Some base_crc, Some base_size, Some tree_crc,
            Some tree_size, Some self_crc ->
            if self_crc <> Qc_util.Crc32.string body then fail "self-checksum mismatch"
            else if m_generation < 0 || base_size < 0 || tree_size < 0 then
              fail "negative field"
            else Ok { m_generation; base_crc; base_size; tree_crc; tree_size }
          | _ -> fail "unreadable numeric field")
        | _ -> fail "missing field line")))
  | _ -> fail "wrong line count"

(* Strict read: absent is [None]; damage raises the typed error. *)
let read_manifest path =
  if not (Sys.file_exists path) then None
  else
    match manifest_of_string (wrap_io (fun () -> Qc_util.Durable.read_file path)) with
    | Ok m -> Some m
    | Result.Error (`Version got) -> raise (Error (Version_mismatch { path; got }))
    | Result.Error (`Malformed reason) -> raise (Error (Corrupt_manifest { path; reason }))

(* Lenient read for in-flight temporaries: anything unusable is [None]
   (a torn manifest.tmp is the expected residue of a crash mid-save). *)
let read_manifest_lenient path =
  if not (Sys.file_exists path) then None
  else
    match wrap_io (fun () -> Qc_util.Durable.read_file path) with
    | exception Error _ -> None
    | data -> ( match manifest_of_string data with Ok m -> Some m | Result.Error _ -> None)

(* Which checkpoint does [dir] resolve to, given the base image it holds?
   The main manifest wins when the base matches it; otherwise a valid
   manifest.tmp whose base CRC matches is an interrupted checkpoint that
   committed its base rename — adopt it (roll-forward).  [None] means the
   base matches nothing: structural damage, not a crash residue. *)
let resolve_checkpoint dir ~base_crc ~strict =
  let main =
    if strict then read_manifest (manifest_file dir)
    else read_manifest_lenient (manifest_file dir)
  in
  match main with
  | Some m when m.base_crc = base_crc -> `Manifest m
  | main -> (
    match read_manifest_lenient (manifest_file dir ^ ".tmp") with
    | Some m when m.base_crc = base_crc -> `Rolled_forward m
    | _ -> ( match main with None -> `Legacy | Some _ -> `Unresolved))

(* ------------------------------------------------------------------ *)
(* Journal plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let wal_header_len = String.length Qc_core.Wal.header

(* Byte length of the journal's decodable prefix (0 when absent or when
   even the header is unusable). *)
let wal_valid_prefix path =
  if not (Sys.file_exists path) then 0
  else
    match Qc_core.Wal.scan (Qc_util.Durable.read_file path) with
    | Ok s -> s.consumed
    | Error _ -> 0

(* The journal's append handle, opened lazily on the first attached
   mutation.  Before handing it out, make the on-disk file end exactly at
   the valid prefix: recreate it when the header itself is missing or
   unusable, truncate away any torn tail so fresh frames never land after
   garbage. *)
let wal_channel t dir =
  match t.wal_out with
  | Some oc -> oc
  | None ->
    let path = wal_file dir in
    wrap_io (fun () ->
        if t.wal_pos < wal_header_len then begin
          Qc_util.Durable.write_file path Qc_core.Wal.header;
          Qc_util.Durable.fsync_dir dir;
          t.wal_pos <- wal_header_len
        end
        else begin
          let size = (Unix.stat path).Unix.st_size in
          if size < t.wal_pos then
            raise
              (Error
                 (Io
                    (Printf.sprintf "%s shrank below its committed prefix (%d < %d bytes)" path
                       size t.wal_pos)));
          if size > t.wal_pos then Qc_util.Durable.truncate path t.wal_pos
        end);
    let oc = wrap_io (fun () -> Qc_util.Durable.open_append path) in
    t.wal_out <- Some oc;
    oc

let close_wal t =
  match t.wal_out with
  | Some oc ->
    close_out_noerr oc;
    t.wal_out <- None
  | None -> ()

(* Rotated journal segments in [dir], ordered by sequence number.  They
   exist only between a refreeze's rotation and the next committed
   checkpoint (which deletes them); recovery replays them before the
   active journal. *)
let list_segments dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match Qc_core.Wal.segment_seq name with
           | Some seq -> Some (seq, name)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let delete_segments dir =
  match list_segments dir with
  | [] -> ()
  | segs ->
    List.iter (fun (_, name) -> Qc_util.Durable.remove (Filename.concat dir name)) segs;
    Qc_util.Durable.fsync_dir dir

(* Append one record and fsync it — the commit point of a mutation.  On
   any failure the frame may be partly on disk but was never acknowledged,
   so cut the file back to the last valid prefix before reporting the
   typed error; the batch is then neither applied nor durable.  Returns
   the journaled record ([None] when nothing was written) so the sealed
   path can buffer exactly what replay would see. *)
let log_record t (record : Qc_core.Wal.record) =
  match t.dir with
  | None -> None
  | Some dir -> (
    let frame = Qc_core.Wal.encode record in
    let oc = wal_channel t dir in
    match
      Trace.with_span ~cat:"wal"
        ~args:
          [
            ("bytes", Trace.Int (String.length frame));
            ("rows", Trace.Int (List.length record.rows));
          ]
        "wal.append"
        (fun () -> Qc_util.Durable.append ~fp:"wal" oc frame)
    with
    | () ->
      t.wal_pos <- t.wal_pos + String.length frame;
      t.wal_records <- t.wal_records + 1;
      Some record
    | exception e ->
      close_wal t;
      (try Qc_util.Durable.truncate (wal_file dir) t.wal_pos with
      | Unix.Unix_error _ | Sys_error _ -> ());
      (match io_error_of_exn e with Some err -> raise (Error err) | None -> raise e))

let log_mutation t op delta =
  match t.dir with
  | None -> None
  | Some _ when Table.n_rows delta = 0 -> None
  | Some _ -> log_record t (Qc_core.Wal.record_of_table ~generation:t.wal_stamp op delta)

(* ------------------------------------------------------------------ *)
(* Maintenance                                                        *)
(* ------------------------------------------------------------------ *)

let run_insert t delta =
  let tr = tree t in
  t.packed_ <- None;
  Qc_core.Maintenance.insert_batch tr ~base:t.base ~delta

let run_delete t delta =
  let tr = tree t in
  t.packed_ <- None;
  let new_base, stats = Qc_core.Maintenance.delete_batch tr ~base:t.base ~delta in
  t.base <- new_base;
  stats

(* Mirror of Maintenance.delete_batch's multiset matching, run before the
   journal append so an impossible batch is rejected without being
   logged (a logged batch must always replay). *)
let validate_delete base delta =
  if Table.n_rows delta > 0 then begin
    let claimed = Array.make (Table.n_rows base) false in
    let by_cell : int list Cell.Tbl.t = Cell.Tbl.create (Table.n_rows base) in
    for i = Table.n_rows base - 1 downto 0 do
      let cell = Table.tuple base i in
      Cell.Tbl.replace by_cell cell
        (i :: Option.value ~default:[] (Cell.Tbl.find_opt by_cell cell))
    done;
    for i = 0 to Table.n_rows delta - 1 do
      let cell = Table.tuple delta i and m = Table.measure delta i in
      let rec claim = function
        | [] -> invalid_arg "Warehouse.delete: delta row not present in base"
        | j :: rest ->
          if (not claimed.(j)) && Table.measure base j = m then claimed.(j) <- true
          else claim rest
      in
      claim (Option.value ~default:[] (Cell.Tbl.find_opt by_cell cell))
    done
  end

let insert t delta =
  match t.sealed_ with
  | Some _ ->
    (* Sealed: the background refreeze is reading [t.base]/[t.tree_], so
       the batch is journaled (durable, stamped with the refreeze target)
       and buffered; it is applied in memory at [complete_refreeze].  The
       returned stats are therefore all zero — the structural work has not
       happened yet. *)
    (match log_mutation t Qc_core.Wal.Insert delta with
    | Some r -> t.pending <- r :: t.pending
    | None -> ());
    { Qc_core.Maintenance.updated = 0; carved = 0; fresh = 0; located = 0 }
  | None ->
    ignore (log_mutation t Qc_core.Wal.Insert delta);
    let stats = run_insert t delta in
    refreeze t;
    touch t;
    Log.info (fun m ->
        m "inserted %d rows (%d updated, %d carved, %d fresh classes)" (Table.n_rows delta)
          stats.updated stats.carved stats.fresh);
    post_maintenance_check t "insert";
    stats

let insert_rows t rows =
  let n_dims = Schema.n_dims (Table.schema t.base) in
  List.iter
    (fun (values, _) ->
      if List.length values <> n_dims then
        invalid_arg
          (Printf.sprintf "Warehouse.insert_rows: expected %d dimension values, got %d" n_dims
             (List.length values)))
    rows;
  match t.sealed_ with
  | Some _ ->
    (* Sealed: build the record straight from the decoded rows.  Routing
       through a [Table.t] would allocate dictionary codes in the live
       schema, which the background domain is concurrently reading — this
       path must not touch shared structures, only the journal and the
       pending buffer. *)
    (match rows with
    | [] -> ()
    | _ :: _ -> (
      let record = { Qc_core.Wal.generation = t.wal_stamp; op = Qc_core.Wal.Insert; rows } in
      match log_record t record with
      | Some r -> t.pending <- r :: t.pending
      | None -> ()));
    { Qc_core.Maintenance.updated = 0; carved = 0; fresh = 0; located = 0 }
  | None ->
    let delta = Table.create (Table.schema t.base) in
    List.iter (fun (values, m) -> Table.add_row delta values m) rows;
    insert t delta

let delete t delta =
  (* Deletions validate against the live base, which is frozen while a
     background refreeze reads it — and a delete buffered against a moving
     base could become invalid by apply time.  Streaming ingestion is
     insert-only; interactive deletes must wait for the refreeze. *)
  if Option.is_some t.sealed_ then
    invalid_arg "Warehouse.delete: a background refreeze is in flight";
  validate_delete t.base delta;
  ignore (log_mutation t Qc_core.Wal.Delete delta);
  let stats = run_delete t delta in
  refreeze t;
  touch t;
  Log.info (fun m ->
      m "deleted %d rows (%d classes removed, %d merged)" (Table.n_rows delta) stats.removed
        stats.merged);
  post_maintenance_check t "delete";
  stats

let update t ~old_rows ~new_rows =
  let dstats = delete t old_rows in
  let istats = insert t new_rows in
  (dstats, istats)

let query t cell = Result.to_option (Qc_core.Query.point_result_packed (packed t) cell)

let query_value t func cell =
  Result.to_option (Qc_core.Query.point_value_result_packed (packed t) func cell)

let range t q =
  match Qc_core.Query.range_result_packed (packed t) q with
  | Ok cells -> cells
  | Error e -> invalid_arg (Qc_core.Query.error_to_string e)

let iceberg t func ~threshold =
  let index =
    match t.index with
    | Some (f, idx) when f = func && t.index_generation = t.generation -> idx
    | Some _ | None ->
      let idx = Qc_core.Query.make_index (tree t) func in
      t.index <- Some (func, idx);
      t.index_generation <- t.generation;
      idx
  in
  Qc_core.Query.iceberg index ~threshold

(* Batches always run over the frozen snapshot: [Engine.run_batch] fans
   the queries out across domains, and because the packed structure is
   immutable, concurrent mutations on the coordinating domain keep
   journaling to the WAL and refreezing without invalidating a batch in
   flight — the batch just answers against the snapshot it started on. *)
let run_batch ?jobs ?node_accesses t queries =
  Qc_core.Engine.run_batch ?jobs ?node_accesses
    (module Qc_core.Engine.Packed_backend)
    (packed t) queries

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

type stat = {
  rows : int;
  dims : int;
  classes : int;
  nodes : int;
  links : int;
  bytes : int;
  packed_bytes : int;
  generation : int;
  wal_records : int;
  replayed : int;
  recovered : bool;
}

(* Every action [open_dir] had to take that the next checkpoint makes
   unnecessary.  Stale journal records (a crash between a checkpoint's
   manifest commit and its journal truncation) and leftover rotated
   segments count: the directory works as-is but still carries crash
   residue a [save] would clean up — under-reporting them made
   [qct recover --dry-run] call such a directory clean. *)
let recovered_something r =
  r.rebuilt_tree || r.rolled_forward || r.torn_bytes > 0 || r.stale_skipped > 0 || r.segments > 0

let stats_record t =
  let p = packed t in
  {
    rows = Table.n_rows t.base;
    dims = Table.n_dims t.base;
    classes = Qc_core.Packed.n_classes p;
    nodes = Qc_core.Packed.n_nodes p;
    links = Qc_core.Packed.n_links p;
    bytes = Qc_core.Packed.bytes p;
    packed_bytes = Qc_core.Packed.resident_bytes p;
    generation = t.ckpt_generation;
    wal_records = t.wal_records;
    replayed = t.recovery.replayed;
    recovered = recovered_something t.recovery;
  }

let stats t =
  let s = stats_record t in
  Printf.sprintf
    "%d rows | %d classes | %d nodes | %d links | %d bytes (%d packed) | gen %d | %d wal record(s)%s"
    s.rows s.classes s.nodes s.links s.bytes s.packed_bytes s.generation s.wal_records
    (if s.recovered then Printf.sprintf " | recovered (%d replayed)" s.replayed
     else if s.replayed > 0 then Printf.sprintf " | %d replayed" s.replayed
     else "")

let stat_to_json s =
  Qc_util.Jsonx.Obj
    [
      ("rows", Qc_util.Jsonx.Int s.rows);
      ("dims", Qc_util.Jsonx.Int s.dims);
      ("classes", Qc_util.Jsonx.Int s.classes);
      ("nodes", Qc_util.Jsonx.Int s.nodes);
      ("links", Qc_util.Jsonx.Int s.links);
      ("bytes", Qc_util.Jsonx.Int s.bytes);
      ("packed_bytes", Qc_util.Jsonx.Int s.packed_bytes);
      ("generation", Qc_util.Jsonx.Int s.generation);
      ("wal_records", Qc_util.Jsonx.Int s.wal_records);
      ("replayed", Qc_util.Jsonx.Int s.replayed);
      ("recovered", Qc_util.Jsonx.Bool s.recovered);
    ]

let stats_json t = Qc_util.Jsonx.to_string (stat_to_json (stats_record t))

(* ------------------------------------------------------------------ *)
(* Checkpoint (save)                                                  *)
(* ------------------------------------------------------------------ *)

(* A failed checkpoint may or may not have committed — the commit point
   (the manifest rename) is buried in the middle of the sequence.
   Re-derive the directory's actual state so subsequent journal records
   carry the generation recovery will resolve the directory to; getting
   this wrong would make recovery skip committed records as stale. *)
let resync_after_failed_save t dir ~gen' ~base_crc =
  let attached_here = match t.dir with Some d -> String.equal d dir | None -> false in
  match
    (try Some (Qc_util.Durable.read_file (base_file dir)) with Sys_error _ -> None)
  with
  | None -> ()
  | Some base_data -> (
    let crc = Qc_util.Crc32.string base_data in
    match resolve_checkpoint dir ~base_crc:crc ~strict:false with
    | `Unresolved | `Legacy -> ()
    | `Manifest m | `Rolled_forward m ->
      if attached_here then begin
        if m.m_generation <> t.ckpt_generation then begin
          t.ckpt_generation <- m.m_generation;
          t.wal_stamp <- m.m_generation;
          t.gen_hwm <- (if m.m_generation > t.gen_hwm then m.m_generation else t.gen_hwm);
          t.wal_records <- 0
        end
      end
      else if m.m_generation = gen' && m.base_crc = base_crc then begin
        (* the checkpoint into a fresh directory committed before the
           failure: attach, or mutations would silently stop journaling *)
        close_wal t;
        t.dir <- Some dir;
        t.ckpt_generation <- gen';
        t.wal_stamp <- gen';
        t.gen_hwm <- (if gen' > t.gen_hwm then gen' else t.gen_hwm);
        t.wal_records <- 0;
        t.wal_pos <- wal_valid_prefix (wal_file dir)
      end)

(* Stage the three files and commit the renames — the shared middle of a
   foreground [save] and a background refreeze.  All three temporaries
   are durable before any rename, so an interrupted checkpoint can
   always be resolved to one side or rolled forward from its
   temporaries; the manifest rename is the atomic commit point. *)
let stage_and_commit ~dir ~base_data ~tree_data ~gen' =
  let manifest_data =
    manifest_to_string
      {
        m_generation = gen';
        base_crc = Qc_util.Crc32.string base_data;
        base_size = String.length base_data;
        tree_crc = Qc_util.Crc32.string tree_data;
        tree_size = String.length tree_data;
      }
  in
  Trace.with_span ~cat:"wal" "ckpt.stage" (fun () ->
      Qc_util.Durable.write_tmp ~fp:"save.base" (base_file dir) base_data;
      Qc_util.Durable.write_tmp ~fp:"save.tree" (tree_file dir) tree_data;
      Qc_util.Durable.write_tmp ~fp:"save.manifest" (manifest_file dir) manifest_data);
  Trace.with_span ~cat:"wal" "ckpt.commit" (fun () ->
      Qc_util.Durable.commit_tmp ~fp:"save.base" (base_file dir);
      Qc_util.Durable.commit_tmp ~fp:"save.tree" (tree_file dir);
      Qc_util.Failpoint.hit "save.dir-fsync.pre-manifest";
      Qc_util.Durable.fsync_dir dir;
      (* the manifest rename is the checkpoint's atomic commit point *)
      Qc_util.Durable.commit_tmp ~fp:"save.manifest" (manifest_file dir);
      Qc_util.Failpoint.hit "save.dir-fsync.post-manifest";
      Qc_util.Durable.fsync_dir dir)

let save t dir =
  if Option.is_some t.sealed_ then
    invalid_arg "Warehouse.save: a background refreeze is in flight";
  Trace.with_span ~cat:"warehouse"
    ~args:[ ("generation", Trace.Int (t.gen_hwm + 1)) ]
    "warehouse.checkpoint"
  @@ fun () ->
  wrap_io (fun () -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
  let base_data = Qc_data.Csv.to_string t.base in
  let tree_data = Qc_core.Serial.to_packed_string (packed t) in
  let base_crc = Qc_util.Crc32.string base_data in
  (* Target one above the high-water mark, not [ckpt_generation + 1]: a
     failed refreeze may have stamped journal records with
     [ckpt_generation + 1] already, and committing under a stamp that is
     out in the wild would make recovery double-apply those records. *)
  let gen' = t.gen_hwm + 1 in
  (* the handle would point into the file about to be truncated *)
  close_wal t;
  (try
     stage_and_commit ~dir ~base_data ~tree_data ~gen';
     (* committed: reset the journal to an empty header and drop any
        rotated segments (their records' effects are in the image) *)
     Trace.with_span ~cat:"wal" "wal.truncate" (fun () ->
         Qc_util.Failpoint.hit "save.wal-truncate";
         Qc_util.Durable.write_file (wal_file dir) Qc_core.Wal.header;
         Qc_util.Durable.fsync_dir dir;
         delete_segments dir)
   with e ->
     resync_after_failed_save t dir ~gen' ~base_crc;
     (match io_error_of_exn e with Some err -> raise (Error err) | None -> raise e));
  t.dir <- Some dir;
  t.ckpt_generation <- gen';
  t.gen_hwm <- gen';
  t.wal_stamp <- gen';
  t.wal_pos <- wal_header_len;
  t.wal_records <- 0;
  Log.info (fun m -> m "checkpointed warehouse to %s (generation %d)" dir gen')

(* ------------------------------------------------------------------ *)
(* Rolling refreeze (seal / background / complete)                     *)
(* ------------------------------------------------------------------ *)

let sealed t = Option.is_some t.sealed_

let refreeze_target task = task.rf_target

(* Seal the warehouse for a background refreeze: rotate the active
   journal out of the way, pick the target generation, and hand back a
   snapshot task.  From here until [complete_refreeze] the writer must
   not mutate [base]/[tree] (inserts are journaled + buffered; deletes
   and saves are refused), so the background domain can read them. *)
let seal t =
  if Option.is_some t.sealed_ then invalid_arg "Warehouse.seal: already sealed";
  let dir =
    match t.dir with
    | Some d -> d
    | None -> invalid_arg "Warehouse.seal: detached warehouse (save it first)"
  in
  let tr = tree t in
  close_wal t;
  wrap_io (fun () ->
      let next_seq = match List.rev (list_segments dir) with (s, _) :: _ -> s + 1 | [] -> 0 in
      let wal = wal_file dir in
      Qc_util.Failpoint.hit "refreeze.rotate";
      if Sys.file_exists wal then
        Qc_util.Durable.rename wal (Filename.concat dir (Qc_core.Wal.segment_name next_seq));
      Qc_util.Durable.write_file wal Qc_core.Wal.header;
      Qc_util.Durable.fsync_dir dir);
  t.wal_pos <- wal_header_len;
  t.wal_records <- 0;
  let task = { rf_dir = dir; rf_target = t.gen_hwm + 1; rf_tree = tr; rf_base = t.base } in
  t.gen_hwm <- task.rf_target;
  t.wal_stamp <- task.rf_target;
  t.sealed_ <- Some task;
  Log.info (fun m -> m "sealed for refreeze to generation %d" task.rf_target);
  task

(* The background half: freeze, serialize, stage + commit, clean up
   rotated segments.  Pure in the warehouse record — safe to run on
   another domain while the sealed writer keeps journaling.  Never
   raises on I/O failure: the caller degrades to the last good
   generation and retries. *)
let run_refreeze task =
  Trace.with_span ~cat:"warehouse"
    ~args:[ ("generation", Trace.Int task.rf_target) ]
    "refreeze.run"
  @@ fun () ->
  try
    Qc_util.Failpoint.hit "refreeze.freeze";
    let p =
      Trace.with_span ~cat:"warehouse" "refreeze.freeze" (fun () ->
          Qc_core.Packed.of_tree task.rf_tree)
    in
    let base_data = Qc_data.Csv.to_string task.rf_base in
    let tree_data = Qc_core.Serial.to_packed_string p in
    stage_and_commit ~dir:task.rf_dir ~base_data ~tree_data ~gen':task.rf_target;
    (* Committed.  The rotated segments are now redundant; a kill between
       here and the last unlink only leaves stale segments behind, which
       both recovery and the next checkpoint skip/clean. *)
    Qc_util.Failpoint.hit "refreeze.segment-delete";
    delete_segments task.rf_dir;
    Ok p
  with e -> (
    match io_error_of_exn e with Some err -> Result.Error err | None -> raise e)

(* Did the attempt actually commit?  [Ok _] proves it; on [Error] the
   commit point may still have been crossed (e.g. the injected failure
   fired during segment deletion), so re-resolve the directory — and
   finish an interrupted manifest rename while at it, closing the window
   where only [manifest.tmp] records the commit. *)
let refreeze_committed task result =
  match result with
  | Ok _ -> true
  | Result.Error _ -> (
    match
      (try Some (Qc_util.Durable.read_file (base_file task.rf_dir)) with Sys_error _ -> None)
    with
    | None -> false
    | Some base_data -> (
      match
        resolve_checkpoint task.rf_dir ~base_crc:(Qc_util.Crc32.string base_data) ~strict:false
      with
      | `Manifest m -> m.m_generation = task.rf_target
      | `Rolled_forward m when m.m_generation = task.rf_target ->
        (try
           Qc_util.Durable.commit_tmp (manifest_file task.rf_dir);
           Qc_util.Durable.fsync_dir task.rf_dir
         with Sys_error _ | Unix.Unix_error _ -> ());
        true
      | `Rolled_forward _ | `Legacy | `Unresolved -> false))

type refreeze_outcome = {
  rf_committed : bool;
  rf_generation : int;  (** the committed generation the warehouse now extends *)
  rf_packed : Qc_core.Packed.t option;
      (** on a committed refreeze, the frozen image at the sealed state —
          what an MVCC server publishes for the new generation *)
}

(* Unseal: adopt the attempt's outcome, then apply the buffered records
   through the same materialization path crash replay uses, so the
   in-memory state converges with what a reopen would reconstruct. *)
let complete_refreeze t task result =
  (match t.sealed_ with
  | Some s when s.rf_target = task.rf_target -> ()
  | Some _ | None -> invalid_arg "Warehouse.complete_refreeze: not sealed with this task");
  let committed = refreeze_committed task result in
  let committed_packed =
    match (committed, result) with
    | false, _ -> None
    | true, Ok p -> Some p
    | true, Result.Error _ ->
      (* the attempt errored after crossing the commit point (e.g. during
         segment deletion): the sealed tree is exactly the committed image,
         so refreeze it — the MVCC server still gets this generation *)
      Some (Qc_core.Packed.of_tree task.rf_tree)
  in
  if committed then begin
    t.ckpt_generation <- task.rf_target;
    t.packed_ <- committed_packed
  end;
  (* failed attempt: new records keep extending the old checkpoint; the
     target stamp stays burned (gen_hwm) so the next attempt skips it *)
  t.wal_stamp <- t.ckpt_generation;
  t.sealed_ <- None;
  let buffered = List.rev t.pending in
  t.pending <- [];
  List.iter
    (fun (r : Qc_core.Wal.record) ->
      let delta = Qc_core.Wal.table_of_record (Table.schema t.base) r in
      (match r.op with
      | Qc_core.Wal.Insert -> ignore (run_insert t delta)
      | Qc_core.Wal.Delete -> ignore (run_delete t delta));
      touch t)
    buffered;
  (match buffered with [] -> () | _ :: _ -> refreeze t);
  Log.info (fun m ->
      m "refreeze to generation %d %s (%d buffered record(s) applied)" task.rf_target
        (if committed then "committed" else "failed; serving stays on the last good generation")
        (List.length buffered));
  {
    rf_committed = committed;
    rf_generation = t.ckpt_generation;
    rf_packed = committed_packed;
  }

(* ------------------------------------------------------------------ *)
(* Open with recovery                                                 *)
(* ------------------------------------------------------------------ *)

(* Shared entry of [open_dir] and [committed_generation]: read the base
   image and decide which checkpoint the directory resolves to. *)
let resolve_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then raise (Error (Missing_file dir));
  let base_path = base_file dir in
  if not (Sys.file_exists base_path) then raise (Error (Missing_file base_path));
  let base_data = wrap_io (fun () -> Qc_util.Durable.read_file base_path) in
  match resolve_checkpoint dir ~base_crc:(Qc_util.Crc32.string base_data) ~strict:true with
  | (`Manifest _ | `Rolled_forward _ | `Legacy) as r -> (base_data, r)
  | `Unresolved ->
    raise
      (Error
         (Corrupt_base
            {
              path = base_path;
              reason = "content matches neither the manifest nor an in-flight checkpoint";
            }))

let committed_generation dir =
  match resolve_dir dir with
  | _, (`Manifest m | `Rolled_forward m) -> m.m_generation
  | _, `Legacy -> 0

let open_dir dir =
  Trace.with_span ~cat:"warehouse" "warehouse.open" @@ fun () ->
  let base_path = base_file dir in
  let base_data, resolution = resolve_dir dir in
  let rolled_forward, active =
    match resolution with
    | `Manifest m -> (false, Some m)
    | `Rolled_forward m ->
      Log.warn (fun f ->
          f "rolling interrupted checkpoint forward to generation %d" m.m_generation);
      (true, Some m)
    | `Legacy -> (false, None)
  in
  let ckpt_generation = match active with None -> 0 | Some m -> m.m_generation in
  (* Pick the tree image: [tree.qct] when it matches the manifest (or when
     there is no manifest to check against); under a rolled-forward
     checkpoint the fresh image may still be sitting in the temporary. *)
  let tree_path = tree_file dir in
  let read_if_exists path =
    if Sys.file_exists path then Some (wrap_io (fun () -> Qc_util.Durable.read_file path))
    else None
  in
  let tree_data =
    match active with
    | None -> read_if_exists tree_path
    | Some m -> (
      match read_if_exists tree_path with
      | Some d when Qc_util.Crc32.string d = m.tree_crc -> Some d
      | main -> (
        match read_if_exists (tree_path ^ ".tmp") with
        | Some d when Qc_util.Crc32.string d = m.tree_crc -> Some d
        | _ ->
          if Option.is_some main then
            Log.warn (fun f -> f "%s does not match the manifest checksum" tree_path);
          None))
  in
  (* Decode defensively: structural damage to the image is recoverable
     (the tree is derived data), so any failure selects the rebuild path
     instead of raising. *)
  let decoded =
    match tree_data with
    | None -> None
    | Some data ->
      let is_packed =
        String.length data >= 4
        && String.equal (String.sub data 0 4) Qc_core.Serial.packed_magic
      in
      if is_packed && not (Qc_core.Check.ok (Qc_core.Check.check_bytes data)) then begin
        Log.warn (fun f -> f "%s fails the structural byte audit" tree_path);
        None
      end
      else (
        try Some (Qc_core.Serial.of_string_any data)
        with Qc_core.Serial.Error e ->
          Log.warn (fun f ->
              f "%s does not decode: %s" tree_path (Qc_core.Serial.error_to_string e));
          None)
  in
  let raw =
    try Qc_data.Csv.of_string base_data
    with Failure reason -> raise (Error (Corrupt_base { path = base_path; reason }))
  in
  (* Re-encode the CSV rows against the summary's schema, so warehouse,
     table and tree share one schema instance (both serial formats
     preserve dictionary codes, so the re-encode assigns identical
     codes).  A dimension-count disagreement means the image belongs to
     some other table: treat it as damage and rebuild. *)
  let reencode schema =
    let raw_schema = Table.schema raw in
    if Schema.n_dims raw_schema <> Schema.n_dims schema then None
    else begin
      let base = Table.create schema in
      Table.iter
        (fun cell m ->
          let values =
            List.init (Schema.n_dims raw_schema) (fun i ->
                Schema.decode_value raw_schema i cell.(i))
          in
          Table.add_row base values m)
        raw;
      Some base
    end
  in
  let rebuild () = (Some (Qc_core.Qc_tree.of_table raw), None, raw, true) in
  let tree_, packed_, base, rebuilt_tree =
    match decoded with
    | Some (`Packed p) -> (
      match reencode (Qc_core.Packed.schema p) with
      | Some base -> (None, Some p, base, false)
      | None -> rebuild ())
    | Some (`Tree tr) -> (
      match reencode (Qc_core.Qc_tree.schema tr) with
      | Some base -> (Some tr, None, base, false)
      | None -> rebuild ())
    | None -> rebuild ()
  in
  if rebuilt_tree then
    Log.warn (fun f ->
        f "rebuilt the QC-tree from %s (%d rows)" base_path (Table.n_rows base));
  let w =
    {
      base;
      tree_;
      packed_;
      index = None;
      generation = 0;
      index_generation = -1;
      self_check_enabled = false;
      dir = Some dir;
      ckpt_generation;
      gen_hwm = ckpt_generation;
      wal_stamp = ckpt_generation;
      sealed_ = None;
      pending = [];
      wal_out = None;
      wal_pos = 0;
      wal_records = 0;
      recovery = no_recovery;
    }
  in
  (* Replay the journal's committed suffix: rotated segments in sequence
     order, then the active file — file order within each, which is the
     order the effects were originally applied.  A record extends the
     resolved checkpoint iff its stamp is >= the checkpoint generation
     (equal in steady state; one above it when a sealed refreeze never
     committed, in which case its buffered records must be revived).
     Records stamped below it are a superseded checkpoint attempt's
     leftovers and are skipped rather than double-applied.  A torn tail is
     the expected residue of a crash mid-append and is discarded;
     structural damage a crash cannot produce raises. *)
  let wal_path = wal_file dir in
  let replayed = ref 0 and stale_skipped = ref 0 and torn_bytes = ref 0 in
  let gen_hwm = ref ckpt_generation in
  let segments = list_segments dir in
  let replay_file ~path ~active data =
    match Qc_core.Wal.scan data with
    | Error c ->
      raise (Error (Corrupt_wal { path; reason = Qc_core.Wal.corruption_to_string c }))
    | Ok s ->
      if active then w.wal_pos <- s.consumed;
      (match s.torn with
      | None -> ()
      | Some (offset, c) ->
        let torn = String.length data - offset in
        torn_bytes := !torn_bytes + torn;
        Log.warn (fun f ->
            f "discarding %d-byte torn journal tail in %s (%s)" torn path
              (Qc_core.Wal.corruption_to_string c)));
      let live = ref 0 in
      List.iter
        (fun (r : Qc_core.Wal.record) ->
          if r.generation > !gen_hwm then gen_hwm := r.generation;
          if r.generation < ckpt_generation then incr stale_skipped
          else begin
            let corrupt reason = Error (Corrupt_wal { path; reason }) in
            let delta =
              try Qc_core.Wal.table_of_record (Table.schema w.base) r
              with Invalid_argument reason -> raise (corrupt reason)
            in
            (try
               match r.op with
               | Qc_core.Wal.Insert -> ignore (run_insert w delta)
               | Qc_core.Wal.Delete -> ignore (run_delete w delta)
             with Invalid_argument reason -> raise (corrupt ("replay failed: " ^ reason)));
            touch w;
            incr replayed;
            incr live
          end)
        s.records;
      if active then w.wal_records <- !live
  in
  Trace.with_span ~cat:"wal" "wal.replay" (fun () ->
      List.iter
        (fun (_, name) ->
          let path = Filename.concat dir name in
          match read_if_exists path with
          | None -> ()
          | Some data -> replay_file ~path ~active:false data)
        segments;
      (match read_if_exists wal_path with
      | None -> ()
      | Some data -> replay_file ~path:wal_path ~active:true data);
      Trace.add_attr "records" (Trace.Int !replayed));
  w.gen_hwm <- !gen_hwm;
  w.recovery <-
    {
      replayed = !replayed;
      stale_skipped = !stale_skipped;
      torn_bytes = !torn_bytes;
      rebuilt_tree;
      rolled_forward;
      segments = List.length segments;
    };
  if recovered_something w.recovery || !replayed > 0 then
    Log.info (fun f ->
        f "recovery for %s: %d replayed, %d stale skipped, %d torn bytes%s%s" dir !replayed
          !stale_skipped !torn_bytes
          (if rebuilt_tree then ", tree rebuilt" else "")
          (if rolled_forward then ", checkpoint rolled forward" else ""));
  Log.info (fun f ->
      f "opened warehouse %s: %d rows (generation %d)" dir (Table.n_rows w.base) ckpt_generation);
  w

let self_check t =
  let tr = tree t in
  match Qc_core.Qc_tree.validate tr with
  | Result.Error e -> Result.Error e
  | Ok () ->
    (* The class set (upper bounds and aggregates) must coincide with a
       fresh rebuild; links are checked structurally by [validate] and
       behaviourally by the test suite (after deletions a few redundant but
       harmless links may remain, so canonical equality is not required
       here). *)
    let rebuilt = Qc_core.Qc_tree.of_table t.base in
    let errors = ref [] in
    Qc_core.Qc_tree.iter_classes
      (fun _ ub agg ->
        match Qc_core.Qc_tree.find_path tr ub with
        | Some node -> (
          match node.Qc_core.Qc_tree.agg with
          | Some a when Agg.approx_equal a agg -> ()
          | Some _ -> errors := "aggregate mismatch" :: !errors
          | None -> errors := "missing class" :: !errors)
        | None -> errors := "missing class path" :: !errors)
      rebuilt;
    if Qc_core.Qc_tree.n_classes tr <> Qc_core.Qc_tree.n_classes rebuilt then
      errors := "class count differs from rebuild" :: !errors;
    (* the frozen and mutable forms must agree whenever both exist *)
    (match (!errors, t.packed_) with
    | [], Some p
      when Qc_core.Qc_tree.canonical_string (Qc_core.Packed.to_tree p)
           <> Qc_core.Qc_tree.canonical_string tr ->
      errors := [ "packed form disagrees with the mutable tree" ]
    | _ -> ());
    (match !errors with [] -> Ok () | e :: _ -> Result.Error e)
