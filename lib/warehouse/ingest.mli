(** Streaming ingestion with rolling refreeze.

    [qct ingest]'s engine: tail a tuple stream, absorb records through
    WAL-journaled Algorithm-2 batch insertion, and periodically refreeze
    the packed snapshot on a background domain while the foreground keeps
    absorbing — readers are served from the last {e committed} generation
    throughout (MVCC by generation, see {!Snapshot}).

    Three domains cooperate:

    - the {e producer} reads and parses lines, quarantines poison input,
      and feeds a bounded queue under a configurable backpressure
      {!policy};
    - the {e consumer} (the caller of {!run}) drains the queue into
      batches, drives {!Warehouse.insert_rows}, and schedules refreezes;
    - a transient {e refreeze} domain runs {!Warehouse.run_refreeze} and
      is joined by the consumer when its done-flag flips.

    Input format: one tuple per line, [v1,...,vd,measure] (matching the
    warehouse schema's dimension count; fields are trimmed, embedded
    commas are not supported).  Blank lines are skipped.  Malformed lines
    — wrong arity, unparsable or non-finite measure — are appended to
    the quarantine file as [line <n>: <reason>: <raw line>] and never
    reach the warehouse.

    Failure containment: a refreeze that fails (I/O error, injected
    fault) degrades to serving the last good generation and retrying
    with exponential backoff; ingestion itself never stops.  A kill at
    any point recovers on reopen to the committed prefix of the journal
    ({!Warehouse.open_dir}), and the reader-visible generation never
    regresses. *)

(** {2 Bounded queue}

    Exposed for the test suite; the unit of backpressure.  A fixed
    capacity, mutex-and-condition protected FIFO shared by exactly one
    producer and one consumer domain. *)
module Bq : sig
  type 'a t

  val create : int -> 'a t
  (** @raise Invalid_argument if the capacity is not positive. *)

  val push : 'a t -> 'a -> bool
  (** Non-blocking; [false] when the queue is full or closed. *)

  val push_wait : 'a t -> 'a -> bool
  (** Blocks while full; [false] only when the queue is (or becomes)
      closed. *)

  val pop_many : 'a t -> max:int -> timeout_s:float -> 'a list
  (** Up to [max] items in arrival order; waits up to [timeout_s] for the
      first one.  [[]] means timeout {e or} drained-and-closed —
      distinguish with {!is_closed}/{!depth}.
      @raise Invalid_argument if [max] is not positive. *)

  val close : 'a t -> unit
  (** No further pushes succeed; wakes blocked producers. *)

  val is_closed : 'a t -> bool

  val depth : 'a t -> int
end

(** {2 Configuration} *)

(** What the producer does when the queue is full: [Block] waits for the
    consumer (lossless, stalls the stream), [Drop] discards the new row
    (counted), [Spill] diverts {e all} further input to an on-disk spill
    file that is replayed after the stream ends (lossless for a finite
    stream, order-preserving because the spill strictly follows the
    queued prefix). *)
type policy = Block | Drop | Spill

val policy_to_string : policy -> string

val policy_of_string : string -> policy option

type config = {
  queue_capacity : int;  (** bounded ingest queue, in rows *)
  policy : policy;
  batch_rows : int;  (** flush a batch at this many rows... *)
  batch_interval_s : float;  (** ...or this much time, whichever first *)
  refreeze_rows : int;  (** seal at this many un-checkpointed rows... *)
  refreeze_interval_s : float;  (** ...or this much time since the last *)
  backoff_base_s : float;  (** first retry delay after a failed refreeze *)
  backoff_max_s : float;  (** retry delay cap (doubling in between) *)
  checkpoint_on_exit : bool;  (** foreground {!Warehouse.save} at the end *)
  max_rows : int option;  (** stop after ingesting at least this many rows *)
  quarantine_path : string option;  (** default [<dir>/.quarantine] *)
  spill_path : string option;  (** default [<dir>/.spill] *)
}

val default : config

(** Where tuples come from: a channel read to EOF (stdin, a file), or a
    file tailed forever — end-of-file means "no more bytes yet", the
    producer polls for appends until stopped or killed. *)
type source = Channel of in_channel | Tail of string

(** {2 Snapshot server}

    The MVCC hand-off point between the ingest loop and concurrent
    readers: a single atomic holding the newest committed generation's
    packed image.  Readers [current] it wait-free and query the immutable
    {!Qc_core.Packed.t} they got, unaffected by any concurrent swap. *)
module Snapshot : sig
  type t = { generation : int; packed : Qc_core.Packed.t }

  type server

  val make : generation:int -> Qc_core.Packed.t -> server

  val current : server -> t

  val publish : server -> t -> bool
  (** Publish-if-greater: [false] (and no change) unless [t.generation]
      strictly exceeds the current one — the reader-visible generation is
      monotonic by construction. *)
end

val parse_line :
  n_dims:int -> string -> (string list * float, string) result
(** One input line to (dimension values, measure), or the quarantine
    reason.  Exposed for tests and for replaying quarantine/spill files. *)

(** {2 Running} *)

type outcome = {
  lines_read : int;
  rows_ingested : int;  (** rows absorbed into the warehouse *)
  quarantined : int;
  dropped : int;  (** [Drop] policy only *)
  spilled : int;  (** [Spill] policy: rows that took the spill detour *)
  batches : int;
  refreezes : int;  (** background refreezes that committed *)
  refreeze_failures : int;  (** failed attempts (each retried after backoff) *)
  final_generation : int;
}

val run :
  ?config:config ->
  ?server:Snapshot.server ->
  ?on_publish:(Snapshot.t -> unit) ->
  Warehouse.t ->
  source:source ->
  outcome
(** Ingest until the source ends (or [config.max_rows] is reached), then
    drain the queue and any spill, wait out an in-flight refreeze, and —
    when [config.checkpoint_on_exit] — cut a final foreground
    checkpoint.  Each committed refreeze is published to [server] (if
    given) and reported to [on_publish] after the ["refreeze.publish"]
    failpoint.  Emits [ingest.*] metrics (rows, batches, refreezes,
    queue-depth gauge) and [ingest.*] trace spans.
    @raise Invalid_argument if the warehouse is not attached to a
    directory.
    @raise Error on a journal-append failure (mutation durability is
    never silently skipped; refreeze failures, by contrast, degrade). *)
