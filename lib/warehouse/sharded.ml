open Qc_cube
open Qc_core
module Trace = Qc_util.Trace

(* The composite commit point: the top-level manifest is written last,
   through Durable with its own failpoint prefix, so the crash matrix can
   kill the process at each of its durability instructions. *)
let () =
  List.iter Qc_util.Failpoint.register
    [ "shards.manifest.tmp-write"; "shards.manifest.fsync"; "shards.manifest.rename" ]

let log = Logs.Src.create "qc.shard" ~doc:"sharded warehouse operations"

module Log = (val Logs.src_log log)

let manifest_file dir = Filename.concat dir "shards.manifest"

let shard_dir dir k = Filename.concat dir (Printf.sprintf "shard-%d" k)

let is_sharded_dir dir = Sys.file_exists (manifest_file dir)

let wrap_io f =
  try f ()
  with
  | Qc_util.Failpoint.Injected label ->
    raise
      (Warehouse.Error
         (Warehouse.Io (Printf.sprintf "injected failure at failpoint %s" label)))
  | Sys_error msg -> raise (Warehouse.Error (Warehouse.Io msg))
  | Unix.Unix_error (err, fn, arg) ->
    raise
      (Warehouse.Error
         (Warehouse.Io (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))))

(* ------------------------------------------------------------------ *)
(* The composite manifest                                             *)
(* ------------------------------------------------------------------ *)

let manifest_version = 1

(* Same shape as the per-shard warehouse manifest: a fixed line order
   and a trailing self-checksum over the preceding body, so torn or
   bit-rotted manifests are detected before any shard is opened. *)
let manifest_to_string ~shards ~partition =
  let body =
    Printf.sprintf "qcshards %d\nshards %d\npartition %s\n" manifest_version shards
      partition
  in
  body ^ Printf.sprintf "crc %08x\n" (Qc_util.Crc32.string body)

let strip_prefix prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.equal (String.sub s 0 lp) prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

(* [Ok (shards, partition_string)], or why not.  The partitioner string
   is validated against the schema only after the shards are open (the
   manifest cannot name dimensions by itself). *)
let manifest_of_string data =
  let fail reason = Error (`Corrupt reason) in
  match String.split_on_char '\n' data with
  | [ l0; l1; l2; l3; "" ] -> (
    match strip_prefix "qcshards " l0 with
    | None -> fail "missing qcshards header line"
    | Some v -> (
      match int_of_string_opt v with
      | None -> fail "unreadable version"
      | Some v when v <> manifest_version -> Error (`Version v)
      | Some _ -> (
        let body = String.concat "\n" [ l0; l1; l2 ] ^ "\n" in
        match
          ( Option.bind (strip_prefix "shards " l1) int_of_string_opt,
            strip_prefix "partition " l2,
            Option.bind (strip_prefix "crc " l3) (fun s -> int_of_string_opt ("0x" ^ s)) )
        with
        | Some n, Some partition, Some self_crc ->
          if self_crc <> Qc_util.Crc32.string body then fail "self-checksum mismatch"
          else if n < 1 then fail "shard count must be at least 1"
          else Ok (n, partition)
        | _ -> fail "malformed field")))
  | _ -> fail "wrong line count"

(* ------------------------------------------------------------------ *)
(* The handle                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  shards : Warehouse.t array;
  part : Shard.partitioner;
  mutable dir : string option;
  mutable backend_ : Shard.t option;  (** cached frozen composite *)
}

let n_shards t = Array.length t.shards

let partitioner t = t.part

let schema t = Warehouse.schema t.shards.(0)

let attached_dir t = t.dir

let shards t = t.shards

let recoveries t = Array.map Warehouse.last_recovery t.shards

let total_rows t =
  Array.fold_left (fun acc w -> acc + Table.n_rows (Warehouse.table w)) 0 t.shards

let create ?jobs ~partitioner ~shards table =
  Trace.with_span ~cat:"shard"
    ~args:[ ("shards", Trace.Int shards); ("rows", Trace.Int (Table.n_rows table)) ]
    "sharded.create"
  @@ fun () ->
  let tables = Shard.split ~partitioner ~shards table in
  let packs = Shard.build_packed ?jobs tables in
  let ws = Array.map2 Warehouse.create_frozen tables packs in
  { shards = ws; part = partitioner; dir = None; backend_ = None }

(* ------------------------------------------------------------------ *)
(* Durability                                                         *)
(* ------------------------------------------------------------------ *)

let save t dir =
  Trace.with_span ~cat:"warehouse"
    ~args:[ ("shards", Trace.Int (n_shards t)) ]
    "sharded.checkpoint"
  @@ fun () ->
  wrap_io (fun () -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
  (* Each shard checkpoint is internally atomic (its own manifest rename
     commits it); the composite commits only when the top-level manifest
     lands, after every shard. *)
  Array.iteri (fun k w -> Warehouse.save w (shard_dir dir k)) t.shards;
  let data =
    manifest_to_string ~shards:(n_shards t)
      ~partition:(Shard.partitioner_to_string (schema t) t.part)
  in
  wrap_io (fun () ->
      Qc_util.Durable.write_file ~fp:"shards.manifest" (manifest_file dir) data;
      Qc_util.Durable.fsync_dir dir);
  t.dir <- Some dir;
  Log.info (fun m -> m "checkpointed %d-shard warehouse to %s" (n_shards t) dir)

let open_dir dir =
  Trace.with_span ~cat:"warehouse" "sharded.open" @@ fun () ->
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    raise (Warehouse.Error (Warehouse.Missing_file dir));
  let mpath = manifest_file dir in
  if not (Sys.file_exists mpath) then
    raise (Warehouse.Error (Warehouse.Missing_file mpath));
  let data = wrap_io (fun () -> Qc_util.Durable.read_file mpath) in
  let n, partition =
    match manifest_of_string data with
    | Ok np -> np
    | Error (`Version got) ->
      raise (Warehouse.Error (Warehouse.Version_mismatch { path = mpath; got }))
    | Error (`Corrupt reason) ->
      raise (Warehouse.Error (Warehouse.Corrupt_manifest { path = mpath; reason }))
  in
  let ws = Array.init n (fun k -> Warehouse.open_dir (shard_dir dir k)) in
  (* One code space: dictionaries agree across shards unless a shard's
     tree was rebuilt from its CSV (appearance-order codes).  Align every
     shard to the first cleanly-loaded one. *)
  let ref_ix =
    let rec go k =
      if k >= n then 0
      else if not (Warehouse.last_recovery ws.(k)).Warehouse.rebuilt_tree then k
      else go (k + 1)
    in
    go 0
  in
  let target = Warehouse.schema ws.(ref_ix) in
  let realigned = ref 0 in
  Array.iteri
    (fun k w ->
      if k <> ref_ix && Warehouse.align_schema w target then incr realigned)
    ws;
  if !realigned > 0 then
    Log.warn (fun m ->
        m "re-encoded %d shard(s) to shard %d's dictionary code space" !realigned ref_ix);
  let part =
    match Shard.partitioner_of_string target partition with
    | Ok p -> p
    | Error reason ->
      raise (Warehouse.Error (Warehouse.Corrupt_manifest { path = mpath; reason }))
  in
  Log.info (fun m -> m "opened %d-shard warehouse %s" n dir);
  { shards = ws; part; dir = Some dir; backend_ = None }

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let backend t =
  match t.backend_ with
  | Some b -> b
  | None ->
    let b = Shard.of_parts ~partitioner:t.part (Array.map Warehouse.packed t.shards) in
    t.backend_ <- Some b;
    b

let query t cell =
  match Shard.Backend.point (backend t) cell with
  | Ok a -> Some a
  | Error (Engine.Empty_cover _) -> None
  | Error e -> invalid_arg (Engine.error_to_string e)

let range t q =
  match Shard.Backend.range (backend t) q with
  | Ok answer -> answer
  | Error e -> invalid_arg (Engine.error_to_string e)

let iceberg t func ~threshold =
  match Shard.Backend.iceberg (backend t) func ~threshold with
  | Ok answer -> answer
  | Error e -> invalid_arg (Engine.error_to_string e)

let run_batch ?jobs ?node_accesses t queries =
  Engine.run_batch ?jobs ?node_accesses (module Shard.Backend) (backend t) queries

(* ------------------------------------------------------------------ *)
(* Audits                                                             *)
(* ------------------------------------------------------------------ *)

let misplaced t =
  let sch = schema t in
  let n = n_shards t in
  let acc = ref [] in
  Array.iteri
    (fun k w ->
      Table.iter
        (fun cell _ ->
          if Shard.shard_of_tuple sch t.part ~shards:n cell <> k then
            acc := (k, Cell.copy cell) :: !acc)
        (Warehouse.table w))
    t.shards;
  List.rev !acc

let describe t =
  Printf.sprintf "%s | %d rows" (Shard.Backend.describe (backend t)) (total_rows t)
