(* Streaming ingestion with rolling refreeze.

   One producer domain tails the input and parses lines into rows; the
   calling domain (the consumer) absorbs rows through journaled batch
   insertion and periodically seals the warehouse, handing the frozen
   snapshot work to a background domain while it keeps absorbing.  The
   reader-visible snapshot only ever moves forward, one committed
   generation at a time. *)

module W = Warehouse
module Trace = Qc_util.Trace
module Metrics = Qc_util.Metrics
module FP = Qc_util.Failpoint
module Clock = Qc_util.Clock

let log = Logs.Src.create "qc.ingest" ~doc:"streaming ingestion"

module Log = (val Logs.src_log log)

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                      *)
(* ------------------------------------------------------------------ *)

module Bq = struct
  type 'a t = {
    cap : int;
    buf : 'a Queue.t;
    lock : Mutex.t;
    not_full : Condition.t;
    mutable closed : bool;
  }

  let create cap =
    if cap <= 0 then invalid_arg "Ingest.Bq.create: capacity must be positive";
    {
      cap;
      buf = Queue.create ();
      lock = Mutex.create ();
      not_full = Condition.create ();
      closed = false;
    }

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let depth t = with_lock t (fun () -> Queue.length t.buf)

  let is_closed t = with_lock t (fun () -> t.closed)

  let close t =
    with_lock t (fun () ->
        t.closed <- true;
        (* wake any producer parked in [push_wait] so it can observe the
           close and stop *)
        Condition.broadcast t.not_full)

  let push t x =
    with_lock t (fun () ->
        if t.closed || Queue.length t.buf >= t.cap then false
        else begin
          Queue.push x t.buf;
          true
        end)

  let push_wait t x =
    with_lock t (fun () ->
        let rec go () =
          if t.closed then false
          else if Queue.length t.buf < t.cap then begin
            Queue.push x t.buf;
            true
          end
          else begin
            Condition.wait t.not_full t.lock;
            go ()
          end
        in
        go ())

  (* Take up to [max] items, waiting up to [timeout_s] for the first one.
     The stdlib's [Condition] has no timed wait, and the consumer must
     multiplex queue input with refreeze-completion polling and flush
     deadlines, so the empty case polls at millisecond granularity
     instead of parking. *)
  let pop_many t ~max ~timeout_s =
    if max <= 0 then invalid_arg "Ingest.Bq.pop_many: max must be positive";
    let deadline = Clock.now_s () +. timeout_s in
    let rec take acc n =
      if n = 0 then List.rev acc
      else
        match Queue.take_opt t.buf with
        | Some x -> take (x :: acc) (n - 1)
        | None -> List.rev acc
    in
    let rec go () =
      let items, drained =
        with_lock t (fun () ->
            let xs = take [] max in
            (match xs with
            | [] -> ()
            | _ :: _ -> Condition.broadcast t.not_full);
            (xs, t.closed && Queue.is_empty t.buf))
      in
      match items with
      | _ :: _ -> items
      | [] ->
        if drained || Clock.now_s () >= deadline then []
        else begin
          Unix.sleepf 0.002;
          go ()
        end
    in
    go ()
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type policy = Block | Drop | Spill

let policy_to_string = function Block -> "block" | Drop -> "drop" | Spill -> "spill"

let policy_of_string = function
  | "block" -> Some Block
  | "drop" -> Some Drop
  | "spill" -> Some Spill
  | _ -> None

type config = {
  queue_capacity : int;
  policy : policy;
  batch_rows : int;
  batch_interval_s : float;
  refreeze_rows : int;
  refreeze_interval_s : float;
  backoff_base_s : float;
  backoff_max_s : float;
  checkpoint_on_exit : bool;
  max_rows : int option;
  quarantine_path : string option;
  spill_path : string option;
}

let default =
  {
    queue_capacity = 4096;
    policy = Block;
    batch_rows = 256;
    batch_interval_s = 0.25;
    refreeze_rows = 5_000;
    refreeze_interval_s = 10.0;
    backoff_base_s = 0.5;
    backoff_max_s = 30.0;
    checkpoint_on_exit = true;
    max_rows = None;
    quarantine_path = None;
    spill_path = None;
  }

type source = Channel of in_channel | Tail of string

(* ------------------------------------------------------------------ *)
(* Snapshot server (MVCC by generation)                               *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type t = { generation : int; packed : Qc_core.Packed.t }

  type server = t Atomic.t

  let make ~generation packed = Atomic.make { generation; packed }

  let current = Atomic.get

  (* Publish-if-greater: a stale publisher (a refreeze completion racing
     a concurrent reader of an already-newer snapshot) silently loses.
     The reader-visible generation is therefore monotonic by
     construction. *)
  let rec publish srv snap =
    let cur = Atomic.get srv in
    if snap.generation <= cur.generation then false
    else if Atomic.compare_and_set srv cur snap then true
    else publish srv snap
end

(* ------------------------------------------------------------------ *)
(* Line parsing and quarantine                                        *)
(* ------------------------------------------------------------------ *)

let parse_line ~n_dims line =
  let fields = List.map String.trim (String.split_on_char ',' line) in
  let nf = List.length fields in
  if nf <> n_dims + 1 then
    Result.Error (Printf.sprintf "expected %d fields, got %d" (n_dims + 1) nf)
  else begin
    let rec split_last acc = function
      | [] -> assert false
      | [ m ] -> (List.rev acc, m)
      | x :: tl -> split_last (x :: acc) tl
    in
    let values, m_str = split_last [] fields in
    match float_of_string_opt m_str with
    | None -> Result.Error (Printf.sprintf "unparsable measure %S" m_str)
    | Some m when not (Float.is_finite m) ->
      Result.Error (Printf.sprintf "non-finite measure %S" m_str)
    | Some m -> Result.Ok (values, m)
  end

(* Cross-domain producer statistics.  Plain counters would race with the
   consumer's end-of-run reads; these are only ever incremented by the
   producer and read by the consumer. *)
type prod_stats = {
  lines_read : int Atomic.t;
  quarantined : int Atomic.t;
  dropped : int Atomic.t;
  spilled : int Atomic.t;
}

(* Producer-side sinks.  The channels are lazily opened by the producer
   and (for the spill) later read by the consumer — but only after the
   producer has been joined, so each channel has a single owner at any
   instant. *)
type sinks = {
  quarantine_file : string;
  spill_file : string;
  mutable quarantine_oc : out_channel option;
  mutable spilling : bool;
}

let quarantine_line sinks line =
  let oc =
    match sinks.quarantine_oc with
    | Some oc -> oc
    | None ->
      let oc = Qc_util.Durable.open_append sinks.quarantine_file in
      sinks.quarantine_oc <- Some oc;
      oc
  in
  output_string oc line;
  output_char oc '\n';
  flush oc

let quarantine sinks st ~lineno ~reason raw =
  Atomic.incr st.quarantined;
  quarantine_line sinks (Printf.sprintf "line %d: %s: %s" lineno reason raw)

(* ------------------------------------------------------------------ *)
(* Producer                                                           *)
(* ------------------------------------------------------------------ *)

type producer_ctx = {
  q : (string list * float) Bq.t;
  st : prod_stats;
  sinks : sinks;
  policy : policy;
  n_dims : int;
  stop : bool Atomic.t;
  mutable spill_oc : out_channel option;
  mutable lineno : int;
}

(* The spill file gets raw (already-validated) lines, order-preserving:
   once the queue first overflows, every subsequent line spills, so the
   queue contents strictly precede the spill contents and replaying the
   spill after the queue drains keeps arrival order. *)
let spill_line ctx raw =
  Atomic.incr ctx.st.spilled;
  let oc =
    match ctx.spill_oc with
    | Some oc -> oc
    | None ->
      let oc = Qc_util.Durable.open_append ctx.sinks.spill_file in
      ctx.spill_oc <- Some oc;
      oc
  in
  output_string oc raw;
  output_char oc '\n';
  flush oc

(* Returns [false] when the queue was closed under us (consumer asked to
   stop) — the producer then abandons the stream. *)
let handle_line ctx raw =
  ctx.lineno <- ctx.lineno + 1;
  Atomic.incr ctx.st.lines_read;
  let line = String.trim raw in
  if String.length line = 0 then true
  else
    match parse_line ~n_dims:ctx.n_dims line with
    | Result.Error reason ->
      quarantine ctx.sinks ctx.st ~lineno:ctx.lineno ~reason raw;
      true
    | Result.Ok row -> (
      match ctx.policy with
      | Block -> Bq.push_wait ctx.q row
      | Drop ->
        if not (Bq.push ctx.q row) then
          if Bq.is_closed ctx.q then false
          else begin
            Atomic.incr ctx.st.dropped;
            true
          end
        else true
      | Spill ->
        if ctx.sinks.spilling then begin
          spill_line ctx raw;
          true
        end
        else if Bq.push ctx.q row then true
        else if Bq.is_closed ctx.q then false
        else begin
          ctx.sinks.spilling <- true;
          spill_line ctx raw;
          true
        end)

(* Chunked line reader shared by both sources: a [Tail] treats
   end-of-file as "no more bytes yet" and polls, a [Channel] treats it as
   the end of the stream.  Splitting on explicit buffered newlines (rather
   than [input_line]) keeps a half-written tail line out of the parser
   until its newline arrives. *)
let read_lines ctx ic ~is_tail =
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let emit_buffered () =
    let s = Buffer.contents pending in
    Buffer.clear pending;
    let rec go start =
      match String.index_from_opt s start '\n' with
      | Some i ->
        if handle_line ctx (String.sub s start (i - start)) then go (i + 1) else false
      | None ->
        if start < String.length s then
          Buffer.add_substring pending s start (String.length s - start);
        true
    in
    go 0
  in
  let rec loop () =
    if Atomic.get ctx.stop then ()
    else begin
      let n = input ic chunk 0 (Bytes.length chunk) in
      if n = 0 then
        if is_tail then begin
          Unix.sleepf 0.05;
          loop ()
        end
        else begin
          (* a final line without a trailing newline still counts *)
          if Buffer.length pending > 0 then begin
            let last = Buffer.contents pending in
            Buffer.clear pending;
            ignore (handle_line ctx last : bool)
          end
        end
      else begin
        Buffer.add_subbytes pending chunk 0 n;
        if emit_buffered () then loop ()
      end
    end
  in
  loop ()

let produce ctx src =
  match src with
  | Channel ic -> read_lines ctx ic ~is_tail:false
  | Tail path ->
    let rec wait_open () =
      if Atomic.get ctx.stop then None
      else
        match open_in_bin path with
        | ic -> Some ic
        | exception Sys_error _ ->
          Unix.sleepf 0.05;
          wait_open ()
    in
    (match wait_open () with
    | None -> ()
    | Some ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_lines ctx ic ~is_tail:true))

(* ------------------------------------------------------------------ *)
(* Consumer: batches, refreeze scheduling, publication               *)
(* ------------------------------------------------------------------ *)

type outcome = {
  lines_read : int;
  rows_ingested : int;
  quarantined : int;
  dropped : int;
  spilled : int;
  batches : int;
  refreezes : int;
  refreeze_failures : int;
  final_generation : int;
}

type job = {
  j_task : W.refreeze_task;
  j_done : bool Atomic.t;
  j_rows_at_seal : int;
  j_domain : ((Qc_core.Packed.t, W.error) result * Metrics.delta * Trace.delta) Domain.t;
}

let g_queue_depth = Metrics.gauge "ingest.queue_depth"

let c_rows = Metrics.counter "ingest.rows"

let c_batches = Metrics.counter "ingest.batches"

let c_refreezes = Metrics.counter "ingest.refreezes"

let c_refreeze_failures = Metrics.counter "ingest.refreeze_failures"

let c_quarantined = Metrics.counter "ingest.quarantined"

let c_dropped = Metrics.counter "ingest.dropped"

let c_spilled = Metrics.counter "ingest.spilled"

let run ?(config = default) ?server ?on_publish w ~source =
  let dir =
    match W.attached_dir w with
    | Some dir -> dir
    | None -> invalid_arg "Ingest.run: the warehouse must be attached to a directory"
  in
  let n_dims = Qc_cube.Schema.n_dims (W.schema w) in
  let q = Bq.create config.queue_capacity in
  let st =
    {
      lines_read = Atomic.make 0;
      quarantined = Atomic.make 0;
      dropped = Atomic.make 0;
      spilled = Atomic.make 0;
    }
  in
  let sinks =
    {
      quarantine_file =
        (match config.quarantine_path with
        | Some p -> p
        | None -> Filename.concat dir ".quarantine");
      spill_file =
        (match config.spill_path with Some p -> p | None -> Filename.concat dir ".spill");
      quarantine_oc = None;
      spilling = false;
    }
  in
  let stop = Atomic.make false in
  let ctx = { q; st; sinks; policy = config.policy; n_dims; stop; spill_oc = None; lineno = 0 } in
  let producer =
    Domain.spawn (fun () ->
        (* the close must happen even if the producer dies of a bug,
           otherwise the consumer waits on the queue forever *)
        Fun.protect
          ~finally:(fun () -> Bq.close q)
          (fun () ->
            try
              produce ctx source;
              Result.Ok ()
            with
            | Sys_error msg -> Result.Error msg
            | Unix.Unix_error (err, fn, arg) ->
              Result.Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))))
  in
  (* consumer state *)
  let batch = ref [] and batch_n = ref 0 and batch_started = ref 0.0 in
  let rows_ingested = ref 0 and batches = ref 0 in
  let rows_since_ckpt = ref 0 and last_ckpt_time = ref (Clock.now_s ()) in
  let job = ref None in
  let refreezes = ref 0 and failures = ref 0 in
  let attempts = ref 0 and next_attempt = ref 0.0 in
  let flush () =
    match !batch with
    | [] -> ()
    | rev_rows ->
      let rows = List.rev rev_rows in
      let n = List.length rows in
      Trace.with_span ~cat:"ingest"
        ~args:[ ("rows", Trace.Int n) ]
        "ingest.batch"
        (fun () -> ignore (W.insert_rows w rows : Qc_core.Maintenance.insert_stats));
      rows_ingested := !rows_ingested + n;
      rows_since_ckpt := !rows_since_ckpt + n;
      incr batches;
      Metrics.add c_rows n;
      Metrics.incr c_batches;
      batch := [];
      batch_n := 0
  in
  let bump_backoff now =
    incr attempts;
    let delay =
      Float.min config.backoff_max_s
        (config.backoff_base_s *. (2.0 ** float_of_int (!attempts - 1)))
    in
    next_attempt := now +. delay;
    Log.warn (fun m ->
        m "refreeze attempt %d failed; serving generation %d, retrying in %.1fs" !attempts
          (W.checkpoint_generation w) delay)
  in
  let start_refreeze () =
    match W.seal w with
    | task ->
      let done_ = Atomic.make false in
      let dom =
        Domain.spawn (fun () ->
            (* the flag must flip even on a programming error, otherwise
               the consumer polls it forever; the error itself then
               surfaces from [Domain.join] *)
            Fun.protect
              ~finally:(fun () -> Atomic.set done_ true)
              (fun () ->
                let res =
                  (* [run_refreeze] already converts I/O failures into
                     [Result.Error]; injected faults arrive as exceptions *)
                  try W.run_refreeze task
                  with FP.Injected _ as e -> Result.Error (W.Io (Printexc.to_string e))
                in
                let md = Metrics.drain () and td = Trace.drain () in
                (res, md, td)))
      in
      job :=
        Some { j_task = task; j_done = done_; j_rows_at_seal = !rows_since_ckpt; j_domain = dom };
      Log.info (fun m -> m "refreeze started toward generation %d" (W.refreeze_target task))
    | exception ((W.Error _ | FP.Injected _) as e) ->
      (* a failed seal (rotation I/O error, injected fault) degrades to
         serving the current state and retrying — never a hard stop *)
      incr failures;
      Metrics.incr c_refreeze_failures;
      Log.warn (fun m -> m "seal failed: %s" (Printexc.to_string e));
      bump_backoff (Clock.now_s ())
  in
  let publish_committed (oc : W.refreeze_outcome) =
    FP.hit "refreeze.publish";
    let packed = match oc.W.rf_packed with Some p -> p | None -> W.packed w in
    let snap = { Snapshot.generation = oc.W.rf_generation; packed } in
    (match server with
    | Some srv -> ignore (Snapshot.publish srv snap : bool)
    | None -> ());
    match on_publish with Some f -> f snap | None -> ()
  in
  let harvest () =
    match !job with
    | Some j when Atomic.get j.j_done ->
      let res, md, td = Domain.join j.j_domain in
      Metrics.absorb md;
      Trace.absorb td;
      let oc = W.complete_refreeze w j.j_task res in
      job := None;
      if oc.W.rf_committed then begin
        incr refreezes;
        Metrics.incr c_refreezes;
        rows_since_ckpt := !rows_since_ckpt - j.j_rows_at_seal;
        last_ckpt_time := Clock.now_s ();
        attempts := 0;
        next_attempt := 0.0;
        Log.info (fun m -> m "refreeze committed generation %d" oc.W.rf_generation);
        publish_committed oc
      end
      else begin
        incr failures;
        Metrics.incr c_refreeze_failures;
        bump_backoff (Clock.now_s ())
      end
    | _ -> ()
  in
  let maybe_refreeze now =
    if
      Option.is_none !job && (not (W.sealed w)) && !rows_since_ckpt > 0 && now >= !next_attempt
      && (!rows_since_ckpt >= config.refreeze_rows
         || now -. !last_ckpt_time >= config.refreeze_interval_s)
    then start_refreeze ()
  in
  let absorb_rows rows =
    match rows with
    | [] -> ()
    | _ :: _ ->
      if !batch_n = 0 then batch_started := Clock.now_s ();
      List.iter (fun r -> batch := r :: !batch) rows;
      batch_n := !batch_n + List.length rows
  in
  let rec loop () =
    harvest ();
    (match config.max_rows with
    | Some limit when (not (Atomic.get stop)) && !rows_ingested + !batch_n >= limit ->
      Atomic.set stop true;
      Bq.close q
    | _ -> ());
    let want = config.batch_rows - !batch_n in
    let items = if want > 0 then Bq.pop_many q ~max:want ~timeout_s:0.02 else [] in
    Metrics.set_gauge g_queue_depth (Bq.depth q);
    absorb_rows items;
    let now = Clock.now_s () in
    if !batch_n >= config.batch_rows || (!batch_n > 0 && now -. !batch_started >= config.batch_interval_s)
    then flush ();
    maybe_refreeze now;
    match items with
    | [] when Bq.is_closed q && Bq.depth q = 0 -> flush ()
    | _ -> loop ()
  in
  Trace.with_span ~cat:"ingest" "ingest.run" (fun () ->
      loop ();
      (* stream done: collect the producer, replay any spill, then wait
         out an in-flight refreeze before touching the directory again *)
      (match Domain.join producer with
      | Result.Ok () -> ()
      | Result.Error msg -> Log.warn (fun m -> m "producer failed: %s" msg));
      (match ctx.spill_oc with
      | None -> ()
      | Some oc ->
        close_out_noerr oc;
        ctx.spill_oc <- None;
        Trace.with_span ~cat:"ingest" "ingest.spill-drain" (fun () ->
            let data = Qc_util.Durable.read_file sinks.spill_file in
            let lines = String.split_on_char '\n' data in
            List.iter
              (fun raw ->
                let line = String.trim raw in
                if String.length line > 0 then begin
                  match parse_line ~n_dims line with
                  | Result.Ok row -> absorb_rows [ row ]
                  | Result.Error reason ->
                    (* spilled lines were validated before spilling, so
                       this only fires on external tampering *)
                    Atomic.incr st.quarantined;
                    quarantine_line sinks (Printf.sprintf "spill: %s: %s" reason raw)
                end;
                if !batch_n >= config.batch_rows then flush ())
              lines;
            flush ());
        Qc_util.Durable.remove sinks.spill_file);
      flush ();
      let rec wait_job () =
        match !job with
        | None -> ()
        | Some _ ->
          harvest ();
          if Option.is_some !job then begin
            Unix.sleepf 0.005;
            wait_job ()
          end
      in
      wait_job ();
      if config.checkpoint_on_exit && !rows_since_ckpt > 0 then begin
        match W.save w dir with
        | () -> ()
        | exception W.Error err ->
          (* degrade: the journal already holds everything; the next open
             replays it *)
          Log.warn (fun m -> m "final checkpoint failed: %s" (W.error_to_string err))
      end;
      (match sinks.quarantine_oc with
      | Some oc ->
        close_out_noerr oc;
        sinks.quarantine_oc <- None
      | None -> ());
      Metrics.set_gauge g_queue_depth 0;
      Metrics.add c_quarantined (Atomic.get st.quarantined);
      Metrics.add c_dropped (Atomic.get st.dropped);
      Metrics.add c_spilled (Atomic.get st.spilled);
      {
        lines_read = Atomic.get st.lines_read;
        rows_ingested = !rows_ingested;
        quarantined = Atomic.get st.quarantined;
        dropped = Atomic.get st.dropped;
        spilled = Atomic.get st.spilled;
        batches = !batches;
        refreezes = !refreezes;
        refreeze_failures = !failures;
        final_generation = W.checkpoint_generation w;
      })
