open Qc_cube

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_string table =
  let schema = Table.schema table in
  let d = Schema.n_dims schema in
  let buf = Buffer.create 65536 in
  let header =
    List.init d (fun i -> Schema.dim_name schema i) @ [ Schema.measure_name schema ]
  in
  Buffer.add_string buf (String.concat "," (List.map quote header));
  Buffer.add_char buf '\n';
  Table.iter
    (fun cell m ->
      for i = 0 to d - 1 do
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (quote (Schema.decode_value schema i cell.(i)))
      done;
      Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.17g" m);
      Buffer.add_char buf '\n')
    table;
  Buffer.contents buf

let save table path = Qc_util.Durable.write_file path (to_string table)

(* Minimal RFC-4180 field splitter. *)
let parse_line line =
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length line in
  let rec plain i =
    if i >= n then finish ()
    else
      match line.[i] with
      | ',' ->
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv: unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  and finish () =
    fields := Buffer.contents buf :: !fields;
    List.rev !fields
  in
  plain 0

let of_string data =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' data)
  in
  match lines with
  | [] -> failwith "Csv: empty input"
  | header :: rows ->
    let columns = parse_line header in
    let k = List.length columns in
    if k < 2 then failwith "Csv: need at least one dimension and a measure";
    let dims = List.filteri (fun i _ -> i < k - 1) columns in
    let measure_name = List.nth columns (k - 1) in
    let schema = Schema.create ~measure_name dims in
    let table = Table.create schema in
    List.iter
      (fun line ->
        let fields = parse_line line in
        if List.length fields <> k then
          failwith (Printf.sprintf "Csv: row arity %d, expected %d" (List.length fields) k);
        let values = List.filteri (fun i _ -> i < k - 1) fields in
        let m =
          match float_of_string_opt (List.nth fields (k - 1)) with
          | Some m -> m
          | None -> failwith "Csv: measure is not a number"
        in
        Table.add_row table values m)
      rows;
    table

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
