type t = {
  n : int;
  cdf : float array;  (** cdf.(k-1) = P(rank <= k) *)
}

let create ?(s = 2.0) n =
  if n <= 0 then invalid_arg "Zipf.create: cardinality must be positive";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; cdf }

let sample t rng =
  let u = Qc_util.Rng.float rng 1.0 in
  (* First index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let pmf t k =
  if k < 1 || k > t.n then 0.0
  else if k = 1 then t.cdf.(0)
  else t.cdf.(k - 1) -. t.cdf.(k - 2)

let cardinality t = t.n
