open Qc_cube

type spec = {
  dims : int;
  cardinality : int;
  rows : int;
  zipf : float;
  seed : int;
}

let default = { dims = 6; cardinality = 100; rows = 50_000; zipf = 2.0; seed = 42 }

let make_schema spec =
  let schema = Schema.create (List.init spec.dims (fun i -> Printf.sprintf "D%d" i)) in
  for i = 0 to spec.dims - 1 do
    for v = 1 to spec.cardinality do
      ignore (Schema.encode_value schema i (Printf.sprintf "v%d" v))
    done
  done;
  schema

let fill spec rng table k =
  let sampler = Zipf.create ~s:spec.zipf spec.cardinality in
  let cell = Array.make spec.dims 0 in
  for _ = 1 to k do
    for i = 0 to spec.dims - 1 do
      cell.(i) <- Zipf.sample sampler rng
    done;
    Table.add_encoded table cell (float_of_int (Qc_util.Rng.int rng 1000))
  done

let generate spec =
  let schema = make_schema spec in
  let table = Table.create schema in
  fill spec (Qc_util.Rng.create spec.seed) table spec.rows;
  table

let generate_delta spec base k =
  let delta = Table.create (Table.schema base) in
  (* A distinct stream so the delta does not replay the base rows. *)
  fill spec (Qc_util.Rng.create (spec.seed + 7919)) delta k;
  delta

let pick_delete_delta ~seed base k =
  if k > Table.n_rows base then invalid_arg "Synthetic.pick_delete_delta: k too large";
  let rng = Qc_util.Rng.create seed in
  let idxs = Array.init (Table.n_rows base) Fun.id in
  Qc_util.Rng.shuffle rng idxs;
  Table.sub base (Array.to_list (Array.sub idxs 0 k))

let random_point_queries ~seed ?(star_prob = 0.5) base k =
  let rng = Qc_util.Rng.create seed in
  let d = Table.n_dims base in
  let n = Table.n_rows base in
  List.init k (fun _ ->
      (* Anchor on a random base tuple, then star out dimensions — this
         mirrors the paper's workload where a good share of queries have
         non-empty answers. *)
      let anchor = Table.tuple base (Qc_util.Rng.int rng n) in
      Array.init d (fun i ->
          if Qc_util.Rng.float rng 1.0 < star_prob then Cell.all else anchor.(i)))

let random_range_queries ~seed ?(range_dims = (1, 3)) ?(values_per_range = 3) base k =
  let rng = Qc_util.Rng.create seed in
  let d = Table.n_dims base in
  let n = Table.n_rows base in
  let lo_r, hi_r = range_dims in
  List.init k (fun _ ->
      let n_ranges = lo_r + Qc_util.Rng.int rng (hi_r - lo_r + 1) in
      let dims = Array.init d Fun.id in
      Qc_util.Rng.shuffle rng dims;
      let range_set = Array.sub dims 0 (min n_ranges d) in
      let anchor = Table.tuple base (Qc_util.Rng.int rng n) in
      Array.init d (fun i ->
          if Array.exists (( = ) i) range_set then begin
            let card = Schema.cardinality (Table.schema base) i in
            if values_per_range = 0 then Array.init card (fun v -> v + 1)
            else begin
              (* A few distinct values, anchored so ranges often hit data. *)
              let seen = Hashtbl.create 4 in
              Hashtbl.replace seen anchor.(i) ();
              while Hashtbl.length seen < min values_per_range card do
                Hashtbl.replace seen (1 + Qc_util.Rng.int rng card) ()
              done;
              let vs = Hashtbl.fold (fun v () acc -> v :: acc) seen [] in
              Array.of_list (List.sort Int.compare vs)
            end
          end
          else if Qc_util.Rng.bool rng then [||]
          else [| anchor.(i) |]))
