(** Dwarf: a prefix- and suffix-coalesced store of the full data cube
    (Sismanis, Deligiannakis, Roussopoulos & Kotidis, SIGMOD 2002) — the
    comparison system of the QC-tree paper's evaluation ("[25]").

    One level per dimension, in schema order.  A node holds one cell per
    distinct value of its dimension within its tuple range plus an ALL cell;
    a non-leaf cell points to the node for the next dimension, a leaf cell
    holds the aggregate.  Prefix redundancy is eliminated because siblings
    with a common prefix share the path above them; suffix redundancy is
    eliminated by coalescing: structurally identical sub-dwarfs are stored
    once (hash-consing), which subsumes the single-tuple rule — the ALL cell
    of a one-value node shares that value's sub-dwarf.

    A point query touches exactly [n] nodes for an [n]-dimensional cube —
    the property the paper contrasts with QC-tree paths, which are usually
    shorter.  The paper's authors reimplemented Dwarf ("the original code
    was unavailable"); so do we, from the SIGMOD 2002 description. *)

open Qc_cube

type t

type coalescing =
  | Hash_cons  (** full structural suffix coalescing (the default) *)
  | Single_cell  (** only the single-value-node rule of the SIGMOD'02 paper *)
  | No_coalescing  (** prefix sharing only — the ablation baseline *)

val build : ?coalescing:coalescing -> Table.t -> t
(** Construct the Dwarf of the full data cube of [table].  [coalescing]
    weakens the suffix-sharing strategy for the ablation benchmark; queries
    are unaffected. *)

val schema : t -> Schema.t

val point : t -> Cell.t -> Agg.t option
(** Aggregate of a cell, or [None] when its cover set is empty. *)

val point_value : t -> Agg.func -> Cell.t -> float option

type range = int array array
(** Same convention as {!Qc_core.Query.range}: [[||]] per dimension means
    [*], otherwise the enumerated values of the range. *)

val range : t -> range -> (Cell.t * Agg.t) list
(** All cells of the range present in the cube, with aggregates. *)

val n_nodes : t -> int
(** Distinct (shared nodes counted once) nodes. *)

val n_cells : t -> int
(** Distinct stored cells, ALL cells included. *)

val bytes : t -> int
(** Storage size under the shared byte-cost model: per node one header word;
    per cell one value plus one pointer (inner) or one measure (leaf); ALL
    cells cost a pointer/measure only.  Coalesced sub-dwarfs are counted
    once. *)

val node_accesses : t -> Cell.t -> int
(** Number of node visits the point query performs, counted by replaying
    the descent (for the Figure 13 discussion: a hit visits exactly one
    node per dimension; a miss stops at the level that has no route).
    @raise Invalid_argument on arity mismatch. *)

module Backend : Qc_core.Engine.BACKEND with type t = t
(** The Dwarf instance of the engine seam, so the baseline is benchable
    and differentially testable through the same interface as the QC-tree
    backends.  [iceberg] answers [Error (Unsupported _)]: Dwarf stores the
    cells of the full cube, not class upper bounds, and enumerating the
    full cube would not be the paper's comparison. *)
