open Qc_cube
module Metrics = Qc_util.Metrics

(* Construction-side work counters for the comparison system: distinct
   nodes materialized vs sub-dwarfs shared by suffix coalescing — the
   tradeoff Figures 12 and 15 measure in bytes. *)
let m_nodes = Metrics.counter "dwarf.nodes_created"

let m_coalesce = Metrics.counter "dwarf.coalesce_hits"

let m_point = Metrics.counter "dwarf.point"

type node =
  | Inner of {
      id : int;
      keys : int array;  (** sorted dimension values *)
      kids : node array;
      all : node;  (** sub-dwarf with this dimension generalized *)
    }
  | Leaf of {
      id : int;
      keys : int array;
      aggs : Agg.t array;
      all : Agg.t;
    }

type t = {
  schema : Schema.t;
  root : node option;
  dims : int;
}

let node_id = function Inner { id; _ } -> id | Leaf { id; _ } -> id

type coalescing = Hash_cons | Single_cell | No_coalescing

let build ?(coalescing = Hash_cons) table =
  let schema = Table.schema table in
  let d = Table.n_dims table in
  let n = Table.n_rows table in
  let counter = ref 0 in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  (* Suffix coalescing by hash-consing: structurally identical sub-dwarfs
     are stored once.  The immediate single-cell rule (ALL of a one-value
     node is that value's sub-dwarf) falls out as a special case.  The
     weaker modes exist for the ablation benchmark. *)
  let memoize = coalescing = Hash_cons in
  let leaf_memo : (int array * Agg.t array * Agg.t, node) Hashtbl.t = Hashtbl.create 4096 in
  let inner_memo : (int array * int array * int, node) Hashtbl.t = Hashtbl.create 4096 in
  let cons_leaf keys aggs all =
    let key = (keys, aggs, all) in
    match (if memoize then Hashtbl.find_opt leaf_memo key else None) with
    | Some node ->
      Metrics.incr m_coalesce;
      node
    | None ->
      Metrics.incr m_nodes;
      let node = Leaf { id = fresh (); keys; aggs; all } in
      if memoize then Hashtbl.replace leaf_memo key node;
      node
  in
  let cons_inner keys kids all =
    let key = (keys, Array.map node_id kids, node_id all) in
    match (if memoize then Hashtbl.find_opt inner_memo key else None) with
    | Some node ->
      Metrics.incr m_coalesce;
      node
    | None ->
      Metrics.incr m_nodes;
      let node = Inner { id = fresh (); keys; kids; all } in
      if memoize then Hashtbl.replace inner_memo key node;
      node
  in
  let root =
    if n = 0 then None
    else begin
      let idx = Table.all_indices table in
      let rec make lo hi level =
        let groups = Table.partition_by_dim table idx ~lo ~hi ~dim:level in
        if level = d - 1 then begin
          let keys = Array.of_list (List.map (fun (v, _, _) -> v) groups) in
          let aggs =
            Array.of_list
              (List.map (fun (_, glo, ghi) -> Table.agg_of_range table idx ~lo:glo ~hi:ghi) groups)
          in
          let all = Array.fold_left Agg.merge Agg.empty aggs in
          cons_leaf keys aggs all
        end
        else begin
          let cells =
            List.map (fun (v, glo, ghi) -> (v, make glo ghi (level + 1))) groups
          in
          let keys = Array.of_list (List.map fst cells) in
          let kids = Array.of_list (List.map snd cells) in
          let all =
            match kids with
            | [| only |] when coalescing <> No_coalescing -> only
            | _ -> make lo hi (level + 1)
          in
          cons_inner keys kids all
        end
      in
      Some (make 0 n 0)
    end
  in
  { schema; root; dims = d }

let schema t = t.schema

let find_key keys v =
  (* Binary search in the sorted key array. *)
  let lo = ref 0 and hi = ref (Array.length keys) in
  let found = ref (-1) in
  while !lo < !hi && !found < 0 do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) = v then found := mid
    else if keys.(mid) < v then lo := mid + 1
    else hi := mid
  done;
  if !found < 0 then None else Some !found

let point t cell =
  if Array.length cell <> t.dims then invalid_arg "Dwarf.point: arity mismatch";
  Metrics.incr m_point;
  let rec go node level =
    match node with
    | Leaf { keys; aggs; all; _ } ->
      if cell.(level) = Cell.all then Some all
      else Option.map (fun i -> aggs.(i)) (find_key keys cell.(level))
    | Inner { keys; kids; all; _ } ->
      if cell.(level) = Cell.all then go all (level + 1)
      else (
        match find_key keys cell.(level) with
        | Some i -> go kids.(i) (level + 1)
        | None -> None)
  in
  Option.bind t.root (fun root -> go root 0)

let point_value t func cell = Option.map (Agg.value func) (point t cell)

type range = int array array

let range t (q : range) =
  if Array.length q <> t.dims then invalid_arg "Dwarf.range: arity mismatch";
  let results = ref [] in
  let inst = Cell.make_all t.dims in
  let emit agg = results := (Cell.copy inst, agg) :: !results in
  let rec go node level =
    match node with
    | Leaf { keys; aggs; all; _ } ->
      if Array.length q.(level) = 0 then emit all
      else
        Array.iter
          (fun v ->
            match find_key keys v with
            | Some i ->
              inst.(level) <- v;
              emit aggs.(i);
              inst.(level) <- Cell.all
            | None -> ())
          q.(level)
    | Inner { keys; kids; all; _ } ->
      if Array.length q.(level) = 0 then go all (level + 1)
      else
        Array.iter
          (fun v ->
            match find_key keys v with
            | Some i ->
              inst.(level) <- v;
              go kids.(i) (level + 1);
              inst.(level) <- Cell.all
            | None -> ())
          q.(level)
  in
  Option.iter (fun root -> go root 0) t.root;
  List.rev !results

(* Fold over distinct nodes (coalesced sub-dwarfs visited once). *)
let fold_nodes f t init =
  let seen = Hashtbl.create 1024 in
  let acc = ref init in
  let rec go node =
    let id = node_id node in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      acc := f !acc node;
      match node with
      | Inner { kids; all; _ } ->
        Array.iter go kids;
        go all
      | Leaf _ -> ()
    end
  in
  Option.iter go t.root;
  !acc

let n_nodes t = fold_nodes (fun acc _ -> acc + 1) t 0

let n_cells t =
  fold_nodes
    (fun acc node ->
      match node with
      | Inner { keys; _ } -> acc + Array.length keys + 1
      | Leaf { keys; _ } -> acc + Array.length keys + 1)
    t 0

let bytes t =
  let open Qc_util.Size in
  fold_nodes
    (fun acc node ->
      match node with
      | Inner { keys; _ } ->
        acc + pointer_bytes (* header *)
        + (Array.length keys * (value_bytes + pointer_bytes))
        + pointer_bytes (* ALL cell *)
      | Leaf { keys; _ } ->
        acc + pointer_bytes
        + (Array.length keys * (value_bytes + measure_bytes))
        + measure_bytes)
    t 0

let node_accesses t cell =
  if Array.length cell <> t.dims then invalid_arg "Dwarf.node_accesses: arity mismatch";
  (* Count the nodes the point descent actually touches: one per level on a
     hit — the "exactly n nodes" property of Sec. 6.2 — and a shorter
     prefix when the search misses partway down. *)
  match t.root with
  | None -> 0
  | Some root ->
    let rec go node level acc =
      let acc = acc + 1 in
      match node with
      | Leaf _ -> acc
      | Inner { keys; kids; all; _ } ->
        if cell.(level) = Cell.all then go all (level + 1) acc
        else (
          match find_key keys cell.(level) with
          | Some i -> go kids.(i) (level + 1) acc
          | None -> acc)
    in
    go root 0 0

(* ---------- the Engine instance ----------

   Dwarf stores every cell of the full cube, so a point answer's "class"
   is the queried cell itself; iceberg queries over class upper bounds
   have no Dwarf analogue and are reported as unsupported rather than
   faked by enumerating the exponential full cube. *)

module E = Qc_core.Engine

module Backend = struct
  type nonrec t = t

  let name = "dwarf"

  let schema = schema

  let describe t =
    Printf.sprintf "Dwarf full cube: %d nodes, %d cells, %d dimensions" (n_nodes t)
      (n_cells t) t.dims

  let arity t width =
    if t.dims <> width then Error (E.Arity_mismatch { expected = t.dims; got = width })
    else Ok ()

  let point t cell =
    match arity t (Array.length cell) with
    | Error _ as e -> e
    | Ok () -> (
      match point t cell with
      | Some agg -> Ok agg
      | None -> Error (E.Empty_cover (Cell.copy cell)))

  let range t q =
    match arity t (Array.length q) with Error _ as e -> e | Ok () -> Ok (range t q)

  let iceberg _t _func ~threshold =
    ignore threshold;
    Error (E.Unsupported { backend = name; operation = "iceberg queries" })

  (* The descent synthesized as an explanation: a matched key is the
     analogue of a labeled tree edge, following an ALL pointer the
     analogue of descending, and a missing key a no-route miss on that
     dimension. *)
  let explain t cell =
    match arity t (Array.length cell) with
    | Error _ as e -> e
    | Ok () ->
      let steps = ref [] in
      let prefix = Cell.make_all t.dims in
      let push kind level label =
        if label <> Cell.all then prefix.(level) <- label;
        steps :=
          {
            E.step_kind = kind;
            E.step_dim = level;
            E.step_label = label;
            E.step_cell = Cell.copy prefix;
          }
          :: !steps
      in
      let finish outcome answer =
        Ok
          {
            E.x_cell = Cell.copy cell;
            E.x_steps = List.rev !steps;
            E.x_outcome = outcome;
            E.x_answer = answer;
          }
      in
      let rec go node level =
        match node with
        | Leaf { keys; aggs; all; _ } ->
          if cell.(level) = Cell.all then finish Qc_core.Query.Hit (Some (Cell.copy cell, all))
          else (
            match find_key keys cell.(level) with
            | Some i -> finish Qc_core.Query.Hit (Some (Cell.copy cell, aggs.(i)))
            | None -> finish (Qc_core.Query.Miss_no_route level) None)
        | Inner { keys; kids; all; _ } ->
          if cell.(level) = Cell.all then begin
            push Qc_core.Query.Descend level Cell.all;
            go all (level + 1)
          end
          else (
            match find_key keys cell.(level) with
            | Some i ->
              push Qc_core.Query.Tree_edge level cell.(level);
              go kids.(i) (level + 1)
            | None -> finish (Qc_core.Query.Miss_no_route level) None)
      in
      (match t.root with
      | None -> finish (Qc_core.Query.Miss_no_route 0) None
      | Some root -> go root 0)

  let node_accesses t cell =
    match arity t (Array.length cell) with
    | Error _ as e -> e
    | Ok () -> Ok (node_accesses t cell)
end
