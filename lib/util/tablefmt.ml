type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
  mutable notes : string list;
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Tablefmt.add_row: arity mismatch with header";
  t.rows <- row :: t.rows

let note t s = t.notes <- s :: t.notes

(* Rendering returns a string rather than printing: stdout writes belong to
   bin/ and bench/ (qclint's stdout-in-lib rule), and a pure renderer can be
   diffed in tests. *)
let to_string t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "\n== %s ==\n%s\n%s\n" t.title (render t.columns) sep);
  List.iter (fun row -> Buffer.add_string buf (render row ^ "\n")) rows;
  List.iter (fun s -> Buffer.add_string buf ("   note: " ^ s ^ "\n")) (List.rev t.notes);
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  let quote cell =
    if String.contains cell ',' then "\"" ^ cell ^ "\"" else cell
  in
  let row cells = String.concat "," (List.map quote cells) ^ "\n" in
  Buffer.add_string buf (row t.columns);
  List.iter (fun r -> Buffer.add_string buf (row r)) (List.rev t.rows);
  Buffer.contents buf

let title t = t.title

let columns t = t.columns

let rows t = List.rev t.rows

let to_json t =
  Jsonx.Obj
    [
      ("title", Jsonx.String t.title);
      ("columns", Jsonx.List (List.map (fun c -> Jsonx.String c) t.columns));
      ( "rows",
        Jsonx.List
          (List.map (fun r -> Jsonx.List (List.map (fun c -> Jsonx.String c) r)) (rows t)) );
    ]

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4f" x

let cell_i = string_of_int

let cell_ratio x = Printf.sprintf "%.2f%%" (100.0 *. x)
