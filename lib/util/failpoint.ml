type mode = Raise | Crash | Torn | Sleep of int

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected label -> Some (Printf.sprintf "Failpoint.Injected(%s)" label)
    | _ -> None)

let exit_code = 42

(* Both tables are process-global and probed from every Domain that crosses
   a durability site; one mutex keeps them coherent.  Sites are cold paths
   (file I/O dwarfs the lock), so the protection is free in practice. *)
let lock = Mutex.create ()

(* Site labels declared by the instrumented modules, for enumeration by the
   crash suite. *)
let registry : (string, unit) Hashtbl.t = Hashtbl.create 32

(* label -> (hits remaining before firing, mode) *)
let armed : (string, int ref * mode) Hashtbl.t = Hashtbl.create 8

let register label = Mutex.protect lock (fun () -> Hashtbl.replace registry label ())

let registered () =
  Mutex.protect lock (fun () ->
      List.sort String.compare (Hashtbl.fold (fun l () acc -> l :: acc) registry []))

let set ?(hits = 1) label mode =
  if hits < 1 then invalid_arg "Failpoint.set: hits must be >= 1";
  Mutex.protect lock (fun () -> Hashtbl.replace armed label (ref hits, mode))

let unset label = Mutex.protect lock (fun () -> Hashtbl.remove armed label)

let reset () = Mutex.protect lock (fun () -> Hashtbl.reset armed)

let sleep_prefix = "sleep-"

let mode_of_string s =
  match s with
  | "raise" -> Some Raise
  | "crash" -> Some Crash
  | "torn" -> Some Torn
  | _ ->
    if String.starts_with ~prefix:sleep_prefix s then
      let ms = String.sub s (String.length sleep_prefix) (String.length s - String.length sleep_prefix) in
      match int_of_string_opt ms with
      | Some n when n >= 0 -> Some (Sleep n)
      | Some _ | None -> None
    else None

let parse spec =
  let items = List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec)) in
  let parse_item item =
    match String.split_on_char ':' item with
    | [ site; mode_s ] -> (
      let label, hits =
        match String.index_opt site '@' with
        | None -> (site, Ok 1)
        | Some i ->
          let h = String.sub site (i + 1) (String.length site - i - 1) in
          ( String.sub site 0 i,
            match int_of_string_opt h with
            | Some n when n >= 1 -> Ok n
            | Some _ | None -> Error (Printf.sprintf "bad hit count %S in %S" h item) )
      in
      match (hits, mode_of_string mode_s) with
      | Error e, _ -> Error e
      | Ok _, None ->
        Error (Printf.sprintf "unknown mode %S in %S (raise|crash|torn|sleep-MS)" mode_s item)
      | Ok h, Some m ->
        if label = "" then Error (Printf.sprintf "empty label in %S" item)
        else Ok (label, h, m))
    | _ -> Error (Printf.sprintf "malformed failpoint %S (want label[@hit]:mode)" item)
  in
  List.fold_left
    (fun acc item ->
      match (acc, parse_item item) with
      | Error e, _ -> Error e
      | Ok _, Error e -> Error e
      | Ok l, Ok x -> Ok (x :: l))
    (Ok []) items
  |> Result.map List.rev

let arm_from_spec spec =
  Result.map (List.iter (fun (label, hits, mode) -> set ~hits label mode)) (parse spec)

(* Power loss: no buffer flushing, no at_exit. *)
let crash () = Unix._exit exit_code

let check label =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt armed label with
      | None -> None
      | Some (remaining, mode) ->
        decr remaining;
        if !remaining > 0 then None
        else begin
          Hashtbl.remove armed label;
          Some mode
        end)

(* Outside the registry lock: a stalled site must not block other domains
   from probing their own failpoints (the whole point of Sleep is to model
   one slow actor while the rest of the system keeps moving). *)
let stall ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)

let hit label =
  match check label with
  | None -> ()
  | Some Raise -> raise (Injected label)
  | Some (Crash | Torn) -> crash ()
  | Some (Sleep ms) -> stall ms

(* Arm from the environment once at program start.  A malformed spec is a
   configuration error: report it loudly rather than silently running the
   workload un-instrumented (a crash test would then "pass" vacuously). *)
let () =
  match Sys.getenv_opt "QC_FAILPOINTS" with
  | None -> ()
  | Some spec -> (
    match arm_from_spec spec with
    | Ok () -> ()
    | Error e ->
      prerr_endline ("QC_FAILPOINTS: " ^ e);
      exit 2)
