(* Hierarchical span tracing with per-Domain buffers.

   The design mirrors Metrics: one global enable flag, all mutable state
   in Domain-local storage, and an explicit drain/absorb protocol so the
   batch executor can merge worker spans deterministically (workers drain
   before finishing, the coordinator absorbs in chunk order).  A span
   records the monotonic start/duration (Clock), the Domain it ran on and
   a list of typed attributes; nesting is implied by interval containment
   within a Domain, which is exactly the Chrome trace-event model.

   When disabled, [with_span] is one Atomic.get and a direct call of the
   body — no allocation, no clock read — so instrumentation can stay in
   place permanently. *)

type value = Int of int | Float of float | String of string | Bool of bool

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_args : (string * value) list;
}

type delta = span list (* chronological *)

let on = Atomic.make false

let set_enabled b = Atomic.set on b

let enabled () = Atomic.get on

(* an open (not yet finished) span; args accumulate in reverse *)
type open_span = {
  os_name : string;
  os_cat : string;
  os_start : int;
  mutable os_args : (string * value) list;
}

type local = {
  mutable stack : open_span list;  (* innermost first *)
  mutable acc : span list;  (* finished spans, most recent first *)
}

let key = Domain.DLS.new_key (fun () -> { stack = []; acc = [] })

let my_tid () = (Domain.self () :> int)

let with_span ?(cat = "qc") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let l = Domain.DLS.get key in
    let o = { os_name = name; os_cat = cat; os_start = Clock.now_ns (); os_args = List.rev args } in
    l.stack <- o :: l.stack;
    let finish () =
      let dur = Clock.now_ns () - o.os_start in
      (match l.stack with
      | top :: rest when top == o -> l.stack <- rest
      | _ -> l.stack <- List.filter (fun s -> s != o) l.stack);
      l.acc <-
        {
          sp_name = o.os_name;
          sp_cat = o.os_cat;
          sp_tid = my_tid ();
          sp_start_ns = o.os_start;
          sp_dur_ns = dur;
          sp_args = List.rev o.os_args;
        }
        :: l.acc
    in
    match f () with
    | x ->
        finish ();
        x
    | exception e ->
        finish ();
        raise e
  end

let add_attr k v =
  if Atomic.get on then
    let l = Domain.DLS.get key in
    match l.stack with [] -> () | o :: _ -> o.os_args <- (k, v) :: o.os_args

let drain () =
  let l = Domain.DLS.get key in
  let d = List.rev l.acc in
  l.acc <- [];
  d

let absorb d =
  let l = Domain.DLS.get key in
  l.acc <- List.rev_append d l.acc

let reset () =
  let l = Domain.DLS.get key in
  l.stack <- [];
  l.acc <- []

let spans () = List.rev (Domain.DLS.get key).acc

let span_count () = List.length (Domain.DLS.get key).acc

let value_to_json = function
  | Int i -> Jsonx.Int i
  | Float f -> Jsonx.Float f
  | String s -> Jsonx.String s
  | Bool b -> Jsonx.Bool b

let pid = 1

let to_chrome_json ?(process_name = "qct") () =
  let ss = spans () in
  (* stable order: by start time, then Domain, then name — deterministic
     output for a deterministic span multiset *)
  let ss =
    List.stable_sort
      (fun a b ->
        let c = Int.compare a.sp_start_ns b.sp_start_ns in
        if c <> 0 then c
        else
          let c = Int.compare a.sp_tid b.sp_tid in
          if c <> 0 then c else String.compare a.sp_name b.sp_name)
      ss
  in
  let t0 = match ss with [] -> 0 | s :: _ -> s.sp_start_ns in
  let tids = List.sort_uniq Int.compare (List.map (fun s -> s.sp_tid) ss) in
  let meta name t_id args =
    Jsonx.Obj
      [
        ("name", Jsonx.String name);
        ("ph", Jsonx.String "M");
        ("pid", Jsonx.Int pid);
        ("tid", Jsonx.Int t_id);
        ("args", Jsonx.Obj args);
      ]
  in
  let metadata =
    meta "process_name" 0 [ ("name", Jsonx.String process_name) ]
    :: List.map
         (fun t -> meta "thread_name" t [ ("name", Jsonx.String (Printf.sprintf "domain-%d" t)) ])
         tids
  in
  let event s =
    Jsonx.Obj
      [
        ("name", Jsonx.String s.sp_name);
        ("cat", Jsonx.String s.sp_cat);
        ("ph", Jsonx.String "X");
        ("ts", Jsonx.Float (Clock.ns_to_us (s.sp_start_ns - t0)));
        ("dur", Jsonx.Float (Clock.ns_to_us s.sp_dur_ns));
        ("pid", Jsonx.Int pid);
        ("tid", Jsonx.Int s.sp_tid);
        ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, value_to_json v)) s.sp_args));
      ]
  in
  Jsonx.List (metadata @ List.map event ss)
