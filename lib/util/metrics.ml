(* Instrument descriptors are global and immutable; the recorded values
   live in domain-local storage.  Registration assigns each instrument a
   dense id under a mutex; [incr]/[observe] then index the calling
   domain's value arrays, so parallel query execution (Engine.run_batch)
   records without contention and the per-domain tallies are merged
   deterministically after the join via [drain]/[absorb]. *)

type counter = { c_id : int }

type gauge = { g_id : int }

type histogram = { h_id : int; h_bounds : int array }

let on = Atomic.make false

let set_enabled b = Atomic.set on b

let enabled () = Atomic.get on

let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let n_counters = ref 0

let n_gauges = ref 0

let n_histograms = ref 0

let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_id = !n_counters } in
        Stdlib.incr n_counters;
        Hashtbl.replace counters name c;
        c)

let gauge name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
        let g = { g_id = !n_gauges } in
        Stdlib.incr n_gauges;
        Hashtbl.replace gauges name g;
        g)

let default_buckets = [| 1; 2; 4; 8; 16; 32; 64; 128 |]

let histogram ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to Array.length buckets - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h ->
        if not (Array.for_all2 Int.equal h.h_bounds buckets) then
          invalid_arg
            (Printf.sprintf "Metrics.histogram: %S already registered with different buckets"
               name);
        h
      | None ->
        let h = { h_id = !n_histograms; h_bounds = Array.copy buckets } in
        Stdlib.incr n_histograms;
        Hashtbl.replace histograms name h;
        h)

(* ---------- per-domain storage ---------- *)

type hist_cells = {
  hc_counts : int array;  (* length = bounds + 1; last is overflow *)
  mutable hc_total : int;
  mutable hc_sum : int;
  mutable hc_max : int;
  (* every observation, verbatim, so snapshots report exact (not
     bucket-interpolated) percentiles; grows by doubling and is retained
     only while recording is enabled *)
  mutable hc_samples : int array;
  mutable hc_len : int;
}

type local = {
  mutable lc : int array;  (* counter values, indexed by c_id *)
  mutable lg : int array;  (* gauge current values, indexed by g_id *)
  mutable lgp : int array;  (* gauge peak values, indexed by g_id *)
  mutable lh : hist_cells option array;  (* indexed by h_id *)
}

let local_key = Domain.DLS.new_key (fun () -> { lc = [||]; lg = [||]; lgp = [||]; lh = [||] })

let grow_counters l id =
  let cap = max 8 (max (id + 1) (2 * Array.length l.lc)) in
  let a = Array.make cap 0 in
  Array.blit l.lc 0 a 0 (Array.length l.lc);
  l.lc <- a

let grow_gauges l id =
  let cap = max 8 (max (id + 1) (2 * Array.length l.lg)) in
  let a = Array.make cap 0 in
  Array.blit l.lg 0 a 0 (Array.length l.lg);
  l.lg <- a;
  let p = Array.make cap 0 in
  Array.blit l.lgp 0 p 0 (Array.length l.lgp);
  l.lgp <- p

let grow_hists l id =
  let cap = max 4 (max (id + 1) (2 * Array.length l.lh)) in
  let a = Array.make cap None in
  Array.blit l.lh 0 a 0 (Array.length l.lh);
  l.lh <- a

let[@inline] counter_cell l id =
  if id >= Array.length l.lc then grow_counters l id;
  l

let[@inline] gauge_cell l id =
  if id >= Array.length l.lg then grow_gauges l id;
  l

let hist_cells l (h : histogram) =
  if h.h_id >= Array.length l.lh then grow_hists l h.h_id;
  match l.lh.(h.h_id) with
  | Some hc -> hc
  | None ->
    let hc =
      {
        hc_counts = Array.make (Array.length h.h_bounds + 1) 0;
        hc_total = 0;
        hc_sum = 0;
        hc_max = 0;
        hc_samples = [||];
        hc_len = 0;
      }
    in
    l.lh.(h.h_id) <- Some hc;
    hc

let[@inline] incr c =
  if Atomic.get on then begin
    let l = counter_cell (Domain.DLS.get local_key) c.c_id in
    l.lc.(c.c_id) <- l.lc.(c.c_id) + 1
  end

let[@inline] add c n =
  if Atomic.get on then begin
    let l = counter_cell (Domain.DLS.get local_key) c.c_id in
    l.lc.(c.c_id) <- l.lc.(c.c_id) + n
  end

let value c =
  let l = Domain.DLS.get local_key in
  if c.c_id < Array.length l.lc then l.lc.(c.c_id) else 0

let[@inline] set_gauge g v =
  if Atomic.get on then begin
    let l = gauge_cell (Domain.DLS.get local_key) g.g_id in
    l.lg.(g.g_id) <- v;
    if v > l.lgp.(g.g_id) then l.lgp.(g.g_id) <- v
  end

let gauge_value g =
  let l = Domain.DLS.get local_key in
  if g.g_id < Array.length l.lg then l.lg.(g.g_id) else 0

let gauge_peak g =
  let l = Domain.DLS.get local_key in
  if g.g_id < Array.length l.lgp then l.lgp.(g.g_id) else 0

let observe h x =
  if Atomic.get on then begin
    let hc = hist_cells (Domain.DLS.get local_key) h in
    let k = Array.length h.h_bounds in
    (* linear scan: bucket arrays are tiny and typically hit early *)
    let rec slot i = if i >= k || x <= h.h_bounds.(i) then i else slot (i + 1) in
    let i = slot 0 in
    hc.hc_counts.(i) <- hc.hc_counts.(i) + 1;
    hc.hc_total <- hc.hc_total + 1;
    hc.hc_sum <- hc.hc_sum + x;
    if x > hc.hc_max then hc.hc_max <- x;
    if hc.hc_len >= Array.length hc.hc_samples then begin
      let cap = max 16 (2 * Array.length hc.hc_samples) in
      let a = Array.make cap 0 in
      Array.blit hc.hc_samples 0 a 0 hc.hc_len;
      hc.hc_samples <- a
    end;
    hc.hc_samples.(hc.hc_len) <- x;
    hc.hc_len <- hc.hc_len + 1
  end

(* ---------- cross-domain merge ---------- *)

type hist_delta = {
  dh_counts : int array;
  dh_total : int;
  dh_sum : int;
  dh_max : int;
  dh_samples : int array;  (* exact observations, in recording order *)
}

type delta = {
  d_counters : (int * int) list;  (* (c_id, value), non-zero only *)
  d_gauges : (int * int * int) list;  (* (g_id, current, peak), non-zero only *)
  d_hists : (int * hist_delta) list;  (* (h_id, cells), non-empty only *)
}

let drain () =
  let l = Domain.DLS.get local_key in
  let d_counters = ref [] in
  Array.iteri
    (fun id v ->
      if v <> 0 then begin
        d_counters := (id, v) :: !d_counters;
        l.lc.(id) <- 0
      end)
    l.lc;
  let d_gauges = ref [] in
  Array.iteri
    (fun id v ->
      let p = l.lgp.(id) in
      if v <> 0 || p <> 0 then begin
        d_gauges := (id, v, p) :: !d_gauges;
        l.lg.(id) <- 0;
        l.lgp.(id) <- 0
      end)
    l.lg;
  let d_hists = ref [] in
  Array.iteri
    (fun id slot ->
      match slot with
      | Some hc when hc.hc_total <> 0 ->
        d_hists :=
          ( id,
            {
              dh_counts = Array.copy hc.hc_counts;
              dh_total = hc.hc_total;
              dh_sum = hc.hc_sum;
              dh_max = hc.hc_max;
              dh_samples = Array.sub hc.hc_samples 0 hc.hc_len;
            } )
          :: !d_hists;
        Array.fill hc.hc_counts 0 (Array.length hc.hc_counts) 0;
        hc.hc_total <- 0;
        hc.hc_sum <- 0;
        hc.hc_max <- 0;
        hc.hc_len <- 0
      | Some _ | None -> ())
    l.lh;
  { d_counters = !d_counters; d_gauges = !d_gauges; d_hists = !d_hists }

let absorb d =
  let l = Domain.DLS.get local_key in
  List.iter
    (fun (id, v) ->
      let l = counter_cell l id in
      l.lc.(id) <- l.lc.(id) + v)
    d.d_counters;
  (* gauges are levels, not totals: merging takes the max of the two
     sides for both current and peak, so a worker's momentary depth never
     sums with the coordinator's into a level nobody observed *)
  List.iter
    (fun (id, v, p) ->
      let l = gauge_cell l id in
      if v > l.lg.(id) then l.lg.(id) <- v;
      if p > l.lgp.(id) then l.lgp.(id) <- p)
    d.d_gauges;
  List.iter
    (fun (id, (dh : hist_delta)) ->
      (* resolve the descriptor so a fresh slot gets the right bucket count *)
      let h =
        Mutex.protect registry_lock (fun () ->
            Hashtbl.fold
              (fun _ (h : histogram) acc -> if h.h_id = id then Some h else acc)
              histograms None)
      in
      match h with
      | None -> ()
      | Some h ->
        let hc = hist_cells l h in
        Array.iteri (fun i c -> hc.hc_counts.(i) <- hc.hc_counts.(i) + c) dh.dh_counts;
        hc.hc_total <- hc.hc_total + dh.dh_total;
        hc.hc_sum <- hc.hc_sum + dh.dh_sum;
        if dh.dh_max > hc.hc_max then hc.hc_max <- dh.dh_max;
        let n = Array.length dh.dh_samples in
        if n > 0 then begin
          if hc.hc_len + n > Array.length hc.hc_samples then begin
            let cap = max 16 (max (hc.hc_len + n) (2 * Array.length hc.hc_samples)) in
            let a = Array.make cap 0 in
            Array.blit hc.hc_samples 0 a 0 hc.hc_len;
            hc.hc_samples <- a
          end;
          Array.blit dh.dh_samples 0 hc.hc_samples hc.hc_len n;
          hc.hc_len <- hc.hc_len + n
        end)
    d.d_hists

(* ---------- reading back ---------- *)

type hist_snapshot = {
  bounds : int array;
  counts : int array;
  total : int;
  sum : int;
  max_value : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

(* nearest-rank percentile on a sorted sample array: the smallest value
   with at least ceil(p/100 * n) observations at or below it *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    sorted.(rank - 1)
  end

type gauge_snapshot = { current : int; peak : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * gauge_snapshot) list;
  histograms : (string * hist_snapshot) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let l = Domain.DLS.get local_key in
  let cs =
    Hashtbl.fold
      (fun name (c : counter) acc ->
        let v = if c.c_id < Array.length l.lc then l.lc.(c.c_id) else 0 in
        (name, v) :: acc)
      counters []
  in
  let gs =
    Hashtbl.fold
      (fun name (g : gauge) acc ->
        let current = if g.g_id < Array.length l.lg then l.lg.(g.g_id) else 0 in
        let peak = if g.g_id < Array.length l.lgp then l.lgp.(g.g_id) else 0 in
        (name, { current; peak }) :: acc)
      gauges []
  in
  let hs =
    Hashtbl.fold
      (fun name (h : histogram) acc ->
        let s =
          match (if h.h_id < Array.length l.lh then l.lh.(h.h_id) else None) with
          | Some hc ->
            let sorted = Array.sub hc.hc_samples 0 hc.hc_len in
            Array.sort Int.compare sorted;
            {
              bounds = Array.copy h.h_bounds;
              counts = Array.copy hc.hc_counts;
              total = hc.hc_total;
              sum = hc.hc_sum;
              max_value = hc.hc_max;
              p50 = percentile_sorted sorted 50.0;
              p90 = percentile_sorted sorted 90.0;
              p99 = percentile_sorted sorted 99.0;
            }
          | None ->
            {
              bounds = Array.copy h.h_bounds;
              counts = Array.make (Array.length h.h_bounds + 1) 0;
              total = 0;
              sum = 0;
              max_value = 0;
              p50 = 0;
              p90 = 0;
              p99 = 0;
            }
        in
        (name, s) :: acc)
      histograms []
  in
  {
    counters = List.sort by_name cs;
    gauges = List.sort by_name gs;
    histograms = List.sort by_name hs;
  }

let reset () =
  let l = Domain.DLS.get local_key in
  Array.fill l.lc 0 (Array.length l.lc) 0;
  Array.fill l.lg 0 (Array.length l.lg) 0;
  Array.fill l.lgp 0 (Array.length l.lgp) 0;
  Array.iter
    (function
      | Some hc ->
        Array.fill hc.hc_counts 0 (Array.length hc.hc_counts) 0;
        hc.hc_total <- 0;
        hc.hc_sum <- 0;
        hc.hc_max <- 0;
        hc.hc_samples <- [||];
        hc.hc_len <- 0
      | None -> ())
    l.lh

let render () =
  let s = snapshot () in
  let live_counters = List.filter (fun (_, v) -> v <> 0) s.counters in
  let live_gauges = List.filter (fun (_, g) -> g.current <> 0 || g.peak <> 0) s.gauges in
  let live_hists = List.filter (fun (_, h) -> h.total <> 0) s.histograms in
  if List.is_empty live_counters && List.is_empty live_gauges && List.is_empty live_hists
  then "(no metrics recorded)\n"
  else begin
    let width =
      List.fold_left
        (fun acc (name, _) -> max acc (String.length name))
        0
        (live_counters
        @ List.map (fun (n, _) -> (n, 0)) live_gauges
        @ List.map (fun (n, _) -> (n, 0)) live_hists)
    in
    let buf = Buffer.create 512 in
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-*s %12d\n" width name v))
      live_counters;
    List.iter
      (fun (name, g) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s %12d  peak %d\n" width name g.current g.peak))
      live_gauges;
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s %12d obs  mean %.2f  p50 %d  p90 %d  p99 %d  max %d  [" width
             name h.total
             (float_of_int h.sum /. float_of_int h.total)
             h.p50 h.p90 h.p99 h.max_value);
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char buf ' ';
            if i < Array.length h.bounds then
              Buffer.add_string buf (Printf.sprintf "<=%d:%d" h.bounds.(i) c)
            else Buffer.add_string buf (Printf.sprintf ">:%d" c))
          h.counts;
        Buffer.add_string buf "]\n")
      live_hists;
    Buffer.contents buf
  end

let to_json () =
  let s = snapshot () in
  let ints xs = Jsonx.List (List.map (fun i -> Jsonx.Int i) (Array.to_list xs)) in
  Jsonx.Obj
    [
      ("counters", Jsonx.Obj (List.map (fun (n, v) -> (n, Jsonx.Int v)) s.counters));
      ( "gauges",
        Jsonx.Obj
          (List.map
             (fun (n, g) ->
               (n, Jsonx.Obj [ ("value", Jsonx.Int g.current); ("peak", Jsonx.Int g.peak) ]))
             s.gauges) );
      ( "histograms",
        Jsonx.Obj
          (List.map
             (fun (n, h) ->
               ( n,
                 Jsonx.Obj
                   [
                     ("bounds", ints h.bounds);
                     ("counts", ints h.counts);
                     ("total", Jsonx.Int h.total);
                     ("sum", Jsonx.Int h.sum);
                     ("max", Jsonx.Int h.max_value);
                     ("p50", Jsonx.Int h.p50);
                     ("p90", Jsonx.Int h.p90);
                     ("p99", Jsonx.Int h.p99);
                   ] ))
             s.histograms) );
    ]

(* ---------- Prometheus text exposition ---------- *)

let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> () | _ -> Bytes.set b i '_')
    b;
  "qc_" ^ Bytes.to_string b

let to_prometheus () =
  let s = snapshot () in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      (* Prometheus naming convention: cumulative counters carry a
         [_total] suffix; gauges and histogram series never do. *)
      let n = prom_name name ^ "_total" in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    s.counters;
  List.iter
    (fun (name, g) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n g.current);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s_peak gauge\n%s_peak %d\n" n n g.peak))
    s.gauges;
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          if i < Array.length h.bounds then
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n h.bounds.(i) !cum))
        h.counts;
      Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.total);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n h.sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.total);
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s_%s gauge\n%s_%s %d\n" n q n q v))
        [ ("p50", h.p50); ("p90", h.p90); ("p99", h.p99) ])
    s.histograms;
  Buffer.contents buf
