type counter = { mutable v : int }

type histogram = {
  bounds : int array;
  counts : int array;  (* length = Array.length bounds + 1; last is overflow *)
  mutable total : int;
  mutable sum : int;
  mutable max_value : int;
}

let on = ref false

let set_enabled b = on := b

let enabled () = !on

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { v = 0 } in
    Hashtbl.replace counters name c;
    c

let[@inline] incr c = if !on then c.v <- c.v + 1

let[@inline] add c n = if !on then c.v <- c.v + n

let value c = c.v

let default_buckets = [| 1; 2; 4; 8; 16; 32; 64; 128 |]

let histogram ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to Array.length buckets - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  match Hashtbl.find_opt histograms name with
  | Some h ->
    if h.bounds <> buckets then
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S already registered with different buckets" name);
    h
  | None ->
    let h =
      {
        bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        total = 0;
        sum = 0;
        max_value = 0;
      }
    in
    Hashtbl.replace histograms name h;
    h

let observe h x =
  if !on then begin
    let k = Array.length h.bounds in
    (* linear scan: bucket arrays are tiny and typically hit early *)
    let rec slot i = if i >= k || x <= h.bounds.(i) then i else slot (i + 1) in
    let i = slot 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.total <- h.total + 1;
    h.sum <- h.sum + x;
    if x > h.max_value then h.max_value <- x
  end

type hist_snapshot = {
  bounds : int array;
  counts : int array;
  total : int;
  sum : int;
  max_value : int;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let cs = Hashtbl.fold (fun name c acc -> (name, c.v) :: acc) counters [] in
  let hs =
    Hashtbl.fold
      (fun name (h : histogram) acc ->
        ( name,
          {
            bounds = Array.copy h.bounds;
            counts = Array.copy h.counts;
            total = h.total;
            sum = h.sum;
            max_value = h.max_value;
          } )
        :: acc)
      histograms []
  in
  { counters = List.sort by_name cs; histograms = List.sort by_name hs }

let reset () =
  Hashtbl.iter (fun _ c -> c.v <- 0) counters;
  Hashtbl.iter
    (fun _ (h : histogram) ->
      Array.fill h.counts 0 (Array.length h.counts) 0;
      h.total <- 0;
      h.sum <- 0;
      h.max_value <- 0)
    histograms

let render () =
  let s = snapshot () in
  let live_counters = List.filter (fun (_, v) -> v <> 0) s.counters in
  let live_hists = List.filter (fun (_, h) -> h.total <> 0) s.histograms in
  if live_counters = [] && live_hists = [] then "(no metrics recorded)\n"
  else begin
    let width =
      List.fold_left
        (fun acc (name, _) -> max acc (String.length name))
        0
        (live_counters @ List.map (fun (n, _) -> (n, 0)) live_hists)
    in
    let buf = Buffer.create 512 in
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-*s %12d\n" width name v))
      live_counters;
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s %12d obs  mean %.2f  max %d  [" width name h.total
             (float_of_int h.sum /. float_of_int h.total)
             h.max_value);
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char buf ' ';
            if i < Array.length h.bounds then
              Buffer.add_string buf (Printf.sprintf "<=%d:%d" h.bounds.(i) c)
            else Buffer.add_string buf (Printf.sprintf ">:%d" c))
          h.counts;
        Buffer.add_string buf "]\n")
      live_hists;
    Buffer.contents buf
  end

let to_json () =
  let s = snapshot () in
  let ints xs = Jsonx.List (List.map (fun i -> Jsonx.Int i) (Array.to_list xs)) in
  Jsonx.Obj
    [
      ("counters", Jsonx.Obj (List.map (fun (n, v) -> (n, Jsonx.Int v)) s.counters));
      ( "histograms",
        Jsonx.Obj
          (List.map
             (fun (n, h) ->
               ( n,
                 Jsonx.Obj
                   [
                     ("bounds", ints h.bounds);
                     ("counts", ints h.counts);
                     ("total", Jsonx.Int h.total);
                     ("sum", Jsonx.Int h.sum);
                     ("max", Jsonx.Int h.max_value);
                   ] ))
             s.histograms) );
    ]
