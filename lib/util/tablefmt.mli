(** Aligned console tables for the benchmark harness.

    Every experiment of the paper's Section 5 is rendered as one of these
    tables so the output can be compared against the corresponding paper
    figure row by row. *)

type t

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts a table with a caption and header row. *)

val add_row : t -> string list -> unit
(** Append one data row; the row must have as many entries as the header. *)

val note : t -> string -> unit
(** Attach a free-form footnote printed under the table. *)

val to_string : t -> string
(** Render the table with aligned columns, ready for the caller to print.
    (Library code never writes to stdout itself — qclint's [stdout-in-lib]
    rule; the bench harness and CLI do the printing.) *)

val to_csv : t -> string
(** The same table as CSV (header + data rows), for plotting. *)

val title : t -> string

val columns : t -> string list

val rows : t -> string list list
(** Data rows in insertion order (header excluded). *)

val to_json : t -> Jsonx.t
(** [{"title": ..., "columns": [...], "rows": [[...], ...]}] — cells stay
    the formatted strings the console table shows, so JSON and console
    output can be diffed against each other. *)

val cell_f : float -> string
(** Format a float measurement with 4 significant decimals. *)

val cell_i : int -> string

val cell_ratio : float -> string
(** Format a ratio as a percentage with 2 decimals. *)
