let now () = Clock.now_s ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

let time_s f = snd (time f)

let repeat k f =
  if k < 1 then invalid_arg "Timer.repeat: k must be >= 1";
  Array.init k (fun _ -> time_s f)

let mean samples =
  if Array.length samples = 0 then invalid_arg "Timer.mean: empty sample array";
  Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)

let stddev samples =
  if Array.length samples = 0 then invalid_arg "Timer.stddev: empty sample array";
  let m = mean samples in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 samples
    /. float_of_int (Array.length samples)
  in
  sqrt var

let median samples =
  if Array.length samples = 0 then invalid_arg "Timer.median: empty sample array";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  sorted.(Array.length sorted / 2)

let repeat_median k f =
  if k < 1 then invalid_arg "Timer.repeat_median: k must be >= 1";
  median (repeat k f)
