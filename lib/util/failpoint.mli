(** Deterministic fault injection at named durability sites.

    Every place the system makes bytes durable — temp-file writes, fsyncs,
    renames, journal appends — is instrumented with a {e failpoint}: a
    stable label checked at runtime against a table of armed faults.  The
    crash-safety suite enumerates the registered labels and proves that a
    process killed at {e each} site leaves a warehouse that recovers to a
    consistent committed prefix.

    Unarmed failpoints cost one hashtable probe on a cold path (file I/O),
    so the instrumentation stays on in production builds.

    {2 Modes}

    - [Raise] — simulate an I/O error surfaced by the operating system: the
      site raises {!Injected} before performing its side effect, and the
      caller is expected to fail cleanly with its typed error.
    - [Crash] — model power loss: the process dies immediately with
      {!exit_code} via [Unix._exit], without flushing buffers or running
      [at_exit] handlers.
    - [Torn] — model power loss in the middle of a write: the site persists
      a strict prefix of the bytes it was asked to write, then dies as
      [Crash].  At sites that do not write bytes, [Torn] degrades to
      [Crash].
    - [Sleep ms] — model a stall (slow disk, scheduling hiccup): the site
      sleeps for [ms] milliseconds, then proceeds normally.  Used by the
      ingest soak to stretch the background-refreeze window so kills land
      inside it, and to prove readers stay served while a refreeze drags.

    {2 Activation}

    Failpoints arm programmatically ({!set}) or through the environment
    variable [QC_FAILPOINTS], a comma-separated list of
    [label\@hit:mode] items (the [\@hit] part optional, default 1; modes
    are [raise], [crash], [torn], and [sleep-MS] with [MS] milliseconds):

    {v QC_FAILPOINTS='wal.append@2:torn,save.base.rename:crash' v}

    arms the second hit of [wal.append] as a torn write and the first hit
    of [save.base.rename] as a hard crash.  The environment is read once at
    program start. *)

type mode = Raise | Crash | Torn | Sleep of int  (** milliseconds *)

exception Injected of string
(** Raised by a [Raise]-armed site; the payload is the site label.  The
    durability layer converts it into the caller's typed I/O error. *)

val exit_code : int
(** Process exit status used by [Crash] and [Torn]: 42. *)

val register : string -> unit
(** Declare a site label.  Modules register their sites at initialization
    so test harnesses can enumerate every site via {!registered};
    registering the same label twice is harmless. *)

val registered : unit -> string list
(** All declared site labels, sorted. *)

val set : ?hits:int -> string -> mode -> unit
(** [set ~hits label mode] arms [label] to fire on its [hits]-th upcoming
    hit (default 1, i.e. the next one).  Re-arming replaces any previous
    arming of the same label.
    @raise Invalid_argument if [hits < 1]. *)

val unset : string -> unit

val reset : unit -> unit
(** Disarm every failpoint (registrations are kept). *)

val parse : string -> ((string * int * mode) list, string) result
(** Parse a [QC_FAILPOINTS]-syntax specification without arming anything. *)

val arm_from_spec : string -> (unit, string) result
(** Parse and arm. *)

val check : string -> mode option
(** [check label] counts one hit of [label] and returns [Some mode] when
    that hit is the armed one (the failpoint disarms itself as it fires).
    Sites that need mode-specific behaviour — torn writes — call this and
    act on the result; everyone else calls {!hit}. *)

val hit : string -> unit
(** {!check}, then the default action: [Raise] raises {!Injected}; [Crash]
    and [Torn] terminate the process with {!exit_code}; [Sleep ms] sleeps
    [ms] milliseconds and returns. *)

val crash : unit -> 'a
(** Terminate immediately with {!exit_code}, bypassing buffers and
    [at_exit] — the power-loss primitive [Torn] sites call after writing
    their prefix. *)

val stall : int -> unit
(** Sleep the given number of milliseconds — the [Sleep] action, exposed
    for sites that pattern-match on {!check} results and must honour a
    stall themselves. *)
