(** A minimal JSON tree, printer and parser.

    The observability layer (metrics snapshots, [qct stats --json], the
    benchmark harness's [BENCH_PR1.json]) emits machine-readable JSON; this
    module keeps the repository zero-dependency by providing just enough of
    JSON to do that, plus a parser so tests and tooling can round-trip what
    was emitted.  Numbers are split into [Int] and [Float] because work
    counters must survive a round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering (valid JSON; strings are escaped,
    non-finite floats are rendered as [null]). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by humans. *)

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  Integers
    without [.], [e] or [E] parse as [Int]; everything else numeric parses
    as [Float].  Errors carry a character offset. *)

val member : string -> t -> t option
(** [member key json] is the value of [key] when [json] is an [Obj]. *)

val equal : t -> t -> bool
(** Structural equality; [Obj] fields are compared order-insensitively. *)
