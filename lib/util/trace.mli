(** Hierarchical span tracing with per-Domain buffers and Chrome
    trace-event export.

    A {e span} is one timed region of execution — a query, a WAL append, a
    DFS pass — with a name, a category, typed attributes and the Domain it
    ran on.  Spans nest lexically via {!with_span}; nesting is implied by
    interval containment within a Domain, which is exactly the model of the
    Chrome trace-event format ({!to_chrome_json} loads directly in Perfetto
    or [chrome://tracing], one track per Domain).

    Concurrency follows the {!Metrics} discipline: all buffers live in
    Domain-local storage, workers {!drain} their spans before finishing,
    and the coordinator {!absorb}s the deltas in chunk order — so a traced
    parallel batch yields a deterministic span multiset.

    Tracing is globally off by default; a disabled {!with_span} is one
    atomic load plus a direct call of the body (no allocation, no clock
    read), so instrumentation stays in place permanently.  The
    tracer-disabled overhead is measured in [BENCH_PR6.json]. *)

(** Attribute values, kept typed so exports need no stringification at
    record time. *)
type value = Int of int | Float of float | String of string | Bool of bool

type span = {
  sp_name : string;
  sp_cat : string;  (** coarse grouping: ["engine"], ["wal"], ["dfs"], ... *)
  sp_tid : int;  (** the Domain id the span ran on — its track *)
  sp_start_ns : int;  (** monotonic start ({!Clock.now_ns} epoch) *)
  sp_dur_ns : int;
  sp_args : (string * value) list;
}

type delta
(** A drained batch of spans, opaque to callers; produced by {!drain} on a
    worker Domain and merged by {!absorb} on the coordinator. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span.  The span is recorded
    even when [f] raises (the exception is re-raised).  When tracing is
    disabled this is [f ()] with no other work. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span of the calling Domain
    (no-op when disabled or when no span is open) — for values only known
    mid-span, like a result count. *)

val drain : unit -> delta
(** Remove and return the calling Domain's finished spans, oldest first.
    Open spans are unaffected. *)

val absorb : delta -> unit
(** Append a drained delta to the calling Domain's buffer.  Spans keep the
    Domain id they were recorded on, so worker tracks survive the merge. *)

val reset : unit -> unit
(** Discard the calling Domain's buffered and open spans. *)

val spans : unit -> span list
(** The calling Domain's finished spans, oldest first (after a parallel
    batch, the coordinator's buffer holds every absorbed span). *)

val span_count : unit -> int

val to_chrome_json : ?process_name:string -> unit -> Jsonx.t
(** Render {!spans} as a Chrome trace-event JSON array: one [ph:"X"]
    (complete) event per span with [ts]/[dur] in microseconds relative to
    the first span, [tid] = Domain id, plus [ph:"M"] metadata events
    naming the process and one track per Domain. *)
