(** The repository's single monotonic time source.

    All duration measurement (Timer, Trace spans, slow-query latencies)
    reads this clock — a monotonic nanosecond counter with an arbitrary
    epoch, immune to NTP adjustments.  [tools/lint.sh] bans raw
    [Unix.gettimeofday] outside this module so no second clock can creep
    in. *)

val now_ns : unit -> int
(** Monotonic nanoseconds since an arbitrary epoch.  63 bits of
    nanoseconds cover ~292 years of uptime, so [int] is safe on 64-bit
    platforms. *)

val now_s : unit -> float
(** {!now_ns} converted to seconds (same arbitrary epoch); subtract two
    readings for an elapsed-seconds measurement. *)

val ns_to_s : int -> float
(** Convert a nanosecond duration to seconds. *)

val ns_to_us : int -> float
(** Convert a nanosecond duration to (fractional) microseconds — the unit
    of Chrome trace-event timestamps. *)

val wall_s : unit -> float
(** Wall-clock seconds since the Unix epoch — for timestamping artifacts,
    {e never} for measuring durations (it is not monotonic). *)
