(** The designated durability module: every file write in [lib/] and
    [bin/] goes through these fsync'd, failpoint-instrumented helpers
    (enforced by [tools/lint.sh], which bans raw [open_out] / [Sys.rename]
    elsewhere).

    The atomic-write protocol is write-to-temporary, fsync the temporary,
    rename over the target — so a reader never observes a half-written
    file, and a crash at any instant leaves either the old or the new
    complete content.  Renames alone are {e not} durable: callers that
    need the rename itself to survive power loss must also
    {!fsync_dir} the containing directory.

    Each helper takes an optional [?fp] failpoint prefix; when given, the
    individual steps check {!Failpoint} sites derived from it
    ([<fp>.tmp-write], [<fp>.fsync], [<fp>.rename], [<fp>.append]), which
    is how the crash suite kills the process at every durability-relevant
    instruction.  Without [?fp] the write is still atomic and fsync'd,
    just not instrumented. *)

val fsync_dir : string -> unit
(** Flush the directory entry table, making completed renames and creates
    in that directory durable.  File systems that cannot fsync a
    directory handle are tolerated silently. *)

val write_tmp : ?fp:string -> string -> string -> unit
(** [write_tmp path content] writes [content] to [path ^ ".tmp"] and
    fsyncs it, without touching [path].  Failpoints: [<fp>.tmp-write]
    (honours [Torn] by persisting half the bytes and dying),
    [<fp>.fsync]. *)

val commit_tmp : ?fp:string -> string -> unit
(** [commit_tmp path] renames [path ^ ".tmp"] over [path].  Failpoint:
    [<fp>.rename].  Atomic; pair with {!fsync_dir} for durability. *)

val write_file : ?fp:string -> string -> string -> unit
(** {!write_tmp} followed by {!commit_tmp}: the one-call atomic durable
    write used for self-contained files (saved trees, CSV exports). *)

val rename : string -> string -> unit
(** Raw [Sys.rename], housed here so qclint's [durable-raw-write] rule
    keeps renames out of the rest of [lib/] and [bin/].  For moves whose
    source is not a [.tmp] sibling (journal segment rotation); atomic,
    {e not} durable on its own — pair with {!fsync_dir}.  Callers hit
    their own {!Failpoint} labels around the call. *)

val remove : string -> unit
(** Raw [Sys.remove] (same housing rationale as {!rename}): deleting
    journal segments that a committed checkpoint has made redundant.
    Safe to crash around — recovery treats a missing segment as already
    cleaned up. *)

val truncate : ?fp:string -> string -> int -> unit
(** [truncate path len] cuts [path] back to its first [len] bytes — how the
    journal discards a half-written frame after a failed append.  Failpoint:
    [<fp>.truncate].  Like every destructive file operation, it lives here
    so qclint's [durable-raw-write] rule keeps raw [Unix.truncate] out of
    the rest of [lib/] and [bin/]. *)

val open_append : string -> out_channel
(** Open a binary append channel (creating the file at permission 0o644 if
    missing) — the journal's write handle. *)

val fsync_out : out_channel -> unit
(** Flush the channel and fsync its descriptor. *)

val append : ?fp:string -> out_channel -> string -> unit
(** [append oc frame] writes [frame] and makes it durable
    (flush + fsync).  Failpoints: [<fp>.append] ([Torn] persists a strict
    prefix of [frame] and dies; [Raise] fires before any byte is
    written), [<fp>.fsync] ([Raise] fires {e after} the bytes are
    written — the caller must treat the frame as possibly-durable and
    roll it back or fail safe). *)

val read_file : string -> string
(** Whole file as a string.
    @raise Sys_error as the standard library does. *)
