(** CRC-32 checksums (the IEEE 802.3 polynomial used by zlib, PNG and
    gzip).

    The durability layer stamps every write-ahead-journal frame and every
    manifest line with a CRC so that a torn or bit-flipped record is
    detected on recovery rather than replayed as garbage.  Checksums are
    returned as non-negative OCaml [int]s in [0, 2{^32}); the value for a
    given byte string matches zlib's [crc32] exactly, so external tooling
    can cross-check the files. *)

val string : ?init:int -> string -> int
(** [string s] is the CRC-32 of all of [s].  [init] (default [0]) is a
    previously returned checksum, allowing incremental computation:
    [string ~init:(string a) b = string (a ^ b)]. *)

val sub : ?init:int -> string -> pos:int -> len:int -> int
(** Checksum of the substring [s.[pos .. pos+len-1]].
    @raise Invalid_argument if the range is outside [s]. *)
