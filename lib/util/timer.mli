(** Elapsed-time helpers for the benchmark harness, reading the single
    monotonic {!Clock}. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    monotonic seconds. *)

val time_s : (unit -> unit) -> float
(** [time_s f] is the elapsed monotonic seconds of [f ()]. *)

val repeat : int -> (unit -> unit) -> float array
(** [repeat k f] runs [f] [k] times and returns all elapsed-seconds samples,
    in run order; [k] must be at least 1. *)

val mean : float array -> float
(** Arithmetic mean of a non-empty sample array. *)

val stddev : float array -> float
(** Population standard deviation of a non-empty sample array. *)

val median : float array -> float
(** Median of a non-empty sample array (upper median for even sizes);
    sorts a copy with [Float.compare], so it is total even on NaN. *)

val repeat_median : int -> (unit -> unit) -> float
(** [repeat_median k f] runs [f] [k] times and returns the median elapsed
    seconds; [k] must be at least 1. *)
