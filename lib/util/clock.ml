(* The single monotonic time source for the whole repository.

   Every latency we report — Timer samples, Trace spans, slow-query
   thresholds — must come from the same clock, and that clock must be
   monotonic: wall time (gettimeofday) jumps under NTP slew and breaks
   span nesting.  tools/lint.sh rule 8 bans Unix.gettimeofday outside
   this file, so there is exactly one place a clock can be wrong. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let ns_per_s = 1_000_000_000.0

let now_s () = float_of_int (now_ns ()) /. ns_per_s

let ns_to_s ns = float_of_int ns /. ns_per_s

let ns_to_us ns = float_of_int ns /. 1_000.0

(* Wall-clock epoch seconds, for timestamps in logs and manifests (never
   for measuring durations).  Lives here so the lint rule has a single
   sanctioned call site. *)
let wall_s () = Unix.gettimeofday ()
