type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else s

let rec emit ~indent depth buf v =
  let pad d =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * d) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        pad (depth + 1);
        emit ~indent (depth + 1) buf x)
      xs;
    pad depth;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        pad (depth + 1);
        escape buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        emit ~indent (depth + 1) buf x)
      fields;
    pad depth;
    Buffer.add_char buf '}'

let to_buffer ~indent v =
  let buf = Buffer.create 256 in
  emit ~indent 0 buf v;
  buf

let to_string v = Buffer.contents (to_buffer ~indent:false v)

let to_string_pretty v =
  let buf = to_buffer ~indent:true v in
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Err of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Err (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
            in
            (* encode as UTF-8; the emitter only produces codes < 0x20 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail "bad escape");
          go ())
        | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if tok = "" then fail "expected a number"
    else if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Err (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | String x, String y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    let sort = List.sort (fun (k, _) (k', _) -> String.compare k k') in
    let xs = sort xs and ys = sort ys in
    List.length xs = List.length ys
    && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') xs ys
  | _ -> false
