let site fp suffix = match fp with None -> None | Some p -> Some (p ^ "." ^ suffix)

let hit_site fp suffix =
  match site fp suffix with None -> () | Some label -> Failpoint.hit label

let check_site fp suffix =
  match site fp suffix with None -> None | Some label -> Failpoint.check label

let fsync_out oc =
  Trace.with_span ~cat:"fs" "fs.fsync" @@ fun () ->
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        (* some file systems refuse to fsync a directory handle; the
           rename is then as durable as the platform allows *)
        try Unix.fsync fd with Unix.Unix_error ((EINVAL | EBADF | EOPNOTSUPP), _, _) -> ())

(* Write [content] (or, for a torn failpoint, a strict prefix of it) to
   [path], fsync, and for the torn case die afterwards: the prefix is on
   disk, exactly like a write interrupted by power loss mid-stream. *)
let write_raw ~torn path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let len = String.length content in
      let n = if torn then len / 2 else len in
      output_substring oc content 0 n;
      fsync_out oc);
  if torn then Failpoint.crash ()

let write_tmp ?fp path content =
  let tmp = path ^ ".tmp" in
  (match check_site fp "tmp-write" with
  | Some Failpoint.Raise -> raise (Failpoint.Injected (Option.get (site fp "tmp-write")))
  | Some Failpoint.Crash -> Failpoint.crash ()
  | Some Failpoint.Torn -> write_raw ~torn:true tmp content
  | Some (Failpoint.Sleep ms) -> Failpoint.stall ms
  | None -> ());
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc content;
      flush oc;
      (* the fsync site fires between the write and the fsync: a [Crash]
         here models dying with the bytes handed to the OS but not forced
         down *)
      hit_site fp "fsync";
      fsync_out oc)

let commit_tmp ?fp path =
  hit_site fp "rename";
  Sys.rename (path ^ ".tmp") path

(* Raw rename/remove for callers whose source and target are not in the
   tmp-commit shape (journal segment rotation and post-checkpoint segment
   deletion).  Callers hit their own failpoint labels around these — the
   interesting kill sites there are protocol steps, not byte writes. *)
let rename src dst = Sys.rename src dst

let remove path = Sys.remove path

let write_file ?fp path content =
  write_tmp ?fp path content;
  commit_tmp ?fp path

let open_append path =
  open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path

let truncate ?fp path len =
  hit_site fp "truncate";
  Unix.truncate path len

let append ?fp oc frame =
  (match check_site fp "append" with
  | Some Failpoint.Raise -> raise (Failpoint.Injected (Option.get (site fp "append")))
  | Some Failpoint.Crash -> Failpoint.crash ()
  | Some Failpoint.Torn ->
    output_substring oc frame 0 (String.length frame / 2);
    fsync_out oc;
    Failpoint.crash ()
  | Some (Failpoint.Sleep ms) -> Failpoint.stall ms
  | None -> ());
  output_string oc frame;
  flush oc;
  hit_site fp "fsync";
  fsync_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
