(** Work counters and latency/size histograms for the QC-tree system.

    The paper's whole evaluation is phrased in units of {e work} — nodes
    touched per point query, links followed, classes split during
    maintenance — so the load-bearing modules register named counters and
    histograms here, and the CLI / benchmark harness reads them back as
    aligned text or JSON.

    The registry is global and instruments are created once at module
    initialization; recording is guarded by a single global switch so the
    hot paths pay one predictable branch when observability is off (the
    default).  Counter operations are O(1) and allocation-free while
    enabled; [observe] is amortized O(1) (histograms retain raw samples
    for exact percentiles); [snapshot]/[render]/[to_json]/[to_prometheus]
    allocate freely.

    Multicore model: instrument descriptors are global (registration is
    mutex-protected and normally happens at module initialization), but
    the recorded {e values} live in domain-local storage.  [incr] /
    [observe] / [value] / [snapshot] / [reset] all act on the calling
    domain's tallies, so worker domains record without contention; after
    joining a worker, merge its tallies into the coordinating domain with
    {!drain} / {!absorb}.  On a single domain the behaviour is identical
    to a plain global registry. *)

type counter

type gauge

type histogram

val set_enabled : bool -> unit
(** Turn recording on or off (off initially).  Instruments keep their
    accumulated values when disabled; use {!reset} to zero them. *)

val enabled : unit -> bool

(** {1 Instruments} *)

val counter : string -> counter
(** [counter name] registers (or retrieves — names are unique keys) a
    monotonically increasing counter.  Convention: [subsystem.metric], e.g.
    ["query.link_steps"]. *)

val incr : counter -> unit
(** Add one, when recording is enabled; a single branch otherwise. *)

val add : counter -> int -> unit

val value : counter -> int

val gauge : string -> gauge
(** [gauge name] registers (or retrieves) a level instrument — a value
    that goes up {e and} down, such as a queue depth.  Same naming
    convention as counters, e.g. ["ingest.queue_depth"]. *)

val set_gauge : gauge -> int -> unit
(** Record the instrument's current level, when recording is enabled.
    The per-domain peak (largest level ever set) is tracked alongside. *)

val gauge_value : gauge -> int
(** The calling domain's current level; 0 if never set. *)

val gauge_peak : gauge -> int
(** The calling domain's peak level; 0 if never set. *)

val histogram : ?buckets:int array -> string -> histogram
(** [histogram name] registers a fixed-bucket histogram of non-negative
    integer observations.  [buckets] are inclusive upper bounds, strictly
    increasing; an implicit overflow bucket catches the rest.  The default
    buckets [1; 2; 4; 8; 16; 32; 64; 128] suit per-query node counts.
    @raise Invalid_argument if [buckets] is empty or not strictly
    increasing, or if [name] was registered with different buckets. *)

val observe : histogram -> int -> unit
(** Record one observation, when recording is enabled. *)

(** {1 Cross-domain merge}

    The parallel batch executor ({!Qc_core.Engine.run_batch}) has each
    worker domain call [drain] just before it finishes; the coordinator
    [absorb]s the deltas in a fixed order after joining, so the merged
    totals are deterministic and equal to a sequential run. *)

type delta
(** A detached bundle of one domain's recorded values. *)

val drain : unit -> delta
(** Copy the calling domain's tallies into a [delta] and zero them.
    Draining with recording disabled still collects whatever was
    recorded while it was on. *)

val absorb : delta -> unit
(** Add a drained bundle into the calling domain's tallies.
    [absorb (drain ())] on one domain is the identity. *)

(** {1 Reading back} *)

type hist_snapshot = {
  bounds : int array;  (** the bucket upper bounds *)
  counts : int array;  (** per-bucket counts; one extra overflow slot *)
  total : int;  (** number of observations *)
  sum : int;  (** sum of observed values *)
  max_value : int;  (** largest observed value; 0 when empty *)
  p50 : int;  (** exact median (nearest-rank); 0 when empty *)
  p90 : int;  (** exact 90th percentile (nearest-rank); 0 when empty *)
  p99 : int;  (** exact 99th percentile (nearest-rank); 0 when empty *)
}
(** Percentiles are {e exact}: histograms retain every raw observation
    (not just bucket counts) while recording is enabled, and snapshots
    compute nearest-rank percentiles over the sorted samples.  The
    retained samples travel through {!drain}/{!absorb} in chunk order, so
    parallel and sequential runs report identical percentiles. *)

type gauge_snapshot = { current : int; peak : int }
(** Gauges are levels: [drain]/[absorb] merge both fields by [max]
    (a worker's momentary depth never {e adds} to the coordinator's). *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * gauge_snapshot) list;  (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered instrument (registrations are kept). *)

val render : unit -> string
(** Aligned, human-readable table of all instruments with non-zero values
    (counters as [name value], histograms with count/mean/max and bucket
    counts). *)

val to_json : unit -> Jsonx.t
(** The full snapshot as
    [{"counters": {name: int, ...},
      "gauges": {name: {"value": n, "peak": n}, ...},
      "histograms": {name: {"bounds": [...], "counts": [...],
                            "total": n, "sum": n, "max": n,
                            "p50": n, "p90": n, "p99": n}, ...}}]. *)

val to_prometheus : unit -> string
(** The full snapshot in Prometheus text exposition format ([qct stats
    --prom] and the [qct serve] counters).  Instrument names are prefixed
    [qc_] with non-alphanumeric characters mapped to [_]; every registered
    instrument is emitted even at zero (the Prometheus convention).
    Counters are suffixed [_total] (the convention for cumulative
    counters) and become [# TYPE ... counter] samples; gauges become a pair of
    [# TYPE ... gauge] samples (current level plus a [_peak]); histograms become
    cumulative [_bucket{le="..."}] series with [_sum]/[_count], plus
    [_p50]/[_p90]/[_p99] gauges carrying the exact percentiles. *)
