(* Table-driven CRC-32 (reflected polynomial 0xEDB88320), one byte per
   step.  The table is built once at module initialization; lookups keep
   the per-byte cost to one shift, one xor and one array read, which is
   plenty for journal frames of at most a few kilobytes. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let mask = 0xFFFFFFFF

let sub ?(init = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub: range outside the string";
  let c = ref (lnot init land mask) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  lnot !c land mask

let string ?init s = sub ?init s ~pos:0 ~len:(String.length s)
