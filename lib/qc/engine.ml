open Qc_cube
module Metrics = Qc_util.Metrics

type error = Query.error =
  | Arity_mismatch of { expected : int; got : int }
  | Empty_cover of Cell.t
  | Unsupported of { backend : string; operation : string }
  | Bad_query of string

let error_equal = Query.error_equal

let error_to_string = Query.error_to_string

(* ---------- backend-neutral EXPLAIN ----------

   [Query.explain] returns live tree nodes and [Query.explain_packed]
   returns packed node ids; the engine flattens both to cells so callers
   see one shape whatever the physical representation. *)

type explain_step = {
  step_kind : Query.step_kind;
  step_dim : int;
  step_label : int;
  step_cell : Cell.t;
}

type explanation = {
  x_cell : Cell.t;
  x_steps : explain_step list;
  x_outcome : Query.outcome;
  x_answer : (Cell.t * Agg.t) option;
}

let nodes_touched e = 1 + List.length e.x_steps

let pp_explanation schema ppf e =
  let outcome_str =
    match e.x_outcome with
    | Query.Hit -> "HIT"
    | Query.Miss_no_route i ->
      Printf.sprintf "MISS (no route on dimension %s)" (Schema.dim_name schema i)
    | Query.Miss_no_class -> "MISS (no class below the reached prefix)"
    | Query.Miss_not_dominating -> "MISS (reached bound disagrees with the query cell)"
  in
  Format.fprintf ppf "point %s: %s, %d nodes touched@." (Cell.to_string schema e.x_cell)
    outcome_str (nodes_touched e);
  Format.fprintf ppf "  root@.";
  List.iter
    (fun { step_kind; step_dim; step_label; step_cell } ->
      Format.fprintf ppf "  %-7s %s=%s -> %s@."
        (match step_kind with
        | Query.Tree_edge -> "edge"
        | Query.Link -> "link"
        | Query.Last_dim_hop -> "hop"
        | Query.Descend -> "descend")
        (Schema.dim_name schema step_dim)
        (Schema.decode_value schema step_dim step_label)
        (Cell.to_string schema step_cell))
    e.x_steps;
  match e.x_answer with
  | Some (cell, agg) ->
    Format.fprintf ppf "  = class %s %a@." (Cell.to_string schema cell) Agg.pp agg
  | None -> ()

(* ---------- the backend seam ---------- *)

module type BACKEND = sig
  type t

  val name : string

  val schema : t -> Schema.t

  val describe : t -> string

  val point : t -> Cell.t -> (Agg.t, error) result

  val range : t -> Query.range -> ((Cell.t * Agg.t) list, error) result

  val iceberg : t -> Agg.func -> threshold:float -> ((Cell.t * Agg.t) list, error) result

  val explain : t -> Cell.t -> (explanation, error) result

  val node_accesses : t -> Cell.t -> (int, error) result
end

let check_arity schema width =
  let expected = Schema.n_dims schema in
  if expected <> width then Error (Arity_mismatch { expected; got = width }) else Ok ()

let by_cell (c1, _) (c2, _) = Cell.compare_dict c1 c2

module Tree_backend = struct
  type t = Qc_tree.t

  let name = "tree"

  let schema = Qc_tree.schema

  let describe t =
    Printf.sprintf "mutable QC-tree: %d nodes, %d links, %d classes" (Qc_tree.n_nodes t)
      (Qc_tree.n_links t) (Qc_tree.n_classes t)

  let point = Query.point_result

  let range = Query.range_result

  let iceberg t func ~threshold =
    let out = ref [] in
    Qc_tree.iter_classes
      (fun _ cell agg -> if Agg.value func agg >= threshold then out := (cell, agg) :: !out)
      t;
    Ok (List.sort by_cell !out)

  let explain t cell =
    match check_arity (schema t) (Array.length cell) with
    | Error _ as e -> e
    | Ok () ->
      let e = Query.explain t cell in
      Ok
        {
          x_cell = e.Query.cell;
          x_steps =
            List.map
              (fun (s : Query.step) ->
                {
                  step_kind = s.Query.kind;
                  step_dim = s.Query.target.Qc_tree.dim;
                  step_label = s.Query.target.Qc_tree.label;
                  step_cell = Qc_tree.node_cell t s.Query.target;
                })
              e.Query.steps;
          x_outcome = e.Query.outcome;
          x_answer =
            Option.map (fun (n, agg) -> (Qc_tree.node_cell t n, agg)) e.Query.result;
        }

  let node_accesses t cell =
    match check_arity (schema t) (Array.length cell) with
    | Error _ as e -> e
    | Ok () -> Ok (Query.node_accesses t cell)
end

module Packed_backend = struct
  type t = Packed.t

  let name = "packed"

  let schema = Packed.schema

  let describe t =
    Printf.sprintf "packed QC-tree: %d nodes, %d links, %d classes, %d resident bytes"
      (Packed.n_nodes t) (Packed.n_links t) (Packed.n_classes t) (Packed.resident_bytes t)

  let point = Query.point_result_packed

  let range = Query.range_result_packed

  let iceberg t func ~threshold =
    let out = ref [] in
    Packed.iter_classes
      (fun _ cell agg -> if Agg.value func agg >= threshold then out := (cell, agg) :: !out)
      t;
    Ok (List.sort by_cell !out)

  let explain t cell =
    match check_arity (schema t) (Array.length cell) with
    | Error _ as e -> e
    | Ok () ->
      let e = Query.explain_packed t cell in
      Ok
        {
          x_cell = e.Query.pcell;
          x_steps =
            List.map
              (fun (s : Query.packed_step) ->
                {
                  step_kind = s.Query.pkind;
                  step_dim = Packed.dim t s.Query.pnode;
                  step_label = Packed.label t s.Query.pnode;
                  step_cell = Packed.node_cell t s.Query.pnode;
                })
              e.Query.psteps;
          x_outcome = e.Query.poutcome;
          x_answer =
            Option.map (fun (n, agg) -> (Packed.node_cell t n, agg)) e.Query.presult;
        }

  let node_accesses t cell =
    match check_arity (schema t) (Array.length cell) with
    | Error _ as e -> e
    | Ok () -> Ok (Query.node_accesses_packed t cell)
end

(* ---------- batch queries ---------- *)

type query =
  | Point of Cell.t
  | Range of Query.range
  | Iceberg of { func : Agg.func; threshold : float }

type answer = Agg_answer of Agg.t | Cells_answer of (Cell.t * Agg.t) list

type outcome = (answer, error) result

let answer_equal a b =
  match (a, b) with
  | Agg_answer x, Agg_answer y -> Agg.equal x y
  | Cells_answer xs, Cells_answer ys ->
    List.equal (fun (c1, a1) (c2, a2) -> Cell.equal c1 c2 && Agg.equal a1 a2) xs ys
  | (Agg_answer _ | Cells_answer _), _ -> false

let outcome_equal a b =
  match (a, b) with
  | Ok x, Ok y -> answer_equal x y
  | Error x, Error y -> error_equal x y
  | Ok _, Error _ | Error _, Ok _ -> false

(* ---------- query-file syntax ---------- *)

exception Parse_error of string

let split_fields s = List.map String.trim (String.split_on_char ',' s)

let parse_point schema rest =
  match Cell.parse schema (split_fields rest) with
  | cell -> Ok (Point cell)
  | exception Invalid_argument msg -> Error (Bad_query msg)

let parse_range schema rest =
  let fields = split_fields rest in
  let expected = Schema.n_dims schema in
  let got = List.length fields in
  if expected <> got then Error (Arity_mismatch { expected; got })
  else
    match
      List.mapi
        (fun i field ->
          if String.equal field "*" then [||]
          else
            field
            |> String.split_on_char '|'
            |> List.map (fun v ->
                   let v = String.trim v in
                   match Qc_util.Dict.find (Schema.dict schema i) v with
                   | Some code -> code
                   | None ->
                     raise
                       (Parse_error
                          (Printf.sprintf "unknown value %S in dimension %s" v
                             (Schema.dim_name schema i))))
            |> Array.of_list)
        fields
    with
    | dims -> Ok (Range (Array.of_list dims))
    | exception Parse_error msg -> Error (Bad_query msg)

let parse_iceberg rest =
  match String.split_on_char ' ' rest |> List.filter (fun s -> String.length s > 0) with
  | [ func; threshold ] -> (
    match (Agg.func_of_string func, float_of_string_opt threshold) with
    | f, Some th -> Ok (Iceberg { func = f; threshold = th })
    | _, None -> Error (Bad_query (Printf.sprintf "bad iceberg threshold %S" threshold))
    | exception Invalid_argument _ ->
      Error (Bad_query (Printf.sprintf "unknown aggregate function %S" func)))
  | _ -> Error (Bad_query "iceberg expects: iceberg FUNC THRESHOLD")

let parse_query schema line =
  let line = String.trim line in
  let kw, rest =
    match String.index_opt line ' ' with
    | Some i ->
      (String.sub line 0 i, String.trim (String.sub line (i + 1) (String.length line - i - 1)))
    | None -> (line, "")
  in
  match kw with
  | "point" -> parse_point schema rest
  | "range" -> parse_range schema rest
  | "iceberg" -> parse_iceberg rest
  | _ ->
    Error
      (Bad_query (Printf.sprintf "unknown query kind %S (expected point, range or iceberg)" kw))

let parse_queries schema text =
  let rec go lineno acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest ->
      let trimmed = String.trim line in
      if String.length trimmed = 0 || trimmed.[0] = '#' then go (lineno + 1) acc rest
      else (
        match parse_query schema trimmed with
        | Ok q -> go (lineno + 1) (q :: acc) rest
        | Error e ->
          Error (Bad_query (Printf.sprintf "line %d: %s" lineno (error_to_string ~schema e))))
  in
  go 1 [] (String.split_on_char '\n' text)

(* ---------- the parallel batch executor ---------- *)

type batch = {
  outcomes : outcome array;
  accesses : int array option;
  jobs : int;
  elapsed_s : float;
}

let default_jobs () =
  match Sys.getenv_opt "QC_JOBS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let run_one (type a) (module B : BACKEND with type t = a) (b : a) = function
  | Point cell -> (
    match B.point b cell with Ok agg -> Ok (Agg_answer agg) | Error _ as e -> e)
  | Range q -> (
    match B.range b q with Ok cells -> Ok (Cells_answer cells) | Error _ as e -> e)
  | Iceberg { func; threshold } -> (
    match B.iceberg b func ~threshold with
    | Ok cells -> Ok (Cells_answer cells)
    | Error _ as e -> e)

let m_batch = Metrics.counter "engine.batch"

let m_batch_queries = Metrics.counter "engine.batch_queries"

let run_batch (type a) ?jobs ?(node_accesses = false) ?chunk_order
    (module B : BACKEND with type t = a) (b : a) (queries : query array) =
  let n = Array.length queries in
  let jobs =
    match jobs with Some j when j >= 1 -> j | Some _ -> 1 | None -> default_jobs ()
  in
  let jobs = max 1 (min jobs n) in
  let outcomes = Array.make n (Error (Bad_query "query was not evaluated")) in
  let accesses = if node_accesses then Some (Array.make n 0) else None in
  let run_slot i =
    let q = queries.(i) in
    outcomes.(i) <- run_one (module B) b q;
    match accesses with
    | None -> ()
    | Some acc -> (
      match q with
      | Point cell -> (
        match B.node_accesses b cell with Ok k -> acc.(i) <- k | Error _ -> ())
      | Range _ | Iceberg _ -> ())
  in
  let (), elapsed_s =
    Qc_util.Timer.time (fun () ->
        if jobs = 1 then
          for i = 0 to n - 1 do
            run_slot i
          done
        else begin
          (* Exactly [jobs] contiguous chunks; chunk k is queries
             [k*n/jobs, (k+1)*n/jobs).  Each worker domain writes disjoint
             slots of the shared arrays and hands back its drained metrics;
             the coordinator absorbs the deltas in chunk order after the
             joins, so counter totals match a sequential run exactly. *)
          let order =
            match chunk_order with
            | None -> Array.init jobs (fun k -> k)
            | Some o ->
              if Array.length o <> jobs then
                invalid_arg "Engine.run_batch: chunk_order must have one entry per job";
              let seen = Array.make jobs false in
              Array.iter
                (fun k ->
                  if k < 0 || k >= jobs || seen.(k) then
                    invalid_arg "Engine.run_batch: chunk_order must be a permutation";
                  seen.(k) <- true)
                o;
              o
          in
          let metrics_on = Metrics.enabled () in
          let workers =
            Array.map
              (fun k ->
                ( k,
                  Domain.spawn (fun () ->
                      for i = k * n / jobs to (((k + 1) * n) / jobs) - 1 do
                        run_slot i
                      done;
                      if metrics_on then Some (Metrics.drain ()) else None) ))
              order
          in
          let deltas = Array.make jobs None in
          Array.iter (fun (k, d) -> deltas.(k) <- Domain.join d) workers;
          Array.iter (function Some d -> Metrics.absorb d | None -> ()) deltas
        end)
  in
  Metrics.incr m_batch;
  Metrics.add m_batch_queries n;
  { outcomes; accesses; jobs; elapsed_s }
