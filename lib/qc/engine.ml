open Qc_cube
module Metrics = Qc_util.Metrics
module Trace = Qc_util.Trace
module Clock = Qc_util.Clock

type error = Query.error =
  | Arity_mismatch of { expected : int; got : int }
  | Empty_cover of Cell.t
  | Unsupported of { backend : string; operation : string }
  | Bad_query of string

let error_equal = Query.error_equal

let error_to_string = Query.error_to_string

(* ---------- backend-neutral EXPLAIN ----------

   [Query.explain] returns live tree nodes and [Query.explain_packed]
   returns packed node ids; the engine flattens both to cells so callers
   see one shape whatever the physical representation. *)

type explain_step = {
  step_kind : Query.step_kind;
  step_dim : int;
  step_label : int;
  step_cell : Cell.t;
}

type explanation = {
  x_cell : Cell.t;
  x_steps : explain_step list;
  x_outcome : Query.outcome;
  x_answer : (Cell.t * Agg.t) option;
}

let nodes_touched e = 1 + List.length e.x_steps

let pp_explanation schema ppf e =
  let outcome_str =
    match e.x_outcome with
    | Query.Hit -> "HIT"
    | Query.Miss_no_route i ->
      Printf.sprintf "MISS (no route on dimension %s)" (Schema.dim_name schema i)
    | Query.Miss_no_class -> "MISS (no class below the reached prefix)"
    | Query.Miss_not_dominating -> "MISS (reached bound disagrees with the query cell)"
  in
  Format.fprintf ppf "point %s: %s, %d nodes touched@." (Cell.to_string schema e.x_cell)
    outcome_str (nodes_touched e);
  Format.fprintf ppf "  root@.";
  List.iter
    (fun { step_kind; step_dim; step_label; step_cell } ->
      Format.fprintf ppf "  %-7s %s=%s -> %s@."
        (match step_kind with
        | Query.Tree_edge -> "edge"
        | Query.Link -> "link"
        | Query.Last_dim_hop -> "hop"
        | Query.Descend -> "descend")
        (Schema.dim_name schema step_dim)
        (Schema.decode_value schema step_dim step_label)
        (Cell.to_string schema step_cell))
    e.x_steps;
  match e.x_answer with
  | Some (cell, agg) ->
    Format.fprintf ppf "  = class %s %a@." (Cell.to_string schema cell) Agg.pp agg
  | None -> ()

(* ---------- the backend seam ---------- *)

module type BACKEND = sig
  type t

  val name : string

  val schema : t -> Schema.t

  val describe : t -> string

  val point : t -> Cell.t -> (Agg.t, error) result

  val range : t -> Query.range -> ((Cell.t * Agg.t) list, error) result

  val iceberg : t -> Agg.func -> threshold:float -> ((Cell.t * Agg.t) list, error) result

  val explain : t -> Cell.t -> (explanation, error) result

  val node_accesses : t -> Cell.t -> (int, error) result
end

let check_arity schema width =
  let expected = Schema.n_dims schema in
  if expected <> width then Error (Arity_mismatch { expected; got = width }) else Ok ()

let by_cell (c1, _) (c2, _) = Cell.compare_dict c1 c2

module Tree_backend = struct
  type t = Qc_tree.t

  let name = "tree"

  let schema = Qc_tree.schema

  let describe t =
    Printf.sprintf "mutable QC-tree: %d nodes, %d links, %d classes" (Qc_tree.n_nodes t)
      (Qc_tree.n_links t) (Qc_tree.n_classes t)

  let point = Query.point_result

  let range = Query.range_result

  let iceberg t func ~threshold =
    let out = ref [] in
    Qc_tree.iter_classes
      (fun _ cell agg -> if Agg.value func agg >= threshold then out := (cell, agg) :: !out)
      t;
    Ok (List.sort by_cell !out)

  let explain t cell =
    match check_arity (schema t) (Array.length cell) with
    | Error _ as e -> e
    | Ok () ->
      let e = Query.explain t cell in
      Ok
        {
          x_cell = e.Query.cell;
          x_steps =
            List.map
              (fun (s : Query.step) ->
                {
                  step_kind = s.Query.kind;
                  step_dim = s.Query.target.Qc_tree.dim;
                  step_label = s.Query.target.Qc_tree.label;
                  step_cell = Qc_tree.node_cell t s.Query.target;
                })
              e.Query.steps;
          x_outcome = e.Query.outcome;
          x_answer =
            Option.map (fun (n, agg) -> (Qc_tree.node_cell t n, agg)) e.Query.result;
        }

  let node_accesses t cell =
    match check_arity (schema t) (Array.length cell) with
    | Error _ as e -> e
    | Ok () -> Ok (Query.node_accesses t cell)
end

module Packed_backend = struct
  type t = Packed.t

  let name = "packed"

  let schema = Packed.schema

  let describe t =
    Printf.sprintf "packed QC-tree: %d nodes, %d links, %d classes, %d resident bytes"
      (Packed.n_nodes t) (Packed.n_links t) (Packed.n_classes t) (Packed.resident_bytes t)

  let point = Query.point_result_packed

  let range = Query.range_result_packed

  let iceberg t func ~threshold =
    let out = ref [] in
    Packed.iter_classes
      (fun _ cell agg -> if Agg.value func agg >= threshold then out := (cell, agg) :: !out)
      t;
    Ok (List.sort by_cell !out)

  let explain t cell =
    match check_arity (schema t) (Array.length cell) with
    | Error _ as e -> e
    | Ok () ->
      let e = Query.explain_packed t cell in
      Ok
        {
          x_cell = e.Query.pcell;
          x_steps =
            List.map
              (fun (s : Query.packed_step) ->
                {
                  step_kind = s.Query.pkind;
                  step_dim = Packed.dim t s.Query.pnode;
                  step_label = Packed.label t s.Query.pnode;
                  step_cell = Packed.node_cell t s.Query.pnode;
                })
              e.Query.psteps;
          x_outcome = e.Query.poutcome;
          x_answer =
            Option.map (fun (n, agg) -> (Packed.node_cell t n, agg)) e.Query.presult;
        }

  let node_accesses t cell =
    match check_arity (schema t) (Array.length cell) with
    | Error _ as e -> e
    | Ok () -> Ok (Query.node_accesses_packed t cell)
end

(* ---------- batch queries ----------

   The query vocabulary and both its codecs live in {!Request} (the one
   surface shared with the CLI and the wire protocol); the engine
   re-exports the constructors so existing [E.Point ...] call sites keep
   compiling, and delegates parsing/rendering. *)

type query = Request.query =
  | Point of Cell.t
  | Range of Query.range
  | Iceberg of { func : Agg.func; threshold : float }

type answer = Request.answer = Agg_answer of Agg.t | Cells_answer of (Cell.t * Agg.t) list

type outcome = (answer, error) result

let answer_equal = Request.answer_equal

let outcome_equal = Request.outcome_equal

let parse_query = Request.parse_query

let parse_queries = Request.queries_of_lines

let query_kind = Request.query_kind

let render_query = Request.render_query

(* ---------- the slow-query log ----------

   Logs reporters are not domain-safe, so workers never log directly:
   each domain buffers its slow-query entries in DLS, the batch executor
   merges them in chunk order with the other deltas, and the coordinator
   emits them on the [qc.slow] source after the join — deterministic
   order, no interleaved reporters. *)

let slow_src = Logs.Src.create "qc.slow" ~doc:"Queries exceeding the slow-query threshold"

module Slow_log = (val Logs.src_log slow_src)

(* threshold in nanoseconds; max_int = disabled *)
let slow_threshold_ns = Atomic.make max_int

let set_slow_threshold_ms = function
  | None -> Atomic.set slow_threshold_ns max_int
  | Some ms ->
    if not (Float.is_finite ms) || ms < 0.0 then
      invalid_arg "Engine.set_slow_threshold_ms: threshold must be finite and non-negative";
    Atomic.set slow_threshold_ns (int_of_float (ms *. 1e6))

type slow_entry = { se_query : string; se_latency_ns : int; se_nodes : int (* -1 unknown *) }

let slow_key : slow_entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let m_slow = Metrics.counter "engine.slow_queries"

let drain_slow () =
  let r = Domain.DLS.get slow_key in
  let es = List.rev !r in
  r := [];
  es

let absorb_slow es =
  let r = Domain.DLS.get slow_key in
  r := List.rev_append es !r

let flush_slow_log () =
  List.iter
    (fun e ->
      Slow_log.warn (fun m ->
          m "slow query: %s latency=%.3fms nodes=%s" e.se_query
            (float_of_int e.se_latency_ns /. 1e6)
            (if e.se_nodes >= 0 then string_of_int e.se_nodes else "-")))
    (drain_slow ())

(* ---------- the parallel batch executor ---------- *)

type chunk_stat = {
  chunk : int;
  c_lo : int;
  c_hi : int;
  c_domain : int;
  c_elapsed_s : float;
}

type batch = {
  outcomes : outcome array;
  accesses : int array option;
  jobs : int;
  elapsed_s : float;
  chunks : chunk_stat array;
}

let default_jobs () =
  match Sys.getenv_opt "QC_JOBS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* the uninstrumented dispatch — also the baseline BENCH_PR6 compares the
   instrumented wrapper against to bound the tracer-disabled overhead *)
let run_one_plain (type a) (module B : BACKEND with type t = a) (b : a) = function
  | Point cell -> (
    match B.point b cell with Ok agg -> Ok (Agg_answer agg) | Error _ as e -> e)
  | Range q -> (
    match B.range b q with Ok cells -> Ok (Cells_answer cells) | Error _ as e -> e)
  | Iceberg { func; threshold } -> (
    match B.iceberg b func ~threshold with
    | Ok cells -> Ok (Cells_answer cells)
    | Error _ as e -> e)

let m_query_us =
  Metrics.histogram
    ~buckets:[| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192 |]
    "engine.query_us"

let run_one (type a) (module B : BACKEND with type t = a) (b : a) q =
  let tracing = Trace.enabled () in
  let slow_ns = Atomic.get slow_threshold_ns in
  if not (tracing || Metrics.enabled () || slow_ns < max_int) then run_one_plain (module B) b q
  else begin
    let t0 = Clock.now_ns () in
    let out =
      if tracing then
        Trace.with_span ~cat:"engine"
          ~args:[ ("backend", Trace.String B.name) ]
          (query_kind q)
          (fun () ->
            let out = run_one_plain (module B) b q in
            (match q with
            | Point cell -> (
              match B.node_accesses b cell with
              | Ok k -> Trace.add_attr "nodes" (Trace.Int k)
              | Error _ -> ())
            | Range _ | Iceberg _ -> ());
            (match out with
            | Ok _ -> ()
            | Error e -> Trace.add_attr "error" (Trace.String (error_to_string e)));
            out)
      else run_one_plain (module B) b q
    in
    let dt = Clock.now_ns () - t0 in
    Metrics.observe m_query_us (dt / 1000);
    if dt >= slow_ns then begin
      Metrics.incr m_slow;
      let nodes =
        match q with
        | Point cell -> ( match B.node_accesses b cell with Ok k -> k | Error _ -> -1)
        | Range _ | Iceberg _ -> -1
      in
      let r = Domain.DLS.get slow_key in
      r :=
        { se_query = render_query (B.schema b) q; se_latency_ns = dt; se_nodes = nodes } :: !r
    end;
    out
  end

let m_batch = Metrics.counter "engine.batch"

let m_batch_queries = Metrics.counter "engine.batch_queries"

let run_batch (type a) ?jobs ?(node_accesses = false) ?chunk_order
    (module B : BACKEND with type t = a) (b : a) (queries : query array) =
  let n = Array.length queries in
  let jobs =
    match jobs with Some j when j >= 1 -> j | Some _ -> 1 | None -> default_jobs ()
  in
  let jobs = max 1 (min jobs n) in
  let outcomes = Array.make n (Error (Bad_query "query was not evaluated")) in
  let accesses = if node_accesses then Some (Array.make n 0) else None in
  let run_slot i =
    let q = queries.(i) in
    outcomes.(i) <- run_one (module B) b q;
    match accesses with
    | None -> ()
    | Some acc -> (
      match q with
      | Point cell -> (
        match B.node_accesses b cell with Ok k -> acc.(i) <- k | Error _ -> ())
      | Range _ | Iceberg _ -> ())
  in
  let tracing = Trace.enabled () in
  let chunks =
    Array.init jobs (fun k -> { chunk = k; c_lo = 0; c_hi = 0; c_domain = 0; c_elapsed_s = 0.0 })
  in
  (* chunk k is queries [k*n/jobs, (k+1)*n/jobs); each invocation writes
     only chunks.(k), so workers touch disjoint slots *)
  let run_chunk k =
    let lo = k * n / jobs and hi = (((k + 1) * n) / jobs) - 1 in
    let t0 = Clock.now_ns () in
    let body () =
      for i = lo to hi do
        run_slot i
      done
    in
    if tracing then
      Trace.with_span ~cat:"engine"
        ~args:[ ("chunk", Trace.Int k); ("lo", Trace.Int lo); ("hi", Trace.Int (hi + 1)) ]
        "engine.chunk" body
    else body ();
    chunks.(k) <-
      {
        chunk = k;
        c_lo = lo;
        c_hi = hi + 1;
        c_domain = (Domain.self () :> int);
        c_elapsed_s = Clock.ns_to_s (Clock.now_ns () - t0);
      }
  in
  let execute () =
    if jobs = 1 then run_chunk 0
    else begin
      (* Exactly [jobs] contiguous chunks.  Each worker domain writes
         disjoint slots of the shared arrays and hands back its drained
         metrics, trace spans and slow-query entries; the coordinator
         absorbs the deltas in chunk order after the joins, so totals,
         span multisets and log order match a sequential run exactly. *)
      let order =
        match chunk_order with
        | None -> Array.init jobs (fun k -> k)
        | Some o ->
          if Array.length o <> jobs then
            invalid_arg "Engine.run_batch: chunk_order must have one entry per job";
          let seen = Array.make jobs false in
          Array.iter
            (fun k ->
              if k < 0 || k >= jobs || seen.(k) then
                invalid_arg "Engine.run_batch: chunk_order must be a permutation";
              seen.(k) <- true)
            o;
          o
      in
      let metrics_on = Metrics.enabled () in
      let workers =
        Array.map
          (fun k ->
            ( k,
              Domain.spawn (fun () ->
                  run_chunk k;
                  ( (if metrics_on then Some (Metrics.drain ()) else None),
                    (if tracing then Some (Trace.drain ()) else None),
                    drain_slow () )) ))
          order
      in
      let deltas = Array.make jobs None in
      Array.iter (fun (k, d) -> deltas.(k) <- Some (Domain.join d)) workers;
      Array.iter
        (function
          | Some (md, td, sd) ->
            Option.iter Metrics.absorb md;
            Option.iter Trace.absorb td;
            absorb_slow sd
          | None -> ())
        deltas
    end
  in
  let (), elapsed_s =
    Qc_util.Timer.time (fun () ->
        if tracing then
          Trace.with_span ~cat:"engine"
            ~args:[ ("backend", Trace.String B.name); ("jobs", Trace.Int jobs); ("queries", Trace.Int n) ]
            "engine.batch" execute
        else execute ())
  in
  Metrics.incr m_batch;
  Metrics.add m_batch_queries n;
  flush_slow_log ();
  { outcomes; accesses; jobs; elapsed_s; chunks }
