(** The write-ahead journal codec.

    Every warehouse mutation is made durable {e before} the in-memory tree
    is touched, as one self-validating frame appended to [<dir>/wal.log];
    a crash at any instant then loses at most the single operation whose
    frame never finished, and {!Warehouse.open_dir} replays the committed
    prefix over the last checkpoint.  This module is the pure codec — it
    owns the byte format and its corruption taxonomy; the file I/O
    (append, fsync, truncation at checkpoint) lives in the warehouse and
    goes through {!Qc_util.Durable}.

    {2 Format}

    The file starts with the 5-byte {!header} (magic ["QCWL"], version
    byte 1), then zero or more frames ([uint] = unsigned LEB128 varint):

    {v
    frame    := payload_len:uint  payload  crc:4 bytes LE
    payload  := generation:uint  tag:u8  n_dims:uint  n_rows:uint  row*
    row      := (value_len:uint value_bytes){n_dims}  measure:8 bytes LE
    v}

    [crc] is the CRC-32 of the payload.  [tag] is 1 for an insert batch, 2
    for a delete batch.  Rows carry {e decoded} dimension values (strings),
    not dictionary codes, so a record replays correctly against any
    re-encoded schema and may introduce fresh dictionary values.  Measures
    are the raw IEEE-754 bit pattern, so replay is bit-exact.

    [generation] is the checkpoint generation the record extends.  A
    checkpoint bumps the generation in the warehouse manifest and then
    truncates the journal; if the truncation never happens (crash between
    the two), recovery skips the stale-generation records rather than
    double-applying them. *)

type op = Insert | Delete

type record = {
  generation : int;
  op : op;
  rows : (string list * float) list;  (** decoded dimension values + measure *)
}

(** Why a frame could not be decoded, located by byte offset.  The first
    three are the distinct corruption classes the negative tests pin;
    [Bad_payload] covers a CRC-valid frame whose payload structure is
    nonetheless wrong (only reachable through an encoder bug or a CRC
    collision). *)
type corruption =
  | Bad_header of string
  | Truncated_frame of { offset : int }
  | Bad_crc of { offset : int }
  | Unknown_tag of { offset : int; tag : int }
  | Bad_payload of { offset : int; reason : string }

val corruption_to_string : corruption -> string

val header : string
(** The 5 bytes every journal file starts with. *)

val encode : record -> string
(** One complete frame (length, payload, CRC). *)

val decode_frame : string -> pos:int -> (record * int, corruption) result
(** Strict decode of the frame starting at [pos]; on success also returns
    the offset just past the frame. *)

type scan = {
  records : record list;  (** decoded frames, in append order *)
  consumed : int;  (** bytes of header + valid frames *)
  torn : (int * corruption) option;
      (** when the buffer does not end cleanly: offset of the first byte
          that could not be decoded, and why.  A torn tail is the expected
          residue of a crash mid-append; recovery discards it. *)
}

val scan : string -> (scan, corruption) result
(** Decode a whole journal buffer tolerantly.  [Truncated_frame] and
    [Bad_crc] stop the scan and are reported as a {!scan.torn} tail (a
    crash can only damage a suffix, because appends are sequential and
    checkpoint truncation rewrites the file atomically).  [Error] is
    reserved for damage no crash can produce: a bad {!header}, or a
    CRC-valid frame with an unknown tag or malformed payload. *)

(** {2 Segments}

    A long-running ingest rotates the active journal out of the way
    before each background refreeze: [wal.log] is renamed to
    [wal-<seq>.log] (monotonically increasing [seq]) and a fresh
    header-only [wal.log] is started.  The checkpoint that follows makes
    the rotated records redundant and deletes the segments; until then,
    recovery replays segments in sequence order before the active file.
    This module only owns the naming scheme — rotation itself is
    warehouse file I/O. *)

val segment_name : int -> string
(** [segment_name seq] is ["wal-%06d.log"] (widths beyond 6 digits are
    legal and sort after by sequence, not lexically — always order by
    {!segment_seq}).
    @raise Invalid_argument on a negative [seq]. *)

val segment_seq : string -> int option
(** Parse a rotated-segment file name back to its sequence number;
    [None] for anything else (including ["wal.log"] itself). *)

val generation_span : record list -> (int * int) option
(** Smallest and largest generation stamp among [records]; [None] when
    empty.  What [qct wal] reports per segment. *)

val record_of_table : generation:int -> op -> Qc_cube.Table.t -> record
(** Snapshot a delta table as a journal record (decoding every row against
    the table's schema). *)

val table_of_record : Qc_cube.Schema.t -> record -> Qc_cube.Table.t
(** Materialize a record's rows as a table under [schema] (encoding values,
    creating fresh dictionary codes as needed) — the replay direction.
    @raise Invalid_argument if a row's arity does not match [schema]. *)
