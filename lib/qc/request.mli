(** The unified request/response surface: one typed vocabulary shared by
    the CLI ([qct query], [qct batch]), the query files, and the wire
    protocol of [qct serve].

    Historically the repository grew three ad-hoc parsers for the same
    logical queries — the query-file grammar in {!Engine}, the argv cell
    parser in [bin/qct.ml], and (with a server) a JSON decoder would have
    been the third.  This module collapses them: a {!request} is either a
    data query (point / range / iceberg, the paper's three algorithms), a
    batch of them, or a protocol request ([stats] / [describe]), and every
    frontend goes through {!of_line} / {!of_json} so a malformed query
    produces the {e same} typed {!Query.error} (and the same
    ["line N: ..."] text) whether it arrives from a file, an argv string,
    or a socket.

    {2 Wire protocol}

    [qct serve] speaks newline-delimited messages: one request per line,
    one response per line.  A request line starting with ['{'] is parsed
    as JSON ({!of_json}); anything else is parsed with the text grammar
    ({!of_line}) — so a human with [nc] and a program with a JSON library
    use the same port.  Responses are always one JSON object per line
    ({!response_to_json}).

    {2 JSON schema}

    Requests:
    {v
    {"op":"point","cell":["S1","P2","*"]}
    {"op":"range","dims":["*",["P1","P2"],["f"]]}
    {"op":"iceberg","func":"sum","threshold":25}
    {"op":"batch","queries":[...]}
    {"op":"stats"}
    {"op":"describe"}
    v}

    Responses ([status] is ["ok"], ["error"] or ["overloaded"]):
    {v
    {"status":"ok","agg":{"count":3,"sum":21,"min":5,"max":9}}
    {"status":"ok","cells":[{"cell":["S1","*","*"],"agg":{...}},...]}
    {"status":"ok","outcomes":[...]}            (batch: one entry per query)
    {"status":"ok","stats":{...}}
    {"status":"ok","describe":"..."}
    {"status":"error","error":{"kind":"bad-query","message":"..."}}
    {"status":"overloaded","pending":8,"max_pending":8}
    v}

    Both codecs round-trip exactly ([parse ∘ print = id], property-tested
    in [test/test_request.ml]) for finite float payloads; non-finite
    floats do not survive JSON ({!Qc_util.Jsonx} renders them [null]) and
    never appear in well-formed answers. *)

open Qc_cube

(** {1 Queries} *)

type query =
  | Point of Cell.t
  | Range of Query.range
  | Iceberg of { func : Agg.func; threshold : float }

type answer = Agg_answer of Agg.t | Cells_answer of (Cell.t * Agg.t) list

type outcome = (answer, Query.error) result

val answer_equal : answer -> answer -> bool
(** Exact: [Cell.equal] cells and [Agg.equal] (bit-exact float)
    summaries. *)

val outcome_equal : outcome -> outcome -> bool

val query_equal : query -> query -> bool
(** Exact, like {!answer_equal}; iceberg thresholds compare bit-exact. *)

val query_kind : query -> string
(** ["point"], ["range"] or ["iceberg"] — also the per-query span name. *)

(** {1 Requests and responses} *)

type request =
  | Query of query
  | Batch of query array
  | Stats
  | Describe

(** Server-state snapshot answered to a [stats] request.  All counts are
    integers so the JSON round-trip is exact. *)
type stats = {
  sv_generation : int;  (** published warehouse generation being served *)
  sv_classes : int;  (** quotient classes in the served snapshot *)
  sv_nodes : int;  (** QC-tree nodes in the served snapshot *)
  sv_clients : int;  (** currently connected clients *)
  sv_served : int;  (** requests answered since startup *)
  sv_cache_hits : int;
  sv_cache_misses : int;
  sv_cache_evictions : int;
}

type response =
  | Answer of outcome  (** reply to [Query]; parse errors also land here *)
  | Answers of outcome array  (** reply to [Batch], one outcome per query *)
  | Stats_reply of stats
  | Describe_reply of string
  | Overloaded of { pending : int; max_pending : int }
      (** admission control: the accept queue is full; the server closes
          the connection after sending this *)

val request_equal : request -> request -> bool
val response_equal : response -> response -> bool

(** {1 Text codec}

    The query-file grammar (one request per line; blank lines and [#]
    comments are the caller's concern):
    {v
    point S1,P2,*
    range *,P1|P2,f
    iceberg sum 25
    stats
    describe
    v}
    Point cells use [*] for ALL; range dimensions are [*] (unconstrained)
    or [|]-separated value enumerations; iceberg takes an aggregate
    function name and a threshold. *)

val of_line : ?lineno:int -> Schema.t -> string -> (request, Query.error) result
(** Parse one line.  With [~lineno] every error is normalized to
    [Bad_query "line N: ..."] — the one shared error text the CLI contract
    tests assert for [qct query] (which parses its argv cell as line 1)
    and [qct batch] (which numbers file lines).  Without [~lineno] the
    typed error is returned as-is. *)

val to_line : Schema.t -> request -> string option
(** Exact inverse of {!of_line} ([None] for [Batch], which has no one-line
    text form).  Unlike {!render_query} this prints machine-parseable
    lines, with iceberg thresholds in shortest-round-trip float form. *)

val parse_query : Schema.t -> string -> (query, Query.error) result
(** {!of_line} restricted to data queries: [stats] / [describe] lines are
    rejected with [Bad_query] since they have no answer over a bare
    snapshot. *)

val queries_of_lines : Schema.t -> string -> (query array, Query.error) result
(** Parse a whole query file (the body of {!Engine.parse_queries}): blank
    lines and [#] comments skipped, first bad line fails the batch with
    [Bad_query "line N: ..."]. *)

val render_query : Schema.t -> query -> string
(** One-line {e human} rendering (parenthesized comma-space cells, the
    [qct explain] style) — used
    by [qct batch] output and the slow-query log.  Not parseable; use
    {!to_line} for the codec. *)

(** {1 JSON codec} *)

val request_to_json : Schema.t -> request -> Qc_util.Jsonx.t
val of_json : Schema.t -> Qc_util.Jsonx.t -> (request, Query.error) result

val response_to_json : Schema.t -> response -> Qc_util.Jsonx.t
val response_of_json : Schema.t -> Qc_util.Jsonx.t -> (response, string) result
(** Client-side decode; the [string] error describes the malformed field
    (protocol errors are the client's bug report, not a typed engine
    error). *)

val of_wire : Schema.t -> string -> (request, Query.error) result
(** One server-side entry point for a request line: JSON if the line
    starts with ['{'] (after leading blanks), text grammar otherwise. *)
