open Qc_cube

type error =
  | Truncated
  | Bad_magic of string
  | Bad_version of int
  | Dim_mismatch of { expected : int; got : int }
  | Malformed of string

exception Error of error

let error_to_string = function
  | Truncated -> "input truncated"
  | Bad_magic m -> Printf.sprintf "bad magic %S" m
  | Bad_version v -> Printf.sprintf "unsupported format version %d" v
  | Dim_mismatch { expected; got } ->
    Printf.sprintf "dimension count mismatch: expected %d, got %d" expected got
  | Malformed msg -> msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Serial.Error: %s" (error_to_string e))
    | _ -> None)

let err e = raise (Error e)

let malformed fmt = Printf.ksprintf (fun s -> err (Malformed s)) fmt

(* ---------- text format ("qctree 1") ---------- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '\t' | '\r' ->
        Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let cell_codes (c : Cell.t) =
  String.concat "," (Array.to_list (Array.map string_of_int c))

let int_of what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> malformed "Serial: %s is not an integer: %S" what s

let float_of what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> malformed "Serial: %s is not a number: %S" what s

let codes_cell s =
  Array.of_list (List.map (int_of "cell code") (String.split_on_char ',' s))

let to_string tree =
  let schema = Qc_tree.schema tree in
  let buf = Buffer.create 65536 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  out "qctree 1";
  out "schema %d %s" (Schema.n_dims schema) (escape (Schema.measure_name schema));
  for i = 0 to Schema.n_dims schema - 1 do
    let values = Qc_util.Dict.values (Schema.dict schema i) in
    out "dim %s %d %s" (escape (Schema.dim_name schema i)) (Array.length values)
      (String.concat " " (Array.to_list (Array.map escape values)))
  done;
  Qc_tree.iter_classes
    (fun _ ub (agg : Agg.t) ->
      out "class %d %h %h %h %s" agg.count agg.sum agg.min agg.max (cell_codes ub))
    tree;
  Qc_tree.iter_nodes
    (fun n ->
      let src = Qc_tree.node_cell tree n in
      List.iter
        (fun (dim, label, dst) ->
          out "link %d %d %s %s" dim label (cell_codes src)
            (cell_codes (Qc_tree.node_cell tree dst)))
        n.Qc_tree.links)
    tree;
  out "end";
  Buffer.contents buf

let of_string data =
  let lines = String.split_on_char '\n' data in
  let schema = ref None in
  let tree = ref None in
  let pending_links = ref [] in
  let dim_names = ref [] in
  let dim_values = ref [] in
  let measure = ref "measure" in
  let ndims = ref 0 in
  let finalize_schema () =
    match !schema with
    | Some s -> s
    | None ->
      let names = List.rev !dim_names in
      if List.length names <> !ndims then
        err (Dim_mismatch { expected = !ndims; got = List.length names });
      let s = Schema.create ~measure_name:!measure names in
      List.iteri
        (fun i values -> List.iter (fun v -> ignore (Schema.encode_value s i v)) values)
        (List.rev !dim_values);
      schema := Some s;
      s
  in
  let get_tree () =
    match !tree with
    | Some t -> t
    | None ->
      let t = Qc_tree.create (finalize_schema ()) in
      tree := Some t;
      t
  in
  let check_arity cell =
    let d = Array.length cell in
    if d <> !ndims then err (Dim_mismatch { expected = !ndims; got = d });
    cell
  in
  List.iter
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ "" ] | [] -> ()
      | "qctree" :: version :: _ ->
        let v = int_of "format version" version in
        if v <> 1 then err (Bad_version v)
      | [ "end" ] -> ()
      | [ "schema"; n; m ] ->
        ndims := int_of "dimension count" n;
        measure := unescape m
      | "dim" :: name :: _count :: values ->
        dim_names := unescape name :: !dim_names;
        dim_values := List.map unescape values :: !dim_values
      | [ "class"; count; sum; mn; mx; codes ] ->
        let t = get_tree () in
        let node =
          try Qc_tree.insert_path t (check_arity (codes_cell codes))
          with Invalid_argument msg -> malformed "Serial: bad class cell: %s" msg
        in
        Qc_tree.set_agg node
          (Some
             {
               Agg.count = int_of "class count" count;
               sum = float_of "class sum" sum;
               min = float_of "class min" mn;
               max = float_of "class max" mx;
             })
      | [ "link"; dim; label; src; dst ] ->
        pending_links :=
          (int_of "link dimension" dim, int_of "link label" label, src, dst)
          :: !pending_links
      | tok :: _ -> malformed "Serial: unexpected record %S" tok)
    lines;
  let t = get_tree () in
  List.iter
    (fun (dim, label, src, dst) ->
      match
        ( Qc_tree.find_path t (check_arity (codes_cell src)),
          Qc_tree.find_path t (check_arity (codes_cell dst)) )
      with
      | Some src, Some dst -> (
        try Qc_tree.add_link t ~src ~dim ~label ~dst
        with Invalid_argument msg -> malformed "Serial: bad link: %s" msg)
      | _ -> malformed "Serial: link endpoint not found")
    (List.rev !pending_links);
  t

(* ---------- packed binary format ("QCTP", version 1) ----------

   Layout (uint = unsigned LEB128 varint; floats are fixed 8-byte
   little-endian bit patterns so a round trip is byte-identical):

     magic     4 bytes  "QCTP"
     version   u8       1
     measure   str      (uint length + bytes)
     n_dims    u8
     per dimension: name str, n_values uint, each value str
     n_nodes   uint
     per node (preorder):
       node 0: agg only
       node i>0: dim u8, label uint, parent uint, then agg
       agg: flag u8 (0 = prefix node); when 1: count uint,
            sum/min/max as the 64-bit patterns of the floats
     n_links   uint
     per link: src uint, dim u8, label uint, dst uint

   Labels, node ids and counts are small in practice, so varints keep the
   format several times smaller than the text form.  The reader
   bounds-checks every access ([Truncated]) and funnels [Packed.of_arrays]
   validation into [Malformed] — garbage input raises a typed {!Error},
   never an out-of-bounds crash. *)

let packed_magic = "QCTP"

let packed_version = 1

let add_uint buf n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_uint8 buf n
    else begin
      Buffer.add_uint8 buf (0x80 lor (n land 0x7F));
      go (n lsr 7)
    end
  in
  go n

let add_str buf s =
  add_uint buf (String.length s);
  Buffer.add_string buf s

let to_packed_string p =
  let schema = Packed.schema p in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf packed_magic;
  Buffer.add_uint8 buf packed_version;
  add_str buf (Schema.measure_name schema);
  let d = Schema.n_dims schema in
  Buffer.add_uint8 buf d;
  for i = 0 to d - 1 do
    add_str buf (Schema.dim_name schema i);
    let values = Qc_util.Dict.values (Schema.dict schema i) in
    add_uint buf (Array.length values);
    Array.iter (fun v -> add_str buf v) values
  done;
  let n = Packed.n_nodes p in
  add_uint buf n;
  let add_agg i =
    match Packed.agg p i with
    | None -> Buffer.add_uint8 buf 0
    | Some (a : Agg.t) ->
      Buffer.add_uint8 buf 1;
      add_uint buf a.count;
      Buffer.add_int64_le buf (Int64.bits_of_float a.sum);
      Buffer.add_int64_le buf (Int64.bits_of_float a.min);
      Buffer.add_int64_le buf (Int64.bits_of_float a.max)
  in
  add_agg 0;
  for i = 1 to n - 1 do
    Buffer.add_uint8 buf (Packed.dim p i);
    add_uint buf (Packed.label p i);
    add_uint buf (Packed.parent p i);
    add_agg i
  done;
  add_uint buf (Packed.n_links p);
  for src = 0 to n - 1 do
    Packed.iter_links
      (fun dim label dst ->
        add_uint buf src;
        Buffer.add_uint8 buf dim;
        add_uint buf label;
        add_uint buf dst)
      p src
  done;
  Buffer.contents buf

(* A bounds-checked read cursor. *)
type cursor = { data : string; mutable pos : int }

let need cur n = if cur.pos + n > String.length cur.data then err Truncated

let read_u8 cur =
  need cur 1;
  let v = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let read_uint cur =
  let start = cur.pos in
  let rec go acc shift =
    if shift > 56 then malformed "Serial: varint overflow at byte %d of packed input" start;
    let b = read_u8 cur in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  go 0 0

let read_i64 cur =
  need cur 8;
  let v = String.get_int64_le cur.data cur.pos in
  cur.pos <- cur.pos + 8;
  v

let read_str cur =
  let n = read_uint cur in
  need cur n;
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let of_packed_string data =
  let cur = { data; pos = 0 } in
  need cur 4;
  let magic = String.sub data 0 4 in
  if magic <> packed_magic then err (Bad_magic magic);
  cur.pos <- 4;
  let version = read_u8 cur in
  if version <> packed_version then err (Bad_version version);
  let measure_name = read_str cur in
  let d = read_u8 cur in
  if d = 0 || d > 15 then
    malformed "Serial: packed dimension count %d outside 1..15" d;
  let names = ref [] in
  let dicts = ref [] in
  for _ = 1 to d do
    names := read_str cur :: !names;
    let nv = read_uint cur in
    let values = ref [] in
    for _ = 1 to nv do
      values := read_str cur :: !values
    done;
    dicts := List.rev !values :: !dicts
  done;
  let schema = Schema.create ~measure_name (List.rev !names) in
  List.iteri
    (fun i values -> List.iter (fun v -> ignore (Schema.encode_value schema i v)) values)
    (List.rev !dicts);
  let n = read_uint cur in
  if n = 0 then malformed "Serial: packed tree has no nodes";
  let dim = Array.make n (-1) in
  let label = Array.make n 0 in
  let parent = Array.make n (-1) in
  let aggs = Array.make n None in
  let read_agg () =
    match read_u8 cur with
    | 0 -> None
    | 1 ->
      let count = read_uint cur in
      let sum = Int64.float_of_bits (read_i64 cur) in
      let min = Int64.float_of_bits (read_i64 cur) in
      let max = Int64.float_of_bits (read_i64 cur) in
      Some { Agg.count; sum; min; max }
    | f -> malformed "Serial: bad aggregate flag %d at byte %d of packed input" f (cur.pos - 1)
  in
  aggs.(0) <- read_agg ();
  for i = 1 to n - 1 do
    dim.(i) <- read_u8 cur;
    label.(i) <- read_uint cur;
    parent.(i) <- read_uint cur;
    aggs.(i) <- read_agg ()
  done;
  let nl = read_uint cur in
  let links = Array.make nl (0, 0, 0, 0) in
  for i = 0 to nl - 1 do
    let src = read_uint cur in
    let ldim = read_u8 cur in
    let llabel = read_uint cur in
    let dst = read_uint cur in
    links.(i) <- (src, ldim, llabel, dst)
  done;
  if cur.pos <> String.length data then
    malformed "Serial: %d trailing bytes after packed tree (structure ends at byte %d)"
      (String.length data - cur.pos) cur.pos;
  try Packed.of_arrays ~schema ~dim ~label ~parent ~aggs ~links
  with Invalid_argument msg -> malformed "Serial: %s" msg

(* ---------- files ---------- *)

(* Saving a tree is a durability-relevant site: it goes through the
   fsync'd atomic helper under the [serial.save] failpoint prefix, so a
   crash mid-save (real or injected) leaves either the previous file or
   the new one, never a torn tree. *)
let fp_prefix = "serial.save"

let () =
  List.iter
    (fun suffix -> Qc_util.Failpoint.register (fp_prefix ^ "." ^ suffix))
    [ "tmp-write"; "fsync"; "rename" ]

let write_file path data = Qc_util.Durable.write_file ~fp:fp_prefix path data

let read_file path = Qc_util.Durable.read_file path

let save tree path = write_file path (to_string tree)

let save_packed p path = write_file path (to_packed_string p)

let of_string_any data =
  if String.length data >= 4 && String.sub data 0 4 = packed_magic then
    `Packed (of_packed_string data)
  else if String.length data >= 6 && String.sub data 0 6 = "qctree" then
    `Tree (of_string data)
  else begin
    (* neither header: report against the sniffed prefix *)
    let n = min 4 (String.length data) in
    if n < 4 then err Truncated else err (Bad_magic (String.sub data 0 4))
  end

let load_any path = of_string_any (read_file path)

let load path =
  match load_any path with `Tree t -> t | `Packed p -> Packed.to_tree p

let load_packed path =
  match load_any path with `Packed p -> p | `Tree t -> Packed.of_tree t
