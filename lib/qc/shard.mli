(** Sharded QC-trees with a scatter-gather query backend.

    The cover-quotient aggregate algebra is mergeable (Lemma 1 plus the
    {!Qc_cube.Agg} monoid: COUNT/SUM/MIN/MAX compose, AVG is carried as
    sum+count and read off only after the final merge), so the base table
    can be horizontally partitioned into N shards — each with its own
    QC-tree and packed image — and any query answered by fanning out to
    every shard and merging the per-shard summaries:

    - {e point}: the cover set of a cell is the disjoint union of its
      per-shard cover sets, so the global class aggregate is the merge of
      the per-shard point answers; shards where the cell has an empty
      cover contribute the monoid identity.
    - {e range}: each matched range instantiation is answered per shard
      and merged cell-wise; the result is re-emitted in Algorithm 4's
      expansion order so the answer is identical (cells, aggregates and
      order) to the unsharded tree's.
    - {e iceberg}: per-shard class lists are gathered {e unthresholded}
      (a class may clear the threshold only after the cross-shard merge),
      the global closed-cell set is derived as the meet-closure of the
      per-shard upper-bound sets, global aggregates are merged per
      candidate, and the threshold is applied only post-merge.

    Shards are built in parallel OCaml Domains; worker domains follow the
    {!Qc_util.Metrics}/{!Qc_util.Trace} drain/absorb discipline (deltas
    absorbed in shard-chunk order), so a parallel build records exactly
    the same counter totals and span multiset as a sequential one. *)

open Qc_cube

(** How tuples map to shards.  Both partitioners are pure functions of the
    tuple's dimension codes (and, for [Range], the dimension cardinality
    at split time), so placement is deterministic and auditable. *)
type partitioner =
  | Hash  (** FNV-1a over all dimension codes, modulo the shard count *)
  | Range of int
      (** contiguous code ranges of one dimension: shard
          [(code - 1) * N / cardinality] — the dimension-range scheme of
          hierarchical-domain partitioning *)

val partitioner_equal : partitioner -> partitioner -> bool

val partitioner_to_string : Schema.t -> partitioner -> string
(** ["hash"], or ["range:DIM"] with the dimension's name. *)

val partitioner_of_string : Schema.t -> string -> (partitioner, string) result
(** Parse ["hash"] or ["range:DIM"] where [DIM] is a dimension name or
    0-based index. *)

val shard_of_tuple : Schema.t -> partitioner -> shards:int -> Cell.t -> int
(** The shard a base tuple belongs to — the placement contract audited by
    [qct check] on sharded directories. *)

val split : partitioner:partitioner -> shards:int -> Table.t -> Table.t array
(** Partition a base table into [shards] tables sharing the input's
    schema.  Row order is preserved within each shard, so a 1-shard split
    reproduces the input table exactly.
    @raise Invalid_argument if [shards < 1] or a [Range] dimension is out
    of range. *)

val build_packed : ?jobs:int -> Table.t array -> Packed.t array
(** Build one frozen QC-tree per table, in parallel Domains ([jobs]
    defaults to {!Engine.default_jobs}; capped by the table count).
    Worker metrics, trace spans and histogram samples are drained per
    worker and absorbed in chunk order, matching a sequential build. *)

type t
(** A sharded, frozen QC-tree: one {!Packed.t} per shard plus the
    partitioner that routed the rows. *)

val build : ?jobs:int -> partitioner:partitioner -> shards:int -> Table.t -> t
(** {!split} + {!build_packed}. *)

val of_parts : partitioner:partitioner -> Packed.t array -> t
(** Wrap already-built shard images (the warehouse open path).
    @raise Invalid_argument on an empty array. *)

val parts : t -> Packed.t array
val n_shards : t -> int
val partitioner : t -> partitioner
val schema : t -> Schema.t

(** Scatter-gather over any backend — this is how [Engine.BACKEND] is
    instantiated once more, as a composite.  Error discipline: a shard's
    typed error surfaces as {e one} deterministic error — the error of the
    lowest-indexed failing shard — never as N duplicates; a point query's
    [Empty_cover] is a per-shard non-answer (the monoid identity), not a
    failure, and becomes the composite answer only when every shard
    reports it.  [explain] returns the root-to-answer path of the
    lowest-indexed shard that hits, with the answer cell/aggregate merged
    across all hitting shards; [node_accesses] is the sum over shards
    (the honest total work of the fan-out), so it equals the single
    backend's count only for 1 shard. *)
module Gather (B : Engine.BACKEND) : Engine.BACKEND with type t = B.t array

module Backend : Engine.BACKEND with type t = t
(** {!Gather} over the packed backend, carrying the partitioner in
    [describe]. *)
