open Qc_cube

type cls = {
  cid : int;
  ub : Cell.t;
  lbs : Cell.t list;
  agg : Agg.t;
  children : int list;
  parents : int list;
}

type t = {
  schema : Schema.t;
  classes : cls array;
  by_ub : int Cell.Tbl.t;
  tree : Qc_tree.t;  (** point-search structure over the same classes *)
}

let minimal_lower_bounds lbs =
  (* Keep the most general recorded lower bounds: drop [x] whenever another
     bound generalizes it. *)
  let distinct =
    List.sort_uniq (List.compare Int.compare) (List.map Array.to_list lbs) |> List.map Array.of_list
  in
  List.filter
    (fun x ->
      not (List.exists (fun y -> (not (Cell.equal x y)) && Cell.rolls_up_to x y) distinct))
    distinct

let of_temp_classes schema temp_classes =
  let sorted = List.sort Temp_class.compare_for_insertion temp_classes in
  (* Assign class ids in dictionary order of upper bounds. *)
  let by_ub = Cell.Tbl.create 1024 in
  let n = ref 0 in
  List.iter
    (fun (tc : Temp_class.t) ->
      if not (Cell.Tbl.mem by_ub tc.ub) then begin
        Cell.Tbl.replace by_ub tc.ub !n;
        incr n
      end)
    sorted;
  let n = !n in
  let ubs = Array.make n [||] in
  let aggs = Array.make n Agg.empty in
  let lbs = Array.make n [] in
  let children = Array.make n [] in
  let cid_of_temp = Hashtbl.create 1024 in
  List.iter
    (fun (tc : Temp_class.t) ->
      let cid =
        match Cell.Tbl.find_opt by_ub tc.ub with
        | Some cid -> cid
        | None -> invalid_arg "Quotient.of_temp_classes: unregistered upper bound"
      in
      Hashtbl.replace cid_of_temp tc.id cid;
      ubs.(cid) <- tc.ub;
      aggs.(cid) <- tc.agg;
      lbs.(cid) <- tc.lb :: lbs.(cid);
      if tc.child >= 0 then begin
        let child_cid =
          match Hashtbl.find_opt cid_of_temp tc.child with
          | Some cid -> cid
          | None -> invalid_arg "Quotient.of_temp_classes: child precedes parent"
        in
        if child_cid <> cid && not (List.mem child_cid children.(cid)) then
          children.(cid) <- child_cid :: children.(cid)
      end)
    sorted;
  let parents = Array.make n [] in
  Array.iteri
    (fun cid kids -> List.iter (fun k -> parents.(k) <- cid :: parents.(k)) kids)
    children;
  let classes =
    Array.init n (fun cid ->
        {
          cid;
          ub = ubs.(cid);
          lbs = minimal_lower_bounds lbs.(cid);
          agg = aggs.(cid);
          children = List.sort Int.compare children.(cid);
          parents = List.sort Int.compare parents.(cid);
        })
  in
  { schema; classes; by_ub; tree = Qc_tree.of_temp_classes schema temp_classes }

let of_table table = of_temp_classes (Table.schema table) (Dfs.run table)

let schema t = t.schema

let n_classes t = Array.length t.classes

let classes t = t.classes

let find t cid = t.classes.(cid)

let find_by_ub t ub =
  Option.map (fun cid -> t.classes.(cid)) (Cell.Tbl.find_opt t.by_ub ub)

let class_of_cell t cell =
  match Query.locate t.tree cell with
  | None -> None
  | Some node -> find_by_ub t (Qc_tree.node_cell t.tree node)

let contains cls cell =
  Cell.dominates cls.ub cell && List.exists (fun lb -> Cell.dominates cell lb) cls.lbs

let members ?(limit = 10_000) _t cls =
  let dims = Array.length cls.ub in
  let acc = ref [] in
  let count = ref 0 in
  let cell = Cell.copy cls.ub in
  (* Enumerate generalizations of the upper bound by starring subsets of its
     instantiated dimensions, pruning at [limit]. *)
  let rec go i =
    if !count < limit then
      if i >= dims then begin
        if contains cls cell then begin
          acc := Cell.copy cell :: !acc;
          incr count
        end
      end
      else if cls.ub.(i) = Cell.all then go (i + 1)
      else begin
        go (i + 1);
        cell.(i) <- Cell.all;
        go (i + 1);
        cell.(i) <- cls.ub.(i)
      end
  in
  go 0;
  List.rev !acc

let pp_class schema ppf cls =
  Format.fprintf ppf "C%d: ub=%s lbs={%s} agg=%a children=[%s] parents=[%s]" cls.cid
    (Cell.to_string schema cls.ub)
    (String.concat "; " (List.map (Cell.to_string schema) cls.lbs))
    Agg.pp cls.agg
    (String.concat "," (List.map string_of_int cls.children))
    (String.concat "," (List.map string_of_int cls.parents))
