open Qc_cube
module Metrics = Qc_util.Metrics
module Trace = Qc_util.Trace

let log = Logs.Src.create "qc.maint" ~doc:"QC-tree incremental maintenance"

module Log = (val Logs.src_log log)

(* Work counters of Algorithm 2 and batch deletion: classes updated in
   place, split (carved), freshly created, merged away or removed, plus the
   point-query locates and link repairs the patches cost — the units of the
   paper's Figure 14 discussion. *)
let m_updated = Metrics.counter "maint.classes_updated"

let m_carved = Metrics.counter "maint.classes_carved"

let m_fresh = Metrics.counter "maint.classes_fresh"

let m_located = Metrics.counter "maint.locates"

let m_repairs = Metrics.counter "maint.link_repairs"

let m_retargets = Metrics.counter "maint.link_retargets"

let m_removed = Metrics.counter "maint.classes_removed"

let m_merged = Metrics.counter "maint.classes_merged"

type insert_stats = {
  updated : int;
  carved : int;
  fresh : int;
  located : int;
}

type status =
  | Update of Qc_tree.node  (** case 1: the old upper bound covers the delta *)
  | Carve of Qc_tree.node  (** cases 2/3: a new bound splits off the old class *)
  | Fresh  (** the visited cell was not in the old cube *)

type record = {
  id : int;
  lb : Cell.t;
  ub : Cell.t;  (** the class upper bound in the {e updated} cube *)
  child : int;
  delta_agg : Agg.t;
  base_agg : Agg.t;  (** aggregate of the old tuples the class covers *)
  status : status;
  k : int;  (** the dimension expanded to reach this visit (-1 at the root) *)
  expandable : bool;
      (** false when the bound-jump prune rule fired: a reconstruction's DFS
          would not expand this instance *)
  delta_values : (int, unit) Hashtbl.t array;
      (** for carve records: per-dimension value sets of the delta partition,
          used when planning drill-down repairs *)
}

let truncate cell limit = Array.mapi (fun i v -> if i < limit then v else Cell.all) cell

(* Upper-bound jump within an index-array slice of a table. *)
let jump table idx ~lo ~hi cell =
  let d = Array.length cell in
  let ub = Cell.copy cell in
  for j = 0 to d - 1 do
    if ub.(j) = Cell.all then begin
      let v0 = (Table.tuple table idx.(lo)).(j) in
      let rec shared i =
        i >= hi || ((Table.tuple table idx.(i)).(j) = v0 && shared (i + 1))
      in
      if shared (lo + 1) then ub.(j) <- v0
    end
  done;
  ub

(* Add-or-retarget a drill-down connection.  An existing tree edge always
   wins (Definition 1 forbids a parallel link); an existing link pointing
   elsewhere is retargeted when [force] is set, else kept. *)
let upsert_link tree ~force ~src ~dim ~label ~dst =
  match Qc_tree.find_edge tree src dim label with
  | Some _ -> ()
  | None -> (
    match Qc_tree.find_edge_or_link tree src dim label with
    | Some n when n == dst -> ()
    | Some _ when not force -> ()
    | Some _ ->
      Qc_tree.remove_link tree ~src ~dim ~label;
      Qc_tree.add_link tree ~src ~dim ~label ~dst
    | None -> Qc_tree.add_link tree ~src ~dim ~label ~dst)

(* Definition-1 connection between two upper bounds: labeled by dimension
   [dim], from [child_ub]'s prefix before [dim] to [ub]'s prefix through
   it. *)
let connect tree ~force child_ub dim label ub =
  match
    (Qc_tree.find_path tree (truncate child_ub dim),
     Qc_tree.find_path tree (truncate ub (dim + 1)))
  with
  | Some src, Some dst ->
    let already_tree_edge = match dst.Qc_tree.parent with Some p -> p == src | None -> false in
    if not already_tree_edge then upsert_link tree ~force ~src ~dim ~label ~dst
  | _ -> invalid_arg "Maintenance.connect: missing path prefix"

(* Propagate the rows of [table] through the tree, restricted to the
   ancestors of [targets], and return the cover rows of each target node.
   One pass replaces a per-class scan of the whole table. *)
let covers_for_nodes tree table targets =
  let marked = Hashtbl.create 256 in
  let rec mark (n : Qc_tree.node) =
    if not (Hashtbl.mem marked n.nid) then begin
      Hashtbl.replace marked n.nid ();
      Option.iter mark n.parent
    end
  in
  List.iter mark targets;
  let wanted = Hashtbl.create 256 in
  List.iter (fun (n : Qc_tree.node) -> Hashtbl.replace wanted n.nid ()) targets;
  let out : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let rec walk (node : Qc_tree.node) rows =
    if Hashtbl.mem marked node.nid then begin
      if Hashtbl.mem wanted node.nid then Hashtbl.replace out node.nid rows;
      List.iter
        (fun (child : Qc_tree.node) ->
          if Hashtbl.mem marked child.nid then
            let sub =
              List.filter (fun i -> (Table.tuple table i).(child.dim) = child.label) rows
            in
            walk child sub)
        node.children
    end
  in
  walk (Qc_tree.root tree) (List.init (Table.n_rows table) Fun.id);
  out

(* Phase 1 of Algorithm 2: depth-first search over the delta table.  The
   search mirrors what a full reconstruction's DFS would do on the merged
   table, restricted to cells whose cover set gains delta tuples: the class
   upper bound of a visited cell [c] in the updated cube is
   [meet(old_ub(c), delta_ub(c))], and the recursion expands the [*]
   dimensions of that final bound over the delta partition. *)
let delta_search tree delta =
  let n = Table.n_rows delta in
  let d = Table.n_dims delta in
  let records = ref [] in
  let located = ref 0 in
  if n > 0 then begin
    let idx = Table.all_indices delta in
    let counter = ref 0 in
    let rec dfs c lo hi k chdid =
      let delta_agg = Table.agg_of_range delta idx ~lo ~hi in
      let delta_ub = jump delta idx ~lo ~hi c in
      incr located;
      let status, ub, base_agg =
        match Query.locate tree c with
        | None -> (Fresh, delta_ub, Agg.empty)
        | Some node ->
          let old_ub = Qc_tree.node_cell tree node in
          let old_agg = Option.get node.Qc_tree.agg in
          let m = Cell.meet old_ub delta_ub in
          if Cell.equal m old_ub then (Update node, old_ub, old_agg)
          else (Carve node, m, old_agg)
      in
      let id = !counter in
      incr counter;
      let delta_values =
        match status with
        | Carve _ ->
          let sets = Array.init d (fun _ -> Hashtbl.create 4) in
          for i = lo to hi - 1 do
            let tuple = Table.tuple delta idx.(i) in
            for j = 0 to d - 1 do
              if ub.(j) = Cell.all then Hashtbl.replace sets.(j) tuple.(j) ()
            done
          done;
          sets
        | Update _ | Fresh -> [||]
      in
      let rec filled_before j =
        j < k && ((c.(j) = Cell.all && ub.(j) <> Cell.all) || filled_before (j + 1))
      in
      let expandable = not (filled_before 0) in
      records :=
        {
          id;
          lb = Cell.copy c;
          ub;
          child = chdid;
          delta_agg;
          base_agg;
          status;
          k;
          expandable;
          delta_values;
        }
        :: !records;
      if expandable then
        for j = k + 1 to d - 1 do
          if ub.(j) = Cell.all then
            let groups = Table.partition_by_dim delta idx ~lo ~hi ~dim:j in
            List.iter
              (fun (v, glo, ghi) ->
                let c' = Cell.copy ub in
                c'.(j) <- v;
                dfs c' glo ghi j id)
              groups
        done
    in
    dfs (Cell.make_all d) 0 n (-1) (-1)
  end;
  (List.rev !records, !located)

(* When a class with old bound [u] is carved by a new bound [w], the new
   class keeps drill-downs to classes that gained no delta tuples; those
   connections cannot come out of the delta search, so they are planned here
   from the old cube: for every [*] dimension of [w] and every value present
   there in the old cover, connect [w] to the old class of the drill-down
   cell (paper: "parent-child relationships are established by inspecting
   the upper bounds ... as well as all parent and child classes of the old
   class"). *)
let plan_carve_repairs tree base records =
  let d = Table.n_dims base in
  (* A reconstruction's DFS expands a class instance only on dimensions
     beyond the one that reached it, and only when the instance is not
     pruned; the repairs for drill-downs whose partitions carry no delta
     tuples must mirror exactly those expansions, or they would create
     connections a rebuild does not have. *)
  let allowed : bool array Cell.Tbl.t = Cell.Tbl.create 16 in
  let carves = ref [] in
  List.iter
    (fun r ->
      match r.status with
      | Carve old_node ->
        let dims =
          match Cell.Tbl.find_opt allowed r.ub with
          | Some dims -> dims
          | None ->
            let dims = Array.make d false in
            Cell.Tbl.replace allowed r.ub dims;
            carves := (r.ub, old_node, r.delta_values) :: !carves;
            dims
        in
        if r.expandable then
          for j = r.k + 1 to d - 1 do
            if r.ub.(j) = Cell.all then dims.(j) <- true
          done
      | Update _ | Fresh -> ())
    records;
  let targets =
    List.sort_uniq
      (fun (a : Qc_tree.node) b -> Int.compare a.nid b.nid)
      (List.map (fun (_, n, _) -> n) !carves)
  in
  let covers = covers_for_nodes tree base targets in
  let repairs = ref [] in
  List.iter
    (fun (w, (old_node : Qc_tree.node), delta_values) ->
      (* cover_old(w) = cover_old of the whole carved class (class property),
         so the per-dimension value sets come from the old class's cover. *)
      let rows = Option.value ~default:[] (Hashtbl.find_opt covers old_node.nid) in
      let dims =
        match Cell.Tbl.find_opt allowed w with
        | Some dims -> dims
        | None -> invalid_arg "Maintenance.plan_carve_repairs: unplanned carve bound"
      in
      let old_values = Array.init d (fun _ -> Hashtbl.create 8) in
      List.iter
        (fun i ->
          let tuple = Table.tuple base i in
          for j = 0 to d - 1 do
            if dims.(j) then Hashtbl.replace old_values.(j) tuple.(j) ()
          done)
        rows;
      for j = 0 to d - 1 do
        if dims.(j) then
          Hashtbl.iter
            (fun v () ->
              if not (Hashtbl.mem delta_values.(j) v) then begin
                let x = Cell.copy w in
                x.(j) <- v;
                match Query.locate tree x with
                | Some target ->
                  repairs := (Cell.copy w, j, v, Qc_tree.node_cell tree target) :: !repairs
                | None -> ()
              end)
            old_values.(j)
      done)
    !carves;
  (* Apply in dictionary order of the target bounds — the order a rebuild
     resolves competing connections in. *)
  List.sort
    (fun (_, _, _, a) (_, _, _, b) -> Cell.compare_dict a b)
    !repairs

let insert_batch tree ~base ~delta =
  Trace.with_span ~cat:"maint"
    ~args:[ ("rows", Trace.Int (Table.n_rows delta)) ]
    "maint.insert"
  @@ fun () ->
  let records, located =
    Trace.with_span ~cat:"maint" "maint.delta_search" (fun () -> delta_search tree delta)
  in
  let repairs =
    Trace.with_span ~cat:"maint" "maint.plan_carve" (fun () ->
        plan_carve_repairs tree base records)
  in
  (* Phase 2: replay in dictionary order of upper bounds, exactly like
     construction — first occurrence patches a node, repetitions add one
     drill-down connection from their lattice child. *)
  let by_id = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace by_id r.id r) records;
  let sorted =
    List.sort
      (fun a b ->
        let c = Cell.compare_dict a.ub b.ub in
        if c <> 0 then c else Int.compare a.id b.id)
      records
  in
  let updated = ref 0 and carved = ref 0 and fresh = ref 0 in
  let last : Cell.t option ref = ref None in
  List.iter
    (fun r ->
      (match !last with
      | Some ub when Cell.equal ub r.ub ->
        if r.child >= 0 then begin
          let child =
            match Hashtbl.find_opt by_id r.child with
            | Some child -> child
            | None -> invalid_arg "Maintenance.insert_batch: dangling lattice child"
          in
          (* First dimension where the lattice child's bound is [*] but this
             class's lower bound is not: the drill-down dimension. *)
          let rec first_diff j =
            if j >= Array.length r.ub then None
            else if child.ub.(j) = Cell.all && r.lb.(j) <> Cell.all then Some j
            else first_diff (j + 1)
          in
          match first_diff 0 with
          | Some dim -> connect tree ~force:true child.ub dim r.lb.(dim) r.ub
          | None -> ()
        end
      | _ -> (
        last := Some r.ub;
        match r.status with
        | Update node ->
          incr updated;
          Qc_tree.set_agg node (Some (Agg.merge r.base_agg r.delta_agg))
        | Carve _ | Fresh ->
          (match r.status with Carve _ -> incr carved | _ -> incr fresh);
          let node = Qc_tree.insert_path tree r.ub in
          Qc_tree.set_agg node (Some (Agg.merge r.base_agg r.delta_agg))));
      ())
    sorted;
  List.iter (fun (w, dim, label, target_ub) -> connect tree ~force:false w dim label target_ub) repairs;
  (* Retarget links made stale by carves: a link into a prefix of a carved
     class's old bound whose drill-down cell now generalizes the new bound
     belongs to the new class.  (Such links only arise after earlier
     deletions; pure insertion histories never hit this pass.) *)
  let stale : (int, (Cell.t * Cell.t) list) Hashtbl.t = Hashtbl.create 16 in
  let seen_carve = Cell.Tbl.create 16 in
  List.iter
    (fun r ->
      match r.status with
      | Carve old_node when not (Cell.Tbl.mem seen_carve r.ub) ->
        Cell.Tbl.replace seen_carve r.ub ();
        let u = Qc_tree.node_cell tree old_node in
        for j = 0 to Array.length u - 1 do
          if u.(j) <> Cell.all then
            match Qc_tree.find_path tree (truncate u (j + 1)) with
            | Some prefix ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt stale prefix.Qc_tree.nid) in
              Hashtbl.replace stale prefix.Qc_tree.nid ((r.ub, u) :: prev)
            | None -> ()
        done
      | Update _ | Carve _ | Fresh -> ())
    records;
  if Hashtbl.length stale > 0 then begin
    let retargets = ref [] in
    Qc_tree.iter_nodes
      (fun src ->
        List.iter
          (fun (j, v, (dst : Qc_tree.node)) ->
            match Hashtbl.find_opt stale dst.nid with
            | None -> ()
            | Some candidates ->
              if dst.dim = j then begin
                let x = Qc_tree.node_cell tree src in
                x.(j) <- v;
                (* the most specific carved bound the drill cell generalizes *)
                let best =
                  List.fold_left
                    (fun acc (w, _) ->
                      if Cell.rolls_up_to w x then
                        match acc with
                        | Some w' when Cell.rolls_up_to w w' -> acc
                        | _ -> Some w
                      else acc)
                    None candidates
                in
                match best with
                | Some w -> retargets := (src, j, v, w) :: !retargets
                | None -> ()
              end)
          src.links)
      tree;
    Metrics.add m_retargets (List.length !retargets);
    List.iter
      (fun ((src : Qc_tree.node), j, v, w) ->
        match Qc_tree.find_path tree (truncate w (j + 1)) with
        | Some dst when dst != src ->
          Qc_tree.remove_link tree ~src ~dim:j ~label:v;
          upsert_link tree ~force:true ~src ~dim:j ~label:v ~dst
        | Some _ | None -> ())
      !retargets
  end;
  Table.append base delta;
  Metrics.add m_updated !updated;
  Metrics.add m_carved !carved;
  Metrics.add m_fresh !fresh;
  Metrics.add m_located located;
  Metrics.add m_repairs (List.length repairs);
  Log.info (fun m ->
      m "insert_batch: %d delta rows -> %d updated, %d carved, %d fresh (%d locates, %d repairs)"
        (Table.n_rows delta) !updated !carved !fresh located (List.length repairs));
  { updated = !updated; carved = !carved; fresh = !fresh; located }

let insert_tuples tree ~base ~delta =
  let totals = ref { updated = 0; carved = 0; fresh = 0; located = 0 } in
  for i = 0 to Table.n_rows delta - 1 do
    let one = Table.sub delta [ i ] in
    let s = insert_batch tree ~base ~delta:one in
    totals :=
      {
        updated = !totals.updated + s.updated;
        carved = !totals.carved + s.carved;
        fresh = !totals.fresh + s.fresh;
        located = !totals.located + s.located;
      }
  done;
  !totals

type delete_stats = {
  removed : int;
  merged : int;
  updated_classes : int;
}

(* Walk the tree propagating the subset of rows matching each path; call
   [f node rows] on every class node with a non-empty subset.  [rows] are
   row indices into [table]. *)
let propagate_covers tree table f =
  let rec go (node : Qc_tree.node) rows =
    if not (List.is_empty rows) then begin
      (match node.agg with Some _ -> f node rows | None -> ());
      List.iter
        (fun (child : Qc_tree.node) ->
          let sub =
            List.filter (fun i -> (Table.tuple table i).(child.dim) = child.label) rows
          in
          go child sub)
        node.children
    end
  in
  let all = List.init (Table.n_rows table) Fun.id in
  go (Qc_tree.root tree) all

let delete_batch tree ~base ~delta =
  Trace.with_span ~cat:"maint"
    ~args:[ ("rows", Trace.Int (Table.n_rows delta)) ]
    "maint.delete"
  @@ fun () ->
  let d = Table.n_dims base in
  (* Match delta rows against base rows as a multiset (hash join on the
     dimension vector, then measure). *)
  let deleted = Array.make (Table.n_rows base) false in
  let by_cell : int list Cell.Tbl.t = Cell.Tbl.create (Table.n_rows base) in
  for i = Table.n_rows base - 1 downto 0 do
    let cell = Table.tuple base i in
    Cell.Tbl.replace by_cell cell
      (i :: (Option.value ~default:[] (Cell.Tbl.find_opt by_cell cell)))
  done;
  for i = 0 to Table.n_rows delta - 1 do
    let cell = Table.tuple delta i and m = Table.measure delta i in
    let candidates = Option.value ~default:[] (Cell.Tbl.find_opt by_cell cell) in
    let rec claim = function
      | [] -> invalid_arg "Maintenance.delete_batch: delta row not present in base"
      | j :: rest ->
        if (not deleted.(j)) && Table.measure base j = m then deleted.(j) <- true
        else claim rest
    in
    claim candidates
  done;
  let new_base = Table.remove_rows base (fun i -> deleted.(i)) in
  (* Affected classes: class nodes whose upper bound covers a delta tuple. *)
  let affected = ref [] in
  propagate_covers tree delta (fun node _rows -> affected := node :: !affected);
  (* Mark affected nodes and their ancestors, then recompute their aggregates
     and their new bounds from the new base in one propagation restricted to
     the marked subtree. *)
  (* Remaining covers of the affected class nodes, in one pass. *)
  let new_cover = covers_for_nodes tree new_base !affected in
  (* Process affected classes, most specific upper bounds first. *)
  let with_ubs =
    List.map (fun (n : Qc_tree.node) -> (Qc_tree.node_cell tree n, n)) !affected
  in
  let ordered =
    List.sort (fun (a, _) (b, _) -> Cell.compare_rev_dict a b) with_ubs
  in
  let removed = ref 0 and merged = ref 0 and updated_classes = ref 0 in
  let rows_of node =
    Option.value ~default:[] (Hashtbl.find_opt new_cover node.Qc_tree.nid)
  in
  let new_bound u rows =
    (* Upper bound of cell [u]'s class over the remaining cover. *)
    let u' = Cell.copy u in
    for j = 0 to d - 1 do
      if u'.(j) = Cell.all then begin
        match rows with
        | [] -> ()
        | first :: rest ->
          let v0 = (Table.tuple new_base first).(j) in
          if List.for_all (fun i -> (Table.tuple new_base i).(j) = v0) rest then
            u'.(j) <- v0
      end
    done;
    u'
  in
  List.iter
    (fun (u, (node : Qc_tree.node)) ->
      let rows = rows_of node in
      if List.is_empty rows then begin
        incr removed;
        Qc_tree.set_agg node None
      end
      else begin
        let agg =
          List.fold_left
            (fun acc i -> Agg.merge acc (Agg.of_measure (Table.measure new_base i)))
            Agg.empty rows
        in
        let u' = new_bound u rows in
        if Cell.equal u' u then begin
          incr updated_classes;
          Qc_tree.set_agg node (Some agg)
        end
        else begin
          (* The class merges into the class of its new, more specific upper
             bound; that node keeps the (equal) aggregate. *)
          incr merged;
          Qc_tree.set_agg node None
        end
      end)
    ordered;
  (* Rewiring: connections into nodes that die with a merged class are
     retargeted to the corresponding prefix of the surviving bound; then
     empty branches are pruned and dangling links dropped. *)
  let dying = Hashtbl.create 64 in
  let rec collect_dying (n : Qc_tree.node) =
    (* Map first: every subtree must be visited, [for_all] short-circuits. *)
    let kids_dead = List.for_all Fun.id (List.map collect_dying n.children) in
    let dead = Option.is_some n.parent && Option.is_none n.agg && kids_dead in
    if dead then Hashtbl.replace dying n.nid ();
    dead
  in
  ignore (collect_dying (Qc_tree.root tree));
  (* Every connection into a dying node [x] carries [x]'s dimension as its
     label dimension; it is retargeted to the same-depth prefix of the new
     class upper bound of [x]'s path cell (the class its cells merged into),
     or dropped when that cell's cover became empty. *)
  let replacement = Hashtbl.create 64 in
  let dying_nodes = ref [] in
  Qc_tree.iter_nodes
    (fun x -> if Hashtbl.mem dying x.nid then dying_nodes := x :: !dying_nodes)
    tree;
  let dying_cover = covers_for_nodes tree new_base !dying_nodes in
  List.iter
    (fun (x : Qc_tree.node) ->
      match Option.value ~default:[] (Hashtbl.find_opt dying_cover x.nid) with
      | [] -> ()
      | rows -> (
        let w = new_bound (Qc_tree.node_cell tree x) rows in
        match Qc_tree.find_path tree (truncate w (x.dim + 1)) with
        | Some r when not (Hashtbl.mem dying r.nid) -> Hashtbl.replace replacement x.nid r
        | Some _ | None -> ()))
    !dying_nodes;
  (* Retarget or drop links into dying nodes; turn tree edges from live
     parents into links onto the replacement. *)
  let pending = ref [] in
  Qc_tree.iter_nodes
    (fun n ->
      if not (Hashtbl.mem dying n.nid) then
        List.iter
          (fun (dim, label, dst) ->
            if Hashtbl.mem dying dst.Qc_tree.nid then begin
              Qc_tree.remove_link tree ~src:n ~dim ~label;
              match Hashtbl.find_opt replacement dst.Qc_tree.nid with
              | Some r -> pending := (n, dim, label, r) :: !pending
              | None -> ()
            end)
          n.links)
    tree;
  Qc_tree.iter_nodes
    (fun n ->
      if Hashtbl.mem dying n.nid then
        match (n.parent, Hashtbl.find_opt replacement n.nid) with
        | Some p, Some r when not (Hashtbl.mem dying p.Qc_tree.nid) ->
          pending := (p, n.dim, n.label, r) :: !pending
        | _ -> ())
    tree;
  (* Physically remove dying branches: prune upward from their live
     frontier.  Dying nodes may still hold links among themselves; clear
     them first so pruning can proceed. *)
  Qc_tree.iter_nodes
    (fun n ->
      if Hashtbl.mem dying n.nid then
        List.iter (fun (dim, label, _) -> Qc_tree.remove_link tree ~src:n ~dim ~label) n.links)
    tree;
  let leaves = ref [] in
  Qc_tree.iter_nodes
    (fun n ->
      if Hashtbl.mem dying n.nid && List.is_empty n.children then leaves := n :: !leaves)
    tree;
  List.iter (fun n -> Qc_tree.prune_upward tree n) !leaves;
  List.iter
    (fun (src, dim, label, dst) -> upsert_link tree ~force:false ~src ~dim ~label ~dst)
    !pending;
  Qc_tree.drop_links_to_dead_targets tree;
  Metrics.add m_removed !removed;
  Metrics.add m_merged !merged;
  Metrics.add m_updated !updated_classes;
  Metrics.add m_retargets (List.length !pending);
  Log.info (fun m ->
      m "delete_batch: %d delta rows -> %d removed, %d merged, %d updated (%d link retargets)"
        (Table.n_rows delta) !removed !merged !updated_classes (List.length !pending));
  (new_base, { removed = !removed; merged = !merged; updated_classes = !updated_classes })

(* "Modifications can be simulated by deletions and insertions"
   (Section 3.3): remove the old rows, then insert the new ones. *)
let update_batch tree ~base ~old_rows ~new_rows =
  Trace.with_span ~cat:"maint" "maint.update" @@ fun () ->
  let new_base, del_stats = delete_batch tree ~base ~delta:old_rows in
  let ins_stats = insert_batch tree ~base:new_base ~delta:new_rows in
  (new_base, del_stats, ins_stats)
