open Qc_cube
module Jx = Qc_util.Jsonx

type query =
  | Point of Cell.t
  | Range of Query.range
  | Iceberg of { func : Agg.func; threshold : float }

type answer = Agg_answer of Agg.t | Cells_answer of (Cell.t * Agg.t) list

type outcome = (answer, Query.error) result

let answer_equal a b =
  match (a, b) with
  | Agg_answer x, Agg_answer y -> Agg.equal x y
  | Cells_answer xs, Cells_answer ys ->
    List.equal (fun (c1, a1) (c2, a2) -> Cell.equal c1 c2 && Agg.equal a1 a2) xs ys
  | (Agg_answer _ | Cells_answer _), _ -> false

let outcome_equal a b =
  match (a, b) with
  | Ok x, Ok y -> answer_equal x y
  | Error x, Error y -> Query.error_equal x y
  | Ok _, Error _ | Error _, Ok _ -> false

let func_equal (a : Agg.func) (b : Agg.func) =
  match (a, b) with
  | Agg.Count, Agg.Count | Agg.Sum, Agg.Sum | Agg.Avg, Agg.Avg | Agg.Min, Agg.Min
  | Agg.Max, Agg.Max ->
    true
  | (Agg.Count | Agg.Sum | Agg.Avg | Agg.Min | Agg.Max), _ -> false

let query_equal a b =
  match (a, b) with
  | Point c1, Point c2 -> Cell.equal c1 c2
  | Range q1, Range q2 ->
    Array.length q1 = Array.length q2
    && Array.for_all2 (fun d1 d2 -> Array.length d1 = Array.length d2 && Array.for_all2 ( = ) d1 d2) q1 q2
  | Iceberg { func = f1; threshold = t1 }, Iceberg { func = f2; threshold = t2 } ->
    func_equal f1 f2 && Int64.equal (Int64.bits_of_float t1) (Int64.bits_of_float t2)
  | (Point _ | Range _ | Iceberg _), _ -> false

let query_kind = function Point _ -> "point" | Range _ -> "range" | Iceberg _ -> "iceberg"

type request =
  | Query of query
  | Batch of query array
  | Stats
  | Describe

type stats = {
  sv_generation : int;
  sv_classes : int;
  sv_nodes : int;
  sv_clients : int;
  sv_served : int;
  sv_cache_hits : int;
  sv_cache_misses : int;
  sv_cache_evictions : int;
}

type response =
  | Answer of outcome
  | Answers of outcome array
  | Stats_reply of stats
  | Describe_reply of string
  | Overloaded of { pending : int; max_pending : int }

let request_equal a b =
  match (a, b) with
  | Query q1, Query q2 -> query_equal q1 q2
  | Batch b1, Batch b2 -> Array.length b1 = Array.length b2 && Array.for_all2 query_equal b1 b2
  | Stats, Stats | Describe, Describe -> true
  | (Query _ | Batch _ | Stats | Describe), _ -> false

let stats_equal (a : stats) (b : stats) =
  a.sv_generation = b.sv_generation && a.sv_classes = b.sv_classes && a.sv_nodes = b.sv_nodes
  && a.sv_clients = b.sv_clients && a.sv_served = b.sv_served
  && a.sv_cache_hits = b.sv_cache_hits && a.sv_cache_misses = b.sv_cache_misses
  && a.sv_cache_evictions = b.sv_cache_evictions

let response_equal a b =
  match (a, b) with
  | Answer o1, Answer o2 -> outcome_equal o1 o2
  | Answers a1, Answers a2 -> Array.length a1 = Array.length a2 && Array.for_all2 outcome_equal a1 a2
  | Stats_reply s1, Stats_reply s2 -> stats_equal s1 s2
  | Describe_reply d1, Describe_reply d2 -> String.equal d1 d2
  | Overloaded { pending = p1; max_pending = m1 }, Overloaded { pending = p2; max_pending = m2 } ->
    p1 = p2 && m1 = m2
  | (Answer _ | Answers _ | Stats_reply _ | Describe_reply _ | Overloaded _), _ -> false

(* ---------- text codec ---------- *)

exception Parse_error of string

let split_fields s = List.map String.trim (String.split_on_char ',' s)

let parse_point schema rest =
  match Cell.parse schema (split_fields rest) with
  | cell -> Ok (Point cell)
  | exception Invalid_argument msg -> Error (Query.Bad_query msg)

let parse_range schema rest =
  let fields = split_fields rest in
  let expected = Schema.n_dims schema in
  let got = List.length fields in
  if expected <> got then Error (Query.Arity_mismatch { expected; got })
  else
    match
      List.mapi
        (fun i field ->
          if String.equal field "*" then [||]
          else
            field
            |> String.split_on_char '|'
            |> List.map (fun v ->
                   let v = String.trim v in
                   match Qc_util.Dict.find (Schema.dict schema i) v with
                   | Some code -> code
                   | None ->
                     raise
                       (Parse_error
                          (Printf.sprintf "unknown value %S in dimension %s" v
                             (Schema.dim_name schema i))))
            |> Array.of_list)
        fields
    with
    | dims -> Ok (Range (Array.of_list dims))
    | exception Parse_error msg -> Error (Query.Bad_query msg)

let parse_iceberg rest =
  match String.split_on_char ' ' rest |> List.filter (fun s -> String.length s > 0) with
  | [ func; threshold ] -> (
    match (Agg.func_of_string func, float_of_string_opt threshold) with
    | f, Some th -> Ok (Iceberg { func = f; threshold = th })
    | _, None ->
      Error (Query.Bad_query (Printf.sprintf "bad iceberg threshold %S" threshold))
    | exception Invalid_argument _ ->
      Error (Query.Bad_query (Printf.sprintf "unknown aggregate function %S" func)))
  | _ -> Error (Query.Bad_query "iceberg expects: iceberg FUNC THRESHOLD")

let request_of_line schema line =
  let line = String.trim line in
  let kw, rest =
    match String.index_opt line ' ' with
    | Some i ->
      (String.sub line 0 i, String.trim (String.sub line (i + 1) (String.length line - i - 1)))
    | None -> (line, "")
  in
  let bare name req =
    if String.length rest = 0 then Ok req
    else Error (Query.Bad_query (Printf.sprintf "%s takes no arguments" name))
  in
  match kw with
  | "point" -> Result.map (fun q -> Query q) (parse_point schema rest)
  | "range" -> Result.map (fun q -> Query q) (parse_range schema rest)
  | "iceberg" -> Result.map (fun q -> Query q) (parse_iceberg rest)
  | "stats" -> bare "stats" Stats
  | "describe" -> bare "describe" Describe
  | _ ->
    Error
      (Query.Bad_query
         (Printf.sprintf "unknown request %S (expected point, range, iceberg, stats or describe)"
            kw))

(* The one shared error text: every frontend that numbers its input —
   batch files, [qct query]'s argv (line 1), the wire — renders parse
   failures as [Bad_query "line N: ..."] through this. *)
let at_line ?lineno schema result =
  match (result, lineno) with
  | Ok _, _ | Error _, None -> result
  | Error e, Some n ->
    (* [Bad_query]'s own rendering already says "bad query: "; unwrap it so
       the numbered text is not prefixed twice *)
    let detail =
      match e with
      | Query.Bad_query msg -> msg
      | e -> Query.error_to_string ~schema e
    in
    Error (Query.Bad_query (Printf.sprintf "line %d: %s" n detail))

let of_line ?lineno schema line = at_line ?lineno schema (request_of_line schema line)

let parse_query schema line =
  match request_of_line schema line with
  | Ok (Query q) -> Ok q
  | Ok (Stats | Describe) ->
    let kw = String.trim line in
    Error
      (Query.Bad_query
         (Printf.sprintf "%S is a protocol request, not a data query" kw))
  | Ok (Batch _) -> Error (Query.Bad_query "nested batch")  (* unreachable from of_line *)
  | Error _ as e -> e

let queries_of_lines schema text =
  let rec go lineno acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest ->
      let trimmed = String.trim line in
      if String.length trimmed = 0 || trimmed.[0] = '#' then go (lineno + 1) acc rest
      else (
        match at_line ~lineno schema (parse_query schema trimmed) with
        | Ok q -> go (lineno + 1) (q :: acc) rest
        | Error e -> Error e)
  in
  go 1 [] (String.split_on_char '\n' text)

(* Shortest float spelling that parses back to the same bits — iceberg
   thresholds must survive [of_line ∘ to_line]. *)
let float_exact f =
  let short = Printf.sprintf "%g" f in
  if Float.equal (float_of_string short) f then short else Printf.sprintf "%.17g" f

let cell_field schema i code = if code = Cell.all then "*" else Schema.decode_value schema i code

let to_line schema req =
  let line = function
    | Point cell ->
      Printf.sprintf "point %s"
        (String.concat "," (Array.to_list (Array.mapi (cell_field schema) cell)))
    | Range dims ->
      let dim i vs =
        if Array.length vs = 0 then "*"
        else String.concat "|" (Array.to_list (Array.map (Schema.decode_value schema i) vs))
      in
      Printf.sprintf "range %s" (String.concat "," (Array.to_list (Array.mapi dim dims)))
    | Iceberg { func; threshold } ->
      Printf.sprintf "iceberg %s %s" (Agg.func_to_string func) (float_exact threshold)
  in
  match req with
  | Query q -> Some (line q)
  | Stats -> Some "stats"
  | Describe -> Some "describe"
  | Batch _ -> None

let render_query schema = function
  | Point cell -> Printf.sprintf "point %s" (Cell.to_string schema cell)
  | Range q ->
    let dim i vs =
      if Array.length vs = 0 then "*"
      else String.concat "|" (Array.to_list (Array.map (Schema.decode_value schema i) vs))
    in
    Printf.sprintf "range (%s)" (String.concat ", " (Array.to_list (Array.mapi dim q)))
  | Iceberg { func; threshold } ->
    Printf.sprintf "iceberg %s %g" (Agg.func_to_string func) threshold

(* ---------- JSON codec ---------- *)

let cell_to_json schema cell =
  Jx.List (Array.to_list (Array.mapi (fun i c -> Jx.String (cell_field schema i c)) cell))

let agg_to_json (a : Agg.t) =
  Jx.Obj
    [ ("count", Jx.Int a.Agg.count); ("sum", Jx.Float a.Agg.sum); ("min", Jx.Float a.Agg.min);
      ("max", Jx.Float a.Agg.max) ]

let error_to_json schema (e : Query.error) =
  let obj kind fields = Jx.Obj (("kind", Jx.String kind) :: fields) in
  match e with
  | Query.Arity_mismatch { expected; got } ->
    obj "arity-mismatch" [ ("expected", Jx.Int expected); ("got", Jx.Int got) ]
  | Query.Empty_cover cell -> obj "empty-cover" [ ("cell", cell_to_json schema cell) ]
  | Query.Unsupported { backend; operation } ->
    obj "unsupported" [ ("backend", Jx.String backend); ("operation", Jx.String operation) ]
  | Query.Bad_query msg -> obj "bad-query" [ ("message", Jx.String msg) ]

let query_to_json schema = function
  | Point cell -> Jx.Obj [ ("op", Jx.String "point"); ("cell", cell_to_json schema cell) ]
  | Range dims ->
    let dim i vs =
      if Array.length vs = 0 then Jx.String "*"
      else
        Jx.List
          (Array.to_list (Array.map (fun v -> Jx.String (Schema.decode_value schema i v)) vs))
    in
    Jx.Obj
      [ ("op", Jx.String "range");
        ("dims", Jx.List (Array.to_list (Array.mapi dim dims))) ]
  | Iceberg { func; threshold } ->
    Jx.Obj
      [ ("op", Jx.String "iceberg"); ("func", Jx.String (Agg.func_to_string func));
        ("threshold", Jx.Float threshold) ]

let request_to_json schema = function
  | Query q -> query_to_json schema q
  | Batch qs ->
    Jx.Obj
      [ ("op", Jx.String "batch");
        ("queries", Jx.List (Array.to_list (Array.map (query_to_json schema) qs))) ]
  | Stats -> Jx.Obj [ ("op", Jx.String "stats") ]
  | Describe -> Jx.Obj [ ("op", Jx.String "describe") ]

let stats_to_json s =
  Jx.Obj
    [ ("generation", Jx.Int s.sv_generation); ("classes", Jx.Int s.sv_classes);
      ("nodes", Jx.Int s.sv_nodes); ("clients", Jx.Int s.sv_clients);
      ("served", Jx.Int s.sv_served); ("cache_hits", Jx.Int s.sv_cache_hits);
      ("cache_misses", Jx.Int s.sv_cache_misses);
      ("cache_evictions", Jx.Int s.sv_cache_evictions) ]

let ok_fields fields = Jx.Obj (("status", Jx.String "ok") :: fields)

let outcome_fields schema = function
  | Ok (Agg_answer a) -> [ ("agg", agg_to_json a) ]
  | Ok (Cells_answer cs) ->
    [ ( "cells",
        Jx.List
          (List.map
             (fun (c, a) -> Jx.Obj [ ("cell", cell_to_json schema c); ("agg", agg_to_json a) ])
             cs) ) ]
  | Error e -> [ ("error", error_to_json schema e) ]

let response_to_json schema = function
  | Answer (Ok _ as o) -> ok_fields (outcome_fields schema o)
  | Answer (Error e) -> Jx.Obj [ ("status", Jx.String "error"); ("error", error_to_json schema e) ]
  | Answers os ->
    ok_fields
      [ ( "outcomes",
          Jx.List (Array.to_list (Array.map (fun o -> Jx.Obj (outcome_fields schema o)) os)) ) ]
  | Stats_reply s -> ok_fields [ ("stats", stats_to_json s) ]
  | Describe_reply d -> ok_fields [ ("describe", Jx.String d) ]
  | Overloaded { pending; max_pending } ->
    Jx.Obj
      [ ("status", Jx.String "overloaded"); ("pending", Jx.Int pending);
        ("max_pending", Jx.Int max_pending) ]

(* -- decoding -- *)

exception Decode of string

let want_string what = function Jx.String s -> s | _ -> raise (Decode (what ^ ": expected a string"))

let want_int what = function Jx.Int i -> i | _ -> raise (Decode (what ^ ": expected an integer"))

let want_float what = function
  | Jx.Float f -> f
  | Jx.Int i -> float_of_int i
  | _ -> raise (Decode (what ^ ": expected a number"))

let want_list what = function Jx.List l -> l | _ -> raise (Decode (what ^ ": expected an array"))

let field what obj name =
  match Jx.member name obj with
  | Some v -> v
  | None -> raise (Decode (Printf.sprintf "%s: missing field %S" what name))

(* Value-level decode shares the text grammar's error messages so a typo
   reads the same over JSON and over a query file. *)
let code_of_value schema i v =
  if String.equal v "*" then Cell.all
  else
    match Qc_util.Dict.find (Schema.dict schema i) v with
    | Some code -> code
    | None ->
      raise
        (Decode
           (Printf.sprintf "unknown value %S in dimension %s" v (Schema.dim_name schema i)))

let cell_of_json schema what j =
  let vs = List.map (want_string what) (want_list what j) in
  let expected = Schema.n_dims schema in
  let got = List.length vs in
  if expected <> got then raise (Decode (Printf.sprintf "%s: arity %d, schema has %d" what got expected))
  else Array.of_list (List.mapi (code_of_value schema) vs)

let agg_of_json what j =
  {
    Agg.count = want_int (what ^ ".count") (field what j "count");
    sum = want_float (what ^ ".sum") (field what j "sum");
    min = want_float (what ^ ".min") (field what j "min");
    max = want_float (what ^ ".max") (field what j "max");
  }

let error_of_json schema what j : Query.error =
  match want_string (what ^ ".kind") (field what j "kind") with
  | "arity-mismatch" ->
    Query.Arity_mismatch
      { expected = want_int (what ^ ".expected") (field what j "expected");
        got = want_int (what ^ ".got") (field what j "got") }
  | "empty-cover" -> Query.Empty_cover (cell_of_json schema (what ^ ".cell") (field what j "cell"))
  | "unsupported" ->
    Query.Unsupported
      { backend = want_string (what ^ ".backend") (field what j "backend");
        operation = want_string (what ^ ".operation") (field what j "operation") }
  | "bad-query" -> Query.Bad_query (want_string (what ^ ".message") (field what j "message"))
  | k -> raise (Decode (Printf.sprintf "%s: unknown error kind %S" what k))

let query_of_json schema j =
  match want_string "op" (field "request" j "op") with
  | "point" -> Point (cell_of_json schema "cell" (field "point" j "cell"))
  | "range" ->
    let dims = want_list "dims" (field "range" j "dims") in
    let expected = Schema.n_dims schema in
    let got = List.length dims in
    if expected <> got then
      raise (Decode (Printf.sprintf "dims: arity %d, schema has %d" got expected))
    else
      Range
        (Array.of_list
           (List.mapi
              (fun i d ->
                match d with
                | Jx.String "*" -> [||]
                | Jx.String v -> [| code_of_value schema i v |]
                | Jx.List vs ->
                  Array.of_list
                    (List.map (fun v -> code_of_value schema i (want_string "dims" v)) vs)
                | _ -> raise (Decode "dims: expected \"*\" or an array of values"))
              dims))
  | "iceberg" ->
    let func_name = want_string "func" (field "iceberg" j "func") in
    let func =
      match Agg.func_of_string func_name with
      | f -> f
      | exception Invalid_argument _ ->
        raise (Decode (Printf.sprintf "unknown aggregate function %S" func_name))
    in
    Iceberg { func; threshold = want_float "threshold" (field "iceberg" j "threshold") }
  | op -> raise (Decode (Printf.sprintf "unknown op %S" op))

let of_json schema j =
  match
    match want_string "op" (field "request" j "op") with
    | "batch" ->
      let qs = want_list "queries" (field "batch" j "queries") in
      Batch (Array.of_list (List.map (query_of_json schema) qs))
    | "stats" -> Stats
    | "describe" -> Describe
    | _ -> Query (query_of_json schema j)
  with
  | req -> Ok req
  | exception Decode msg -> Error (Query.Bad_query msg)

let outcome_of_json schema what j : outcome =
  match Jx.member "error" j with
  | Some e -> Error (error_of_json schema (what ^ ".error") e)
  | None -> (
    match Jx.member "agg" j with
    | Some a -> Ok (Agg_answer (agg_of_json (what ^ ".agg") a))
    | None ->
      let cells = want_list (what ^ ".cells") (field what j "cells") in
      Ok
        (Cells_answer
           (List.map
              (fun c ->
                ( cell_of_json schema (what ^ ".cell") (field what c "cell"),
                  agg_of_json (what ^ ".agg") (field what c "agg") ))
              cells)))

let stats_of_json what j =
  let i name = want_int (what ^ "." ^ name) (field what j name) in
  {
    sv_generation = i "generation";
    sv_classes = i "classes";
    sv_nodes = i "nodes";
    sv_clients = i "clients";
    sv_served = i "served";
    sv_cache_hits = i "cache_hits";
    sv_cache_misses = i "cache_misses";
    sv_cache_evictions = i "cache_evictions";
  }

let response_of_json schema j =
  match
    match want_string "status" (field "response" j "status") with
    | "overloaded" ->
      Overloaded
        { pending = want_int "pending" (field "response" j "pending");
          max_pending = want_int "max_pending" (field "response" j "max_pending") }
    | "error" -> Answer (Error (error_of_json schema "error" (field "response" j "error")))
    | "ok" -> (
      match Jx.member "outcomes" j with
      | Some (Jx.List os) ->
        Answers (Array.of_list (List.map (outcome_of_json schema "outcome") os))
      | Some _ -> raise (Decode "outcomes: expected an array")
      | None -> (
        match Jx.member "stats" j with
        | Some s -> Stats_reply (stats_of_json "stats" s)
        | None -> (
          match Jx.member "describe" j with
          | Some d -> Describe_reply (want_string "describe" d)
          | None -> Answer (outcome_of_json schema "response" j))))
    | s -> raise (Decode (Printf.sprintf "unknown status %S" s))
  with
  | resp -> Ok resp
  | exception Decode msg -> Error msg

let of_wire schema line =
  let trimmed = String.trim line in
  if String.length trimmed > 0 && trimmed.[0] = '{' then
    match Jx.parse trimmed with
    | Ok j -> of_json schema j
    | Error msg -> Error (Query.Bad_query (Printf.sprintf "bad JSON: %s" msg))
  else request_of_line schema trimmed
