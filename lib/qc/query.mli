(** Query answering over QC-trees (paper Section 4).

    Point queries (Algorithm 3) trace at most one root-to-node path: the
    query's non-[*] values are consumed left to right through tree edges and
    drill-down links; when no labeled step exists, the search hops to the
    unique child on the current node's last dimension (Lemma 2).  The path
    reached is the query cell's class upper bound, whose node carries the
    aggregate.

    Range queries (Algorithm 4) expand one range dimension at a time and
    prune every prefix that cannot reach a cube cell.

    Iceberg queries use an index over class aggregates; constrained iceberg
    queries combine it with a range scan using either of the two strategies
    sketched in the paper. *)

open Qc_cube

(** {1 Typed errors}

    One failure vocabulary shared by every backend — re-exported as
    {!Engine.error} — replacing the historical mix of [option] returns and
    exceptions.  The legacy entry points remain as thin wrappers. *)

type error =
  | Arity_mismatch of { expected : int; got : int }
      (** the query names a different number of dimensions than the schema *)
  | Empty_cover of Cell.t
      (** the cell's cover set is empty — it is not in the cube *)
  | Unsupported of { backend : string; operation : string }
      (** the chosen backend cannot answer this operation at all *)
  | Bad_query of string  (** the query text failed to parse *)

val error_equal : error -> error -> bool

val error_to_string : ?schema:Schema.t -> error -> string
(** Human-readable rendering; with [schema] cells are decoded, otherwise
    they print as raw value codes. *)

val point_result : Qc_tree.t -> Cell.t -> (Agg.t, error) result
(** [point_result tree cell] is the aggregate summary of [cell];
    [Error (Empty_cover _)] when the cell is not in the cube,
    [Error (Arity_mismatch _)] when the cell's width disagrees with the
    schema. *)

val point_value_result : Qc_tree.t -> Agg.func -> Cell.t -> (float, error) result

val point : Qc_tree.t -> Cell.t -> Agg.t option
  [@@deprecated "use point_result or Engine.run_one"]
(** Deprecated wrapper around {!point_result} ([Error _] collapses to
    [None]); kept so pre-Engine callers compile.  New code must use
    {!point_result} or go through [Engine] — qclint's
    [deprecated-query-api] rule flags new uses. *)

val point_value : Qc_tree.t -> Agg.func -> Cell.t -> float option
  [@@deprecated "use point_value_result or Engine.run_one"]
(** Deprecated convenience wrapper reading one aggregate function off
    {!point}. *)

val locate : Qc_tree.t -> Cell.t -> Qc_tree.node option
(** The class upper-bound node of a cell, or [None] for empty cover.  This
    is the primitive shared by query answering and incremental
    maintenance. *)

(** {1 EXPLAIN} *)

type step_kind =
  | Tree_edge  (** a labeled tree edge consumed one query dimension *)
  | Link  (** a drill-down link consumed one query dimension *)
  | Last_dim_hop  (** Lemma 2: hopped to the last-dimension child while
                      searching for a later dimension's label *)
  | Descend  (** query dimensions exhausted; descending last-dimension
                 children to the class node *)

type step = { kind : step_kind; target : Qc_tree.node }

type outcome =
  | Hit
  | Miss_no_route of int
      (** no edge, link or hop could consume the query value on this
          dimension — the cell is not in the cube *)
  | Miss_no_class  (** the reached prefix has no class node below it *)
  | Miss_not_dominating
      (** a class was reached but its bound disagrees with the query cell on
          an instantiated dimension (empty cover) *)

type explanation = {
  cell : Cell.t;
  steps : step list;  (** every node transition, in root-to-answer order *)
  outcome : outcome;
  result : (Qc_tree.node * Agg.t) option;  (** [Some] iff [outcome = Hit] *)
}

val explain : Qc_tree.t -> Cell.t -> explanation
(** Run Algorithm 3 for [cell] recording the exact root-to-answer path.
    [explain] and {!point} always agree: the result is [Some] exactly when
    {!point} answers, and the recorded steps are the nodes the search
    touches (by Lemma 2 at most one edge/link per instantiated query
    dimension, plus last-dimension hops). *)

val nodes_touched : explanation -> int
(** [1] (the root) plus one per step — the unit of Figure 13's work
    accounting; equals {!node_accesses} of the same cell. *)

val pp_explanation : Qc_tree.t -> Format.formatter -> explanation -> unit
(** Render the path with decoded dimension values and step kinds (the
    output of [qct explain]). *)

type range = int array array
(** A range query: one entry per dimension; [ [||] ] means [*], a singleton
    means a point constraint, several values enumerate the range (the paper's
    set form handles both numeric and hierarchical ranges). *)

val range : Qc_tree.t -> range -> (Cell.t * Agg.t) list
  [@@deprecated "use range_result or Engine.run_one"]
(** All cells in the given range with non-empty cover, with their
    aggregates.  Each returned cell is the range instantiation that matched
    (with [*] in unconstrained dimensions).
    @raise Invalid_argument on arity mismatch; {!range_result} reports it as
    a typed error instead. *)

val range_result : Qc_tree.t -> range -> ((Cell.t * Agg.t) list, error) result
(** {!range} with the arity check reported as [Error (Arity_mismatch _)]
    instead of an exception.  An empty result list is [Ok []] — unlike a
    point query, an empty range is not an error. *)

val range_of_cells : Qc_tree.t -> range -> Cell.t list
(** The cross-product of a range as point-query cells — the naive plan the
    paper compares against; used by tests and benchmarks. *)

(** {1 Iceberg queries} *)

type measure_index
(** A sorted index from aggregate values to class nodes — the stand-in for
    the B+-tree on the measure attribute the paper describes. *)

val make_index : Qc_tree.t -> Agg.func -> measure_index

val iceberg : measure_index -> threshold:float -> (Cell.t * Agg.t) list
(** Pure iceberg query: every class upper bound whose aggregate is at least
    [threshold]. *)

val iceberg_range :
  ?strategy:[ `Filter | `Mark ] ->
  Qc_tree.t ->
  measure_index ->
  range ->
  threshold:float ->
  (Cell.t * Agg.t) list
(** Constrained iceberg query.  [`Filter] runs the range query and filters
    by the threshold (the paper's choice 1); [`Mark] first marks the class
    nodes above the threshold plus their ancestors via the index and answers
    the range query inside the marked subtree (choice 2).  Both return the
    same answers. *)

val node_accesses : Qc_tree.t -> Cell.t -> int
(** Number of tree nodes the point query for this cell visits.  The paper's
    Figure 13 discussion contrasts this with Dwarf, which always visits one
    node per dimension. *)

(** {1 Packed fast path}

    Step-for-step mirrors of the algorithms above over a frozen
    {!Packed.t}.  The packed search visits the same nodes in the same order
    as the mutable search, returns identical answers, reports identical
    {!node_accesses_packed}, and bumps the same metrics counters. *)

val point_result_packed : Packed.t -> Cell.t -> (Agg.t, error) result

val point_value_result_packed : Packed.t -> Agg.func -> Cell.t -> (float, error) result

val range_result_packed : Packed.t -> range -> ((Cell.t * Agg.t) list, error) result

val point_packed : Packed.t -> Cell.t -> Agg.t option
  [@@deprecated "use point_result_packed or Engine.run_one"]
(** Deprecated wrapper around {!point_result_packed}. *)

val point_value_packed : Packed.t -> Agg.func -> Cell.t -> float option
  [@@deprecated "use point_value_result_packed or Engine.run_one"]
(** Deprecated wrapper around {!point_value_result_packed}. *)

val locate_packed : Packed.t -> Cell.t -> int option
(** The class upper-bound node id of a cell, or [None] for empty cover. *)

val range_packed : Packed.t -> range -> (Cell.t * Agg.t) list
  [@@deprecated "use range_result_packed or Engine.run_one"]
(** Algorithm 4 over the packed layout; result cells, aggregates and order
    are identical to {!range} on the tree the structure was frozen from. *)

type packed_step = { pkind : step_kind; pnode : int }

type packed_explanation = {
  pcell : Cell.t;
  psteps : packed_step list;
  poutcome : outcome;
  presult : (int * Agg.t) option;
}

val explain_packed : Packed.t -> Cell.t -> packed_explanation
(** Algorithm 3 over the packed layout, recording the path.  Step kinds,
    outcome and visited cells match {!explain} on the source tree. *)

val nodes_touched_packed : packed_explanation -> int

val pp_packed_explanation : Packed.t -> Format.formatter -> packed_explanation -> unit

val node_accesses_packed : Packed.t -> Cell.t -> int
(** Equals {!node_accesses} of the same cell on the tree the packed
    structure was frozen from. *)
