(** QC-tree persistence.

    Two on-disk formats:

    - The line-oriented {e text} format ("qctree 1" header): schema,
      dictionaries, class upper bounds with aggregates, drill-down links.
      Aggregate floats round-trip exactly (hexadecimal float notation);
      dictionary codes are preserved, so a reloaded tree is canonically
      equal to the saved one.
    - The compact {e packed binary} format ("QCTP" magic, version byte):
      the {!Packed} columns serialized little-endian, several times smaller
      and loaded without re-running path insertion.

    All parsers raise the typed {!Error} on malformed input — truncation,
    wrong magic, unsupported version, dimension-count mismatches and
    structural violations are each reported precisely, never as a bare
    [Failure] and never as an out-of-bounds crash. *)

type error =
  | Truncated  (** input ends before the structure is complete *)
  | Bad_magic of string  (** leading bytes match no known format *)
  | Bad_version of int
  | Dim_mismatch of { expected : int; got : int }
      (** declared dimension count disagrees with the data *)
  | Malformed of string  (** any other structural violation *)

exception Error of error

val error_to_string : error -> string

val pp_error : Format.formatter -> error -> unit

(** {1 Text format} *)

val to_string : Qc_tree.t -> string

val of_string : string -> Qc_tree.t
(** @raise Error on malformed input. *)

(** {1 Packed binary format} *)

val packed_magic : string
(** The 4-byte header ("QCTP") that identifies the binary format — exposed
    so {!Check} and the CLI can sniff buffers without parsing them. *)

val to_packed_string : Packed.t -> string

val of_packed_string : string -> Packed.t
(** @raise Error on malformed input — every read is bounds-checked and the
    decoded columns are validated by {!Packed.of_arrays} before use. *)

(** {1 Files}

    [load]/[load_any]/[load_packed] sniff the leading bytes and accept
    either format, converting as needed.  Saves are atomic and fsync'd
    (write-to-temporary, fsync, rename via {!Qc_util.Durable} under the
    [serial.save.*] failpoint labels), so a crash mid-save leaves either
    the previous file or the complete new one. *)

val save : Qc_tree.t -> string -> unit

val save_packed : Packed.t -> string -> unit

val load : string -> Qc_tree.t
(** @raise Error on malformed input; [Sys_error] on IO failure. *)

val load_packed : string -> Packed.t
(** @raise Error on malformed input; [Sys_error] on IO failure. *)

val load_any : string -> [ `Tree of Qc_tree.t | `Packed of Packed.t ]
(** Load whichever format the file holds, without conversion. *)

val of_string_any : string -> [ `Tree of Qc_tree.t | `Packed of Packed.t ]
