open Qc_cube
module Metrics = Qc_util.Metrics

let log = Logs.Src.create "qc.tree" ~doc:"QC-tree structure maintenance"

module Log = (val Logs.src_log log)

(* Construction-side work counters: how much structure the tree grows and
   how much it shares (a prefix hit is an [insert_path] step resolved by an
   existing edge instead of a fresh node). *)
let m_nodes = Metrics.counter "tree.nodes_created"

let m_links = Metrics.counter "tree.links_created"

let m_prefix_hits = Metrics.counter "tree.prefix_hits"

type node = {
  nid : int;
  dim : int;
  label : int;
  parent : node option;
  mutable children : node list;
  mutable links : (int * int * node) list;
  mutable agg : Agg.t option;
  mutable last_child_cache : node option;
      (* child on the maximal dimension; the hop of Lemma 2 is hot on query
         paths, so it is maintained incrementally instead of scanning the
         fan-out *)
}

type entry = Edge of node | Link of node

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  (* Mix high bits (node id) into the low bits the bucket mask keeps
     (SplitMix64 finalizer). *)
  let hash x =
    let x = x lxor (x lsr 33) in
    let x = x * 0xFF51AFD7ED558CC land max_int in
    let x = x lxor (x lsr 29) in
    x land max_int
end)

type t = {
  schema : Schema.t;
  root : node;
  mutable next_id : int;
  (* packed (source node id, dimension, label) -> outgoing edge or link.
     Gives O(1) [searchroute] steps independently of fan-out; the packed
     integer key avoids per-lookup tuple allocation and generic hashing. *)
  index : entry Int_tbl.t;
}

(* Key layout: 20 bits label | 4 bits dimension | the rest node id.  The
   bounds are checked when edges are added. *)
let pack nid dim label = (((nid lsl 4) lor dim) lsl 20) lor label

let check_packable dim label =
  if dim < 0 || dim > 15 then
    invalid_arg "Qc_tree: at most 16 dimensions are supported";
  if label < 0 || label > 0xFFFFF then
    invalid_arg "Qc_tree: dimension cardinality is limited to 2^20 - 1"

let create schema =
  let root =
    {
      nid = 0;
      dim = -1;
      label = 0;
      parent = None;
      children = [];
      links = [];
      agg = None;
      last_child_cache = None;
    }
  in
  { schema; root; next_id = 1; index = Int_tbl.create 4096 }

let schema t = t.schema

let root t = t.root

let find_edge t node dim label =
  match Int_tbl.find_opt t.index (pack node.nid dim label) with
  | Some (Edge n) -> Some n
  | Some (Link _) | None -> None

let find_edge_or_link t node dim label =
  match Int_tbl.find_opt t.index (pack node.nid dim label) with
  | Some (Edge n) | Some (Link n) -> Some n
  | None -> None

let find_entry t node dim label = Int_tbl.find_opt t.index (pack node.nid dim label)

let add_child t parent dim label =
  check_packable dim label;
  (* Definition 1 forbids a tree edge and a link with the same label out of
     one node; when a new path claims a label held by a link, the link is
     superseded. *)
  (match Int_tbl.find_opt t.index (pack parent.nid dim label) with
  | Some (Link _) ->
    parent.links <- List.filter (fun (d, l, _) -> not (d = dim && l = label)) parent.links;
    Int_tbl.remove t.index (pack parent.nid dim label)
  | Some (Edge _) -> invalid_arg "Qc_tree.add_child: edge already present"
  | None -> ());
  let n =
    {
      nid = t.next_id;
      dim;
      label;
      parent = Some parent;
      children = [];
      links = [];
      agg = None;
      last_child_cache = None;
    }
  in
  Metrics.incr m_nodes;
  t.next_id <- t.next_id + 1;
  parent.children <- n :: parent.children;
  (* keep a filled cache current; an invalidated (None) cache is rebuilt
     lazily by [last_dim_child], which will see the new child anyway *)
  (match parent.last_child_cache with
  | Some m when (m.dim, m.label) > (dim, label) -> ()
  | Some _ -> parent.last_child_cache <- Some n
  | None -> ());
  Int_tbl.replace t.index (pack parent.nid dim label) (Edge n);
  n

let insert_path t ub =
  let d = Array.length ub in
  let rec go node i =
    if i >= d then node
    else if ub.(i) = Cell.all then go node (i + 1)
    else
      let next =
        match find_edge t node i ub.(i) with
        | Some n ->
          Metrics.incr m_prefix_hits;
          n
        | None -> add_child t node i ub.(i)
      in
      go next (i + 1)
  in
  go t.root 0

let find_path t ub =
  let d = Array.length ub in
  let rec go node i =
    if i >= d then Some node
    else if ub.(i) = Cell.all then go node (i + 1)
    else
      match find_edge t node i ub.(i) with
      | Some n -> go n (i + 1)
      | None -> None
  in
  go t.root 0

let set_agg node agg = node.agg <- agg

let add_link t ~src ~dim ~label ~dst =
  check_packable dim label;
  match Int_tbl.find_opt t.index (pack src.nid dim label) with
  | Some (Edge n) | Some (Link n) ->
    if n != dst then
      invalid_arg "Qc_tree.add_link: conflicting edge or link on this label"
  | None ->
    Metrics.incr m_links;
    src.links <- (dim, label, dst) :: src.links;
    Int_tbl.replace t.index (pack src.nid dim label) (Link dst)

let remove_link t ~src ~dim ~label =
  (match Int_tbl.find_opt t.index (pack src.nid dim label) with
  | Some (Link _) -> Int_tbl.remove t.index (pack src.nid dim label)
  | Some (Edge _) -> invalid_arg "Qc_tree.remove_link: found a tree edge"
  | None -> ());
  src.links <- List.filter (fun (d, l, _) -> not (d = dim && l = label)) src.links

let remove_child t child =
  match child.parent with
  | None -> invalid_arg "Qc_tree.remove_child: cannot remove the root"
  | Some parent ->
    parent.children <- List.filter (fun n -> n != child) parent.children;
    parent.last_child_cache <- None;
    Int_tbl.remove t.index (pack parent.nid child.dim child.label)

let rec prune_upward t node =
  if
    Option.is_some node.parent && Option.is_none node.agg
    && List.is_empty node.children && List.is_empty node.links
  then begin
    let parent = node.parent in
    remove_child t node;
    match parent with Some p -> prune_upward t p | None -> ()
  end

let node_cell t node =
  let cell = Cell.make_all (Schema.n_dims t.schema) in
  let rec up n =
    match n.parent with
    | None -> ()
    | Some p ->
      cell.(n.dim) <- n.label;
      up p
  in
  up node;
  cell

let scan_last_child node =
  let better a b =
    (* maximal dimension, then maximal label (latest in dictionary order) *)
    if a.dim <> b.dim then a.dim > b.dim else a.label > b.label
  in
  List.fold_left
    (fun acc n -> match acc with Some m when better m n -> acc | _ -> Some n)
    None node.children

let last_dim_child node =
  match node.last_child_cache with
  | Some _ as c -> c
  | None ->
    let c = scan_last_child node in
    node.last_child_cache <- c;
    c

let rec iter_node f n =
  f n;
  List.iter (iter_node f) n.children

let iter_nodes f t = iter_node f t.root

let iter_classes f t =
  iter_nodes
    (fun n -> match n.agg with Some a -> f n (node_cell t n) a | None -> ())
    t

let drop_links_to_dead_targets t =
  let live = Hashtbl.create 256 in
  iter_nodes (fun n -> Hashtbl.replace live n.nid ()) t;
  iter_nodes
    (fun n ->
      List.iter
        (fun (dim, label, dst) ->
          if not (Hashtbl.mem live dst.nid) then remove_link t ~src:n ~dim ~label)
        n.links)
    t

let n_nodes t =
  let k = ref 0 in
  iter_nodes (fun _ -> incr k) t;
  !k

let n_links t =
  let k = ref 0 in
  iter_nodes (fun n -> k := !k + List.length n.links) t;
  !k

let n_classes t =
  let k = ref 0 in
  iter_nodes (fun n -> if Option.is_some n.agg then incr k) t;
  !k

let bytes t =
  let open Qc_util.Size in
  let nodes = n_nodes t - 1 (* the root stores nothing *) in
  let links = n_links t in
  let classes = n_classes t in
  (nodes * (value_bytes + pointer_bytes))
  + (links * (value_bytes + pointer_bytes))
  + (classes * measure_bytes)

(* Construction: Algorithm 1, second phase. *)
let of_temp_classes schema classes =
  let t = create schema in
  let sorted = List.sort Temp_class.compare_for_insertion classes in
  let node_of_class : (int, node) Hashtbl.t = Hashtbl.create 1024 in
  let last : (Cell.t * node) option ref = ref None in
  let link_label (tc : Temp_class.t) child_ub =
    (* First dimension where the lattice child's upper bound is [*] but the
       current class's lower bound is not: the drill-down dimension. *)
    let d = Array.length child_ub in
    let rec go i =
      if i >= d then None
      else if child_ub.(i) = Cell.all && tc.lb.(i) <> Cell.all then Some (i, tc.lb.(i))
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun (tc : Temp_class.t) ->
      let node =
        match !last with
        | Some (ub, node) when Cell.equal ub tc.ub ->
          (* Redundant temporary class: add one drill-down connection per
             Definition 1 — labeled by the drill-down dimension value, from
             the lattice child's upper-bound prefix before that dimension to
             this upper bound's prefix through it.  When the two prefixes are
             already joined by a tree edge, no link is needed. *)
          (match Hashtbl.find_opt node_of_class tc.child with
          | None -> invalid_arg "Qc_tree.of_temp_classes: dangling lattice child"
          | Some child_node ->
            let child_ub = node_cell t child_node in
            (match link_label tc child_ub with
            | Some (dim, label) ->
              let truncate cell limit =
                Array.mapi (fun i v -> if i < limit then v else Cell.all) cell
              in
              let src =
                match find_path t (truncate child_ub dim) with
                | Some n -> n
                | None -> invalid_arg "Qc_tree.of_temp_classes: missing source prefix"
              in
              let dst =
                match find_path t (truncate tc.ub (dim + 1)) with
                | Some n -> n
                | None -> invalid_arg "Qc_tree.of_temp_classes: missing target prefix"
              in
              let already_tree_edge =
                match dst.parent with Some p -> p == src | None -> false
              in
              if not already_tree_edge then add_link t ~src ~dim ~label ~dst
            | None -> ()));
          node
        | _ ->
          let node = insert_path t tc.ub in
          set_agg node (Some tc.agg);
          last := Some (Cell.copy tc.ub, node);
          node
      in
      Hashtbl.replace node_of_class tc.id node)
    sorted;
  Log.info (fun m ->
      m "built tree from %d temp classes: %d nodes, %d links, %d classes"
        (List.length classes) (n_nodes t) (n_links t) (n_classes t));
  t

let of_table table = of_temp_classes (Table.schema table) (Dfs.run table)

let copy t =
  (* Deep-copy nodes first, then remap links through the id correspondence. *)
  let t' = create t.schema in
  let mapping = Hashtbl.create 1024 in
  let mapped nid =
    match Hashtbl.find_opt mapping nid with
    | Some n -> n
    | None -> invalid_arg "Qc_tree.copy: link endpoint outside the tree"
  in
  Hashtbl.replace mapping t.root.nid t'.root;
  let rec clone_children src dst =
    (* children are prepended on insertion; rebuild in original order *)
    List.iter
      (fun (c : node) ->
        let c' = add_child t' dst c.dim c.label in
        c'.agg <- c.agg;
        Hashtbl.replace mapping c.nid c';
        clone_children c c')
      (List.rev src.children)
  in
  t'.root.agg <- t.root.agg;
  clone_children t.root t'.root;
  iter_nodes
    (fun n ->
      let src' = mapped n.nid in
      List.iter
        (fun (dim, label, dst) ->
          add_link t' ~src:src' ~dim ~label ~dst:(mapped dst.nid))
        (List.rev n.links))
    t;
  t'


(* The canonical child/link order: ascending dimension, then label. *)
let compare_dim_label d l d' l' =
  let c = Int.compare d d' in
  if c <> 0 then c else Int.compare l l'

let sorted_children n =
  List.sort (fun a b -> compare_dim_label a.dim a.label b.dim b.label) n.children

let sorted_links n =
  List.sort (fun (d, l, _) (d', l', _) -> compare_dim_label d l d' l') n.links

let path_string_dims t n =
  let cell = node_cell t n in
  let parts = ref [] in
  Array.iteri (fun i v -> if v <> Cell.all then parts := Printf.sprintf "%d:%d" i v :: !parts) cell;
  String.concat "." (List.rev !parts)

let canonical_string t =
  let buf = Buffer.create 4096 in
  let agg_repr = function
    | None -> "-"
    | Some (a : Agg.t) ->
      Printf.sprintf "c%d,s%.6g,m%.6g,M%.6g" a.count a.sum a.min a.max
  in
  let rec go n =
    Buffer.add_string buf
      (Printf.sprintf "(%d:%d|%s" n.dim n.label (agg_repr n.agg));
    List.iter
      (fun (d, l, dst) ->
        Buffer.add_string buf (Printf.sprintf "[%d:%d->%s]" d l (path_string_dims t dst)))
      (sorted_links n);
    List.iter go (sorted_children n);
    Buffer.add_char buf ')'
  in
  go t.root;
  Buffer.contents buf

let pp ppf t =
  let rec go indent n =
    let label =
      if n.dim < 0 then "Root"
      else Printf.sprintf "%s=%s" (Schema.dim_name t.schema n.dim)
          (Schema.decode_value t.schema n.dim n.label)
    in
    let agg = match n.agg with None -> "" | Some a -> Format.asprintf " %a" Agg.pp a in
    Format.fprintf ppf "%s%s%s@." (String.make indent ' ') label agg;
    List.iter
      (fun (d, l, dst) ->
        Format.fprintf ppf "%s ~link %s=%s -> node %d@." (String.make indent ' ')
          (Schema.dim_name t.schema d) (Schema.decode_value t.schema d l) dst.nid)
      (sorted_links n);
    List.iter (go (indent + 2)) (sorted_children n)
  in
  go 0 t.root

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let seen_labels = Hashtbl.create 64 in
  iter_nodes
    (fun n ->
      Hashtbl.reset seen_labels;
      List.iter
        (fun c ->
          if c.dim <= n.dim then
            err "node %d: child %d does not increase dimension (%d <= %d)" n.nid c.nid c.dim n.dim;
          if Hashtbl.mem seen_labels (c.dim, c.label) then
            err "node %d: duplicate child label (%d,%d)" n.nid c.dim c.label;
          Hashtbl.replace seen_labels (c.dim, c.label) ();
          (match c.parent with
          | Some p when p == n -> ()
          | _ -> err "node %d: child %d has wrong parent" n.nid c.nid);
          match Int_tbl.find_opt t.index (pack n.nid c.dim c.label) with
          | Some (Edge e) when e == c -> ()
          | _ -> err "node %d: child (%d,%d) missing from index" n.nid c.dim c.label)
        n.children;
      List.iter
        (fun (d, l, dst) ->
          if Hashtbl.mem seen_labels (d, l) then
            err "node %d: link label (%d,%d) duplicates an edge or link" n.nid d l;
          Hashtbl.replace seen_labels (d, l) ();
          match Int_tbl.find_opt t.index (pack n.nid d l) with
          | Some (Link e) when e == dst -> ()
          | _ -> err "node %d: link (%d,%d) missing from index" n.nid d l)
        n.links)
    t;
  (* No stale index entries. *)
  let live = Hashtbl.create 256 in
  iter_nodes (fun n -> Hashtbl.replace live n.nid ()) t;
  Int_tbl.iter
    (fun key _ ->
      let src = key lsr 24 in
      if not (Hashtbl.mem live src) then
        err "index: stale entry from dead node %d (key %d)" src key)
    t.index;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
