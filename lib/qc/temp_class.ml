open Qc_cube

type t = {
  id : int;
  lb : Cell.t;
  ub : Cell.t;
  child : int;
  agg : Agg.t;
}

let compare_for_insertion a b =
  let c = Cell.compare_dict a.ub b.ub in
  if c <> 0 then c else Int.compare a.id b.id

let compare_for_deletion a b =
  let c = Cell.compare_rev_dict a.ub b.ub in
  if c <> 0 then c else Int.compare a.id b.id

let pp schema ppf t =
  Format.fprintf ppf "i%d: ub=%s lb=%s child=i%d agg=%a" t.id
    (Cell.to_string schema t.ub) (Cell.to_string schema t.lb) t.child Agg.pp t.agg
