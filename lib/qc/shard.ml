open Qc_cube
module Metrics = Qc_util.Metrics
module Trace = Qc_util.Trace

type partitioner = Hash | Range of int

let partitioner_equal a b =
  match (a, b) with
  | Hash, Hash -> true
  | Range i, Range j -> i = j
  | (Hash | Range _), _ -> false

let partitioner_to_string schema = function
  | Hash -> "hash"
  | Range d -> "range:" ^ Schema.dim_name schema d

let partitioner_of_string schema s =
  if String.equal s "hash" then Ok Hash
  else if String.length s > 6 && String.equal (String.sub s 0 6) "range:" then begin
    let key = String.sub s 6 (String.length s - 6) in
    let n = Schema.n_dims schema in
    match int_of_string_opt key with
    | Some i when i >= 0 && i < n -> Ok (Range i)
    | Some i -> Error (Printf.sprintf "dimension index %d out of range (0..%d)" i (n - 1))
    | None ->
      let rec find i =
        if i >= n then Error (Printf.sprintf "unknown dimension %S" key)
        else if String.equal (Schema.dim_name schema i) key then Ok (Range i)
        else find (i + 1)
      in
      find 0
  end
  else Error (Printf.sprintf "bad partitioner %S (expected hash or range:DIM)" s)

(* FNV-1a over the dimension codes, folded to a non-negative int.  Placement
   must be a pure function of the codes so it survives save/reload (both
   serial formats preserve dictionary code assignment). *)
let hash_cell (cell : Cell.t) =
  let h = ref 0x811c9dc5 in
  Array.iter (fun v -> h := (!h lxor v) * 0x01000193 land max_int) cell;
  !h

let shard_of_tuple schema p ~shards cell =
  match p with
  | Hash -> hash_cell cell mod shards
  | Range dim ->
    let card = max 1 (Schema.cardinality schema dim) in
    let code = max 1 cell.(dim) in
    min (shards - 1) ((code - 1) * shards / card)

let split ~partitioner ~shards table =
  if shards < 1 then invalid_arg "Shard.split: shard count must be at least 1";
  let schema = Table.schema table in
  (match partitioner with
  | Range d when d < 0 || d >= Schema.n_dims schema ->
    invalid_arg "Shard.split: range partitioner dimension out of range"
  | Hash | Range _ -> ());
  let parts = Array.init shards (fun _ -> Table.create schema) in
  Table.iter
    (fun cell m ->
      Table.add_encoded parts.(shard_of_tuple schema partitioner ~shards cell) cell m)
    table;
  parts

let m_builds = Metrics.counter "shard.builds"

let m_fanout = Metrics.counter "shard.fanout"

let build_packed ?jobs tables =
  let n = Array.length tables in
  if n = 0 then [||]
  else begin
    let jobs =
      match jobs with Some j when j >= 1 -> j | Some _ -> 1 | None -> Engine.default_jobs ()
    in
    let jobs = max 1 (min jobs n) in
    let out = Array.make n None in
    let build_one i =
      let tbl = tables.(i) in
      Trace.with_span ~cat:"shard"
        ~args:[ ("shard", Trace.Int i); ("rows", Trace.Int (Table.n_rows tbl)) ]
        "shard.build"
        (fun () ->
          Metrics.incr m_builds;
          out.(i) <- Some (Packed.of_tree (Qc_tree.of_table tbl)))
    in
    (* shard chunk k is [k*n/jobs, (k+1)*n/jobs): contiguous, disjoint slots *)
    let run_chunk k =
      for i = k * n / jobs to ((k + 1) * n / jobs) - 1 do
        build_one i
      done
    in
    (if jobs = 1 then run_chunk 0
     else begin
       let metrics_on = Metrics.enabled () and tracing = Trace.enabled () in
       let workers =
         Array.init jobs (fun k ->
             Domain.spawn (fun () ->
                 run_chunk k;
                 ( (if metrics_on then Some (Metrics.drain ()) else None),
                   if tracing then Some (Trace.drain ()) else None )))
       in
       (* join and absorb in chunk order so counter totals, histogram
          samples and span multisets match a sequential build exactly *)
       Array.iter
         (fun d ->
           let md, td = Domain.join d in
           Option.iter Metrics.absorb md;
           Option.iter Trace.absorb td)
         workers
     end);
    Array.map (function Some p -> p | None -> assert false) out
  end

type t = {
  parts : Packed.t array;
  part : partitioner;
}

let of_parts ~partitioner parts =
  if Array.length parts = 0 then invalid_arg "Shard.of_parts: no shards";
  { parts; part = partitioner }

let build ?jobs ~partitioner ~shards table =
  of_parts ~partitioner (build_packed ?jobs (split ~partitioner ~shards table))

let parts t = t.parts

let n_shards t = Array.length t.parts

let partitioner t = t.part

let by_cell (c1, _) (c2, _) = Cell.compare_dict c1 c2

exception Gather_error of Engine.error

module Gather (B : Engine.BACKEND) = struct
  type t = B.t array

  let name = "shard[" ^ B.name ^ "]"

  let schema parts = B.schema parts.(0)

  let describe parts =
    Printf.sprintf "scatter-gather over %d shards; shard 0: %s" (Array.length parts)
      (B.describe parts.(0))

  (* The error discipline of every fan-out below: the typed error of the
     lowest-indexed failing shard surfaces alone — one deterministic
     error, never one copy per shard.  [Empty_cover] from a point query is
     a per-shard non-answer (the merge identity), not a failure. *)

  let point parts cell =
    if Array.length parts = 1 then B.point parts.(0) cell
    else
      match Engine.check_arity (schema parts) (Array.length cell) with
      | Error _ as e -> e
      | Ok () ->
        Metrics.add m_fanout (Array.length parts);
        let err = ref None in
        let acc = ref Agg.empty in
        let hits = ref 0 in
        Array.iter
          (fun part ->
            if Option.is_none !err then
              match B.point part cell with
              | Ok agg ->
                acc := Agg.merge !acc agg;
                incr hits
              | Error (Engine.Empty_cover _) -> ()
              | Error e -> err := Some e)
          parts;
        (match !err with
        | Some e -> Error e
        | None ->
          if !hits = 0 then Error (Engine.Empty_cover (Cell.copy cell)) else Ok !acc)

  (* Algorithm 4's emission order, re-derived: the single tree expands
     dimensions in schema order and range values in query order, so an
     instantiation's position is the lexicographic rank of its
     per-dimension occurrence indices within the query's value lists.
     Sorting the merged cells by that rank reproduces the unsharded
     answer's order exactly (including duplicate emissions when a value is
     repeated within one dimension). *)
  let compare_rank a b =
    let n = Array.length a in
    let rec go i =
      if i >= n then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

  let range parts q =
    if Array.length parts = 1 then B.range parts.(0) q
    else
      match Engine.check_arity (schema parts) (Array.length q) with
      | Error _ as e -> e
      | Ok () ->
        Metrics.add m_fanout (Array.length parts);
        let err = ref None in
        let merged = Cell.Tbl.create 64 in
        Array.iter
          (fun part ->
            if Option.is_none !err then
              match B.range part q with
              | Ok cells ->
                List.iter
                  (fun (c, a) ->
                    match Cell.Tbl.find_opt merged c with
                    | Some prev -> Cell.Tbl.replace merged c (Agg.merge prev a)
                    | None -> Cell.Tbl.replace merged (Cell.copy c) a)
                  cells
              | Error e -> err := Some e)
          parts;
        (match !err with
        | Some e -> Error e
        | None ->
          let occ =
            Array.map
              (fun vs ->
                let tbl = Hashtbl.create 8 in
                Array.iteri
                  (fun i v ->
                    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
                    Hashtbl.replace tbl v (prev @ [ i ]))
                  vs;
                tbl)
              q
          in
          let constrained = ref [] in
          Array.iteri (fun i vs -> if Array.length vs > 0 then constrained := i :: !constrained) q;
          let constrained = List.rev !constrained in
          let ranks cell =
            List.fold_left
              (fun acc i ->
                let occs =
                  match Hashtbl.find_opt occ.(i) cell.(i) with Some l -> l | None -> []
                in
                List.concat_map (fun prefix -> List.map (fun o -> prefix @ [ o ]) occs) acc)
              [ [] ] constrained
          in
          let entries =
            Cell.Tbl.fold
              (fun c a acc ->
                List.fold_left (fun acc r -> (Array.of_list r, c, a) :: acc) acc (ranks c))
              merged []
          in
          let entries = List.sort (fun (r1, _, _) (r2, _, _) -> compare_rank r1 r2) entries in
          Ok (List.map (fun (_, c, a) -> (c, a)) entries))

  let iceberg parts func ~threshold =
    if Array.length parts = 1 then B.iceberg parts.(0) func ~threshold
    else begin
      Metrics.add m_fanout (Array.length parts);
      (* Gather per-shard class lists unthresholded: a class may clear the
         threshold only after the cross-shard merge, so per-shard
         thresholding would be wrong for every aggregate function. *)
      let err = ref None in
      let lists =
        Array.map
          (fun part ->
            if Option.is_some !err then []
            else
              match B.iceberg part func ~threshold:neg_infinity with
              | Ok cells -> cells
              | Error e ->
                err := Some e;
                [])
          parts
      in
      match !err with
      | Some e -> Error e
      | None ->
        (* The global closed-cell set is the meet-closure of the union of
           the per-shard upper-bound sets.  Each per-shard set is itself
           meet-closed (a shard upper bound is the meet of a subset of the
           shard's tuples, and meets of such meets are again such meets),
           so folding shard by shard — adding the shard's bounds plus
           their meets with everything accumulated so far — reaches the
           fixpoint, which is exactly the global class upper-bound set. *)
        let closed = Cell.Tbl.create 256 in
        let add c = if not (Cell.Tbl.mem closed c) then Cell.Tbl.replace closed c () in
        Array.iter
          (fun cells ->
            let existing = Cell.Tbl.fold (fun c () acc -> c :: acc) closed [] in
            List.iter
              (fun (u, _) ->
                add u;
                List.iter (fun v -> add (Cell.meet u v)) existing)
              cells)
          lists;
        (* merge each candidate's per-shard cover aggregates (AVG stays
           sum+count throughout); the threshold applies only post-merge *)
        let out = ref [] in
        (try
           Cell.Tbl.iter
             (fun u () ->
               let acc = ref Agg.empty in
               Array.iter
                 (fun part ->
                   match B.point part u with
                   | Ok a -> acc := Agg.merge !acc a
                   | Error (Engine.Empty_cover _) -> ()
                   | Error e -> raise (Gather_error e))
                 parts;
               if (not (Agg.is_empty !acc)) && Agg.value func !acc >= threshold then
                 out := (Cell.copy u, !acc) :: !out)
             closed;
           Ok (List.sort by_cell !out)
         with Gather_error e -> Error e)
    end

  let explain parts cell =
    if Array.length parts = 1 then B.explain parts.(0) cell
    else
      match Engine.check_arity (schema parts) (Array.length cell) with
      | Error _ as e -> e
      | Ok () ->
        Metrics.add m_fanout (Array.length parts);
        let err = ref None in
        let xs =
          Array.map
            (fun part ->
              if Option.is_some !err then None
              else
                match B.explain part cell with
                | Ok x -> Some x
                | Error e ->
                  err := Some e;
                  None)
            parts
        in
        (match !err with
        | Some e -> Error e
        | None ->
          let hits =
            Array.to_list xs
            |> List.filter_map (fun x ->
                   match x with
                   | Some x -> Option.map (fun ans -> (x, ans)) x.Engine.x_answer
                   | None -> None)
          in
          (match hits with
          | [] -> ( match xs.(0) with Some x -> Ok x | None -> assert false)
          | (x0, (c0, a0)) :: rest ->
            (* representative path: the first hitting shard's; the answer
               cell is the global closure (meet of the per-shard bounds)
               and the aggregate the cross-shard merge *)
            let cell_ub = List.fold_left (fun acc (_, (c, _)) -> Cell.meet acc c) c0 rest in
            let agg = List.fold_left (fun acc (_, (_, a)) -> Agg.merge acc a) a0 rest in
            Ok { x0 with Engine.x_answer = Some (cell_ub, agg) }))

  let node_accesses parts cell =
    if Array.length parts = 1 then B.node_accesses parts.(0) cell
    else
      match Engine.check_arity (schema parts) (Array.length cell) with
      | Error _ as e -> e
      | Ok () ->
        let err = ref None in
        let total = ref 0 in
        Array.iter
          (fun part ->
            if Option.is_none !err then
              match B.node_accesses part cell with
              | Ok k -> total := !total + k
              | Error e -> err := Some e)
          parts;
        (match !err with Some e -> Error e | None -> Ok !total)
end

module Packed_gather = Gather (Engine.Packed_backend)

let schema t = Packed_gather.schema t.parts

module Backend = struct
  type nonrec t = t

  let name = "shard"

  let schema = schema

  let describe t =
    let classes = Array.fold_left (fun acc p -> acc + Packed.n_classes p) 0 t.parts in
    let nodes = Array.fold_left (fun acc p -> acc + Packed.n_nodes p) 0 t.parts in
    Printf.sprintf "sharded QC-tree: %d shards by %s, %d classes, %d nodes (summed)"
      (Array.length t.parts)
      (partitioner_to_string (schema t) t.part)
      classes nodes

  let point t = Packed_gather.point t.parts

  let range t = Packed_gather.range t.parts

  let iceberg t = Packed_gather.iceberg t.parts

  let explain t = Packed_gather.explain t.parts

  let node_accesses t = Packed_gather.node_accesses t.parts
end
