open Qc_cube
module Metrics = Qc_util.Metrics
module Trace = Qc_util.Trace

(* Per-step work counters of Algorithms 3 and 4 — the units the paper's
   Figure 13 analysis is phrased in.  A tree-edge or link step consumes one
   instantiated query dimension; a last-dimension hop (Lemma 2) and a
   descend step reach more specific bounds without consuming one. *)
let m_point = Metrics.counter "query.point"

let m_point_hits = Metrics.counter "query.point_hits"

let m_edge_steps = Metrics.counter "query.tree_edge_steps"

let m_link_steps = Metrics.counter "query.link_steps"

let m_hops = Metrics.counter "query.last_dim_hops"

let m_descends = Metrics.counter "query.descend_hops"

let m_range = Metrics.counter "query.range"

let m_range_expansions = Metrics.counter "query.range_expansions"

let m_range_results = Metrics.counter "query.range_results"

let h_path_nodes = Metrics.histogram "query.path_nodes"

(* ---------- typed errors (the Engine seam) ----------

   One failure vocabulary shared by every backend, replacing the historical
   mix of [option] returns ([point]) and [Invalid_argument] ([range]).  The
   legacy entry points survive as thin wrappers over the [_result] API. *)

type error =
  | Arity_mismatch of { expected : int; got : int }
  | Empty_cover of Cell.t
  | Unsupported of { backend : string; operation : string }
  | Bad_query of string

let error_equal a b =
  match (a, b) with
  | Arity_mismatch x, Arity_mismatch y -> x.expected = y.expected && x.got = y.got
  | Empty_cover x, Empty_cover y -> Cell.equal x y
  | Unsupported x, Unsupported y ->
    String.equal x.backend y.backend && String.equal x.operation y.operation
  | Bad_query x, Bad_query y -> String.equal x y
  | (Arity_mismatch _ | Empty_cover _ | Unsupported _ | Bad_query _), _ -> false

let raw_cell_string (cell : Cell.t) =
  cell
  |> Array.map (fun v -> if v = Cell.all then "*" else string_of_int v)
  |> Array.to_list
  |> String.concat ","

let error_to_string ?schema = function
  | Arity_mismatch { expected; got } ->
    Printf.sprintf "arity mismatch: query has %d dimension(s), schema has %d" got expected
  | Empty_cover cell ->
    let rendered =
      match schema with
      | Some s -> Cell.to_string s cell
      | None -> Printf.sprintf "(%s)" (raw_cell_string cell)
    in
    Printf.sprintf "cell %s is not in the cube (empty cover set)" rendered
  | Unsupported { backend; operation } ->
    Printf.sprintf "the %s backend does not support %s" backend operation
  | Bad_query msg -> Printf.sprintf "bad query: %s" msg

let check_arity expected got =
  if expected <> got then Error (Arity_mismatch { expected; got }) else Ok ()

(* Function [searchroute] of Algorithm 3: reach a step labeled [(dim, v)]
   from [node], hopping through last-dimension children (Lemma 2) while they
   stay in earlier dimensions. *)
let rec searchroute t node dim v =
  match Qc_tree.find_edge_or_link t node dim v with
  | Some n -> Some n
  | None -> (
    match Qc_tree.last_dim_child node with
    | Some child when child.Qc_tree.dim < dim -> searchroute t child dim v
    | Some _ | None -> None)

(* Descend through last-dimension children until a class node. *)
let rec descend_to_class node =
  match node.Qc_tree.agg with
  | Some agg -> Some (node, agg)
  | None -> (
    match Qc_tree.last_dim_child node with
    | Some child -> descend_to_class child
    | None -> None)

(* Soundness check without materializing the path cell: the reached upper
   bound must agree with the query cell on all its instantiated dimensions;
   then its class covers the query cell's cover set, so the cell is in the
   cube and — by Lemma 2 — this is exactly its class. *)
let path_dominates (node : Qc_tree.node) (cell : Cell.t) =
  let needed = ref 0 in
  for i = 0 to Array.length cell - 1 do
    if cell.(i) <> Cell.all then incr needed
  done;
  let rec up (n : Qc_tree.node) matched =
    match n.parent with
    | None -> matched = !needed
    | Some p ->
      if cell.(n.dim) = Cell.all then up p matched
      else if cell.(n.dim) = n.label then up p (matched + 1)
      else false
  in
  up node 0

(* ---------- EXPLAIN: the point-query path, step by step ---------- *)

type step_kind = Tree_edge | Link | Last_dim_hop | Descend

type step = { kind : step_kind; target : Qc_tree.node }

type outcome =
  | Hit
  | Miss_no_route of int
  | Miss_no_class
  | Miss_not_dominating

type explanation = {
  cell : Cell.t;
  steps : step list;
  outcome : outcome;
  result : (Qc_tree.node * Agg.t) option;
}

(* Mirror of [locate_with_agg] below that records every node transition.
   Used by [qct explain], by [node_accesses], and — when metrics are on — by
   query answering itself, so the counters cannot drift from the real
   search. *)
let explain t cell =
  let d = Array.length cell in
  let steps = ref [] in
  let push kind target = steps := { kind; target } :: !steps in
  let finish outcome result =
    { cell = Cell.copy cell; steps = List.rev !steps; outcome; result }
  in
  let rec searchroute_x node dim v =
    match Qc_tree.find_entry t node dim v with
    | Some (Qc_tree.Edge n) ->
      push Tree_edge n;
      Some n
    | Some (Qc_tree.Link n) ->
      push Link n;
      Some n
    | None -> (
      match Qc_tree.last_dim_child node with
      | Some child when child.Qc_tree.dim < dim ->
        push Last_dim_hop child;
        searchroute_x child dim v
      | Some _ | None -> None)
  in
  let rec descend_x (node : Qc_tree.node) =
    match node.agg with
    | Some agg -> Some (node, agg)
    | None -> (
      match Qc_tree.last_dim_child node with
      | Some child ->
        push Descend child;
        descend_x child
      | None -> None)
  in
  let rec consume node i =
    if i >= d then
      match descend_x node with
      | None -> finish Miss_no_class None
      | Some (n, agg) ->
        if path_dominates n cell then finish Hit (Some (n, agg))
        else finish Miss_not_dominating None
    else if cell.(i) = Cell.all then consume node (i + 1)
    else
      match searchroute_x node i cell.(i) with
      | Some next -> consume next (i + 1)
      | None -> finish (Miss_no_route i) None
  in
  consume (Qc_tree.root t) 0

let nodes_touched e = 1 + List.length e.steps

let step_kind_name = function
  | Tree_edge -> "edge"
  | Link -> "link"
  | Last_dim_hop -> "hop"
  | Descend -> "descend"

let pp_explanation t ppf e =
  let schema = Qc_tree.schema t in
  let outcome_str =
    match e.outcome with
    | Hit -> "HIT"
    | Miss_no_route i ->
      Printf.sprintf "MISS (no route on dimension %s)" (Schema.dim_name schema i)
    | Miss_no_class -> "MISS (no class below the reached prefix)"
    | Miss_not_dominating -> "MISS (reached bound disagrees with the query cell)"
  in
  Format.fprintf ppf "point %s: %s, %d nodes touched@." (Cell.to_string schema e.cell)
    outcome_str (nodes_touched e);
  Format.fprintf ppf "  root@.";
  List.iter
    (fun { kind; target } ->
      Format.fprintf ppf "  %-7s %s=%s -> %s@." (step_kind_name kind)
        (Schema.dim_name schema target.Qc_tree.dim)
        (Schema.decode_value schema target.Qc_tree.dim target.Qc_tree.label)
        (Cell.to_string schema (Qc_tree.node_cell t target)))
    e.steps;
  match e.result with
  | Some (node, agg) ->
    Format.fprintf ppf "  = class %s %a@."
      (Cell.to_string schema (Qc_tree.node_cell t node))
      Agg.pp agg
  | None -> ()

let record_explanation e =
  Metrics.incr m_point;
  List.iter
    (fun s ->
      match s.kind with
      | Tree_edge -> Metrics.incr m_edge_steps
      | Link -> Metrics.incr m_link_steps
      | Last_dim_hop -> Metrics.incr m_hops
      | Descend -> Metrics.incr m_descends)
    e.steps;
  Metrics.observe h_path_nodes (nodes_touched e);
  if e.outcome = Hit then Metrics.incr m_point_hits

let locate_with_agg t cell =
  if Metrics.enabled () then begin
    let e = explain t cell in
    record_explanation e;
    e.result
  end
  else
    let d = Array.length cell in
    let rec consume node i =
      if i >= d then descend_to_class node
      else if cell.(i) = Cell.all then consume node (i + 1)
      else
        match searchroute t node i cell.(i) with
        | Some next -> consume next (i + 1)
        | None -> None
    in
    match consume (Qc_tree.root t) 0 with
    | None -> None
    | Some (node, agg) -> if path_dominates node cell then Some (node, agg) else None

let point_result t cell =
  match check_arity (Schema.n_dims (Qc_tree.schema t)) (Array.length cell) with
  | Error _ as e -> e
  | Ok () -> (
    match locate_with_agg t cell with
    | Some (_, agg) -> Ok agg
    | None -> Error (Empty_cover (Cell.copy cell)))

let point_value_result t func cell = Result.map (Agg.value func) (point_result t cell)

let point t cell = Result.to_option (point_result t cell)

let point_value t func cell = Result.to_option (point_value_result t func cell)

let locate t cell = Option.map fst (locate_with_agg t cell)

type range = int array array

let check_range t (q : range) =
  if Array.length q <> Schema.n_dims (Qc_tree.schema t) then
    invalid_arg "Query.range: arity mismatch with schema"

let range t (q : range) =
  check_range t q;
  Metrics.incr m_range;
  Trace.with_span ~cat:"query" "query.range" @@ fun () ->
  let d = Array.length q in
  let inst = Cell.make_all d in
  let results = ref [] in
  let verify node agg =
    if path_dominates node inst then begin
      Metrics.incr m_range_results;
      results := (Cell.copy inst, agg) :: !results
    end
  in
  let rec go node i =
    if i >= d then Option.iter (fun (n, a) -> verify n a) (descend_to_class node)
    else if Array.length q.(i) = 0 then go node (i + 1)
    else
      Array.iter
        (fun v ->
          (* Algorithm 4 fanout: one expansion per (prefix, range value). *)
          Metrics.incr m_range_expansions;
          inst.(i) <- v;
          (match searchroute t node i v with Some next -> go next (i + 1) | None -> ());
          inst.(i) <- Cell.all)
        q.(i)
  in
  go (Qc_tree.root t) 0;
  Trace.add_attr "results" (Trace.Int (List.length !results));
  List.rev !results

let range_result t (q : range) =
  match check_arity (Schema.n_dims (Qc_tree.schema t)) (Array.length q) with
  | Error _ as e -> e
  | Ok () -> Ok (range t q)

let range_of_cells t (q : range) =
  check_range t q;
  let d = Array.length q in
  let acc = ref [] in
  let inst = Cell.make_all d in
  let rec go i =
    if i >= d then acc := Cell.copy inst :: !acc
    else if Array.length q.(i) = 0 then go (i + 1)
    else
      Array.iter
        (fun v ->
          inst.(i) <- v;
          go (i + 1);
          inst.(i) <- Cell.all)
        q.(i)
  in
  go 0;
  List.rev !acc

type measure_index = {
  tree : Qc_tree.t;
  func : Agg.func;
  entries : (float * Qc_tree.node) array;  (** sorted by aggregate value *)
}

let make_index tree func =
  Trace.with_span ~cat:"query" "query.index" @@ fun () ->
  let acc = ref [] in
  Qc_tree.iter_nodes
    (fun n ->
      match n.Qc_tree.agg with
      | Some a -> acc := (Agg.value func a, n) :: !acc
      | None -> ())
    tree;
  let entries = Array.of_list !acc in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) entries;
  Trace.add_attr "entries" (Trace.Int (Array.length entries));
  { tree; func; entries }

(* First index position with value >= threshold. *)
let lower_bound entries threshold =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst entries.(mid) < threshold then lo := mid + 1 else hi := mid
  done;
  !lo

let iceberg idx ~threshold =
  let start = lower_bound idx.entries threshold in
  let out = ref [] in
  for i = Array.length idx.entries - 1 downto start do
    let _, node = idx.entries.(i) in
    match node.Qc_tree.agg with
    | Some a -> out := (Qc_tree.node_cell idx.tree node, a) :: !out
    | None -> ()
  done;
  !out

let iceberg_range ?(strategy = `Filter) t idx (q : range) ~threshold =
  check_range t q;
  if idx.tree != t then invalid_arg "Query.iceberg_range: index built for another tree";
  let above a = Agg.value idx.func a >= threshold in
  match strategy with
  | `Filter -> List.filter (fun (_, a) -> above a) (range t q)
  | `Mark ->
    (* Mark qualifying class nodes and their ancestors; answer the range
       query restricted to marked nodes. *)
    let marked = Hashtbl.create 256 in
    let rec mark_up (n : Qc_tree.node) =
      if not (Hashtbl.mem marked n.nid) then begin
        Hashtbl.replace marked n.nid ();
        Option.iter mark_up n.parent
      end
    in
    let start = lower_bound idx.entries threshold in
    for i = start to Array.length idx.entries - 1 do
      mark_up (snd idx.entries.(i))
    done;
    let in_subtree (n : Qc_tree.node) = Hashtbl.mem marked n.nid in
    let d = Array.length q in
    let inst = Cell.make_all d in
    let results = ref [] in
    let rec descend node =
      match node.Qc_tree.agg with
      | Some agg -> if above agg then Some (node, agg) else None
      | None -> (
        match Qc_tree.last_dim_child node with
        | Some child when in_subtree child -> descend child
        | Some _ | None -> None)
    in
    let verify node agg =
      if path_dominates node inst then results := (Cell.copy inst, agg) :: !results
    in
    let rec go node i =
      if not (in_subtree node) then ()
      else if i >= d then Option.iter (fun (n, a) -> verify n a) (descend node)
      else if Array.length q.(i) = 0 then go node (i + 1)
      else
        Array.iter
          (fun v ->
            inst.(i) <- v;
            (match searchroute t node i v with Some next -> go next (i + 1) | None -> ());
            inst.(i) <- Cell.all)
          q.(i)
    in
    go (Qc_tree.root t) 0;
    List.rev !results


let node_accesses t cell =
  (* Re-run the point search counting visited nodes — the paper's Figure 13
     discussion compares this against Dwarf's fixed n accesses. *)
  nodes_touched (explain t cell)

(* ---------- the packed fast path ----------

   Step-for-step mirrors of the algorithms above over [Packed.t].  Every
   navigation primitive corresponds one-to-one ([Packed.find_step] ≍
   [Qc_tree.find_entry], [Packed.last_child] ≍ [Qc_tree.last_dim_child]),
   so the packed search visits the same nodes in the same order, reports
   identical [node_accesses], and bumps the same metrics counters. *)

(* [searchroute] over the packed layout.  Allocation-free: nodes are ids and
   "not found" is -1, so a point query touches nothing but int arrays until
   the final aggregate is materialised. *)
let rec searchroute_p p node dim v =
  let next = Packed.step_dst p node dim v in
  if next >= 0 then next
  else
    let child = Packed.last_child p node in
    if child >= 0 && Packed.dim p child < dim then searchroute_p p child dim v
    else -1

let rec descend_to_class_p p node =
  if Packed.has_agg p node then node
  else
    let child = Packed.last_child p node in
    if child >= 0 then descend_to_class_p p child else -1

let path_dominates_p p node (cell : Cell.t) =
  let needed = ref 0 in
  for i = 0 to Array.length cell - 1 do
    if cell.(i) <> Cell.all then incr needed
  done;
  let rec up n matched =
    if Packed.parent p n < 0 then matched = !needed
    else
      let d = Packed.dim p n in
      if cell.(d) = Cell.all then up (Packed.parent p n) matched
      else if cell.(d) = Packed.label p n then up (Packed.parent p n) (matched + 1)
      else false
  in
  up node 0

type packed_step = { pkind : step_kind; pnode : int }

type packed_explanation = {
  pcell : Cell.t;
  psteps : packed_step list;
  poutcome : outcome;
  presult : (int * Agg.t) option;
}

let explain_packed p cell =
  let d = Array.length cell in
  let steps = ref [] in
  let push pkind pnode = steps := { pkind; pnode } :: !steps in
  let finish poutcome presult =
    { pcell = Cell.copy cell; psteps = List.rev !steps; poutcome; presult }
  in
  let rec searchroute_x node dim v =
    match Packed.find_step p node dim v with
    | Some (Packed.Edge n) ->
      push Tree_edge n;
      Some n
    | Some (Packed.Link n) ->
      push Link n;
      Some n
    | None ->
      let child = Packed.last_child p node in
      if child >= 0 && Packed.dim p child < dim then begin
        push Last_dim_hop child;
        searchroute_x child dim v
      end
      else None
  in
  let rec descend_x node =
    match Packed.agg p node with
    | Some agg -> Some (node, agg)
    | None ->
      let child = Packed.last_child p node in
      if child >= 0 then begin
        push Descend child;
        descend_x child
      end
      else None
  in
  let rec consume node i =
    if i >= d then
      match descend_x node with
      | None -> finish Miss_no_class None
      | Some (n, agg) ->
        if path_dominates_p p n cell then finish Hit (Some (n, agg))
        else finish Miss_not_dominating None
    else if cell.(i) = Cell.all then consume node (i + 1)
    else
      match searchroute_x node i cell.(i) with
      | Some next -> consume next (i + 1)
      | None -> finish (Miss_no_route i) None
  in
  consume (Packed.root p) 0

let nodes_touched_packed e = 1 + List.length e.psteps

let record_packed_explanation e =
  Metrics.incr m_point;
  List.iter
    (fun s ->
      match s.pkind with
      | Tree_edge -> Metrics.incr m_edge_steps
      | Link -> Metrics.incr m_link_steps
      | Last_dim_hop -> Metrics.incr m_hops
      | Descend -> Metrics.incr m_descends)
    e.psteps;
  Metrics.observe h_path_nodes (nodes_touched_packed e);
  if e.poutcome = Hit then Metrics.incr m_point_hits

let pp_packed_explanation p ppf e =
  let schema = Packed.schema p in
  let outcome_str =
    match e.poutcome with
    | Hit -> "HIT"
    | Miss_no_route i ->
      Printf.sprintf "MISS (no route on dimension %s)" (Schema.dim_name schema i)
    | Miss_no_class -> "MISS (no class below the reached prefix)"
    | Miss_not_dominating -> "MISS (reached bound disagrees with the query cell)"
  in
  Format.fprintf ppf "point %s: %s, %d nodes touched@." (Cell.to_string schema e.pcell)
    outcome_str (nodes_touched_packed e);
  Format.fprintf ppf "  root@.";
  List.iter
    (fun { pkind; pnode } ->
      Format.fprintf ppf "  %-7s %s=%s -> %s@." (step_kind_name pkind)
        (Schema.dim_name schema (Packed.dim p pnode))
        (Schema.decode_value schema (Packed.dim p pnode) (Packed.label p pnode))
        (Cell.to_string schema (Packed.node_cell p pnode)))
    e.psteps;
  match e.presult with
  | Some (node, agg) ->
    Format.fprintf ppf "  = class %s %a@."
      (Cell.to_string schema (Packed.node_cell p node))
      Agg.pp agg
  | None -> ()

let locate_with_agg_packed p cell =
  if Metrics.enabled () then begin
    let e = explain_packed p cell in
    record_packed_explanation e;
    e.presult
  end
  else
    let d = Array.length cell in
    let rec consume node i =
      if i >= d then descend_to_class_p p node
      else if cell.(i) = Cell.all then consume node (i + 1)
      else
        let next = searchroute_p p node i cell.(i) in
        if next >= 0 then consume next (i + 1) else -1
    in
    let node = consume (Packed.root p) 0 in
    if node >= 0 && path_dominates_p p node cell then
      match Packed.agg p node with Some agg -> Some (node, agg) | None -> None
    else None

let point_result_packed p cell =
  match check_arity (Schema.n_dims (Packed.schema p)) (Array.length cell) with
  | Error _ as e -> e
  | Ok () -> (
    match locate_with_agg_packed p cell with
    | Some (_, agg) -> Ok agg
    | None -> Error (Empty_cover (Cell.copy cell)))

let point_value_result_packed p func cell =
  Result.map (Agg.value func) (point_result_packed p cell)

let point_packed p cell = Result.to_option (point_result_packed p cell)

let point_value_packed p func cell =
  Result.to_option (point_value_result_packed p func cell)

let locate_packed p cell = Option.map fst (locate_with_agg_packed p cell)

let check_range_p p (q : range) =
  if Array.length q <> Schema.n_dims (Packed.schema p) then
    invalid_arg "Query.range_packed: arity mismatch with schema"

let range_packed p (q : range) =
  check_range_p p q;
  Metrics.incr m_range;
  Trace.with_span ~cat:"query" "query.range" @@ fun () ->
  let d = Array.length q in
  let inst = Cell.make_all d in
  let results = ref [] in
  let verify node agg =
    if path_dominates_p p node inst then begin
      Metrics.incr m_range_results;
      results := (Cell.copy inst, agg) :: !results
    end
  in
  let rec go node i =
    if i >= d then begin
      let cls = descend_to_class_p p node in
      if cls >= 0 then
        match Packed.agg p cls with Some a -> verify cls a | None -> ()
    end
    else if Array.length q.(i) = 0 then go node (i + 1)
    else
      Array.iter
        (fun v ->
          Metrics.incr m_range_expansions;
          inst.(i) <- v;
          (let next = searchroute_p p node i v in
           if next >= 0 then go next (i + 1));
          inst.(i) <- Cell.all)
        q.(i)
  in
  go (Packed.root p) 0;
  Trace.add_attr "results" (Trace.Int (List.length !results));
  List.rev !results

let range_result_packed p (q : range) =
  match check_arity (Schema.n_dims (Packed.schema p)) (Array.length q) with
  | Error _ as e -> e
  | Ok () -> Ok (range_packed p q)

let node_accesses_packed p cell = nodes_touched_packed (explain_packed p cell)
