(** Deep, non-mutating invariant verification over every QC-tree
    representation.

    The QC-tree's correctness rests on a small set of structural invariants
    — strictly increasing dimensions along paths (Section 3), drill-down
    links that never shadow a tree edge and land on the node spelling the
    drill-down value (Definition 1), a sorted child span so the Lemma 2 hop is
    O(1), and class aggregates equal to the cover aggregates of the base
    table (Lemma 1/Theorem 1).  The maintenance algorithms (Algorithms 2-4)
    preserve them only if every step does; this module re-derives each
    invariant from scratch so a violation anywhere in the pipeline is caught
    with its exact location rather than as a wrong answer much later.

    Three entry points mirror the three representations:

    - {!check_tree} walks a mutable {!Qc_tree.t};
    - {!check_packed} audits the frozen CSR columns of a {!Packed.t}
      through {!Packed.raw};
    - {!check_bytes} structurally audits a QCTP buffer {e without}
      deserializing it — every varint, section size and count is
      bounds-checked with its byte offset.

    {!run} chains all three (tree → freeze → serialize) plus the round-trip
    equivalence checks.  Nothing here mutates its input. *)

open Qc_cube

(** One violated invariant, with enough context to locate it.  Node ids are
    {!Qc_tree.node.nid} for tree violations and canonical preorder ids for
    packed violations; offsets are byte positions in the QCTP buffer. *)
type violation =
  (* mutable tree *)
  | Broken_parent of { nid : int; expected_parent : int }
      (** a child's [parent] field does not point back at its parent *)
  | Dim_out_of_range of { nid : int; dim : int }
  | Label_out_of_range of { nid : int; label : int }
  | Dim_not_increasing of { nid : int; dim : int; parent_dim : int }
      (** a tree edge does not strictly increase the dimension *)
  | Duplicate_step_label of { nid : int; dim : int; label : int }
      (** two edges/links out of one node carry the same (dim, label) *)
  | Index_missing_entry of { nid : int; dim : int; label : int }
      (** the edge index does not resolve an existing edge or link *)
  | Index_wrong_entry of { nid : int; dim : int; label : int }
      (** the edge index resolves to a different node *)
  | Link_target_dead of { src : int; dim : int; label : int }
      (** a drill-down link points at a node no longer reachable from the
          root *)
  | Link_not_monotonic of { src : int; dim : int; src_dim : int }
      (** link dimension must exceed the source node's dimension *)
  | Link_label_mismatch of { src : int; dim : int; label : int; dst_label : int }
      (** the target spells a different value in the link's dimension *)
  | Link_cycle of { nid : int }
      (** following edges and links can return to [nid] — roll-up/drill-down
          would not terminate *)
  | Useless_node of { nid : int }
      (** a leaf that carries no aggregate and no links — should have been
          pruned *)
  | Tree_internal of string
      (** an internal-index inconsistency reported by {!Qc_tree.validate}
          that has no public-API rendering (e.g. stale index entries) *)
  (* deep (oracle) checks *)
  | Class_missing of { ub : Cell.t }
      (** a fresh DFS derives a class upper bound the tree has no node
          for *)
  | Class_count_mismatch of { expected : int; got : int }
  | Aggregate_mismatch of { ub : Cell.t; expected : Agg.t; got : Agg.t }
      (** the class aggregate differs from the base table's cover
          aggregate *)
  | Oracle_mismatch of {
      cell : Cell.t;
      expected : Agg.t option;
      got : Agg.t option;
    }  (** a sampled point query disagrees with a base-table scan *)
  (* packed representation *)
  | Column_length_mismatch of { column : string; expected : int; got : int }
  | Span_out_of_bounds of { nid : int; lo : int; hi : int }
      (** CSR offsets not monotone or outside the payload columns *)
  | Span_unsorted of { nid : int; index : int }
      (** span keys not strictly ascending — binary search breaks *)
  | Span_wrong_child of { nid : int; index : int; child : int }
      (** a child-span entry disagrees with the parent column *)
  | Preorder_violation of { nid : int }
      (** node ids are not the canonical preorder of the structure *)
  | Step_index_missing of { src : int; key : int }
  | Step_index_wrong of { src : int; key : int; expected : int; got : int }
  | Step_index_extra of { expected : int; got : int }
      (** the open-addressing table holds more live slots than steps *)
  | Agg_id_invalid of { nid : int; agg_id : int }
  | Roundtrip_mismatch of { stage : string }
      (** freeze/thaw or serialize/reload does not reproduce the tree *)
  (* QCTP bytes *)
  | Qctp_truncated of { offset : int; wanted : int }
      (** the buffer ends at [offset] where [wanted] more bytes were
          declared *)
  | Qctp_bad_magic of string
  | Qctp_bad_version of int
  | Qctp_bad_dim_count of int
  | Qctp_varint_overflow of { offset : int }
  | Qctp_bad_agg_flag of { offset : int; flag : int }
  | Qctp_bad_parent of { node : int; parent : int }
  | Qctp_bad_dim of { node : int; dim : int }
  | Qctp_bad_link of { index : int; field : string; value : int }
  | Qctp_trailing_bytes of int

type report = {
  violations : violation list;  (** in discovery order *)
  checked : (string * int) list;
      (** per invariant family, how many individual checks ran — so "no
          violations" is distinguishable from "nothing was checked" *)
}

val ok : report -> bool

val merge_reports : report list -> report

val violation_label : violation -> string
(** A stable short tag (e.g. ["link-target-dead"]) — the contract tested by
    the CLI suite and emitted in JSON; error-message wording may change,
    labels may not. *)

val pp_violation : Schema.t option -> Format.formatter -> violation -> unit
(** Human rendering; with a schema, cells print as value tuples rather than
    code vectors. *)

val report_to_json : ?path:string -> report -> Qc_util.Jsonx.t
(** Violations are emitted in the envelope
    [{label, file_or_path, detail}] shared by [qct check --json],
    [qct recover --json] and [qclint --json] (see DESIGN.md "Static
    analysis"); [?path] (default [""]) fills [file_or_path] with the
    audited file or directory. *)

(** {1 Checkers} *)

val check_tree : ?deep:bool -> ?base:Table.t -> ?samples:int -> ?seed:int -> Qc_tree.t -> report
(** Structural audit of a mutable tree: parentage, dimension monotonicity,
    duplicate step labels, edge-index consistency, link liveness/monotonicity
    and acyclicity (a tricolor DFS over edges and links together), prune
    residue.  With [~deep:true] and a [~base] table it additionally re-runs
    {!Dfs.run} and requires every derived class upper bound to resolve to
    exactly one aggregate-carrying node with the right aggregate (and the
    class counts to agree), then replays [samples] (default 64) random point
    queries against a full scan of [base].  [seed] (default 0) drives the
    sample generator deterministically. *)

val check_packed : Packed.t -> report
(** Audit the frozen columns through {!Packed.raw}: column lengths, CSR span
    well-formedness (monotone offsets, strictly ascending keys, in-bounds
    targets, parent agreement), canonical preorder numbering, aggregate-id
    density, and full step-index consistency (every edge and link resolves,
    no extra live slots). *)

val check_bytes : string -> report
(** Structural audit of a QCTP buffer without deserializing it: magic,
    version, measure/dimension string tables, per-node and per-link records,
    varint width, aggregate flags, preorder parent references and link
    endpoint ranges — each failure located by byte offset.  Text-format
    buffers ("qctree 1") are not audited here; only the binary format has a
    byte-level contract. *)

val check_roundtrip : Qc_tree.t -> report
(** Freeze, thaw, serialize and reload the tree, requiring canonical
    equality at every hop ({!Qc_tree.canonical_string}). *)

val run : ?deep:bool -> ?base:Table.t -> ?samples:int -> ?seed:int -> Qc_tree.t -> report
(** Everything: {!check_tree} on the input, {!check_packed} on its frozen
    form, {!check_bytes} on its serialized form, and {!check_roundtrip} —
    the one-call audit used by [qct check], the warehouse self-check hooks
    and the property suites. *)
