open Qc_cube

type op = Insert | Delete

type record = {
  generation : int;
  op : op;
  rows : (string list * float) list;
}

type corruption =
  | Bad_header of string
  | Truncated_frame of { offset : int }
  | Bad_crc of { offset : int }
  | Unknown_tag of { offset : int; tag : int }
  | Bad_payload of { offset : int; reason : string }

let corruption_to_string = function
  | Bad_header msg -> Printf.sprintf "bad journal header: %s" msg
  | Truncated_frame { offset } -> Printf.sprintf "truncated frame at byte %d" offset
  | Bad_crc { offset } -> Printf.sprintf "frame checksum mismatch at byte %d" offset
  | Unknown_tag { offset; tag } ->
    Printf.sprintf "unknown record tag %d at byte %d" tag offset
  | Bad_payload { offset; reason } ->
    Printf.sprintf "malformed frame payload at byte %d: %s" offset reason

type scan = {
  records : record list;
  consumed : int;
  torn : (int * corruption) option;
}

let magic = "QCWL"

let version = 1

let header = magic ^ String.make 1 (Char.chr version)

(* ---------- encoding ---------- *)

let add_uint buf n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_uint8 buf n
    else begin
      Buffer.add_uint8 buf (0x80 lor (n land 0x7F));
      go (n lsr 7)
    end
  in
  go n

let add_str buf s =
  add_uint buf (String.length s);
  Buffer.add_string buf s

let tag_of_op = function Insert -> 1 | Delete -> 2

let encode r =
  let payload = Buffer.create 256 in
  add_uint payload r.generation;
  Buffer.add_uint8 payload (tag_of_op r.op);
  let n_dims = match r.rows with (values, _) :: _ -> List.length values | [] -> 0 in
  add_uint payload n_dims;
  add_uint payload (List.length r.rows);
  List.iter
    (fun (values, m) ->
      if List.length values <> n_dims then
        invalid_arg "Wal.encode: rows with differing arity";
      List.iter (fun v -> add_str payload v) values;
      Buffer.add_int64_le payload (Int64.bits_of_float m))
    r.rows;
  let payload = Buffer.contents payload in
  let frame = Buffer.create (String.length payload + 12) in
  add_uint frame (String.length payload);
  Buffer.add_string frame payload;
  Buffer.add_int32_le frame (Int32.of_int (Qc_util.Crc32.string payload));
  Buffer.contents frame

(* ---------- decoding ---------- *)

exception Stop of corruption

type cursor = { data : string; limit : int; mutable pos : int }

let need cur n err = if cur.pos + n > cur.limit then raise (Stop err)

let read_u8 cur err =
  need cur 1 err;
  let v = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let read_uint cur ~truncated ~overlong =
  let rec go acc shift =
    if shift > 56 then raise (Stop overlong);
    let b = read_u8 cur truncated in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  go 0 0

let decode_frame data ~pos =
  let frame_start = pos in
  let truncated = Truncated_frame { offset = frame_start } in
  try
    let cur = { data; limit = String.length data; pos } in
    let payload_len =
      read_uint cur ~truncated
        ~overlong:(Bad_payload { offset = frame_start; reason = "length varint overflow" })
    in
    let payload_start = cur.pos in
    need cur (payload_len + 4) truncated;
    let stored_crc =
      Int32.to_int (String.get_int32_le data (payload_start + payload_len)) land 0xFFFFFFFF
    in
    if Qc_util.Crc32.sub data ~pos:payload_start ~len:payload_len <> stored_crc then
      raise (Stop (Bad_crc { offset = frame_start }));
    (* from here on the frame is checksum-valid: any structural problem is
       encoder-level corruption, not a torn tail *)
    let bad reason = Bad_payload { offset = frame_start; reason } in
    let pcur = { data; limit = payload_start + payload_len; pos = payload_start } in
    let puint what = read_uint pcur ~truncated:(bad (what ^ " truncated")) ~overlong:(bad (what ^ " varint overflow")) in
    let generation = puint "generation" in
    let tag_offset = pcur.pos in
    let tag = read_u8 pcur (bad "tag truncated") in
    let op =
      match tag with
      | 1 -> Insert
      | 2 -> Delete
      | t -> raise (Stop (Unknown_tag { offset = tag_offset; tag = t }))
    in
    let n_dims = puint "dimension count" in
    if n_dims < 1 || n_dims > 255 then
      raise (Stop (bad (Printf.sprintf "dimension count %d outside 1..255" n_dims)));
    let n_rows = puint "row count" in
    let rows = ref [] in
    for _ = 1 to n_rows do
      let values = ref [] in
      for _ = 1 to n_dims do
        let len = puint "value length" in
        need pcur len (bad "value truncated");
        values := String.sub data pcur.pos len :: !values;
        pcur.pos <- pcur.pos + len
      done;
      need pcur 8 (bad "measure truncated");
      let m = Int64.float_of_bits (String.get_int64_le data pcur.pos) in
      pcur.pos <- pcur.pos + 8;
      rows := (List.rev !values, m) :: !rows
    done;
    if pcur.pos <> payload_start + payload_len then
      raise (Stop (bad (Printf.sprintf "%d trailing payload bytes" (payload_start + payload_len - pcur.pos))));
    Ok ({ generation; op; rows = List.rev !rows }, payload_start + payload_len + 4)
  with Stop c -> Error c

let scan data =
  let hlen = String.length header in
  if String.length data < hlen || not (String.equal (String.sub data 0 hlen) header) then
    if String.length data = 0 then Error (Bad_header "empty journal")
    else if String.length data >= 4 && not (String.equal (String.sub data 0 4) magic) then
      Error (Bad_header (Printf.sprintf "bad magic %S" (String.sub data 0 (min 4 (String.length data)))))
    else if String.length data >= hlen then
      Error (Bad_header (Printf.sprintf "unsupported journal version %d" (Char.code data.[4])))
    else Error (Bad_header "journal shorter than its header")
  else begin
    let records = ref [] in
    let pos = ref hlen in
    let result = ref None in
    let n = String.length data in
    while Option.is_none !result && !pos < n do
      match decode_frame data ~pos:!pos with
      | Ok (r, next) ->
        records := r :: !records;
        pos := next
      | Error ((Truncated_frame _ | Bad_crc _) as c) ->
        (* the expected residue of a crash mid-append: report as a torn
           tail and stop *)
        result := Some (Ok { records = List.rev !records; consumed = !pos; torn = Some (!pos, c) })
      | Error c -> result := Some (Error c)
    done;
    match !result with
    | Some r -> r
    | None -> Ok { records = List.rev !records; consumed = !pos; torn = None }
  end

(* ---------- segment naming ---------- *)

let segment_name seq =
  if seq < 0 then invalid_arg "Wal.segment_name: negative sequence";
  Printf.sprintf "wal-%06d.log" seq

let segment_seq name =
  let prefix = "wal-" and suffix = ".log" in
  let pl = String.length prefix and sl = String.length suffix in
  let n = String.length name in
  if
    n > pl + sl
    && String.equal (String.sub name 0 pl) prefix
    && String.equal (String.sub name (n - sl) sl) suffix
  then begin
    let digits = String.sub name pl (n - pl - sl) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then int_of_string_opt digits
    else None
  end
  else None

let generation_span records =
  List.fold_left
    (fun acc (r : record) ->
      match acc with
      | None -> Some (r.generation, r.generation)
      | Some (lo, hi) ->
        Some
          ( (if r.generation < lo then r.generation else lo),
            if r.generation > hi then r.generation else hi ))
    None records

(* ---------- table bridge ---------- *)

let record_of_table ~generation op table =
  let schema = Table.schema table in
  let d = Schema.n_dims schema in
  let rows = ref [] in
  Table.iter
    (fun cell m ->
      let values = List.init d (fun i -> Schema.decode_value schema i cell.(i)) in
      rows := (values, m) :: !rows)
    table;
  { generation; op; rows = List.rev !rows }

let table_of_record schema r =
  let t = Table.create schema in
  List.iter
    (fun (values, m) ->
      if List.length values <> Schema.n_dims schema then
        invalid_arg "Wal.table_of_record: row arity does not match the schema";
      Table.add_row t values m)
    r.rows;
  t
