(** The QC-tree: a prefix-shared representation of the class upper bounds of
    a cover quotient cube, with drill-down links (paper Section 3).

    Every class upper bound, written as the string of its non-[*] dimension
    values in schema order, is a root-to-node path; the terminal node stores
    the class aggregate.  Whenever a class [C] directly drills down to a
    class [D] and [D]'s upper bound is not reached from [C]'s by a tree
    edge, a {e link} labeled with the drill-down dimension value connects
    [C]'s upper-bound node to [D]'s (Definition 1). *)

open Qc_cube

type node = private {
  nid : int;
  dim : int;  (** dimension of [label]; [-1] at the root *)
  label : int;  (** dimension value code; [0] at the root *)
  parent : node option;
  mutable children : node list;  (** tree edges, in insertion order *)
  mutable links : (int * int * node) list;  (** links [(dim, label, target)] *)
  mutable agg : Agg.t option;  (** class aggregate; [None] on prefix nodes *)
  mutable last_child_cache : node option;  (** internal navigation cache *)
}

type t

val create : Schema.t -> t
(** An empty tree (root only) over the given schema. *)

val schema : t -> Schema.t

val root : t -> node

(** {1 Construction} *)

val of_temp_classes : Schema.t -> Temp_class.t list -> t
(** Second phase of Algorithm 1: sort the temporary classes by upper bound in
    dictionary order ([*] first) and insert them — fresh upper bounds extend
    the tree, repeated upper bounds add one drill-down link from the lattice
    child class's upper-bound node. *)

val of_table : Table.t -> t
(** Algorithm 1 end to end: DFS over the base table, then
    {!of_temp_classes}. *)

val copy : t -> t
(** An independent deep copy (canonically equal to the original); used by
    what-if analysis to try hypothetical maintenance without committing. *)

(** {1 Low-level mutators} — used by construction and by the incremental
    maintenance algorithms.  They keep the internal edge index consistent. *)

val find_edge : t -> node -> int -> int -> node option
(** Tree-edge lookup by (dimension, label). *)

val find_edge_or_link : t -> node -> int -> int -> node option

type entry = Edge of node | Link of node
(** An outgoing step: a tree edge or a drill-down link. *)

val find_entry : t -> node -> int -> int -> entry option
(** Like {!find_edge_or_link} but reporting whether the step is a tree edge
    or a link — query answering records the distinction (the paper's
    Figure 13 work accounting) and [qct explain] prints it. *)

val insert_path : t -> Cell.t -> node
(** Walk (and extend where needed) the path of an upper bound; returns the
    terminal node.  Does not touch aggregates. *)

val find_path : t -> Cell.t -> node option
(** Walk the path of an upper bound through tree edges only, without
    extending. *)

val set_agg : node -> Agg.t option -> unit

val add_link : t -> src:node -> dim:int -> label:int -> dst:node -> unit
(** Adds a drill-down link; idempotent when the identical link is present.
    @raise Invalid_argument if a different edge/link already carries the same
    (dimension, label) out of [src]. *)

val remove_link : t -> src:node -> dim:int -> label:int -> unit

val prune_upward : t -> node -> unit
(** Remove [node] if it carries no aggregate, no children and no links, then
    recursively try its parent — used after deletions. *)

val drop_links_to_dead_targets : t -> unit
(** Remove every link whose target node is no longer reachable from the
    root.  Deletion maintenance calls this once after classes have been
    deleted or merged and empty branches pruned. *)

(** {1 Inspection} *)

val node_cell : t -> node -> Cell.t
(** Reconstruct the cell spelled by the root-to-node path ([*] in dimensions
    the path skips). *)

val last_dim_child : node -> node option
(** The child on the node's last (maximal) dimension — the hop of Lemma 2.
    When several children share the maximal dimension (possible only while a
    query cell has an empty cover set) the one latest in dictionary order is
    returned. *)

val iter_nodes : (node -> unit) -> t -> unit
(** Pre-order traversal over all nodes. *)

val iter_classes : (node -> Cell.t -> Agg.t -> unit) -> t -> unit
(** Visit every class node with its reconstructed upper bound. *)

val n_nodes : t -> int
val n_links : t -> int
val n_classes : t -> int

val bytes : t -> int
(** Storage size under the shared byte-cost model: every node costs one label
    plus one pointer (its slot in the parent), class nodes add one measure,
    and every link costs one label plus one pointer. *)

val canonical_string : t -> string
(** A canonical rendering — children and links sorted by (dimension, label),
    link targets identified by their paths — such that two trees represent
    the same QC-tree iff their canonical strings are equal.  Aggregates are
    rendered with rounding tolerant of float-summation order. *)

val pp : Format.formatter -> t -> unit
(** Human-readable tree dump (for examples and debugging). *)

val validate : t -> (unit, string) result
(** Check structural invariants: strictly increasing dimensions along paths,
    index consistency, links targeting class nodes, no duplicate (dim, label)
    out of a node. *)
