open Qc_cube

(* A frozen QC-tree flattened into contiguous integer and float columns.

   Nodes are renumbered 0 .. n-1 in canonical preorder: the root is 0 and
   every node's children are visited in ascending (dim, label) order, so
   [parent.(i) < i] for every non-root node and a child span is stored
   sorted — one binary search replaces the hash lookup of the mutable tree.
   The (dim, label) pair of an outgoing step is packed into one key with the
   same layout [Qc_tree] uses for its edge index: 4 bits of dimension below
   20 bits of label. *)

type t = {
  schema : Schema.t;
  dim : int array;  (* -1 at the root *)
  label : int array;
  parent : int array;  (* -1 at the root *)
  child_start : int array;  (* CSR offsets into child_*; length n_nodes + 1 *)
  child_key : int array;  (* (dim lsl 20) lor label, ascending per span *)
  child_node : int array;
  link_start : int array;  (* CSR offsets into link_*; length n_nodes + 1 *)
  link_key : int array;
  link_node : int array;
  agg_id : int array;  (* index into the agg_* columns; -1 on prefix nodes *)
  agg_count : int array;
  agg_sum : float array;
  agg_min : float array;
  agg_max : float array;
  (* Open-addressing index over every outgoing step, edges and links in one
     key space (Definition 1 makes them disjoint): (src lsl 24) lor step key
     maps to the destination node.  One multiplicative hash and a short
     linear probe replace the two binary searches on the hot query path. *)
  hash_mask : int;
  hash_key : int array;  (* -1 = empty slot *)
  hash_dst : int array;
}

let key_of dim label = (dim lsl 20) lor label

let step_key src dim label = (src lsl 24) lor key_of dim label

(* Fibonacci (multiplicative) hashing into a power-of-two table. *)
let hash_slot k mask = ((k * 0x2545F4914F6CDD1D) lsr 20) land mask

let schema t = t.schema

let n_nodes t = Array.length t.dim

let n_links t = Array.length t.link_key

let n_classes t = Array.length t.agg_count

let root _ = 0

let dim t n = t.dim.(n)

let label t n = t.label.(n)

let parent t n = t.parent.(n)

let agg t n =
  let a = t.agg_id.(n) in
  if a < 0 then None
  else
    Some
      {
        Agg.count = t.agg_count.(a);
        sum = t.agg_sum.(a);
        min = t.agg_min.(a);
        max = t.agg_max.(a);
      }

let has_agg t n = t.agg_id.(n) >= 0

(* Last index in [lo, hi) is the span's maximal (dim, label) — the child the
   mutable tree's [last_dim_child] cache designates (Lemma 2 hop). *)
let last_child t n =
  let lo = t.child_start.(n) and hi = t.child_start.(n + 1) in
  if lo >= hi then -1 else t.child_node.(hi - 1)

(* Tail-recursive and allocation-free (local refs would heap-allocate). *)
let rec bsearch keys lo hi key =
  if lo >= hi then -1
  else
    let mid = (lo + hi) / 2 in
    let k = Array.unsafe_get keys mid in
    if k = key then mid
    else if k < key then bsearch keys (mid + 1) hi key
    else bsearch keys lo mid key

let find_child t n dim label =
  let i = bsearch t.child_key t.child_start.(n) t.child_start.(n + 1) (key_of dim label) in
  if i < 0 then -1 else t.child_node.(i)

let find_link t n dim label =
  let i = bsearch t.link_key t.link_start.(n) t.link_start.(n + 1) (key_of dim label) in
  if i < 0 then -1 else t.link_node.(i)

type step = Edge of int | Link of int

let find_step t n dim label =
  let c = find_child t n dim label in
  if c >= 0 then Some (Edge c)
  else
    let l = find_link t n dim label in
    if l >= 0 then Some (Link l) else None

(* Allocation-free [find_step]: the destination node, or -1.  The hot query
   path does not care whether a step crossed an edge or a link, so one probe
   of the combined step index answers both. *)
let step_dst t n dim label =
  let k = step_key n dim label in
  let mask = t.hash_mask in
  let rec probe i =
    let kk = Array.unsafe_get t.hash_key i in
    if kk = k then Array.unsafe_get t.hash_dst i
    else if kk < 0 then -1
    else probe ((i + 1) land mask)
  in
  probe (hash_slot k mask)

let iter_children f t n =
  for i = t.child_start.(n) to t.child_start.(n + 1) - 1 do
    f t.child_node.(i)
  done

let iter_links f t n =
  for i = t.link_start.(n) to t.link_start.(n + 1) - 1 do
    let k = t.link_key.(i) in
    f (k lsr 20) (k land 0xFFFFF) t.link_node.(i)
  done

let node_cell t n =
  let cell = Cell.make_all (Schema.n_dims t.schema) in
  let rec up n =
    if t.parent.(n) >= 0 then begin
      cell.(t.dim.(n)) <- t.label.(n);
      up t.parent.(n)
    end
  in
  up n;
  cell

let iter_classes f t =
  for n = 0 to n_nodes t - 1 do
    match agg t n with Some a -> f n (node_cell t n) a | None -> ()
  done

(* Size under the shared byte-cost model of [Qc_tree.bytes], so packed and
   mutable figures are comparable: per non-root node one label and one
   pointer, per link one label and one pointer, per class one measure. *)
let bytes t =
  let open Qc_util.Size in
  ((n_nodes t - 1) * (value_bytes + pointer_bytes))
  + (n_links t * (value_bytes + pointer_bytes))
  + (n_classes t * measure_bytes)

(* Actual resident size of the columns (words of the arrays), the number the
   packed representation is judged by in benchmarks. *)
let resident_bytes t =
  let ints =
    Array.length t.dim + Array.length t.label + Array.length t.parent
    + Array.length t.child_start + Array.length t.child_key + Array.length t.child_node
    + Array.length t.link_start + Array.length t.link_key + Array.length t.link_node
    + Array.length t.agg_id + Array.length t.agg_count
    + Array.length t.hash_key + Array.length t.hash_dst
  in
  let floats = Array.length t.agg_sum + Array.length t.agg_min + Array.length t.agg_max in
  8 * (ints + floats)

(* ---------- raw column view (used by Check and by corruption tests) ---------- *)

type raw = {
  r_dim : int array;
  r_label : int array;
  r_parent : int array;
  r_child_start : int array;
  r_child_key : int array;
  r_child_node : int array;
  r_link_start : int array;
  r_link_key : int array;
  r_link_node : int array;
  r_agg_id : int array;
  r_agg_count : int array;
  r_agg_sum : float array;
  r_agg_min : float array;
  r_agg_max : float array;
  r_hash_mask : int;
  r_hash_key : int array;
  r_hash_dst : int array;
}

(* The arrays are shared with [t], not copied: the deep checker reads them
   in place, and the negative tests corrupt them in place to prove the
   checker notices.  Everyone else must treat the view as read-only. *)
let raw t =
  {
    r_dim = t.dim;
    r_label = t.label;
    r_parent = t.parent;
    r_child_start = t.child_start;
    r_child_key = t.child_key;
    r_child_node = t.child_node;
    r_link_start = t.link_start;
    r_link_key = t.link_key;
    r_link_node = t.link_node;
    r_agg_id = t.agg_id;
    r_agg_count = t.agg_count;
    r_agg_sum = t.agg_sum;
    r_agg_min = t.agg_min;
    r_agg_max = t.agg_max;
    r_hash_mask = t.hash_mask;
    r_hash_key = t.hash_key;
    r_hash_dst = t.hash_dst;
  }

(* ---------- construction from raw columns (used by deserialization) ---------- *)

(* [links] are (src, dim, label, dst) in any order.  Validates the structural
   invariants the query algorithms rely on; raises [Invalid_argument] when
   they do not hold (deserializers map that to a typed parse error). *)
let of_arrays ~schema ~dim ~label ~parent ~aggs ~links =
  let n = Array.length dim in
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if n = 0 then fail "Packed.of_arrays: no root node";
  if Array.length label <> n || Array.length parent <> n || Array.length aggs <> n then
    fail "Packed.of_arrays: column lengths differ";
  if dim.(0) <> -1 || parent.(0) <> -1 then fail "Packed.of_arrays: node 0 is not a root";
  let d = Schema.n_dims schema in
  for i = 1 to n - 1 do
    if parent.(i) < 0 || parent.(i) >= i then
      fail "Packed.of_arrays: node %d has parent %d outside preorder" i parent.(i);
    if dim.(i) < 0 || dim.(i) >= d then
      fail "Packed.of_arrays: node %d has dimension %d outside the schema" i dim.(i);
    if dim.(i) <= dim.(parent.(i)) then
      fail "Packed.of_arrays: node %d does not increase dimension" i;
    if label.(i) < 0 || label.(i) > 0xFFFFF then
      fail "Packed.of_arrays: node %d has label %d out of range" i label.(i)
  done;
  (* child spans: group nodes 1.. by parent, sort each span by key *)
  let counts = Array.make (n + 1) 0 in
  for i = 1 to n - 1 do
    counts.(parent.(i)) <- counts.(parent.(i)) + 1
  done;
  let child_start = Array.make (n + 1) 0 in
  for p = 0 to n - 1 do
    child_start.(p + 1) <- child_start.(p) + counts.(p)
  done;
  let child_key = Array.make (n - 1) 0 in
  let child_node = Array.make (n - 1) 0 in
  let fill = Array.copy child_start in
  for i = 1 to n - 1 do
    let p = parent.(i) in
    child_key.(fill.(p)) <- key_of dim.(i) label.(i);
    child_node.(fill.(p)) <- i;
    fill.(p) <- fill.(p) + 1
  done;
  for p = 0 to n - 1 do
    let lo = child_start.(p) and hi = child_start.(p + 1) in
    (* insertion sort; spans are small and nearly sorted in preorder input *)
    for i = lo + 1 to hi - 1 do
      let k = child_key.(i) and v = child_node.(i) in
      let j = ref i in
      while !j > lo && child_key.(!j - 1) > k do
        child_key.(!j) <- child_key.(!j - 1);
        child_node.(!j) <- child_node.(!j - 1);
        decr j
      done;
      child_key.(!j) <- k;
      child_node.(!j) <- v
    done;
    for i = lo + 1 to hi - 1 do
      if child_key.(i) = child_key.(i - 1) then
        fail "Packed.of_arrays: duplicate child label under node %d" p
    done
  done;
  (* link spans *)
  let nl = Array.length links in
  let lcounts = Array.make (n + 1) 0 in
  Array.iter
    (fun (src, ldim, llabel, dst) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        fail "Packed.of_arrays: link endpoint out of range";
      if ldim < 0 || ldim >= d || llabel < 0 || llabel > 0xFFFFF then
        fail "Packed.of_arrays: link label out of range";
      lcounts.(src) <- lcounts.(src) + 1)
    links;
  let link_start = Array.make (n + 1) 0 in
  for p = 0 to n - 1 do
    link_start.(p + 1) <- link_start.(p) + lcounts.(p)
  done;
  let link_key = Array.make nl 0 in
  let link_node = Array.make nl 0 in
  let lfill = Array.copy link_start in
  Array.iter
    (fun (src, ldim, llabel, dst) ->
      link_key.(lfill.(src)) <- key_of ldim llabel;
      link_node.(lfill.(src)) <- dst;
      lfill.(src) <- lfill.(src) + 1)
    links;
  for p = 0 to n - 1 do
    let lo = link_start.(p) and hi = link_start.(p + 1) in
    for i = lo + 1 to hi - 1 do
      let k = link_key.(i) and v = link_node.(i) in
      let j = ref i in
      while !j > lo && link_key.(!j - 1) > k do
        link_key.(!j) <- link_key.(!j - 1);
        link_node.(!j) <- link_node.(!j - 1);
        decr j
      done;
      link_key.(!j) <- k;
      link_node.(!j) <- v
    done;
    for i = lo + 1 to hi - 1 do
      if link_key.(i) = link_key.(i - 1) then
        fail "Packed.of_arrays: duplicate link label out of node %d" p
    done;
    (* Definition 1: a link may not shadow a tree edge with the same label *)
    for i = lo to hi - 1 do
      if bsearch child_key child_start.(p) child_start.(p + 1) link_key.(i) >= 0 then
        fail "Packed.of_arrays: link duplicates a tree edge out of node %d" p
    done
  done;
  (* dense aggregate columns *)
  let n_cls =
    Array.fold_left (fun acc a -> if Option.is_none a then acc else acc + 1) 0 aggs
  in
  let agg_id = Array.make n (-1) in
  let agg_count = Array.make n_cls 0 in
  let agg_sum = Array.make n_cls 0.0 in
  let agg_min = Array.make n_cls 0.0 in
  let agg_max = Array.make n_cls 0.0 in
  let next = ref 0 in
  Array.iteri
    (fun i a ->
      match a with
      | None -> ()
      | Some (a : Agg.t) ->
        let c = !next in
        incr next;
        agg_id.(i) <- c;
        agg_count.(c) <- a.count;
        agg_sum.(c) <- a.sum;
        agg_min.(c) <- a.min;
        agg_max.(c) <- a.max)
    aggs;
  (* combined step index; keys are unique by the validation above (no
     duplicate child or link labels, no link shadowing an edge) *)
  let n_steps = (n - 1) + nl in
  let hsize =
    let s = ref 8 in
    while !s < 2 * n_steps do
      s := !s * 2
    done;
    !s
  in
  let hash_mask = hsize - 1 in
  let hash_key = Array.make hsize (-1) in
  let hash_dst = Array.make hsize 0 in
  let put k v =
    let i = ref (hash_slot k hash_mask) in
    while hash_key.(!i) >= 0 do
      i := (!i + 1) land hash_mask
    done;
    hash_key.(!i) <- k;
    hash_dst.(!i) <- v
  in
  for i = 1 to n - 1 do
    put (step_key parent.(i) dim.(i) label.(i)) i
  done;
  Array.iter (fun (src, ldim, llabel, dst) -> put (step_key src ldim llabel) dst) links;
  {
    schema;
    dim;
    label;
    parent;
    child_start;
    child_key;
    child_node;
    link_start;
    link_key;
    link_node;
    agg_id;
    agg_count;
    agg_sum;
    agg_min;
    agg_max;
    hash_mask;
    hash_key;
    hash_dst;
  }

(* ---------- freeze / thaw ---------- *)

let of_tree tree =
  let n = Qc_tree.n_nodes tree in
  (* canonical preorder ids: children in ascending (dim, label) order *)
  let id_of = Hashtbl.create (2 * n) in
  let order = Array.make n (Qc_tree.root tree) in
  let next = ref 0 in
  let sorted_children (node : Qc_tree.node) =
    List.sort
      (fun (a : Qc_tree.node) (b : Qc_tree.node) ->
        let c = Int.compare a.dim b.dim in
        if c <> 0 then c else Int.compare a.label b.label)
      node.children
  in
  let rec assign (node : Qc_tree.node) =
    let id = !next in
    incr next;
    Hashtbl.replace id_of node.nid id;
    order.(id) <- node;
    List.iter assign (sorted_children node)
  in
  assign (Qc_tree.root tree);
  let preorder_id nid =
    match Hashtbl.find_opt id_of nid with
    | Some i -> i
    | None -> invalid_arg "Packed.of_tree: link endpoint outside the tree"
  in
  let dim = Array.make n (-1) in
  let label = Array.make n 0 in
  let parent = Array.make n (-1) in
  let aggs = Array.make n None in
  let links = ref [] in
  for i = 0 to n - 1 do
    let node = order.(i) in
    dim.(i) <- node.dim;
    label.(i) <- node.label;
    (match node.parent with
    | Some p -> parent.(i) <- preorder_id p.nid
    | None -> parent.(i) <- -1);
    aggs.(i) <- node.agg;
    List.iter
      (fun (d, l, (dst : Qc_tree.node)) ->
        links := (i, d, l, preorder_id dst.nid) :: !links)
      node.links
  done;
  dim.(0) <- -1;
  of_arrays ~schema:(Qc_tree.schema tree) ~dim ~label ~parent ~aggs
    ~links:(Array.of_list !links)

let to_tree t =
  let n = n_nodes t in
  let tree = Qc_tree.create t.schema in
  let nodes = Array.make n (Qc_tree.root tree) in
  Qc_tree.set_agg nodes.(0) (agg t 0);
  (* preorder guarantees the parent's path is materialized before its
     children's, so each insert_path extends by exactly one node *)
  for i = 1 to n - 1 do
    let node = Qc_tree.insert_path tree (node_cell t i) in
    Qc_tree.set_agg node (agg t i);
    nodes.(i) <- node
  done;
  for src = 0 to n - 1 do
    iter_links
      (fun d l dst -> Qc_tree.add_link tree ~src:nodes.(src) ~dim:d ~label:l ~dst:nodes.(dst))
      t src
  done;
  tree
