open Qc_cube

type t = {
  tree : Qc_tree.t;
  mutable table : Table.t;
}

let create tree base = { tree = Qc_tree.copy tree; table = Table.copy base }

let assume_inserted t delta =
  ignore (Maintenance.insert_batch t.tree ~base:t.table ~delta)

let assume_deleted t delta =
  let new_base, _ = Maintenance.delete_batch t.tree ~base:t.table ~delta in
  t.table <- new_base

let tree t = t.tree

let table t = t.table

type delta = {
  cell : Cell.t;
  before : Agg.t option;
  after : Agg.t option;
}

let differ a b =
  match (a, b) with
  | None, None -> false
  | Some x, Some y -> not (Agg.approx_equal x y)
  | None, Some _ | Some _, None -> true

let compare_cells t ~against cells =
  List.filter_map
    (fun cell ->
      let before = Result.to_option (Query.point_result against cell) in
      let after = Result.to_option (Query.point_result t.tree cell) in
      if differ before after then Some { cell = Cell.copy cell; before; after } else None)
    cells

let affected_classes t ~against =
  let acc = ref [] in
  let seen = Cell.Tbl.create 256 in
  Qc_tree.iter_classes
    (fun _ ub before ->
      Cell.Tbl.replace seen ub ();
      let after =
        Option.bind (Qc_tree.find_path t.tree ub) (fun n -> n.Qc_tree.agg)
      in
      if differ (Some before) after then acc := (ub, Some before, after) :: !acc)
    against;
  (* classes that exist only in the scenario *)
  Qc_tree.iter_classes
    (fun _ ub after ->
      if not (Cell.Tbl.mem seen ub) then acc := (ub, None, Some after) :: !acc)
    t.tree;
  List.rev !acc
