(** A frozen, read-only QC-tree flattened into contiguous integer and float
    columns.

    [of_tree] renumbers the nodes of a built {!Qc_tree.t} in canonical
    preorder — root first, children in ascending (dimension, label) order —
    and stores the structure as flat arrays: per-node dimension/label/parent
    codes, CSR-style child and link spans sorted by a packed
    [(dim lsl 20) lor label] key for binary search, and dense aggregate
    columns.  The layout is immutable; maintenance thaws with {!to_tree},
    applies the incremental algorithms, and refreezes.

    Navigation primitives mirror the mutable tree's exactly ([find_step] ≍
    {!Qc_tree.find_entry}, [last_child] ≍ {!Qc_tree.last_dim_child}), so the
    packed query path in {!Query} visits the same nodes in the same order
    and reports identical [node_accesses]. *)

open Qc_cube

type t

val of_tree : Qc_tree.t -> t
(** Freeze a built tree.  The result is canonical: two trees with equal
    {!Qc_tree.canonical_string} freeze to identical columns. *)

val to_tree : t -> Qc_tree.t
(** Thaw back to a mutable tree (canonically equal to the tree frozen). *)

val of_arrays :
  schema:Schema.t ->
  dim:int array ->
  label:int array ->
  parent:int array ->
  aggs:Agg.t option array ->
  links:(int * int * int * int) array ->
  t
(** Validated constructor from raw per-node columns plus [(src, dim, label,
    dst)] links, used by deserialization.  Checks the structural invariants
    (preorder parents, strictly increasing dimensions, label ranges, no
    duplicate or edge-shadowing labels out of a node).
    @raise Invalid_argument when the input is not a well-formed QC-tree. *)

(** {1 Navigation} *)

val root : t -> int
(** Always [0]. *)

val dim : t -> int -> int
(** Dimension of a node's incoming label; [-1] at the root. *)

val label : t -> int -> int

val parent : t -> int -> int
(** Parent node id; [-1] at the root. *)

val agg : t -> int -> Agg.t option
(** The class aggregate; [None] on prefix nodes. *)

val has_agg : t -> int -> bool
(** Whether the node is a class (carries an aggregate), without
    materialising the {!Agg.t} record. *)

type step = Edge of int | Link of int

val find_step : t -> int -> int -> int -> step option
(** [find_step t n dim label] is the outgoing step of [n] carrying
    [(dim, label)] — a binary search of the node's child span, then its link
    span.  Mirrors {!Qc_tree.find_entry}. *)

val step_dst : t -> int -> int -> int -> int
(** Allocation-free {!find_step}: the destination node (edge first, then
    link), or [-1].  For hot paths that do not need the step kind. *)

val find_child : t -> int -> int -> int -> int
(** Tree-edge lookup only; [-1] when absent. *)

val find_link : t -> int -> int -> int -> int
(** Link lookup only; [-1] when absent. *)

val last_child : t -> int -> int
(** The child on the node's last (maximal) dimension — the hop of Lemma 2;
    [-1] on leaves.  With the span sorted by (dimension, label) this is just
    the span's last entry. *)

val iter_children : (int -> unit) -> t -> int -> unit
(** Visit a node's children in ascending (dimension, label) order. *)

val iter_links : (int -> int -> int -> unit) -> t -> int -> unit
(** [iter_links f t n] calls [f dim label dst] per outgoing link of [n]. *)

val node_cell : t -> int -> Cell.t
(** Reconstruct the cell spelled by the root-to-node path. *)

val iter_classes : (int -> Cell.t -> Agg.t -> unit) -> t -> unit
(** Visit every class node (in preorder) with its upper bound and
    aggregate. *)

(** {1 Statistics} *)

val schema : t -> Schema.t
val n_nodes : t -> int
val n_links : t -> int
val n_classes : t -> int

val bytes : t -> int
(** Size under the shared logical byte-cost model of {!Qc_util.Size} —
    identical to {!Qc_tree.bytes} of the same tree, for Figure 12/15
    comparability. *)

val resident_bytes : t -> int
(** Actual size of the flat columns (8 bytes per array slot) — what the
    packed representation costs in memory, reported by the benchmarks. *)

(** {1 Raw column view}

    Exposed for {!Check}, which re-derives every structural invariant from
    the columns themselves, and for the negative tests that corrupt a
    frozen tree in place to prove the checker notices.  The arrays are the
    live ones, {e not} copies: treat the view as read-only everywhere
    outside [test/]. *)

type raw = {
  r_dim : int array;  (** per-node dimension; [-1] at the root *)
  r_label : int array;
  r_parent : int array;
  r_child_start : int array;  (** CSR offsets into [r_child_*] *)
  r_child_key : int array;  (** [(dim lsl 20) lor label], ascending per span *)
  r_child_node : int array;
  r_link_start : int array;
  r_link_key : int array;
  r_link_node : int array;
  r_agg_id : int array;  (** [-1] on prefix nodes, else index into [r_agg_*] *)
  r_agg_count : int array;
  r_agg_sum : float array;
  r_agg_min : float array;
  r_agg_max : float array;
  r_hash_mask : int;
  r_hash_key : int array;  (** step index; [-1] = empty slot *)
  r_hash_dst : int array;
}

val raw : t -> raw
