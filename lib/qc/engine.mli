(** The unified query-engine seam: one logical query interface over every
    physical representation, and a multicore batch executor on top.

    The paper's query algorithms (Sec. 4) are implemented by three physical
    structures — the mutable {!Qc_tree}, the frozen {!Packed} layout, and
    the Dwarf baseline in [lib/dwarf].  A {!BACKEND} packages one of them
    behind the stable logical surface ([point] / [range] / [iceberg] /
    [explain] / [node_accesses]), every operation returning a typed
    [(_, error) result] instead of the historical option-vs-exception mix.
    The CLI, benchmarks, warehouse and invariant checker all dispatch
    through this seam, so adding a representation means instantiating one
    module, not patching four call sites.

    {!run_batch} executes a whole array of parsed queries over an immutable
    snapshot, fanning contiguous chunks out across OCaml 5 [Domain]s.
    Answers, per-query node-access counts and merged {!Qc_util.Metrics}
    tallies are bit-identical to sequential execution whatever the job
    count or chunk scheduling order. *)

open Qc_cube

(** {1 Errors} *)

type error = Query.error =
  | Arity_mismatch of { expected : int; got : int }
  | Empty_cover of Cell.t
  | Unsupported of { backend : string; operation : string }
  | Bad_query of string
      (** Re-export of {!Query.error} so engine clients need one name. *)

val error_equal : error -> error -> bool

val error_to_string : ?schema:Schema.t -> error -> string

(** {1 Backend-neutral EXPLAIN} *)

type explain_step = {
  step_kind : Query.step_kind;
  step_dim : int;  (** dimension of the step's label *)
  step_label : int;  (** dimension value code *)
  step_cell : Cell.t;  (** the cell spelled by the node reached *)
}

type explanation = {
  x_cell : Cell.t;
  x_steps : explain_step list;  (** root-to-answer order *)
  x_outcome : Query.outcome;
  x_answer : (Cell.t * Agg.t) option;  (** [Some] iff the outcome is [Hit] *)
}

val nodes_touched : explanation -> int
(** [1] (the root) plus one per step — Figure 13's work unit. *)

val pp_explanation : Schema.t -> Format.formatter -> explanation -> unit
(** Same rendering as [qct explain] has always printed, for any backend. *)

(** {1 The backend seam} *)

module type BACKEND = sig
  type t

  val name : string
  (** Stable identifier used by [--backend] and in error messages. *)

  val schema : t -> Schema.t

  val describe : t -> string
  (** One line of physical-representation statistics. *)

  val point : t -> Cell.t -> (Agg.t, error) result
  (** Algorithm 3.  [Error (Empty_cover _)] when the cell is not in the
      cube. *)

  val range : t -> Query.range -> ((Cell.t * Agg.t) list, error) result
  (** Algorithm 4; an empty answer is [Ok []]. *)

  val iceberg : t -> Agg.func -> threshold:float -> ((Cell.t * Agg.t) list, error) result
  (** Every class whose aggregate reaches [threshold], sorted by upper
      bound in dictionary order (a canonical order shared by all backends,
      so differential tests can compare lists directly). *)

  val explain : t -> Cell.t -> (explanation, error) result

  val node_accesses : t -> Cell.t -> (int, error) result
  (** Nodes the point search for this cell visits — the unit the paper's
      Figure 13 compares across structures. *)
end

module Tree_backend : BACKEND with type t = Qc_tree.t

module Packed_backend : BACKEND with type t = Packed.t
(** The Dwarf instance lives in [lib/dwarf] ([Dwarf.Backend]) so the core
    library does not depend on the baseline; the scatter-gather composite
    lives in {!Shard}. *)

val check_arity : Schema.t -> int -> (unit, error) result
(** [check_arity schema width] is the [Arity_mismatch] guard every backend
    applies to an incoming cell or range — exposed for backend
    implementors (the composite in {!Shard} checks once instead of
    collecting one identical error per shard). *)

(** {1 Batch queries} *)

type query = Request.query =
  | Point of Cell.t
  | Range of Query.range
  | Iceberg of { func : Agg.func; threshold : float }
      (** Re-export of {!Request.query} — the one query vocabulary shared
          by the CLI, the query files and the wire protocol. *)

type answer = Request.answer = Agg_answer of Agg.t | Cells_answer of (Cell.t * Agg.t) list

type outcome = (answer, error) result

val answer_equal : answer -> answer -> bool
(** Exact: [Cell.equal] cells and [Agg.equal] (bit-exact float) summaries —
    the batch executor guarantees bit-identical answers, so tests compare
    with this, not with approximate equality. *)

val outcome_equal : outcome -> outcome -> bool

(** {2 Query-file syntax}

    One query per line; blank lines and [#] comments are skipped:
    {v
    point S1,P2,*
    range *,P1|P2,f
    iceberg sum 25
    v}
    Point cells use [*] for ALL; range dimensions are [*] (unconstrained)
    or [|]-separated value enumerations; iceberg takes an aggregate
    function name and a threshold. *)

val parse_query : Schema.t -> string -> (query, error) result

val parse_queries : Schema.t -> string -> (query array, error) result
(** Parse a whole query file.  The first bad line fails the batch with
    [Bad_query "line N: ..."] — batches are validated up front so the
    executor never mixes parse errors into result slots. *)

val render_query : Schema.t -> query -> string
(** One-line human rendering ([point S1,P2,*], [range (...)],
    [iceberg sum 25]) — used by [qct batch] output and the slow-query
    log. *)

val query_kind : query -> string
(** ["point"], ["range"] or ["iceberg"] — also the per-query span name. *)

(** {1 Observability}

    {!run_one} (and therefore every batch) is instrumented with
    {!Qc_util.Trace} spans: one span per query (name = {!query_kind},
    category ["engine"], attributes [backend] and — for point queries —
    [nodes], the paper's Figure-13 work unit), one per chunk and one per
    batch.  With tracing, metrics and the slow-query log all disabled the
    instrumentation reduces to a few atomic loads (bounded by
    [BENCH_PR6.json]).

    The slow-query log: when a threshold is set, any query whose latency
    reaches it is buffered (Domain-locally, so workers never touch the
    Logs reporter) and emitted on the [qc.slow] source — query, latency
    and node accesses — by {!flush_slow_log}, which {!run_batch} calls
    after its deterministic chunk-order merge. *)

val set_slow_threshold_ms : float option -> unit
(** Enable ([Some ms]) or disable ([None], the default) the slow-query
    log.  [Some 0.] logs every query.
    @raise Invalid_argument on a negative or non-finite threshold. *)

val flush_slow_log : unit -> unit
(** Emit and clear the calling Domain's buffered slow-query entries on
    the [qc.slow] Logs source (level [warning]).  Callers running
    {!run_one} directly should flush after the query; {!run_batch}
    flushes itself. *)

val run_one : (module BACKEND with type t = 'a) -> 'a -> query -> outcome
(** Answer one query (the instrumented single-query entry point the
    batch executor also uses per slot). *)

val run_one_plain : (module BACKEND with type t = 'a) -> 'a -> query -> outcome
(** The uninstrumented dispatch {!run_one} reduces to when tracing,
    metrics and the slow-query log are all off — exposed as the baseline
    [BENCH_PR6.json] measures the disabled-instrumentation overhead
    against. *)

(** {1 The parallel batch executor} *)

type chunk_stat = {
  chunk : int;  (** chunk index, [0 .. jobs-1] *)
  c_lo : int;  (** first query slot of the chunk (inclusive) *)
  c_hi : int;  (** one past the last query slot *)
  c_domain : int;  (** the Domain id the chunk ran on *)
  c_elapsed_s : float;  (** monotonic elapsed seconds for the chunk *)
}

type batch = {
  outcomes : outcome array;  (** one per query, in input order *)
  accesses : int array option;
      (** per-query node accesses (point queries; 0 elsewhere), when
          requested *)
  jobs : int;  (** the domain count actually used *)
  elapsed_s : float;  (** wall-clock execution time, excluding parsing *)
  chunks : chunk_stat array;
      (** per-chunk timing, indexed by chunk — the source of
          [qct batch --json]'s per-chunk / per-domain breakdowns *)
}

val default_jobs : unit -> int
(** The [QC_JOBS] environment override when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val run_batch :
  ?jobs:int ->
  ?node_accesses:bool ->
  ?chunk_order:int array ->
  (module BACKEND with type t = 'a) ->
  'a ->
  query array ->
  batch
(** [run_batch (module B) b queries] answers every query over the immutable
    snapshot [b].

    With [jobs = 1] (or one query) execution is inline.  Otherwise exactly
    [jobs] contiguous chunks are spawned, one [Domain] each; workers write
    disjoint slots of the shared result arrays and return their drained
    {!Qc_util.Metrics} deltas, which the coordinator absorbs in chunk order
    after joining — so answers, [accesses] and metric totals are
    bit-identical to a sequential run.  [jobs] defaults to
    {!default_jobs ()} and is clamped to the query count.

    [node_accesses] additionally records per-point-query node counts
    (costs one extra explain-path traversal per point query).

    [chunk_order] is a test hook: a permutation of [0 .. jobs-1] giving the
    order chunks are spawned in, proving scheduling order cannot leak into
    results.
    @raise Invalid_argument if [chunk_order] is not a permutation. *)
