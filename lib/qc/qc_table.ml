open Qc_cube

type t = {
  schema : Schema.t;
  ubs : Cell.t array;
  aggs : Agg.t array;
}

let of_temp_classes schema classes =
  let sorted = List.sort Temp_class.compare_for_insertion classes in
  let rows =
    let rec dedup last acc = function
      | [] -> List.rev acc
      | (tc : Temp_class.t) :: rest -> (
        match last with
        | Some ub when Cell.equal ub tc.ub -> dedup last acc rest
        | _ -> dedup (Some tc.ub) ((tc.ub, tc.agg) :: acc) rest)
    in
    dedup None [] sorted
  in
  {
    schema;
    ubs = Array.of_list (List.map fst rows);
    aggs = Array.of_list (List.map snd rows);
  }

let of_table table = of_temp_classes (Table.schema table) (Dfs.run table)

let schema t = t.schema

let n_classes t = Array.length t.ubs

let find_ub t cell =
  let lo = ref 0 and hi = ref (Array.length t.ubs) in
  let found = ref None in
  while !lo < !hi && Option.is_none !found do
    let mid = (!lo + !hi) / 2 in
    let c = Cell.compare_dict t.ubs.(mid) cell in
    if c = 0 then found := Some t.aggs.(mid)
    else if c < 0 then lo := mid + 1
    else hi := mid
  done;
  !found

let find_cell t cell =
  (* The class of [cell] is the dominating upper bound with the smallest
     cover set: every dominating bound's class covers a superset of [cell]'s
     cover, and [cell]'s own class dominates it with exactly that cover. *)
  let best = ref None in
  for i = 0 to Array.length t.ubs - 1 do
    if Cell.dominates t.ubs.(i) cell then
      match !best with
      | Some (a : Agg.t) when a.count <= t.aggs.(i).Agg.count -> ()
      | _ -> best := Some t.aggs.(i)
  done;
  !best

let iter f t = Array.iteri (fun i ub -> f ub t.aggs.(i)) t.ubs

let bytes t =
  let open Qc_util.Size in
  n_classes t * ((Schema.n_dims t.schema * value_bytes) + pointer_bytes + measure_bytes)
