open Qc_cube

(* Deep invariant verification.  Every checker below re-derives its
   invariants from first principles — none of them trusts the caches,
   indexes or counters the checked structure maintains for itself, because
   those are exactly what a bug would corrupt. *)

type violation =
  | Broken_parent of { nid : int; expected_parent : int }
  | Dim_out_of_range of { nid : int; dim : int }
  | Label_out_of_range of { nid : int; label : int }
  | Dim_not_increasing of { nid : int; dim : int; parent_dim : int }
  | Duplicate_step_label of { nid : int; dim : int; label : int }
  | Index_missing_entry of { nid : int; dim : int; label : int }
  | Index_wrong_entry of { nid : int; dim : int; label : int }
  | Link_target_dead of { src : int; dim : int; label : int }
  | Link_not_monotonic of { src : int; dim : int; src_dim : int }
  | Link_label_mismatch of { src : int; dim : int; label : int; dst_label : int }
  | Link_cycle of { nid : int }
  | Useless_node of { nid : int }
  | Tree_internal of string
  | Class_missing of { ub : Cell.t }
  | Class_count_mismatch of { expected : int; got : int }
  | Aggregate_mismatch of { ub : Cell.t; expected : Agg.t; got : Agg.t }
  | Oracle_mismatch of {
      cell : Cell.t;
      expected : Agg.t option;
      got : Agg.t option;
    }
  | Column_length_mismatch of { column : string; expected : int; got : int }
  | Span_out_of_bounds of { nid : int; lo : int; hi : int }
  | Span_unsorted of { nid : int; index : int }
  | Span_wrong_child of { nid : int; index : int; child : int }
  | Preorder_violation of { nid : int }
  | Step_index_missing of { src : int; key : int }
  | Step_index_wrong of { src : int; key : int; expected : int; got : int }
  | Step_index_extra of { expected : int; got : int }
  | Agg_id_invalid of { nid : int; agg_id : int }
  | Roundtrip_mismatch of { stage : string }
  | Qctp_truncated of { offset : int; wanted : int }
  | Qctp_bad_magic of string
  | Qctp_bad_version of int
  | Qctp_bad_dim_count of int
  | Qctp_varint_overflow of { offset : int }
  | Qctp_bad_agg_flag of { offset : int; flag : int }
  | Qctp_bad_parent of { node : int; parent : int }
  | Qctp_bad_dim of { node : int; dim : int }
  | Qctp_bad_link of { index : int; field : string; value : int }
  | Qctp_trailing_bytes of int

type report = {
  violations : violation list;
  checked : (string * int) list;
}

let ok r = List.is_empty r.violations

let merge_reports reports =
  let checked = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (k, n) ->
          (match Hashtbl.find_opt checked k with
          | None ->
            order := k :: !order;
            Hashtbl.replace checked k n
          | Some m -> Hashtbl.replace checked k (m + n)))
        r.checked)
    reports;
  {
    violations = List.concat_map (fun r -> r.violations) reports;
    checked =
      List.rev_map
        (fun k ->
          match Hashtbl.find_opt checked k with
          | Some n -> (k, n)
          | None -> (k, 0))
        !order;
  }

let violation_label = function
  | Broken_parent _ -> "broken-parent"
  | Dim_out_of_range _ -> "dim-out-of-range"
  | Label_out_of_range _ -> "label-out-of-range"
  | Dim_not_increasing _ -> "dim-not-increasing"
  | Duplicate_step_label _ -> "duplicate-step-label"
  | Index_missing_entry _ -> "index-missing-entry"
  | Index_wrong_entry _ -> "index-wrong-entry"
  | Link_target_dead _ -> "link-target-dead"
  | Link_not_monotonic _ -> "link-not-monotonic"
  | Link_label_mismatch _ -> "link-label-mismatch"
  | Link_cycle _ -> "link-cycle"
  | Useless_node _ -> "useless-node"
  | Tree_internal _ -> "tree-internal"
  | Class_missing _ -> "class-missing"
  | Class_count_mismatch _ -> "class-count-mismatch"
  | Aggregate_mismatch _ -> "aggregate-mismatch"
  | Oracle_mismatch _ -> "oracle-mismatch"
  | Column_length_mismatch _ -> "column-length-mismatch"
  | Span_out_of_bounds _ -> "span-out-of-bounds"
  | Span_unsorted _ -> "span-unsorted"
  | Span_wrong_child _ -> "span-wrong-child"
  | Preorder_violation _ -> "preorder-violation"
  | Step_index_missing _ -> "step-index-missing"
  | Step_index_wrong _ -> "step-index-wrong"
  | Step_index_extra _ -> "step-index-extra"
  | Agg_id_invalid _ -> "agg-id-invalid"
  | Roundtrip_mismatch _ -> "roundtrip-mismatch"
  | Qctp_truncated _ -> "qctp-truncated"
  | Qctp_bad_magic _ -> "qctp-bad-magic"
  | Qctp_bad_version _ -> "qctp-bad-version"
  | Qctp_bad_dim_count _ -> "qctp-bad-dim-count"
  | Qctp_varint_overflow _ -> "qctp-varint-overflow"
  | Qctp_bad_agg_flag _ -> "qctp-bad-agg-flag"
  | Qctp_bad_parent _ -> "qctp-bad-parent"
  | Qctp_bad_dim _ -> "qctp-bad-dim"
  | Qctp_bad_link _ -> "qctp-bad-link"
  | Qctp_trailing_bytes _ -> "qctp-trailing-bytes"

let pp_violation schema ppf v =
  let cell c =
    match schema with
    | Some s -> Cell.to_string s c
    | None ->
      "(" ^ String.concat "," (Array.to_list (Array.map string_of_int c)) ^ ")"
  in
  let agg_opt = function
    | None -> "none"
    | Some a -> Format.asprintf "%a" Agg.pp a
  in
  let f fmt = Format.fprintf ppf fmt in
  match v with
  | Broken_parent { nid; expected_parent } ->
    f "node %d: parent field does not point at node %d" nid expected_parent
  | Dim_out_of_range { nid; dim } -> f "node %d: dimension %d outside the schema" nid dim
  | Label_out_of_range { nid; label } -> f "node %d: label %d out of range" nid label
  | Dim_not_increasing { nid; dim; parent_dim } ->
    f "node %d: edge dimension %d does not exceed parent dimension %d" nid dim parent_dim
  | Duplicate_step_label { nid; dim; label } ->
    f "node %d: two outgoing steps carry (dim %d, label %d)" nid dim label
  | Index_missing_entry { nid; dim; label } ->
    f "node %d: edge index cannot resolve existing step (dim %d, label %d)" nid dim label
  | Index_wrong_entry { nid; dim; label } ->
    f "node %d: edge index resolves (dim %d, label %d) to the wrong node" nid dim label
  | Link_target_dead { src; dim; label } ->
    f "node %d: link (dim %d, label %d) targets a node unreachable from the root" src dim
      label
  | Link_not_monotonic { src; dim; src_dim } ->
    f "node %d: link dimension %d does not exceed the node's dimension %d" src dim src_dim
  | Link_label_mismatch { src; dim; label; dst_label } ->
    f "node %d: link (dim %d, label %d) targets a node spelling %d in that dimension" src
      dim label dst_label
  | Link_cycle { nid } ->
    f "node %d: reachable from itself through edges and drill-down links" nid
  | Useless_node { nid } -> f "node %d: aggregate-less leaf should have been pruned" nid
  | Tree_internal msg -> f "internal tree index: %s" msg
  | Class_missing { ub } -> f "class %s: no upper-bound node in the tree" (cell ub)
  | Class_count_mismatch { expected; got } ->
    f "class count: DFS derives %d classes, the tree stores %d" expected got
  | Aggregate_mismatch { ub; expected; got } ->
    f "class %s: aggregate %a differs from cover aggregate %a" (cell ub) Agg.pp got Agg.pp
      expected
  | Oracle_mismatch { cell = c; expected; got } ->
    f "point %s: tree answers %s, base-table scan answers %s" (cell c) (agg_opt got)
      (agg_opt expected)
  | Column_length_mismatch { column; expected; got } ->
    f "packed column %s: length %d, expected %d" column got expected
  | Span_out_of_bounds { nid; lo; hi } ->
    f "packed node %d: CSR span [%d, %d) out of bounds or non-monotone" nid lo hi
  | Span_unsorted { nid; index } ->
    f "packed node %d: span keys not strictly ascending at payload index %d" nid index
  | Span_wrong_child { nid; index; child } ->
    f "packed node %d: span entry %d resolves to inconsistent node %d" nid index child
  | Preorder_violation { nid } ->
    f "packed node %d: ids are not the canonical preorder of the structure" nid
  | Step_index_missing { src; key } ->
    f "packed step index: step (src %d, key %d) is not resolvable" src key
  | Step_index_wrong { src; key; expected; got } ->
    f "packed step index: step (src %d, key %d) resolves to %d, expected %d" src key got
      expected
  | Step_index_extra { expected; got } ->
    f "packed step index: %d live slots for %d steps" got expected
  | Agg_id_invalid { nid; agg_id } ->
    f "packed node %d: aggregate id %d is invalid" nid agg_id
  | Roundtrip_mismatch { stage } -> f "round-trip (%s) does not reproduce the tree" stage
  | Qctp_truncated { offset; wanted } ->
    f "QCTP: truncated at byte %d (%d more bytes declared)" offset wanted
  | Qctp_bad_magic m -> f "QCTP: bad magic %S" m
  | Qctp_bad_version v -> f "QCTP: unsupported version %d" v
  | Qctp_bad_dim_count d -> f "QCTP: dimension count %d outside 1..15" d
  | Qctp_varint_overflow { offset } -> f "QCTP: varint wider than 63 bits at byte %d" offset
  | Qctp_bad_agg_flag { offset; flag } -> f "QCTP: aggregate flag %d at byte %d" flag offset
  | Qctp_bad_parent { node; parent } ->
    f "QCTP: node %d declares parent %d outside preorder" node parent
  | Qctp_bad_dim { node; dim } -> f "QCTP: node %d declares dimension %d" node dim
  | Qctp_bad_link { index; field; value } ->
    f "QCTP: link %d has %s %d out of range" index field value
  | Qctp_trailing_bytes n -> f "QCTP: %d trailing bytes after the structure" n

(* Violations render in the envelope {label, file_or_path, detail} shared
   with [qct recover --json] and qclint [--json] (DESIGN.md "Static
   analysis"), so one consumer parses all three reports. *)
let report_to_json ?(path = "") r =
  let open Qc_util.Jsonx in
  Obj
    [
      ("ok", Bool (ok r));
      ( "checked",
        Obj (List.map (fun (k, n) -> (k, Int n)) r.checked) );
      ( "violations",
        List
          (List.map
             (fun v ->
               Obj
                 [
                   ("label", String (violation_label v));
                   ("file_or_path", String path);
                   ("detail", String (Format.asprintf "%a" (pp_violation None) v));
                 ])
             r.violations) );
    ]

(* ---------- collector ---------- *)

type collector = {
  mutable vs : violation list;  (* reversed *)
  counts : (string, int) Hashtbl.t;
  mutable families : string list;  (* reversed *)
}

let collector () = { vs = []; counts = Hashtbl.create 8; families = [] }

let add c v = c.vs <- v :: c.vs

let tick c family =
  match Hashtbl.find_opt c.counts family with
  | None ->
    c.families <- family :: c.families;
    Hashtbl.replace c.counts family 1
  | Some n -> Hashtbl.replace c.counts family (n + 1)

let close c =
  {
    violations = List.rev c.vs;
    checked =
      List.rev_map
        (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt c.counts k)))
        c.families;
  }

(* ---------- mutable tree ---------- *)

let same_node (a : Qc_tree.node) (b : Qc_tree.node) = a.nid = b.nid

(* Cells sampled for the oracle replay: [*] or a dictionary code per
   dimension, drawn from the deterministic generator. *)
let sample_cell rng schema =
  let d = Schema.n_dims schema in
  Array.init d (fun i ->
      let card = Schema.cardinality schema i in
      if card = 0 || Qc_util.Rng.bool rng then Cell.all
      else 1 + Qc_util.Rng.int rng card)

let check_structure c tree =
  let d = Schema.n_dims (Qc_tree.schema tree) in
  let root = Qc_tree.root tree in
  (* Reachable set by tree edges; [iter_nodes] is exactly that traversal. *)
  let reachable = Hashtbl.create 256 in
  Qc_tree.iter_nodes (fun n -> Hashtbl.replace reachable n.Qc_tree.nid ()) tree;
  Qc_tree.iter_nodes
    (fun (n : Qc_tree.node) ->
      tick c "tree-nodes";
      if n.nid <> root.Qc_tree.nid then begin
        (match n.parent with
        | Some _ -> ()
        | None -> add c (Broken_parent { nid = n.nid; expected_parent = -1 }));
        if n.dim < 0 || n.dim >= d then add c (Dim_out_of_range { nid = n.nid; dim = n.dim });
        if n.label < 0 || n.label > 0xFFFFF then
          add c (Label_out_of_range { nid = n.nid; label = n.label })
      end;
      (* outgoing steps: parentage, monotone dimensions, no duplicates,
         index agreement *)
      let seen = Hashtbl.create 8 in
      let step dim label =
        tick c "tree-steps";
        if Hashtbl.mem seen (dim, label) then
          add c (Duplicate_step_label { nid = n.nid; dim; label })
        else Hashtbl.replace seen (dim, label) ()
      in
      List.iter
        (fun (ch : Qc_tree.node) ->
          step ch.dim ch.label;
          (match ch.parent with
          | Some p when same_node p n -> ()
          | _ -> add c (Broken_parent { nid = ch.nid; expected_parent = n.nid }));
          if ch.dim <= n.dim then
            add c (Dim_not_increasing { nid = ch.nid; dim = ch.dim; parent_dim = n.dim });
          match Qc_tree.find_entry tree n ch.dim ch.label with
          | Some (Qc_tree.Edge e) when same_node e ch -> ()
          | Some _ -> add c (Index_wrong_entry { nid = n.nid; dim = ch.dim; label = ch.label })
          | None -> add c (Index_missing_entry { nid = n.nid; dim = ch.dim; label = ch.label }))
        n.children;
      List.iter
        (fun (dim, label, (dst : Qc_tree.node)) ->
          step dim label;
          if dim <= n.dim then
            add c (Link_not_monotonic { src = n.nid; dim; src_dim = n.dim });
          if not (Hashtbl.mem reachable dst.nid) then
            add c (Link_target_dead { src = n.nid; dim; label })
          else begin
            (* Definition 1: the target is the prefix of the drilled-down
               class's upper bound through the drill dimension, so its path
               spells [label] in [dim]. *)
            let dst_cell = Qc_tree.node_cell tree dst in
            if dim >= 0 && dim < d && dst_cell.(dim) <> label then
              add c
                (Link_label_mismatch
                   { src = n.nid; dim; label; dst_label = dst_cell.(dim) })
          end;
          match Qc_tree.find_entry tree n dim label with
          | Some (Qc_tree.Link l) when same_node l dst -> ()
          | Some _ -> add c (Index_wrong_entry { nid = n.nid; dim; label })
          | None -> add c (Index_missing_entry { nid = n.nid; dim; label }))
        n.links;
      (* prune residue *)
      if
        Option.is_some n.parent && Option.is_none n.agg
        && List.is_empty n.children && List.is_empty n.links
      then add c (Useless_node { nid = n.nid }))
    tree;
  (* Acyclicity of the combined edge+link graph (roll-up/drill-down must
     terminate): tricolor DFS, one reported witness per cycle found. *)
  let state = Hashtbl.create 256 in
  (* 1 = on stack, 2 = done *)
  let rec dfs (n : Qc_tree.node) =
    match Hashtbl.find_opt state n.nid with
    | Some 1 -> add c (Link_cycle { nid = n.nid })
    | Some _ -> ()
    | None ->
      Hashtbl.replace state n.nid 1;
      List.iter dfs n.children;
      List.iter (fun (_, _, dst) -> dfs dst) n.links;
      Hashtbl.replace state n.nid 2
  in
  tick c "tree-acyclic";
  dfs root;
  (* The tree's own validator sees internals (e.g. stale index entries)
     that the public API cannot reach; surface anything it adds. *)
  tick c "tree-internal";
  match Qc_tree.validate tree with
  | Ok () -> ()
  | Error msg -> add c (Tree_internal msg)

let check_deep c tree base samples seed =
  let schema = Qc_tree.schema tree in
  (* Algorithm 1 cross-check: a fresh DFS over the base table must derive
     exactly the classes the tree stores, with the same aggregates. *)
  let ubs = Cell.Tbl.create 256 in
  List.iter
    (fun (tc : Temp_class.t) ->
      if not (Cell.Tbl.mem ubs tc.ub) then Cell.Tbl.replace ubs tc.ub tc.agg)
    (Dfs.run base);
  let expected = Cell.Tbl.length ubs in
  let got = Qc_tree.n_classes tree in
  tick c "deep-class-count";
  if expected <> got then add c (Class_count_mismatch { expected; got });
  Cell.Tbl.iter
    (fun ub agg ->
      tick c "deep-classes";
      match Qc_tree.find_path tree ub with
      | None -> add c (Class_missing { ub })
      | Some node -> (
        match node.Qc_tree.agg with
        | None -> add c (Class_missing { ub })
        | Some a ->
          if not (Agg.approx_equal agg a) then
            add c (Aggregate_mismatch { ub; expected = agg; got = a })))
    ubs;
  (* Lemma 1 / Theorem 1 spot check: random point queries against a full
     scan of the base table. *)
  let rng = Qc_util.Rng.create seed in
  for _ = 1 to samples do
    tick c "deep-oracle";
    let cell = sample_cell rng schema in
    let expected =
      let a = Table.cover_agg base cell in
      if a.Agg.count = 0 then None else Some a
    in
    (* Replay through the engine seam, as production queries run.
       [Empty_cover] is the well-typed "not in the cube"; arity errors
       cannot arise for a cell sampled from the tree's own schema. *)
    let got =
      match Engine.Tree_backend.point tree cell with Ok a -> Some a | Error _ -> None
    in
    let agree =
      match (expected, got) with
      | None, None -> true
      | Some a, Some b -> Agg.approx_equal a b
      | _ -> false
    in
    if not agree then add c (Oracle_mismatch { cell; expected; got })
  done

let check_tree ?(deep = false) ?base ?(samples = 64) ?(seed = 0) tree =
  let c = collector () in
  check_structure c tree;
  (* The oracle replay walks the tree with the query algorithms; on a
     structurally broken tree those can loop or crash, so deep checks only
     run once the structure is clean. *)
  (match (deep, base) with
  | true, Some base when List.is_empty c.vs -> check_deep c tree base samples seed
  | _ -> ());
  close c

(* ---------- packed columns ---------- *)

let key_of dim label = (dim lsl 20) lor label

let step_key src dim label = (src lsl 24) lor key_of dim label

let hash_slot k mask = ((k * 0x2545F4914F6CDD1D) lsr 20) land mask

let check_packed p =
  let c = collector () in
  let r = Packed.raw p in
  let n = Array.length r.Packed.r_dim in
  let column name expected got =
    tick c "packed-columns";
    if expected <> got then add c (Column_length_mismatch { column = name; expected; got })
  in
  let d = Schema.n_dims (Packed.schema p) in
  column "label" n (Array.length r.r_label);
  column "parent" n (Array.length r.r_parent);
  column "child_start" (n + 1) (Array.length r.r_child_start);
  column "link_start" (n + 1) (Array.length r.r_link_start);
  column "child_node" (Array.length r.r_child_key) (Array.length r.r_child_node);
  column "link_node" (Array.length r.r_link_key) (Array.length r.r_link_node);
  column "agg_id" n (Array.length r.r_agg_id);
  let n_cls = Array.length r.r_agg_count in
  column "agg_sum" n_cls (Array.length r.r_agg_sum);
  column "agg_min" n_cls (Array.length r.r_agg_min);
  column "agg_max" n_cls (Array.length r.r_agg_max);
  column "hash_dst" (Array.length r.r_hash_key) (Array.length r.r_hash_dst);
  let report = close c in
  if not (List.is_empty report.violations) then report
  else begin
    (* Node columns: root shape, preorder parents, monotone dimensions. *)
    let preorder_ok = ref true in
    tick c "packed-nodes";
    if n = 0 || r.r_dim.(0) <> -1 || r.r_parent.(0) <> -1 then begin
      add c (Preorder_violation { nid = 0 });
      preorder_ok := false
    end;
    for i = 1 to n - 1 do
      tick c "packed-nodes";
      let p' = r.r_parent.(i) in
      if p' < 0 || p' >= i then begin
        add c (Preorder_violation { nid = i });
        preorder_ok := false
      end
      else if r.r_dim.(i) <= r.r_dim.(p') then
        add c (Dim_not_increasing { nid = i; dim = r.r_dim.(i); parent_dim = r.r_dim.(p') });
      if r.r_dim.(i) < 0 || r.r_dim.(i) >= d then
        add c (Dim_out_of_range { nid = i; dim = r.r_dim.(i) });
      if r.r_label.(i) < 0 || r.r_label.(i) > 0xFFFFF then
        add c (Label_out_of_range { nid = i; label = r.r_label.(i) })
    done;
    (* CSR spans: monotone in-bounds offsets, strictly ascending keys,
       entries consistent with the node columns. *)
    let span ~starts ~keys ~nodes ~check_entry name =
      let payload = Array.length keys in
      let sound = ref true in
      if starts.(0) <> 0 || starts.(n) <> payload then begin
        add c (Span_out_of_bounds { nid = -1; lo = starts.(0); hi = starts.(n) });
        sound := false
      end;
      for p' = 0 to n - 1 do
        tick c name;
        let lo = starts.(p') and hi = starts.(p' + 1) in
        if lo > hi || lo < 0 || hi > payload then begin
          add c (Span_out_of_bounds { nid = p'; lo; hi });
          sound := false
        end
        else begin
          for i = lo + 1 to hi - 1 do
            if keys.(i - 1) >= keys.(i) then add c (Span_unsorted { nid = p'; index = i })
          done;
          for i = lo to hi - 1 do
            let dst = nodes.(i) in
            if dst < 0 || dst >= n || not (check_entry p' keys.(i) dst) then
              add c (Span_wrong_child { nid = p'; index = i; child = dst })
          done
        end
      done;
      !sound
    in
    let spans_sound =
      span ~starts:r.r_child_start ~keys:r.r_child_key ~nodes:r.r_child_node
        ~check_entry:(fun p' key child ->
          r.r_parent.(child) = p' && key_of r.r_dim.(child) r.r_label.(child) = key)
        "packed-child-spans"
      && span ~starts:r.r_link_start ~keys:r.r_link_key ~nodes:r.r_link_node
           ~check_entry:(fun _ _ _ -> true) "packed-link-spans"
    in
    (* Every tree edge must appear in its parent's child span. *)
    if spans_sound then
      for i = 1 to n - 1 do
        let p' = r.r_parent.(i) in
        if p' >= 0 && p' < i then begin
          let found = ref false in
          for j = r.r_child_start.(p') to r.r_child_start.(p' + 1) - 1 do
            if r.r_child_node.(j) = i then found := true
          done;
          if not !found then add c (Span_wrong_child { nid = p'; index = -1; child = i })
        end
      done;
    (* Canonical preorder: recompute it from the parent/dim/label columns
       and require the identity numbering. *)
    if !preorder_ok && spans_sound then begin
      tick c "packed-preorder";
      let kids = Array.make n [] in
      for i = n - 1 downto 1 do
        kids.(r.r_parent.(i)) <- i :: kids.(r.r_parent.(i))
      done;
      Array.iteri
        (fun p' l ->
          kids.(p') <-
            List.sort
              (fun a b ->
                Int.compare (key_of r.r_dim.(a) r.r_label.(a))
                  (key_of r.r_dim.(b) r.r_label.(b)))
              l)
        kids;
      let next = ref 0 in
      let bad = ref None in
      let rec assign i =
        if Option.is_none !bad then begin
          if i <> !next then bad := Some i;
          incr next;
          List.iter assign kids.(i)
        end
      in
      assign 0;
      match !bad with
      | Some nid -> add c (Preorder_violation { nid })
      | None -> if !next <> n then add c (Preorder_violation { nid = !next })
    end;
    (* Aggregate ids: dense, in order, within bounds. *)
    let next_agg = ref 0 in
    for i = 0 to n - 1 do
      tick c "packed-aggs";
      let a = r.r_agg_id.(i) in
      if a >= 0 then begin
        if a <> !next_agg || a >= n_cls then add c (Agg_id_invalid { nid = i; agg_id = a })
        else incr next_agg
      end
      else if a <> -1 then add c (Agg_id_invalid { nid = i; agg_id = a })
    done;
    if !next_agg <> n_cls then
      add c (Agg_id_invalid { nid = -1; agg_id = !next_agg });
    (* Step index: every edge and link resolves to its destination, and the
       table holds exactly one live slot per step. *)
    let mask = r.r_hash_mask in
    let hsize = Array.length r.r_hash_key in
    let index_sound = hsize > 0 && hsize land (hsize - 1) = 0 && mask = hsize - 1 in
    if not index_sound then
      add c (Column_length_mismatch { column = "hash_key"; expected = mask + 1; got = hsize })
    else begin
      let probe k =
        let rec go i steps =
          if steps > hsize then -1
          else
            let kk = r.r_hash_key.(i) in
            if kk = k then r.r_hash_dst.(i)
            else if kk < 0 then -1
            else go ((i + 1) land mask) (steps + 1)
        in
        go (hash_slot k mask) 0
      in
      let expect_step src key dst =
        tick c "packed-step-index";
        match probe key with
        | -1 -> add c (Step_index_missing { src; key })
        | got when got <> dst -> add c (Step_index_wrong { src; key; expected = dst; got })
        | _ -> ()
      in
      if spans_sound then begin
        for i = 1 to n - 1 do
          expect_step r.r_parent.(i) (step_key r.r_parent.(i) r.r_dim.(i) r.r_label.(i)) i
        done;
        for src = 0 to n - 1 do
          for j = r.r_link_start.(src) to r.r_link_start.(src + 1) - 1 do
            expect_step src ((src lsl 24) lor r.r_link_key.(j)) r.r_link_node.(j)
          done
        done
      end;
      let live = Array.fold_left (fun acc k -> if k >= 0 then acc + 1 else acc) 0 r.r_hash_key in
      let steps = (n - 1) + Array.length r.r_link_key in
      tick c "packed-step-index";
      if live <> steps then add c (Step_index_extra { expected = steps; got = live })
    end;
    close c
  end

(* ---------- QCTP bytes ---------- *)

exception Stop of violation

let check_bytes data =
  let c = collector () in
  let len = String.length data in
  let pos = ref 0 in
  let need n =
    if !pos + n > len then raise (Stop (Qctp_truncated { offset = len; wanted = !pos + n - len }))
  in
  let u8 () =
    need 1;
    let v = Char.code data.[!pos] in
    incr pos;
    v
  in
  let uint () =
    let start = !pos in
    let rec go acc shift =
      if shift > 56 then raise (Stop (Qctp_varint_overflow { offset = start }));
      let b = u8 () in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go acc (shift + 7)
    in
    go 0 0
  in
  let skip n =
    need n;
    pos := !pos + n
  in
  let str () = skip (uint ()) in
  (try
     tick c "qctp-header";
     need 4;
     let magic = String.sub data 0 4 in
     if magic <> Serial.packed_magic then raise (Stop (Qctp_bad_magic magic));
     pos := 4;
     let version = u8 () in
     if version <> 1 then raise (Stop (Qctp_bad_version version));
     str ();
     (* measure name *)
     let d = u8 () in
     if d = 0 || d > 15 then raise (Stop (Qctp_bad_dim_count d));
     for _ = 1 to d do
       tick c "qctp-dims";
       str ();
       (* dimension name *)
       let nv = uint () in
       for _ = 1 to nv do
         str ()
       done
     done;
     let n = uint () in
     if n = 0 then raise (Stop (Qctp_truncated { offset = !pos; wanted = 1 }));
     let agg () =
       let off = !pos in
       match u8 () with
       | 0 -> ()
       | 1 ->
         ignore (uint ());
         skip 24
       | flag -> raise (Stop (Qctp_bad_agg_flag { offset = off; flag }))
     in
     agg ();
     for i = 1 to n - 1 do
       tick c "qctp-nodes";
       let dim = u8 () in
       if dim >= d then add c (Qctp_bad_dim { node = i; dim });
       ignore (uint ());
       (* label *)
       let parent = uint () in
       if parent >= i then add c (Qctp_bad_parent { node = i; parent });
       agg ()
     done;
     let nl = uint () in
     for i = 0 to nl - 1 do
       tick c "qctp-links";
       let src = uint () in
       if src >= n then add c (Qctp_bad_link { index = i; field = "source"; value = src });
       let ldim = u8 () in
       if ldim >= d then add c (Qctp_bad_link { index = i; field = "dimension"; value = ldim });
       ignore (uint ());
       (* label *)
       let dst = uint () in
       if dst >= n then add c (Qctp_bad_link { index = i; field = "target"; value = dst })
     done;
     tick c "qctp-trailer";
     if !pos <> len then add c (Qctp_trailing_bytes (len - !pos))
   with Stop v -> add c v);
  close c

(* ---------- round trips ---------- *)

let check_roundtrip tree =
  let c = collector () in
  let canon = Qc_tree.canonical_string tree in
  (try
     let p = Packed.of_tree tree in
     tick c "roundtrip";
     if String.compare (Qc_tree.canonical_string (Packed.to_tree p)) canon <> 0 then
       add c (Roundtrip_mismatch { stage = "freeze-thaw" });
     let bytes = Serial.to_packed_string p in
     tick c "roundtrip";
     (match Serial.of_packed_string bytes with
     | p2 ->
       if String.compare (Qc_tree.canonical_string (Packed.to_tree p2)) canon <> 0 then
         add c (Roundtrip_mismatch { stage = "serialize-reload" })
     | exception Serial.Error _ -> add c (Roundtrip_mismatch { stage = "serialize-reload" }));
     tick c "roundtrip";
     if
       String.compare (Qc_tree.canonical_string (Serial.of_string (Serial.to_string tree))) canon
       <> 0
     then add c (Roundtrip_mismatch { stage = "text-reload" })
   with
  | Invalid_argument _ | Serial.Error _ ->
    tick c "roundtrip";
    add c (Roundtrip_mismatch { stage = "freeze" }));
  close c

let run ?(deep = false) ?base ?samples ?seed tree =
  let structural = check_tree ?samples ?seed ~deep ?base tree in
  (* A broken mutable tree makes freezing meaningless (and potentially
     non-terminating on link cycles): stop at the first layer that fails. *)
  if not (ok structural) then structural
  else begin
    let packed_reports =
      match Packed.of_tree tree with
      | p -> [ check_packed p; check_bytes (Serial.to_packed_string p) ]
      | exception Invalid_argument _ ->
        [ { violations = [ Roundtrip_mismatch { stage = "freeze" } ]; checked = [] } ]
    in
    merge_reports ((structural :: packed_reports) @ [ check_roundtrip tree ])
  end
