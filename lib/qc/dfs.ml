open Qc_cube
module Metrics = Qc_util.Metrics
module Trace = Qc_util.Trace

type visit = {
  id : int;
  lb : Cell.t;
  ub : Cell.t;
  child : int;
  agg : Agg.t;
}

let log = Logs.Src.create "qc.dfs" ~doc:"QC-tree DFS class discovery"

module Log = (val Logs.src_log log)

(* Work counters of Algorithm 1's first phase: how many cells the search
   visits, how many sub-partitions it opens, how many [*] dimensions the
   upper-bound jump fills, and how often the bound-jump prune rule cuts a
   redundant expansion (the knob Figure 12(d) turns on). *)
let m_visits = Metrics.counter "dfs.visits"

let m_partitions = Metrics.counter "dfs.partitions_opened"

let m_jumps = Metrics.counter "dfs.upper_bound_jumps"

let m_prunes = Metrics.counter "dfs.prunes"

let visit table f =
  let n = Table.n_rows table in
  let d = Table.n_dims table in
  Trace.with_span ~cat:"dfs" ~args:[ ("rows", Trace.Int n); ("dims", Trace.Int d) ] "dfs.visit"
  @@ fun () ->
  if n > 0 then begin
    let idx = Table.all_indices table in
    let counter = ref 0 in
    (* [c] is owned by this call; [idx.(lo) .. idx.(hi-1)] is its partition;
       [k] is the dimension expanded to reach [c] (-1 at the root). *)
    let rec dfs c lo hi k chdid =
      Metrics.incr m_visits;
      let agg = Table.agg_of_range table idx ~lo ~hi in
      let ub = Cell.copy c in
      for j = 0 to d - 1 do
        if ub.(j) = Cell.all then begin
          let v0 = (Table.tuple table idx.(lo)).(j) in
          let rec shared i = i >= hi || ((Table.tuple table idx.(i)).(j) = v0 && shared (i + 1)) in
          if shared (lo + 1) then begin
            ub.(j) <- v0;
            Metrics.incr m_jumps
          end
        end
      done;
      let id = !counter in
      incr counter;
      f { id; lb = Cell.copy c; ub = Cell.copy ub; child = chdid; agg };
      (* Prune: if the jump filled a dimension before the expansion
         dimension, this bound was already examined from that dimension. *)
      let rec filled_before j = j < k && ((c.(j) = Cell.all && ub.(j) <> Cell.all) || filled_before (j + 1)) in
      if filled_before 0 then Metrics.incr m_prunes
      else
        for j = k + 1 to d - 1 do
          if ub.(j) = Cell.all then
            let groups = Table.partition_by_dim table idx ~lo ~hi ~dim:j in
            List.iter
              (fun (v, glo, ghi) ->
                Metrics.incr m_partitions;
                let c' = Cell.copy ub in
                c'.(j) <- v;
                dfs c' glo ghi j id)
              groups
        done
    in
    dfs (Cell.make_all d) 0 n (-1) (-1);
    Trace.add_attr "cells" (Trace.Int !counter);
    Log.debug (fun m -> m "dfs over %d rows visited %d cells" n !counter)
  end

let run table =
  let acc = ref [] in
  visit table (fun v ->
      acc := { Temp_class.id = v.id; lb = v.lb; ub = v.ub; child = v.child; agg = v.agg } :: !acc);
  List.rev !acc
