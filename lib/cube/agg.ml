type t = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

type func = Count | Sum | Avg | Min | Max

let empty = { count = 0; sum = 0.0; min = infinity; max = neg_infinity }

let of_measure m = { count = 1; sum = m; min = m; max = m }

let merge a b =
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
  }

let is_empty t = t.count = 0 && t.sum = 0.0 && t.min = infinity && t.max = neg_infinity

let merge_all parts = Array.fold_left merge empty parts

let unmerge a b =
  { count = a.count - b.count; sum = a.sum -. b.sum; min = a.min; max = a.max }

let value func t =
  match func with
  | Count -> float_of_int t.count
  | Sum -> t.sum
  | Avg -> if t.count = 0 then nan else t.sum /. float_of_int t.count
  | Min -> t.min
  | Max -> t.max

let equal a b = a.count = b.count && a.sum = b.sum && a.min = b.min && a.max = b.max

let approx_equal ?(eps = 1e-6) a b =
  let close x y =
    x = y || Float.abs (x -. y) <= eps *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  in
  a.count = b.count && close a.sum b.sum && close a.min b.min && close a.max b.max

let func_of_string = function
  | "count" | "COUNT" -> Count
  | "sum" | "SUM" -> Sum
  | "avg" | "AVG" -> Avg
  | "min" | "MIN" -> Min
  | "max" | "MAX" -> Max
  | s -> invalid_arg (Printf.sprintf "Agg.func_of_string: %S" s)

let func_to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let pp ppf t =
  Format.fprintf ppf "{count=%d; sum=%g; min=%g; max=%g}" t.count t.sum t.min t.max
