type t = int array

let all = 0

let make_all n = Array.make n all

let copy = Array.copy

(* Monomorphic: cells are small int arrays and sit on every hot path, so
   equality and ordering never go through the polymorphic runtime compare
   (tools/lint.sh bans it on cells). *)
let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let is_base c = Array.for_all (fun v -> v <> all) c

let n_stars c = Array.fold_left (fun acc v -> if v = all then acc + 1 else acc) 0 c

let rolls_up_to c d =
  let n = Array.length c in
  let rec go i = i >= n || ((d.(i) = all || d.(i) = c.(i)) && go (i + 1)) in
  go 0

let covers c t =
  let n = Array.length c in
  let rec go i = i >= n || ((c.(i) = all || c.(i) = t.(i)) && go (i + 1)) in
  go 0

let meet a b = Array.init (Array.length a) (fun i -> if a.(i) = b.(i) then a.(i) else all)

let dominates d c =
  let n = Array.length c in
  let rec go i = i >= n || ((c.(i) = all || d.(i) = c.(i)) && go (i + 1)) in
  go 0

let compare_dict (a : t) (b : t) =
  (* Code 0 is [*] and integer comparison already puts it first; value codes
     within a dimension are compared by their dictionary codes, which is the
     "arbitrary but fixed" per-dimension order the paper allows. *)
  let na = Array.length a and nb = Array.length b in
  let rec go i =
    if i >= na || i >= nb then Int.compare na nb
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let compare_rev_dict (a : t) (b : t) =
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else if a.(i) = b.(i) then go (i + 1)
    else if a.(i) = all then 1
    else if b.(i) = all then -1
    else Int.compare a.(i) b.(i)
  in
  go 0

let to_string schema c =
  let render i v = Schema.decode_value schema i v in
  "(" ^ String.concat ", " (Array.to_list (Array.mapi render c)) ^ ")"

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash (c : t) =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length c - 1 do
      h := (!h lxor c.(i)) * 0x01000193 land max_int
    done;
    !h
end)

let parse schema values =
  let n = Schema.n_dims schema in
  if List.length values <> n then invalid_arg "Cell.parse: arity mismatch";
  let cell = Array.make n all in
  List.iteri
    (fun i v ->
      if v <> "*" then
        match Qc_util.Dict.find (Schema.dict schema i) v with
        | Some code -> cell.(i) <- code
        | None ->
          invalid_arg
            (Printf.sprintf "Cell.parse: unknown value %S in dimension %s" v
               (Schema.dim_name schema i)))
    values;
  cell
