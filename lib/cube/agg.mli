(** Aggregate summaries.

    Cover-equivalent cells have the same value for {e any} aggregate of any
    measure (Lemma 1), so a QC-tree class node stores one mergeable summary
    from which COUNT, SUM, AVG, MIN and MAX are all read off.  Summaries form
    a commutative monoid under {!merge}, which is what the construction and
    insertion algorithms need; deletion additionally uses {!unmerge} for the
    COUNT/SUM/AVG part (MIN/MAX are not invertible and are recomputed by the
    maintenance layer). *)

type t = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

type func = Count | Sum | Avg | Min | Max

val empty : t
(** Identity of {!merge}; the summary of zero tuples. *)

val of_measure : float -> t
(** Summary of a single tuple. *)

val merge : t -> t -> t

val is_empty : t -> bool
(** [is_empty t] holds exactly for summaries with no contributing tuples
    (i.e. merge-equivalent to {!empty}); such a summary is the monoid
    identity and its MIN/MAX fields are the +-infinity sentinels. *)

val merge_all : t array -> t
(** Left fold of {!merge} over the array, starting from {!empty} — the
    scatter-gather combine: each shard contributes one summary and the
    result is the summary of the union of their cover sets.  COUNT and
    MIN/MAX are exact under any merge order; SUM (and hence AVG, which is
    read off as sum/count only {e after} the final merge) is exact up to
    float-addition reordering, and bit-exact whenever the partial sums are
    integers. *)

val unmerge : t -> t -> t
(** [unmerge a b] removes [b]'s contribution from [a] for the invertible
    components; the [min]/[max] fields of the result are {b stale} and must
    be recomputed by the caller if needed. *)

val value : func -> t -> float
(** Read one aggregate off the summary.  [Avg] of an empty summary is
    [nan]. *)

val equal : t -> t -> bool
(** Structural equality with exact float comparison — summaries built from
    the same multiset of measures by any merge tree compare equal only if
    float addition orders agree, so tests use {!approx_equal} instead. *)

val approx_equal : ?eps:float -> t -> t -> bool

val func_of_string : string -> func
val func_to_string : func -> string

val pp : Format.formatter -> t -> unit
