type concept = string

type node = {
  parent : concept option;
  mutable sub : concept list;  (** reverse declaration order *)
  mutable values : string list;  (** reverse assignment order *)
}

type t = {
  schema : Schema.t;
  dim : int;
  nodes : (concept, node) Hashtbl.t;
  mutable order : concept list;  (** reverse declaration order *)
  of_value : (string, concept) Hashtbl.t;
}

let create schema ~dim =
  if dim < 0 || dim >= Schema.n_dims schema then
    invalid_arg "Hierarchy.create: dimension out of range";
  {
    schema;
    dim;
    nodes = Hashtbl.create 64;
    order = [];
    of_value = Hashtbl.create 64;
  }

let dim t = t.dim

let find_node t name =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Hierarchy: unknown concept %S" name)

let add_concept t ?parent name =
  if Hashtbl.mem t.nodes name then
    invalid_arg (Printf.sprintf "Hierarchy.add_concept: duplicate concept %S" name);
  (match parent with
  | Some p ->
    let pnode = find_node t p in
    pnode.sub <- name :: pnode.sub
  | None -> ());
  Hashtbl.replace t.nodes name { parent; sub = []; values = [] };
  t.order <- name :: t.order

let assign t ~value name =
  (match Qc_util.Dict.find (Schema.dict t.schema t.dim) value with
  | Some _ -> ()
  | None ->
    invalid_arg
      (Printf.sprintf "Hierarchy.assign: %S is not a value of dimension %s" value
         (Schema.dim_name t.schema t.dim)));
  let node = find_node t name in
  (* drop a previous assignment, if any *)
  (match Hashtbl.find_opt t.of_value value with
  | Some old ->
    let old_node = find_node t old in
    old_node.values <- List.filter (fun v -> v <> value) old_node.values
  | None -> ());
  node.values <- value :: node.values;
  Hashtbl.replace t.of_value value name

let parent t name = (find_node t name).parent

let children t name = List.rev (find_node t name).sub

let values_of t name = List.rev (find_node t name).values

let leaves t name =
  let acc = ref [] in
  let rec go name =
    let node = find_node t name in
    List.iter
      (fun v ->
        match Qc_util.Dict.find (Schema.dict t.schema t.dim) v with
        | Some code -> acc := code :: !acc
        | None -> ())
      node.values;
    List.iter go node.sub
  in
  go name;
  let arr = Array.of_list !acc in
  Array.sort Int.compare arr;
  arr

let concepts t = List.rev t.order

let concept_of_value t value = Hashtbl.find_opt t.of_value value

let level t name =
  let rec up name acc =
    match (find_node t name).parent with None -> acc | Some p -> up p (acc + 1)
  in
  up name 1

let range_for = leaves
