type t = {
  schema : Schema.t;
  mutable tuples : Cell.t array;
  mutable measures : float array;
  mutable len : int;
}

let create schema = { schema; tuples = [||]; measures = [||]; len = 0 }

let schema t = t.schema

let n_rows t = t.len

let n_dims t = Schema.n_dims t.schema

let grow t =
  if t.len >= Array.length t.tuples then begin
    let cap = max 16 (2 * Array.length t.tuples) in
    let tuples = Array.make cap [||] in
    let measures = Array.make cap 0.0 in
    Array.blit t.tuples 0 tuples 0 t.len;
    Array.blit t.measures 0 measures 0 t.len;
    t.tuples <- tuples;
    t.measures <- measures
  end

let add_encoded t cell m =
  if Array.length cell <> n_dims t then invalid_arg "Table.add_encoded: arity mismatch";
  if not (Cell.is_base cell) then
    invalid_arg "Table.add_encoded: base tuples may not contain *";
  grow t;
  t.tuples.(t.len) <- Cell.copy cell;
  t.measures.(t.len) <- m;
  t.len <- t.len + 1

let add_row t values m =
  let n = n_dims t in
  if List.length values <> n then invalid_arg "Table.add_row: arity mismatch";
  let cell = Array.make n 0 in
  List.iteri (fun i v -> cell.(i) <- Schema.encode_value t.schema i v) values;
  grow t;
  t.tuples.(t.len) <- cell;
  t.measures.(t.len) <- m;
  t.len <- t.len + 1

let tuple t i = t.tuples.(i)

let measure t i = t.measures.(i)

let append t delta =
  if delta.schema != t.schema then invalid_arg "Table.append: schemas differ";
  for i = 0 to delta.len - 1 do
    add_encoded t delta.tuples.(i) delta.measures.(i)
  done

let remove_rows t keep_out =
  let out = create t.schema in
  for i = 0 to t.len - 1 do
    if not (keep_out i) then add_encoded out t.tuples.(i) t.measures.(i)
  done;
  out

let sub t rows =
  let out = create t.schema in
  List.iter (fun i -> add_encoded out t.tuples.(i) t.measures.(i)) rows;
  out

let copy t = remove_rows t (fun _ -> false)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.tuples.(i) t.measures.(i)
  done

let find_row t cell =
  let rec go i =
    if i >= t.len then None
    else if Cell.equal t.tuples.(i) cell then Some i
    else go (i + 1)
  in
  go 0

let cover_agg t c =
  let acc = ref Agg.empty in
  for i = 0 to t.len - 1 do
    if Cell.covers c t.tuples.(i) then acc := Agg.merge !acc (Agg.of_measure t.measures.(i))
  done;
  !acc

let all_indices t = Array.init t.len (fun i -> i)

let partition_by_dim t idx ~lo ~hi ~dim =
  let m = hi - lo in
  if m <= 0 then []
  else begin
    let slice = Array.sub idx lo m in
    let key i = t.tuples.(i).(dim) in
    Array.sort (fun a b -> Int.compare (key a) (key b)) slice;
    Array.blit slice 0 idx lo m;
    (* Scan for group boundaries. *)
    let groups = ref [] in
    let start = ref lo in
    for i = lo + 1 to hi - 1 do
      if key idx.(i) <> key idx.(!start) then begin
        groups := (key idx.(!start), !start, i) :: !groups;
        start := i
      end
    done;
    groups := (key idx.(!start), !start, hi) :: !groups;
    List.rev !groups
  end

let agg_of_range t idx ~lo ~hi =
  let acc = ref Agg.empty in
  for i = lo to hi - 1 do
    acc := Agg.merge !acc (Agg.of_measure t.measures.(idx.(i)))
  done;
  !acc
