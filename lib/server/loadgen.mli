(** The load-test client behind [qct loadgen] and [bench --serve].

    Drives [clients] concurrent connections against a {!Server} from a
    single thread: every connection runs a closed loop (send one request
    line, wait for its response line, send the next), multiplexed with
    [select] — no domain per connection, so 64 simulated clients cost one
    core, which is also what keeps single-machine benchmarks honest.

    Requests are drawn from [lines] (raw wire lines — text grammar or
    JSON, the server takes both).  With [~zipf_s] the draw is
    Zipf-skewed over the array (rank 1 = [lines.(0)]), the workload shape
    the result cache is measured under; otherwise the draw is
    round-robin.  Per-request latency is measured with
    {!Qc_util.Clock} and reported as exact percentiles. *)

type result = {
  lg_sent : int;
  lg_ok : int;  (** responses with ["status":"ok"] *)
  lg_errors : int;  (** typed error responses (still protocol-clean) *)
  lg_overloaded : int;  (** typed admission refusals *)
  lg_protocol_errors : int;  (** unparseable response lines — server bugs *)
  lg_closed_early : int;  (** connections the server closed mid-run *)
  lg_elapsed_s : float;
  lg_rps : float;  (** completed responses per second *)
  lg_p50_ms : float;
  lg_p90_ms : float;
  lg_p99_ms : float;
  lg_max_ms : float;
}

val run :
  host:string ->
  port:int ->
  clients:int ->
  ?duration_s:float ->
  ?total_requests:int ->
  ?zipf_s:float ->
  ?seed:int ->
  lines:string array ->
  unit ->
  (result, string) Stdlib.result
(** Run until [duration_s] elapses or exactly [total_requests] requests
    have been sent and their responses drained (whichever first; at
    least one bound must be given).  [Error] only
    for setup failures (connect refused, empty [lines]) — server
    misbehaviour during the run is {e data}, reported in the counters. *)
