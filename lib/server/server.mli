(** The [qct serve] daemon: a concurrent, generation-aware query server.

    Accepts many clients over TCP and speaks the newline-delimited
    protocol of {!Qc_core.Request}: one request per line (JSON or the
    text query grammar — {!Qc_core.Request.of_wire}), one JSON response
    per line.  Every request is answered from the frozen {!Qc_core.Packed}
    image of the current warehouse generation, held in an
    {!Qc_warehouse.Ingest.Snapshot} server: a watcher domain polls the
    warehouse directory's committed generation and republishes on
    advance, so a concurrent [qct ingest] refreeze swaps generations
    under the server with zero downtime — in-flight queries keep the
    packed value they already read (MVCC), new requests see the new
    generation.

    {2 Concurrency}

    One accept/admission domain, [workers] event-loop domains (each
    multiplexing its share of the clients with [select]), and one
    generation-watcher domain.  No locks on the query path beyond the
    result cache's.

    {2 Admission control}

    At most [max_clients] connections are served at once; beyond that,
    accepted connections wait in a bounded {!Qc_warehouse.Ingest.Bq}
    queue of capacity [max_pending] (the ingest backpressure discipline).
    When that queue is full too, the connection is answered with one
    typed [Overloaded] response line and closed — clients always learn
    {e why} they were dropped.

    {2 Result cache}

    An LRU keyed by [(generation, canonical request)] caches serialized
    responses for single-query requests.  Invalidation on refreeze is
    implicit: the key embeds the generation stamp, so entries for a
    superseded generation simply stop being looked up and age out.
    Hit/miss/eviction counts are exposed in {!Qc_util.Metrics}
    ([serve.cache.*]) and in the [stats] response.

    {2 Crash discipline}

    The ["serve.respond"] failpoint fires before each response write, and
    a response is written with a single buffered-channel flush — so a
    server killed mid-response (crash test) leaves clients a clean close
    after a whole number of lines, never a torn half-JSON line. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port (see {!port}) *)
  workers : int;  (** event-loop domains *)
  max_clients : int;  (** connections served concurrently *)
  max_pending : int;  (** bounded accept queue beyond that *)
  cache_capacity : int;  (** LRU entries; [0] disables the cache *)
  poll_interval_s : float;  (** generation watcher poll period *)
}

val default_config : config

type t

val start : ?config:config -> string -> t
(** [start dir] opens the warehouse at [dir], binds the listen socket and
    spawns the serving domains.  Returns once the server is accepting.
    @raise Qc_warehouse.Warehouse.Error when the directory does not hold
    a valid warehouse.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound TCP port (useful with [config.port = 0]). *)

val generation : t -> int
(** The warehouse generation currently being served. *)

val stats : t -> Qc_core.Request.stats
(** Live counters — the same record a [stats] request is answered with. *)

val request_stop : t -> unit
(** Ask the serving domains to wind down (async-signal-safe: one atomic
    store).  Use {!stop} to wait for them. *)

val stopped : t -> bool

val stop : t -> Qc_core.Request.stats
(** {!request_stop}, join every domain, close every socket, absorb the
    workers' metric deltas (in worker order, deterministically) and
    return the final counters.  Idempotent. *)
