module Jx = Qc_util.Jsonx
module Clock = Qc_util.Clock

type result = {
  lg_sent : int;
  lg_ok : int;
  lg_errors : int;
  lg_overloaded : int;
  lg_protocol_errors : int;
  lg_closed_early : int;
  lg_elapsed_s : float;
  lg_rps : float;
  lg_p50_ms : float;
  lg_p90_ms : float;
  lg_p99_ms : float;
  lg_max_ms : float;
}

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  oc : out_channel;
  mutable inflight_since_ns : int;  (* send time of the awaited request; -1 = idle *)
  mutable closed : bool;
}

(* Growable latency store; exact percentiles need every sample. *)
type samples = { mutable arr : float array; mutable len : int }

let add_sample s v =
  if s.len = Array.length s.arr then begin
    let bigger = Array.make (2 * Array.length s.arr) 0.0 in
    Array.blit s.arr 0 bigger 0 s.len;
    s.arr <- bigger
  end;
  s.arr.(s.len) <- v;
  s.len <- s.len + 1

let percentile sorted n p =
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))

let classify line =
  match Jx.parse line with
  | Error _ -> `Protocol
  | Ok j -> (
    match Jx.member "status" j with
    | Some (Jx.String "ok") -> `Ok
    | Some (Jx.String "error") -> `Error
    | Some (Jx.String "overloaded") -> `Overloaded
    | Some _ | None -> `Protocol)

let run ~host ~port ~clients ?duration_s ?total_requests ?zipf_s ?(seed = 42) ~lines () =
  if Array.length lines = 0 then Stdlib.Error "no request lines"
  else if clients < 1 then Stdlib.Error "clients must be positive"
  else if Option.is_none duration_s && Option.is_none total_requests then
    Stdlib.Error "need a duration or a request budget"
  else begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let rng = Qc_util.Rng.create seed in
    let zipf = Option.map (fun s -> Qc_data.Zipf.create ~s (Array.length lines)) zipf_s in
    let rr = ref 0 in
    let next_line () =
      match zipf with
      | Some z -> lines.(Qc_data.Zipf.sample z rng - 1)
      | None ->
        let i = !rr in
        incr rr;
        lines.(i mod Array.length lines)
    in
    let addr =
      match Unix.inet_addr_of_string host with
      | a -> Ok (Unix.ADDR_INET (a, port))
      | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> Stdlib.Error ("unknown host " ^ host)
        | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))
        | exception Not_found -> Stdlib.Error ("unknown host " ^ host))
    in
    match addr with
    | Stdlib.Error _ as e -> e
    | Ok addr -> (
      let connect () =
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        match Unix.connect fd addr with
        | () ->
          Ok
            {
              fd;
              inbuf = Buffer.create 512;
              oc = Unix.out_channel_of_descr fd;
              inflight_since_ns = -1;
              closed = false;
            }
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Stdlib.Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))
      in
      let rec connect_all n acc =
        if n = 0 then Ok (List.rev acc)
        else
          match connect () with
          | Ok c -> connect_all (n - 1) (c :: acc)
          | Stdlib.Error _ as e ->
            List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()) acc;
            e
      in
      match connect_all clients [] with
      | Stdlib.Error _ as e -> e
      | Ok conns ->
        let sent = ref 0 in
        let ok = ref 0 in
        let errors = ref 0 in
        let overloaded = ref 0 in
        let protocol_errors = ref 0 in
        let closed_early = ref 0 in
        let lat = { arr = Array.make 4096 0.0; len = 0 } in
        (* gate on [sent], not on completed responses: with several
           connections in flight the latter overshoots the budget by up
           to [clients - 1] requests *)
        let budget_left () =
          match total_requests with None -> true | Some n -> !sent < n
        in
        let t0 = Clock.now_s () in
        let deadline = Option.map (fun d -> t0 +. d) duration_s in
        let time_left () =
          match deadline with None -> true | Some d -> Clock.now_s () < d
        in
        let close_conn c =
          if not c.closed then begin
            c.closed <- true;
            try close_out c.oc with Sys_error _ -> ()
          end
        in
        let send c =
          if budget_left () then (
            let line = next_line () in
            match
              (output_string c.oc line;
               output_char c.oc '\n';
               flush c.oc)
            with
            | () ->
              c.inflight_since_ns <- Clock.now_ns ();
              incr sent
            | exception Sys_error _ ->
              incr closed_early;
              close_conn c
            | exception Unix.Unix_error (_, _, _) ->
              incr closed_early;
              close_conn c)
        in
        let finish_response c line =
          (match classify line with
          | `Ok -> incr ok
          | `Error -> incr errors
          | `Overloaded -> incr overloaded
          | `Protocol -> incr protocol_errors);
          if c.inflight_since_ns >= 0 then
            add_sample lat (Clock.ns_to_s (Clock.now_ns () - c.inflight_since_ns) *. 1e3);
          c.inflight_since_ns <- -1
        in
        let buf = Bytes.create 65536 in
        let handle_readable c =
          match Unix.read c.fd buf 0 (Bytes.length buf) with
          | 0 ->
            (* EOF: a clean close ends exactly at a line boundary; leftover
               bytes are a torn line — a protocol error by definition. *)
            if Buffer.length c.inbuf > 0 then incr protocol_errors
            else if c.inflight_since_ns >= 0 then incr closed_early;
            close_conn c
          | n ->
            Buffer.add_subbytes c.inbuf buf 0 n;
            let rec lines_loop () =
              let s = Buffer.contents c.inbuf in
              match String.index_opt s '\n' with
              | None -> ()
              | Some i ->
                let line = String.sub s 0 i in
                Buffer.clear c.inbuf;
                Buffer.add_substring c.inbuf s (i + 1) (String.length s - i - 1);
                finish_response c line;
                if (not c.closed) && budget_left () && time_left () then send c;
                lines_loop ()
            in
            lines_loop ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            if c.inflight_since_ns >= 0 then incr closed_early;
            close_conn c
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        in
        (* prime every connection *)
        List.iter send conns;
        let live () = List.filter (fun c -> not c.closed) conns in
        let rec loop () =
          match live () with
          | [] -> ()
          | alive ->
            if (not (budget_left ())) || not (time_left ()) then
              (* finished: wait out in-flight responses only *)
              if List.for_all (fun c -> c.inflight_since_ns < 0) alive then
                List.iter close_conn alive
              else
                select_step (List.filter (fun c -> c.inflight_since_ns >= 0) alive)
            else select_step alive
        and select_step watch =
          (match Unix.select (List.map (fun c -> c.fd) watch) [] [] 0.2 with
          | readable, _, _ ->
            List.iter
              (fun c -> if List.memq c.fd readable then handle_readable c)
              watch
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> ());
          loop ()
        in
        loop ();
        let elapsed = Clock.now_s () -. t0 in
        let sorted = Array.sub lat.arr 0 lat.len in
        Array.sort Float.compare sorted;
        let n = lat.len in
        Ok
          {
            lg_sent = !sent;
            lg_ok = !ok;
            lg_errors = !errors;
            lg_overloaded = !overloaded;
            lg_protocol_errors = !protocol_errors;
            lg_closed_early = !closed_early;
            lg_elapsed_s = elapsed;
            lg_rps =
              (let completed = !ok + !errors + !overloaded + !protocol_errors in
               if elapsed > 0.0 then float_of_int completed /. elapsed else 0.0);
            lg_p50_ms = percentile sorted n 0.50;
            lg_p90_ms = percentile sorted n 0.90;
            lg_p99_ms = percentile sorted n 0.99;
            lg_max_ms = (if n = 0 then 0.0 else sorted.(n - 1));
          })
  end
