(* The qct serve daemon.  See server.mli for the architecture overview.

   Domain discipline (this file is on qclint's domain allowlist): one
   accept/admission domain, [workers] select-loop domains, one generation
   watcher.  All are joined by [stop]; workers return their drained
   Qc_util.Metrics deltas, absorbed in worker order so metric totals are
   deterministic.  Cross-domain state is limited to Atomics, the
   Snapshot server, the pending-connection Bq and the Mutex-protected
   result cache. *)

module E = Qc_core.Engine
module R = Qc_core.Request
module Packed = Qc_core.Packed
module W = Qc_warehouse.Warehouse
module I = Qc_warehouse.Ingest
module Metrics = Qc_util.Metrics
module Jx = Qc_util.Jsonx
module Failpoint = Qc_util.Failpoint

let src = Logs.Src.create "qc.serve" ~doc:"The qct serve daemon"

module Log = (val Logs.src_log src)

(* Registered up front so `qct stats --prom` exposes every serving
   instrument (at zero) even in processes that never served. *)
let m_requests = Metrics.counter "serve.requests"

let m_hits = Metrics.counter "serve.cache.hits"

let m_misses = Metrics.counter "serve.cache.misses"

let m_evictions = Metrics.counter "serve.cache.evictions"

let m_overloaded = Metrics.counter "serve.overloaded"

let g_clients = Metrics.gauge "serve.clients"

let fp_respond = "serve.respond"

let () = Failpoint.register fp_respond

type config = {
  host : string;
  port : int;
  workers : int;
  max_clients : int;
  max_pending : int;
  cache_capacity : int;
  poll_interval_s : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 1;
    max_clients = 256;
    max_pending = 64;
    cache_capacity = 1024;
    poll_interval_s = 0.25;
  }

(* ---------- the generation-keyed LRU result cache ----------

   Maps (generation, canonical request) to the serialized response line.
   Classic intrusive doubly-linked LRU behind one mutex; the protected
   section is a hash probe and four pointer swaps, far cheaper than the
   query it saves. *)
module Lru = struct
  type entry = {
    e_key : string;
    mutable e_val : string;
    mutable e_prev : entry;
    mutable e_next : entry;
  }

  type t = {
    cap : int;
    tbl : (string, entry) Hashtbl.t;
    sentinel : entry;  (* circular: sentinel.e_next is most recent *)
    lock : Mutex.t;
  }

  let create cap =
    let rec s = { e_key = ""; e_val = ""; e_prev = s; e_next = s } in
    { cap; tbl = Hashtbl.create (2 * cap); sentinel = s; lock = Mutex.create () }

  let unlink e =
    e.e_prev.e_next <- e.e_next;
    e.e_next.e_prev <- e.e_prev

  let push_front t e =
    e.e_next <- t.sentinel.e_next;
    e.e_prev <- t.sentinel;
    t.sentinel.e_next.e_prev <- e;
    t.sentinel.e_next <- e

  let find t key =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> None
        | Some e ->
          unlink e;
          push_front t e;
          Some e.e_val)

  (* [true] when an old entry was evicted to make room. *)
  let put t key value =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          e.e_val <- value;
          unlink e;
          push_front t e;
          false
        | None ->
          let rec e = { e_key = key; e_val = value; e_prev = e; e_next = e } in
          Hashtbl.replace t.tbl key e;
          push_front t e;
          if Hashtbl.length t.tbl > t.cap then begin
            let victim = t.sentinel.e_prev in
            unlink victim;
            Hashtbl.remove t.tbl victim.e_key;
            true
          end
          else false)
end

(* ---------- server state ---------- *)

type worker = {
  w_inbox : Unix.file_descr list ref;
  w_lock : Mutex.t;
  mutable w_domain : Metrics.delta Domain.t option;
}

type t = {
  cfg : config;
  dir : string;
  listen_fd : Unix.file_descr;
  t_port : int;
  snap : I.Snapshot.server;
  cache : Lru.t option;
  pending : Unix.file_descr I.Bq.t;
  stop_flag : bool Atomic.t;
  finished : bool Atomic.t;
  active : int Atomic.t;
  served : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  workers : worker array;
  mutable accept_domain : unit Domain.t option;
  mutable watcher_domain : unit Domain.t option;
}

let port t = t.t_port

let generation t = (I.Snapshot.current t.snap).I.Snapshot.generation

let stopped t = Atomic.get t.stop_flag

let stats t =
  let snap = I.Snapshot.current t.snap in
  {
    R.sv_generation = snap.I.Snapshot.generation;
    sv_classes = Packed.n_classes snap.I.Snapshot.packed;
    sv_nodes = Packed.n_nodes snap.I.Snapshot.packed;
    sv_clients = Atomic.get t.active;
    sv_served = Atomic.get t.served;
    sv_cache_hits = Atomic.get t.hits;
    sv_cache_misses = Atomic.get t.misses;
    sv_cache_evictions = Atomic.get t.evictions;
  }

(* ---------- request handling ---------- *)

let run_query packed q = E.run_one (module E.Packed_backend) packed q

let describe_line snap =
  Printf.sprintf "generation %d | %s" snap.I.Snapshot.generation
    (E.Packed_backend.describe snap.I.Snapshot.packed)

let answer_request t snap req =
  let packed = snap.I.Snapshot.packed in
  match req with
  | R.Query q -> R.Answer (run_query packed q)
  | R.Batch qs -> R.Answers (Array.map (run_query packed) qs)
  | R.Stats -> R.Stats_reply (stats t)
  | R.Describe -> R.Describe_reply (describe_line snap)

(* One request line to one response line.  Single-query requests go
   through the LRU: the key embeds the generation stamp, so a refreeze
   invalidates the whole cached generation implicitly. *)
let serve_line t line =
  let snap = I.Snapshot.current t.snap in
  let schema = Packed.schema snap.I.Snapshot.packed in
  Metrics.incr m_requests;
  Atomic.incr t.served;
  match R.of_wire schema line with
  | Error e -> Jx.to_string (R.response_to_json schema (R.Answer (Error e)))
  | Ok (R.Query _ as req) when Option.is_some t.cache ->
    let cache = Option.get t.cache in
    let key =
      Printf.sprintf "%d\x00%s" snap.I.Snapshot.generation
        (Jx.to_string (R.request_to_json schema req))
    in
    (match Lru.find cache key with
    | Some cached ->
      Metrics.incr m_hits;
      Atomic.incr t.hits;
      cached
    | None ->
      Metrics.incr m_misses;
      Atomic.incr t.misses;
      let resp = Jx.to_string (R.response_to_json schema (answer_request t snap req)) in
      if Lru.put cache key resp then begin
        Metrics.incr m_evictions;
        Atomic.incr t.evictions
      end;
      resp)
  | Ok req -> Jx.to_string (R.response_to_json schema (answer_request t snap req))

(* ---------- worker event loop ---------- *)

type client = { c_fd : Unix.file_descr; c_inbuf : Buffer.t; c_oc : out_channel }

let close_client t c =
  (* close_out flushes, which can fail on a dead peer — the connection is
     going away either way. *)
  (try close_out c.c_oc with Sys_error _ -> ());
  Atomic.decr t.active;
  Metrics.set_gauge g_clients (Atomic.get t.active)

(* Write one whole response line with a single flush; the failpoint
   before it is what the crash test arms — a kill here loses the entire
   line, never a prefix of it. *)
let write_response c resp =
  Failpoint.hit fp_respond;
  output_string c.c_oc resp;
  output_char c.c_oc '\n';
  flush c.c_oc

(* Consume every complete line in the client's buffer; returns [false]
   when the client must be closed (write failure). *)
let drain_lines t c =
  let rec go () =
    let s = Buffer.contents c.c_inbuf in
    match String.index_opt s '\n' with
    | None -> true
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear c.c_inbuf;
      Buffer.add_substring c.c_inbuf s (i + 1) (String.length s - i - 1);
      let line = String.trim line in
      if String.length line = 0 || line.[0] = '#' then go ()
      else (
        match write_response c (serve_line t line) with
        | () -> go ()
        | exception Sys_error _ -> false
        | exception Unix.Unix_error (_, _, _) -> false)
  in
  go ()

let worker_loop t w =
  let read_buf = Bytes.create 65536 in
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 64 in
  let adopt fd =
    Hashtbl.replace clients fd
      { c_fd = fd; c_inbuf = Buffer.create 256; c_oc = Unix.out_channel_of_descr fd }
  in
  let close_one c =
    Hashtbl.remove clients c.c_fd;
    close_client t c
  in
  while not (Atomic.get t.stop_flag) do
    Mutex.protect w.w_lock (fun () ->
        let incoming = !(w.w_inbox) in
        w.w_inbox := [];
        incoming)
    |> List.iter adopt;
    let readable =
      match Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] with
      | [] ->
        (* nothing to watch yet; nap until the accept loop hands us work *)
        Unix.sleepf 0.02;
        []
      | fds -> (
        match Unix.select fds [] [] 0.1 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> [])
    in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt clients fd with
        | None -> ()
        | Some c -> (
          match Unix.read fd read_buf 0 (Bytes.length read_buf) with
          | 0 -> close_one c
          | n ->
            Buffer.add_subbytes c.c_inbuf read_buf 0 n;
            if not (drain_lines t c) then close_one c
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
            close_one c
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
      readable
  done;
  Hashtbl.iter (fun _ c -> close_client t c) clients;
  Metrics.drain ()

(* ---------- accept / admission loop ---------- *)

let reject_overloaded t fd =
  let snap = I.Snapshot.current t.snap in
  let schema = Packed.schema snap.I.Snapshot.packed in
  let resp =
    Jx.to_string
      (R.response_to_json schema
         (R.Overloaded { pending = I.Bq.depth t.pending; max_pending = t.cfg.max_pending }))
  in
  Metrics.incr m_overloaded;
  let oc = Unix.out_channel_of_descr fd in
  (try
     output_string oc resp;
     output_char oc '\n';
     flush oc
   with
  | Sys_error _ -> ()
  | Unix.Unix_error (_, _, _) -> ());
  try close_out oc with Sys_error _ -> ()

let accept_loop t =
  let next = ref 0 in
  let assign fd =
    let w = t.workers.(!next mod Array.length t.workers) in
    incr next;
    Mutex.protect w.w_lock (fun () -> w.w_inbox := fd :: !(w.w_inbox));
    Atomic.incr t.active;
    Metrics.set_gauge g_clients (Atomic.get t.active)
  in
  while not (Atomic.get t.stop_flag) do
    (* admit queued connections first (FIFO), then poll for new ones *)
    while
      Atomic.get t.active < t.cfg.max_clients
      && I.Bq.depth t.pending > 0
      &&
      (match I.Bq.pop_many t.pending ~max:1 ~timeout_s:0.0 with
      | [ fd ] ->
        assign fd;
        true
      | _ -> false)
    do
      ()
    done;
    match Unix.select [ t.listen_fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ ->
        if Atomic.get t.active < t.cfg.max_clients && I.Bq.depth t.pending = 0 then assign fd
        else if not (I.Bq.push t.pending fd) then reject_overloaded t fd
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED | Unix.EBADF), _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  done;
  (* drain the pending queue with honest refusals *)
  I.Bq.close t.pending;
  List.iter (reject_overloaded t) (I.Bq.pop_many t.pending ~max:max_int ~timeout_s:0.0)

(* ---------- generation watcher ---------- *)

(* Polls the committed generation mark (one small file read) and reopens
   the warehouse only on advance.  A reopen racing a writer's commit can
   fail transiently — that is the retry-next-tick branch, not an error. *)
let watcher_loop t =
  while not (Atomic.get t.stop_flag) do
    Unix.sleepf t.cfg.poll_interval_s;
    if not (Atomic.get t.stop_flag) then begin
      let committed =
        match W.committed_generation t.dir with
        | g -> g
        | exception W.Error _ -> -1
        | exception Sys_error _ -> -1
      in
      if committed > generation t then begin
        match W.open_dir t.dir with
        | w ->
          let g = W.checkpoint_generation w in
          if I.Snapshot.publish t.snap { I.Snapshot.generation = g; packed = W.packed w }
          then Log.info (fun m -> m "now serving generation %d" g)
        | exception W.Error e ->
          Log.debug (fun m -> m "reopen racing a commit (%s); retrying" (W.error_to_string e))
        | exception Sys_error reason ->
          Log.debug (fun m -> m "reopen racing a commit (%s); retrying" reason)
      end
    end
  done

(* ---------- lifecycle ---------- *)

let start ?(config = default_config) dir =
  if config.workers < 1 then invalid_arg "Server.start: workers must be positive";
  if config.max_clients < 1 then invalid_arg "Server.start: max_clients must be positive";
  if config.max_pending < 1 then invalid_arg "Server.start: max_pending must be positive";
  (* a client closing mid-write must surface as EPIPE, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let w = W.open_dir dir in
  let snap =
    I.Snapshot.make ~generation:(W.checkpoint_generation w) (W.packed w)
  in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen listen_fd 128;
      let t_port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> config.port
      in
      {
        cfg = config;
        dir;
        listen_fd;
        t_port;
        snap;
        cache = (if config.cache_capacity > 0 then Some (Lru.create config.cache_capacity) else None);
        pending = I.Bq.create config.max_pending;
        stop_flag = Atomic.make false;
        finished = Atomic.make false;
        active = Atomic.make 0;
        served = Atomic.make 0;
        hits = Atomic.make 0;
        misses = Atomic.make 0;
        evictions = Atomic.make 0;
        workers =
          Array.init config.workers (fun _ ->
              { w_inbox = ref []; w_lock = Mutex.create (); w_domain = None });
        accept_domain = None;
        watcher_domain = None;
      }
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
      raise e
  in
  Array.iter (fun w -> w.w_domain <- Some (Domain.spawn (fun () -> worker_loop t w))) t.workers;
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t.watcher_domain <- Some (Domain.spawn (fun () -> watcher_loop t));
  Log.info (fun m ->
      m "serving %s on %s:%d (generation %d, %d worker%s)" dir config.host t.t_port
        (generation t) config.workers
        (if config.workers = 1 then "" else "s"));
  t

let request_stop t = Atomic.set t.stop_flag true

let stop t =
  request_stop t;
  if not (Atomic.exchange t.finished true) then begin
    Option.iter Domain.join t.accept_domain;
    Option.iter Domain.join t.watcher_domain;
    (* absorb worker metric deltas in worker order: deterministic totals *)
    Array.iter (fun w -> Option.iter (fun d -> Metrics.absorb (Domain.join d)) w.w_domain) t.workers;
    try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ()
  end;
  stats t
