(* Benchmark harness reproducing every table and figure of the paper's
   Section 5 (see DESIGN.md for the per-experiment index and EXPERIMENTS.md
   for paper-vs-measured results).

   Usage:
     dune exec bench/main.exe                    all experiments, quick scale
     dune exec bench/main.exe -- --scale full    paper-scale parameters
     dune exec bench/main.exe -- fig12a fig14a   a subset

   Quick scale shrinks tuple counts so the whole suite finishes in a few
   minutes; the qualitative shape (who wins, by what factor) is what the
   reproduction validates — absolute times are hardware-bound. *)

open Qc_cube
module Tf = Qc_util.Tablefmt
module Jx = Qc_util.Jsonx
module Metrics = Qc_util.Metrics

(* Typed-API range accessors: the benchmarks only build well-formed
   ranges, so an arity error here is a harness bug and surfaces loudly. *)
let range_cells tree r =
  match Qc_core.Query.range_result tree r with
  | Ok cells -> cells
  | Error e -> invalid_arg (Qc_core.Query.error_to_string e)

let range_cells_packed packed r =
  match Qc_core.Query.range_result_packed packed r with
  | Ok cells -> cells
  | Error e -> invalid_arg (Qc_core.Query.error_to_string e)

let range_length tree r = List.length (range_cells tree r)

type scale = Quick | Full

let scale = ref Quick

let csv_out_dir : string option ref = ref None

let json_out : string ref = ref "BENCH_PR1.json"

(* Structured results accumulated across experiments and written to
   [!json_out] when the run finishes: every console table verbatim, plus
   typed per-experiment records (timing statistics and work counters). *)
let json_tables : Jx.t list ref = ref []

let json_records : (string * Jx.t) list ref = ref []

let record name json = json_records := (name, json) :: !json_records

(* Print the table; additionally write it as CSV when --out was given, and
   stash it for the JSON report. *)
let emit table =
  print_string (Tf.to_string table);
  json_tables := Tf.to_json table :: !json_tables;
  match !csv_out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let slug =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
          | _ -> '_')
        (String.lowercase_ascii (Tf.title table))
    in
    let slug = if String.length slug > 60 then String.sub slug 0 60 else slug in
    let path = Filename.concat dir (slug ^ ".csv") in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc (Tf.to_csv table))

(* Run [f] once with the work counters on and return what they recorded.
   Timings are always taken with metrics off (the default), so counters are
   collected in a separate pass and never taint a measurement. *)
let with_counters f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f;
  let json = Metrics.to_json () in
  Metrics.reset ();
  json

let pct part whole = Tf.cell_ratio (float_of_int part /. float_of_int whole)

let mb bytes = Printf.sprintf "%.2f" (Qc_util.Size.mb bytes)

(* ------------------------------------------------------------------ *)
(* Shared builders                                                     *)
(* ------------------------------------------------------------------ *)

type sizes = {
  cube_cells : int;
  cube_bytes : int;
  qtab_bytes : int;
  tree_bytes : int;
  dwarf_bytes : int;
}

let measure_sizes table =
  let cube_cells = Buc.count_cells table in
  let cube_bytes = Qc_util.Size.bytes_of_cells ~dims:(Table.n_dims table) ~cells:cube_cells in
  let qtab = Qc_core.Qc_table.of_table table in
  let tree = Qc_core.Qc_tree.of_table table in
  let dwarf = Qc_dwarf.Dwarf.build table in
  {
    cube_cells;
    cube_bytes;
    qtab_bytes = Qc_core.Qc_table.bytes qtab;
    tree_bytes = Qc_core.Qc_tree.bytes tree;
    dwarf_bytes = Qc_dwarf.Dwarf.bytes dwarf;
  }

let size_row label s =
  [
    label;
    Tf.cell_i s.cube_cells;
    mb s.cube_bytes;
    pct s.qtab_bytes s.cube_bytes;
    pct s.tree_bytes s.cube_bytes;
    pct s.dwarf_bytes s.cube_bytes;
  ]

let size_columns first =
  [ first; "cube cells"; "cube MB"; "QC-table"; "QC-tree"; "Dwarf" ]

(* ------------------------------------------------------------------ *)
(* Figure 12(a): compression ratio vs number of tuples                 *)
(* ------------------------------------------------------------------ *)

let fig12a () =
  let tuples =
    match !scale with
    | Quick -> [ 10_000; 20_000; 40_000 ]
    | Full -> [ 20_000; 40_000; 60_000; 80_000; 100_000 ]
  in
  let t =
    Tf.create
      ~title:"Figure 12(a) - compression ratio vs #tuples (d=6, card=100, Zipf 2)"
      ~columns:(size_columns "#tuples")
  in
  List.iter
    (fun rows ->
      let table =
        Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; seed = 42 }
      in
      Tf.add_row t (size_row (Tf.cell_i rows) (measure_sizes table)))
    tuples;
  Tf.note t "ratios are size/size(full cube by BUC); smaller is better";
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 12(b): compression ratio vs cardinality                      *)
(* ------------------------------------------------------------------ *)

let fig12b () =
  let cards =
    match !scale with
    | Quick -> [ 10; 100; 1000 ]
    | Full -> [ 10; 50; 100; 500; 1000; 5000 ]
  in
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "Figure 12(b) - compression ratio vs cardinality (d=6, n=%d, Zipf 2)" rows)
      ~columns:(size_columns "cardinality")
  in
  List.iter
    (fun cardinality ->
      let table =
        Qc_data.Synthetic.generate
          { Qc_data.Synthetic.default with rows; cardinality; seed = 43 }
      in
      Tf.add_row t (size_row (Tf.cell_i cardinality) (measure_sizes table)))
    cards;
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 12(c): compression ratio vs dimensionality                   *)
(* ------------------------------------------------------------------ *)

let fig12c () =
  let dims =
    match !scale with Quick -> [ 3; 4; 5; 6; 7 ] | Full -> [ 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "Figure 12(c) - compression ratio vs #dimensions (n=%d, card=100, Zipf 2)" rows)
      ~columns:(size_columns "#dims")
  in
  List.iter
    (fun d ->
      let table =
        Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; dims = d; seed = 44 }
      in
      Tf.add_row t (size_row (Tf.cell_i d) (measure_sizes table)))
    dims;
  Tf.note t "higher dimensionality -> sparser cube -> better compression (paper Sec 5.2)";
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 12(d): construction time vs number of tuples                 *)
(* ------------------------------------------------------------------ *)

let fig12d () =
  let tuples =
    match !scale with
    | Quick -> [ 10_000; 20_000; 40_000 ]
    | Full -> [ 20_000; 40_000; 60_000; 80_000; 100_000 ]
  in
  let t =
    Tf.create
      ~title:"Figure 12(d) - construction time (s) vs #tuples (d=6, card=100, Zipf 2)"
      ~columns:[ "#tuples"; "BUC (full cube)"; "QC-table"; "QC-tree"; "Dwarf" ]
  in
  List.iter
    (fun rows ->
      let table =
        Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; seed = 42 }
      in
      let t_buc = Qc_util.Timer.time_s (fun () -> ignore (Buc.count_cells table)) in
      let t_qtab = Qc_util.Timer.time_s (fun () -> ignore (Qc_core.Qc_table.of_table table)) in
      let t_tree = Qc_util.Timer.time_s (fun () -> ignore (Qc_core.Qc_tree.of_table table)) in
      let t_dwarf = Qc_util.Timer.time_s (fun () -> ignore (Qc_dwarf.Dwarf.build table)) in
      Tf.add_row t
        [ Tf.cell_i rows; Tf.cell_f t_buc; Tf.cell_f t_qtab; Tf.cell_f t_tree; Tf.cell_f t_dwarf ])
    tuples;
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 13: query answering, QC-tree vs Dwarf                        *)
(* ------------------------------------------------------------------ *)

let time_point_queries tree dwarf queries =
  let n = List.length queries in
  let t_tree =
    Qc_util.Timer.time_s (fun () ->
        List.iter (fun q -> ignore (Qc_core.Query.point_result tree q)) queries)
  in
  let t_dwarf =
    Qc_util.Timer.time_s (fun () ->
        List.iter (fun q -> ignore (Qc_dwarf.Dwarf.point dwarf q)) queries)
  in
  let hits =
    List.length (List.filter (fun q -> Result.is_ok (Qc_core.Query.point_result tree q)) queries)
  in
  let acc_tree =
    List.fold_left (fun acc q -> acc + Qc_core.Query.node_accesses tree q) 0 queries
  in
  let acc_dwarf =
    List.fold_left (fun acc q -> acc + Qc_dwarf.Dwarf.node_accesses dwarf q) 0 queries
  in
  ( t_tree /. float_of_int n *. 1e6,
    t_dwarf /. float_of_int n *. 1e6,
    hits,
    float_of_int acc_tree /. float_of_int n,
    float_of_int acc_dwarf /. float_of_int n )

let fig13a () =
  let cards =
    match !scale with Quick -> [ 10; 100; 1000 ] | Full -> [ 10; 50; 100; 500; 1000; 5000 ]
  in
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  let n_queries = 1000 in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "Figure 13(a) - point queries vs cardinality, us/query (d=6, n=%d, %d queries)"
           rows n_queries)
      ~columns:
        [ "cardinality"; "QC-tree us"; "Dwarf us"; "QC-tree nodes/q"; "Dwarf nodes/q"; "non-null" ]
  in
  let repeats = 5 in
  let detail = ref [] in
  List.iter
    (fun cardinality ->
      let table =
        Qc_data.Synthetic.generate
          { Qc_data.Synthetic.default with rows; cardinality; seed = 45 }
      in
      let tree = Qc_core.Qc_tree.of_table table in
      let dwarf = Qc_dwarf.Dwarf.build table in
      let queries = Qc_data.Synthetic.random_point_queries ~seed:46 table n_queries in
      let us_tree, us_dwarf, hits, acc_tree, acc_dwarf = time_point_queries tree dwarf queries in
      Tf.add_row t
        [
          Tf.cell_i cardinality;
          Tf.cell_f us_tree;
          Tf.cell_f us_dwarf;
          Printf.sprintf "%.2f" acc_tree;
          Printf.sprintf "%.2f" acc_dwarf;
          Tf.cell_i hits;
        ];
      (* detailed record: repeated batch timings (metrics off) and one
         counter pass (metrics on) over the same query workload *)
      let per_query samples =
        Array.map (fun s -> s /. float_of_int n_queries *. 1e6) samples
      in
      let t_tree =
        per_query
          (Qc_util.Timer.repeat repeats (fun () ->
               List.iter (fun q -> ignore (Qc_core.Query.point_result tree q)) queries))
      in
      let t_dwarf =
        per_query
          (Qc_util.Timer.repeat repeats (fun () ->
               List.iter (fun q -> ignore (Qc_dwarf.Dwarf.point dwarf q)) queries))
      in
      let counters =
        with_counters (fun () ->
            List.iter
              (fun q ->
                ignore (Qc_core.Query.point_result tree q);
                ignore (Qc_dwarf.Dwarf.point dwarf q))
              queries)
      in
      let timing samples =
        Jx.Obj
          [
            ("us_per_query_mean", Jx.Float (Qc_util.Timer.mean samples));
            ("us_per_query_stddev", Jx.Float (Qc_util.Timer.stddev samples));
            ("us_per_query_median", Jx.Float (Qc_util.Timer.median samples));
            ("samples", Jx.List (Array.to_list (Array.map (fun s -> Jx.Float s) samples)));
          ]
      in
      detail :=
        Jx.Obj
          [
            ("cardinality", Jx.Int cardinality);
            ("qc_tree", timing t_tree);
            ("dwarf", timing t_dwarf);
            ("qc_tree_nodes_per_query", Jx.Float acc_tree);
            ("dwarf_nodes_per_query", Jx.Float acc_dwarf);
            ("non_null_answers", Jx.Int hits);
            ("tree_nodes", Jx.Int (Qc_core.Qc_tree.n_nodes tree));
            ("tree_links", Jx.Int (Qc_core.Qc_tree.n_links tree));
            ("tree_classes", Jx.Int (Qc_core.Qc_tree.n_classes tree));
            ("work_counters", counters);
          ]
        :: !detail)
    cards;
  record "fig13a"
    (Jx.Obj
       [
         ("rows", Jx.Int rows);
         ("n_queries", Jx.Int n_queries);
         ("timing_repeats", Jx.Int repeats);
         ("by_cardinality", Jx.List (List.rev !detail));
       ]);
  Tf.note t "paper: Dwarf slows down as cardinality grows, QC-tree is insensitive";
  emit t

let weather_spec () =
  match !scale with
  | Quick -> { Qc_data.Weather.default with rows = 30_000; scale = 0.05 }
  | Full -> { Qc_data.Weather.default with rows = 200_000; scale = 0.2 }

let fig13b () =
  let n_queries = 1000 in
  let spec = weather_spec () in
  let table = Qc_data.Weather.generate spec in
  let tree = Qc_core.Qc_tree.of_table table in
  let dwarf = Qc_dwarf.Dwarf.build table in
  let queries = Qc_data.Synthetic.random_point_queries ~seed:47 table n_queries in
  let us_tree, us_dwarf, hits, acc_tree, acc_dwarf = time_point_queries tree dwarf queries in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf "Figure 13(b) - point queries on weather, us/query (n=%d, 9 dims)"
           (Table.n_rows table))
      ~columns:[ "structure"; "us/query"; "nodes/query"; "non-null answers" ]
  in
  Tf.add_row t [ "QC-tree"; Tf.cell_f us_tree; Printf.sprintf "%.2f" acc_tree; Tf.cell_i hits ];
  Tf.add_row t [ "Dwarf"; Tf.cell_f us_dwarf; Printf.sprintf "%.2f" acc_dwarf; Tf.cell_i hits ];
  emit t

let time_range_queries tree dwarf ranges =
  let n = List.length ranges in
  let t_tree =
    Qc_util.Timer.time_s (fun () ->
        List.iter (fun r -> ignore (Qc_core.Query.range_result tree r)) ranges)
  in
  let t_dwarf =
    Qc_util.Timer.time_s (fun () ->
        List.iter (fun r -> ignore (Qc_dwarf.Dwarf.range dwarf r)) ranges)
  in
  let answers =
    List.fold_left (fun acc r -> acc + range_length tree r) 0 ranges
  in
  (t_tree /. float_of_int n *. 1e3, t_dwarf /. float_of_int n *. 1e3, answers)

let fig13c () =
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  let table = Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; seed = 48 } in
  let tree = Qc_core.Qc_tree.of_table table in
  let dwarf = Qc_dwarf.Dwarf.build table in
  (* paper: 100 range queries, 1-3 range dimensions with 3 values each *)
  let ranges = Qc_data.Synthetic.random_range_queries ~seed:49 ~values_per_range:3 table 100 in
  let ms_tree, ms_dwarf, answers = time_range_queries tree dwarf ranges in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "Figure 13(c) - range queries on synthetic, ms/query (n=%d, 100 queries, 1-3 range dims x 3 values)"
           rows)
      ~columns:[ "structure"; "ms/query"; "total answer cells" ]
  in
  Tf.add_row t [ "QC-tree"; Tf.cell_f ms_tree; Tf.cell_i answers ];
  Tf.add_row t [ "Dwarf"; Tf.cell_f ms_dwarf; Tf.cell_i answers ];
  emit t

let fig13d () =
  let spec = weather_spec () in
  let table = Qc_data.Weather.generate spec in
  let tree = Qc_core.Qc_tree.of_table table in
  let dwarf = Qc_dwarf.Dwarf.build table in
  (* paper: ranges span the full cardinality of 1-3 dimensions *)
  let ranges = Qc_data.Synthetic.random_range_queries ~seed:50 ~values_per_range:0 table 100 in
  let ms_tree, ms_dwarf, answers = time_range_queries tree dwarf ranges in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "Figure 13(d) - range queries on weather, ms/query (n=%d, 100 queries, full-cardinality ranges)"
           (Table.n_rows table))
      ~columns:[ "structure"; "ms/query"; "total answer cells" ]
  in
  Tf.add_row t [ "QC-tree"; Tf.cell_f ms_tree; Tf.cell_i answers ];
  Tf.add_row t [ "Dwarf"; Tf.cell_f ms_dwarf; Tf.cell_i answers ];
  emit t

(* ------------------------------------------------------------------ *)
(* Packed (frozen) vs mutable QC-tree on the Figure 13 workloads       *)
(* ------------------------------------------------------------------ *)

(* The `--packed` run: the same query workloads as Figure 13, answered once
   by the mutable tree and once by its frozen [Packed] form.  Besides the
   timings it records serialized sizes (text vs packed binary) and checks
   that both forms return identical answers with identical node-access
   counts — the structural claim behind the fast path. *)
let packed_fig13 () =
  let repeats = 7 in
  let pt =
    Tf.create
      ~title:"packed vs mutable - point queries, Figure 13 workloads (median us/query)"
      ~columns:
        [ "workload"; "mutable"; "packed"; "speedup"; "text bytes"; "packed bytes"; "parity" ]
  in
  let rt =
    Tf.create
      ~title:"packed vs mutable - range queries, Figure 13 workloads (median ms/query)"
      ~columns:[ "workload"; "mutable"; "packed"; "speedup"; "answer cells"; "parity" ]
  in
  let details = ref [] in
  let timing samples =
    Jx.Obj
      [
        ("per_query_mean", Jx.Float (Qc_util.Timer.mean samples));
        ("per_query_stddev", Jx.Float (Qc_util.Timer.stddev samples));
        ("per_query_median", Jx.Float (Qc_util.Timer.median samples));
        ("samples", Jx.List (Array.to_list (Array.map (fun s -> Jx.Float s) samples)));
      ]
  in
  let sizes tree packed =
    let text = String.length (Qc_core.Serial.to_string tree) in
    let bin = String.length (Qc_core.Serial.to_packed_string packed) in
    ( text,
      bin,
      Jx.Obj
        [
          ("model_bytes", Jx.Int (Qc_core.Qc_tree.bytes tree));
          ("packed_model_bytes", Jx.Int (Qc_core.Packed.bytes packed));
          ("packed_resident_bytes", Jx.Int (Qc_core.Packed.resident_bytes packed));
          ("serialized_text_bytes", Jx.Int text);
          ("serialized_packed_bytes", Jx.Int bin);
        ] )
  in
  let detail name kind unit n_queries t_mut t_pack answers_equal accesses_equal size_json =
    details :=
      Jx.Obj
        [
          ("workload", Jx.String name);
          ("kind", Jx.String kind);
          ("unit", Jx.String unit);
          ("n_queries", Jx.Int n_queries);
          ("mutable", timing t_mut);
          ("packed", timing t_pack);
          ("answers_equal", Jx.Bool answers_equal);
          ("node_accesses_equal", Jx.Bool accesses_equal);
          ("sizes", size_json);
        ]
      :: !details
  in
  let point_workload name table qseed =
    let n_queries = 1000 in
    let tree = Qc_core.Qc_tree.of_table table in
    let packed = Qc_core.Packed.of_tree tree in
    let queries = Qc_data.Synthetic.random_point_queries ~seed:qseed table n_queries in
    let answers_equal =
      List.for_all
        (fun q ->
          match (Qc_core.Query.point_result tree q, Qc_core.Query.point_result_packed packed q) with
          | Ok a, Ok b -> Agg.equal a b
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false)
        queries
    in
    let accesses_equal =
      List.for_all
        (fun q ->
          Qc_core.Query.node_accesses tree q = Qc_core.Query.node_accesses_packed packed q)
        queries
    in
    let per_query samples =
      Array.map (fun s -> s /. float_of_int n_queries *. 1e6) samples
    in
    let t_mut =
      per_query
        (Qc_util.Timer.repeat repeats (fun () ->
             List.iter (fun q -> ignore (Qc_core.Query.point_result tree q)) queries))
    in
    let t_pack =
      per_query
        (Qc_util.Timer.repeat repeats (fun () ->
             List.iter (fun q -> ignore (Qc_core.Query.point_result_packed packed q)) queries))
    in
    let m_mut = Qc_util.Timer.median t_mut and m_pack = Qc_util.Timer.median t_pack in
    let text, bin, size_json = sizes tree packed in
    let parity = answers_equal && accesses_equal in
    Tf.add_row pt
      [
        name;
        Tf.cell_f m_mut;
        Tf.cell_f m_pack;
        Printf.sprintf "%.2fx" (m_mut /. m_pack);
        Tf.cell_i text;
        Tf.cell_i bin;
        (if parity then "ok" else "MISMATCH");
      ];
    detail name "point" "us_per_query" n_queries t_mut t_pack answers_equal accesses_equal
      size_json
  in
  let range_workload name table qseed values_per_range =
    let n_queries = 100 in
    let tree = Qc_core.Qc_tree.of_table table in
    let packed = Qc_core.Packed.of_tree tree in
    let ranges =
      Qc_data.Synthetic.random_range_queries ~seed:qseed ~values_per_range table n_queries
    in
    let canon l =
      List.sort
        (fun ((c1 : Qc_cube.Cell.t), _) (c2, _) -> Qc_cube.Cell.compare_dict c1 c2)
        l
    in
    let same (c1, a1) (c2, a2) = Qc_cube.Cell.equal c1 c2 && Qc_cube.Agg.equal a1 a2 in
    let answers_equal =
      List.for_all
        (fun r ->
          List.equal same
            (canon (range_cells tree r))
            (canon (range_cells_packed packed r)))
        ranges
    in
    let cells =
      List.fold_left (fun acc r -> acc + range_length tree r) 0 ranges
    in
    let per_query samples =
      Array.map (fun s -> s /. float_of_int n_queries *. 1e3) samples
    in
    let t_mut =
      per_query
        (Qc_util.Timer.repeat repeats (fun () ->
             List.iter (fun r -> ignore (Qc_core.Query.range_result tree r)) ranges))
    in
    let t_pack =
      per_query
        (Qc_util.Timer.repeat repeats (fun () ->
             List.iter (fun r -> ignore (Qc_core.Query.range_result_packed packed r)) ranges))
    in
    let m_mut = Qc_util.Timer.median t_mut and m_pack = Qc_util.Timer.median t_pack in
    let _, _, size_json = sizes tree packed in
    Tf.add_row rt
      [
        name;
        Tf.cell_f m_mut;
        Tf.cell_f m_pack;
        Printf.sprintf "%.2fx" (m_mut /. m_pack);
        Tf.cell_i cells;
        (if answers_equal then "ok" else "MISMATCH");
      ];
    detail name "range" "ms_per_query" n_queries t_mut t_pack answers_equal true size_json
  in
  (* the same tables, seeds and query mixes Figure 13 uses *)
  let cards =
    match !scale with Quick -> [ 10; 100; 1000 ] | Full -> [ 10; 50; 100; 500; 1000; 5000 ]
  in
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  List.iter
    (fun cardinality ->
      let table =
        Qc_data.Synthetic.generate
          { Qc_data.Synthetic.default with rows; cardinality; seed = 45 }
      in
      point_workload (Printf.sprintf "fig13a card=%d" cardinality) table 46)
    cards;
  point_workload "fig13b weather" (Qc_data.Weather.generate (weather_spec ())) 47;
  let table13c = Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; seed = 48 } in
  range_workload "fig13c synthetic" table13c 49 3;
  range_workload "fig13d weather" (Qc_data.Weather.generate (weather_spec ())) 50 0;
  record "packed_fig13"
    (Jx.Obj
       [ ("timing_repeats", Jx.Int repeats); ("workloads", Jx.List (List.rev !details)) ]);
  Tf.note pt
    "packed = frozen array-of-int layout; parity requires identical answers and node accesses";
  emit pt;
  emit rt

(* ------------------------------------------------------------------ *)
(* Figure 14: incremental maintenance vs recomputation                 *)
(* ------------------------------------------------------------------ *)

let insertion_sweep ~title base mk_delta fractions =
  let t =
    Tf.create ~title
      ~columns:
        [
          "delta (%)";
          "#tuples";
          "recompute (s)";
          "tuple-by-tuple (s)";
          "batch (s)";
          "speedup vs recompute";
        ]
  in
  List.iter
    (fun frac ->
      let k = max 1 (int_of_float (float_of_int (Table.n_rows base) *. frac)) in
      let delta = mk_delta k in
      (* recompute: rebuild from base + delta *)
      let merged = Table.copy base in
      Table.append merged delta;
      let t_rebuild = Qc_util.Timer.time_s (fun () -> ignore (Qc_core.Qc_tree.of_table merged)) in
      (* tuple-by-tuple *)
      let tree1 = Qc_core.Qc_tree.of_table base in
      let base1 = Table.copy base in
      let t_tuple =
        Qc_util.Timer.time_s (fun () ->
            ignore (Qc_core.Maintenance.insert_tuples tree1 ~base:base1 ~delta))
      in
      (* batch *)
      let tree2 = Qc_core.Qc_tree.of_table base in
      let base2 = Table.copy base in
      let t_batch =
        Qc_util.Timer.time_s (fun () ->
            ignore (Qc_core.Maintenance.insert_batch tree2 ~base:base2 ~delta))
      in
      Tf.add_row t
        [
          Printf.sprintf "%.0f%%" (100.0 *. frac);
          Tf.cell_i k;
          Tf.cell_f t_rebuild;
          Tf.cell_f t_tuple;
          Tf.cell_f t_batch;
          Printf.sprintf "%.1fx" (t_rebuild /. Float.max 1e-9 t_batch);
        ])
    fractions;
  emit t

let fig14a () =
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  let fractions =
    match !scale with Quick -> [ 0.01; 0.05; 0.10 ] | Full -> [ 0.01; 0.02; 0.05; 0.10; 0.20 ]
  in
  let spec = { Qc_data.Synthetic.default with rows; seed = 51 } in
  let base = Qc_data.Synthetic.generate spec in
  insertion_sweep
    ~title:
      (Printf.sprintf
         "Figure 14(a) - incremental insertion on synthetic (base n=%d, d=6, card=100)" rows)
    base
    (fun k -> Qc_data.Synthetic.generate_delta spec base k)
    fractions

let fig14b () =
  let spec = weather_spec () in
  let base = Qc_data.Weather.generate spec in
  let fractions =
    match !scale with Quick -> [ 0.01; 0.05 ] | Full -> [ 0.01; 0.02; 0.05; 0.10 ]
  in
  insertion_sweep
    ~title:
      (Printf.sprintf "Figure 14(b) - incremental insertion on weather (base n=%d, 9 dims)"
         (Table.n_rows base))
    base
    (fun k -> Qc_data.Weather.generate_delta spec base k)
    fractions

let fig14c () =
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  let fractions =
    match !scale with Quick -> [ 0.01; 0.05; 0.10 ] | Full -> [ 0.01; 0.02; 0.05; 0.10; 0.20 ]
  in
  let spec = { Qc_data.Synthetic.default with rows; seed = 52 } in
  let base = Qc_data.Synthetic.generate spec in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "Figure 14(c) - incremental deletion on synthetic (base n=%d; paper: results on deletions are similar)"
           rows)
      ~columns:[ "delta (%)"; "#tuples"; "recompute (s)"; "batch delete (s)"; "speedup" ]
  in
  List.iter
    (fun frac ->
      let k = max 1 (int_of_float (float_of_int rows *. frac)) in
      let delta = Qc_data.Synthetic.pick_delete_delta ~seed:53 base k in
      let tree = Qc_core.Qc_tree.of_table base in
      let new_base = ref base in
      let t_batch =
        Qc_util.Timer.time_s (fun () ->
            let nb, _ = Qc_core.Maintenance.delete_batch tree ~base ~delta in
            new_base := nb)
      in
      let t_rebuild =
        Qc_util.Timer.time_s (fun () -> ignore (Qc_core.Qc_tree.of_table !new_base))
      in
      Tf.add_row t
        [
          Printf.sprintf "%.0f%%" (100.0 *. frac);
          Tf.cell_i k;
          Tf.cell_f t_rebuild;
          Tf.cell_f t_batch;
          Printf.sprintf "%.1fx" (t_rebuild /. Float.max 1e-9 t_batch);
        ])
    fractions;
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 15: storage on weather data vs number of dimensions          *)
(* ------------------------------------------------------------------ *)

(* Project the weather table onto its first [k] dimensions. *)
let project table k =
  let schema = Table.schema table in
  let names = List.init k (fun i -> Schema.dim_name schema i) in
  let out_schema = Schema.create ~measure_name:(Schema.measure_name schema) names in
  (* keep the same dictionary codes *)
  for i = 0 to k - 1 do
    Array.iter
      (fun v -> ignore (Schema.encode_value out_schema i v))
      (Qc_util.Dict.values (Schema.dict schema i))
  done;
  let out = Table.create out_schema in
  Table.iter (fun cell m -> Table.add_encoded out (Array.sub cell 0 k) m) table;
  out

let fig15 () =
  let spec = weather_spec () in
  let table = Qc_data.Weather.generate spec in
  let dims_list = [ 3; 4; 5; 6; 7; 8; 9 ] in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf "Figure 15 - storage (MB) on weather data vs #dims (n=%d, scale %.2f)"
           (Table.n_rows table) spec.scale)
      ~columns:[ "#dims"; "cube cells"; "Cube MB"; "Dwarf MB"; "QC-table MB"; "QC-tree MB" ]
  in
  List.iter
    (fun k ->
      let sub = project table k in
      let s = measure_sizes sub in
      Tf.add_row t
        [
          Tf.cell_i k;
          Tf.cell_i s.cube_cells;
          mb s.cube_bytes;
          mb s.dwarf_bytes;
          mb s.qtab_bytes;
          mb s.tree_bytes;
        ])
    dims_list;
  Tf.note t "paper Figure 15 reports MB for the 1M-row 1985 weather data; shapes should match";
  emit t


(* ------------------------------------------------------------------ *)
(* Ablations: design choices the paper calls out                       *)
(* ------------------------------------------------------------------ *)

(* Rebuild [table] with its dimensions permuted by [perm] (new position i
   takes old dimension perm.(i)), preserving dictionary codes. *)
let permute_dims table perm =
  let schema = Table.schema table in
  let k = Array.length perm in
  let names = List.init k (fun i -> Schema.dim_name schema perm.(i)) in
  let out_schema = Schema.create ~measure_name:(Schema.measure_name schema) names in
  for i = 0 to k - 1 do
    Array.iter
      (fun v -> ignore (Schema.encode_value out_schema i v))
      (Qc_util.Dict.values (Schema.dict schema perm.(i)))
  done;
  let out = Table.create out_schema in
  Table.iter
    (fun cell m -> Table.add_encoded out (Array.map (fun j -> cell.(j)) perm) m)
    table;
  out

(* Paper footnote 2: "heuristically, dimensions can be sorted in the
   cardinality ascending order, so that more sharing is likely achieved at
   the upper part of the tree". *)
let abl_order () =
  let spec = weather_spec () in
  let table = Qc_data.Weather.generate spec in
  let d = Table.n_dims table in
  let cards = Schema.cardinalities (Table.schema table) in
  let by_card ascending =
    let perm = Array.init d Fun.id in
    Array.sort
      (fun a b ->
        if ascending then Int.compare cards.(a) cards.(b)
        else Int.compare cards.(b) cards.(a))
      perm;
    perm
  in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "Ablation: dimension order heuristic (weather proxy, n=%d; paper footnote 2)"
           (Table.n_rows table))
      ~columns:[ "dimension order"; "nodes"; "links"; "classes"; "bytes"; "build (s)" ]
  in
  List.iter
    (fun (label, perm) ->
      let permuted = permute_dims table perm in
      let tree, dt = Qc_util.Timer.time (fun () -> Qc_core.Qc_tree.of_table permuted) in
      Tf.add_row t
        [
          label;
          Tf.cell_i (Qc_core.Qc_tree.n_nodes tree);
          Tf.cell_i (Qc_core.Qc_tree.n_links tree);
          Tf.cell_i (Qc_core.Qc_tree.n_classes tree);
          Tf.cell_i (Qc_core.Qc_tree.bytes tree);
          Tf.cell_f dt;
        ])
    [
      ("natural (paper schema)", Array.init d Fun.id);
      ("cardinality ascending", by_card true);
      ("cardinality descending", by_card false);
    ];
  Tf.note t "class count is order-independent; nodes/links/bytes are not";
  emit t

let abl_dwarf () =
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  let table = Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; seed = 57 } in
  let cube_bytes = Qc_util.Size.bytes_of_cells ~dims:(Table.n_dims table) ~cells:(Buc.count_cells table) in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf "Ablation: Dwarf suffix-coalescing strategies (d=6, n=%d)" rows)
      ~columns:[ "strategy"; "nodes"; "cells"; "bytes"; "% of cube"; "build (s)" ]
  in
  List.iter
    (fun (label, coalescing) ->
      let dwarf, dt = Qc_util.Timer.time (fun () -> Qc_dwarf.Dwarf.build ~coalescing table) in
      Tf.add_row t
        [
          label;
          Tf.cell_i (Qc_dwarf.Dwarf.n_nodes dwarf);
          Tf.cell_i (Qc_dwarf.Dwarf.n_cells dwarf);
          Tf.cell_i (Qc_dwarf.Dwarf.bytes dwarf);
          pct (Qc_dwarf.Dwarf.bytes dwarf) cube_bytes;
          Tf.cell_f dt;
        ])
    [
      ("hash-consing (ours)", Qc_dwarf.Dwarf.Hash_cons);
      ("single-cell rule only", Qc_dwarf.Dwarf.Single_cell);
      ("prefix sharing only", Qc_dwarf.Dwarf.No_coalescing);
    ];
  Tf.note t "QC-tree vs Dwarf comparisons elsewhere use the strongest (most favourable) Dwarf";
  emit t

let abl_links () =
  let t =
    Tf.create ~title:"Ablation: drill-down link structure across workloads"
      ~columns:
        [ "workload"; "classes"; "tree nodes"; "links"; "links/class"; "avg path len"; "dims" ]
  in
  let measure label table =
    let tree = Qc_core.Qc_tree.of_table table in
    let classes = Qc_core.Qc_tree.n_classes tree in
    let total_depth = ref 0 in
    Qc_core.Qc_tree.iter_classes
      (fun _ ub _ ->
        total_depth := !total_depth + (Array.length ub - Cell.n_stars ub))
      tree;
    Tf.add_row t
      [
        label;
        Tf.cell_i classes;
        Tf.cell_i (Qc_core.Qc_tree.n_nodes tree);
        Tf.cell_i (Qc_core.Qc_tree.n_links tree);
        Printf.sprintf "%.2f" (float_of_int (Qc_core.Qc_tree.n_links tree) /. float_of_int (max 1 classes));
        Printf.sprintf "%.2f" (float_of_int !total_depth /. float_of_int (max 1 classes));
        Tf.cell_i (Table.n_dims table);
      ]
  in
  let rows = match !scale with Quick -> 10_000 | Full -> 50_000 in
  measure "synthetic d=4" (Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; dims = 4; seed = 58 });
  measure "synthetic d=6" (Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; dims = 6; seed = 58 });
  measure "synthetic d=8, card=20"
    (Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; dims = 8; cardinality = 20; seed = 58 });
  measure "weather proxy" (Qc_data.Weather.generate { Qc_data.Weather.default with rows; scale = 0.05 });
  Tf.note t "avg path len < dims is why QC-tree point queries touch fewer nodes than Dwarf";
  emit t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: steady-state query latency               *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let rows = match !scale with Quick -> 20_000 | Full -> 50_000 in
  let table = Qc_data.Synthetic.generate { Qc_data.Synthetic.default with rows; seed = 54 } in
  let tree = Qc_core.Qc_tree.of_table table in
  let dwarf = Qc_dwarf.Dwarf.build table in
  let queries = Array.of_list (Qc_data.Synthetic.random_point_queries ~seed:55 table 512) in
  let ranges = Array.of_list (Qc_data.Synthetic.random_range_queries ~seed:56 table 64) in
  let i = ref 0 in
  let j = ref 0 in
  let tests =
    Test.make_grouped ~name:"queries"
      [
        Test.make ~name:"point/qc-tree"
          (Staged.stage (fun () ->
               incr i;
               ignore (Qc_core.Query.point_result tree queries.(!i land 511))));
        Test.make ~name:"point/dwarf"
          (Staged.stage (fun () ->
               incr i;
               ignore (Qc_dwarf.Dwarf.point dwarf queries.(!i land 511))));
        Test.make ~name:"range/qc-tree"
          (Staged.stage (fun () ->
               incr j;
               ignore (Qc_core.Query.range_result tree ranges.(!j land 63))));
        Test.make ~name:"range/dwarf"
          (Staged.stage (fun () ->
               incr j;
               ignore (Qc_dwarf.Dwarf.range dwarf ranges.(!j land 63))));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let results = Benchmark.all cfg [ instance ] tests in
  let analyzed =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      instance results
  in
  let tbl =
    Tf.create ~title:"Bechamel micro-benchmarks - steady-state latency (ns/run)"
      ~columns:[ "benchmark"; "ns/run (ols)"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some [ e ] -> Printf.sprintf "%.1f" e
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := (name, est, r2) :: !rows)
    analyzed;
  List.iter
    (fun (name, est, r2) -> Tf.add_row tbl [ name; est; r2 ])
    (List.sort
       (fun ((a : string), _, _) (b, _, _) -> String.compare a b)
       !rows);
  emit tbl

(* ------------------------------------------------------------------ *)
(* PR4: write-ahead journal overhead on the maintenance path           *)
(* ------------------------------------------------------------------ *)

(* How much durability costs: the same insert batches applied to a detached
   warehouse (no journal) and to one attached to a directory (every batch
   framed, appended and fsync'd before the tree is touched), plus the price
   of replaying the journal on open and of the checkpoint that truncates
   it.  Reported in BENCH_PR4.json via `--wal`. *)
let wal_overhead () =
  let module W = Qc_warehouse.Warehouse in
  let rows, n_batches, batch_rows =
    match !scale with Quick -> (5_000, 20, 50) | Full -> (20_000, 50, 200)
  in
  let spec = { Qc_data.Synthetic.default with rows; seed = 404 } in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  (* fresh table + identically-seeded batches for each mode, so the two
     timed loops do exactly the same maintenance work *)
  let setup () =
    let base = Qc_data.Synthetic.generate spec in
    let batches =
      List.init n_batches (fun i ->
          Qc_data.Synthetic.generate_delta { spec with seed = 9_000 + i } base batch_rows)
    in
    (W.create base, batches)
  in
  let insert_all w batches = List.iter (fun d -> ignore (W.insert w d)) batches in
  let w_detached, batches = setup () in
  let t_detached = Qc_util.Timer.time_s (fun () -> insert_all w_detached batches) in
  let w_attached, batches = setup () in
  let dir = Filename.temp_file "qcbenchwal" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  W.save w_attached dir;
  let t_attached = Qc_util.Timer.time_s (fun () -> insert_all w_attached batches) in
  let wal_bytes = (Unix.stat (Filename.concat dir "wal.log")).Unix.st_size in
  let t_replay = Qc_util.Timer.time_s (fun () -> ignore (W.open_dir dir)) in
  let t_checkpoint = Qc_util.Timer.time_s (fun () -> W.save w_attached dir) in
  let t_reopen_clean = Qc_util.Timer.time_s (fun () -> ignore (W.open_dir dir)) in
  let ms s = Printf.sprintf "%.2f" (1e3 *. s) in
  let per_batch_ms s = Printf.sprintf "%.3f" (1e3 *. s /. float_of_int n_batches) in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "journal overhead - %d insert batches of %d rows (base n=%d, d=%d, card=%d)"
           n_batches batch_rows rows spec.Qc_data.Synthetic.dims
           spec.Qc_data.Synthetic.cardinality)
      ~columns:[ "mode"; "total ms"; "ms/batch"; "journal bytes" ]
  in
  Tf.add_row t [ "detached (no journal)"; ms t_detached; per_batch_ms t_detached; "-" ];
  Tf.add_row t
    [ "attached (append+fsync)"; ms t_attached; per_batch_ms t_attached; string_of_int wal_bytes ];
  Tf.add_row t
    [
      Printf.sprintf "overhead %.2fx" (t_attached /. Float.max 1e-9 t_detached); "-"; "-"; "-";
    ];
  Tf.note t
    (Printf.sprintf
       "replay of %d journaled batches on open: %s ms; checkpoint (truncates journal): %s ms; \
        clean reopen: %s ms"
       n_batches (ms t_replay) (ms t_checkpoint) (ms t_reopen_clean));
  emit t;
  record "wal_overhead"
    (Jx.Obj
       [
         ("base_rows", Jx.Int rows);
         ("batches", Jx.Int n_batches);
         ("batch_rows", Jx.Int batch_rows);
         ( "detached",
           Jx.Obj
             [
               ("total_s", Jx.Float t_detached);
               ("s_per_batch", Jx.Float (t_detached /. float_of_int n_batches));
             ] );
         ( "attached",
           Jx.Obj
             [
               ("total_s", Jx.Float t_attached);
               ("s_per_batch", Jx.Float (t_attached /. float_of_int n_batches));
               ("wal_bytes", Jx.Int wal_bytes);
             ] );
         ("overhead_ratio", Jx.Float (t_attached /. Float.max 1e-9 t_detached));
         ("replay_s", Jx.Float t_replay);
         ("checkpoint_s", Jx.Float t_checkpoint);
         ("clean_reopen_s", Jx.Float t_reopen_clean);
       ])

(* ------------------------------------------------------------------ *)
(* PR5: parallel batch executor - domain scaling on point queries      *)
(* ------------------------------------------------------------------ *)

(* The Figure 13(a) point workload pushed through [Engine.run_batch] at
   1, 2 and 4 domains over the frozen packed snapshot.  Every parallel run
   is compared slot-for-slot against the sequential baseline (answers and
   node-access counts must be bit-identical); the report records honest
   medians plus the machine's recommended domain count, since speedup on a
   single-core builder is physically capped at 1x.  Reported in
   BENCH_PR5.json via `--batch`. *)
let batch_scaling () =
  let module E = Qc_core.Engine in
  let rows, n_queries =
    match !scale with Quick -> (20_000, 100_000) | Full -> (50_000, 400_000)
  in
  let cardinality = 100 in
  let table =
    Qc_data.Synthetic.generate
      { Qc_data.Synthetic.default with rows; cardinality; seed = 45 }
  in
  let tree = Qc_core.Qc_tree.of_table table in
  let packed = Qc_core.Packed.of_tree tree in
  let queries =
    Array.of_list
      (List.map
         (fun c -> E.Point c)
         (Qc_data.Synthetic.random_point_queries ~seed:46 table n_queries))
  in
  let repeats = 5 in
  let domains = Domain.recommended_domain_count () in
  let baseline =
    E.run_batch ~jobs:1 ~node_accesses:true (module E.Packed_backend) packed queries
  in
  let parity b =
    Array.for_all2 E.outcome_equal baseline.E.outcomes b.E.outcomes
    && baseline.E.accesses = b.E.accesses
  in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "batch executor - %d point queries over packed snapshot (n=%d, d=6, card=%d; %d \
            core(s) available)"
           n_queries rows cardinality domains)
      ~columns:[ "jobs"; "median s"; "speedup vs 1"; "queries/s"; "parity" ]
  in
  let detail = ref [] in
  let median_1 = ref 0.0 in
  List.iter
    (fun jobs ->
      let last = ref baseline in
      let samples =
        Array.init repeats (fun _ ->
            let b =
              E.run_batch ~jobs ~node_accesses:true (module E.Packed_backend) packed queries
            in
            last := b;
            b.E.elapsed_s)
      in
      let m = Qc_util.Timer.median samples in
      if jobs = 1 then median_1 := m;
      let ok = parity !last in
      let speedup = !median_1 /. Float.max 1e-9 m in
      Tf.add_row t
        [
          Tf.cell_i jobs;
          Printf.sprintf "%.4f" m;
          Printf.sprintf "%.2fx" speedup;
          Tf.cell_i (int_of_float (float_of_int n_queries /. Float.max 1e-9 m));
          (if ok then "ok" else "MISMATCH");
        ];
      detail :=
        Jx.Obj
          [
            ("jobs", Jx.Int jobs);
            ("elapsed_s_median", Jx.Float m);
            ( "elapsed_s_samples",
              Jx.List (Array.to_list (Array.map (fun s -> Jx.Float s) samples)) );
            ("speedup_vs_sequential", Jx.Float speedup);
            ("parity", Jx.Bool ok);
          ]
        :: !detail)
    [ 1; 2; 4 ];
  record "batch"
    (Jx.Obj
       [
         ("rows", Jx.Int rows);
         ("cardinality", Jx.Int cardinality);
         ("n_queries", Jx.Int n_queries);
         ("timing_repeats", Jx.Int repeats);
         ("recommended_domains", Jx.Int domains);
         ("by_jobs", Jx.List (List.rev !detail));
       ]);
  Tf.note t
    "parity = answers and node accesses bit-identical to --jobs 1; speedup needs >= that \
     many physical cores";
  emit t

(* ------------------------------------------------------------------ *)
(* PR6: span-tracer overhead on the hot query path                     *)
(* ------------------------------------------------------------------ *)

(* What the permanent instrumentation costs: the Figure 13(a) point
   workload pushed through [Engine.run_one] with every observability
   switch off (the production configuration — a few atomic loads per
   query) against the uninstrumented [Engine.run_one_plain] dispatch,
   plus the fully-traced cost for the record.  The three modes are
   interleaved rep by rep so clock drift and cache state bias none of
   them.  Reported in BENCH_PR6.json via `--trace`; CI bounds the
   disabled overhead. *)
let trace_overhead () =
  let module E = Qc_core.Engine in
  let module T = Qc_util.Trace in
  let rows, n_queries, repeats =
    match !scale with Quick -> (20_000, 200_000, 9) | Full -> (50_000, 400_000, 11)
  in
  let cardinality = 100 in
  let table =
    Qc_data.Synthetic.generate
      { Qc_data.Synthetic.default with rows; cardinality; seed = 45 }
  in
  let tree = Qc_core.Qc_tree.of_table table in
  let packed = Qc_core.Packed.of_tree tree in
  let queries =
    Array.of_list
      (List.map
         (fun c -> E.Point c)
         (Qc_data.Synthetic.random_point_queries ~seed:46 table n_queries))
  in
  let plain_pass () =
    Array.iter (fun q -> ignore (E.run_one_plain (module E.Packed_backend) packed q)) queries
  in
  let disabled_pass () =
    Array.iter (fun q -> ignore (E.run_one (module E.Packed_backend) packed q)) queries
  in
  let spans_per_run = ref 0 in
  let traced_pass () =
    T.reset ();
    T.set_enabled true;
    Array.iter (fun q -> ignore (E.run_one (module E.Packed_backend) packed q)) queries;
    T.set_enabled false;
    spans_per_run := T.span_count ();
    T.reset ()
  in
  (* one untimed warm-up of each mode, then interleaved timed reps *)
  plain_pass ();
  disabled_pass ();
  traced_pass ();
  let s_plain = Array.make repeats 0.0 in
  let s_disabled = Array.make repeats 0.0 in
  let s_traced = Array.make repeats 0.0 in
  for r = 0 to repeats - 1 do
    s_plain.(r) <- Qc_util.Timer.time_s plain_pass;
    s_disabled.(r) <- Qc_util.Timer.time_s disabled_pass;
    s_traced.(r) <- Qc_util.Timer.time_s traced_pass
  done;
  let us samples =
    Qc_util.Timer.median samples /. float_of_int n_queries *. 1e6
  in
  let m_plain = us s_plain and m_disabled = us s_disabled and m_traced = us s_traced in
  let overhead_disabled = (m_disabled /. m_plain) -. 1.0 in
  let overhead_traced = (m_traced /. m_plain) -. 1.0 in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "tracer overhead - %d point queries over packed snapshot (n=%d, d=6, card=%d, \
            median of %d reps)"
           n_queries rows cardinality repeats)
      ~columns:[ "mode"; "us/query"; "overhead vs plain" ]
  in
  Tf.add_row t [ "uninstrumented (run_one_plain)"; Tf.cell_f m_plain; "-" ];
  Tf.add_row t
    [
      "instrumented, all switches off";
      Tf.cell_f m_disabled;
      Printf.sprintf "%+.2f%%" (100.0 *. overhead_disabled);
    ];
  Tf.add_row t
    [
      "tracer enabled (one span/query)";
      Tf.cell_f m_traced;
      Printf.sprintf "%+.2f%%" (100.0 *. overhead_traced);
    ];
  Tf.note t
    "the disabled row is the production configuration; CI bounds its overhead (<= 2% plus \
     noise margin)";
  emit t;
  let timing samples =
    Jx.Obj
      [
        ("us_per_query_median", Jx.Float (us samples));
        ("us_per_query_mean", Jx.Float (Qc_util.Timer.mean samples /. float_of_int n_queries *. 1e6));
        ( "elapsed_s_samples",
          Jx.List (Array.to_list (Array.map (fun s -> Jx.Float s) samples)) );
      ]
  in
  record "trace_overhead"
    (Jx.Obj
       [
         ("rows", Jx.Int rows);
         ("cardinality", Jx.Int cardinality);
         ("n_queries", Jx.Int n_queries);
         ("timing_repeats", Jx.Int repeats);
         ("plain", timing s_plain);
         ("disabled", timing s_disabled);
         ("traced", timing s_traced);
         ("overhead_disabled_ratio", Jx.Float overhead_disabled);
         ("overhead_traced_ratio", Jx.Float overhead_traced);
         ("spans_per_traced_run", Jx.Int !spans_per_run);
       ])

(* ------------------------------------------------------------------ *)
(* PR7: sharded build and scatter-gather query scaling                 *)
(* ------------------------------------------------------------------ *)

(* The 4-shard warehouse at 1/2/4 worker domains against the single
   QC-tree baseline on the weather table.  Shard builds are
   embarrassingly parallel (a split plus N independent tree builds);
   queries pay the scatter-gather merge on top.  Parity uses the
   approximate aggregate comparison: weather measures are real floats,
   so per-shard partial sums may differ from the baseline's summation
   order in the last ulps (the property suite proves bit-parity on
   integer measures).  Reported in BENCH_PR7.json via `--shard`; CI
   requires parity unconditionally and the 4-domain build speedup only
   on machines that have the cores. *)
let shard_scaling () =
  let module E = Qc_core.Engine in
  let module S = Qc_core.Shard in
  let rows = match !scale with Quick -> 100_000 | Full -> 1_000_000 in
  let table = Qc_data.Weather.generate { Qc_data.Weather.default with rows } in
  let shards = 4 in
  let repeats = 3 in
  let domains = Domain.recommended_domain_count () in
  let queries =
    Array.append
      (Array.of_list
         (List.map
            (fun c -> E.Point c)
            (Qc_data.Synthetic.random_point_queries ~seed:57 table 400)))
      (Array.of_list
         (List.map
            (fun r -> E.Range r)
            (Qc_data.Synthetic.random_range_queries ~seed:58 ~values_per_range:3 table 30)))
  in
  let median_of f =
    let last = ref None in
    let samples =
      Array.init repeats (fun _ ->
          let r, dt = Qc_util.Timer.time f in
          last := Some r;
          dt)
    in
    ((match !last with Some r -> r | None -> assert false), Qc_util.Timer.median samples)
  in
  let baseline, base_build_m =
    median_of (fun () -> Qc_core.Packed.of_tree (Qc_core.Qc_tree.of_table table))
  in
  let base_batch, base_query_m =
    median_of (fun () -> E.run_batch ~jobs:1 (module E.Packed_backend) baseline queries)
  in
  let answer_approx a b =
    match (a, b) with
    | E.Agg_answer x, E.Agg_answer y -> Agg.approx_equal x y
    | E.Cells_answer xs, E.Cells_answer ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (c1, a1) (c2, a2) -> Cell.equal c1 c2 && Agg.approx_equal a1 a2)
           xs ys
    | _ -> false
  in
  let outcome_approx a b =
    match (a, b) with
    | Ok x, Ok y -> answer_approx x y
    | Error x, Error y -> E.error_equal x y
    | _ -> false
  in
  let parity (b : E.batch) = Array.for_all2 outcome_approx base_batch.E.outcomes b.E.outcomes in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "sharded build + scatter-gather - weather n=%d, %d shards (hash), %d queries; \
            baseline build %.2fs, query %.4fs (%d core(s) available)"
           rows shards (Array.length queries) base_build_m base_query_m domains)
      ~columns:
        [ "jobs"; "build median s"; "speedup vs 1"; "query median s"; "vs baseline"; "parity" ]
  in
  let detail = ref [] in
  let build_1 = ref 0.0 in
  List.iter
    (fun jobs ->
      let s, build_m = median_of (fun () -> S.build ~jobs ~partitioner:S.Hash ~shards table) in
      if jobs = 1 then build_1 := build_m;
      let batch, query_m =
        median_of (fun () -> E.run_batch ~jobs:1 (module S.Backend) s queries)
      in
      let ok = parity batch in
      let speedup = !build_1 /. Float.max 1e-9 build_m in
      Tf.add_row t
        [
          Tf.cell_i jobs;
          Printf.sprintf "%.3f" build_m;
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%.4f" query_m;
          Printf.sprintf "%.2fx" (query_m /. Float.max 1e-9 base_query_m);
          (if ok then "ok" else "MISMATCH");
        ];
      detail :=
        Jx.Obj
          [
            ("jobs", Jx.Int jobs);
            ("build_s_median", Jx.Float build_m);
            ("build_speedup_vs_sequential", Jx.Float speedup);
            ("query_s_median", Jx.Float query_m);
            ("query_vs_baseline", Jx.Float (query_m /. Float.max 1e-9 base_query_m));
            ("parity", Jx.Bool ok);
          ]
        :: !detail)
    [ 1; 2; 4 ];
  record "shard"
    (Jx.Obj
       [
         ("rows", Jx.Int rows);
         ("shards", Jx.Int shards);
         ("partitioner", Jx.String "hash");
         ("n_queries", Jx.Int (Array.length queries));
         ("timing_repeats", Jx.Int repeats);
         ("recommended_domains", Jx.Int domains);
         ( "baseline",
           Jx.Obj
             [
               ("build_s_median", Jx.Float base_build_m);
               ("query_s_median", Jx.Float base_query_m);
             ] );
         ("by_jobs", Jx.List (List.rev !detail));
       ]);
  Tf.note t
    "parity = scatter-gather answers match the single-tree baseline (approx: float \
     measures); build speedup needs >= that many physical cores";
  emit t

(* ------------------------------------------------------------------ *)
(* PR9: streaming ingest with rolling refreeze under concurrent reads  *)
(* ------------------------------------------------------------------ *)

(* Sustained insert throughput while a reader domain hammers the MVCC
   snapshot server.  The claim under test: a rolling background refreeze
   never takes readers down — the reader's worst-case gap between two
   answered queries stays at single-query latency, orders of magnitude
   below the refreeze itself, and the served generation only moves
   forward.  Reported in BENCH_PR9.json via `--ingest`. *)
let ingest_streaming () =
  let module W = Qc_warehouse.Warehouse in
  let module I = Qc_warehouse.Ingest in
  let stream_rows = match !scale with Quick -> 30_000 | Full -> 300_000 in
  let refreeze_rows = stream_rows / 6 in
  let base_rows = 2_000 in
  let spec = { Qc_data.Synthetic.default with dims = 4; cardinality = 20; rows = base_rows; seed = 91 } in
  let base = Qc_data.Synthetic.generate spec in
  let delta = Qc_data.Synthetic.generate_delta { spec with seed = 92 } base stream_rows in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let stream_path = Filename.temp_file "qcbench_stream" ".csv" in
  let dir = Filename.temp_file "qcbench_ingest" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      if Sys.file_exists stream_path then Sys.remove stream_path)
  @@ fun () ->
  (* render the delta in the line protocol qct ingest consumes (the CSV
     writer's first line is the header) *)
  (let oc = open_out stream_path in
   Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
       let s = Qc_data.Csv.to_string delta in
       match String.index_opt s '\n' with
       | Some i -> output_substring oc s (i + 1) (String.length s - i - 1)
       | None -> ()));
  let queries = Array.of_list (Qc_data.Synthetic.random_point_queries ~seed:93 base 512) in
  let run_once ~with_reader =
    let w = W.create (Qc_data.Synthetic.generate spec) in
    W.save w dir;
    let server = I.Snapshot.make ~generation:(W.checkpoint_generation w) (W.packed w) in
    let stop = Atomic.make false in
    let reader =
      if not with_reader then None
      else
        Some
          (Domain.spawn (fun () ->
               (* hammer the snapshot until told to stop; the worst gap
                  between consecutive completions is the observed reader
                  "downtime" *)
               let n = ref 0 and max_gap = ref 0.0 and answered = ref 0 in
               let min_gen = ref max_int and max_gen = ref min_int and regressed = ref false in
               let last = ref (Qc_util.Clock.now_s ()) in
               while not (Atomic.get stop) do
                 let snap = I.Snapshot.current server in
                 let g = snap.I.Snapshot.generation in
                 if g < !max_gen then regressed := true;
                 if g < !min_gen then min_gen := g;
                 if g > !max_gen then max_gen := g;
                 let cell = queries.(!n mod Array.length queries) in
                 (match Qc_core.Query.point_result_packed snap.I.Snapshot.packed cell with
                 | Ok _ -> incr answered
                 | Error _ -> ());
                 incr n;
                 let now = Qc_util.Clock.now_s () in
                 if now -. !last > !max_gap then max_gap := now -. !last;
                 last := now
               done;
               (!n, !answered, !max_gap, !min_gen, !max_gen, !regressed)))
    in
    let ic = open_in stream_path in
    let config = { I.default with I.refreeze_rows; batch_rows = 256 } in
    let o, elapsed =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Qc_util.Timer.time (fun () -> I.run ~config ~server w ~source:(I.Channel ic)))
    in
    Atomic.set stop true;
    let reader_stats = Option.map Domain.join reader in
    (w, o, elapsed, reader_stats)
  in
  let w0, o0, t0, _ = run_once ~with_reader:false in
  assert (Qc_cube.Table.n_rows (W.table w0) = base_rows + o0.I.rows_ingested);
  let w1, o1, t1, reader_stats = run_once ~with_reader:true in
  assert (W.self_check w1 = Ok ());
  let n_q, answered, max_gap, min_gen, max_gen, regressed =
    match reader_stats with Some s -> s | None -> (0, 0, 0.0, 0, 0, false)
  in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "streaming ingest + rolling refreeze - synthetic stream n=%d over base n=%d, \
            refreeze every %d rows"
           stream_rows base_rows refreeze_rows)
      ~columns:
        [
          "concurrent load"; "inserts/s"; "elapsed s"; "refreezes"; "reader q/s";
          "reader max gap ms"; "generations served";
        ]
  in
  let ins_per_s o dt = float_of_int o.I.rows_ingested /. Float.max 1e-9 dt in
  Tf.add_row t
    [
      "none";
      Printf.sprintf "%.0f" (ins_per_s o0 t0);
      Printf.sprintf "%.2f" t0;
      Tf.cell_i o0.I.refreezes;
      "-"; "-"; "-";
    ];
  Tf.add_row t
    [
      "reader domain";
      Printf.sprintf "%.0f" (ins_per_s o1 t1);
      Printf.sprintf "%.2f" t1;
      Tf.cell_i o1.I.refreezes;
      Printf.sprintf "%.0f" (float_of_int n_q /. Float.max 1e-9 t1);
      Printf.sprintf "%.2f" (max_gap *. 1000.0);
      Printf.sprintf "%d..%d%s" min_gen max_gen (if regressed then " REGRESSED" else "");
    ];
  record "ingest"
    (Jx.Obj
       [
         ("stream_rows", Jx.Int stream_rows);
         ("base_rows", Jx.Int base_rows);
         ("refreeze_rows", Jx.Int refreeze_rows);
         ( "unloaded",
           Jx.Obj
             [
               ("inserts_per_s", Jx.Float (ins_per_s o0 t0));
               ("elapsed_s", Jx.Float t0);
               ("batches", Jx.Int o0.I.batches);
               ("refreezes", Jx.Int o0.I.refreezes);
               ("refreeze_failures", Jx.Int o0.I.refreeze_failures);
             ] );
         ( "with_concurrent_reads",
           Jx.Obj
             [
               ("inserts_per_s", Jx.Float (ins_per_s o1 t1));
               ("elapsed_s", Jx.Float t1);
               ("batches", Jx.Int o1.I.batches);
               ("refreezes", Jx.Int o1.I.refreezes);
               ("refreeze_failures", Jx.Int o1.I.refreeze_failures);
               ("reader_queries", Jx.Int n_q);
               ("reader_queries_answered", Jx.Int answered);
               ("reader_queries_per_s", Jx.Float (float_of_int n_q /. Float.max 1e-9 t1));
               ("reader_max_gap_ms", Jx.Float (max_gap *. 1000.0));
               ("generation_served_min", Jx.Int min_gen);
               ("generation_served_max", Jx.Int max_gen);
               ("generation_regressed", Jx.Bool regressed);
             ] );
       ]);
  Tf.note t
    "reader max gap = worst wall-clock between two consecutive answered snapshot queries; \
     zero reader downtime means it stays at single-query latency while refreezes run";
  emit t

(* ------------------------------------------------------------------ *)
(* PR10: the query server under concurrent TCP load                    *)
(* ------------------------------------------------------------------ *)

(* Closed-loop loadgen against an in-process [qct serve]: throughput and
   tail latency across client counts, the result cache's hit rate on a
   skewed workload, and the zero-downtime claim — a concurrent writer
   driving refreezes while clients hammer the socket must lose no
   request and only ever move the served generation forward.  Reported
   in BENCH_PR10.json via `--serve`. *)
let serve_load () =
  let module W = Qc_warehouse.Warehouse in
  let module S = Qc_server.Server in
  let module L = Qc_server.Loadgen in
  let module R = Qc_core.Request in
  let base_rows = match !scale with Quick -> 5_000 | Full -> 50_000 in
  let duration = match !scale with Quick -> 0.8 | Full -> 3.0 in
  let spec =
    { Qc_data.Synthetic.default with dims = 4; cardinality = 20; rows = base_rows; seed = 101 }
  in
  let base = Qc_data.Synthetic.generate spec in
  let schema = Qc_cube.Table.schema base in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let dir = Filename.temp_file "qcbench_serve" "" in
  Sys.remove dir;
  let w = W.create base in
  W.save w dir;
  let lines =
    Qc_data.Synthetic.random_point_queries ~seed:102 base 256
    |> List.filter_map (fun c -> R.to_line schema (R.Query (R.Point c)))
    |> Array.of_list
  in
  let config =
    { S.default_config with S.port = 0; workers = 2; cache_capacity = 4096;
      poll_interval_s = 0.05 }
  in
  let srv = S.start ~config dir in
  let port = S.port srv in
  Fun.protect
    ~finally:(fun () ->
      ignore (S.stop srv);
      rm_rf dir)
  @@ fun () ->
  let shoot ?zipf_s ~clients ~duration_s () =
    match L.run ~host:"127.0.0.1" ~port ~clients ?zipf_s ~duration_s ~lines () with
    | Ok r -> r
    | Error e -> failwith ("serve bench: loadgen setup failed: " ^ e)
  in
  (* leg 1: concurrency sweep, uniform workload *)
  let sweep = List.map (fun clients -> (clients, shoot ~clients ~duration_s:duration ())) [ 1; 8; 64 ] in
  (* leg 2: Zipf-skewed workload; the cache delta over the leg gives the
     hit rate (the sweep already warmed the 256 distinct lines) *)
  let st0 = S.stats srv in
  let zr = shoot ~zipf_s:1.2 ~clients:8 ~duration_s:duration () in
  let st1 = S.stats srv in
  let z_hits = st1.R.sv_cache_hits - st0.R.sv_cache_hits in
  let z_misses = st1.R.sv_cache_misses - st0.R.sv_cache_misses in
  let hit_rate = float_of_int z_hits /. float_of_int (max 1 (z_hits + z_misses)) in
  (* leg 3: three refreezes race the clients; the generation may only
     advance and not one request may fail *)
  let delta_rows =
    let delta = Qc_data.Synthetic.generate_delta { spec with seed = 103 } base 1_500 in
    Qc_data.Csv.to_string delta |> String.split_on_char '\n'
    |> (function _header :: body -> body | [] -> [])
    |> List.filter_map (fun line ->
           if String.length line = 0 then None
           else
             match List.rev (String.split_on_char ',' line) with
             | v :: rev_names -> Some (List.rev rev_names, float_of_string v)
             | [] -> None)
  in
  let n_refreezes = 3 in
  let chunk_len = (List.length delta_rows + n_refreezes - 1) / n_refreezes in
  let chunks =
    List.init n_refreezes (fun i ->
        List.filteri (fun j _ -> j / chunk_len = i) delta_rows)
  in
  let g0 = S.generation srv in
  let writer =
    Domain.spawn (fun () ->
        List.iter
          (fun chunk ->
            ignore (W.insert_rows w chunk);
            let task = W.seal w in
            ignore (W.complete_refreeze w task (W.run_refreeze task)))
          chunks)
  in
  let rr = shoot ~clients:8 ~duration_s:(duration *. 2.0) () in
  Domain.join writer;
  (* the watcher polls; give it a moment to publish the last generation *)
  let rec await_gen tries =
    if S.generation srv >= g0 + n_refreezes || tries = 0 then S.generation srv
    else begin
      Unix.sleepf 0.05;
      await_gen (tries - 1)
    end
  in
  let g1 = await_gen 100 in
  let t =
    Tf.create
      ~title:
        (Printf.sprintf
           "qct serve under TCP load - base n=%d, %d distinct point queries, %.1fs legs"
           base_rows (Array.length lines) duration)
      ~columns:
        [ "workload"; "clients"; "req/s"; "p50 ms"; "p99 ms"; "ok"; "failed"; "note" ]
  in
  let failed r = r.L.lg_errors + r.L.lg_protocol_errors + r.L.lg_closed_early in
  let row name clients r note =
    Tf.add_row t
      [
        name; Tf.cell_i clients;
        Printf.sprintf "%.0f" r.L.lg_rps;
        Printf.sprintf "%.3f" r.L.lg_p50_ms;
        Printf.sprintf "%.3f" r.L.lg_p99_ms;
        Tf.cell_i r.L.lg_ok; Tf.cell_i (failed r); note;
      ]
  in
  List.iter (fun (clients, r) -> row "uniform" clients r "") sweep;
  row "zipf 1.2" 8 zr (Printf.sprintf "cache hit rate %.3f" hit_rate);
  row "refreeze race" 8 rr
    (Printf.sprintf "generation %d -> %d%s" g0 g1
       (if g1 < g0 + n_refreezes then " STALLED" else ""));
  let leg name clients r extra =
    ( name,
      Jx.Obj
        ([
           ("clients", Jx.Int clients);
           ("sent", Jx.Int r.L.lg_sent);
           ("ok", Jx.Int r.L.lg_ok);
           ("errors", Jx.Int r.L.lg_errors);
           ("overloaded", Jx.Int r.L.lg_overloaded);
           ("protocol_errors", Jx.Int r.L.lg_protocol_errors);
           ("closed_early", Jx.Int r.L.lg_closed_early);
           ("rps", Jx.Float r.L.lg_rps);
           ("p50_ms", Jx.Float r.L.lg_p50_ms);
           ("p90_ms", Jx.Float r.L.lg_p90_ms);
           ("p99_ms", Jx.Float r.L.lg_p99_ms);
         ]
        @ extra) )
  in
  record "serve"
    (Jx.Obj
       ([
          ("base_rows", Jx.Int base_rows);
          ("distinct_queries", Jx.Int (Array.length lines));
          ("workers", Jx.Int config.S.workers);
          ("cache_capacity", Jx.Int config.S.cache_capacity);
        ]
       @ List.map (fun (c, r) -> leg (Printf.sprintf "uniform_%d" c) c r []) sweep
       @ [
           leg "zipf" 8 zr
             [
               ("zipf_s", Jx.Float 1.2);
               ("cache_hits", Jx.Int z_hits);
               ("cache_misses", Jx.Int z_misses);
               ("cache_hit_rate", Jx.Float hit_rate);
             ];
           leg "refreeze_race" 8 rr
             [
               ("refreezes", Jx.Int n_refreezes);
               ("generation_before", Jx.Int g0);
               ("generation_after", Jx.Int g1);
               ("generation_advanced", Jx.Bool (g1 >= g0 + n_refreezes));
               ("failed_requests", Jx.Int (failed rr));
             ];
         ]))
  ;
  Tf.note t
    "failed = error + protocol-error + early-close responses; the refreeze-race leg \
     demands 0 while a writer domain swaps generations under the server";
  emit t

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig12a", fig12a);
    ("fig12b", fig12b);
    ("fig12c", fig12c);
    ("fig12d", fig12d);
    ("fig13a", fig13a);
    ("fig13b", fig13b);
    ("fig13c", fig13c);
    ("fig13d", fig13d);
    ("packed", packed_fig13);
    ("wal", wal_overhead);
    ("batch", batch_scaling);
    ("trace", trace_overhead);
    ("shard", shard_scaling);
    ("ingest", ingest_streaming);
    ("serve", serve_load);
    ("fig14a", fig14a);
    ("fig14b", fig14b);
    ("fig14c", fig14c);
    ("fig15", fig15);
    ("abl-order", abl_order);
    ("abl-dwarf", abl_dwarf);
    ("abl-links", abl_links);
    ("micro", micro);
  ]

let log_level_of_string = function
  | "quiet" -> Some None
  | "error" -> Some (Some Logs.Error)
  | "warning" -> Some (Some Logs.Warning)
  | "info" -> Some (Some Logs.Info)
  | "debug" -> Some (Some Logs.Debug)
  | _ -> None

let () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let selected = ref [] in
  let json_out_set = ref false in
  let rec parse = function
    | [] -> ()
    | "--scale" :: "full" :: rest ->
      scale := Full;
      parse rest
    | "--scale" :: "quick" :: rest ->
      scale := Quick;
      parse rest
    | "--out" :: dir :: rest ->
      csv_out_dir := Some dir;
      parse rest
    | "--json" :: path :: rest ->
      json_out := path;
      json_out_set := true;
      parse rest
    | "--packed" :: rest ->
      (* the PR2 comparison: packed vs mutable on the Figure 13 workloads,
         reported in BENCH_PR2.json unless --json overrides *)
      selected := "packed" :: !selected;
      if not !json_out_set then json_out := "BENCH_PR2.json";
      parse rest
    | "--wal" :: rest ->
      (* the PR4 durability-cost report: journaled vs detached maintenance,
         replay and checkpoint timings, in BENCH_PR4.json unless --json
         overrides *)
      selected := "wal" :: !selected;
      if not !json_out_set then json_out := "BENCH_PR4.json";
      parse rest
    | "--batch" :: rest ->
      (* the PR5 scaling report: the parallel batch executor at 1/2/4
         domains with a bit-identity parity check, in BENCH_PR5.json unless
         --json overrides *)
      selected := "batch" :: !selected;
      if not !json_out_set then json_out := "BENCH_PR5.json";
      parse rest
    | "--trace" :: rest ->
      (* the PR6 instrumentation-cost report: run_one vs run_one_plain with
         observability off and with the tracer on, in BENCH_PR6.json unless
         --json overrides *)
      selected := "trace" :: !selected;
      if not !json_out_set then json_out := "BENCH_PR6.json";
      parse rest
    | "--ingest" :: rest ->
      (* the PR9 robustness report: sustained streaming-insert throughput
         with a concurrent reader domain on the MVCC snapshot server, and
         the zero-reader-downtime refreeze metric, in BENCH_PR9.json unless
         --json overrides *)
      selected := "ingest" :: !selected;
      if not !json_out_set then json_out := "BENCH_PR9.json";
      parse rest
    | "--serve" :: rest ->
      (* the PR10 serving report: qct serve throughput/tail latency across
         client counts, result-cache hit rate on a Zipf workload, and the
         zero-failed-requests refreeze race, in BENCH_PR10.json unless
         --json overrides *)
      selected := "serve" :: !selected;
      if not !json_out_set then json_out := "BENCH_PR10.json";
      parse rest
    | "--shard" :: rest ->
      (* the PR7 scaling report: 4-shard builds at 1/2/4 domains and
         scatter-gather query parity against the single-tree baseline, in
         BENCH_PR7.json unless --json overrides *)
      selected := "shard" :: !selected;
      if not !json_out_set then json_out := "BENCH_PR7.json";
      parse rest
    | "--log-level" :: level :: rest -> (
      match log_level_of_string level with
      | Some l ->
        Logs.set_level l;
        parse rest
      | None ->
        Printf.eprintf "unknown log level %S (quiet|error|warning|info|debug)\n" level;
        exit 2)
    | name :: rest ->
      if List.mem_assoc name experiments then selected := name :: !selected
      else begin
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 2
      end;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let to_run =
    match !selected with
    | [] -> experiments
    | names -> List.filter (fun (n, _) -> List.mem n names) experiments
  in
  Printf.printf "QC-tree benchmark suite - scale: %s, experiments: %s\n"
    (match !scale with Quick -> "quick" | Full -> "full")
    (String.concat " " (List.map fst to_run));
  let durations = ref [] in
  List.iter
    (fun (name, f) ->
      let dt = Qc_util.Timer.time_s f in
      durations := (name, dt) :: !durations;
      Printf.printf "[%s finished in %.1fs]\n%!" name dt)
    to_run;
  let report =
    Jx.Obj
      [
        ("schema_version", Jx.Int 1);
        ("suite", Jx.String "qc-trees bench");
        ("scale", Jx.String (match !scale with Quick -> "quick" | Full -> "full"));
        ( "experiments",
          Jx.Obj
            (List.rev_map (fun (name, dt) -> (name, Jx.Obj [ ("seconds", Jx.Float dt) ]))
               !durations) );
        ("tables", Jx.List (List.rev !json_tables));
        ("records", Jx.Obj (List.rev !json_records));
      ]
  in
  let oc = open_out !json_out in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (Jx.to_string_pretty report);
      output_char oc '\n');
  Printf.printf "wrote structured results to %s\n" !json_out
