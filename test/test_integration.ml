(* Cross-module integration tests: the warehouse lifecycle at moderate
   scale, long maintenance sequences, and three-way structure agreement. *)

open Qc_cube
module T = Qc_core.Qc_tree
module M = Qc_core.Maintenance

let point_opt t c = Result.to_option (Qc_core.Query.point_result t c)

let range_list t r = Result.get_ok (Qc_core.Query.range_result t r)

(* A warehouse goes through many rounds of mixed maintenance; after each
   round the tree must answer exactly like a fresh rebuild. *)
let test_maintenance_marathon () =
  let rng = Qc_util.Rng.create 2003 in
  let dims = 4 and card = 4 in
  let base = Helpers.random_table rng ~dims ~card ~rows:30 () in
  let tree = T.of_table base in
  let base = ref base in
  for round = 1 to 12 do
    (match round mod 3 with
    | 0 ->
      (* delete a few random rows *)
      let n = Table.n_rows !base in
      if n > 2 then begin
        let k = 1 + Qc_util.Rng.int rng (min 4 (n - 1)) in
        let idxs = Array.init n Fun.id in
        Qc_util.Rng.shuffle rng idxs;
        let delta = Table.sub !base (Array.to_list (Array.sub idxs 0 k)) in
        let nb, _ = M.delete_batch tree ~base:!base ~delta in
        base := nb
      end
    | 1 ->
      let delta =
        Helpers.random_table rng ~schema:(Table.schema !base) ~dims ~card
          ~rows:(1 + Qc_util.Rng.int rng 5) ()
      in
      ignore (M.insert_batch tree ~base:!base ~delta)
    | _ ->
      let delta =
        Helpers.random_table rng ~schema:(Table.schema !base) ~dims ~card
          ~rows:(1 + Qc_util.Rng.int rng 3) ()
      in
      ignore (M.insert_tuples tree ~base:!base ~delta));
    (match T.validate tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "round %d: invalid tree: %s" round e);
    let rebuilt = T.of_table !base in
    let ok = ref true in
    Helpers.iter_all_cells ~dims ~card (fun cell ->
        match (point_opt tree cell, point_opt rebuilt cell) with
        | None, None -> ()
        | Some a, Some b when Agg.approx_equal a b -> ()
        | _ -> ok := false);
    Alcotest.(check bool) (Printf.sprintf "round %d equivalent" round) true !ok
  done

(* QC-tree, Dwarf and the materialized cube agree on a moderately large
   synthetic workload, across point, range and iceberg access paths. *)
let test_three_way_agreement () =
  let spec =
    { Qc_data.Synthetic.default with rows = 5_000; dims = 5; cardinality = 12; seed = 99 }
  in
  let table = Qc_data.Synthetic.generate spec in
  let tree = T.of_table table in
  let dwarf = Qc_dwarf.Dwarf.build table in
  let cube = Full_cube.compute table in
  (* every materialized cell *)
  Full_cube.iter
    (fun cell truth ->
      (match point_opt tree cell with
      | Some a when Agg.approx_equal a truth -> ()
      | _ -> Alcotest.failf "tree wrong at %s" (Cell.to_string (Table.schema table) cell));
      match Qc_dwarf.Dwarf.point dwarf cell with
      | Some a when Agg.approx_equal a truth -> ()
      | _ -> Alcotest.failf "dwarf wrong at %s" (Cell.to_string (Table.schema table) cell))
    cube;
  (* range queries *)
  let ranges = Qc_data.Synthetic.random_range_queries ~seed:7 table 40 in
  List.iter
    (fun r ->
      let norm l =
        let cmp (c1, n1) (c2, n2) =
          let c = List.compare Int.compare c1 c2 in
          if c <> 0 then c else Int.compare n1 n2
        in
        List.sort cmp (List.map (fun (c, (a : Agg.t)) -> (Array.to_list c, a.count)) l)
      in
      Alcotest.(check bool) "range sets agree" true
        (norm (range_list tree r) = norm (Qc_dwarf.Dwarf.range dwarf r)))
    ranges

(* Serialization composes with maintenance: save, reload, keep maintaining,
   stay equivalent to a rebuild. *)
let test_persist_then_maintain () =
  let rng = Qc_util.Rng.create 31337 in
  let dims = 3 and card = 4 in
  let base = Helpers.random_table rng ~dims ~card ~rows:25 () in
  let tree = T.of_table base in
  let reloaded = Qc_core.Serial.of_string (Qc_core.Serial.to_string tree) in
  (* NOTE: the reloaded tree carries a reloaded schema; re-encode the delta
     against it (codes are preserved, so structural reuse is fine). *)
  let delta = Helpers.random_table rng ~schema:(Table.schema base) ~dims ~card ~rows:5 () in
  let base' = Table.copy base in
  ignore (M.insert_batch reloaded ~base:base' ~delta);
  let rebuilt = T.of_table base' in
  Alcotest.(check string) "identical after reload + insert" (T.canonical_string rebuilt)
    (T.canonical_string reloaded)

(* The quotient lattice stays consistent with the tree after maintenance:
   rebuilding the quotient from the updated base matches tree answers. *)
let test_quotient_after_maintenance () =
  let base = Helpers.sales_table () in
  let schema = Table.schema base in
  let tree = T.of_table base in
  let delta = Table.create schema in
  Table.add_row delta [ "S2"; "P2"; "f" ] 3.0;
  Table.add_row delta [ "S2"; "P3"; "f" ] 6.0;
  ignore (M.insert_batch tree ~base ~delta);
  let quotient = Qc_core.Quotient.of_table base in
  Array.iter
    (fun (cls : Qc_core.Quotient.cls) ->
      match point_opt tree cls.ub with
      | Some a ->
        Alcotest.(check Helpers.agg_testable)
          (Printf.sprintf "class %s" (Cell.to_string schema cls.ub))
          cls.agg a
      | None -> Alcotest.failf "class %s missing" (Cell.to_string schema cls.ub))
    (Qc_core.Quotient.classes quotient)

(* CSV -> build -> CLI-style workflow pieces hold together. *)
let test_csv_to_tree_pipeline () =
  (* Build the source table through [add_row] so dictionary codes are
     assigned in row order, exactly as a CSV reload assigns them; the two
     trees are then canonically identical. *)
  let spec = { Qc_data.Synthetic.default with rows = 300; dims = 3; cardinality = 6; seed = 4 } in
  let generated = Qc_data.Synthetic.generate spec in
  let gschema = Table.schema generated in
  let schema = Schema.create (List.init 3 (fun i -> Schema.dim_name gschema i)) in
  let table = Table.create schema in
  Table.iter
    (fun cell m ->
      Table.add_row table (List.init 3 (fun i -> Schema.decode_value gschema i cell.(i))) m)
    generated;
  let csv = Qc_data.Csv.to_string table in
  let reloaded = Qc_data.Csv.of_string csv in
  let t1 = T.of_table table in
  let t2 = T.of_table reloaded in
  Alcotest.(check int) "same classes" (T.n_classes t1) (T.n_classes t2);
  Alcotest.(check string) "same canonical tree" (T.canonical_string t1) (T.canonical_string t2)

let () =
  Alcotest.run "qc_integration"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "maintenance marathon" `Quick test_maintenance_marathon;
          Alcotest.test_case "persist then maintain" `Quick test_persist_then_maintain;
          Alcotest.test_case "quotient after maintenance" `Quick test_quotient_after_maintenance;
          Alcotest.test_case "csv pipeline" `Quick test_csv_to_tree_pipeline;
        ] );
      ( "agreement",
        [ Alcotest.test_case "tree = dwarf = cube at scale" `Slow test_three_way_agreement ] );
    ]
