open Qc_cube
module T = Qc_core.Qc_tree
module Q = Qc_core.Query

let point_opt t c = Result.to_option (Q.point_result t c)

let point_value_opt t f c = Result.to_option (Q.point_value_result t f c)

let range_list t r = Result.get_ok (Q.range_result t r)

(* ---------- Paper Example 5: point queries on the running example ---------- *)

let test_example5 () =
  let table = Helpers.sales_table () in
  let schema = Table.schema table in
  let tree = T.of_table table in
  let q vals = point_value_opt tree Agg.Avg (Cell.parse schema vals) in
  Alcotest.(check (option (float 1e-9))) "(S2,*,f) = 9" (Some 9.0) (q [ "S2"; "*"; "f" ]);
  Alcotest.(check (option (float 1e-9))) "(S2,*,s) = null" None (q [ "S2"; "*"; "s" ]);
  Alcotest.(check (option (float 1e-9))) "(*,P2,*) = 12" (Some 12.0) (q [ "*"; "P2"; "*" ]);
  Alcotest.(check (option (float 1e-9))) "(*,*,*) = 9" (Some 9.0) (q [ "*"; "*"; "*" ]);
  Alcotest.(check (option (float 1e-9))) "(*,P1,*) = 7.5" (Some 7.5) (q [ "*"; "P1"; "*" ])

(* ---------- Paper Example 6: range query ---------- *)

let test_example6 () =
  let table = Helpers.sales_table () in
  let schema = Table.schema table in
  let tree = T.of_table table in
  (* ({S1,S2}, {P1}, f) — S3/P3 of the paper don't exist in the dictionary,
     so the encodable equivalent range is used; only (S2,P1,f) matches. *)
  let store = Schema.dict schema 0 and product = Schema.dict schema 1 in
  let season = Schema.dict schema 2 in
  let range =
    [|
      [| Option.get (Qc_util.Dict.find store "S1"); Option.get (Qc_util.Dict.find store "S2") |];
      [| Option.get (Qc_util.Dict.find product "P1") |];
      [| Option.get (Qc_util.Dict.find season "f") |];
    |]
  in
  match range_list tree range with
  | [ (cell, agg) ] ->
    Alcotest.(check string) "cell" "(S2, P1, f)" (Cell.to_string schema cell);
    Alcotest.(check (float 1e-9)) "agg" 9.0 (Agg.value Agg.Avg agg)
  | results -> Alcotest.failf "expected 1 result, got %d" (List.length results)

(* ---------- Exhaustive point-query correctness ---------- *)

let prop_point_queries_exact =
  Helpers.qcheck_case ~count:150 ~name:"point query = cover aggregate for every cell"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      Helpers.check_point_queries_against_table table (point_opt tree))

let prop_range_equals_points =
  Helpers.qcheck_case ~count:100 ~name:"range query = union of its point queries"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      (* random range query *)
      let q =
        Array.init dims (fun _ ->
            match Qc_util.Rng.int rng 3 with
            | 0 -> [||]
            | 1 -> [| 1 + Qc_util.Rng.int rng card |]
            | _ ->
              let a = 1 + Qc_util.Rng.int rng card and b = 1 + Qc_util.Rng.int rng card in
              if a = b then [| a |] else [| min a b; max a b |])
      in
      let results = range_list tree q in
      let expected =
        List.filter_map
          (fun cell ->
            match point_opt tree cell with Some a -> Some (cell, a) | None -> None)
          (Q.range_of_cells tree q)
      in
      let norm l =
        let cmp (c1, n1, s1) (c2, n2, s2) =
        let c = List.compare Int.compare c1 c2 in
        if c <> 0 then c
        else
          let c = Int.compare n1 n2 in
          if c <> 0 then c else Float.compare s1 s2
      in
      List.sort cmp (List.map (fun (c, a) -> (Array.to_list c, a.Agg.count, a.Agg.sum)) l)
      in
      norm results = norm expected)

(* ---------- Iceberg queries ---------- *)

let prop_iceberg_complete =
  Helpers.qcheck_case ~count:80 ~name:"iceberg = classes above threshold"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let idx = Q.make_index tree Agg.Count in
      let threshold = float_of_int (1 + Qc_util.Rng.int rng 4) in
      let results = Q.iceberg idx ~threshold in
      (* equivalent scan over class nodes *)
      let expected = ref 0 in
      T.iter_classes
        (fun _ _ agg -> if Agg.value Agg.Count agg >= threshold then incr expected)
        tree;
      List.length results = !expected
      && List.for_all (fun (_, a) -> Agg.value Agg.Count a >= threshold) results)

let prop_iceberg_range_strategies_agree =
  Helpers.qcheck_case ~count:80 ~name:"constrained iceberg: filter and mark agree"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let idx = Q.make_index tree Agg.Sum in
      let q =
        Array.init dims (fun _ ->
            match Qc_util.Rng.int rng 3 with
            | 0 -> [||]
            | 1 -> [| 1 + Qc_util.Rng.int rng card |]
            | _ -> Array.init (min 2 card) (fun i -> i + 1))
      in
      let threshold = float_of_int (Qc_util.Rng.int rng 100) in
      let norm l =
        let cmp (c1, n1, s1) (c2, n2, s2) =
        let c = List.compare Int.compare c1 c2 in
        if c <> 0 then c
        else
          let c = Int.compare n1 n2 in
          if c <> 0 then c else Float.compare s1 s2
      in
      List.sort cmp (List.map (fun (c, (a : Agg.t)) -> (Array.to_list c, a.count, a.sum)) l)
      in
      norm (Q.iceberg_range ~strategy:`Filter tree idx q ~threshold)
      = norm (Q.iceberg_range ~strategy:`Mark tree idx q ~threshold))

(* ---------- Against the materialized full cube on a bigger instance ---------- *)

let test_against_full_cube_bigger () =
  let spec = { Qc_data.Synthetic.default with rows = 2000; dims = 4; cardinality = 8; seed = 5 } in
  let table = Qc_data.Synthetic.generate spec in
  let tree = T.of_table table in
  let cube = Full_cube.compute table in
  (* every materialized cell answers correctly *)
  let checked = ref 0 in
  Full_cube.iter
    (fun cell truth ->
      incr checked;
      match point_opt tree cell with
      | Some a when Agg.approx_equal a truth -> ()
      | Some a -> Alcotest.failf "cell wrong: %a vs %a" Agg.pp a Agg.pp truth
      | None -> Alcotest.fail "cell missing")
    cube;
  Alcotest.(check bool) "covered many cells" true (!checked > 1000);
  (* spot-check emptiness: mutate existing cells out of range *)
  let rng = Qc_util.Rng.create 99 in
  for _ = 1 to 200 do
    let cell = Array.init 4 (fun _ -> 1 + Qc_util.Rng.int rng 8) in
    let truth = Table.cover_agg table cell in
    match point_opt tree cell with
    | None -> Alcotest.(check int) "truly empty" 0 truth.Agg.count
    | Some a -> Alcotest.(check Helpers.agg_testable) "truly present" truth a
  done

let prop_node_accesses_bounded =
  Helpers.qcheck_case ~count:80 ~name:"point queries touch at most path-length many nodes"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let ok = ref true in
      Helpers.iter_all_cells ~dims ~card (fun cell ->
          let acc = Q.node_accesses tree cell in
          if acc < 1 || acc > T.n_nodes tree then ok := false;
          (* a base tuple's path has at most dims+1 nodes and cannot need
             hops beyond one per dimension *)
          if Cell.is_base cell && Option.is_some (point_opt tree cell) && acc > (2 * dims) + 1 then
            ok := false);
      !ok)

let test_locate_returns_class_ub () =
  let table = Helpers.sales_table () in
  let schema = Table.schema table in
  let tree = T.of_table table in
  (* (S2,*,f) lies in class C3 whose upper bound is (S2,P1,f). *)
  match Q.locate tree (Cell.parse schema [ "S2"; "*"; "f" ]) with
  | Some node ->
    Alcotest.(check string) "class ub" "(S2, P1, f)"
      (Cell.to_string schema (T.node_cell tree node))
  | None -> Alcotest.fail "locate failed"

let () =
  Alcotest.run "qc_query"
    [
      ( "paper examples",
        [
          Alcotest.test_case "Example 5 (point)" `Quick test_example5;
          Alcotest.test_case "Example 6 (range)" `Quick test_example6;
          Alcotest.test_case "locate = class upper bound" `Quick test_locate_returns_class_ub;
        ] );
      ( "properties",
        [
          prop_point_queries_exact;
          prop_range_equals_points;
          prop_iceberg_complete;
          prop_iceberg_range_strategies_agree;
          prop_node_accesses_bounded;
        ] );
      ( "scale",
        [ Alcotest.test_case "against materialized cube" `Quick test_against_full_cube_bigger ] );
    ]
