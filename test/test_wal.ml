(* Journal codec, failpoint and durable-write unit tests.

   The codec negatives pin the corruption taxonomy the recovery path
   dispatches on: a torn tail (truncation, bad CRC) must be distinguishable
   from damage no crash can produce (bad header, unknown tag, malformed
   CRC-valid payload), because the first is silently discarded and the
   second raises.  The in-process failpoint tests cover [Raise] arming and
   the atomicity of [Qc_util.Durable]; [Crash]/[Torn] kill the process and
   are exercised by test_crash. *)

module Wal = Qc_core.Wal
module FP = Qc_util.Failpoint
module D = Qc_util.Durable

let record ?(generation = 3) op rows = { Wal.generation; op; rows }

let sample_rows =
  [
    ([ "a"; "b" ], 1.5);
    ([ "x,y"; "\"quoted\"" ], -0.0);
    ([ ""; "new\nline" ], Float.max_float);
    ([ "utf\xc3\xa9"; "b" ], Float.neg_infinity);
    ([ "a"; "b" ], Float.nan);
  ]

(* Round trips are bit-exact on measures, so equality is on raw IEEE-754
   bits (approx-equality would choke on nan and -0.). *)
let same_rows a b =
  List.equal
    (fun (va, ma) (vb, mb) ->
      List.equal String.equal va vb && Int64.equal (Int64.bits_of_float ma) (Int64.bits_of_float mb))
    a b

let frame_at data pos =
  match Wal.decode_frame data ~pos with
  | Ok (r, next) -> (r, next)
  | Error c -> Alcotest.failf "decode failed: %s" (Wal.corruption_to_string c)

let test_roundtrip () =
  List.iter
    (fun op ->
      let r = record op sample_rows in
      let data = Wal.header ^ Wal.encode r in
      let got, next = frame_at data (String.length Wal.header) in
      Alcotest.(check int) "generation" 3 got.Wal.generation;
      Alcotest.(check bool) "op" true (got.Wal.op = r.Wal.op);
      Alcotest.(check bool) "rows" true (same_rows r.Wal.rows got.Wal.rows);
      Alcotest.(check int) "consumed to end" (String.length data) next)
    [ Wal.Insert; Wal.Delete ]

let scan_ok data =
  match Wal.scan data with
  | Ok s -> s
  | Error c -> Alcotest.failf "scan failed: %s" (Wal.corruption_to_string c)

let test_scan_clean () =
  let r1 = record ~generation:1 Wal.Insert [ ([ "a"; "b" ], 1.0) ] in
  let r2 = record ~generation:2 Wal.Delete [ ([ "c"; "d" ], 2.0); ([ "e"; "f" ], 3.0) ] in
  let data = Wal.header ^ Wal.encode r1 ^ Wal.encode r2 in
  let s = scan_ok data in
  Alcotest.(check int) "two records" 2 (List.length s.Wal.records);
  Alcotest.(check int) "all consumed" (String.length data) s.Wal.consumed;
  Alcotest.(check bool) "no torn tail" true (Option.is_none s.Wal.torn);
  Alcotest.(check (list int)) "generations in append order" [ 1; 2 ]
    (List.map (fun (r : Wal.record) -> r.Wal.generation) s.Wal.records);
  let empty = scan_ok Wal.header in
  Alcotest.(check int) "empty journal" 0 (List.length empty.Wal.records)

(* A crash mid-append truncates the file: the tail must come back as a
   torn suffix, with everything before it intact. *)
let test_torn_truncated () =
  let r1 = record Wal.Insert [ ([ "a"; "b" ], 1.0) ] in
  let r2 = record Wal.Delete [ ([ "c"; "d" ], 2.0) ] in
  let f2 = Wal.encode r2 in
  let prefix = Wal.header ^ Wal.encode r1 in
  for cut = 1 to String.length f2 - 1 do
    let data = prefix ^ String.sub f2 0 cut in
    let s = scan_ok data in
    Alcotest.(check int) "first record survives" 1 (List.length s.Wal.records);
    Alcotest.(check int) "valid prefix ends before the tear" (String.length prefix) s.Wal.consumed;
    match s.Wal.torn with
    | Some (off, (Wal.Truncated_frame _ | Wal.Bad_crc _)) ->
      Alcotest.(check int) "tear located" (String.length prefix) off
    | Some (_, c) -> Alcotest.failf "unexpected corruption class: %s" (Wal.corruption_to_string c)
    | None -> Alcotest.fail "tear not detected"
  done

let flip data i =
  let b = Bytes.of_string data in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  Bytes.to_string b

let test_torn_bad_crc () =
  let r = record Wal.Insert [ ([ "a"; "b" ], 1.0) ] in
  let frame = Wal.encode r in
  (* flip a payload byte (skip the length varint at offset 0) *)
  let data = Wal.header ^ flip frame 2 in
  let s = scan_ok data in
  Alcotest.(check int) "record rejected" 0 (List.length s.Wal.records);
  (match s.Wal.torn with
  | Some (off, Wal.Bad_crc _) -> Alcotest.(check int) "at the frame start" (String.length Wal.header) off
  | Some (_, c) -> Alcotest.failf "wanted Bad_crc, got %s" (Wal.corruption_to_string c)
  | None -> Alcotest.fail "corruption not detected");
  (* garbage after a valid frame: the valid prefix survives *)
  let data = Wal.header ^ frame ^ "garbage" in
  let s = scan_ok data in
  Alcotest.(check int) "valid prefix survives" 1 (List.length s.Wal.records);
  Alcotest.(check bool) "tail reported" true (Option.is_some s.Wal.torn)

let check_hard_error name data expected =
  match Wal.scan data with
  | Ok _ -> Alcotest.failf "%s: scan accepted damaged input" name
  | Error c ->
    let matches =
      match (c, expected) with
      | Wal.Bad_header _, `Bad_header
      | Wal.Unknown_tag _, `Unknown_tag
      | Wal.Bad_payload _, `Bad_payload ->
        true
      | _ -> false
    in
    if not matches then
      Alcotest.failf "%s: wrong corruption class: %s" name (Wal.corruption_to_string c)

(* LEB128 + framing helpers for hand-crafting damaged frames. *)
let add_uint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_uint8 buf n
    else begin
      Buffer.add_uint8 buf (0x80 lor (n land 0x7F));
      go (n lsr 7)
    end
  in
  go n

let frame_of_payload payload =
  let buf = Buffer.create 64 in
  add_uint buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.add_int32_le buf (Int32.of_int (Qc_util.Crc32.string payload));
  Buffer.contents buf

let test_hard_errors () =
  check_hard_error "empty file" "" `Bad_header;
  check_hard_error "bad magic" "NOPE\x01rest" `Bad_header;
  check_hard_error "bad version" "QCWL\x02" `Bad_header;
  check_hard_error "short header" "QCW" `Bad_header;
  (* CRC-valid frame with an unknown tag *)
  let payload = Buffer.create 8 in
  add_uint payload 1 (* generation *);
  Buffer.add_uint8 payload 9 (* no such op *);
  check_hard_error "unknown tag"
    (Wal.header ^ frame_of_payload (Buffer.contents payload))
    `Unknown_tag;
  (* CRC-valid frame with trailing payload bytes *)
  let r = record Wal.Insert [ ([ "a"; "b" ], 1.0) ] in
  let good = Wal.encode r in
  let _, len = frame_at (Wal.header ^ good) (String.length Wal.header) in
  ignore len;
  let payload_with_junk =
    (* re-extract the payload, append junk, re-frame with a fresh CRC *)
    let buf = Buffer.create 8 in
    add_uint buf r.Wal.generation;
    Buffer.add_uint8 buf 1;
    add_uint buf 2;
    add_uint buf 0;
    (* n_rows = 0, then junk *)
    Buffer.add_string buf "\x00";
    Buffer.contents buf
  in
  check_hard_error "trailing payload bytes" (Wal.header ^ frame_of_payload payload_with_junk)
    `Bad_payload;
  (* an empty batch encodes n_dims = 0, which no valid record carries *)
  check_hard_error "zero dimensions"
    (Wal.header ^ Wal.encode (record Wal.Insert []))
    `Bad_payload

(* ---------- failpoint arming ---------- *)

let mode = Alcotest.testable (fun fmt (m : FP.mode) ->
    Format.pp_print_string fmt
      (match m with
      | FP.Raise -> "raise"
      | FP.Crash -> "crash"
      | FP.Torn -> "torn"
      | FP.Sleep ms -> Printf.sprintf "sleep-%d" ms))
    (fun a b -> a = b)

(* ---------- Segment naming and spans ---------- *)

let test_segment_naming () =
  Alcotest.(check string) "fixed width" "wal-000007.log" (Wal.segment_name 7);
  Alcotest.(check string) "wide sequences keep every digit" "wal-1234567.log"
    (Wal.segment_name 1234567);
  Alcotest.(check (option int)) "roundtrip" (Some 7) (Wal.segment_seq (Wal.segment_name 7));
  Alcotest.(check (option int)) "wide roundtrip" (Some 1234567)
    (Wal.segment_seq (Wal.segment_name 1234567));
  List.iter
    (fun name ->
      Alcotest.(check (option int)) (name ^ " is not a segment") None (Wal.segment_seq name))
    [ "wal.log"; "wal-.log"; "wal-12x3.log"; "wal-000001.tmp"; "base.csv"; "wal-000001.log.tmp" ]

let test_generation_span () =
  Alcotest.(check (option (pair int int))) "no records" None (Wal.generation_span []);
  let r g = record ~generation:g Wal.Insert [ ([ "a"; "b" ], 1.0) ] in
  Alcotest.(check (option (pair int int))) "single" (Some (4, 4)) (Wal.generation_span [ r 4 ]);
  Alcotest.(check (option (pair int int))) "unordered span" (Some (2, 9))
    (Wal.generation_span [ r 5; r 2; r 9; r 3 ])

let test_failpoint_parse () =
  (match FP.parse "a.b:crash" with
  | Ok [ ("a.b", 1, FP.Crash) ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "simple spec");
  (match FP.parse "x@3:torn,y:raise" with
  | Ok [ ("x", 3, FP.Torn); ("y", 1, FP.Raise) ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "two items with hit count");
  let rejected spec = match FP.parse spec with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "zero hit" true (rejected "x@0:crash");
  Alcotest.(check bool) "bad hit" true (rejected "x@no:crash");
  Alcotest.(check bool) "bad mode" true (rejected "x:boom");
  Alcotest.(check bool) "no mode" true (rejected "x");
  Alcotest.(check bool) "empty label" true (rejected "@2:crash");
  Alcotest.(check bool) "empty spec ok" true (match FP.parse "" with Ok [] -> true | _ -> false);
  (match FP.parse "slow.disk@2:sleep-250" with
  | Ok [ ("slow.disk", 2, FP.Sleep 250) ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "sleep mode with duration");
  Alcotest.(check bool) "sleep without duration" true (rejected "x:sleep-");
  Alcotest.(check bool) "negative sleep" true (rejected "x:sleep--5")

let test_failpoint_hits () =
  Fun.protect ~finally:FP.reset @@ fun () ->
  FP.register "test.site";
  Alcotest.(check bool) "registered labels are enumerable" true
    (List.exists (String.equal "test.site") (FP.registered ()));
  FP.set ~hits:3 "test.site" FP.Raise;
  Alcotest.(check (option mode)) "hit 1 passes" None (FP.check "test.site");
  Alcotest.(check (option mode)) "hit 2 passes" None (FP.check "test.site");
  Alcotest.(check (option mode)) "hit 3 fires" (Some FP.Raise) (FP.check "test.site");
  Alcotest.(check (option mode)) "disarmed after firing" None (FP.check "test.site");
  FP.set "test.site" FP.Raise;
  (try
     FP.hit "test.site";
     Alcotest.fail "hit did not raise"
   with FP.Injected l -> Alcotest.(check string) "label carried" "test.site" l);
  FP.set "test.site" FP.Raise;
  FP.unset "test.site";
  Alcotest.(check (option mode)) "unset disarms" None (FP.check "test.site")

(* ---------- durable writes ---------- *)

let tmpdir () =
  let d = Filename.temp_file "qcdur" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let in_tmpdir f =
  let d = tmpdir () in
  Fun.protect ~finally:(fun () -> FP.reset (); rm_rf d) (fun () -> f d)

let read path = D.read_file path

let test_durable_atomic () =
  in_tmpdir @@ fun d ->
  let target = Filename.concat d "file" in
  D.write_file target "v1";
  Alcotest.(check string) "write_file roundtrip" "v1" (read target);
  (* staging alone must not touch the target *)
  D.write_tmp target "v2";
  Alcotest.(check string) "target untouched by write_tmp" "v1" (read target);
  D.commit_tmp target;
  Alcotest.(check string) "commit publishes" "v2" (read target);
  Alcotest.(check bool) "temporary consumed" false (Sys.file_exists (target ^ ".tmp"))

let expect_injected label f =
  try
    f ();
    Alcotest.failf "site %s did not fire" label
  with FP.Injected l -> Alcotest.(check string) "label" label l

let test_durable_failpoints () =
  in_tmpdir @@ fun d ->
  let target = Filename.concat d "file" in
  D.write_file target "old";
  (* a simulated I/O error at each site leaves the target intact *)
  FP.set "t.tmp-write" FP.Raise;
  expect_injected "t.tmp-write" (fun () -> D.write_file ~fp:"t" target "new");
  Alcotest.(check string) "tmp-write failure" "old" (read target);
  FP.set "t.fsync" FP.Raise;
  expect_injected "t.fsync" (fun () -> D.write_file ~fp:"t" target "new");
  Alcotest.(check string) "fsync failure" "old" (read target);
  FP.set "t.rename" FP.Raise;
  expect_injected "t.rename" (fun () -> D.write_file ~fp:"t" target "new");
  Alcotest.(check string) "rename failure" "old" (read target);
  (* with nothing armed the same call succeeds *)
  D.write_file ~fp:"t" target "new";
  Alcotest.(check string) "clean retry" "new" (read target)

let test_durable_append () =
  in_tmpdir @@ fun d ->
  let path = Filename.concat d "log" in
  let oc = D.open_append path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      D.append ~fp:"ta" oc "one";
      (* a Raise at the append site fires before any byte is written *)
      FP.set "ta.append" FP.Raise;
      expect_injected "ta.append" (fun () -> D.append ~fp:"ta" oc "two");
      D.append ~fp:"ta" oc "three");
  Alcotest.(check string) "rejected frame left no bytes" "onethree" (read path)

let () =
  Alcotest.run "qc_wal"
    [
      ( "codec",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "scan clean journals" `Quick test_scan_clean;
          Alcotest.test_case "torn tail: truncation" `Quick test_torn_truncated;
          Alcotest.test_case "torn tail: bad crc" `Quick test_torn_bad_crc;
          Alcotest.test_case "hard corruption classes" `Quick test_hard_errors;
          Alcotest.test_case "segment naming" `Quick test_segment_naming;
          Alcotest.test_case "generation span" `Quick test_generation_span;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "spec parsing" `Quick test_failpoint_parse;
          Alcotest.test_case "arming and hit counting" `Quick test_failpoint_hits;
        ] );
      ( "durable",
        [
          Alcotest.test_case "atomic write protocol" `Quick test_durable_atomic;
          Alcotest.test_case "injected faults leave old content" `Quick test_durable_failpoints;
          Alcotest.test_case "append failure writes nothing" `Quick test_durable_append;
        ] );
    ]
