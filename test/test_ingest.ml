(* Streaming ingestion: bounded-queue semantics, poison quarantine,
   backpressure policies, the seal/run/complete refreeze protocol, and a
   generation-MVCC property that interleaves ingest batches with point and
   range queries answered from the published snapshot, checking every
   answer against the Full_cube oracle for the generation served — with
   random Raise faults at the refreeze failpoints along the way. *)

open Qc_cube
module W = Qc_warehouse.Warehouse
module I = Qc_warehouse.Ingest
module FP = Qc_util.Failpoint
module Q = Qc_core.Query

let point_packed_opt p c = Result.to_option (Q.point_result_packed p c)

let range_packed_list p r = Result.get_ok (Q.range_result_packed p r)

let fresh_dir () =
  let dir = Filename.temp_file "qcing" "" in
  Sys.remove dir;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Every test that arms failpoints or touches disk cleans up both. *)
let with_dir f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      FP.reset ();
      if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Run the ingest engine over a finite stream of literal lines. *)
let run_lines ?server ?on_publish ~config w lines =
  let path = Filename.temp_file "qcstream" ".csv" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> I.run ~config ?server ?on_publish w ~source:(I.Channel ic)))

(* ---------- Bounded queue ---------- *)

let test_bq_basics () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Ingest.Bq.create: capacity must be positive")
    (fun () -> ignore (I.Bq.create 0));
  let q = I.Bq.create 3 in
  Alcotest.(check bool) "push 1" true (I.Bq.push q 1);
  Alcotest.(check bool) "push 2" true (I.Bq.push q 2);
  Alcotest.(check bool) "push 3" true (I.Bq.push q 3);
  Alcotest.(check bool) "full" false (I.Bq.push q 4);
  Alcotest.(check int) "depth" 3 (I.Bq.depth q);
  Alcotest.(check (list int)) "arrival order, capped at max"
    [ 1; 2 ] (I.Bq.pop_many q ~max:2 ~timeout_s:0.1);
  Alcotest.(check (list int)) "remainder" [ 3 ] (I.Bq.pop_many q ~max:10 ~timeout_s:0.05);
  Alcotest.(check (list int)) "timeout on empty" [] (I.Bq.pop_many q ~max:4 ~timeout_s:0.01);
  Alcotest.check_raises "bad max" (Invalid_argument "Ingest.Bq.pop_many: max must be positive")
    (fun () -> ignore (I.Bq.pop_many q ~max:0 ~timeout_s:0.01))

let test_bq_close () =
  let q = I.Bq.create 2 in
  ignore (I.Bq.push q "a");
  I.Bq.close q;
  Alcotest.(check bool) "closed" true (I.Bq.is_closed q);
  Alcotest.(check bool) "push after close" false (I.Bq.push q "b");
  Alcotest.(check bool) "push_wait after close" false (I.Bq.push_wait q "b");
  (* a closed queue still drains what it holds *)
  Alcotest.(check (list string)) "drain" [ "a" ] (I.Bq.pop_many q ~max:5 ~timeout_s:0.1);
  Alcotest.(check (list string)) "drained and closed" [] (I.Bq.pop_many q ~max:5 ~timeout_s:0.1)

let test_bq_push_wait_unblocks () =
  (* a producer blocked on a full queue resumes when the consumer pops *)
  let q = I.Bq.create 1 in
  ignore (I.Bq.push q 0);
  let producer = Domain.spawn (fun () -> List.map (I.Bq.push_wait q) [ 1; 2; 3 ]) in
  let got = ref [] in
  while List.length !got < 4 do
    got := !got @ I.Bq.pop_many q ~max:2 ~timeout_s:0.5
  done;
  Alcotest.(check (list bool)) "all pushes landed" [ true; true; true ] (Domain.join producer);
  Alcotest.(check (list int)) "order preserved" [ 0; 1; 2; 3 ] !got

(* ---------- Line parsing ---------- *)

let parse_ok = Alcotest.(result (pair (list string) (float 1e-9)) string)

let test_parse_line () =
  Alcotest.check parse_ok "plain" (Ok ([ "S1"; "P2" ], 4.5)) (I.parse_line ~n_dims:2 "S1,P2,4.5");
  Alcotest.check parse_ok "fields are trimmed"
    (Ok ([ "S1"; "P 2" ], -3.0))
    (I.parse_line ~n_dims:2 " S1 , P 2 , -3.0 ");
  (match I.parse_line ~n_dims:2 "S1,P2" with
  | Error reason ->
    Alcotest.(check bool) "arity reason names counts" true
      (String.length reason > 0 && reason <> "")
  | Ok _ -> Alcotest.fail "short line accepted");
  (match I.parse_line ~n_dims:2 "S1,P2,abc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad measure accepted");
  match I.parse_line ~n_dims:2 "S1,P2,nan" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-finite measure accepted"

(* ---------- Refreeze protocol units ---------- *)

let test_sealed_insert_rows_buffering () =
  with_dir (fun dir ->
      let w = W.create (Helpers.sales_table ()) in
      W.save w dir;
      let schema = W.schema w in
      let before = W.query w (Cell.parse schema [ "*"; "*"; "*" ]) in
      let task = W.seal w in
      Alcotest.(check bool) "sealed" true (W.sealed w);
      (* journaled and buffered, but invisible until complete_refreeze *)
      let stats = W.insert_rows w [ ([ "S9"; "P9"; "w" ], 100.0) ] in
      Alcotest.(check int) "no in-place update while sealed" 0
        (stats.Qc_core.Maintenance.updated + stats.carved + stats.fresh + stats.located);
      Alcotest.(check Helpers.agg_option) "pre-seal answers while sealed" before
        (W.query w (Cell.parse schema [ "*"; "*"; "*" ]));
      let res = W.run_refreeze task in
      let oc = W.complete_refreeze w task res in
      Alcotest.(check bool) "committed" true oc.W.rf_committed;
      Alcotest.(check int) "adopted the target generation" (W.refreeze_target task) oc.W.rf_generation;
      Alcotest.(check bool) "unsealed" false (W.sealed w);
      Alcotest.(check bool) "frozen image published" true (Option.is_some oc.W.rf_packed);
      (* the buffered row is applied on completion *)
      Alcotest.(check int) "rows" 4 (Table.n_rows (W.table w));
      Alcotest.(check (result unit string)) "invariant" (Ok ()) (W.self_check w);
      (* and survives a reopen: the journal carried it *)
      let w' = W.open_dir dir in
      Alcotest.(check int) "rows after reopen" 4 (Table.n_rows (W.table w'));
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w'))

let test_failed_refreeze_never_reuses_stamp () =
  with_dir (fun dir ->
      let w = W.create (Helpers.sales_table ()) in
      W.save w dir;
      ignore (W.insert_rows w [ ([ "S4"; "P1"; "s" ], 1.0) ]);
      let task1 = W.seal w in
      let g1 = W.refreeze_target task1 in
      (* the attempt dies before doing anything; its stamp is burned *)
      let oc1 = W.complete_refreeze w task1 (Error (W.Io "injected")) in
      Alcotest.(check bool) "failed attempt does not commit" false oc1.W.rf_committed;
      Alcotest.(check bool) "degraded but unsealed" false (W.sealed w);
      ignore (W.insert_rows w [ ([ "S4"; "P2"; "s" ], 2.0) ]);
      let task2 = W.seal w in
      let g2 = W.refreeze_target task2 in
      Alcotest.(check bool) "burned stamp is never reused" true (g2 > g1);
      let oc2 = W.complete_refreeze w task2 (W.run_refreeze task2) in
      Alcotest.(check bool) "retry commits" true oc2.W.rf_committed;
      Alcotest.(check int) "committed generation skips the burned stamp" g2
        (W.checkpoint_generation w);
      let w' = W.open_dir dir in
      Alcotest.(check int) "rows after reopen" 5 (Table.n_rows (W.table w'));
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w'))

(* ---------- Streams end to end ---------- *)

let sales_lines n = List.init n (fun i ->
    Printf.sprintf "S%d,P%d,%s,%d.5" (i mod 3) (i mod 4) (if i mod 2 = 0 then "s" else "f") i)

let test_ingest_basic_and_quarantine () =
  with_dir (fun dir ->
      let w = W.create (Helpers.sales_table ()) in
      W.save w dir;
      let lines =
        [ "S1,P1,s,4.0"; "only-one-field"; "S2,P2,f,oops"; ""; "S3,P3,w,inf"; "S1,P2,f,6.0" ]
      in
      let config = { I.default with batch_rows = 2; refreeze_rows = 1_000_000 } in
      let o = run_lines ~config w lines in
      Alcotest.(check int) "lines read (blank skipped)" 6 o.I.lines_read;
      Alcotest.(check int) "rows ingested" 2 o.I.rows_ingested;
      Alcotest.(check int) "quarantined" 3 o.I.quarantined;
      Alcotest.(check int) "nothing dropped" 0 (o.I.dropped + o.I.spilled);
      let quarantined = read_lines (Filename.concat dir ".quarantine") in
      Alcotest.(check int) "quarantine lines" 3 (List.length quarantined);
      List.iter2
        (fun lineno line ->
          Alcotest.(check bool)
            (Printf.sprintf "quarantine records line number %d" lineno)
            true
            (String.starts_with ~prefix:(Printf.sprintf "line %d: " lineno) line))
        [ 2; 3; 5 ] quarantined;
      let w' = W.open_dir dir in
      Alcotest.(check int) "rows survive reopen" 5 (Table.n_rows (W.table w'));
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w'))

let test_ingest_refreeze_publishes_monotonic_generations () =
  with_dir (fun dir ->
      let w = W.create (Helpers.sales_table ()) in
      W.save w dir;
      let server = I.Snapshot.make ~generation:(W.checkpoint_generation w) (W.packed w) in
      let published = ref [] in
      let config = { I.default with batch_rows = 8; refreeze_rows = 60; backoff_base_s = 0.01 } in
      let o =
        run_lines ~config ~server
          ~on_publish:(fun s -> published := s.I.Snapshot.generation :: !published)
          w (sales_lines 300)
      in
      Alcotest.(check int) "all rows ingested" 300 o.I.rows_ingested;
      Alcotest.(check bool) "refroze in the background" true (o.I.refreezes >= 1);
      let gens = List.rev !published in
      Alcotest.(check int) "every commit published" o.I.refreezes (List.length gens);
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      Alcotest.(check bool) "published generations strictly increase" true (ascending gens);
      let snap = I.Snapshot.current server in
      Alcotest.(check bool) "server reached the last published generation" true
        (gens = [] || snap.I.Snapshot.generation = List.nth gens (List.length gens - 1));
      Alcotest.(check bool) "final checkpoint at or past the last publish" true
        (o.I.final_generation >= snap.I.Snapshot.generation);
      let w' = W.open_dir dir in
      Alcotest.(check int) "rows survive reopen" 303 (Table.n_rows (W.table w'));
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w'))

let test_ingest_drop_policy () =
  with_dir (fun dir ->
      let w = W.create (Helpers.sales_table ()) in
      W.save w dir;
      (* a one-slot queue against a file-speed producer guarantees overflow;
         stalling the first journal append keeps the consumer behind *)
      FP.set "wal.append" (FP.Sleep 100);
      let config =
        { I.default with queue_capacity = 1; policy = I.Drop; batch_rows = 4;
          refreeze_rows = 1_000_000 }
      in
      let o = run_lines ~config w (sales_lines 400) in
      Alcotest.(check bool) "overflow rows dropped" true (o.I.dropped > 0);
      Alcotest.(check int) "accounting balances" 400 (o.I.rows_ingested + o.I.dropped);
      let w' = W.open_dir dir in
      Alcotest.(check int) "exactly the undropped rows persist" (3 + o.I.rows_ingested)
        (Table.n_rows (W.table w'));
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w'))

let test_ingest_spill_policy_is_lossless () =
  with_dir (fun dir ->
      let w = W.create (Helpers.sales_table ()) in
      W.save w dir;
      FP.set "wal.append" (FP.Sleep 100);
      let config =
        { I.default with queue_capacity = 1; policy = I.Spill; batch_rows = 1;
          refreeze_rows = 1_000_000 }
      in
      let o = run_lines ~config w (sales_lines 400) in
      Alcotest.(check bool) "overflow took the spill detour" true (o.I.spilled > 0);
      Alcotest.(check int) "nothing dropped" 0 o.I.dropped;
      Alcotest.(check int) "lossless: every row lands" 400 o.I.rows_ingested;
      Alcotest.(check bool) "spill file removed after drain" false
        (Sys.file_exists (Filename.concat dir ".spill"));
      let w' = W.open_dir dir in
      Alcotest.(check int) "rows survive reopen" 403 (Table.n_rows (W.table w'));
      (* order preservation: the measure sum is the full-stream sum *)
      let expected =
        List.fold_left (fun acc i -> acc +. (float_of_int i +. 0.5)) (6.0 +. 12.0 +. 9.0)
          (List.init 400 Fun.id)
      in
      let schema = W.schema w' in
      (match W.query w' (Cell.parse schema [ "*"; "*"; "*" ]) with
      | Some a -> Alcotest.(check (float 1e-6)) "total measure" expected a.Agg.sum
      | None -> Alcotest.fail "root cell missing");
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w'))

let test_refreeze_failure_degrades_and_retries () =
  with_dir (fun dir ->
      let w = W.create (Helpers.sales_table ()) in
      W.save w dir;
      (* first background refreeze dies mid-freeze; ingestion must keep
         going, serve the last good generation, and retry after backoff *)
      FP.set "refreeze.freeze" FP.Raise;
      let published = ref [] in
      let config =
        { I.default with batch_rows = 16; refreeze_rows = 50; backoff_base_s = 0.01;
          backoff_max_s = 0.05 }
      in
      let o =
        run_lines ~config
          ~on_publish:(fun s -> published := s.I.Snapshot.generation :: !published)
          w (sales_lines 2000)
      in
      Alcotest.(check bool) "the injected failure was counted" true (o.I.refreeze_failures >= 1);
      Alcotest.(check bool) "a retry eventually committed" true (o.I.refreezes >= 1);
      Alcotest.(check int) "no rows lost to the failure" 2000 o.I.rows_ingested;
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      Alcotest.(check bool) "served generation never regressed" true
        (ascending (List.rev !published));
      let w' = W.open_dir dir in
      Alcotest.(check int) "rows survive reopen" 2003 (Table.n_rows (W.table w'));
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w'))

(* ---------- Generation-MVCC property (mixed read/write) ----------

   Interleave ingest batches with point and range queries served from the
   snapshot server, refreezing at random points with random Raise faults at
   the refreeze failpoints.  Every answer must match the Full_cube oracle
   computed over exactly the rows visible at the generation served — a
   failed or in-flight refreeze must leave readers on the previous
   generation, never on a half-applied one. *)

let prop_mvcc_serving (dims, card, rows_n, seed) =
  let rng = Qc_util.Rng.create (seed lxor 0x9C1) in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      FP.reset ();
      if Sys.file_exists dir then rm_rf dir)
  @@ fun () ->
  (* one shared schema with every value pre-registered keeps dictionary
     codes identical across the warehouse, the oracle tables, and the
     packed snapshots, so cells can be compared by code *)
  let schema = Schema.create (List.init dims (fun i -> Printf.sprintf "D%d" i)) in
  for i = 0 to dims - 1 do
    for v = 1 to card do
      ignore (Schema.encode_value schema i (Printf.sprintf "v%d" v))
    done
  done;
  let w = W.create (Table.create schema) in
  W.save w dir;
  let server = I.Snapshot.make ~generation:(W.checkpoint_generation w) (W.packed w) in
  (* [live] is every row absorbed, in order; the oracle for the served
     generation is the prefix that had been absorbed when it was sealed *)
  let live = ref [] and served = ref 0 and last_gen = ref (W.checkpoint_generation w) in
  let ok = ref true in
  let record ?(what = "query answer") b =
    if not b then begin
      if !ok then Printf.eprintf "mvcc property: first failing check: %s\n%!" what;
      ok := false
    end
  in
  let prefix_table n =
    let t = Table.create schema in
    List.iteri (fun i (vs, m) -> if i < n then Table.add_row t vs m) (List.rev !live);
    t
  in
  let random_row () =
    ( List.init dims (fun _ -> Printf.sprintf "v%d" (1 + Qc_util.Rng.int rng card)),
      float_of_int (Qc_util.Rng.int rng 50) )
  in
  let absorb k =
    let batch = List.init k (fun _ -> random_row ()) in
    ignore (W.insert_rows w batch);
    live := List.rev_append batch !live
  in
  let check_queries () =
    let snap = I.Snapshot.current server in
    let tbl = prefix_table !served in
    let cube = Full_cube.compute tbl in
    (* every cell the oracle materializes answers identically *)
    Full_cube.iter
      (fun cell truth ->
        match point_packed_opt snap.I.Snapshot.packed cell with
        | Some a when Agg.approx_equal a truth -> ()
        | _ -> record false)
      cube;
    (* random point cells, including empty ones *)
    for _ = 1 to 8 do
      let cell = Array.init dims (fun _ -> Qc_util.Rng.int rng (card + 1)) in
      let truth = Table.cover_agg tbl cell in
      match (point_packed_opt snap.I.Snapshot.packed cell, truth.Agg.count) with
      | None, 0 -> ()
      | Some a, n when n > 0 && Agg.approx_equal a truth -> ()
      | _ -> record false
    done;
    (* a random star-or-singleton range: the oracle is the one candidate
       cell's cover aggregate *)
    let range =
      Array.init dims (fun _ ->
          if Qc_util.Rng.int rng 2 = 0 then [||] else [| 1 + Qc_util.Rng.int rng card |])
    in
    let candidate = Array.map (fun set -> if Array.length set = 0 then 0 else set.(0)) range in
    let truth = Table.cover_agg tbl candidate in
    match range_packed_list snap.I.Snapshot.packed range with
    | [] -> record (truth.Agg.count = 0)
    | [ (cell, a) ] ->
      record (cell = candidate && truth.Agg.count > 0 && Agg.approx_equal a truth)
    | _ -> record false
  in
  let refreeze_cycle () =
    let pre_seal = List.length !live in
    let inject =
      match Qc_util.Rng.int rng 5 with
      | 0 -> Some "refreeze.rotate"
      | 1 -> Some "refreeze.freeze"
      | 2 -> Some "refreeze.segment-delete"
      | _ -> None
    in
    (match inject with Some label -> FP.set label FP.Raise | None -> ());
    match W.seal w with
    | exception W.Error _ ->
      (* rotation failed: degraded, nothing sealed, keep absorbing *)
      FP.reset ();
      record ~what:"seal failure leaves the warehouse unsealed" (not (W.sealed w))
    | task ->
      (* mutations during the refreeze window are buffered; readers must
         stay on the pre-seal generation *)
      absorb (Qc_util.Rng.int rng 3);
      check_queries ();
      let res = try W.run_refreeze task with FP.Injected m -> Error (W.Io m) in
      FP.reset ();
      let oc = W.complete_refreeze w task res in
      if oc.W.rf_committed then begin
        record ~what:"committed generation advances" (oc.W.rf_generation > !last_gen);
        last_gen := oc.W.rf_generation;
        (match oc.W.rf_packed with
        | Some packed ->
          record ~what:"publish-if-greater accepts a new generation"
            (I.Snapshot.publish server { I.Snapshot.generation = oc.W.rf_generation; packed })
        | None -> record ~what:"committed refreeze carries a frozen image" false);
        served := pre_seal
      end
  in
  let steps = 4 + (rows_n mod 8) in
  for _ = 1 to steps do
    absorb (1 + Qc_util.Rng.int rng 4);
    check_queries ();
    if Qc_util.Rng.int rng 3 = 0 then begin
      refreeze_cycle ();
      check_queries ()
    end
  done;
  (* the writer itself must hold the full stream, and survive a reopen *)
  record ~what:"writer invariant" (W.self_check w = Ok ());
  record ~what:"writer point queries vs oracle"
    (Helpers.check_point_queries_against_table (prefix_table (List.length !live)) (fun c ->
         W.query w c));
  let w' = W.open_dir dir in
  record ~what:"reopened row count" (Table.n_rows (W.table w') = List.length !live);
  record ~what:"reopened invariant" (W.self_check w' = Ok ());
  !ok

let prop_mvcc =
  Helpers.qcheck_case ~count:20
    ~name:"snapshot answers match the Full_cube oracle for the generation served"
    Helpers.table_config prop_mvcc_serving

let () =
  Alcotest.run "ingest"
    [
      ( "bq",
        [
          Alcotest.test_case "push/pop/depth" `Quick test_bq_basics;
          Alcotest.test_case "close semantics" `Quick test_bq_close;
          Alcotest.test_case "push_wait unblocks" `Quick test_bq_push_wait_unblocks;
        ] );
      ("parse", [ Alcotest.test_case "parse_line" `Quick test_parse_line ]);
      ( "refreeze protocol",
        [
          Alcotest.test_case "sealed inserts buffer" `Quick test_sealed_insert_rows_buffering;
          Alcotest.test_case "burned stamps are not reused" `Quick
            test_failed_refreeze_never_reuses_stamp;
        ] );
      ( "streams",
        [
          Alcotest.test_case "basic + quarantine" `Quick test_ingest_basic_and_quarantine;
          Alcotest.test_case "rolling refreeze publishes" `Quick
            test_ingest_refreeze_publishes_monotonic_generations;
          Alcotest.test_case "drop backpressure" `Quick test_ingest_drop_policy;
          Alcotest.test_case "spill backpressure is lossless" `Quick
            test_ingest_spill_policy_is_lossless;
          Alcotest.test_case "refreeze failure degrades and retries" `Quick
            test_refreeze_failure_degrades_and_retries;
        ] );
      ("mvcc", [ prop_mvcc ]);
    ]
