(* The unified Engine backend API and the parallel batch executor.

   Two layers: unit tests over the paper's running example (typed errors,
   query-file parsing, cross-backend agreement, explain/node-access
   consistency), and property-based differential tests — every random
   instance must get bit-identical answers from the tree and packed
   backends, agreeing answers from the Dwarf baseline, and bit-identical
   batch results whatever the domain count or chunk scheduling order. *)

open Qc_cube
module E = Qc_core.Engine
module T = Qc_core.Qc_tree
module P = Qc_core.Packed
module D = Qc_dwarf.Dwarf

(* ---------- the paper's running example ---------- *)

let sales_table () =
  let s = Schema.create [ "Store"; "Product"; "Season" ] in
  let t = Table.create s in
  List.iter
    (fun (r, m) -> Table.add_row t r m)
    [
      ([ "S1"; "P1"; "s" ], 6.0); ([ "S1"; "P2"; "s" ], 12.0); ([ "S2"; "P1"; "f" ], 9.0);
    ];
  t

let sales () =
  let table = sales_table () in
  let tree = T.of_table table in
  (table, tree, P.of_tree tree, D.build table)

let cell schema spec = Cell.parse schema (String.split_on_char ',' spec)

let agg = Alcotest.testable Agg.pp Agg.equal

let error_t = Alcotest.testable (fun ppf e -> Fmt.string ppf (E.error_to_string e)) E.error_equal

let result_t = Alcotest.(result agg error_t)

(* every cell of the 3x3x3 running-example space, ALL included *)
let all_cells schema f =
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          List.iter
            (fun se -> f (cell schema (String.concat "," [ s; p; se ])))
            [ "s"; "f"; "*" ])
        [ "P1"; "P2"; "*" ])
    [ "S1"; "S2"; "*" ]

let test_backend_agreement () =
  let _, tree, packed, dwarf = sales () in
  let schema = T.schema tree in
  all_cells schema (fun c ->
      let t_ans = E.Tree_backend.point tree c in
      Alcotest.check result_t "packed = tree" t_ans (E.Packed_backend.point packed c);
      Alcotest.check result_t "dwarf = tree" t_ans (D.Backend.point dwarf c);
      Alcotest.(check (result int error_t))
        "node accesses: packed = tree"
        (E.Tree_backend.node_accesses tree c)
        (E.Packed_backend.node_accesses packed c))

let test_typed_errors () =
  let _, tree, packed, dwarf = sales () in
  let schema = T.schema tree in
  let short = [| 0; 0 |] in
  let arity = Error (E.Arity_mismatch { expected = 3; got = 2 }) in
  Alcotest.check result_t "tree arity" arity (E.Tree_backend.point tree short);
  Alcotest.check result_t "packed arity" arity (E.Packed_backend.point packed short);
  Alcotest.check result_t "dwarf arity" arity (D.Backend.point dwarf short);
  let absent = cell schema "S2,P2,*" in
  Alcotest.check result_t "empty cover is a typed miss"
    (Error (E.Empty_cover absent))
    (E.Tree_backend.point tree absent);
  (match D.Backend.iceberg dwarf Agg.Sum ~threshold:10.0 with
  | Error (E.Unsupported { backend = "dwarf"; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.error_to_string e)
  | Ok _ -> Alcotest.fail "dwarf iceberg should be Unsupported");
  (* the error renders with decoded values when a schema is at hand *)
  Alcotest.(check bool)
    "error message decodes the cell" true
    (let msg = E.error_to_string ~schema (E.Empty_cover absent) in
     let contains sub s =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains "S2" msg)

let test_explain_consistency () =
  let _, tree, packed, dwarf = sales () in
  let schema = T.schema tree in
  all_cells schema (fun c ->
      let check_backend (type a) (module B : E.BACKEND with type t = a) (b : a) =
        match (B.explain b c, B.node_accesses b c) with
        | Ok e, Ok n ->
          Alcotest.(check int)
            (Printf.sprintf "%s explain agrees with node_accesses at %s" B.name
               (Cell.to_string schema c))
            n (E.nodes_touched e)
        | Error _, Error _ -> ()
        | _ -> Alcotest.failf "%s: explain and node_accesses disagree on failure" B.name
      in
      check_backend (module E.Tree_backend) tree;
      check_backend (module E.Packed_backend) packed;
      check_backend (module D.Backend) dwarf)

let test_parse_queries () =
  let _, tree, _, _ = sales () in
  let schema = T.schema tree in
  let text = "# header comment\npoint S1,P2,*\n\nrange *,P1|P2,f\niceberg sum 10\n" in
  (match E.parse_queries schema text with
  | Error e -> Alcotest.failf "parse failed: %s" (E.error_to_string e)
  | Ok qs ->
    Alcotest.(check int) "three queries" 3 (Array.length qs);
    (match qs.(0) with
    | E.Point c -> Alcotest.(check bool) "point cell" true (Cell.equal c (cell schema "S1,P2,*"))
    | _ -> Alcotest.fail "first query is a point");
    (match qs.(1) with
    | E.Range q ->
      Alcotest.(check int) "unconstrained dim" 0 (Array.length q.(0));
      Alcotest.(check int) "two products" 2 (Array.length q.(1))
    | _ -> Alcotest.fail "second query is a range");
    match qs.(2) with
    | E.Iceberg { func = Agg.Sum; threshold } ->
      Alcotest.(check (float 0.0)) "threshold" 10.0 threshold
    | _ -> Alcotest.fail "third query is an iceberg");
  (* the first bad line fails the whole batch, naming its line number *)
  match E.parse_queries schema "point S1,P1,*\nfrobnicate 1\n" with
  | Ok _ -> Alcotest.fail "accepted a malformed line"
  | Error (E.Bad_query msg) ->
    Alcotest.(check bool) "names the line" true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")
  | Error e -> Alcotest.failf "wrong error kind: %s" (E.error_to_string e)

let sales_queries schema =
  [|
    E.Point (cell schema "S1,P2,*");
    E.Point (cell schema "*,*,*");
    E.Point (cell schema "S2,P2,*");
    E.Range
      [|
        [||];
        [| Option.get (Qc_util.Dict.find (Schema.dict schema 1) "P1") |];
        [||];
      |];
    E.Iceberg { func = Agg.Sum; threshold = 10.0 };
  |]

let test_run_batch_sequential_equivalence () =
  let _, tree, packed, _ = sales () in
  let schema = T.schema tree in
  let queries = sales_queries schema in
  let b1 = E.run_batch ~jobs:1 ~node_accesses:true (module E.Packed_backend) packed queries in
  let b4 = E.run_batch ~jobs:4 ~node_accesses:true (module E.Packed_backend) packed queries in
  Alcotest.(check int) "one slot per query" (Array.length queries) (Array.length b1.E.outcomes);
  Array.iteri
    (fun i o1 ->
      Alcotest.(check bool)
        (Printf.sprintf "outcome %d identical across jobs" i)
        true
        (E.outcome_equal o1 b4.E.outcomes.(i)))
    b1.E.outcomes;
  (match (b1.E.accesses, b4.E.accesses) with
  | Some a1, Some a4 -> Alcotest.(check (array int)) "accesses identical" a1 a4
  | _ -> Alcotest.fail "node accesses were requested");
  (* slot 0 answers the S1,P2 class; slot 2 is the typed empty-cover miss *)
  (match b1.E.outcomes.(0) with
  | Ok (E.Agg_answer a) -> Alcotest.(check (float 0.0)) "sum" 12.0 a.Agg.sum
  | _ -> Alcotest.fail "first outcome is an aggregate");
  match b1.E.outcomes.(2) with
  | Error (E.Empty_cover _) -> ()
  | _ -> Alcotest.fail "third outcome is an empty cover"

let test_run_batch_chunk_order () =
  let _, tree, packed, _ = sales () in
  let schema = T.schema tree in
  let queries = sales_queries schema in
  let b = E.run_batch ~jobs:2 (module E.Packed_backend) packed queries in
  let rev = E.run_batch ~jobs:2 ~chunk_order:[| 1; 0 |] (module E.Packed_backend) packed queries in
  Array.iteri
    (fun i o ->
      Alcotest.(check bool) "chunk order cannot leak into results" true
        (E.outcome_equal o rev.E.outcomes.(i)))
    b.E.outcomes;
  Alcotest.check_raises "chunk_order must be a permutation"
    (Invalid_argument "Engine.run_batch: chunk_order must be a permutation")
    (fun () ->
      ignore (E.run_batch ~jobs:2 ~chunk_order:[| 0; 0 |] (module E.Packed_backend) packed queries))

(* ---------- property-based differential tests ---------- *)

let build c =
  let table = Prop.table_of c in
  let tree = T.of_table table in
  (table, tree, P.of_tree tree, D.build table)

let outcome_approx a b =
  match (a, b) with
  | Ok x, Ok y -> Agg.approx_equal x y
  | Error e1, Error e2 -> E.error_equal e1 e2
  | _ -> false

let outcome_exact a b =
  match (a, b) with
  | Ok x, Ok y -> Agg.equal x y
  | Error e1, Error e2 -> E.error_equal e1 e2
  | _ -> false

(* every backend answers every point query of the space identically: the
   packed form bit-exactly (same stored aggregate), the Dwarf baseline up
   to float associativity (it merges covers in a different order) *)
let prop_point_backend_differential c =
  let _, tree, packed, dwarf = build c in
  let ok = ref true in
  Prop.iter_cells c (fun cell ->
      let t = E.Tree_backend.point tree cell in
      if not (outcome_exact t (E.Packed_backend.point packed cell)) then ok := false;
      if not (outcome_approx t (D.Backend.point dwarf cell)) then ok := false;
      (match (E.Tree_backend.node_accesses tree cell, E.Packed_backend.node_accesses packed cell)
       with
      | Ok a, Ok b when a = b -> ()
      | _ -> ok := false);
      (* the dwarf access count is the explain path length, like the
         others — except over an empty cube, where there is no root node to
         touch and the explanation is a bare level-0 miss *)
      match (D.Backend.explain dwarf cell, D.Backend.node_accesses dwarf cell) with
      | Ok e, Ok 0 -> if e.E.x_steps <> [] || not (Result.is_error (D.Backend.point dwarf cell)) then ok := false
      | Ok e, Ok n -> if E.nodes_touched e <> n then ok := false
      | _ -> ok := false);
  !ok

let canon l = List.sort (fun (c1, _) (c2, _) -> Cell.compare_dict c1 c2) l

let cells_equal ~exact xs ys =
  let eq = if exact then Agg.equal else fun a b -> Agg.approx_equal a b in
  List.length xs = List.length ys
  && List.for_all2 (fun (c1, a1) (c2, a2) -> Cell.equal c1 c2 && eq a1 a2) xs ys

(* range queries through the Engine agree across all three backends *)
let prop_range_backend_differential c =
  let _, tree, packed, dwarf = build c in
  List.for_all
    (fun q ->
      match (E.Tree_backend.range tree q, E.Packed_backend.range packed q, D.Backend.range dwarf q)
      with
      | Ok t, Ok p, Ok d ->
        let t = canon t in
        cells_equal ~exact:true t (canon p) && cells_equal ~exact:false t (canon d)
      | _ -> false)
    (Prop.random_ranges c 8)

(* iceberg through the Engine: tree and packed return the identical
   canonically-sorted class list *)
let prop_iceberg_backend_differential c =
  let _, tree, packed, _ = build c in
  let threshold = float_of_int c.Prop.min_support in
  match (E.Tree_backend.iceberg tree Agg.Count ~threshold, E.Packed_backend.iceberg packed Agg.Count ~threshold)
  with
  | Ok t, Ok p ->
    cells_equal ~exact:true t p
    && List.for_all
         (fun (_, a) -> Agg.value Agg.Count a >= threshold)
         t
  | _ -> false

(* a mixed random batch answers bit-identically whatever the domain count
   or the order chunks are spawned in *)
let prop_batch_determinism c =
  let _, _, packed, _ = build c in
  let queries =
    let points = ref [] in
    Prop.iter_cells ~sample:40 c (fun cell -> points := E.Point (Cell.copy cell) :: !points);
    let ranges = List.map (fun q -> E.Range q) (Prop.random_ranges c 4) in
    let iceberg = [ E.Iceberg { func = Agg.Count; threshold = float_of_int c.Prop.min_support } ] in
    Array.of_list (List.rev_append !points (ranges @ iceberg))
  in
  let b1 = E.run_batch ~jobs:1 ~node_accesses:true (module E.Packed_backend) packed queries in
  let b4 = E.run_batch ~jobs:4 ~node_accesses:true (module E.Packed_backend) packed queries in
  let n = min 4 (Array.length queries) in
  let order = Array.init n (fun i -> n - 1 - i) in
  let brev =
    E.run_batch ~jobs:n ~node_accesses:true ~chunk_order:order (module E.Packed_backend) packed
      queries
  in
  let same a b =
    Array.length a.E.outcomes = Array.length b.E.outcomes
    && Array.for_all2 E.outcome_equal a.E.outcomes b.E.outcomes
    && a.E.accesses = b.E.accesses
  in
  same b1 b4 && same b1 brev

(* per-domain metric deltas absorbed after the join reproduce the exact
   sequential counter totals *)
let prop_batch_metrics_parity c =
  let _, _, packed, _ = build c in
  let queries =
    let points = ref [] in
    Prop.iter_cells ~sample:30 c (fun cell -> points := E.Point (Cell.copy cell) :: !points);
    Array.of_list !points
  in
  Qc_util.Metrics.set_enabled true;
  let snap jobs =
    Qc_util.Metrics.reset ();
    ignore (E.run_batch ~jobs (module E.Packed_backend) packed queries);
    (Qc_util.Metrics.snapshot ()).Qc_util.Metrics.counters
  in
  let seq = snap 1 and par = snap 4 in
  Qc_util.Metrics.set_enabled false;
  seq = par

let () =
  Alcotest.run "engine"
    [
      ( "unit",
        [
          Alcotest.test_case "backends agree on the running example" `Quick
            test_backend_agreement;
          Alcotest.test_case "typed errors" `Quick test_typed_errors;
          Alcotest.test_case "explain agrees with node_accesses" `Quick
            test_explain_consistency;
          Alcotest.test_case "query-file parsing" `Quick test_parse_queries;
          Alcotest.test_case "run_batch: jobs do not change results" `Quick
            test_run_batch_sequential_equivalence;
          Alcotest.test_case "run_batch: chunk order is inert" `Quick
            test_run_batch_chunk_order;
        ] );
      ( "property",
        [
          Prop.qcheck_case ~count:150 ~name:"point queries agree across all three backends"
            Prop.arb_case prop_point_backend_differential;
          Prop.qcheck_case ~count:100 ~name:"range queries agree across all three backends"
            Prop.arb_case prop_range_backend_differential;
          Prop.qcheck_case ~count:100 ~name:"iceberg agrees between tree and packed"
            Prop.arb_case prop_iceberg_backend_differential;
          Prop.qcheck_case ~count:60 ~name:"batch results are independent of jobs and schedule"
            Prop.arb_case prop_batch_determinism;
          Prop.qcheck_case ~count:40 ~name:"parallel metric totals equal sequential totals"
            Prop.arb_case prop_batch_metrics_parity;
        ] );
    ]
