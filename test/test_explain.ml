open Qc_cube
module T = Qc_core.Qc_tree
module Q = Qc_core.Query
module Metrics = Qc_util.Metrics

let point_opt t c = Result.to_option (Q.point_result t c)

(* ---------- EXPLAIN on the paper's running example ---------- *)

let test_sales_path () =
  let table = Helpers.sales_table () in
  let schema = Table.schema table in
  let tree = T.of_table table in
  (* (S2,*,f) lies in class C3 with upper bound (S2,P1,f): one edge for S2,
     then Algorithm 3 resolves f through the tree, ending on the class
     node. *)
  let e = Q.explain tree (Cell.parse schema [ "S2"; "*"; "f" ]) in
  (match e.Q.outcome with
  | Q.Hit -> ()
  | _ -> Alcotest.fail "expected a hit");
  (match e.Q.result with
  | Some (node, agg) ->
    Alcotest.(check string) "class ub" "(S2, P1, f)" (Cell.to_string schema (T.node_cell tree node));
    Alcotest.(check (float 1e-9)) "avg" 9.0 (Agg.value Agg.Avg agg)
  | None -> Alcotest.fail "hit without result");
  Alcotest.(check int) "node accesses agree" (Q.node_accesses tree (Cell.parse schema [ "S2"; "*"; "f" ]))
    (Q.nodes_touched e);
  (* the rendered path mentions the verdict and the class *)
  let rendered = Format.asprintf "%a" (Q.pp_explanation tree) e in
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "mentions HIT" true (contains ~sub:"HIT" rendered);
  Alcotest.(check bool) "mentions the class" true (contains ~sub:"S2" rendered)

let test_sales_miss () =
  let table = Helpers.sales_table () in
  let schema = Table.schema table in
  let tree = T.of_table table in
  (* (S2,*,s): S2 sold nothing in spring — Example 5's NULL case. *)
  let e = Q.explain tree (Cell.parse schema [ "S2"; "*"; "s" ]) in
  (match e.Q.outcome with
  | Q.Hit -> Alcotest.fail "expected a miss"
  | _ -> ());
  Alcotest.(check bool) "no result" true (Option.is_none e.Q.result)

(* ---------- explain/point agreement and Algorithm 3 path bounds ---------- *)

let prop_explain_agrees_with_point =
  Helpers.qcheck_case ~count:100 ~name:"explain = point, with bounded paths"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let ok = ref true in
      Helpers.iter_all_cells ~dims ~card (fun cell ->
          let e = Q.explain tree cell in
          (match (point_opt tree cell, e.Q.result) with
          | Some a, Some (_, a') -> if not (Agg.approx_equal a a') then ok := false
          | None, None -> ()
          | _ -> ok := false);
          (match (e.Q.outcome, e.Q.result) with
          | Q.Hit, Some _ | (Q.Miss_no_route _ | Q.Miss_no_class | Q.Miss_not_dominating), None ->
            ()
          | _ -> ok := false);
          (* Lemma 2: at most one edge/link per instantiated dimension *)
          let consuming =
            List.length
              (List.filter
                 (fun s -> match s.Q.kind with Q.Tree_edge | Q.Link -> true | _ -> false)
                 e.Q.steps)
          in
          let instantiated =
            Array.fold_left (fun n v -> if v = Cell.all then n else n + 1) 0 cell
          in
          if consuming > instantiated then ok := false;
          if Q.nodes_touched e <> 1 + List.length e.Q.steps then ok := false;
          if Q.nodes_touched e > T.n_nodes tree then ok := false);
      !ok)

(* ---------- work counters: deterministic across identical runs ---------- *)

let counter_fingerprint () =
  let s = Metrics.snapshot () in
  List.filter (fun (name, _) -> String.length name >= 6 && String.sub name 0 6 = "query.") s.Metrics.counters

let run_workload () =
  let table = Helpers.sales_table () in
  let schema = Table.schema table in
  let tree = T.of_table table in
  List.iter
    (fun vals -> ignore (point_opt tree (Cell.parse schema vals)))
    [
      [ "S2"; "*"; "f" ]; [ "S2"; "*"; "s" ]; [ "*"; "P2"; "*" ]; [ "*"; "*"; "*" ];
      [ "*"; "P1"; "*" ]; [ "S1"; "P1"; "s" ];
    ]

let test_counters_deterministic () =
  let was = Metrics.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled was;
      Metrics.reset ())
    (fun () ->
      Metrics.set_enabled true;
      Metrics.reset ();
      run_workload ();
      let first = counter_fingerprint () in
      Metrics.reset ();
      run_workload ();
      let second = counter_fingerprint () in
      Alcotest.(check (list (pair string int))) "identical runs, identical counters" first second;
      Alcotest.(check bool) "queries were counted" true
        (List.assoc_opt "query.point" first = Some 6))

let test_counters_off_by_default () =
  let was = Metrics.enabled () in
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled was)
    (fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      run_workload ();
      let s = Metrics.snapshot () in
      List.iter
        (fun (name, v) -> Alcotest.(check int) (name ^ " stays zero") 0 v)
        s.Metrics.counters)

(* ---------- instrumented and fast paths answer identically ---------- *)

let prop_metrics_do_not_change_answers =
  Helpers.qcheck_case ~count:60 ~name:"answers agree with metrics on and off"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let ok = ref true in
      Fun.protect
        ~finally:(fun () ->
          Metrics.set_enabled false;
          Metrics.reset ())
        (fun () ->
          Helpers.iter_all_cells ~dims ~card (fun cell ->
              Metrics.set_enabled false;
              let fast = point_opt tree cell in
              Metrics.set_enabled true;
              let slow = point_opt tree cell in
              match (fast, slow) with
              | None, None -> ()
              | Some a, Some b when Agg.approx_equal a b -> ()
              | _ -> ok := false));
      !ok)

let () =
  Alcotest.run "qc_explain"
    [
      ( "paths",
        [
          Alcotest.test_case "sales hit path" `Quick test_sales_path;
          Alcotest.test_case "sales miss path" `Quick test_sales_miss;
        ] );
      ("properties", [ prop_explain_agrees_with_point; prop_metrics_do_not_change_answers ]);
      ( "counters",
        [
          Alcotest.test_case "deterministic across runs" `Quick test_counters_deterministic;
          Alcotest.test_case "inert when disabled" `Quick test_counters_off_by_default;
        ] );
    ]
