(* The sharded scatter-gather layer, verified differentially.

   The oracle is the unsharded frozen tree over the whole table.  Every
   random instance is partitioned both ways (hash and dimension-range),
   into several shard counts, and the composite backend must answer every
   point / range / iceberg query *bit-identically* to the oracle — cells,
   aggregate fields, list order and all.  The property generator draws
   integer measures, so partial sums are exact in any association order
   and bit-equality is the honest contract, not an approximation.

   On top of the differential core: unit tests of the Agg merge monoid
   the fan-out relies on, a hand-built counterexample proving the
   meet-closure candidate set is needed (a global class whose upper bound
   exists in no shard), the single-error discipline of the gather layer,
   and drain/absorb parity of the parallel shard builder. *)

open Qc_cube
module T = Qc_core.Qc_tree
module P = Qc_core.Packed
module S = Qc_core.Shard
module E = Qc_core.Engine

let partitioners = [ S.Hash; S.Range 0 ]

let shard_counts = [ 1; 2; 3; 8 ]

(* ---------------- Agg merge algebra ---------------- *)

(* Random summaries over integer measures: any merge tree over these has
   exact float sums, so the monoid laws hold bit-exactly. *)
let rand_aggs seed n =
  let rng = Qc_util.Rng.create seed in
  Array.init n (fun _ ->
      let k = Qc_util.Rng.int rng 5 in
      let acc = ref Agg.empty in
      for _ = 1 to k do
        acc :=
          Agg.merge !acc (Agg.of_measure (float_of_int (Qc_util.Rng.int rng 41 - 20)))
      done;
      !acc)

let check_agg msg a b = Alcotest.(check bool) msg true (Agg.equal a b)

let test_agg_identity () =
  Array.iter
    (fun a ->
      check_agg "left identity" (Agg.merge Agg.empty a) a;
      check_agg "right identity" (Agg.merge a Agg.empty) a)
    (rand_aggs 11 50);
  Alcotest.(check bool) "empty is empty" true (Agg.is_empty Agg.empty);
  Alcotest.(check bool) "merge_all [||] is empty" true (Agg.is_empty (Agg.merge_all [||]));
  Alcotest.(check bool) "a tuple's summary is not empty" false
    (Agg.is_empty (Agg.of_measure 0.0))

let test_agg_commutative () =
  let aggs = rand_aggs 23 60 in
  Array.iteri
    (fun i a ->
      let b = aggs.((i + 1) mod Array.length aggs) in
      check_agg "commutativity" (Agg.merge a b) (Agg.merge b a))
    aggs

let test_agg_associative () =
  let aggs = rand_aggs 37 60 in
  let n = Array.length aggs in
  Array.iteri
    (fun i a ->
      let b = aggs.((i + 1) mod n) and c = aggs.((i + 2) mod n) in
      check_agg "associativity" (Agg.merge (Agg.merge a b) c) (Agg.merge a (Agg.merge b c)))
    aggs

(* merge_all under permuted shard orders: the composite must not depend on
   which shard reports first, and AVG must be read off only after the
   final merge (sum/count of the permuted merge equals the direct
   quotient). *)
let test_agg_merge_all_permutations () =
  let parts = rand_aggs 53 8 in
  let reference = Agg.merge_all parts in
  let rng = Qc_util.Rng.create 99 in
  for _ = 1 to 50 do
    let perm = Array.copy parts in
    Qc_util.Rng.shuffle rng perm;
    check_agg "permuted merge order" (Agg.merge_all perm) reference
  done;
  let total_sum = Array.fold_left (fun acc a -> acc +. a.Agg.sum) 0.0 parts in
  let total_count = Array.fold_left (fun acc a -> acc + a.Agg.count) 0 parts in
  if total_count > 0 then
    Alcotest.(check (float 0.0))
      "AVG is sum/count post-merge"
      (total_sum /. float_of_int total_count)
      (Agg.value Agg.Avg reference)

(* ---------------- split / placement ---------------- *)

let rows_of table =
  let out = ref [] in
  Table.iter (fun cell m -> out := (Array.to_list cell, m) :: !out) table;
  List.rev !out

let prop_split_partitions c =
  let table = Prop.table_of c in
  let schema = Table.schema table in
  List.for_all
    (fun partitioner ->
      List.for_all
        (fun shards ->
          let parts = S.split ~partitioner ~shards table in
          let total = Array.fold_left (fun acc t -> acc + Table.n_rows t) 0 parts in
          let placed = ref true in
          Array.iteri
            (fun k t ->
              Table.iter
                (fun cell _ ->
                  if S.shard_of_tuple schema partitioner ~shards cell <> k then
                    placed := false)
                t)
            parts;
          total = Table.n_rows table
          && !placed
          && (shards <> 1 || rows_of parts.(0) = rows_of table))
        shard_counts)
    partitioners

(* ---------------- the differential core ---------------- *)

let queries_of c =
  let qs = ref [] in
  qs := E.Iceberg { func = Agg.Count; threshold = float_of_int c.Prop.min_support } :: !qs;
  qs := E.Iceberg { func = Agg.Sum; threshold = 5.0 } :: !qs;
  qs := E.Iceberg { func = Agg.Min; threshold = -3.0 } :: !qs;
  List.iter (fun r -> qs := E.Range r :: !qs) (Prop.random_ranges c 6);
  Prop.iter_cells ~sample:120 c (fun cell -> qs := E.Point (Cell.copy cell) :: !qs);
  Array.of_list !qs

(* Sharded answers are bit-identical to the unsharded oracle for both
   partitioners, shard counts 1..8, and 1 vs 4 worker domains. *)
let prop_sharded_differential c =
  let table = Prop.table_of c in
  let oracle = P.of_tree (T.of_table table) in
  let queries = queries_of c in
  let expected = Array.map (E.run_one_plain (module E.Packed_backend) oracle) queries in
  List.for_all
    (fun partitioner ->
      List.for_all
        (fun shards ->
          let s = S.build ~jobs:1 ~partitioner ~shards table in
          let agrees (b : E.batch) =
            let ok = ref true in
            Array.iteri
              (fun i o -> if not (E.outcome_equal o b.E.outcomes.(i)) then ok := false)
              expected;
            !ok
          in
          agrees (E.run_batch ~jobs:1 (module S.Backend) s queries)
          && agrees (E.run_batch ~jobs:4 (module S.Backend) s queries))
        shard_counts)
    partitioners

(* explain: the composite's answer cell and aggregate equal the oracle's
   closure, whatever shard the representative path comes from *)
let prop_explain_answer_parity c =
  let table = Prop.table_of c in
  let oracle = P.of_tree (T.of_table table) in
  let s = S.build ~jobs:1 ~partitioner:S.Hash ~shards:3 table in
  let ok = ref true in
  Prop.iter_cells ~sample:60 c (fun cell ->
      match (E.Packed_backend.explain oracle cell, S.Backend.explain s cell) with
      | Ok xo, Ok xs -> (
        match (xo.E.x_answer, xs.E.x_answer) with
        | None, None -> ()
        | Some (c1, a1), Some (c2, a2) ->
          if not (Cell.equal c1 c2 && Agg.equal a1 a2) then ok := false
        | _ -> ok := false)
      | Error e1, Error e2 -> if not (E.error_equal e1 e2) then ok := false
      | _ -> ok := false);
  !ok

(* node accesses: exactly the oracle's count at one shard; at N > 1 the
   total is the sum over shards, which must not depend on how many
   domains built the composite *)
let prop_node_access_totals c =
  let table = Prop.table_of c in
  let oracle = P.of_tree (T.of_table table) in
  let s1 = S.build ~jobs:1 ~partitioner:S.Hash ~shards:1 table in
  let s4a = S.build ~jobs:1 ~partitioner:(S.Range 0) ~shards:4 table in
  let s4b = S.build ~jobs:4 ~partitioner:(S.Range 0) ~shards:4 table in
  let ok = ref true in
  Prop.iter_cells ~sample:80 c (fun cell ->
      (match (S.Backend.node_accesses s1 cell, E.Packed_backend.node_accesses oracle cell) with
      | Ok a, Ok b -> if a <> b then ok := false
      | _ -> ok := false);
      match (S.Backend.node_accesses s4a cell, S.Backend.node_accesses s4b cell) with
      | Ok a, Ok b -> if a <> b then ok := false
      | _ -> ok := false);
  !ok

(* ---------------- meet-closure counterexample ---------------- *)

(* Tuples (a1,b2) and (a1,b3) in *different* shards: the global class
   upper bound (a1,ALL) is a class of neither shard, so any gather that
   merely merges per-shard class lists by cell misses it.  The composite
   must produce it via the meet-closure candidate set. *)
let test_cross_shard_class () =
  let s = Schema.create [ "A"; "B" ] in
  for v = 1 to 3 do
    ignore (Schema.encode_value s 0 (Printf.sprintf "a%d" v));
    ignore (Schema.encode_value s 1 (Printf.sprintf "b%d" v))
  done;
  let t1 = Table.create s and t2 = Table.create s and full = Table.create s in
  Table.add_encoded t1 [| 1; 2 |] 1.0;
  Table.add_encoded t2 [| 1; 3 |] 1.0;
  Table.add_encoded full [| 1; 2 |] 1.0;
  Table.add_encoded full [| 1; 3 |] 1.0;
  let g = S.of_parts ~partitioner:S.Hash (S.build_packed ~jobs:1 [| t1; t2 |]) in
  let oracle = P.of_tree (T.of_table full) in
  (match S.Backend.iceberg g Agg.Count ~threshold:2.0 with
  | Ok [ (cell, agg) ] ->
    Alcotest.(check bool) "the cross-shard class is (a1,*)" true
      (Cell.equal cell [| 1; Cell.all |]);
    Alcotest.(check int) "its cover spans both shards" 2 agg.Agg.count
  | Ok l -> Alcotest.failf "expected exactly the (a1,*) class, got %d cells" (List.length l)
  | Error _ -> Alcotest.fail "iceberg failed");
  match (S.Backend.iceberg g Agg.Count ~threshold:1.0, E.Packed_backend.iceberg oracle Agg.Count ~threshold:1.0) with
  | Ok got, Ok want ->
    Alcotest.(check int) "same class count as the oracle" (List.length want) (List.length got);
    List.iter2
      (fun (c1, a1) (c2, a2) ->
        Alcotest.(check bool) "same class" true (Cell.equal c1 c2 && Agg.equal a1 a2))
      want got
  | _ -> Alcotest.fail "iceberg failed"

(* ---------------- single-error discipline ---------------- *)

(* A failing shard must surface as *one* deterministic typed error — the
   lowest-indexed shard's — not as one copy per shard and not wrapped.
   Dwarf's unsupported iceberg is the natural probe. *)
let test_single_error_surface () =
  let c = Prop.make_case ~seed:7 ~n_rows:40 in
  let table = Prop.table_of c in
  let tables = S.split ~partitioner:S.Hash ~shards:3 table in
  let parts = Array.map (fun t -> Qc_dwarf.Dwarf.build t) tables in
  let module G = S.Gather (Qc_dwarf.Dwarf.Backend) in
  let single =
    match Qc_dwarf.Dwarf.Backend.iceberg parts.(0) Agg.Count ~threshold:1.0 with
    | Error e -> e
    | Ok _ -> Alcotest.fail "dwarf unexpectedly supports iceberg"
  in
  (match G.iceberg parts Agg.Count ~threshold:1.0 with
  | Error e ->
    Alcotest.(check bool) "composite error equals the single-shard error" true
      (E.error_equal e single)
  | Ok _ -> Alcotest.fail "expected an Unsupported error");
  (* arity errors are checked once, before any fan-out *)
  let p = S.build ~jobs:1 ~partitioner:S.Hash ~shards:3 table in
  match S.Backend.point p [| 1 |] with
  | Error (E.Arity_mismatch { expected; got }) ->
    Alcotest.(check int) "expected arity" c.Prop.dims expected;
    Alcotest.(check int) "got arity" 1 got
  | _ -> Alcotest.fail "expected one Arity_mismatch"

(* empty shards contribute the identity, and an all-empty composite
   answers like an empty cube *)
let test_empty_shards () =
  let c = Prop.make_case ~seed:5 ~n_rows:0 in
  let table = Prop.table_of c in
  let s = S.build ~jobs:1 ~partitioner:S.Hash ~shards:4 table in
  let all = Array.make c.Prop.dims Cell.all in
  (match S.Backend.point s all with
  | Error (E.Empty_cover _) -> ()
  | _ -> Alcotest.fail "point on an empty composite must report Empty_cover");
  (match S.Backend.range s (Array.make c.Prop.dims [||]) with
  | Ok [] -> ()
  | _ -> Alcotest.fail "range on an empty composite must be Ok []");
  match S.Backend.iceberg s Agg.Count ~threshold:1.0 with
  | Ok [] -> ()
  | _ -> Alcotest.fail "iceberg on an empty composite must be Ok []"

(* ---------------- partitioner strings ---------------- *)

let test_partitioner_strings () =
  let c = Prop.make_case ~seed:3 ~n_rows:5 in
  let schema = Prop.schema_of c in
  List.iter
    (fun p ->
      match S.partitioner_of_string schema (S.partitioner_to_string schema p) with
      | Ok p' -> Alcotest.(check bool) "round trip" true (S.partitioner_equal p p')
      | Error e -> Alcotest.fail e)
    [ S.Hash; S.Range 0; S.Range (c.Prop.dims - 1) ];
  (match S.partitioner_of_string schema "range:1" with
  | Ok (S.Range 1) -> ()
  | _ -> Alcotest.fail "numeric dimension index must parse");
  (match S.partitioner_of_string schema "range:nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown dimension must not parse");
  match S.partitioner_of_string schema "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad partitioner must not parse"

(* ---------------- parallel build drain/absorb parity ---------------- *)

let span_summary () =
  List.sort String.compare
    (List.map
       (fun (sp : Qc_util.Trace.span) ->
         Printf.sprintf "%s|%s|%s" sp.Qc_util.Trace.sp_cat sp.Qc_util.Trace.sp_name
           (String.concat ","
              (List.map
                 (fun (k, v) ->
                   k ^ "="
                   ^ (match v with
                     | Qc_util.Trace.Int i -> string_of_int i
                     | Qc_util.Trace.Float f -> string_of_float f
                     | Qc_util.Trace.String s -> s
                     | Qc_util.Trace.Bool b -> string_of_bool b))
                 sp.Qc_util.Trace.sp_args)))
       (Qc_util.Trace.spans ()))

let test_build_drain_parity () =
  let c = Prop.make_case ~seed:2024 ~n_rows:60 in
  let tables = S.split ~partitioner:S.Hash ~shards:4 (Prop.table_of c) in
  Qc_util.Metrics.set_enabled true;
  Qc_util.Trace.set_enabled true;
  let snap jobs =
    Qc_util.Metrics.reset ();
    Qc_util.Trace.reset ();
    ignore (S.build_packed ~jobs tables);
    ((Qc_util.Metrics.snapshot ()).Qc_util.Metrics.counters, span_summary ())
  in
  let m1, t1 = snap 1 in
  let m4, t4 = snap 4 in
  Qc_util.Metrics.set_enabled false;
  Qc_util.Trace.set_enabled false;
  Qc_util.Trace.reset ();
  Alcotest.(check (list (pair string int))) "counter totals" m1 m4;
  Alcotest.(check (list string)) "span multiset" t1 t4

(* builds with 1 and 4 domains produce structurally identical shards *)
let prop_parallel_build_determinism c =
  let table = Prop.table_of c in
  List.for_all
    (fun partitioner ->
      let a = S.build ~jobs:1 ~partitioner ~shards:4 table in
      let b = S.build ~jobs:4 ~partitioner ~shards:4 table in
      let ca = Array.map (fun p -> T.canonical_string (P.to_tree p)) (S.parts a) in
      let cb = Array.map (fun p -> T.canonical_string (P.to_tree p)) (S.parts b) in
      ca = cb)
    partitioners

let () =
  Alcotest.run "qc_shard"
    [
      ( "agg-algebra",
        [
          Alcotest.test_case "merge identity and is_empty" `Quick test_agg_identity;
          Alcotest.test_case "merge is commutative" `Quick test_agg_commutative;
          Alcotest.test_case "merge is associative (integer measures)" `Quick
            test_agg_associative;
          Alcotest.test_case "merge_all is order-independent; AVG post-merge" `Quick
            test_agg_merge_all_permutations;
        ] );
      ( "unit",
        [
          Alcotest.test_case "a class spanning shards exists in no shard" `Quick
            test_cross_shard_class;
          Alcotest.test_case "one failing shard surfaces one typed error" `Quick
            test_single_error_surface;
          Alcotest.test_case "empty shards are the merge identity" `Quick test_empty_shards;
          Alcotest.test_case "partitioner strings round-trip" `Quick test_partitioner_strings;
          Alcotest.test_case "parallel build drains metrics and spans deterministically"
            `Quick test_build_drain_parity;
        ] );
      ( "property",
        [
          Prop.qcheck_case ~count:120 ~name:"split partitions losslessly and places by contract"
            Prop.arb_case prop_split_partitions;
          Prop.qcheck_case ~count:90
            ~name:"sharded answers are bit-identical to the unsharded oracle" Prop.arb_case
            prop_sharded_differential;
          Prop.qcheck_case ~count:80 ~name:"explain answers match the oracle closure"
            Prop.arb_case prop_explain_answer_parity;
          Prop.qcheck_case ~count:80
            ~name:"node-access totals: oracle-exact at 1 shard, build-invariant at 4"
            Prop.arb_case prop_node_access_totals;
          Prop.qcheck_case ~count:60 ~name:"1-domain and 4-domain builds are identical"
            Prop.arb_case prop_parallel_build_determinism;
        ] );
    ]
