open Qc_cube
module T = Qc_core.Qc_tree
module S = Qc_core.Serial

let point_opt t c = Result.to_option (Qc_core.Query.point_result t c)

let point_value_opt t f c = Result.to_option (Qc_core.Query.point_value_result t f c)

let point_packed_opt p c = Result.to_option (Qc_core.Query.point_result_packed p c)

let prop_roundtrip_canonical =
  Helpers.qcheck_case ~count:150 ~name:"save/load preserves the canonical tree"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let tree' = S.of_string (S.to_string tree) in
      T.canonical_string tree = T.canonical_string tree')

let prop_roundtrip_queries =
  Helpers.qcheck_case ~count:80 ~name:"a reloaded tree answers identically"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let tree' = S.of_string (S.to_string tree) in
      let ok = ref true in
      Helpers.iter_all_cells ~dims ~card (fun cell ->
          match (point_opt tree cell, point_opt tree' cell) with
          | None, None -> ()
          | Some a, Some b when Agg.equal a b -> ()
          | _ -> ok := false);
      !ok)

let test_roundtrip_schema () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  let tree' = S.of_string (S.to_string tree) in
  let s = T.schema tree and s' = T.schema tree' in
  Alcotest.(check int) "dims" (Schema.n_dims s) (Schema.n_dims s');
  Alcotest.(check string) "measure" (Schema.measure_name s) (Schema.measure_name s');
  for i = 0 to Schema.n_dims s - 1 do
    Alcotest.(check string) "dim name" (Schema.dim_name s i) (Schema.dim_name s' i);
    Alcotest.(check int) "cardinality" (Schema.cardinality s i) (Schema.cardinality s' i)
  done;
  (* dictionary codes are preserved, so external-value queries agree *)
  let q t vals = point_value_opt t Agg.Avg (Cell.parse (T.schema t) vals) in
  Alcotest.(check (option (float 1e-9))) "query by name" (q tree [ "S2"; "*"; "f" ])
    (q tree' [ "S2"; "*"; "f" ])

let test_float_exactness () =
  let schema = Schema.create [ "A" ] in
  let table = Table.create schema in
  Table.add_row table [ "x" ] 0.1;
  Table.add_row table [ "x" ] 0.2;
  let tree = T.of_table table in
  let tree' = S.of_string (S.to_string tree) in
  match
    ( point_opt tree (Cell.parse schema [ "x" ]),
      point_opt tree' (Cell.parse (T.schema tree') [ "x" ]) )
  with
  | Some a, Some b ->
    Alcotest.(check bool) "bit-exact sums" true (a.Agg.sum = b.Agg.sum)
  | _ -> Alcotest.fail "query failed"

let test_file_io () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  let path = Filename.temp_file "qctree" ".qct" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save tree path;
      let tree' = S.load path in
      Alcotest.(check string) "identical" (T.canonical_string tree) (T.canonical_string tree'))

let test_escaped_values () =
  let schema = Schema.create ~measure_name:"the measure" [ "dim with space" ] in
  let table = Table.create schema in
  Table.add_row table [ "value with space" ] 1.0;
  Table.add_row table [ "a%b" ] 2.0;
  let tree = T.of_table table in
  let tree' = S.of_string (S.to_string tree) in
  let s' = T.schema tree' in
  Alcotest.(check string) "dim name" "dim with space" (Schema.dim_name s' 0);
  Alcotest.(check string) "measure name" "the measure" (Schema.measure_name s');
  Alcotest.(check string) "value" "value with space" (Schema.decode_value s' 0 1);
  Alcotest.(check string) "percent" "a%b" (Schema.decode_value s' 0 2)

let test_malformed_rejected () =
  Alcotest.check_raises "garbage record"
    (S.Error (S.Malformed "Serial: unexpected record \"bogus\"")) (fun () ->
      ignore (S.of_string "qctree 1\nbogus line\n"));
  (* a link whose endpoints never appear must be rejected, not dropped *)
  Alcotest.check_raises "dangling link"
    (S.Error (S.Malformed "Serial: link endpoint not found")) (fun () ->
      ignore
        (S.of_string
           "qctree 1\nschema 2 m\ndim A 1 a\ndim B 1 b\nlink 1 1 1,0 1,1\nend\n"));
  (* schema declares 3 dimensions but only 2 dim records follow *)
  Alcotest.check_raises "dimension count mismatch"
    (S.Error (S.Dim_mismatch { expected = 3; got = 2 })) (fun () ->
      ignore
        (S.of_string
           "qctree 1\nschema 3 m\ndim A 1 a\ndim B 1 b\nclass 1 0x1p0 0x1p0 0x1p0 1,1,0\nend\n"));
  (* a class cell of the wrong arity is a dimension mismatch, too *)
  Alcotest.check_raises "cell arity mismatch"
    (S.Error (S.Dim_mismatch { expected = 2; got = 3 })) (fun () ->
      ignore
        (S.of_string
           "qctree 1\nschema 2 m\ndim A 1 a\ndim B 1 b\nclass 1 0x1p0 0x1p0 0x1p0 1,1,0\nend\n"));
  Alcotest.check_raises "unsupported text version" (S.Error (S.Bad_version 9)) (fun () ->
      ignore (S.of_string "qctree 9\nend\n"));
  Alcotest.check_raises "non-numeric count"
    (S.Error (S.Malformed "Serial: class count is not an integer: \"one\"")) (fun () ->
      ignore
        (S.of_string "qctree 1\nschema 1 m\ndim A 1 a\nclass one 0x1p0 0x1p0 0x1p0 1\nend\n"))

let test_truncated_input () =
  (* truncation mid-file loses classes but still parses what is there;
     loading an empty payload yields an empty tree over an empty schema
     failure *)
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  let full = S.to_string tree in
  (* cut after the schema lines: the tree parses with zero classes *)
  let upto =
    let lines = String.split_on_char '\n' full in
    String.concat "\n" (List.filteri (fun i _ -> i < 5) lines) ^ "\nend\n"
  in
  let t = S.of_string upto in
  Alcotest.(check int) "no classes parsed" 0 (T.n_classes t)

(* ---------- packed binary format ---------- *)

module P = Qc_core.Packed

let prop_packed_roundtrip =
  Helpers.qcheck_case ~count:150 ~name:"packed save/load preserves the canonical tree"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let bin = S.to_packed_string (P.of_tree tree) in
      let tree' = P.to_tree (S.of_packed_string bin) in
      T.canonical_string tree = T.canonical_string tree'
      (* the format is canonical: re-serializing reproduces the bytes *)
      && S.to_packed_string (P.of_tree tree') = bin)

let test_packed_file_io () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  let path = Filename.temp_file "qctree" ".qctp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save_packed (P.of_tree tree) path;
      (* the sniffing loaders accept the packed file *)
      let tree' = S.load path in
      Alcotest.(check string) "load thaws" (T.canonical_string tree) (T.canonical_string tree');
      let p = S.load_packed path in
      Alcotest.(check string) "load_packed"
        (T.canonical_string tree) (T.canonical_string (P.to_tree p));
      match S.load_any path with
      | `Packed _ -> ()
      | `Tree _ -> Alcotest.fail "load_any misidentified the packed format")

let test_packed_float_exactness () =
  let schema = Schema.create [ "A" ] in
  let table = Table.create schema in
  Table.add_row table [ "x" ] 0.1;
  Table.add_row table [ "x" ] 0.2;
  let tree = T.of_table table in
  let p' = S.of_packed_string (S.to_packed_string (P.of_tree tree)) in
  let cell = Cell.parse schema [ "x" ] in
  match (point_opt tree cell, point_packed_opt p' cell) with
  | Some a, Some b -> Alcotest.(check bool) "bit-exact sums" true (a.Agg.sum = b.Agg.sum)
  | _ -> Alcotest.fail "query failed"

let packed_example () =
  S.to_packed_string (P.of_tree (T.of_table (Helpers.sales_table ())))

let expect_error name err f =
  Alcotest.check_raises name (S.Error err) (fun () -> ignore (f ()))

let test_packed_truncated () =
  let bin = packed_example () in
  (* every proper prefix must fail with [Truncated] or [Malformed], never
     crash or silently succeed *)
  for len = 0 to String.length bin - 1 do
    match S.of_packed_string (String.sub bin 0 len) with
    | exception S.Error _ -> ()
    | exception exn ->
      Alcotest.failf "prefix %d raised %s instead of Serial.Error" len
        (Printexc.to_string exn)
    | _ -> Alcotest.failf "prefix of %d bytes parsed successfully" len
  done;
  expect_error "clean truncation is Truncated" S.Truncated (fun () ->
      S.of_packed_string (String.sub bin 0 (String.length bin - 3)))

let test_packed_bad_magic () =
  let bin = packed_example () in
  expect_error "bad magic" (S.Bad_magic "XXXX") (fun () ->
      S.of_packed_string ("XXXX" ^ String.sub bin 4 (String.length bin - 4)));
  expect_error "load_any on garbage" (S.Bad_magic "zzzz") (fun () ->
      S.of_string_any "zzzz not a tree at all");
  expect_error "load_any on a stub" S.Truncated (fun () -> S.of_string_any "zz")

let test_packed_bad_version () =
  let bin = packed_example () in
  let bad = "QCTP\255" ^ String.sub bin 5 (String.length bin - 5) in
  expect_error "bad version" (S.Bad_version 255) (fun () -> S.of_packed_string bad)

let test_packed_dim_mismatch () =
  (* declare 0 dimensions: structurally impossible, typed error *)
  let buf = Buffer.create 16 in
  Buffer.add_string buf "QCTP\001";
  Buffer.add_string buf "\001m";  (* measure "m" *)
  Buffer.add_string buf "\000";  (* n_dims = 0 *)
  expect_error "zero dimensions"
    (S.Malformed "Serial: packed dimension count 0 outside 1..15") (fun () ->
      S.of_packed_string (Buffer.contents buf))

let test_packed_garbage_structure () =
  (* a node whose parent violates preorder must be rejected by validation *)
  let buf = Buffer.create 64 in
  Buffer.add_string buf "QCTP\001";
  Buffer.add_string buf "\001m";
  Buffer.add_string buf "\001";  (* 1 dimension *)
  Buffer.add_string buf "\001A";  (* name "A" *)
  Buffer.add_string buf "\001\001a";  (* 1 value: "a" *)
  Buffer.add_string buf "\002";  (* 2 nodes *)
  Buffer.add_string buf "\000";  (* root: no agg *)
  Buffer.add_string buf "\000\001\001\000";  (* node 1: dim 0, label 1, parent 1 (!), no agg *)
  Buffer.add_string buf "\000";  (* 0 links *)
  match S.of_packed_string (Buffer.contents buf) with
  | exception S.Error (S.Malformed _) -> ()
  | exception exn ->
    Alcotest.failf "raised %s instead of Serial.Error (Malformed _)" (Printexc.to_string exn)
  | _ -> Alcotest.fail "invalid structure parsed successfully"

let () =
  Alcotest.run "qc_serial"
    [
      ( "roundtrip",
        [
          prop_roundtrip_canonical;
          prop_roundtrip_queries;
          Alcotest.test_case "schema preserved" `Quick test_roundtrip_schema;
          Alcotest.test_case "float exactness" `Quick test_float_exactness;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "escaped values" `Quick test_escaped_values;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "truncated input" `Quick test_truncated_input;
        ] );
      ( "packed",
        [
          prop_packed_roundtrip;
          Alcotest.test_case "file io" `Quick test_packed_file_io;
          Alcotest.test_case "float exactness" `Quick test_packed_float_exactness;
          Alcotest.test_case "truncated" `Quick test_packed_truncated;
          Alcotest.test_case "bad magic" `Quick test_packed_bad_magic;
          Alcotest.test_case "bad version" `Quick test_packed_bad_version;
          Alcotest.test_case "dimension count" `Quick test_packed_dim_mismatch;
          Alcotest.test_case "garbage structure" `Quick test_packed_garbage_structure;
        ] );
    ]
