open Qc_cube

let range_list t r = Result.get_ok (Qc_core.Query.range_result t r)

(* A product dimension with a two-level hierarchy:
   electronics > {computers > {laptop, desktop}, phones > {phone}},
   grocery > {produce > {apple, pear}}. *)
let product_fixture () =
  let schema = Schema.create [ "product"; "region" ] in
  let table = Table.create schema in
  List.iter
    (fun (p, r, m) -> Table.add_row table [ p; r ] m)
    [
      ("laptop", "east", 1200.0);
      ("desktop", "east", 900.0);
      ("phone", "west", 650.0);
      ("apple", "east", 2.0);
      ("pear", "west", 3.0);
      ("laptop", "west", 1150.0);
    ];
  let h = Hierarchy.create schema ~dim:0 in
  Hierarchy.add_concept h "electronics";
  Hierarchy.add_concept h ~parent:"electronics" "computers";
  Hierarchy.add_concept h ~parent:"electronics" "phones";
  Hierarchy.add_concept h "grocery";
  Hierarchy.add_concept h ~parent:"grocery" "produce";
  Hierarchy.assign h ~value:"laptop" "computers";
  Hierarchy.assign h ~value:"desktop" "computers";
  Hierarchy.assign h ~value:"phone" "phones";
  Hierarchy.assign h ~value:"apple" "produce";
  Hierarchy.assign h ~value:"pear" "produce";
  (schema, table, h)

let test_structure () =
  let _, _, h = product_fixture () in
  Alcotest.(check (option string)) "parent" (Some "electronics") (Hierarchy.parent h "computers");
  Alcotest.(check (option string)) "root parent" None (Hierarchy.parent h "grocery");
  Alcotest.(check (list string)) "children" [ "computers"; "phones" ]
    (Hierarchy.children h "electronics");
  Alcotest.(check (list string)) "values" [ "laptop"; "desktop" ] (Hierarchy.values_of h "computers");
  Alcotest.(check int) "root level" 1 (Hierarchy.level h "electronics");
  Alcotest.(check int) "inner level" 2 (Hierarchy.level h "produce");
  Alcotest.(check (list string)) "all concepts"
    [ "electronics"; "computers"; "phones"; "grocery"; "produce" ]
    (Hierarchy.concepts h);
  Alcotest.(check (option string)) "concept of value" (Some "phones")
    (Hierarchy.concept_of_value h "phone");
  Alcotest.(check (option string)) "unassigned value" None (Hierarchy.concept_of_value h "nope")

let test_leaves () =
  let schema, _, h = product_fixture () in
  let dict = Schema.dict schema 0 in
  let code v = Option.get (Qc_util.Dict.find dict v) in
  let sorted vs = List.sort Int.compare (List.map code vs) in
  Alcotest.(check (list int)) "electronics leaves"
    (sorted [ "laptop"; "desktop"; "phone" ])
    (Array.to_list (Hierarchy.leaves h "electronics"));
  Alcotest.(check (list int)) "computers leaves"
    (sorted [ "laptop"; "desktop" ])
    (Array.to_list (Hierarchy.leaves h "computers"));
  Alcotest.(check (list int)) "grocery leaves"
    (sorted [ "apple"; "pear" ])
    (Array.to_list (Hierarchy.leaves h "grocery"))

let test_hierarchical_range_query () =
  (* The paper's hierarchical ranges: a concept expands to the value set of
     a range query. *)
  let schema, table, h = product_fixture () in
  let tree = Qc_core.Qc_tree.of_table table in
  let range = [| Hierarchy.range_for h "electronics"; [||] |] in
  let results = range_list tree range in
  (* three electronics products exist: laptop, desktop, phone *)
  Alcotest.(check int) "3 product groups" 3 (List.length results);
  let total =
    List.fold_left (fun acc (_, a) -> acc +. a.Agg.sum) 0.0 results
  in
  Alcotest.(check (float 1e-9)) "electronics revenue" (1200. +. 900. +. 650. +. 1150.) total;
  (* a concept combined with a point constraint *)
  let east = Option.get (Qc_util.Dict.find (Schema.dict schema 1) "east") in
  let range = [| Hierarchy.range_for h "grocery"; [| east |] |] in
  match range_list tree range with
  | [ (_, a) ] -> Alcotest.(check (float 1e-9)) "east grocery" 2.0 a.Agg.sum
  | l -> Alcotest.failf "expected 1 result, got %d" (List.length l)

let test_reassignment () =
  let _, _, h = product_fixture () in
  Hierarchy.assign h ~value:"phone" "computers";
  Alcotest.(check (option string)) "moved" (Some "computers") (Hierarchy.concept_of_value h "phone");
  Alcotest.(check (list string)) "old concept emptied" [] (Hierarchy.values_of h "phones")

let test_errors () =
  let schema, _, h = product_fixture () in
  ignore schema;
  Alcotest.check_raises "duplicate concept"
    (Invalid_argument "Hierarchy.add_concept: duplicate concept \"grocery\"") (fun () ->
      Hierarchy.add_concept h "grocery");
  Alcotest.check_raises "unknown parent" (Invalid_argument "Hierarchy: unknown concept \"nope\"")
    (fun () -> Hierarchy.add_concept h ~parent:"nope" "x");
  Alcotest.check_raises "unknown value"
    (Invalid_argument "Hierarchy.assign: \"widget\" is not a value of dimension product")
    (fun () -> Hierarchy.assign h ~value:"widget" "grocery")

let test_iceberg_over_concept () =
  (* Constrained iceberg query with a hierarchical constraint. *)
  let _, table, h = product_fixture () in
  let tree = Qc_core.Qc_tree.of_table table in
  let index = Qc_core.Query.make_index tree Agg.Sum in
  let range = [| Hierarchy.range_for h "electronics"; [||] |] in
  let heavy = Qc_core.Query.iceberg_range tree index range ~threshold:1000.0 in
  (* laptop (2350 across regions) and the per-region laptop cells over 1000 *)
  Alcotest.(check bool) "some heavy electronics" true (List.length heavy >= 1);
  List.iter
    (fun (_, a) -> Alcotest.(check bool) "above threshold" true (a.Agg.sum >= 1000.0))
    heavy

let prop_leaves_union () =
  (* leaves(parent) = union of children's leaves and own values — checked on
     randomized hierarchies. *)
  let rng = Qc_util.Rng.create 55 in
  for _ = 1 to 25 do
    let card = 4 + Qc_util.Rng.int rng 12 in
    let schema = Schema.create [ "d" ] in
    for v = 1 to card do
      ignore (Schema.encode_value schema 0 (Printf.sprintf "v%d" v))
    done;
    let h = Hierarchy.create schema ~dim:0 in
    Hierarchy.add_concept h "root";
    let n_sub = 1 + Qc_util.Rng.int rng 4 in
    for i = 1 to n_sub do
      Hierarchy.add_concept h ~parent:"root" (Printf.sprintf "c%d" i)
    done;
    for v = 1 to card do
      let target =
        if Qc_util.Rng.bool rng then "root"
        else Printf.sprintf "c%d" (1 + Qc_util.Rng.int rng n_sub)
      in
      Hierarchy.assign h ~value:(Printf.sprintf "v%d" v) target
    done;
    let union =
      List.sort_uniq Int.compare
        (List.concat
           (List.map
              (fun v -> [ Option.get (Qc_util.Dict.find (Schema.dict schema 0) v) ])
              (Hierarchy.values_of h "root")
           @ List.map
               (fun c -> Array.to_list (Hierarchy.leaves h c))
               (Hierarchy.children h "root")))
    in
    Alcotest.(check (list int)) "leaves = union" union
      (Array.to_list (Hierarchy.leaves h "root"))
  done

let () =
  Alcotest.run "qc_hierarchy"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "leaves" `Quick test_leaves;
          Alcotest.test_case "hierarchical range query" `Quick test_hierarchical_range_query;
          Alcotest.test_case "reassignment" `Quick test_reassignment;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "iceberg over concept" `Quick test_iceberg_over_concept;
          Alcotest.test_case "leaves union property" `Quick prop_leaves_union;
        ] );
    ]
