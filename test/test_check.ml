(* Negative tests for the invariant checker: corrupt each of the three
   representations in a controlled way and require the exact typed
   violation — an out-of-order CSR span in the packed columns, a dangling
   drill-down link in the mutable tree, a truncated QCTP buffer.  A checker
   that merely says "something is wrong" would pass none of these; each
   corruption must surface under its own label so a failing audit points at
   the broken layer. *)

open Qc_cube
module T = Qc_core.Qc_tree
module P = Qc_core.Packed
module C = Qc_core.Check

let labels (r : C.report) = List.map C.violation_label r.C.violations

let contains lbl r = List.mem lbl (labels r)

let show r = String.concat " " (labels r)

(* The clean path: a freshly built tree passes the full audit, and the
   report proves work happened (every family counted at least one check). *)
let test_clean_example () =
  let table = Helpers.sales_table () in
  let tree = T.of_table table in
  let r = C.run ~deep:true ~base:table tree in
  Alcotest.(check bool) ("no violations: " ^ show r) true (C.ok r);
  Alcotest.(check bool) "several invariant families ran" true (List.length r.C.checked >= 5);
  List.iter
    (fun (family, n) ->
      Alcotest.(check bool) (family ^ " counted checks") true (n > 0))
    r.C.checked

let test_clean_random () =
  let rng = Qc_util.Rng.create 0xC0FFEE in
  let table = Helpers.random_table rng ~dims:4 ~card:5 ~rows:120 () in
  let tree = T.of_table table in
  let r = C.run ~deep:true ~base:table tree in
  Alcotest.(check bool) ("no violations: " ^ show r) true (C.ok r)

(* Corruption 1 (packed): swap two keys inside one CSR child span.  The
   strict ascending order is what makes the Lemma 2 hop a binary search;
   the checker must name the span, not just fail somewhere downstream. *)
let test_packed_span_unsorted () =
  let tree = T.of_table (Helpers.sales_table ()) in
  let p = P.of_tree tree in
  let raw = P.raw p in
  let lo = ref (-1) in
  for i = Array.length raw.P.r_child_start - 2 downto 0 do
    if raw.P.r_child_start.(i + 1) - raw.P.r_child_start.(i) >= 2 then
      lo := raw.P.r_child_start.(i)
  done;
  if !lo < 0 then Alcotest.fail "example tree has no node with two children";
  let k = raw.P.r_child_key in
  let tmp = k.(!lo) in
  k.(!lo) <- k.(!lo + 1);
  k.(!lo + 1) <- tmp;
  let r = C.check_packed p in
  Alcotest.(check bool) "corruption detected" false (C.ok r);
  Alcotest.(check bool) ("span-unsorted in: " ^ show r) true (contains "span-unsorted" r)

(* Corruption 2 (mutable tree): a drill-down link left pointing at a node
   that pruning removed.  Roll-up through that link would crash or answer
   from freed state; [drop_links_to_dead_targets] exists precisely because
   maintenance can create this situation transiently. *)
let test_tree_dangling_link () =
  let schema = Schema.create [ "A"; "B"; "C" ] in
  let table = Table.create schema in
  Table.add_row table [ "a1"; "b1"; "c1" ] 4.0;
  Table.add_row table [ "a2"; "b2"; "c2" ] 8.0;
  (* a value no tuple carries, so no live node ever spells it *)
  let zz = Schema.encode_value schema 2 "zz" in
  let tree = T.of_table table in
  let doomed = T.insert_path tree [| 0; 0; zz |] in
  let src =
    match T.find_path tree [| Schema.encode_value schema 0 "a1"; 0; 0 |] with
    | Some n -> n
    | None -> Alcotest.fail "prefix node for a1 missing"
  in
  T.add_link tree ~src ~dim:2 ~label:zz ~dst:doomed;
  T.prune_upward tree doomed;
  let r = C.check_tree tree in
  Alcotest.(check bool) "corruption detected" false (C.ok r);
  Alcotest.(check bool)
    ("link-target-dead in: " ^ show r)
    true (contains "link-target-dead" r)

(* Corruption 3 (bytes): a QCTP buffer cut mid-section must be reported as
   truncation at a byte offset, without the loader ever running. *)
let test_bytes_truncated () =
  let tree = T.of_table (Helpers.sales_table ()) in
  let s = Qc_core.Serial.to_packed_string (P.of_tree tree) in
  let r = C.check_bytes (String.sub s 0 20) in
  Alcotest.(check bool) "corruption detected" false (C.ok r);
  Alcotest.(check bool) ("qctp-truncated in: " ^ show r) true (contains "qctp-truncated" r);
  let r2 = C.check_bytes "this is not a QCTP buffer" in
  Alcotest.(check bool) ("qctp-bad-magic in: " ^ show r2) true (contains "qctp-bad-magic" r2)

(* The three corruptions must surface under three distinct labels — the
   checker localizes the broken layer rather than reporting one generic
   failure. *)
let test_labels_distinct () =
  let distinct = [ "span-unsorted"; "link-target-dead"; "qctp-truncated" ] in
  Alcotest.(check int)
    "labels pairwise distinct" (List.length distinct)
    (List.length (List.sort_uniq String.compare distinct))

let () =
  Alcotest.run "qc_check"
    [
      ( "clean",
        [
          Alcotest.test_case "running example passes the full audit" `Quick test_clean_example;
          Alcotest.test_case "random table passes the full audit" `Quick test_clean_random;
        ] );
      ( "corruptions",
        [
          Alcotest.test_case "unsorted CSR span is named" `Quick test_packed_span_unsorted;
          Alcotest.test_case "dangling drill-down link is named" `Quick test_tree_dangling_link;
          Alcotest.test_case "truncated QCTP buffer is named" `Quick test_bytes_truncated;
          Alcotest.test_case "corruption labels are distinct" `Quick test_labels_distinct;
        ] );
    ]
