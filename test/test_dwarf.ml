open Qc_cube
module D = Qc_dwarf.Dwarf

let point_opt t c = Result.to_option (Qc_core.Query.point_result t c)

let prop_point_queries_exact =
  Helpers.qcheck_case ~count:150 ~name:"Dwarf point query = cover aggregate"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let dwarf = D.build table in
      Helpers.check_point_queries_against_table table (D.point dwarf))

let prop_agrees_with_qc_tree =
  Helpers.qcheck_case ~count:100 ~name:"Dwarf and QC-tree answer identically"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let dwarf = D.build table in
      let tree = Qc_core.Qc_tree.of_table table in
      let ok = ref true in
      Helpers.iter_all_cells ~dims ~card (fun cell ->
          match (D.point dwarf cell, point_opt tree cell) with
          | None, None -> ()
          | Some a, Some b when Agg.approx_equal a b -> ()
          | _ -> ok := false);
      !ok)

let prop_range_equals_points =
  Helpers.qcheck_case ~count:80 ~name:"Dwarf range = union of point queries"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let dwarf = D.build table in
      let q =
        Array.init dims (fun _ ->
            match Qc_util.Rng.int rng 3 with
            | 0 -> [||]
            | 1 -> [| 1 + Qc_util.Rng.int rng card |]
            | _ -> Array.init card (fun v -> v + 1))
      in
      (* expand by hand *)
      let inst = Cell.make_all dims in
      let expected = ref [] in
      let rec go i =
        if i >= dims then (
          match D.point dwarf inst with
          | Some a -> expected := (Array.to_list inst, a.Agg.count) :: !expected
          | None -> ())
        else if Array.length q.(i) = 0 then go (i + 1)
        else
          Array.iter
            (fun v ->
              inst.(i) <- v;
              go (i + 1);
              inst.(i) <- Cell.all)
            q.(i)
      in
      go 0;
      let results = List.map (fun (c, a) -> (Array.to_list c, a.Agg.count)) (D.range dwarf q) in
      let cmp (c1, n1) (c2, n2) =
        let c = List.compare Int.compare c1 c2 in
        if c <> 0 then c else Int.compare n1 n2
      in
      List.equal
        (fun (c1, n1) (c2, n2) -> List.equal Int.equal c1 c2 && Int.equal n1 n2)
        (List.sort cmp results)
        (List.sort cmp !expected))

let test_example_dwarf () =
  let table = Helpers.sales_table () in
  let schema = Table.schema table in
  let dwarf = D.build table in
  let q vals = Option.map (Agg.value Agg.Avg) (D.point dwarf (Cell.parse schema vals)) in
  Alcotest.(check (option (float 1e-9))) "(S2,*,f)" (Some 9.0) (q [ "S2"; "*"; "f" ]);
  Alcotest.(check (option (float 1e-9))) "(*,P1,*)" (Some 7.5) (q [ "*"; "P1"; "*" ]);
  Alcotest.(check (option (float 1e-9))) "(S2,*,s)" None (q [ "S2"; "*"; "s" ])

let test_coalescing_single_tuple () =
  (* A one-tuple table coalesces completely: one node per level. *)
  let schema = Schema.create [ "A"; "B"; "C"; "D" ] in
  let table = Table.create schema in
  Table.add_row table [ "a"; "b"; "c"; "d" ] 5.0;
  let dwarf = D.build table in
  Alcotest.(check int) "4 nodes" 4 (D.n_nodes dwarf);
  (* every group-by of a single tuple answers 5 *)
  Helpers.iter_all_cells ~dims:4 ~card:1 (fun cell ->
      match D.point dwarf cell with
      | Some a -> Alcotest.(check (float 1e-9)) "sum 5" 5.0 a.Agg.sum
      | None -> Alcotest.fail "missing")

let test_coalescing_shrinks () =
  (* Prefix sharing and suffix coalescing must make the Dwarf smaller, under
     the shared byte-cost model, than materializing the cube as a relation. *)
  let spec = { Qc_data.Synthetic.default with rows = 2000; dims = 5; cardinality = 20; seed = 8 } in
  let table = Qc_data.Synthetic.generate spec in
  let dwarf = D.build table in
  Alcotest.(check bool) "bytes below materialized cube" true
    (D.bytes dwarf < Buc.cube_bytes table);
  Alcotest.(check bool) "coalescing shares nodes" true (D.n_nodes dwarf > 0)

let prop_coalescing_modes_equivalent =
  Helpers.qcheck_case ~count:60 ~name:"all coalescing strategies answer identically"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let strong = D.build ~coalescing:D.Hash_cons table in
      let single = D.build ~coalescing:D.Single_cell table in
      let none = D.build ~coalescing:D.No_coalescing table in
      let ok = ref true in
      Helpers.iter_all_cells ~dims ~card (fun cell ->
          let a = D.point strong cell and b = D.point single cell and c = D.point none cell in
          let eq x y =
            match (x, y) with
            | None, None -> true
            | Some x, Some y -> Agg.approx_equal x y
            | _ -> false
          in
          if not (eq a b && eq b c) then ok := false);
      (* stronger coalescing never stores more *)
      !ok && D.bytes strong <= D.bytes single && D.bytes single <= D.bytes none)

let test_node_accesses () =
  let table = Helpers.sales_table () in
  let dwarf = D.build table in
  (* the paper: Dwarf accesses exactly n nodes per point query *)
  Alcotest.(check int) "3 accesses" 3 (D.node_accesses dwarf [| 0; 0; 0 |])

let test_empty_table () =
  let schema = Schema.create [ "A"; "B" ] in
  let dwarf = D.build (Table.create schema) in
  Alcotest.(check int) "no nodes" 0 (D.n_nodes dwarf);
  Alcotest.(check (option Helpers.agg_testable)) "null answer" None (D.point dwarf [| 0; 0 |])

let () =
  Alcotest.run "qc_dwarf"
    [
      ( "correctness",
        [
          prop_point_queries_exact;
          prop_agrees_with_qc_tree;
          prop_range_equals_points;
          Alcotest.test_case "paper example" `Quick test_example_dwarf;
        ] );
      ( "structure",
        [
          Alcotest.test_case "single-tuple coalescing" `Quick test_coalescing_single_tuple;
          Alcotest.test_case "coalescing shrinks" `Quick test_coalescing_shrinks;
          prop_coalescing_modes_equivalent;
          Alcotest.test_case "node accesses" `Quick test_node_accesses;
          Alcotest.test_case "empty table" `Quick test_empty_table;
        ] );
    ]
