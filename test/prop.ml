(* Shared infrastructure for the property-based differential suites.

   A test case is a fully materialized random OLAP instance: a schema of
   2-5 dimensions with zipf-skewed cardinalities, a list of encoded tuples
   drawn with the same skew (so shared prefixes and non-trivial quotient
   classes are common), and an iceberg threshold.  Everything is derived
   deterministically from one seed through [Qc_util.Rng], and the shrinker
   works by dropping tuples — a failing case minimizes to the smallest
   table that still exhibits the bug, with the schema held fixed. *)

open Qc_cube

type case = {
  seed : int;
  dims : int;
  cards : int array;  (* per-dimension cardinality *)
  min_support : int;  (* iceberg threshold; 1 = keep everything *)
  rows : (int array * float) list;  (* encoded tuples: codes in 1..card *)
}

(* Skewed draw on [1..n]: the inverse-power transform concentrates mass on
   the small codes, like the Zipf generators the benchmarks use. *)
let zipf rng n =
  let u = Qc_util.Rng.float rng 1.0 in
  let v = 1 + int_of_float (float_of_int n *. (u ** 2.5)) in
  if v > n then n else v

(* [n_rows] comes from QCheck so case sizes follow its distribution; all
   the actual content derives from [seed] alone.  Rows are built with an
   explicit loop: the evaluation order of [List.init] is unspecified and
   would make generation seed-irreproducible. *)
let make_case ~seed ~n_rows =
  let rng = Qc_util.Rng.create seed in
  let dims = 2 + Qc_util.Rng.int rng 4 in
  let cards = Array.init dims (fun _ -> 2 + Qc_util.Rng.int rng 5) in
  let min_support = if Qc_util.Rng.int rng 4 = 0 then 2 + Qc_util.Rng.int rng 2 else 1 in
  let rows = ref [] in
  for _ = 1 to n_rows do
    let cell = Array.make dims 0 in
    for i = 0 to dims - 1 do
      cell.(i) <- zipf rng cards.(i)
    done;
    let m = float_of_int (Qc_util.Rng.int rng 41 - 20) in
    rows := (cell, m) :: !rows
  done;
  { seed; dims; cards; min_support; rows = List.rev !rows }

let print_case c =
  let row (cell, m) =
    Printf.sprintf "(%s)=%g"
      (String.concat "," (Array.to_list (Array.map string_of_int cell)))
      m
  in
  Printf.sprintf "seed=%d dims=%d cards=[%s] min_support=%d rows=[%s]" c.seed c.dims
    (String.concat ";" (Array.to_list (Array.map string_of_int c.cards)))
    c.min_support
    (String.concat " " (List.map row c.rows))

let gen_case =
  QCheck.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* n_rows = int_range 0 60 in
    return (make_case ~seed ~n_rows))

(* Shrink by dropping tuples only; dimensions and cardinalities stay put so
   the shrunk counterexample still type-checks against the same schema. *)
let shrink_case c = QCheck.Iter.map (fun rows -> { c with rows }) (QCheck.Shrink.list c.rows)

let arb_case = QCheck.make ~print:print_case ~shrink:shrink_case gen_case

(* Every dimension value is pre-registered so queries may mention values no
   tuple carries (they must answer None, not crash). *)
let schema_of c =
  let s = Schema.create (List.init c.dims (fun i -> Printf.sprintf "D%d" i)) in
  Array.iteri
    (fun i card ->
      for v = 1 to card do
        ignore (Schema.encode_value s i (Printf.sprintf "d%dv%d" i v))
      done)
    c.cards;
  s

let table_of ?schema c =
  let s = match schema with Some s -> s | None -> schema_of c in
  let t = Table.create s in
  List.iter (fun (cell, m) -> Table.add_encoded t cell m) c.rows;
  t

(* The number of cells in the full cube space (ALL included per dim). *)
let space_size c = Array.fold_left (fun acc card -> acc * (card + 1)) 1 c.cards

(* Visit query cells: the whole space when small enough, otherwise a
   deterministic random sample of [sample] cells. *)
let iter_cells ?(sample = 2000) c f =
  if space_size c <= sample then begin
    let cell = Array.make c.dims 0 in
    let rec go i =
      if i >= c.dims then f cell
      else
        for v = 0 to c.cards.(i) do
          cell.(i) <- v;
          go (i + 1);
          cell.(i) <- 0
        done
    in
    go 0
  end
  else begin
    let rng = Qc_util.Rng.create (c.seed lxor 0x5EED) in
    let cell = Array.make c.dims 0 in
    for _ = 1 to sample do
      for i = 0 to c.dims - 1 do
        cell.(i) <-
          (if Qc_util.Rng.int rng 10 < 4 then Cell.all else 1 + Qc_util.Rng.int rng c.cards.(i))
      done;
      f cell
    done
  end

(* Random range queries over the case's value space: per dimension either
   unconstrained (empty array) or a small set of distinct values. *)
let random_ranges c n =
  let rng = Qc_util.Rng.create (c.seed lxor 0x7A4E) in
  let out = ref [] in
  for _ = 1 to n do
    let q = Array.make c.dims [||] in
    for i = 0 to c.dims - 1 do
      if not (Qc_util.Rng.bool rng) then begin
        let k = 1 + Qc_util.Rng.int rng (min 3 c.cards.(i)) in
        let vals = Array.init c.cards.(i) (fun v -> v + 1) in
        Qc_util.Rng.shuffle rng vals;
        q.(i) <- Array.sub vals 0 k
      end
    done;
    out := q :: !out
  done;
  List.rev !out

(* CI runs the suite twice: once with the default seed and once with a seed
   derived from the run number, so the corpus differs run to run while any
   failure stays reproducible from the printed seed. *)
let ci_seed () =
  match Sys.getenv_opt "QC_PROP_SEED" with
  | Some s -> (try int_of_string (String.trim s) with _ -> 42)
  | None -> 42

let qcheck_case ?(count = 200) ~name arb prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| ci_seed () |])
    (QCheck.Test.make ~count ~name arb prop)

(* Full invariant audit as a QCheck predicate: every generated or
   maintained tree must pass [Check.run] (structure, packed columns, bytes,
   round trips; with [~base], also the class DFS and sampled oracle
   queries).  Violations print their labels so a shrunk counterexample
   names the broken invariant, not just "false". *)
let check_clean ?deep ?base tree =
  let r = Qc_core.Check.run ?deep ?base tree in
  if not (Qc_core.Check.ok r) then
    List.iter
      (fun v ->
        Printf.eprintf "check violation [%s]\n%!" (Qc_core.Check.violation_label v))
      r.Qc_core.Check.violations;
  Qc_core.Check.ok r
