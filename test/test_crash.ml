(* Crash-injection differential suite.

   The binary is its own crash victim: invoked with [QC_CRASH_CHILD] set it
   runs a scripted warehouse (or tree-save) workload instead of Alcotest,
   with [QC_FAILPOINTS] arming exactly one durability site to die mid-write
   ([Unix._exit 42], no flushing).  The parent enumerates {e every}
   registered failpoint label, kills a child at each one (both [Crash] and
   [Torn] modes, at several script positions), reopens the directory and
   asserts the recovered warehouse

   - holds exactly the committed operation prefix (the one in-flight
     operation may or may not have reached durability — both are legal,
     nothing else is),
   - passes the deep invariant audit, and
   - answers point, range and iceberg queries identically to a fresh
     warehouse built from the expected rows.

   The child appends "start:<op>" / "committed:<op>" lines to a log file
   (flushed before each step) so the parent knows the committed prefix
   without trusting the damaged directory.

   [Raise]-mode failpoints (simulated I/O errors, not power loss) are
   exercised in-process at the bottom of the file: the operation must fail
   with the typed error and leave both the handle and the directory
   consistent. *)

module W = Qc_warehouse.Warehouse
module SW = Qc_warehouse.Sharded
module Wal = Qc_core.Wal
module FP = Qc_util.Failpoint
open Qc_cube

(* ------------------------------------------------------------------ *)
(* The deterministic workload both sides derive from the seed          *)
(* ------------------------------------------------------------------ *)

let crash_case () = Prop.make_case ~seed:(Prop.ci_seed () lxor 0xC4A5) ~n_rows:24

let vname i v = Printf.sprintf "d%dv%d" i v

(* Row partition: base gets half the case, three insert batches and one
   delete batch (rows already in the base) make up the script. *)
type script = {
  c : Prop.case;
  base : (int array * float) list;
  ins_a : (int array * float) list;
  ins_b : (int array * float) list;
  del_c : (int array * float) list;
  ins_d : (int array * float) list;
}

let script () =
  let c = crash_case () in
  let rows = Array.of_list c.Prop.rows in
  let slice lo hi = Array.to_list (Array.sub rows lo (hi - lo)) in
  {
    c;
    base = slice 0 12;
    ins_a = slice 12 16;
    ins_b = slice 16 20;
    del_c = List.map (Array.get rows) [ 1; 4; 7 ];
    ins_d = slice 20 24;
  }

let table_of_rows schema rows =
  let t = Table.create schema in
  List.iter (fun (cell, m) -> Table.add_encoded t cell m) rows;
  t

(* The operation list; WAL sites are hit once per mutation (1=insA, 2=insB,
   3=delC, 4=insD), save.* sites once per save (1, 2). *)
let op_names = [ "save1"; "insA"; "insB"; "delC"; "save2"; "insD" ]

(* The rolling-refreeze workload: two full seal → absorb-while-sealed →
   refreeze → publish cycles, with a delete between them so the second
   rotated segment carries delete records.  Each refreeze.* site fires
   once per cycle (hits 1, 2); wal.* sites fire at 1=insA, 2=insB (the
   mid-refreeze absorb), 3=delC, 4=insD (the second mid-refreeze
   absorb). *)
let ingest_ops = [ "save1"; "insA"; "rfz1"; "delC"; "rfz2" ]

(* ------------------------------------------------------------------ *)
(* Child mode                                                         *)
(* ------------------------------------------------------------------ *)

let log_line path line =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  output_string oc (line ^ "\n");
  flush oc;
  close_out oc

let getenv_req name =
  match Sys.getenv_opt name with
  | Some v -> v
  | None ->
    prerr_endline ("crash child: missing " ^ name);
    exit 3

let warehouse_child () =
  let dir = getenv_req "QC_CRASH_DIR" and log = getenv_req "QC_CRASH_LOG" in
  let s = script () in
  let schema = Prop.schema_of s.c in
  let w = W.create (table_of_rows schema s.base) in
  List.iter
    (fun name ->
      log_line log ("start:" ^ name);
      (match name with
      | "save1" | "save2" -> W.save w dir
      | "insA" -> ignore (W.insert w (table_of_rows schema s.ins_a))
      | "insB" -> ignore (W.insert w (table_of_rows schema s.ins_b))
      | "delC" -> ignore (W.delete w (table_of_rows schema s.del_c))
      | "insD" -> ignore (W.insert w (table_of_rows schema s.ins_d))
      | _ -> assert false);
      log_line log ("committed:" ^ name))
    op_names;
  (* every step survived: the armed failpoint never fired *)
  exit 0

(* Sharded workload: a 2-shard warehouse built in parallel Domains, then
   checkpointed twice.  Each composite save fires every per-shard save.*
   site once per shard (hits 1,2 = first checkpoint, 3,4 = second) and
   each shards.manifest.* site once (hits 1, 2). *)
(* Streaming-ingest workload, run synchronously so the kill site is
   deterministic: the same seal / run_refreeze / complete_refreeze
   sequence [Ingest.run] drives, with a batch absorbed while sealed (so
   it lands in the fresh post-rotation journal) and the reader-visible
   publication recorded as a "published:<generation>" log line after the
   refreeze.publish failpoint. *)
let ingest_child () =
  let dir = getenv_req "QC_CRASH_DIR" and log = getenv_req "QC_CRASH_LOG" in
  let s = script () in
  let schema = Prop.schema_of s.c in
  let w = W.create (table_of_rows schema s.base) in
  let refreeze_absorbing rows =
    let task = W.seal w in
    ignore (W.insert w (table_of_rows schema rows));
    let res = W.run_refreeze task in
    let oc = W.complete_refreeze w task res in
    (* without injection on the save path this must commit *)
    if not oc.W.rf_committed then exit 4;
    FP.hit "refreeze.publish";
    log_line log (Printf.sprintf "published:%d" oc.W.rf_generation)
  in
  List.iter
    (fun name ->
      log_line log ("start:" ^ name);
      (match name with
      | "save1" -> W.save w dir
      | "insA" -> ignore (W.insert w (table_of_rows schema s.ins_a))
      | "rfz1" -> refreeze_absorbing s.ins_b
      | "delC" -> ignore (W.delete w (table_of_rows schema s.del_c))
      | "rfz2" -> refreeze_absorbing s.ins_d
      | _ -> assert false);
      log_line log ("committed:" ^ name))
    ingest_ops;
  exit 0

let sharded_child () =
  let dir = getenv_req "QC_CRASH_DIR" and log = getenv_req "QC_CRASH_LOG" in
  let s = script () in
  let schema = Prop.schema_of s.c in
  let sw =
    SW.create ~jobs:2 ~partitioner:Qc_core.Shard.Hash ~shards:2
      (table_of_rows schema (s.base @ s.ins_a))
  in
  log_line log "start:save1";
  SW.save sw dir;
  log_line log "committed:save1";
  log_line log "start:save2";
  SW.save sw dir;
  log_line log "committed:save2";
  exit 0

let serial_child () =
  let dir = getenv_req "QC_CRASH_DIR" and log = getenv_req "QC_CRASH_LOG" in
  let s = script () in
  let schema = Prop.schema_of s.c in
  let path = Filename.concat dir "tree.qct" in
  let t1 = Qc_core.Qc_tree.of_table (table_of_rows schema s.base) in
  let t2 = Qc_core.Qc_tree.of_table (table_of_rows schema (s.base @ s.ins_a)) in
  log_line log "start:save1";
  Qc_core.Serial.save t1 path;
  log_line log "committed:save1";
  log_line log "start:save2";
  Qc_core.Serial.save t2 path;
  log_line log "committed:save2";
  exit 0

(* ------------------------------------------------------------------ *)
(* Parent: process control                                            *)
(* ------------------------------------------------------------------ *)

let fresh_dir () =
  let d = Filename.temp_file "qccrash" "" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let own_vars = [ "QC_CRASH_CHILD="; "QC_CRASH_DIR="; "QC_CRASH_LOG="; "QC_FAILPOINTS=" ]

let child_env ~kind ~dir ~log ~spec =
  let inherited =
    List.filter
      (fun kv ->
        not
          (List.exists
             (fun p -> String.length kv >= String.length p && String.sub kv 0 (String.length p) = p)
             own_vars))
      (Array.to_list (Unix.environment ()))
  in
  Array.of_list
    (("QC_CRASH_CHILD=" ^ kind)
    :: ("QC_CRASH_DIR=" ^ dir)
    :: ("QC_CRASH_LOG=" ^ log)
    :: ("QC_FAILPOINTS=" ^ spec)
    :: inherited)

(* Run one child to its injected death; returns its exit status. *)
let run_child ~kind ~dir ~log ~spec =
  let env = child_env ~kind ~dir ~log ~spec in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let sink =
    Unix.openfile (log ^ ".stderr") [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process_env Sys.executable_name [| Sys.executable_name |] env devnull sink sink
  in
  Unix.close devnull;
  Unix.close sink;
  let _, status = Unix.waitpid [] pid in
  status

let log_lines path =
  match Qc_util.Durable.read_file path with
  | exception Sys_error _ -> []
  | data -> List.filter (fun l -> l <> "") (String.split_on_char '\n' data)

(* The child runs sequentially, so the committed ops are a prefix of the
   script and at most the next op is in flight. *)
let committed_and_inflight lines =
  let committed =
    List.filter_map
      (fun l ->
        if String.length l > 10 && String.sub l 0 10 = "committed:" then
          Some (String.sub l 10 (String.length l - 10))
        else None)
      lines
  in
  let started =
    List.filter_map
      (fun l ->
        if String.length l > 6 && String.sub l 0 6 = "start:" then
          Some (String.sub l 6 (String.length l - 6))
        else None)
      lines
  in
  let inflight =
    List.filter (fun op -> not (List.exists (String.equal op) committed)) started
  in
  match inflight with
  | [] | [ _ ] -> (committed, inflight)
  | _ -> Alcotest.failf "more than one in-flight op in child log: %s" (String.concat "," inflight)

(* ------------------------------------------------------------------ *)
(* Parent: expected state and differential checks                     *)
(* ------------------------------------------------------------------ *)

(* Expected rows live as decoded (values, measure) multisets so they can be
   compared across schemas with different code assignments (a rebuilt tree
   re-encodes base.csv in file order). *)
let decode_rows dims rows =
  List.map
    (fun (cell, m) -> (List.init dims (fun i -> vname i cell.(i)), m))
    rows

let compare_row (va, ma) (vb, mb) =
  match List.compare String.compare va vb with 0 -> Float.compare ma mb | n -> n

let sort_rows rows = List.sort compare_row rows

let same_rows a b = List.equal (fun x y -> compare_row x y = 0) (sort_rows a) (sort_rows b)

let show_rows rows =
  String.concat " "
    (List.map (fun (vs, m) -> Printf.sprintf "(%s)=%g" (String.concat "," vs) m) (sort_rows rows))

let remove_one row rows =
  let rec go = function
    | [] -> Alcotest.failf "expected-state bug: row (%s) not present" (String.concat "," (fst row))
    | r :: rest -> if compare_row r row = 0 then rest else r :: go rest
  in
  go rows

(* Apply one script op to a decoded row multiset (saves change nothing). *)
let apply_op s rows name =
  let dims = s.c.Prop.dims in
  match name with
  | "save1" | "save2" -> rows
  | "insA" -> rows @ decode_rows dims s.ins_a
  | "insB" -> rows @ decode_rows dims s.ins_b
  | "insD" -> rows @ decode_rows dims s.ins_d
  | "delC" -> List.fold_left (fun acc r -> remove_one r acc) rows (decode_rows dims s.del_c)
  (* a refreeze cycle's only row effect is the batch absorbed while sealed *)
  | "rfz1" -> rows @ decode_rows dims s.ins_b
  | "rfz2" -> rows @ decode_rows dims s.ins_d
  | _ -> assert false

let warehouse_rows w =
  (Wal.record_of_table ~generation:0 Wal.Insert (W.table w)).Wal.rows

(* Reference warehouse over an expected decoded-row multiset, under a fresh
   fully-registered copy of the case schema (codes identical to the case's
   encoded rows, so Prop.iter_cells cells query it directly). *)
let reference_of s rows =
  let t = Table.create (Prop.schema_of s.c) in
  List.iter (fun (vs, m) -> Table.add_row t vs m) rows;
  W.create t

let norm_result schema res =
  List.sort
    (fun (a, _) (b, _) -> List.compare String.compare a b)
    (List.map
       (fun (cell, agg) ->
         ( List.init (Array.length cell) (fun i ->
               if cell.(i) = Cell.all then "*" else Schema.decode_value schema i cell.(i)),
           agg ))
       res)

let check_same_result what a b =
  let cellname vs = "(" ^ String.concat "," vs ^ ")" in
  if
    not
      (List.equal
         (fun (ca, aa) (cb, ab) -> List.equal String.equal ca cb && Agg.approx_equal aa ab)
         a b)
  then
    Alcotest.failf "%s diverged: [%s] vs [%s]" what
      (String.concat " " (List.map (fun (cs, _) -> cellname cs) a))
      (String.concat " " (List.map (fun (cs, _) -> cellname cs) b))

(* Point + range + iceberg differential between a recovered store (any
   query surface over schema [ws]) and a reference warehouse built from
   the expected rows. *)
let differential_q s ~ws ~query ~range ~iceberg reference =
  let c = s.c in
  let rs = W.schema reference in
  Prop.iter_cells ~sample:300 c (fun cell ->
      let strs =
        List.init c.Prop.dims (fun i ->
            if cell.(i) = Cell.all then "*" else vname i cell.(i))
      in
      let expect = W.query reference (Array.copy cell) in
      let got =
        match Cell.parse ws strs with
        | exception Invalid_argument _ -> None (* value unknown to the recovered dirs *)
        | qc -> query qc
      in
      match (expect, got) with
      | None, None -> ()
      | Some a, Some b when Agg.approx_equal a b -> ()
      | _ ->
        Alcotest.failf "point query diverged at (%s): %s vs %s" (String.concat "," strs)
          (match expect with None -> "None" | Some a -> Format.asprintf "%a" Agg.pp a)
          (match got with None -> "None" | Some b -> Format.asprintf "%a" Agg.pp b));
  List.iter
    (fun q ->
      (* translate case codes to the recovered schema; a value it has never
         seen covers no tuple and is dropped, but if a constrained dimension
         loses every value the range is inexpressible — skip it. *)
      let expressible = ref true in
      let tq =
        Array.mapi
          (fun i vals ->
            if Array.length vals = 0 then [||]
            else begin
              let keep =
                List.filter_map
                  (fun v -> Qc_util.Dict.find (Schema.dict ws i) (vname i v))
                  (Array.to_list vals)
              in
              if keep = [] then expressible := false;
              Array.of_list keep
            end)
          q
      in
      if !expressible then
        check_same_result "range query"
          (norm_result rs (W.range reference q))
          (norm_result ws (range tq)))
    (Prop.random_ranges c 8);
  check_same_result "iceberg query"
    (norm_result rs (W.iceberg reference Agg.Sum ~threshold:1.0))
    (norm_result ws (iceberg Agg.Sum ~threshold:1.0))

let differential s w reference =
  differential_q s ~ws:(W.schema w) ~query:(W.query w) ~range:(W.range w)
    ~iceberg:(W.iceberg w) reference

(* Full verdict on a warehouse directory after a child died at [label]. *)
let verify_recovery ~ctx s dir log =
  let committed, inflight = committed_and_inflight (log_lines log) in
  let saved = List.exists (fun op -> op = "save1" || op = "save2") committed in
  match W.open_dir dir with
  | exception W.Error (W.Missing_file _) when not saved ->
    (* died inside the very first checkpoint, before base.csv committed:
       nothing was ever durable, so there is nothing to recover *)
    ()
  | exception W.Error e ->
    Alcotest.failf "%s: recovery failed: %s (committed: %s)" ctx (W.error_to_string e)
      (String.concat "," committed)
  | w ->
    let expected_committed =
      List.fold_left (apply_op s) (decode_rows s.c.Prop.dims s.base) committed
    in
    let expected_inflight =
      List.fold_left (apply_op s) expected_committed inflight
    in
    let got = warehouse_rows w in
    let matched =
      if same_rows got expected_committed then Some expected_committed
      else if same_rows got expected_inflight then Some expected_inflight
      else None
    in
    (match matched with
    | None ->
      Alcotest.failf
        "%s: recovered rows match neither the committed prefix nor prefix+in-flight\n\
         committed ops: %s   in-flight: %s\n\
         recovered: %s\n\
         committed prefix: %s\n\
         with in-flight:   %s"
        ctx (String.concat "," committed)
        (String.concat "," inflight)
        (show_rows got) (show_rows expected_committed) (show_rows expected_inflight)
    | Some expected ->
      let report = W.check w in
      if not (Qc_core.Check.ok report) then
        Alcotest.failf "%s: recovered warehouse fails the deep invariant audit (%d violations)"
          ctx
          (List.length report.Qc_core.Check.violations);
      differential s w (reference_of s expected))

(* The ingest child's extra obligation on top of {!verify_recovery}: the
   directory must reopen at a generation at least as new as anything a
   reader was ever shown.  "published:<g>" lines are logged only after
   the refreeze.publish failpoint, so every logged generation was
   committed before the kill. *)
let published_gens lines =
  List.filter_map
    (fun l ->
      if String.starts_with ~prefix:"published:" l then
        int_of_string_opt (String.sub l 10 (String.length l - 10))
      else None)
    lines

let verify_ingest_recovery ~ctx s dir log =
  verify_recovery ~ctx s dir log;
  match published_gens (log_lines log) with
  | [] -> ()
  | pubs ->
    let hi = List.fold_left Int.max 0 pubs in
    let got = W.committed_generation dir in
    if got < hi then
      Alcotest.failf
        "%s: reader-visible generation regressed: directory reopened at %d but generation %d was \
         published"
        ctx got hi

(* Verdict on a *sharded* directory.  The composite is read-only, so both
   script saves checkpoint the same rows: whatever the committed prefix,
   a directory that opens at all must hold exactly the full table, every
   shard must pass the deep invariant audit, and every base tuple must
   live in the shard the partitioner assigns it.  A directory that does
   not open (no committed [shards.manifest]) is legal only when the child
   never logged a completed save. *)
let verify_sharded_recovery ~ctx s dir log =
  let committed, _inflight = committed_and_inflight (log_lines log) in
  match SW.open_dir dir with
  | exception W.Error (W.Missing_file _) when committed = [] -> ()
  | exception W.Error e ->
    Alcotest.failf "%s: sharded recovery failed: %s (committed: %s)" ctx
      (W.error_to_string e) (String.concat "," committed)
  | sw ->
    if SW.n_shards sw <> 2 then Alcotest.failf "%s: wrong shard count" ctx;
    let expected = decode_rows s.c.Prop.dims (s.base @ s.ins_a) in
    let got =
      Array.to_list (SW.shards sw) |> List.concat_map warehouse_rows
    in
    if not (same_rows got expected) then
      Alcotest.failf "%s: recovered sharded rows wrong\nrecovered: %s\nexpected:  %s" ctx
        (show_rows got) (show_rows expected);
    Array.iteri
      (fun k w ->
        let report = W.check w in
        if not (Qc_core.Check.ok report) then
          Alcotest.failf "%s: shard %d fails the deep invariant audit (%d violations)" ctx k
            (List.length report.Qc_core.Check.violations))
      (SW.shards sw);
    (match SW.misplaced sw with
    | [] -> ()
    | l -> Alcotest.failf "%s: %d tuple(s) in the wrong shard after recovery" ctx (List.length l));
    differential_q s ~ws:(SW.schema sw) ~query:(SW.query sw) ~range:(SW.range sw)
      ~iceberg:(SW.iceberg sw) (reference_of s expected)

let mode_spec = function
  | FP.Raise -> "raise"
  | FP.Crash -> "crash"
  | FP.Torn -> "torn"
  | FP.Sleep ms -> Printf.sprintf "sleep-%d" ms

let run_warehouse_crash label mode hit =
  let s = script () in
  let dir = fresh_dir () and log = Filename.temp_file "qccrashlog" "" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf log;
      rm_rf (log ^ ".stderr"))
    (fun () ->
      let spec = Printf.sprintf "%s@%d:%s" label hit (mode_spec mode) in
      let ctx = Printf.sprintf "%s (hit %d)" spec hit in
      match run_child ~kind:"warehouse" ~dir ~log ~spec with
      | Unix.WEXITED 0 ->
        Alcotest.failf "%s: child finished the workload — the failpoint never fired" ctx
      | Unix.WEXITED n when n = FP.exit_code -> verify_recovery ~ctx s dir log
      | Unix.WEXITED n -> Alcotest.failf "%s: child exited %d (wanted %d)" ctx n FP.exit_code
      | Unix.WSIGNALED n -> Alcotest.failf "%s: child killed by signal %d" ctx n
      | Unix.WSTOPPED _ -> Alcotest.failf "%s: child stopped" ctx)

let run_ingest_crash label mode hit =
  let s = script () in
  let dir = fresh_dir () and log = Filename.temp_file "qccrashlog" "" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf log;
      rm_rf (log ^ ".stderr"))
    (fun () ->
      let spec = Printf.sprintf "%s@%d:%s" label hit (mode_spec mode) in
      let ctx = Printf.sprintf "%s [ingest] (hit %d)" spec hit in
      match run_child ~kind:"ingest" ~dir ~log ~spec with
      | Unix.WEXITED 0 ->
        Alcotest.failf "%s: child finished the workload — the failpoint never fired" ctx
      | Unix.WEXITED n when n = FP.exit_code -> verify_ingest_recovery ~ctx s dir log
      | Unix.WEXITED n -> Alcotest.failf "%s: child exited %d (wanted %d)" ctx n FP.exit_code
      | Unix.WSIGNALED n -> Alcotest.failf "%s: child killed by signal %d" ctx n
      | Unix.WSTOPPED _ -> Alcotest.failf "%s: child stopped" ctx)

let run_sharded_crash label mode hit =
  let s = script () in
  let dir = fresh_dir () and log = Filename.temp_file "qccrashlog" "" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf log;
      rm_rf (log ^ ".stderr"))
    (fun () ->
      let spec = Printf.sprintf "%s@%d:%s" label hit (mode_spec mode) in
      let ctx = Printf.sprintf "%s [sharded] (hit %d)" spec hit in
      match run_child ~kind:"sharded" ~dir ~log ~spec with
      | Unix.WEXITED 0 ->
        Alcotest.failf "%s: child finished the workload — the failpoint never fired" ctx
      | Unix.WEXITED n when n = FP.exit_code -> verify_sharded_recovery ~ctx s dir log
      | Unix.WEXITED n -> Alcotest.failf "%s: child exited %d (wanted %d)" ctx n FP.exit_code
      | Unix.WSIGNALED n -> Alcotest.failf "%s: child killed by signal %d" ctx n
      | Unix.WSTOPPED _ -> Alcotest.failf "%s: child stopped" ctx)

let run_serial_crash label mode hit =
  let s = script () in
  let dir = fresh_dir () and log = Filename.temp_file "qccrashlog" "" in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf log;
      rm_rf (log ^ ".stderr"))
    (fun () ->
      let spec = Printf.sprintf "%s@%d:%s" label hit (mode_spec mode) in
      let ctx = Printf.sprintf "%s (hit %d)" spec hit in
      (match run_child ~kind:"serial" ~dir ~log ~spec with
      | Unix.WEXITED 0 ->
        Alcotest.failf "%s: child finished the workload — the failpoint never fired" ctx
      | Unix.WEXITED n when n = FP.exit_code -> ()
      | Unix.WEXITED n -> Alcotest.failf "%s: child exited %d (wanted %d)" ctx n FP.exit_code
      | Unix.WSIGNALED n -> Alcotest.failf "%s: child killed by signal %d" ctx n
      | Unix.WSTOPPED _ -> Alcotest.failf "%s: child stopped" ctx);
      let schema = Prop.schema_of s.c in
      let v1 = Qc_core.Serial.to_string (Qc_core.Qc_tree.of_table (table_of_rows schema s.base)) in
      let v2 =
        Qc_core.Serial.to_string
          (Qc_core.Qc_tree.of_table (table_of_rows schema (s.base @ s.ins_a)))
      in
      let path = Filename.concat dir "tree.qct" in
      if hit = 1 then begin
        (* died inside the first save: the target must not exist at all
           (the temporary may linger, the target was never renamed in) *)
        if Sys.file_exists path then
          Alcotest.failf "%s: target exists after a crash inside the first save" ctx
      end
      else begin
        (* died inside the second save: the target holds exactly the old or
           the new complete image — never a prefix, never a mixture *)
        let content = Qc_util.Durable.read_file path in
        if not (String.equal content v1 || String.equal content v2) then
          Alcotest.failf "%s: target is neither the old nor the new image (%d bytes)" ctx
            (String.length content);
        match Qc_core.Serial.of_string_any content with
        | `Tree _ | `Packed _ -> ()
        | exception Qc_core.Serial.Error _ -> Alcotest.failf "%s: surviving image fails to load" ctx
      end)

(* ------------------------------------------------------------------ *)
(* The matrix: every registered label, both power-loss modes           *)
(* ------------------------------------------------------------------ *)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let crash_matrix_case label =
  let runs =
    if has_prefix "serial.save." label then [ (run_serial_crash, [ 1; 2 ]) ]
    else if has_prefix "wal." label then
      (* plain mutations, plus the same sites firing on a batch absorbed
         while sealed (hit 2 = first mid-refreeze insert, 4 = second) *)
      [ (run_warehouse_crash, [ 1; 3; 4 ]); (run_ingest_crash, [ 2; 4 ]) ]
    else if has_prefix "shards.manifest." label then [ (run_sharded_crash, [ 1; 2 ]) ]
    else if has_prefix "refreeze." label then [ (run_ingest_crash, [ 1; 2 ]) ]
    else if has_prefix "save." label then
      (* single-directory checkpoints, plus the same sites firing inside a
         sharded checkpoint: hit 1 = shard-0 of the first composite save,
         hit 3 = shard-0 of the second (mixed shard generations) *)
      [ (run_warehouse_crash, [ 1; 2 ]); (run_sharded_crash, [ 1; 3 ]) ]
    else
      Alcotest.failf
        "failpoint %S is not mapped to a crash workload — extend the matrix in test_crash.ml"
        label
  in
  Alcotest.test_case label `Slow (fun () ->
      List.iter
        (fun (runner, hits) ->
          List.iter
            (fun mode -> List.iter (fun hit -> runner label mode hit) hits)
            [ FP.Crash; FP.Torn ])
        runs)

(* ------------------------------------------------------------------ *)
(* In-process Raise-mode cases: simulated I/O errors                   *)
(* ------------------------------------------------------------------ *)

let with_attached f =
  let s = script () in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      FP.reset ();
      rm_rf dir)
    (fun () ->
      let schema = Prop.schema_of s.c in
      let w = W.create (table_of_rows schema s.base) in
      W.save w dir;
      f s schema dir w)

let expect_io_error what f =
  match f () with
  | _ -> Alcotest.failf "%s did not fail" what
  | exception W.Error (W.Io _) -> ()

let assert_consistent s dir w expected =
  if not (same_rows (warehouse_rows w) expected) then
    Alcotest.failf "live handle rows wrong: %s vs %s" (show_rows (warehouse_rows w))
      (show_rows expected);
  (match W.self_check w with
  | Ok () -> ()
  | Result.Error e -> Alcotest.failf "live handle inconsistent: %s" e);
  let w2 = W.open_dir dir in
  if not (same_rows (warehouse_rows w2) expected) then
    Alcotest.failf "reopened rows wrong: %s vs %s" (show_rows (warehouse_rows w2))
      (show_rows expected);
  differential s w2 (reference_of s expected)

(* A journal append that fails must leave the batch unapplied and the
   handle fully usable; [wal.fsync] additionally proves the roll-back of a
   frame whose bytes hit the file before the failure. *)
let raise_on_wal site () =
  with_attached @@ fun s schema dir w ->
  FP.set site FP.Raise;
  expect_io_error "insert with failing journal" (fun () ->
      W.insert w (table_of_rows schema s.ins_a));
  let base_rows = decode_rows s.c.Prop.dims s.base in
  if not (same_rows (warehouse_rows w) base_rows) then
    Alcotest.fail "failed insert mutated the warehouse";
  ignore (W.insert w (table_of_rows schema s.ins_a));
  assert_consistent s dir w (base_rows @ decode_rows s.c.Prop.dims s.ins_a)

(* A checkpoint that fails part-way must leave the directory openable and
   the handle journaling against whichever generation actually committed. *)
let raise_on_save site () =
  with_attached @@ fun s schema dir w ->
  ignore (W.insert w (table_of_rows schema s.ins_a));
  FP.set site FP.Raise;
  expect_io_error "checkpoint with failing write" (fun () -> W.save w dir);
  ignore (W.insert w (table_of_rows schema s.ins_b));
  let expected =
    decode_rows s.c.Prop.dims s.base
    @ decode_rows s.c.Prop.dims s.ins_a
    @ decode_rows s.c.Prop.dims s.ins_b
  in
  assert_consistent s dir w expected;
  (* and a subsequent checkpoint completes cleanly *)
  W.save w dir;
  assert_consistent s dir w expected

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let () =
  match Sys.getenv_opt "QC_CRASH_CHILD" with
  | Some "warehouse" -> warehouse_child ()
  | Some "ingest" -> ingest_child ()
  | Some "sharded" -> sharded_child ()
  | Some "serial" -> serial_child ()
  | Some other ->
    prerr_endline ("crash child: unknown kind " ^ other);
    exit 3
  | None ->
    let labels = FP.registered () in
    if List.length labels < 21 then
      Printf.eprintf "suspicious: only %d failpoints registered\n%!" (List.length labels);
    Alcotest.run "qc_crash"
      [
        ("matrix", List.map crash_matrix_case labels);
        ( "io-errors",
          [
            Alcotest.test_case "wal.append raises" `Quick (raise_on_wal "wal.append");
            Alcotest.test_case "wal.fsync raises" `Quick (raise_on_wal "wal.fsync");
            Alcotest.test_case "save.base.tmp-write raises" `Quick
              (raise_on_save "save.base.tmp-write");
            Alcotest.test_case "save.manifest.rename raises" `Quick
              (raise_on_save "save.manifest.rename");
          ] );
      ]
