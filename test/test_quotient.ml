open Qc_cube
module Qt = Qc_core.Quotient
module Ex = Qc_core.Explore

(* ---------- The paper's quotient cube (Figure 3) ---------- *)

let test_paper_classes () =
  let table = Helpers.sales_table () in
  let q = Qt.of_table table in
  Alcotest.(check int) "6 classes" 6 (Qt.n_classes q);
  let schema = Qt.schema q in
  (* C3: upper bound (S2,P1,f), lower bounds {(ALL,ALL,f), (S2,ALL,ALL)}. *)
  match Qt.find_by_ub q (Cell.parse schema [ "S2"; "P1"; "f" ]) with
  | None -> Alcotest.fail "C3 missing"
  | Some c3 ->
    let lbs = List.sort String.compare (List.map (Cell.to_string schema) c3.lbs) in
    Alcotest.(check (list string)) "C3 lower bounds" [ "(*, *, f)"; "(S2, *, *)" ] lbs;
    Alcotest.(check (float 1e-9)) "C3 avg" 9.0 (Agg.value Agg.Avg c3.agg)

let test_paper_class_membership () =
  let table = Helpers.sales_table () in
  let q = Qt.of_table table in
  let schema = Qt.schema q in
  let c3 = Option.get (Qt.find_by_ub q (Cell.parse schema [ "S2"; "P1"; "f" ])) in
  (* Figure 3's drill-down into C3: 6 member cells. *)
  let members = Qt.members q c3 in
  Alcotest.(check int) "6 members" 6 (List.length members);
  List.iter
    (fun m -> Alcotest.(check bool) "contains" true (Qt.contains c3 m))
    members;
  Alcotest.(check bool) "outsider" false
    (Qt.contains c3 (Cell.parse schema [ "S1"; "P1"; "s" ]))

let test_class_of_cell () =
  let table = Helpers.sales_table () in
  let q = Qt.of_table table in
  let schema = Qt.schema q in
  (match Qt.class_of_cell q (Cell.parse schema [ "*"; "*"; "f" ]) with
  | Some cls ->
    Alcotest.(check string) "in C3" "(S2, P1, f)" (Cell.to_string schema cls.ub)
  | None -> Alcotest.fail "class_of_cell failed");
  Alcotest.(check bool) "empty cover -> none" true
    (Option.is_none (Qt.class_of_cell q (Cell.parse schema [ "S2"; "P2"; "*" ])))

(* ---------- Intelligent roll-up (paper Section 1) ---------- *)

let test_intelligent_rollup () =
  let table = Helpers.sales_table () in
  let q = Qt.of_table table in
  let schema = Qt.schema q in
  (* "Starting from (S2,P1,f), what are the most general circumstances where
     the average sale is still 9?"  Answer: the class of the all-ALL cell. *)
  match Ex.intelligent_rollup q Agg.Avg (Cell.parse schema [ "S2"; "P1"; "f" ]) with
  | None -> Alcotest.fail "rollup failed"
  | Some r ->
    Alcotest.(check string) "start class" "(S2, P1, f)"
      (Cell.to_string schema r.start_class.ub);
    (* region = {C3, C1}: the avg-9 classes reachable by rolling up.  C4 also
       averages 9 but is not a roll-up of the start cell, so it is excluded. *)
    let region_ubs =
      List.sort String.compare
        (List.map (fun (c : Qt.cls) -> Cell.to_string schema c.ub) r.region)
    in
    Alcotest.(check (list string)) "region"
      [ "(*, *, *)"; "(S2, P1, f)" ] region_ubs;
    (match r.most_general with
    | [ c ] -> Alcotest.(check string) "most general is C1" "(*, *, *)" (Cell.to_string schema c.ub)
    | l -> Alcotest.failf "expected 1 most-general class, got %d" (List.length l))

let test_drilldown_rollup_navigation () =
  let table = Helpers.sales_table () in
  let q = Qt.of_table table in
  let schema = Qt.schema q in
  (* Drilling down from the all-ALL cell via Season=f reaches C3 — and so does first
     specializing Product=P1: the equivalent-drill-down pattern of Sec. 1. *)
  let all = Cell.parse schema [ "*"; "*"; "*" ] in
  let f_code = Option.get (Qc_util.Dict.find (Schema.dict schema 2) "f") in
  let p1 = Option.get (Qc_util.Dict.find (Schema.dict schema 1) "P1") in
  let via_f = Option.get (Ex.drill_down q all ~dim:2 ~value:f_code) in
  let p1_cell = Cell.parse schema [ "*"; "P1"; "*" ] in
  let via_p1_then_f = Option.get (Ex.drill_down q p1_cell ~dim:2 ~value:f_code) in
  Alcotest.(check int) "same class" via_f.cid via_p1_then_f.cid;
  (* (ALL,P1,f) and its Product roll-up (ALL,ALL,f) are both members of C3:
     rolling up within a class stays in the class. *)
  Alcotest.(check bool) "rolling up Product from (ALL,P1,f) stays in C3" true
    (match Ex.roll_up q (Cell.parse schema [ "*"; "P1"; "f" ]) ~dim:1 with
    | Some c -> c.cid = via_f.cid
    | None -> false);
  ignore p1

let test_equivalent_drilldowns () =
  let table = Helpers.sales_table () in
  let q = Qt.of_table table in
  let schema = Qt.schema q in
  let from_all = Ex.equivalent_drilldowns q (Cell.parse schema [ "*"; "*"; "*" ]) in
  (* one entry per (dim, value) with non-empty cover: S1,S2,P1,P2,s,f *)
  Alcotest.(check int) "6 drilldowns" 6 (List.length from_all);
  (* S1 and s reach the same class (cover equivalence) *)
  let cls_of dim name =
    let code = Option.get (Qc_util.Dict.find (Schema.dict schema dim) name) in
    let _, _, c = List.find (fun (d, v, _) -> d = dim && v = code) from_all in
    c.Qt.cid
  in
  Alcotest.(check int) "S1 ~ s" (cls_of 0 "S1") (cls_of 2 "s")

(* ---------- Intelligent roll-up properties ---------- *)

let prop_rollup_region_sound =
  Helpers.qcheck_case ~count:60
    ~name:"intelligent roll-up region members keep the aggregate and roll up from the start"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let q = Qt.of_table table in
      (* random start cell anchored on a tuple *)
      let anchor = Table.tuple table (Qc_util.Rng.int rng (Table.n_rows table)) in
      let start = Array.map (fun v -> if Qc_util.Rng.bool rng then v else Cell.all) anchor in
      match Ex.intelligent_rollup q Agg.Sum start with
      | None -> Table.cover_agg table start |> fun a -> a.Agg.count = 0
      | Some r ->
        let target = Agg.value Agg.Sum r.start_class.agg in
        List.for_all
          (fun (c : Qt.cls) ->
            Float.abs (Agg.value Agg.Sum c.agg -. target)
            <= 1e-9 *. Float.max 1.0 (Float.abs target))
          r.region
        && r.most_general <> []
        && List.for_all (fun (c : Qt.cls) -> List.memq c r.region) r.most_general)

let prop_rollup_frontier_maximal =
  Helpers.qcheck_case ~count:40
    ~name:"no lattice child of a most-general class keeps the aggregate"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let q = Qt.of_table table in
      let anchor = Table.tuple table (Qc_util.Rng.int rng (Table.n_rows table)) in
      match Ex.intelligent_rollup q Agg.Count anchor with
      | None -> false
      | Some r ->
        let target = Agg.value Agg.Count r.start_class.agg in
        List.for_all
          (fun (c : Qt.cls) ->
            List.for_all
              (fun kid -> Agg.value Agg.Count (Qt.find q kid).agg <> target)
              c.children)
          r.most_general)

(* ---------- Properties of cover partitions (Lemma 1) ---------- *)

let prop_unique_upper_bound =
  Helpers.qcheck_case ~name:"each class has a unique upper bound" Helpers.table_config
    (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let q = Qt.of_table table in
      let seen = Cell.Tbl.create 64 in
      Array.for_all
        (fun (c : Qt.cls) ->
          if Cell.Tbl.mem seen c.ub then false
          else begin
            Cell.Tbl.replace seen c.ub ();
            true
          end)
        (Qt.classes q))

let prop_members_cover_equivalent =
  Helpers.qcheck_case ~count:60 ~name:"all member cells are cover equivalent"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let q = Qt.of_table table in
      Array.for_all
        (fun (c : Qt.cls) ->
          List.for_all
            (fun m -> Agg.approx_equal (Table.cover_agg table m) c.agg)
            (Qt.members ~limit:256 q c))
        (Qt.classes q))

let prop_convexity =
  Helpers.qcheck_case ~count:40 ~name:"classes are convex (no holes)" Helpers.table_config
    (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let q = Qt.of_table table in
      (* for every cell e between two member cells c <= e <= d, e is a member *)
      let ok = ref true in
      Array.iter
        (fun (cls : Qt.cls) ->
          let ms = Qt.members ~limit:64 q cls in
          List.iter
            (fun cm ->
              List.iter
                (fun dm ->
                  if Cell.rolls_up_to dm cm then
                    (* meet-style midpoints: specialize cm one dim toward dm *)
                    Array.iteri
                      (fun j v ->
                        if cm.(j) = Cell.all && v <> Cell.all then begin
                          let e = Cell.copy cm in
                          e.(j) <- v;
                          if not (Qt.contains cls e) then ok := false
                        end)
                      dm)
                ms)
            ms)
        (Qt.classes q);
      !ok)

let prop_lattice_children_more_general =
  Helpers.qcheck_case ~name:"lattice children are more general classes"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let q = Qt.of_table table in
      Array.for_all
        (fun (c : Qt.cls) ->
          List.for_all
            (fun kid_id ->
              (* a lattice child covers strictly more tuples *)
              (Qt.find q kid_id).agg.Agg.count > c.agg.Agg.count)
            c.children)
        (Qt.classes q))

let () =
  Alcotest.run "qc_quotient"
    [
      ( "paper example",
        [
          Alcotest.test_case "classes (Fig 3)" `Quick test_paper_classes;
          Alcotest.test_case "class membership" `Quick test_paper_class_membership;
          Alcotest.test_case "class_of_cell" `Quick test_class_of_cell;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "intelligent rollup" `Quick test_intelligent_rollup;
          Alcotest.test_case "navigation" `Quick test_drilldown_rollup_navigation;
          Alcotest.test_case "equivalent drilldowns" `Quick test_equivalent_drilldowns;
        ] );
      ( "intelligent rollup",
        [ prop_rollup_region_sound; prop_rollup_frontier_maximal ] );
      ( "lemma 1",
        [
          prop_unique_upper_bound;
          prop_members_cover_equivalent;
          prop_convexity;
          prop_lattice_children_more_general;
        ] );
    ]
